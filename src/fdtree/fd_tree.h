#ifndef DHYFD_FDTREE_FD_TREE_H_
#define DHYFD_FDTREE_FD_TREE_H_

#include <memory>
#include <vector>

#include "fd/fd_set.h"

namespace dhyfd {

/// The classic FD-tree of Flach & Savnik, used by the FDEP baseline.
///
/// Each node represents an attribute; the path from the root spells an FD's
/// LHS. Classic trees label every node on a path with the RHS attributes of
/// all FDs in its subtree ("excessive labeling", paper Section IV-C), which
/// is what the extended FD-tree removes.
class FdTree {
 public:
  explicit FdTree(int num_attrs);

  int num_attrs() const { return num_attrs_; }

  /// Inserts the FD lhs -> rhs (no minimality checking).
  void add(const AttributeSet& lhs, AttrId rhs);

  /// True if some FD Z -> rhs with Z subseteq lhs is in the tree.
  bool contains_generalization(const AttributeSet& lhs, AttrId rhs) const;

  /// Classic FD induction for the invalid FD `non_fd_lhs !-> rhs` (one RHS
  /// attribute at a time): removes every generalization Z -> rhs with
  /// Z subseteq non_fd_lhs and inserts all minimal non-refuted
  /// specializations Z + {B} -> rhs for B outside non_fd_lhs + {rhs}.
  void induct(const AttributeSet& non_fd_lhs, AttrId rhs);

  /// All FDs in the tree, singleton RHSs.
  FdSet collect() const;

  size_t node_count() const { return node_count_; }

  /// Approximate heap footprint; feeds the memory columns of Table II.
  size_t memory_bytes() const {
    return node_count_ * (sizeof(Node) + 2 * sizeof(void*));
  }

  /// Total node-label occurrences (the subtree labels included); quantifies
  /// the classic tree's labeling overhead for the ablation bench.
  int64_t label_count() const;

 private:
  struct Node {
    AttrId attr;
    AttributeSet rhs;          // FDs whose LHS ends exactly here
    AttributeSet rhs_subtree;  // union of rhs over this node and descendants
    std::vector<std::unique_ptr<Node>> children;  // ascending by attr

    Node* find_child(AttrId a) const;
  };

  Node* ensure_child(Node* node, AttrId a);
  // Removes generalizations of (lhs, rhs); appends their LHSs to `removed`.
  // Returns true if the subtree below `node` still contains label `rhs`.
  bool remove_generalizations(Node* node, const AttributeSet& lhs, AttrId rhs,
                              AttributeSet path, std::vector<AttributeSet>& removed);
  void collect_rec(const Node* node, AttributeSet path, FdSet& out) const;
  bool contains_rec(const Node* node, const AttributeSet& lhs, AttrId rhs) const;
  int64_t labels_rec(const Node* node) const;

  int num_attrs_;
  std::unique_ptr<Node> root_;
  size_t node_count_ = 1;
};

}  // namespace dhyfd

#endif  // DHYFD_FDTREE_FD_TREE_H_
