#ifndef DHYFD_FDTREE_EXTENDED_FD_TREE_H_
#define DHYFD_FDTREE_EXTENDED_FD_TREE_H_

#include <memory>
#include <vector>

#include "fd/fd_set.h"

namespace dhyfd {

/// The paper's extended FD-tree (Section IV-C).
///
/// Differences from the classic tree:
///  * Only FD-nodes (nodes whose `rhs` is non-empty) carry RHS labels; there
///    is no subtree label propagation.
///  * Every node carries an integer id. Ids < num_attrs denote the
///    single-attribute stripped partition of that attribute; ids >=
///    num_attrs index the dynamic data manager's partition array
///    (id - num_attrs). Algorithm 1 keeps ids consistent: the indexed
///    partition's attribute set is always a subset of the node's path.
///  * Induction is "synergized" (Algorithm 2): one traversal handles a
///    whole non-FD X !-> Y instead of |Y| separate traversals.
class ExtendedFdTree {
 public:
  struct Node {
    AttrId attr;   // -1 for the root
    int id;        // see class comment
    AttributeSet rhs;
    Node* parent;
    std::vector<std::unique_ptr<Node>> children;  // ascending by attr

    bool is_fd_node() const { return !rhs.empty(); }
    bool is_leaf() const { return children.empty(); }
    Node* find_child(AttrId a) const;
  };

  explicit ExtendedFdTree(int num_attrs);

  int num_attrs() const { return num_attrs_; }
  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  /// Installs the start FD {} -> rhs on the root (Algorithm 6 line 4).
  void init_root_fd(const AttributeSet& rhs) { root_->rhs = rhs; }

  /// The controlled level cl: new nodes at depth <= cl get their default id
  /// (their own attribute); deeper new nodes inherit their parent's id
  /// (Algorithm 1 steps 11-14).
  void set_controlled_level(int cl) { controlled_level_ = cl; }
  int controlled_level() const { return controlled_level_; }

  /// Algorithm 1: inserts the path for `lhs` (assigning consistent ids) and
  /// unions `rhs` into its final node's label.
  void add_fd(const AttributeSet& lhs, const AttributeSet& rhs);

  /// Algorithm 2: synergized induction for the non-FD x !-> y. Removes every
  /// refuted FD in one traversal and inserts all minimal non-refuted
  /// specializations.
  void induct(const AttributeSet& x, const AttributeSet& y);

  /// The attribute set spelled by the path from the root to `n`.
  AttributeSet path_of(const Node* n) const;

  /// All nodes at the given depth (level 1 = children of the root).
  std::vector<Node*> level_nodes(int level);

  /// RHS attributes in `candidates` already covered by a generalization
  /// (some FD Z -> B with Z subseteq lhs). `minimal rhs` in Algorithm 2 is
  /// `candidates - covered_rhs(lhs, candidates)`.
  AttributeSet covered_rhs(const AttributeSet& lhs, const AttributeSet& candidates) const;

  /// Sum of |rhs| over all nodes: the number of FDs in the tree.
  int64_t total_fd_count() const;

  size_t node_count() const { return node_count_; }

  /// Approximate heap footprint; feeds the memory columns of Table II.
  size_t memory_bytes() const {
    return node_count_ * (sizeof(Node) + 2 * sizeof(void*));
  }

  /// Maximum depth of any node.
  int depth() const;

  /// Resets every node's id to its default (its own attribute). The DDM
  /// calls this before re-propagating fresh dynamic ids so no node is left
  /// pointing into a replaced partition array (the id-consistency
  /// requirement of Section IV-E).
  void reset_ids();

  /// All FDs in the tree, singleton RHSs, as a left-reduced cover.
  FdSet collect() const;

 private:
  Node* ensure_child(Node* node, AttrId a, int depth);
  void induct_rec(const std::vector<AttrId>& x_attrs, size_t i,
                  const AttributeSet& x, const AttributeSet& y, Node* current);
  void process_fd_node(const AttributeSet& x, const AttributeSet& y, Node* current);

  int num_attrs_;
  int controlled_level_ = 0;
  std::unique_ptr<Node> root_;
  size_t node_count_ = 1;
};

}  // namespace dhyfd

#endif  // DHYFD_FDTREE_EXTENDED_FD_TREE_H_
