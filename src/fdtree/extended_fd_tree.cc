#include "fdtree/extended_fd_tree.h"

namespace dhyfd {

ExtendedFdTree::ExtendedFdTree(int num_attrs)
    : num_attrs_(num_attrs),
      root_(new Node{-1, -1, {}, nullptr, {}}) {}

ExtendedFdTree::Node* ExtendedFdTree::Node::find_child(AttrId a) const {
  for (const auto& c : children) {
    if (c->attr == a) return c.get();
    if (c->attr > a) break;
  }
  return nullptr;
}

ExtendedFdTree::Node* ExtendedFdTree::ensure_child(Node* node, AttrId a, int depth) {
  size_t pos = 0;
  while (pos < node->children.size() && node->children[pos]->attr < a) ++pos;
  if (pos < node->children.size() && node->children[pos]->attr == a) {
    return node->children[pos].get();
  }
  // Algorithm 1 steps 11-14: below the controlled level a new node inherits
  // its parent's id (whose partition attributes are a subset of the parent
  // path, hence of the new node's path); at or above it, the default id.
  int id;
  if (depth > controlled_level_ && node->attr >= 0) {
    id = node->id;
  } else {
    id = a;
  }
  auto child = std::make_unique<Node>(Node{a, id, {}, node, {}});
  Node* raw = child.get();
  node->children.insert(node->children.begin() + pos, std::move(child));
  ++node_count_;
  return raw;
}

void ExtendedFdTree::add_fd(const AttributeSet& lhs, const AttributeSet& rhs) {
  Node* current = root_.get();
  int depth = 0;
  lhs.for_each([&](AttrId a) { current = ensure_child(current, a, ++depth); });
  current->rhs |= rhs;
}

AttributeSet ExtendedFdTree::path_of(const Node* n) const {
  AttributeSet path;
  for (const Node* cur = n; cur != nullptr && cur->attr >= 0; cur = cur->parent) {
    path.set(cur->attr);
  }
  return path;
}

std::vector<ExtendedFdTree::Node*> ExtendedFdTree::level_nodes(int level) {
  std::vector<Node*> out;
  std::vector<std::pair<Node*, int>> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    if (depth == level) {
      out.push_back(node);
      continue;  // deeper nodes are beyond the requested level
    }
    for (const auto& c : node->children) stack.emplace_back(c.get(), depth + 1);
  }
  return out;
}

AttributeSet ExtendedFdTree::covered_rhs(const AttributeSet& lhs,
                                         const AttributeSet& candidates) const {
  AttributeSet covered = root_->rhs & candidates;
  if (covered == candidates) return covered;
  // DFS over paths that stay inside lhs; union FD-node labels.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const auto& c : node->children) {
      if (!lhs.test(c->attr)) continue;
      covered |= c->rhs & candidates;
      if (covered == candidates) return covered;
      stack.push_back(c.get());
    }
  }
  return covered;
}

void ExtendedFdTree::process_fd_node(const AttributeSet& x, const AttributeSet& y,
                                     Node* current) {
  AttributeSet removed = current->rhs & y;
  current->rhs -= y;
  if (removed.empty()) return;
  AttributeSet x_prime = path_of(current);

  // Case 1 (Algorithm 2 steps 12-14): extend with attributes outside
  // X + removed; the new LHS is then not a subset of X.
  AttributeSet outside = AttributeSet::full(num_attrs_) - (x | removed);
  outside -= x_prime;  // extending with a path attribute is a no-op
  outside.for_each([&](AttrId a_prime) {
    AttributeSet new_lhs = x_prime;
    new_lhs.set(a_prime);
    AttributeSet minimal = removed - covered_rhs(new_lhs, removed);
    minimal.reset(a_prime);  // keep the FD non-trivial
    if (!minimal.empty()) add_fd(new_lhs, minimal);
  });

  // Case 2 (steps 15-19): extend with one of the removed attributes; the
  // RHS then loses that attribute to stay non-trivial.
  if (removed.count() > 1) {
    removed.for_each([&](AttrId a_prime) {
      AttributeSet new_lhs = x_prime;
      new_lhs.set(a_prime);
      AttributeSet candidate = removed;
      candidate.reset(a_prime);
      AttributeSet minimal = candidate - covered_rhs(new_lhs, candidate);
      if (!minimal.empty()) add_fd(new_lhs, minimal);
    });
  }
}

void ExtendedFdTree::induct_rec(const std::vector<AttrId>& x_attrs, size_t i,
                                const AttributeSet& x, const AttributeSet& y,
                                Node* current) {
  if (current->is_fd_node()) process_fd_node(x, y, current);
  for (size_t j = i; j < x_attrs.size(); ++j) {
    // New paths created by process_fd_node always contain an attribute
    // outside x, so this lookup never descends into freshly added branches.
    if (current->children.empty() || x_attrs[j] > current->children.back()->attr) {
      return;
    }
    Node* c = current->find_child(x_attrs[j]);
    if (c != nullptr) induct_rec(x_attrs, j + 1, x, y, c);
  }
}

void ExtendedFdTree::induct(const AttributeSet& x, const AttributeSet& y) {
  std::vector<AttrId> x_attrs;
  x.for_each([&](AttrId a) { x_attrs.push_back(a); });
  induct_rec(x_attrs, 0, x, y, root_.get());
}

int64_t ExtendedFdTree::total_fd_count() const {
  int64_t total = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    total += node->rhs.count();
    for (const auto& c : node->children) stack.push_back(c.get());
  }
  return total;
}

void ExtendedFdTree::reset_ids() {
  std::vector<Node*> stack = {root_.get()};
  while (!stack.empty()) {
    Node* node = stack.back();
    stack.pop_back();
    if (node->attr >= 0) node->id = node->attr;
    for (const auto& c : node->children) stack.push_back(c.get());
  }
}

int ExtendedFdTree::depth() const {
  int max_depth = 0;
  std::vector<std::pair<const Node*, int>> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    auto [node, d] = stack.back();
    stack.pop_back();
    if (d > max_depth) max_depth = d;
    for (const auto& c : node->children) stack.emplace_back(c.get(), d + 1);
  }
  return max_depth;
}

FdSet ExtendedFdTree::collect() const {
  FdSet out;
  std::vector<std::pair<const Node*, AttributeSet>> stack = {{root_.get(), {}}};
  while (!stack.empty()) {
    auto [node, path] = stack.back();
    stack.pop_back();
    node->rhs.for_each([&](AttrId a) { out.add(Fd(path, a)); });
    for (const auto& c : node->children) {
      AttributeSet child_path = path;
      child_path.set(c->attr);
      stack.emplace_back(c.get(), child_path);
    }
  }
  return out;
}

}  // namespace dhyfd
