#include "fdtree/fd_tree.h"

namespace dhyfd {

FdTree::FdTree(int num_attrs) : num_attrs_(num_attrs), root_(new Node{-1, {}, {}, {}}) {}

FdTree::Node* FdTree::Node::find_child(AttrId a) const {
  for (const auto& c : children) {
    if (c->attr == a) return c.get();
    if (c->attr > a) break;  // children sorted ascending
  }
  return nullptr;
}

FdTree::Node* FdTree::ensure_child(Node* node, AttrId a) {
  size_t pos = 0;
  while (pos < node->children.size() && node->children[pos]->attr < a) ++pos;
  if (pos < node->children.size() && node->children[pos]->attr == a) {
    return node->children[pos].get();
  }
  auto child = std::make_unique<Node>(Node{a, {}, {}, {}});
  Node* raw = child.get();
  node->children.insert(node->children.begin() + pos, std::move(child));
  ++node_count_;
  return raw;
}

void FdTree::add(const AttributeSet& lhs, AttrId rhs) {
  Node* current = root_.get();
  current->rhs_subtree.set(rhs);  // classic labeling: every path node is marked
  lhs.for_each([&](AttrId a) {
    current = ensure_child(current, a);
    current->rhs_subtree.set(rhs);
  });
  current->rhs.set(rhs);
}

bool FdTree::contains_rec(const Node* node, const AttributeSet& lhs, AttrId rhs) const {
  if (node->rhs.test(rhs)) return true;
  if (!node->rhs_subtree.test(rhs)) return false;
  for (const auto& c : node->children) {
    if (lhs.test(c->attr) && contains_rec(c.get(), lhs, rhs)) return true;
  }
  return false;
}

bool FdTree::contains_generalization(const AttributeSet& lhs, AttrId rhs) const {
  return contains_rec(root_.get(), lhs, rhs);
}

bool FdTree::remove_generalizations(Node* node, const AttributeSet& lhs, AttrId rhs,
                                    AttributeSet path, std::vector<AttributeSet>& removed) {
  if (node->rhs.test(rhs)) {
    node->rhs.reset(rhs);
    removed.push_back(path);
  }
  bool subtree_has = node->rhs.test(rhs);
  if (node->rhs_subtree.test(rhs)) {
    for (const auto& c : node->children) {
      if (lhs.test(c->attr)) {
        AttributeSet child_path = path;
        child_path.set(c->attr);
        if (remove_generalizations(c.get(), lhs, rhs, child_path, removed)) {
          subtree_has = true;
        }
      } else if (c->rhs_subtree.test(rhs)) {
        // Branch not visited by this non-FD; label may still live there.
        subtree_has = true;
      }
    }
  }
  if (!subtree_has) node->rhs_subtree.reset(rhs);
  return subtree_has || node->rhs.test(rhs) || node->rhs_subtree.test(rhs);
}

void FdTree::induct(const AttributeSet& non_fd_lhs, AttrId rhs) {
  std::vector<AttributeSet> removed;
  remove_generalizations(root_.get(), non_fd_lhs, rhs, AttributeSet(), removed);
  AttributeSet forbidden = non_fd_lhs;
  forbidden.set(rhs);
  for (const AttributeSet& z : removed) {
    for (AttrId b = 0; b < num_attrs_; ++b) {
      if (forbidden.test(b) || z.test(b)) continue;
      AttributeSet specialized = z;
      specialized.set(b);
      if (!contains_generalization(specialized, rhs)) add(specialized, rhs);
    }
  }
}

void FdTree::collect_rec(const Node* node, AttributeSet path, FdSet& out) const {
  node->rhs.for_each([&](AttrId a) { out.add(Fd(path, a)); });
  for (const auto& c : node->children) {
    AttributeSet child_path = path;
    child_path.set(c->attr);
    collect_rec(c.get(), child_path, out);
  }
}

FdSet FdTree::collect() const {
  FdSet out;
  collect_rec(root_.get(), AttributeSet(), out);
  return out;
}

int64_t FdTree::labels_rec(const Node* node) const {
  int64_t n = node->rhs_subtree.count();
  for (const auto& c : node->children) n += labels_rec(c.get());
  return n;
}

int64_t FdTree::label_count() const { return labels_rec(root_.get()); }

}  // namespace dhyfd
