#ifndef DHYFD_FD_COVER_IO_H_
#define DHYFD_FD_COVER_IO_H_

#include <iosfwd>
#include <string>

#include "fd/fd_set.h"
#include "relation/schema.h"

namespace dhyfd {

/// Plain-text serialization of FD covers, so profiling runs can be saved
/// and reloaded (e.g., rank later without re-discovering).
///
/// Format: one FD per line, `lhs -> rhs` with comma-separated column
/// names; an empty LHS is written as `{}`. Lines starting with `#` are
/// comments; the first comment records the schema (all column names in
/// order) and is required for loading.
///
///   # schema: city,street,zip
///   city,street -> zip
///   zip -> city

void WriteCover(const Schema& schema, const FdSet& cover, std::ostream& out);
std::string WriteCoverString(const Schema& schema, const FdSet& cover);
void WriteCoverFile(const Schema& schema, const FdSet& cover, const std::string& path);

struct LoadedCover {
  Schema schema;
  FdSet cover;
};

/// Throws std::runtime_error on malformed input or unknown column names.
LoadedCover ReadCover(std::istream& in);
LoadedCover ReadCoverString(const std::string& text);
LoadedCover ReadCoverFile(const std::string& path);

}  // namespace dhyfd

#endif  // DHYFD_FD_COVER_IO_H_
