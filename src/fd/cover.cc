#include "fd/cover.h"

#include <set>
#include <unordered_set>
#include <utility>

#include "util/timer.h"

namespace dhyfd {

FdSet CanonicalCover(const FdSet& left_reduced, int num_attrs) {
  FdSet singles = left_reduced.with_singleton_rhs();
  ClosureEngine engine(singles, num_attrs);
  std::vector<uint8_t> alive(singles.fds.size(), 1);
  // Drop each FD that the remaining live FDs already imply. Scanning in
  // order is the classical non-redundant-cover reduction; any order yields
  // a valid (possibly different) canonical cover.
  for (int i = 0; i < static_cast<int>(singles.fds.size()); ++i) {
    alive[i] = 0;
    if (!engine.implies(singles.fds[i].lhs, singles.fds[i].rhs, -1, &alive)) {
      alive[i] = 1;
    }
  }
  FdSet non_redundant;
  for (size_t i = 0; i < singles.fds.size(); ++i) {
    if (alive[i]) non_redundant.add(singles.fds[i]);
  }
  return non_redundant.with_merged_lhs();
}

FdSet LeftReduce(const FdSet& fds, int num_attrs) {
  FdSet singles = fds.with_singleton_rhs();
  ClosureEngine engine(singles, num_attrs);
  FdSet out;
  std::set<std::pair<AttributeSet, AttributeSet>> seen;
  for (const Fd& fd : singles.fds) {
    if (fd.lhs.test(fd.rhs.first())) continue;  // trivial
    AttributeSet lhs = fd.lhs;
    // Greedily drop attributes whose removal preserves implication.
    fd.lhs.for_each([&](AttrId a) {
      AttributeSet candidate = lhs;
      candidate.reset(a);
      if (engine.implies(candidate, fd.rhs)) lhs = candidate;
    });
    if (seen.emplace(lhs, fd.rhs).second) out.add(Fd(lhs, fd.rhs));
  }
  return out;
}

bool IsLeftReduced(const FdSet& fds, int num_attrs) {
  FdSet singles = fds.with_singleton_rhs();
  ClosureEngine engine(singles, num_attrs);
  for (const Fd& fd : singles.fds) {
    bool reducible = false;
    fd.lhs.for_each([&](AttrId a) {
      if (reducible) return;
      AttributeSet candidate = fd.lhs;
      candidate.reset(a);
      if (engine.implies(candidate, fd.rhs)) reducible = true;
    });
    if (reducible) return false;
  }
  return true;
}

bool IsNonRedundant(const FdSet& fds, int num_attrs) {
  ClosureEngine engine(fds, num_attrs);
  for (int i = 0; i < static_cast<int>(fds.fds.size()); ++i) {
    if (engine.implies(fds.fds[i].lhs, fds.fds[i].rhs, i)) return false;
  }
  return true;
}

bool HasUniqueLhs(const FdSet& fds) {
  std::unordered_set<size_t> seen;
  for (const Fd& fd : fds.fds) {
    if (!seen.insert(fd.lhs.hash()).second) {
      // Hash collision or true duplicate: verify by scan.
      int hits = 0;
      for (const Fd& other : fds.fds) {
        if (other.lhs == fd.lhs) ++hits;
      }
      if (hits > 1) return false;
    }
  }
  return true;
}

CoverStats ComputeCoverStats(const FdSet& left_reduced, int num_attrs) {
  CoverStats stats;
  stats.left_reduced_count = left_reduced.size();
  stats.left_reduced_occurrences = left_reduced.attribute_occurrences();
  Timer timer;
  FdSet canonical = CanonicalCover(left_reduced, num_attrs);
  stats.seconds = timer.seconds();
  stats.canonical_count = canonical.size();
  stats.canonical_occurrences = canonical.attribute_occurrences();
  if (stats.left_reduced_count > 0) {
    stats.percent_size =
        100.0 * static_cast<double>(stats.canonical_count) /
        static_cast<double>(stats.left_reduced_count);
  }
  if (stats.left_reduced_occurrences > 0) {
    stats.percent_card =
        100.0 * static_cast<double>(stats.canonical_occurrences) /
        static_cast<double>(stats.left_reduced_occurrences);
  }
  return stats;
}

}  // namespace dhyfd
