#include "fd/keys.h"

#include <deque>

#include "fd/closure.h"

namespace dhyfd {

namespace {

// Greedily drops attributes while the set stays a superkey.
AttributeSet MinimizeKey(const ClosureEngine& engine, AttributeSet key,
                         const AttributeSet& all) {
  AttributeSet attrs = key;
  attrs.for_each([&](AttrId a) {
    AttributeSet candidate = key;
    candidate.reset(a);
    if (engine.closure(candidate) == all) key = candidate;
  });
  return key;
}

}  // namespace

bool IsSuperkey(const FdSet& cover, const AttributeSet& attrs, int num_attrs) {
  ClosureEngine engine(cover, num_attrs);
  return engine.closure(attrs) == AttributeSet::full(num_attrs);
}

AttributeSet MandatoryKeyAttributes(const FdSet& cover, int num_attrs) {
  AttributeSet in_rhs;
  for (const Fd& fd : cover.fds) in_rhs |= fd.rhs;
  return AttributeSet::full(num_attrs) - in_rhs;
}

std::vector<AttributeSet> FindCandidateKeys(const FdSet& cover, int num_attrs,
                                            size_t max_keys) {
  ClosureEngine engine(cover, num_attrs);
  const AttributeSet all = AttributeSet::full(num_attrs);
  std::vector<AttributeSet> keys;
  if (num_attrs == 0) return keys;

  // Lucchesi-Osborn: seed with one minimal key, then expand each known key
  // through every FD — X + (K - Y) is a superkey whenever K is.
  keys.push_back(MinimizeKey(engine, all, all));
  std::deque<AttributeSet> queue(keys.begin(), keys.end());
  while (!queue.empty()) {
    if (max_keys > 0 && keys.size() >= max_keys) break;
    AttributeSet k = queue.front();
    queue.pop_front();
    for (const Fd& fd : cover.fds) {
      AttributeSet candidate = fd.lhs | (k - fd.rhs);
      bool dominated = false;
      for (const AttributeSet& existing : keys) {
        if (existing.is_subset_of(candidate)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      AttributeSet fresh = MinimizeKey(engine, candidate, all);
      keys.push_back(fresh);
      queue.push_back(fresh);
      if (max_keys > 0 && keys.size() >= max_keys) break;
    }
  }
  return keys;
}

}  // namespace dhyfd
