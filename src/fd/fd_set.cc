#include "fd/fd_set.h"

#include <algorithm>
#include <unordered_map>

namespace dhyfd {

FdSet FdSet::with_singleton_rhs() const {
  FdSet out;
  out.fds.reserve(fds.size());
  for (const Fd& fd : fds) {
    fd.rhs.for_each([&](AttrId a) { out.fds.emplace_back(fd.lhs, a); });
  }
  return out;
}

FdSet FdSet::with_merged_lhs() const {
  std::unordered_map<AttributeSet, AttributeSet, AttributeSetHash> merged;
  std::vector<AttributeSet> order;
  for (const Fd& fd : fds) {
    auto [it, inserted] = merged.emplace(fd.lhs, fd.rhs);
    if (inserted) {
      order.push_back(fd.lhs);
    } else {
      it->second |= fd.rhs;
    }
  }
  FdSet out;
  out.fds.reserve(order.size());
  for (const AttributeSet& lhs : order) out.fds.emplace_back(lhs, merged[lhs]);
  return out;
}

void FdSet::sort() {
  std::sort(fds.begin(), fds.end(), [](const Fd& a, const Fd& b) {
    int ca = a.lhs.count(), cb = b.lhs.count();
    if (ca != cb) return ca < cb;
    if (a.lhs != b.lhs) return a.lhs < b.lhs;
    return a.rhs < b.rhs;
  });
}

}  // namespace dhyfd
