#include "fd/closure.h"

namespace dhyfd {

ClosureEngine::ClosureEngine(const FdSet& fds, int num_attrs)
    : fds_(fds.fds), num_attrs_(num_attrs), lhs_index_(num_attrs) {
  lhs_counts_.reserve(fds_.size());
  for (int32_t i = 0; i < static_cast<int32_t>(fds_.size()); ++i) {
    lhs_counts_.push_back(fds_[i].lhs.count());
    if (fds_[i].lhs.empty()) {
      empty_lhs_fds_.push_back(i);
    } else {
      fds_[i].lhs.for_each([&](AttrId a) { lhs_index_[a].push_back(i); });
    }
  }
  counters_.assign(fds_.size(), 0);
  stamps_.assign(fds_.size(), 0);
}

AttributeSet ClosureEngine::closure(const AttributeSet& x, int skip_fd,
                                    const std::vector<uint8_t>* alive,
                                    const AttributeSet* stop_when) const {
  AttributeSet result = x;
  ++epoch_;
  if (epoch_ == 0) {
    // Stamp wrap-around: invalidate everything once per 2^32 calls.
    stamps_.assign(stamps_.size(), 0);
    epoch_ = 1;
  }

  if (stop_when != nullptr && stop_when->is_subset_of(result)) return result;

  auto fd_enabled = [&](int32_t i) {
    return i != skip_fd && (alive == nullptr || (*alive)[i] != 0);
  };

  // Worklist of attributes whose LHS counters still need decrementing.
  std::vector<AttrId> queue;
  queue.reserve(num_attrs_);
  x.for_each([&](AttrId a) { queue.push_back(a); });

  bool done = false;
  auto fire = [&](int32_t i) {
    fds_[i].rhs.for_each([&](AttrId b) {
      if (!result.test(b)) {
        result.set(b);
        queue.push_back(b);
      }
    });
    if (stop_when != nullptr && stop_when->is_subset_of(result)) done = true;
  };

  for (int32_t i : empty_lhs_fds_) {
    if (fd_enabled(i)) fire(i);
    if (done) return result;
  }

  while (!queue.empty() && !done) {
    AttrId a = queue.back();
    queue.pop_back();
    for (int32_t i : lhs_index_[a]) {
      if (stamps_[i] != epoch_) {
        stamps_[i] = epoch_;
        counters_[i] = lhs_counts_[i];
      }
      if (--counters_[i] == 0 && fd_enabled(i)) {
        fire(i);
        if (done) break;
      }
    }
  }
  return result;
}

bool ClosureEngine::implies(const AttributeSet& lhs, const AttributeSet& rhs,
                            int skip_fd, const std::vector<uint8_t>* alive) const {
  return rhs.is_subset_of(closure(lhs, skip_fd, alive, &rhs));
}

AttributeSet Closure(const FdSet& fds, const AttributeSet& x, int num_attrs) {
  return ClosureEngine(fds, num_attrs).closure(x);
}

bool Implies(const FdSet& fds, const Fd& fd, int num_attrs) {
  return ClosureEngine(fds, num_attrs).implies(fd.lhs, fd.rhs);
}

bool CoversEquivalent(const FdSet& a, const FdSet& b, int num_attrs) {
  ClosureEngine ea(a, num_attrs), eb(b, num_attrs);
  for (const Fd& fd : a.fds) {
    if (!eb.implies(fd.lhs, fd.rhs)) return false;
  }
  for (const Fd& fd : b.fds) {
    if (!ea.implies(fd.lhs, fd.rhs)) return false;
  }
  return true;
}

}  // namespace dhyfd
