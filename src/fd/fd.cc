#include "fd/fd.h"

namespace dhyfd {

std::string Fd::to_string(const Schema& schema) const {
  std::string out = lhs.empty() ? "{}" : schema.format(lhs);
  out += " -> ";
  out += schema.format(rhs);
  return out;
}

std::string Fd::to_string() const {
  return lhs.to_string() + " -> " + rhs.to_string();
}

}  // namespace dhyfd
