#ifndef DHYFD_FD_FD_SET_H_
#define DHYFD_FD_FD_SET_H_

#include <cstdint>
#include <vector>

#include "fd/fd.h"

namespace dhyfd {

/// A set of FDs with the paper's two size measures.
struct FdSet {
  std::vector<Fd> fds;

  /// |Sigma|: number of FDs.
  int64_t size() const { return static_cast<int64_t>(fds.size()); }

  /// ||Sigma||: total attribute occurrences across all FDs.
  int64_t attribute_occurrences() const {
    int64_t n = 0;
    for (const Fd& fd : fds) n += fd.attribute_occurrences();
    return n;
  }

  bool empty() const { return fds.empty(); }
  void add(Fd fd) { fds.push_back(fd); }

  /// Splits multi-attribute RHSs into one FD per RHS attribute.
  FdSet with_singleton_rhs() const;

  /// Merges FDs with identical LHSs into one FD with a set RHS.
  FdSet with_merged_lhs() const;

  /// Sorts by (LHS size, LHS bits, RHS bits); gives deterministic output
  /// order for tests and reports.
  void sort();
};

}  // namespace dhyfd

#endif  // DHYFD_FD_FD_SET_H_
