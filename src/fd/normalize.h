#ifndef DHYFD_FD_NORMALIZE_H_
#define DHYFD_FD_NORMALIZE_H_

#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "relation/schema.h"

namespace dhyfd {

/// Schema normalization on top of discovered covers.
///
/// The paper grounds its redundancy measure in normal-form theory (Vincent;
/// Boyce-Codd / Third Normal Form): the FDs that cause redundant values are
/// exactly the ones normalization would eliminate. This module closes that
/// loop: BCNF/3NF tests and the classical synthesis/decomposition
/// algorithms, driven by a canonical cover.

/// One relation of a decomposed schema.
struct SubSchema {
  AttributeSet attrs;
  /// The FDs (projected from the cover) that this relation enforces.
  FdSet fds;
  bool is_key_schema = false;  // added by 3NF synthesis to preserve a key

  std::string to_string(const Schema& schema) const;
};

/// True if every FD's LHS is a superkey (trivial FDs ignored).
bool IsBcnf(const FdSet& cover, int num_attrs);

/// True if for every FD X -> A, X is a superkey or A is a prime attribute
/// (member of some candidate key).
bool Is3nf(const FdSet& cover, int num_attrs);

/// The FDs of `cover` that violate BCNF, most reusable first (input order).
std::vector<Fd> BcnfViolations(const FdSet& cover, int num_attrs);

/// Classical BCNF decomposition: repeatedly splits on a violating FD.
/// Lossless; may not preserve all dependencies (flagged in the result).
struct BcnfResult {
  std::vector<SubSchema> schemas;
  bool dependencies_preserved = true;
};
BcnfResult DecomposeBcnf(const FdSet& cover, int num_attrs);

/// Bernstein-style 3NF synthesis from a canonical cover: one schema per
/// LHS-group, plus a key schema when no group contains a candidate key.
/// Lossless and dependency-preserving.
std::vector<SubSchema> Synthesize3nf(const FdSet& canonical_cover, int num_attrs);

/// The projection of `cover` onto `attrs`: all implied FDs X -> Y with
/// X, Y inside attrs, left-reduced. Exponential in |attrs| in the worst
/// case; intended for the small sub-schemas produced by decomposition.
FdSet ProjectCover(const FdSet& cover, const AttributeSet& attrs, int num_attrs);

}  // namespace dhyfd

#endif  // DHYFD_FD_NORMALIZE_H_
