#include "fd/normalize.h"

#include <deque>

#include "fd/closure.h"
#include "fd/cover.h"
#include "fd/keys.h"

namespace dhyfd {

std::string SubSchema::to_string(const Schema& schema) const {
  std::string out = "R(" + schema.format(attrs) + ")";
  if (is_key_schema) out += " [key schema]";
  return out;
}

bool IsBcnf(const FdSet& cover, int num_attrs) {
  ClosureEngine engine(cover, num_attrs);
  const AttributeSet all = AttributeSet::full(num_attrs);
  for (const Fd& fd : cover.fds) {
    if (fd.rhs.is_subset_of(fd.lhs)) continue;  // trivial
    if (engine.closure(fd.lhs) != all) return false;
  }
  return true;
}

bool Is3nf(const FdSet& cover, int num_attrs) {
  ClosureEngine engine(cover, num_attrs);
  const AttributeSet all = AttributeSet::full(num_attrs);
  AttributeSet prime;
  for (const AttributeSet& key : FindCandidateKeys(cover, num_attrs)) prime |= key;
  for (const Fd& fd : cover.fds) {
    if (engine.closure(fd.lhs) == all) continue;
    AttributeSet nontrivial = fd.rhs - fd.lhs;
    if (!nontrivial.is_subset_of(prime)) return false;
  }
  return true;
}

std::vector<Fd> BcnfViolations(const FdSet& cover, int num_attrs) {
  ClosureEngine engine(cover, num_attrs);
  const AttributeSet all = AttributeSet::full(num_attrs);
  std::vector<Fd> out;
  for (const Fd& fd : cover.fds) {
    if (fd.rhs.is_subset_of(fd.lhs)) continue;
    if (engine.closure(fd.lhs) != all) out.push_back(fd);
  }
  return out;
}

FdSet ProjectCover(const FdSet& cover, const AttributeSet& attrs, int num_attrs) {
  // Enumerate subsets of attrs as LHS candidates; keep X -> (closure(X) &
  // attrs) - X, then left-reduce. Exponential in |attrs|; decomposition
  // schemas are small.
  ClosureEngine engine(cover, num_attrs);
  std::vector<AttrId> members;
  attrs.for_each([&](AttrId a) { members.push_back(a); });
  FdSet projected;
  const size_t n = members.size();
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    AttributeSet lhs;
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) lhs.set(members[i]);
    }
    AttributeSet rhs = (engine.closure(lhs) & attrs) - lhs;
    if (!rhs.empty()) projected.add(Fd(lhs, rhs));
  }
  return LeftReduce(projected, num_attrs);
}

BcnfResult DecomposeBcnf(const FdSet& cover, int num_attrs) {
  BcnfResult result;
  std::deque<AttributeSet> todo = {AttributeSet::full(num_attrs)};
  while (!todo.empty()) {
    AttributeSet attrs = todo.front();
    todo.pop_front();
    if (attrs.count() > 24) {
      // Projection is exponential; treat very wide fragments as final.
      result.schemas.push_back({attrs, FdSet(), false});
      continue;
    }
    FdSet local = ProjectCover(cover, attrs, num_attrs);
    ClosureEngine engine(local, num_attrs);
    const Fd* violator = nullptr;
    for (const Fd& fd : local.fds) {
      if (fd.rhs.is_subset_of(fd.lhs)) continue;
      if (!attrs.is_subset_of(engine.closure(fd.lhs))) {
        violator = &fd;
        break;
      }
    }
    if (violator == nullptr) {
      result.schemas.push_back({attrs, local, false});
      continue;
    }
    // Split on X -> X+ & attrs: R1 = X+, R2 = attrs - (X+ - X).
    AttributeSet closure = engine.closure(violator->lhs) & attrs;
    AttributeSet r1 = closure;
    AttributeSet r2 = (attrs - closure) | violator->lhs;
    todo.push_back(r1);
    todo.push_back(r2);
  }
  // Dependency preservation: every cover FD must be implied by the union of
  // the projected FDs.
  FdSet united;
  for (const SubSchema& s : result.schemas) {
    for (const Fd& fd : s.fds.fds) united.add(fd);
  }
  ClosureEngine check(united, num_attrs);
  for (const Fd& fd : cover.fds) {
    if (!check.implies(fd.lhs, fd.rhs)) {
      result.dependencies_preserved = false;
      break;
    }
  }
  return result;
}

std::vector<SubSchema> Synthesize3nf(const FdSet& canonical_cover, int num_attrs) {
  // Bernstein synthesis: one schema per canonical-cover FD (the canonical
  // cover already merged equal LHSs), dropping schemas contained in others,
  // plus a key schema if none contains a candidate key. Attributes in no FD
  // are appended to the key schema.
  std::vector<SubSchema> schemas;
  AttributeSet covered;
  for (const Fd& fd : canonical_cover.fds) {
    SubSchema s;
    s.attrs = fd.lhs | fd.rhs;
    s.fds.add(fd);
    covered |= s.attrs;
    schemas.push_back(std::move(s));
  }
  // Drop schemas whose attribute set is contained in another's, merging
  // their FDs into the container (two passes: merge first, then collect,
  // so containers processed earlier still receive the merged FDs).
  std::vector<int> container(schemas.size(), -1);
  for (size_t i = 0; i < schemas.size(); ++i) {
    for (size_t j = 0; j < schemas.size(); ++j) {
      if (i == j || container[j] >= 0) continue;
      if (schemas[i].attrs.is_subset_of(schemas[j].attrs) &&
          (schemas[i].attrs != schemas[j].attrs || i > j)) {
        container[i] = static_cast<int>(j);
        break;
      }
    }
  }
  for (size_t i = 0; i < schemas.size(); ++i) {
    int c = container[i];
    if (c < 0) continue;
    // Follow chains to a surviving container.
    while (container[c] >= 0) c = container[c];
    for (const Fd& fd : schemas[i].fds.fds) schemas[c].fds.add(fd);
  }
  std::vector<SubSchema> kept;
  for (size_t i = 0; i < schemas.size(); ++i) {
    if (container[i] < 0) kept.push_back(schemas[i]);
  }

  std::vector<AttributeSet> keys = FindCandidateKeys(canonical_cover, num_attrs, 64);
  bool has_key_schema = false;
  for (const SubSchema& s : kept) {
    for (const AttributeSet& key : keys) {
      if (key.is_subset_of(s.attrs)) {
        has_key_schema = true;
        break;
      }
    }
    if (has_key_schema) break;
  }
  AttributeSet uncovered = AttributeSet::full(num_attrs) - covered;
  if (!has_key_schema || !uncovered.empty()) {
    SubSchema key_schema;
    key_schema.attrs = (keys.empty() ? AttributeSet::full(num_attrs) : keys.front());
    key_schema.attrs |= uncovered;
    key_schema.is_key_schema = true;
    kept.push_back(std::move(key_schema));
  }
  return kept;
}

}  // namespace dhyfd
