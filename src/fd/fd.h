#ifndef DHYFD_FD_FD_H_
#define DHYFD_FD_FD_H_

#include <string>

#include "relation/schema.h"
#include "util/attribute_set.h"

namespace dhyfd {

/// A functional dependency X -> Y over a schema.
///
/// Discovery algorithms emit left-reduced covers whose FDs have singleton
/// RHSs; canonical covers merge FDs with equal LHSs, so `rhs` is a set.
struct Fd {
  AttributeSet lhs;
  AttributeSet rhs;

  Fd() = default;
  Fd(AttributeSet l, AttributeSet r) : lhs(l), rhs(r) {}
  Fd(AttributeSet l, AttrId r) : lhs(l), rhs(AttributeSet::single(r)) {}

  bool operator==(const Fd& o) const { return lhs == o.lhs && rhs == o.rhs; }

  /// Total attribute occurrences |LHS| + |RHS|; summed over a cover this is
  /// the paper's ||.|| cover-size measure (Table III).
  int attribute_occurrences() const { return lhs.count() + rhs.count(); }

  /// Renders with schema names, e.g. "last_name, zip -> city".
  std::string to_string(const Schema& schema) const;

  /// Renders with numeric attributes, e.g. "{1,5} -> {3}".
  std::string to_string() const;
};

}  // namespace dhyfd

#endif  // DHYFD_FD_FD_H_
