#include "fd/cover_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dhyfd {

namespace {

std::vector<std::string> SplitTrimmed(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  auto flush = [&]() {
    size_t b = cur.find_first_not_of(" \t");
    size_t e = cur.find_last_not_of(" \t");
    parts.push_back(b == std::string::npos ? "" : cur.substr(b, e - b + 1));
    cur.clear();
  };
  for (char c : text) {
    if (c == sep) {
      flush();
    } else {
      cur += c;
    }
  }
  flush();
  return parts;
}

AttributeSet ParseAttrList(const std::string& text, const Schema& schema,
                           int line_no) {
  AttributeSet out;
  if (text == "{}" || text.empty()) return out;
  for (const std::string& name : SplitTrimmed(text, ',')) {
    AttrId a = schema.index_of(name);
    if (a < 0) {
      throw std::runtime_error("cover line " + std::to_string(line_no) +
                               ": unknown column '" + name + "'");
    }
    out.set(a);
  }
  return out;
}

}  // namespace

void WriteCover(const Schema& schema, const FdSet& cover, std::ostream& out) {
  out << "# schema: ";
  for (int i = 0; i < schema.size(); ++i) {
    if (i > 0) out << ',';
    out << schema.name(i);
  }
  out << '\n';
  out << "# " << cover.size() << " FDs, " << cover.attribute_occurrences()
      << " attribute occurrences\n";
  for (const Fd& fd : cover.fds) {
    out << (fd.lhs.empty() ? "{}" : schema.format(fd.lhs)) << " -> "
        << schema.format(fd.rhs) << '\n';
  }
}

std::string WriteCoverString(const Schema& schema, const FdSet& cover) {
  std::ostringstream out;
  WriteCover(schema, cover, out);
  return out.str();
}

void WriteCoverFile(const Schema& schema, const FdSet& cover, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cover: cannot write " + path);
  WriteCover(schema, cover, out);
}

LoadedCover ReadCover(std::istream& in) {
  LoadedCover result;
  std::string line;
  int line_no = 0;
  bool have_schema = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      const std::string kSchemaTag = "# schema: ";
      if (!have_schema && line.rfind(kSchemaTag, 0) == 0) {
        result.schema = Schema(SplitTrimmed(line.substr(kSchemaTag.size()), ','));
        have_schema = true;
      }
      continue;
    }
    if (!have_schema) {
      throw std::runtime_error("cover: missing '# schema:' header line");
    }
    size_t arrow = line.find("->");
    if (arrow == std::string::npos) {
      throw std::runtime_error("cover line " + std::to_string(line_no) +
                               ": missing '->'");
    }
    std::string lhs_text = line.substr(0, arrow);
    std::string rhs_text = line.substr(arrow + 2);
    // Trim.
    auto trim = [](std::string& s) {
      size_t b = s.find_first_not_of(" \t");
      size_t e = s.find_last_not_of(" \t");
      s = b == std::string::npos ? "" : s.substr(b, e - b + 1);
    };
    trim(lhs_text);
    trim(rhs_text);
    AttributeSet lhs = ParseAttrList(lhs_text, result.schema, line_no);
    AttributeSet rhs = ParseAttrList(rhs_text, result.schema, line_no);
    if (rhs.empty()) {
      throw std::runtime_error("cover line " + std::to_string(line_no) +
                               ": empty RHS");
    }
    result.cover.add(Fd(lhs, rhs));
  }
  if (!have_schema) {
    throw std::runtime_error("cover: missing '# schema:' header line");
  }
  return result;
}

LoadedCover ReadCoverString(const std::string& text) {
  std::istringstream in(text);
  return ReadCover(in);
}

LoadedCover ReadCoverFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cover: cannot open " + path);
  return ReadCover(in);
}

}  // namespace dhyfd
