#ifndef DHYFD_FD_ARMSTRONG_H_
#define DHYFD_FD_ARMSTRONG_H_

#include <vector>

#include "fd/fd_set.h"
#include "relation/relation.h"

namespace dhyfd {

/// Armstrong relation generation (Lopes, Petit & Lakhal, EDBT 2000 — cited
/// by the paper as [10]).
///
/// An Armstrong relation for an FD set Sigma satisfies exactly the FDs
/// implied by Sigma: every implied FD holds, every non-implied FD is
/// violated. Discovery on the generated relation must therefore return a
/// cover equivalent to Sigma — which makes this module both a user-facing
/// feature (minimal example databases for a constraint design) and a
/// cross-validation oracle for the whole discovery stack.

/// The maximal sets max(Sigma, A): set-maximal attribute sets X with
/// A not in closure(X). Computed from the minimal LHSs of A via transversal
/// duality.
std::vector<AttributeSet> MaximalSets(const FdSet& cover, AttrId attr, int num_attrs);

/// Builds an Armstrong relation for the cover: one "reference" row plus one
/// row per distinct maximal set, agreeing with the reference exactly on
/// that set. Row count is 1 + |union of max sets| (minimum possible up to
/// constants).
Relation BuildArmstrongRelation(const FdSet& cover, int num_attrs);

}  // namespace dhyfd

#endif  // DHYFD_FD_ARMSTRONG_H_
