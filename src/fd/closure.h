#ifndef DHYFD_FD_CLOSURE_H_
#define DHYFD_FD_CLOSURE_H_

#include <vector>

#include "fd/fd_set.h"

namespace dhyfd {

/// Linear-time attribute closure (Beeri-Bernstein LinClosure) over a fixed
/// FD set. Builds the attribute -> FD index once; each closure() call runs
/// in O(||Sigma||). The canonical-cover computation calls closure once per
/// FD, so this is the inner loop of Table III's "Time" column.
class ClosureEngine {
 public:
  ClosureEngine(const FdSet& fds, int num_attrs);

  /// X+ under the indexed FDs. FDs whose index is `skip_fd` or for which
  /// alive (if non-null) is 0 are ignored. If `stop_when` is non-null the
  /// computation returns as soon as the running closure contains it; the
  /// returned set is then a (possibly partial) subset of X+ guaranteed to
  /// contain stop_when iff X+ does.
  AttributeSet closure(const AttributeSet& x, int skip_fd = -1,
                       const std::vector<uint8_t>* alive = nullptr,
                       const AttributeSet* stop_when = nullptr) const;

  /// True if the (filtered) FD set implies lhs -> rhs. Early-exits once rhs
  /// is reached, so it is much cheaper than a full closure on large covers.
  bool implies(const AttributeSet& lhs, const AttributeSet& rhs, int skip_fd = -1,
               const std::vector<uint8_t>* alive = nullptr) const;

  int num_fds() const { return static_cast<int>(fds_.size()); }
  const Fd& fd(int i) const { return fds_[i]; }

 private:
  std::vector<Fd> fds_;
  int num_attrs_;
  // For attribute a, the indices of FDs whose LHS contains a.
  std::vector<std::vector<int32_t>> lhs_index_;
  // FDs with empty LHS fire unconditionally.
  std::vector<int32_t> empty_lhs_fds_;
  std::vector<int32_t> lhs_counts_;  // |LHS| per FD
  // Epoch-stamped counters: per closure() call only touched entries are
  // (lazily) re-initialized, so a call costs O(work done), not O(|Sigma|).
  mutable std::vector<int32_t> counters_;  // unmet LHS attrs per FD
  mutable std::vector<uint32_t> stamps_;
  mutable uint32_t epoch_ = 0;
};

/// One-shot convenience wrappers.
AttributeSet Closure(const FdSet& fds, const AttributeSet& x, int num_attrs);
bool Implies(const FdSet& fds, const Fd& fd, int num_attrs);

/// True if the two FD sets imply each other (are covers of the same set).
bool CoversEquivalent(const FdSet& a, const FdSet& b, int num_attrs);

}  // namespace dhyfd

#endif  // DHYFD_FD_CLOSURE_H_
