#include "fd/armstrong.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "algo/hitting_set.h"
#include "fd/closure.h"

namespace dhyfd {

namespace {

// All minimal LHSs X (subseteq R - {attr}) with attr in closure(X).
// Exhaustive by-size enumeration with domination pruning: a Lucchesi-
// Osborn-style expansion is only complete for candidate keys, not for
// arbitrary single-attribute targets. Exponential in num_attrs; Armstrong
// generation targets design-sized schemas (bounded in the caller).
std::vector<AttributeSet> FindMinimalLhs(const ClosureEngine& engine, AttrId attr,
                                         int num_attrs) {
  if (engine.closure(AttributeSet()).test(attr)) return {AttributeSet()};
  std::vector<AttrId> rest_attrs;
  for (AttrId a = 0; a < num_attrs; ++a) {
    if (a != attr) rest_attrs.push_back(a);
  }
  const int k = static_cast<int>(rest_attrs.size());
  std::vector<std::vector<uint32_t>> by_size(k + 1);
  for (uint32_t mask = 1; mask < (1u << k); ++mask) {
    by_size[std::popcount(mask)].push_back(mask);
  }
  std::vector<uint32_t> minimal_masks;
  std::vector<AttributeSet> minimal;
  for (int size = 1; size <= k; ++size) {
    for (uint32_t mask : by_size[size]) {
      bool dominated = false;
      for (uint32_t seen : minimal_masks) {
        if ((seen & ~mask) == 0) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      AttributeSet lhs;
      for (int i = 0; i < k; ++i) {
        if ((mask >> i) & 1) lhs.set(rest_attrs[i]);
      }
      if (engine.closure(lhs).test(attr)) {
        minimal_masks.push_back(mask);
        minimal.push_back(lhs);
      }
    }
  }
  return minimal;
}

}  // namespace

std::vector<AttributeSet> MaximalSets(const FdSet& cover, AttrId attr, int num_attrs) {
  if (num_attrs > 24) {
    throw std::invalid_argument("MaximalSets: schemas above 24 attributes");
  }
  ClosureEngine engine(cover, num_attrs);
  AttributeSet rest = AttributeSet::full(num_attrs);
  rest.reset(attr);

  std::vector<AttributeSet> min_lhss = FindMinimalLhs(engine, attr, num_attrs);
  // Duality: X avoids determining attr iff its complement within
  // R - {attr} hits every minimal LHS; maximal X <-> minimal transversals.
  std::vector<AttributeSet> transversals = MinimalHittingSets(min_lhss);
  std::vector<AttributeSet> max_sets;
  max_sets.reserve(transversals.size());
  for (const AttributeSet& t : transversals) max_sets.push_back(rest - t);
  return max_sets;
}

Relation BuildArmstrongRelation(const FdSet& cover, int num_attrs) {
  // Distinct maximal sets over all attributes, in deterministic order.
  std::vector<AttributeSet> all_max;
  for (AttrId a = 0; a < num_attrs; ++a) {
    for (AttributeSet& m : MaximalSets(cover, a, num_attrs)) all_max.push_back(m);
  }
  std::sort(all_max.begin(), all_max.end());
  all_max.erase(std::unique(all_max.begin(), all_max.end()), all_max.end());

  const RowId rows = static_cast<RowId>(all_max.size()) + 1;
  Relation r(Schema::numbered(num_attrs), rows);
  // Row 0 is the reference; row i+1 agrees with it exactly on all_max[i].
  for (AttrId c = 0; c < num_attrs; ++c) {
    std::vector<ValueId> column(rows);
    column[0] = 0;
    ValueId next_code = 1;
    for (size_t i = 0; i < all_max.size(); ++i) {
      column[i + 1] = all_max[i].test(c) ? 0 : next_code++;
    }
    for (RowId row = 0; row < rows; ++row) r.set_value(row, c, column[row]);
    r.set_domain_size(c, next_code);
  }
  return r;
}

}  // namespace dhyfd
