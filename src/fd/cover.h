#ifndef DHYFD_FD_COVER_H_
#define DHYFD_FD_COVER_H_

#include "fd/closure.h"
#include "fd/fd_set.h"

namespace dhyfd {

/// Cover manipulation (paper Section V-D, Table III).
///
/// Discovery algorithms emit left-reduced covers with singleton RHSs; the
/// canonical cover is the left-reduced, non-redundant cover with unique
/// LHSs obtained by dropping implied FDs and merging equal LHSs (Maier).

/// Computes a canonical cover from a left-reduced cover. The input may have
/// set-valued RHSs; it is split to singleton RHSs first. The result has one
/// FD per remaining LHS with a set RHS.
FdSet CanonicalCover(const FdSet& left_reduced, int num_attrs);

/// Left-reduces an arbitrary FD set: minimizes every LHS w.r.t. the whole
/// set, deduplicates, and returns singleton-RHS FDs. Used by tests and by
/// the data generator to normalize planted FD sets.
FdSet LeftReduce(const FdSet& fds, int num_attrs);

/// True if no FD's LHS can lose an attribute without losing implication.
bool IsLeftReduced(const FdSet& fds, int num_attrs);

/// True if no FD is implied by the others.
bool IsNonRedundant(const FdSet& fds, int num_attrs);

/// True if all LHSs are distinct.
bool HasUniqueLhs(const FdSet& fds);

/// Size/percentage rows of the paper's Table III.
struct CoverStats {
  int64_t left_reduced_count = 0;        // |L-r|
  int64_t left_reduced_occurrences = 0;  // ||L-r||
  int64_t canonical_count = 0;           // |Can|
  int64_t canonical_occurrences = 0;     // ||Can||
  double percent_size = 0;               // %S = 100*|Can|/|L-r|
  double percent_card = 0;               // %C = 100*||Can||/||L-r||
  double seconds = 0;                    // canonical-cover computation time
};

CoverStats ComputeCoverStats(const FdSet& left_reduced, int num_attrs);

}  // namespace dhyfd

#endif  // DHYFD_FD_COVER_H_
