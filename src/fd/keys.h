#ifndef DHYFD_FD_KEYS_H_
#define DHYFD_FD_KEYS_H_

#include <vector>

#include "fd/fd_set.h"

namespace dhyfd {

/// Candidate-key discovery from an FD cover.
///
/// The paper motivates redundancy ranking partly through keys: FDs causing
/// zero redundancy hint at keys (Section VI-A), and key/LHS structure
/// drives the normalization use case. This module derives the minimal keys
/// of a schema from a discovered cover with the classical attribute
/// classification + closure expansion search.

/// True if `attrs` is a superkey: its closure under `cover` is the schema.
bool IsSuperkey(const FdSet& cover, const AttributeSet& attrs, int num_attrs);

/// All minimal candidate keys. Worst case exponential in the number of
/// keys (which the output must contain anyway); `max_keys` caps the search
/// for pathological schemas (0 = unlimited).
std::vector<AttributeSet> FindCandidateKeys(const FdSet& cover, int num_attrs,
                                            size_t max_keys = 0);

/// Attributes that appear in no RHS of the (singleton-RHS) cover; they must
/// be part of every key. A classical seed for key search.
AttributeSet MandatoryKeyAttributes(const FdSet& cover, int num_attrs);

}  // namespace dhyfd

#endif  // DHYFD_FD_KEYS_H_
