#include "query/query.h"

#include <cmath>

namespace dhyfd {

namespace {

std::string CheckColumns(const std::vector<AttrId>& cols, const char* which,
                         int num_cols) {
  if (cols.size() > AttributeSet::kCapacity) {
    return std::string(which) + " lists " + std::to_string(cols.size()) +
           " columns; at most " + std::to_string(AttributeSet::kCapacity) +
           " are addressable";
  }
  for (AttrId a : cols) {
    if (a < 0 || a >= static_cast<AttrId>(AttributeSet::kCapacity)) {
      return std::string(which) + " column id " + std::to_string(a) +
             " is out of range";
    }
    if (num_cols > 0 && a >= num_cols) {
      return std::string(which) + " column id " + std::to_string(a) +
             " exceeds the schema width " + std::to_string(num_cols);
    }
  }
  return "";
}

}  // namespace

std::string DescribeQueryError(const DiscoveryQuery& q, int num_cols) {
  if (std::isnan(q.epsilon) || q.epsilon < 0 || q.epsilon > 1) {
    return "epsilon must be a finite error rate in [0, 1]";
  }
  if (q.max_lhs < 0 ||
      q.max_lhs > static_cast<int>(AttributeSet::kCapacity)) {
    return "max_lhs must be in [0, " +
           std::to_string(AttributeSet::kCapacity) + "]";
  }
  switch (q.ranking_mode) {
    case RedundancyMode::kWithNulls:
    case RedundancyMode::kExcludingNullRhs:
    case RedundancyMode::kExcludingNullBoth:
      break;
    default:
      return "unknown ranking mode";
  }
  std::string err = CheckColumns(q.include_columns, "include_columns", num_cols);
  if (!err.empty()) return err;
  err = CheckColumns(q.exclude_columns, "exclude_columns", num_cols);
  if (!err.empty()) return err;
  if (num_cols > 0) {
    AttributeSet active;
    if (q.include_columns.empty()) {
      active = AttributeSet::full(num_cols);
    } else {
      for (AttrId a : q.include_columns) active.set(a);
    }
    for (AttrId a : q.exclude_columns) active.reset(a);
    if (active.count() < 2) {
      return "query scope must keep at least two columns";
    }
  }
  return "";
}

FdSet QueryResult::cover() const {
  FdSet out;
  out.fds.reserve(fds.size());
  for (const RankedFd& f : fds) out.add(f.fd);
  return out;
}

bool RankedFdBetter(const RankedFd& a, const RankedFd& b) {
  if (a.score != b.score) return a.score > b.score;
  int ca = a.fd.lhs.count(), cb = b.fd.lhs.count();
  if (ca != cb) return ca < cb;
  if (a.fd.lhs != b.fd.lhs) return a.fd.lhs < b.fd.lhs;
  return a.fd.rhs < b.fd.rhs;
}

}  // namespace dhyfd
