#include "query/profile_query.h"

#include <utility>

#include "query/engine.h"

namespace dhyfd {

std::shared_ptr<QueryResultSlot> BindQueryToProfile(ProfileOptions& options,
                                                    DiscoveryQuery query) {
  auto slot = std::make_shared<QueryResultSlot>();
  options.discovery_override =
      [slot, query = std::move(query)](
          const Relation& relation,
          const ProfileOptions& opts) -> DiscoveryResult {
    // Engine limits come from the options at profile() time, after the
    // service layer's parallelism clamp and pool injection.
    QueryEngineOptions engine_options;
    engine_options.time_limit_seconds = opts.time_limit_seconds;
    engine_options.parallelism = opts.parallelism;
    engine_options.worker_pool = opts.worker_pool;
    slot->result = QueryEngine(engine_options).execute(relation, query);

    // Surface the query answer through the generic discovery fields so
    // cover and ranking consumers work unchanged.
    DiscoveryResult discovery;
    discovery.fds = slot->result->cover();
    discovery.stats.seconds = slot->result->stats.seconds;
    discovery.stats.validations = slot->result->stats.validations;
    discovery.stats.levels = slot->result->stats.levels;
    discovery.stats.timed_out = slot->result->stats.timed_out;
    return discovery;
  };
  return slot;
}

}  // namespace dhyfd
