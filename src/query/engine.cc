#include "query/engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/dhyfd.h"
#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "partition/stripped_partition.h"
#include "query/topk.h"
#include "ranking/redundancy.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

/// The query's column scope in ascending schema order (duplicates in the
/// include/exclude lists are harmless).
std::vector<AttrId> ActiveColumns(const Relation& r, const DiscoveryQuery& q) {
  AttributeSet active;
  if (q.include_columns.empty()) {
    active = AttributeSet::full(r.num_cols());
  } else {
    for (AttrId a : q.include_columns) active.set(a);
  }
  for (AttrId a : q.exclude_columns) active.reset(a);
  std::vector<AttrId> cols;
  active.for_each([&](AttrId a) { cols.push_back(a); });
  return cols;
}

/// Full-cover path: DHyFD with the query's bounds threaded through, then the
/// whole cover scored and sorted — discovery-then-rank, but already pruned
/// by epsilon and arity.
QueryResult FullDiscoverRanked(const Relation& r, const DiscoveryQuery& q,
                               const QueryEngineOptions& engine_options) {
  DhyfdOptions opts;
  opts.epsilon = q.epsilon;
  opts.max_lhs = q.max_lhs;
  opts.time_limit_seconds = engine_options.time_limit_seconds;
  opts.parallelism = engine_options.parallelism;
  opts.worker_pool = engine_options.worker_pool;
  DiscoveryResult discovered = Dhyfd(opts).discover(r);

  QueryResult result;
  result.stats.validations = discovered.stats.validations;
  result.stats.pruned_epsilon = discovered.stats.invalidated;
  result.stats.levels = discovered.stats.levels;
  result.stats.timed_out = discovered.stats.timed_out;
  result.fds.reserve(discovered.fds.fds.size());
  for (const Fd& fd : discovered.fds.fds) {
    FdRedundancy red =
        FdRedundancyFromPartition(r, fd, BuildPartition(r, fd.lhs));
    result.fds.push_back(RankedFd{fd, RedundancyCount(red, q.ranking_mode)});
  }
  std::sort(result.fds.begin(), result.fds.end(), RankedFdBetter);
  return result;
}

}  // namespace

Relation ProjectRelation(const Relation& r, const std::vector<AttrId>& cols) {
  std::vector<std::string> names;
  names.reserve(cols.size());
  for (AttrId a : cols) names.push_back(r.schema().name(a));
  Relation out(Schema(std::move(names)), r.num_rows());
  for (size_t c = 0; c < cols.size(); ++c) {
    AttrId src = cols[c];
    AttrId dst = static_cast<AttrId>(c);
    for (RowId row = 0; row < r.num_rows(); ++row) {
      out.set_value(row, dst, r.value(row, src));
      if (r.is_null(row, src)) out.set_null(row, dst);
    }
    out.set_domain_size(dst, r.domain_size(src));
  }
  return out;
}

QueryResult QueryEngine::execute(const Relation& r,
                                 const DiscoveryQuery& q) const {
  std::string err = DescribeQueryError(q, r.num_cols());
  if (!err.empty()) {
    throw std::invalid_argument("invalid discovery query: " + err);
  }
  TraceSpan span(kObsQueryExecute);
  ObsAdd(kObsQueryExecutes);
  Timer timer;

  std::vector<AttrId> cols = ActiveColumns(r, q);
  const bool projected = static_cast<int>(cols.size()) < r.num_cols();
  Relation scoped;
  const Relation* target = &r;
  if (projected) {
    TraceSpan project_span(kObsQueryProject);
    scoped = ProjectRelation(r, cols);
    target = &scoped;
  }

  QueryResult result =
      q.top_k > 0 ? TopKDiscover(*target, q, options_.time_limit_seconds)
                  : FullDiscoverRanked(*target, q, options_);

  if (projected) {
    // Map attribute ids from projection positions back to the schema.
    for (RankedFd& f : result.fds) {
      AttributeSet lhs, rhs;
      f.fd.lhs.for_each([&](AttrId a) { lhs.set(cols[a]); });
      f.fd.rhs.for_each([&](AttrId a) { rhs.set(cols[a]); });
      f.fd = Fd(lhs, rhs);
    }
  }
  result.stats.seconds = timer.seconds();

  ObsAdd(kObsQueryValidations, result.stats.validations);
  ObsAdd(kObsQueryPrunedEpsilon, result.stats.pruned_epsilon);
  ObsAdd(kObsQueryPrunedArity, result.stats.pruned_arity);
  ObsAdd(kObsQueryPrunedBound, result.stats.pruned_bound);
  if (result.stats.early_terminated) ObsAdd(kObsQueryEarlyTerminations);
  if (result.stats.timed_out) ObsAdd(kObsQueryTimeouts);
  return result;
}

}  // namespace dhyfd
