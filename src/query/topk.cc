#include "query/topk.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "partition/partition_ops.h"
#include "ranking/redundancy.h"
#include "util/deadline.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

struct LevelEntry {
  AttributeSet attrs;
  AttributeSet cplus;  // TANE's C+(X): still-possible RHS attributes
  StrippedPartition partition;
  int64_t error = 0;
};

using Level = std::vector<LevelEntry>;
using LevelIndex = std::unordered_map<AttributeSet, int, AttributeSetHash>;

// Same memoized C+ store as TANE's (tane.cc): the key-pruning rule needs C+
// of sibling sets that were deleted or never generated.
class CplusStore {
 public:
  explicit CplusStore(int num_attrs) {
    memo_.emplace(AttributeSet(), AttributeSet::full(num_attrs));
  }

  void put(const AttributeSet& s, const AttributeSet& cplus) { memo_[s] = cplus; }

  AttributeSet get(const AttributeSet& s) {
    auto it = memo_.find(s);
    if (it != memo_.end()) return it->second;
    AttributeSet cplus = AttributeSet::full(AttributeSet::kCapacity);
    s.for_each([&](AttrId c) {
      AttributeSet sub = s;
      sub.reset(c);
      cplus &= get(sub);
    });
    memo_.emplace(s, cplus);
    return cplus;
  }

 private:
  std::unordered_map<AttributeSet, AttributeSet, AttributeSetHash> memo_;
};

/// The k best-ranked FDs so far. top() is the current floor: the entry any
/// new candidate must outrank to enter once the heap is full.
class TopKHeap {
 public:
  explicit TopKHeap(std::uint32_t k) : k_(k) {}

  bool full() const { return heap_.size() >= k_; }
  int64_t floor_score() const { return heap_.top().score; }

  void offer(RankedFd candidate) {
    if (!full()) {
      heap_.push(std::move(candidate));
    } else if (RankedFdBetter(candidate, heap_.top())) {
      heap_.pop();
      heap_.push(std::move(candidate));
    }
  }

  std::vector<RankedFd> take_ranked() {
    std::vector<RankedFd> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(out.begin(), out.end());  // worst pops first
    return out;
  }

 private:
  struct Better {
    bool operator()(const RankedFd& a, const RankedFd& b) const {
      return RankedFdBetter(a, b);
    }
  };
  // priority_queue surfaces the *last* element under the comparator, so
  // ordering by "better" keeps the worst kept FD on top.
  std::priority_queue<RankedFd, std::vector<RankedFd>, Better> heap_;
  std::uint32_t k_;
};

/// Candidate FDs still reachable from a level's surviving entries; the
/// frontier size credited to whichever bound cut the traversal.
int64_t FrontierSize(const Level& pruned) {
  int64_t n = 0;
  for (const LevelEntry& e : pruned) n += e.cplus.count();
  return n;
}

}  // namespace

QueryResult TopKDiscover(const Relation& r, const DiscoveryQuery& q,
                         double time_limit_seconds) {
  Timer timer;
  Deadline deadline(time_limit_seconds);
  QueryResult result;
  const int m = r.num_cols();
  const int64_t empty_error = r.num_rows() > 0 ? r.num_rows() - 1 : 0;
  const AttributeSet all = AttributeSet::full(m);
  const int64_t budget = ApproxRemovalBudget(q.epsilon, r.num_rows());
  const bool approx = budget > 0;
  ApproxErrorCalculator approx_calc(r);
  PartitionIntersector intersector(r.num_rows());
  TopKHeap heap(q.top_k);

  auto offer = [&](const Fd& fd, const StrippedPartition& pi_lhs) {
    FdRedundancy red = FdRedundancyFromPartition(r, fd, pi_lhs);
    heap.offer(RankedFd{fd, RedundancyCount(red, q.ranking_mode)});
  };

  // Level 1: single attributes, plus the {} -> A candidates.
  Level level;
  for (AttrId a = 0; a < m; ++a) {
    LevelEntry e;
    e.attrs = AttributeSet::single(a);
    e.cplus = all;
    e.partition = BuildAttributePartition(r, a);
    e.error = e.partition.error();
    level.push_back(std::move(e));
  }
  CplusStore cplus_store(m);
  const StrippedPartition whole = StrippedPartition::whole(r.num_rows());
  for (LevelEntry& e : level) {
    ++result.stats.validations;
    AttrId a = e.attrs.first();
    bool valid = approx ? approx_calc.removals(whole, a) <= budget
                        : e.error == empty_error;
    if (valid) {
      offer(Fd(AttributeSet(), a), whole);
      e.cplus.reset(a);
      if (!approx) e.cplus &= e.attrs;  // exact-only R - X sweep (cf. tane.cc)
    } else {
      ++result.stats.pruned_epsilon;
    }
    cplus_store.put(e.attrs, e.cplus);
  }

  // Previous level's errors and partitions; the partitions both answer the
  // approximate error tests and score valid candidates (the FD's LHS is the
  // previous-level set X - A).
  std::unordered_map<AttributeSet, int64_t, AttributeSetHash> prev_errors;
  std::unordered_map<AttributeSet, StrippedPartition, AttributeSetHash>
      prev_partitions;

  int level_num = 1;
  while (!level.empty() && !result.stats.timed_out) {
    TraceSpan level_span(kObsQueryLatticeLevel);
    result.stats.levels = level_num;
    if (level_num >= 2) {
      for (LevelEntry& e : level) {
        if (deadline.expired()) {
          result.stats.timed_out = true;
          break;
        }
        AttributeSet check = e.attrs & e.cplus;
        check.for_each([&](AttrId a) {
          AttributeSet x_minus_a = e.attrs;
          x_minus_a.reset(a);
          auto it = prev_errors.find(x_minus_a);
          if (it == prev_errors.end()) return;  // pruned parent
          ++result.stats.validations;
          bool valid =
              approx
                  ? approx_calc.removals(prev_partitions.at(x_minus_a), a) <=
                        budget
                  : it->second == e.error;
          if (valid) {
            offer(Fd(x_minus_a, a), prev_partitions.at(x_minus_a));
            e.cplus.reset(a);
            if (!approx) e.cplus -= all - e.attrs;
          } else {
            ++result.stats.pruned_epsilon;
          }
        });
        cplus_store.put(e.attrs, e.cplus);
      }
    }

    // Prune: empty C+, and exact keys (emitted through the key rule with an
    // empty pi_X, so they score 0 — "zero counts hint at keys").
    const bool emit_key_fds = q.max_lhs == 0 || level_num <= q.max_lhs;
    Level pruned;
    LevelIndex pruned_index;
    const StrippedPartition empty_partition;
    for (LevelEntry& e : level) {
      if (e.cplus.empty()) continue;
      if (e.error == 0) {
        if (!emit_key_fds) continue;
        AttributeSet extra = e.cplus - e.attrs;
        extra.for_each([&](AttrId a) {
          bool emit = true;
          e.attrs.for_each([&](AttrId b) {
            if (!emit) return;
            AttributeSet sibling = e.attrs;
            sibling.reset(b);
            sibling.set(a);
            if (!cplus_store.get(sibling).test(a)) emit = false;
          });
          if (emit) {
            ++result.stats.validations;
            offer(Fd(e.attrs, a), empty_partition);
          }
        });
        continue;
      }
      pruned_index.emplace(e.attrs, static_cast<int>(pruned.size()));
      pruned.push_back(std::move(e));
    }

    if (q.max_lhs > 0 && level_num > q.max_lhs) {
      result.stats.pruned_arity += FrontierSize(pruned);
      break;
    }

    // Early termination: every FD still discoverable has an LHS refining
    // some surviving entry, so its score is bounded by the largest surviving
    // support. Once that bound cannot beat the heap floor (ties lose to the
    // strictly smaller LHSs already kept), deeper levels are provably
    // irrelevant.
    if (heap.full() && !pruned.empty()) {
      int64_t bound = 0;
      for (const LevelEntry& e : pruned) {
        bound = std::max(bound, e.partition.support());
      }
      if (bound <= heap.floor_score()) {
        result.stats.pruned_bound += FrontierSize(pruned);
        result.stats.early_terminated = true;
        break;
      }
    }

    prev_errors.clear();
    for (const LevelEntry& e : pruned) prev_errors.emplace(e.attrs, e.error);

    std::unordered_map<AttributeSet, std::vector<int>, AttributeSetHash> blocks;
    for (int i = 0; i < static_cast<int>(pruned.size()); ++i) {
      AttributeSet prefix = pruned[i].attrs;
      prefix.reset(pruned[i].attrs.last());
      blocks[prefix].push_back(i);
    }

    Level next;
    for (auto& [prefix, members] : blocks) {
      (void)prefix;
      if (result.stats.timed_out) break;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          if (deadline.expired()) {
            result.stats.timed_out = true;
            break;
          }
          const LevelEntry& a = pruned[members[i]];
          const LevelEntry& b = pruned[members[j]];
          AttributeSet xy = a.attrs | b.attrs;
          bool ok = true;
          AttributeSet cplus = all;
          xy.for_each([&](AttrId c) {
            if (!ok) return;
            AttributeSet sub = xy;
            sub.reset(c);
            auto it = pruned_index.find(sub);
            if (it == pruned_index.end()) {
              ok = false;
            } else {
              cplus &= pruned[it->second].cplus;
            }
          });
          if (!ok || cplus.empty()) continue;
          LevelEntry e;
          e.attrs = xy;
          e.cplus = cplus;
          intersector.intersect(a.partition, b.partition, e.partition);
          e.error = e.partition.error();
          next.push_back(std::move(e));
        }
        if (result.stats.timed_out) break;
      }
    }
    prev_partitions.clear();
    for (LevelEntry& e : pruned) {
      prev_partitions.emplace(e.attrs, std::move(e.partition));
    }
    level = std::move(next);
    ++level_num;
  }

  result.fds = heap.take_ranked();
  result.stats.seconds = timer.seconds();
  return result;
}

}  // namespace dhyfd
