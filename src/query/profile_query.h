#ifndef DHYFD_QUERY_PROFILE_QUERY_H_
#define DHYFD_QUERY_PROFILE_QUERY_H_

#include <memory>
#include <optional>

#include "core/profiler.h"
#include "query/query.h"

namespace dhyfd {

/// Where BindQueryToProfile parks the full ranked answer. The profiling
/// thread writes `result` exactly once, while running the discovery stage;
/// readers must wait for the profile run to finish (JobHandle::wait /
/// JobScheduler completion) before looking, which is the same ordering
/// contract ProfileReport itself has.
struct QueryResultSlot {
  std::optional<QueryResult> result;
};

/// Routes `options`' discovery stage through the rank-driven query engine
/// (approximate thresholds, arity bounds, top-k early termination), keeping
/// core free of any query dependency: this installs a
/// ProfileOptions::discovery_override closure that runs QueryEngine with the
/// options' deadline/parallelism/pool, surfaces the result's cover and stats
/// through the generic DiscoveryResult fields, and stores the full
/// QueryResult (scores, pruning stats) in the returned slot.
///
/// The returned shared_ptr is also captured by the closure, so the slot
/// outlives copies of the options regardless of which dies first.
std::shared_ptr<QueryResultSlot> BindQueryToProfile(ProfileOptions& options,
                                                    DiscoveryQuery query);

}  // namespace dhyfd

#endif  // DHYFD_QUERY_PROFILE_QUERY_H_
