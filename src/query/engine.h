#ifndef DHYFD_QUERY_ENGINE_H_
#define DHYFD_QUERY_ENGINE_H_

#include "query/query.h"
#include "relation/relation.h"

namespace dhyfd {

class ThreadPool;

struct QueryEngineOptions {
  /// Cooperative deadline in seconds (0 = none); expiry sets
  /// stats.timed_out and the result is partial.
  double time_limit_seconds = 0;
  /// Threads used by the full-discovery path (DHyFD), including the calling
  /// thread; the ranked answer is bit-identical at any degree. The top-k
  /// lattice walk is sequential and ignores this.
  int parallelism = 1;
  /// Pool the discovery shards fan out over (not owned).
  ThreadPool* worker_pool = nullptr;
};

/// Executes DiscoveryQuery specs. Routing:
///
///   top_k > 0            -> the rank-driven lattice walk (query/topk.h)
///   top_k == 0           -> DHyFD with the query's epsilon / arity bounds
///                           threaded through, then ranked in full
///
/// so an unconstrained query (epsilon 0, k 0, unbounded arity) returns
/// exactly the DHyFD cover in rank order. Column include/exclude scopes run
/// discovery on a projected copy of the relation; result attribute ids are
/// mapped back to the original schema.
class QueryEngine {
 public:
  explicit QueryEngine(QueryEngineOptions options = {}) : options_(options) {}

  /// Throws std::invalid_argument when DescribeQueryError rejects the spec
  /// against r's schema.
  QueryResult execute(const Relation& r, const DiscoveryQuery& q) const;

 private:
  QueryEngineOptions options_;
};

/// Copies the given columns (in the given order) into a standalone relation;
/// nulls and dense value codes are preserved. Exposed for tests.
Relation ProjectRelation(const Relation& r, const std::vector<AttrId>& cols);

}  // namespace dhyfd

#endif  // DHYFD_QUERY_ENGINE_H_
