#ifndef DHYFD_QUERY_QUERY_H_
#define DHYFD_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "ranking/ranking.h"
#include "relation/relation.h"

namespace dhyfd {

/// A rank-driven discovery query: instead of the all-or-nothing profiling
/// pipeline (discover the full cover, then score it), a query bounds the
/// work up front — by error threshold, LHS arity, a top-k cutoff on the
/// redundancy rank, and a column scope — and the engine uses those bounds
/// to prune discovery itself (ROADMAP item 2; see DESIGN.md "Rank-driven
/// queries" for the early-termination argument).
struct DiscoveryQuery {
  /// Error threshold on e(X -> A) = removals / |r| (the g3 measure over
  /// stripped partitions): a candidate holds when its error is <= epsilon.
  /// 0 demands exact FDs and reduces to the existing discovery path.
  double epsilon = 0;
  /// Maximum LHS attributes (0 = unbounded). Lattice levels past the bound
  /// are never generated.
  int max_lhs = 0;
  /// Return only the k best FDs by redundancy score (0 = the full cover).
  /// Ties rank in the deterministic FdSet::sort order.
  std::uint32_t top_k = 0;
  /// Score/null-handling variant used for the ranking (Section VI).
  RedundancyMode ranking_mode = RedundancyMode::kExcludingNullRhs;
  /// Columns the query is scoped to (empty = all). FDs are discovered over
  /// exactly these columns; attribute ids in the result refer to the
  /// original schema.
  std::vector<AttrId> include_columns;
  /// Columns removed from scope after include_columns is applied.
  std::vector<AttrId> exclude_columns;
};

/// Validates a query spec; returns "" when well-formed, else a one-line
/// reason. num_cols <= 0 skips the schema-width checks (the net front end
/// validates syntax before the dataset is resolved).
std::string DescribeQueryError(const DiscoveryQuery& q, int num_cols);

/// Work/pruning counters for one executed query; mirrored into the query.*
/// obs counters. The three pruned_* counts measure candidate FDs the engine
/// never validated, by which bound excluded them.
struct QueryStats {
  double seconds = 0;
  /// Candidate error tests performed.
  std::int64_t validations = 0;
  /// Candidates rejected by the error threshold (removals > budget).
  std::int64_t pruned_epsilon = 0;
  /// Candidate frontier abandoned when the arity bound cut the lattice.
  std::int64_t pruned_arity = 0;
  /// Candidate frontier abandoned by top-k early termination (the
  /// admissible score bound fell to the heap floor).
  std::int64_t pruned_bound = 0;
  /// Lattice/validation levels processed.
  int levels = 0;
  /// True when top-k mode stopped before exhausting the lattice.
  bool early_terminated = false;
  bool timed_out = false;
};

/// One result FD with its redundancy score under the query's ranking_mode.
struct RankedFd {
  Fd fd;
  std::int64_t score = 0;
};

/// Query output: FDs in rank order (descending score, FdSet::sort order on
/// ties), truncated to top_k when set.
struct QueryResult {
  std::vector<RankedFd> fds;
  QueryStats stats;

  /// The result FDs as a plain cover (rank order preserved).
  FdSet cover() const;
};

/// True when `a` outranks `b`: higher score first, deterministic FdSet
/// order (LHS size, LHS bits, RHS bits) on ties.
bool RankedFdBetter(const RankedFd& a, const RankedFd& b);

}  // namespace dhyfd

#endif  // DHYFD_QUERY_QUERY_H_
