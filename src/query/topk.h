#ifndef DHYFD_QUERY_TOPK_H_
#define DHYFD_QUERY_TOPK_H_

#include "query/query.h"
#include "relation/relation.h"

namespace dhyfd {

/// Rank-driven lattice traversal for top-k queries (q.top_k > 0): a
/// TANE-style level walk that keeps a min-heap of the k best-ranked FDs
/// found so far plus an admissible upper bound on the score of anything
/// still unexplored, and stops — provably without missing a top-k member —
/// once the bound can no longer beat the heap floor.
///
/// The bound: an FD emitted at a deeper level has an LHS W whose lattice
/// entry descends from the surviving entries of the current level, so some
/// surviving Z satisfies Z subseteq W; redundancy scores count pi_{LHS}
/// arena rows, and supports only shrink under refinement, hence
/// score(W -> A) <= ||pi_W|| <= ||pi_Z|| <= max surviving support. Ties at
/// the floor cannot displace either: every heap member has a strictly
/// smaller LHS than any future candidate, and ties rank small-LHS-first
/// (see DESIGN.md "Rank-driven queries" for the full argument).
///
/// `r` must already be projected to the query's column scope; attribute ids
/// in the result refer to r's schema.
QueryResult TopKDiscover(const Relation& r, const DiscoveryQuery& q,
                         double time_limit_seconds);

}  // namespace dhyfd

#endif  // DHYFD_QUERY_TOPK_H_
