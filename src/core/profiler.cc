#include "core/profiler.h"

#include <sstream>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

bool ThreadCancelled() {
  const CancelToken* token = CancelScope::Current();
  return token != nullptr && token->cancelled();
}

}  // namespace

const char* ProfileStageName(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::kEncode: return "encode";
    case ProfileStage::kDiscover: return "discover";
    case ProfileStage::kCanonical: return "canonical";
    case ProfileStage::kRank: return "rank";
  }
  return "?";
}

ProfileReport Profiler::profile(const RawTable& table) const {
  Timer timer;
  EncodedRelation encoded;
  {
    TraceSpan span(kObsProfileEncode);
    encoded = EncodeRelation(table, options_.semantics);
  }
  double encode_seconds = timer.seconds();
  if (options_.stage_hook) {
    options_.stage_hook(ProfileStage::kEncode, encode_seconds);
  }
  ProfileReport report = profile(encoded.relation);
  report.timings.encode_seconds = encode_seconds;
  return report;
}

ProfileReport Profiler::profile(const Relation& relation) const {
  ProfileReport report;
  report.schema = relation.schema();
  report.null_stats = ComputeNullStats(relation);

  Timer timer;
  if (options_.discovery_override) {
    TraceSpan span(kObsProfileDiscover);
    report.discovery = options_.discovery_override(relation, options_);
  } else {
    std::unique_ptr<FdDiscovery> algo =
        MakeDiscovery(options_.algorithm, options_.time_limit_seconds,
                      options_.parallelism, options_.worker_pool);
    TraceSpan span(kObsProfileDiscover);
    report.discovery = algo->discover(relation);
  }
  report.left_reduced = report.discovery.fds;
  report.timings.discover_seconds = timer.seconds();
  ObsAdd(kObsDiscoverFds, report.left_reduced.size());
  if (options_.stage_hook) {
    options_.stage_hook(ProfileStage::kDiscover, report.timings.discover_seconds);
  }

  // Cancellation is polled between stages as well as inside discovery, so a
  // cancelled job stops before paying for covers and ranking.
  if (ThreadCancelled()) {
    report.cancelled = true;
    return report;
  }

  if (options_.compute_canonical) {
    timer.reset();
    TraceSpan span(kObsProfileCanonical);
    report.cover_stats = ComputeCoverStats(report.left_reduced, relation.num_cols());
    report.canonical = CanonicalCover(report.left_reduced, relation.num_cols());
    report.timings.canonical_seconds = timer.seconds();
    if (options_.stage_hook) {
      options_.stage_hook(ProfileStage::kCanonical,
                          report.timings.canonical_seconds);
    }
    if (ThreadCancelled()) {
      report.cancelled = true;
      return report;
    }
  }

  if (options_.compute_ranking) {
    const FdSet& cover =
        options_.compute_canonical ? report.canonical : report.left_reduced;
    timer.reset();
    TraceSpan span(kObsProfileRank);
    report.ranking = RankFds(relation, cover, options_.ranking_mode);
    report.dataset_redundancy = ComputeDatasetRedundancy(relation, cover);
    report.timings.ranking_seconds = timer.seconds();
    if (options_.stage_hook) {
      options_.stage_hook(ProfileStage::kRank, report.timings.ranking_seconds);
    }
  }
  report.cancelled = ThreadCancelled();
  return report;
}

std::string ProfileReport::summary() const {
  std::ostringstream out;
  out << "schema: " << schema.size() << " columns\n";
  out << "nulls: " << null_stats.null_occurrences << " occurrences in "
      << null_stats.incomplete_columns << " columns ("
      << null_stats.incomplete_rows << " incomplete rows)\n";
  out << "left-reduced cover: |L-r|=" << left_reduced.size()
      << "  ||L-r||=" << left_reduced.attribute_occurrences() << "  ("
      << discovery.stats.seconds << " s, " << discovery.stats.memory_mb
      << " MB)\n";
  if (!canonical.empty() || cover_stats.canonical_count > 0) {
    out << "canonical cover:    |Can|=" << canonical.size()
        << "  ||Can||=" << canonical.attribute_occurrences() << "  ("
        << cover_stats.seconds << " s, " << cover_stats.percent_size
        << "% of |L-r|)\n";
  }
  if (!ranking.empty()) {
    out << "redundancy: #red=" << dataset_redundancy.red << " ("
        << dataset_redundancy.percent_red() << "%)  #red+0="
        << dataset_redundancy.red_plus0 << " ("
        << dataset_redundancy.percent_red_plus0() << "%) of "
        << dataset_redundancy.num_values << " values\n";
  }
  out << "stage timings: encode=" << timings.encode_seconds
      << " s  discover=" << timings.discover_seconds
      << " s  canonical=" << timings.canonical_seconds
      << " s  rank=" << timings.ranking_seconds
      << " s  total=" << timings.total_seconds() << " s\n";
  if (cancelled) out << "run cancelled before completion\n";
  return out.str();
}

}  // namespace dhyfd
