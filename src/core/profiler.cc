#include "core/profiler.h"

#include <sstream>

#include "util/timer.h"

namespace dhyfd {

ProfileReport Profiler::profile(const RawTable& table) const {
  EncodedRelation encoded = EncodeRelation(table, options_.semantics);
  return profile(encoded.relation);
}

ProfileReport Profiler::profile(const Relation& relation) const {
  ProfileReport report;
  report.schema = relation.schema();
  report.null_stats = ComputeNullStats(relation);

  std::unique_ptr<FdDiscovery> algo = MakeDiscovery(options_.algorithm);
  report.discovery = algo->discover(relation);
  report.left_reduced = report.discovery.fds;

  if (options_.compute_canonical) {
    report.cover_stats = ComputeCoverStats(report.left_reduced, relation.num_cols());
    report.canonical = CanonicalCover(report.left_reduced, relation.num_cols());
  }

  if (options_.compute_ranking) {
    const FdSet& cover =
        options_.compute_canonical ? report.canonical : report.left_reduced;
    Timer timer;
    report.ranking = RankFds(relation, cover, options_.ranking_mode);
    report.dataset_redundancy = ComputeDatasetRedundancy(relation, cover);
    report.ranking_seconds = timer.seconds();
  }
  return report;
}

std::string ProfileReport::summary() const {
  std::ostringstream out;
  out << "schema: " << schema.size() << " columns\n";
  out << "nulls: " << null_stats.null_occurrences << " occurrences in "
      << null_stats.incomplete_columns << " columns ("
      << null_stats.incomplete_rows << " incomplete rows)\n";
  out << "left-reduced cover: |L-r|=" << left_reduced.size()
      << "  ||L-r||=" << left_reduced.attribute_occurrences() << "  ("
      << discovery.stats.seconds << " s, " << discovery.stats.memory_mb
      << " MB)\n";
  if (!canonical.empty() || cover_stats.canonical_count > 0) {
    out << "canonical cover:    |Can|=" << canonical.size()
        << "  ||Can||=" << canonical.attribute_occurrences() << "  ("
        << cover_stats.seconds << " s, " << cover_stats.percent_size
        << "% of |L-r|)\n";
  }
  if (!ranking.empty()) {
    out << "redundancy: #red=" << dataset_redundancy.red << " ("
        << dataset_redundancy.percent_red() << "%)  #red+0="
        << dataset_redundancy.red_plus0 << " ("
        << dataset_redundancy.percent_red_plus0() << "%) of "
        << dataset_redundancy.num_values << " values\n";
    out << "ranking computed for " << ranking.size() << " FDs in "
        << ranking_seconds << " s\n";
  }
  return out.str();
}

}  // namespace dhyfd
