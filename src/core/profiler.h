#ifndef DHYFD_CORE_PROFILER_H_
#define DHYFD_CORE_PROFILER_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "algo/discovery.h"
#include "fd/cover.h"
#include "ranking/ranking.h"
#include "relation/encoder.h"

namespace dhyfd {

/// The pipeline stages a ProfileReport times individually; passed to
/// ProfileOptions::stage_hook as each stage completes.
enum class ProfileStage { kEncode, kDiscover, kCanonical, kRank };

const char* ProfileStageName(ProfileStage stage);

/// Options for the one-call profiling pipeline.
struct ProfileOptions {
  /// One of AllDiscoveryNames(); DHyFD by default.
  std::string algorithm = "dhyfd";
  NullSemantics semantics = NullSemantics::kNullEqualsNull;
  /// Compute the canonical cover from the left-reduced one (Section V-D).
  bool compute_canonical = true;
  /// Rank the (canonical) cover by data redundancy (Section VI).
  bool compute_ranking = true;
  RedundancyMode ranking_mode = RedundancyMode::kExcludingNullRhs;
  /// Cooperative deadline for the discovery stage in seconds (0 = none),
  /// wired into util/deadline.h exactly like the paper's TL budget.
  double time_limit_seconds = 0;
  /// Threads used inside the discovery stage, including the calling thread
  /// (<= 1 = sequential). Effective only with worker_pool set; parallel
  /// runs return bit-identical covers to sequential ones.
  int parallelism = 1;
  /// Worker pool the discovery shards fan out over (not owned; may be
  /// shared with other jobs). The JobScheduler sets this for service jobs;
  /// library callers may pass their own pool.
  ThreadPool* worker_pool = nullptr;
  /// When set, replaces the discovery stage wholesale: the hook receives
  /// the relation plus these options (after the service layer's
  /// parallelism/worker_pool adjustments) and must return the cover and
  /// stats the rest of the pipeline consumes. This is how upper layers
  /// inject richer discovery without core depending on them — the query
  /// layer's BindQueryToProfile (src/query/profile_query.h) installs an
  /// override that runs the rank-driven engine and parks the full
  /// QueryResult in a side slot. `algorithm` is ignored while set.
  std::function<DiscoveryResult(const Relation&, const ProfileOptions&)>
      discovery_override;
  /// Called on the profiling thread as each stage finishes; the service
  /// layer uses this to feed per-stage latency histograms.
  std::function<void(ProfileStage, double seconds)> stage_hook;
};

/// Wall-clock seconds spent in each pipeline stage. encode_seconds is only
/// nonzero for the RawTable overload (an already-encoded Relation skips it).
struct StageTimings {
  double encode_seconds = 0;
  double discover_seconds = 0;
  double canonical_seconds = 0;
  double ranking_seconds = 0;
  double total_seconds() const {
    return encode_seconds + discover_seconds + canonical_seconds +
           ranking_seconds;
  }
};

/// Everything the paper derives from one data set.
struct ProfileReport {
  Schema schema;
  NullStats null_stats;
  DiscoveryResult discovery;
  /// The discovered left-reduced cover (same as discovery.fds).
  FdSet left_reduced;
  FdSet canonical;
  CoverStats cover_stats;
  /// Canonical-cover FDs ranked by descending redundancy.
  std::vector<FdRedundancy> ranking;
  DatasetRedundancy dataset_redundancy;
  StageTimings timings;
  /// True if a CancelScope token fired mid-pipeline; later stages were
  /// skipped and discovery.stats.timed_out may be set.
  bool cancelled = false;

  /// Multi-line human-readable summary.
  std::string summary() const;
};

/// The library's quickstart entry point: discover -> cover -> rank.
class Profiler {
 public:
  explicit Profiler(ProfileOptions options = {}) : options_(options) {}

  /// Profiles a raw CSV table (encodes it first under options.semantics).
  ProfileReport profile(const RawTable& table) const;

  /// Profiles an already-encoded relation.
  ProfileReport profile(const Relation& relation) const;

 private:
  ProfileOptions options_;
};

}  // namespace dhyfd

#endif  // DHYFD_CORE_PROFILER_H_
