#ifndef DHYFD_CORE_PROFILER_H_
#define DHYFD_CORE_PROFILER_H_

#include <string>
#include <vector>

#include "algo/discovery.h"
#include "fd/cover.h"
#include "ranking/ranking.h"
#include "relation/encoder.h"

namespace dhyfd {

/// Options for the one-call profiling pipeline.
struct ProfileOptions {
  /// One of AllDiscoveryNames(); DHyFD by default.
  std::string algorithm = "dhyfd";
  NullSemantics semantics = NullSemantics::kNullEqualsNull;
  /// Compute the canonical cover from the left-reduced one (Section V-D).
  bool compute_canonical = true;
  /// Rank the (canonical) cover by data redundancy (Section VI).
  bool compute_ranking = true;
  RedundancyMode ranking_mode = RedundancyMode::kExcludingNullRhs;
};

/// Everything the paper derives from one data set.
struct ProfileReport {
  Schema schema;
  NullStats null_stats;
  DiscoveryResult discovery;
  /// The discovered left-reduced cover (same as discovery.fds).
  FdSet left_reduced;
  FdSet canonical;
  CoverStats cover_stats;
  /// Canonical-cover FDs ranked by descending redundancy.
  std::vector<FdRedundancy> ranking;
  DatasetRedundancy dataset_redundancy;
  double ranking_seconds = 0;

  /// Multi-line human-readable summary.
  std::string summary() const;
};

/// The library's quickstart entry point: discover -> cover -> rank.
class Profiler {
 public:
  explicit Profiler(ProfileOptions options = {}) : options_(options) {}

  /// Profiles a raw CSV table (encodes it first under options.semantics).
  ProfileReport profile(const RawTable& table) const;

  /// Profiles an already-encoded relation.
  ProfileReport profile(const Relation& relation) const;

 private:
  ProfileOptions options_;
};

}  // namespace dhyfd

#endif  // DHYFD_CORE_PROFILER_H_
