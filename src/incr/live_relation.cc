#include "incr/live_relation.h"

#include <algorithm>

namespace dhyfd {

namespace {
const std::vector<RowId> kEmptyGroup;
}  // namespace

LiveRelation::LiveRelation(const RawTable& initial, NullSemantics semantics,
                           CsvOptions options)
    : encoder_(initial, semantics, options),
      groups_(initial.num_cols()),
      supports_(initial.num_cols(), 0),
      distinct_(initial.num_cols(), 0) {
  const Relation& r = relation();
  live_.assign(r.num_rows(), 1);
  ids_.resize(r.num_rows());
  row_of_.reserve(r.num_rows());
  live_rows_ = r.num_rows();
  for (RowId row = 0; row < r.num_rows(); ++row) {
    ids_[row] = next_id_;
    row_of_.emplace(next_id_, row);
    ++next_id_;
  }
  for (int c = 0; c < r.num_cols(); ++c) {
    groups_[c].resize(static_cast<size_t>(r.domain_size(c)));
  }
  // Initial rows are ascending, so per-group push_back keeps groups sorted.
  for (RowId row = 0; row < r.num_rows(); ++row) register_row(row);
}

RowId LiveRelation::row_of(LiveRowId id) const {
  auto it = row_of_.find(id);
  if (it == row_of_.end()) return -1;
  return is_live(it->second) ? it->second : -1;
}

void LiveRelation::register_row(RowId row) {
  const Relation& r = relation();
  for (int c = 0; c < r.num_cols(); ++c) {
    if (static_cast<size_t>(r.domain_size(c)) > groups_[c].size()) {
      groups_[c].resize(static_cast<size_t>(r.domain_size(c)));
    }
    std::vector<RowId>& g = groups_[c][r.value(row, c)];
    g.push_back(row);
    if (g.size() == 1) {
      ++distinct_[c];
    } else {
      // A group entering size 2 starts counting both members as support.
      supports_[c] += g.size() == 2 ? 2 : 1;
    }
  }
}

RowId LiveRelation::insert_row(const std::vector<std::string>& cells) {
  RowId row = encoder_.append(cells);
  live_.push_back(1);
  ids_.push_back(next_id_);
  row_of_.emplace(next_id_, row);
  ++next_id_;
  ++live_rows_;
  register_row(row);
  return row;
}

void LiveRelation::erase_row(RowId row) {
  if (!is_live(row)) return;
  const Relation& r = relation();
  for (int c = 0; c < r.num_cols(); ++c) {
    std::vector<RowId>& g = groups_[c][r.value(row, c)];
    g.erase(std::find(g.begin(), g.end(), row));
    if (g.empty()) {
      --distinct_[c];
    } else {
      supports_[c] -= g.size() == 1 ? 2 : 1;
    }
  }
  live_[row] = 0;
  row_of_.erase(ids_[row]);
  --live_rows_;
}

const std::vector<RowId>& LiveRelation::group(AttrId a, ValueId v) const {
  if (static_cast<size_t>(v) >= groups_[a].size()) return kEmptyGroup;
  return groups_[a][v];
}

StrippedPartition LiveRelation::live_attribute_partition(AttrId a) const {
  StrippedPartition pi;
  size_t rows = 0, classes = 0;
  for (const auto& g : groups_[a]) {
    if (g.size() >= 2) {
      rows += g.size();
      ++classes;
    }
  }
  pi.reserve(rows, classes);
  for (const auto& g : groups_[a]) {
    if (g.size() >= 2) pi.add_cluster(ClusterView(g.data(), g.size()));
  }
  return pi;
}

std::pair<RowId, RowId> LiveRelation::distinct_pair(AttrId a) const {
  RowId first = -1;
  for (const auto& g : groups_[a]) {
    if (g.empty()) continue;
    if (first < 0) {
      first = g.front();
    } else {
      return {first, g.front()};
    }
  }
  return {-1, -1};
}

StrippedPartition LiveRelation::whole_live_cluster() const {
  StrippedPartition pi;
  if (live_rows_ < 2) return pi;
  pi.reserve(static_cast<size_t>(live_rows_), 1);
  for (RowId row = 0; row < storage_rows(); ++row) {
    if (is_live(row)) pi.append_row(row);
  }
  pi.commit_cluster();
  return pi;
}

Relation LiveRelation::snapshot() const {
  const Relation& r = relation();
  std::vector<RowId> keep;
  keep.reserve(live_rows_);
  for (RowId row = 0; row < r.num_rows(); ++row) {
    if (is_live(row)) keep.push_back(row);
  }
  Relation out(r.schema(), static_cast<RowId>(keep.size()));
  for (int c = 0; c < r.num_cols(); ++c) {
    std::unordered_map<ValueId, ValueId> remap;
    remap.reserve(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      auto [it, inserted] =
          remap.emplace(r.value(keep[i], c), static_cast<ValueId>(remap.size()));
      (void)inserted;
      out.set_value(static_cast<RowId>(i), c, it->second);
      if (r.is_null(keep[i], c)) out.set_null(static_cast<RowId>(i), c);
    }
    out.set_domain_size(c, static_cast<ValueId>(remap.size()));
  }
  return out;
}

void LiveRelation::compact() {
  std::vector<RowId> keep;
  keep.reserve(live_rows_);
  std::vector<LiveRowId> new_ids;
  new_ids.reserve(live_rows_);
  for (RowId row = 0; row < storage_rows(); ++row) {
    if (!is_live(row)) continue;
    keep.push_back(row);
    new_ids.push_back(ids_[row]);
  }
  encoder_.compact(keep);
  ids_ = std::move(new_ids);
  live_.assign(ids_.size(), 1);
  row_of_.clear();
  row_of_.reserve(ids_.size());
  for (RowId row = 0; row < static_cast<RowId>(ids_.size()); ++row) {
    row_of_.emplace(ids_[row], row);
  }
  const Relation& r = relation();
  groups_.assign(r.num_cols(), {});
  supports_.assign(r.num_cols(), 0);
  distinct_.assign(r.num_cols(), 0);
  for (int c = 0; c < r.num_cols(); ++c) {
    groups_[c].resize(static_cast<size_t>(r.domain_size(c)));
  }
  for (RowId row = 0; row < r.num_rows(); ++row) register_row(row);
  refiner_.reset();
  refiner_domain_ = 0;
}

PartitionRefiner& LiveRelation::refiner() {
  ValueId domain = relation().max_domain_size();
  if (!refiner_ || domain > refiner_domain_) {
    refiner_ = std::make_unique<PartitionRefiner>(relation());
    refiner_domain_ = domain;
  }
  return *refiner_;
}

size_t LiveRelation::memory_bytes() const {
  size_t bytes = 0;
  const Relation& r = relation();
  bytes += static_cast<size_t>(r.num_rows()) * r.num_cols() * sizeof(ValueId);
  for (const auto& col : groups_) {
    bytes += col.size() * sizeof(std::vector<RowId>);
    for (const auto& g : col) bytes += g.capacity() * sizeof(RowId);
  }
  bytes += live_.size() * sizeof(uint8_t) + ids_.size() * sizeof(LiveRowId);
  bytes += row_of_.size() * (sizeof(LiveRowId) + sizeof(RowId) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace dhyfd
