#ifndef DHYFD_INCR_LIVE_PROFILE_H_
#define DHYFD_INCR_LIVE_PROFILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "algo/dhyfd.h"
#include "fd/fd_set.h"
#include "fdtree/extended_fd_tree.h"
#include "incr/live_relation.h"
#include "ranking/ranking.h"

namespace dhyfd {

struct LiveProfileOptions {
  /// Discovery options for the initial run and churn-triggered rebuilds.
  DhyfdOptions discovery;
  /// DDM-style efficiency heuristic: once the incremental maintenance time
  /// accumulated since the last full run exceeds this multiple of that run's
  /// cost, the next batch compacts and re-discovers from scratch instead.
  double rebuild_cost_ratio = 3.0;
  /// A tombstone share above this also triggers compaction + rebuild.
  double max_tombstone_fraction = 0.5;
  /// Disable both triggers (force_rebuild() still works); the equivalence
  /// property tests run pure-incremental with this off.
  bool auto_rebuild = true;
  /// Maintain per-FD redundancy ranking across batches (Section VI),
  /// recomputing only FDs whose LHS clusters a batch actually touched.
  bool maintain_ranking = true;
  RedundancyMode ranking_mode = RedundancyMode::kExcludingNullRhs;
};

/// Work accounting for one applied batch; feeds the service's per-batch
/// metrics and the bench's incremental-vs-full comparison.
struct BatchStats {
  int64_t rows_inserted = 0;
  int64_t rows_deleted = 0;
  /// Delete ids that were unknown or already dead (skipped, not an error).
  int64_t unknown_deletes = 0;
  int64_t pairs_compared = 0;   // new-vs-live and deleted-vs-live agree scans
  int64_t agree_sets = 0;       // distinct violated/destroyed agree sets
  int64_t validations = 0;      // generalization checks against the data
  int64_t fds_added = 0;
  int64_t fds_removed = 0;
  int64_t fds_reranked = 0;     // dirty FDs whose redundancy was recomputed
  bool rebuilt = false;         // batch fell back to a full DHyFD re-run
  std::string rebuild_reason;   // "", "cost-ratio", "tombstones", "forced"
  double seconds = 0;
};

/// What one batch did to the maintained cover: the FDs that entered and
/// left the left-reduced cover (singleton RHSs, sorted).
struct CoverDelta {
  FdSet added;
  FdSet removed;
  BatchStats stats;
};

/// How apply() maintains the cover; kFullRerun is the baseline strategy the
/// bench compares against (apply raw updates, then always re-discover).
enum class ApplyMode { kIncremental, kFullRerun };

/// Maintains the left-reduced FD cover of a LiveRelation across update
/// batches without re-running discovery (EAIFD's problem setting on top of
/// the paper's DHyFD machinery):
///
///  * Inserts: each new tuple's agree sets against the live tuples sharing
///    at least one value (found via the live value groups) are the only new
///    violations; they are inducted into the extended FD-tree
///    (Algorithm 2), which specializes refuted FDs minimally. Tuples
///    sharing no value refute only the root FDs {} -> A, handled by the
///    per-column live distinct counts.
///  * Deletes: only FDs all of whose violating pairs died can newly hold.
///    Every destroyed pair's agree set Z bounds the candidates (new valid
///    X -> A needs X subseteq Z, A notin Z); the per-attribute-maximal
///    destroyed sets seed a top-down minimization that validates candidate
///    generalizations against the live data (validator + live partitions)
///    and inserts every newly minimal FD, pruning superseded ones.
///  * Fallback: a DDM-style efficiency ratio compares accumulated
///    incremental cost against the last full run and falls back to
///    compact() + Dhyfd::discover when churn makes incremental maintenance
///    the slower strategy.
///
/// Invariant (the property the tests enforce): after every batch, cover()
/// equals the left-reduced cover a from-scratch DHyFD run finds on
/// live_relation().snapshot().
class LiveProfile {
 public:
  explicit LiveProfile(const RawTable& initial, LiveProfileOptions options = {},
                       NullSemantics semantics = NullSemantics::kNullEqualsNull);

  const LiveRelation& live_relation() const { return rel_; }
  LiveRelation& live_relation() { return rel_; }

  /// The maintained left-reduced cover (singleton RHSs, sorted).
  const FdSet& cover() const { return cover_; }

  /// Cover FDs with redundancy counts, sorted descending by the configured
  /// mode (empty unless options.maintain_ranking).
  const std::vector<FdRedundancy>& ranking() const;

  CoverDelta apply(const UpdateBatch& batch, ApplyMode mode = ApplyMode::kIncremental);

  /// Compacts and re-runs discovery now, regardless of the heuristics.
  void force_rebuild();

  int64_t batches_applied() const { return batches_applied_; }
  int64_t rebuild_count() const { return rebuild_count_; }
  double last_full_seconds() const { return last_full_seconds_; }
  /// Incremental maintenance time accumulated since the last full run.
  double incremental_seconds() const { return incremental_seconds_; }

 private:
  struct FdKeyHash {
    size_t operator()(const Fd& fd) const {
      return fd.lhs.hash() * 1315423911u ^ fd.rhs.hash();
    }
  };
  struct FdKeyEq {
    bool operator()(const Fd& a, const Fd& b) const { return a == b; }
  };
  using RedundancyMap = std::unordered_map<Fd, FdRedundancy, FdKeyHash, FdKeyEq>;

  void full_discover(BatchStats* stats);
  void rebuild_tree_from_cover();
  void refresh_cover();

  /// True if lhs -> a holds on the live rows; consults the tree first (an
  /// existing generalization proves validity without touching data), then
  /// validates from a live partition. Results are memoized in `cache`.
  bool holds_on_live(const AttributeSet& lhs, AttrId a,
                     std::unordered_map<AttributeSet, bool, AttributeSetHash>* cache,
                     BatchStats* stats);

  /// Emits every minimal valid X subseteq z with X -> a into `out` (depth-
  /// first descent; `visited` dedupes lattice nodes across seeds).
  void minimal_valid_subsets(
      const AttributeSet& z, AttrId a,
      std::unordered_map<AttributeSet, bool, AttributeSetHash>* cache,
      std::unordered_set<AttributeSet, AttributeSetHash>* visited,
      std::vector<AttributeSet>* out, BatchStats* stats);

  /// Attributes on which `row` agrees with at least one other live row —
  /// an FD's LHS clusters can only have changed if LHS is inside this set.
  AttributeSet nonunique_attrs(RowId row) const;

  FdRedundancy compute_live_redundancy(const Fd& fd);
  void rerank_dirty(const std::vector<AttributeSet>& touched_profiles,
                    const FdSet& added, const FdSet& removed, BatchStats* stats);
  void full_rerank();

  LiveProfileOptions options_;
  LiveRelation rel_;
  std::unique_ptr<ExtendedFdTree> tree_;
  FdSet cover_;

  RedundancyMap redundancy_;
  mutable std::vector<FdRedundancy> ranking_;
  mutable bool ranking_sorted_ = false;

  // Partner-scan dedupe scratch: one stamp slot per internal row.
  std::vector<uint32_t> partner_stamp_;
  uint32_t partner_epoch_ = 0;

  int64_t batches_applied_ = 0;
  int64_t rebuild_count_ = 0;
  double last_full_seconds_ = 0;
  double incremental_seconds_ = 0;
};

}  // namespace dhyfd

#endif  // DHYFD_INCR_LIVE_PROFILE_H_
