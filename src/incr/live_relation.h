#ifndef DHYFD_INCR_LIVE_RELATION_H_
#define DHYFD_INCR_LIVE_RELATION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "incr/update_batch.h"
#include "partition/partition_ops.h"
#include "partition/stripped_partition.h"
#include "relation/csv.h"
#include "relation/encoder.h"
#include "relation/relation.h"

namespace dhyfd {

/// A mutable, DIIS-encoded relation that accepts tuple inserts and deletes.
///
/// Storage model: inserts append to the backing Relation through a
/// DeltaEncoder (only the new cells are encoded; dictionaries grow
/// incrementally). Deletes tombstone their row — the slot keeps its stale
/// values but the row leaves every maintained index, so discovery primitives
/// that only walk cluster row-lists (the validator, the refiner, agree-set
/// scans) never observe it. compact() drops tombstones, renumbers internal
/// rows, and re-densifies codes; external LiveRowIds are stable throughout.
///
/// Maintained per attribute, incrementally on every insert/delete:
///  * value groups: for each code, the ascending list of live rows holding
///    it — the unstripped pi_A plus a partner index for agree-set scans;
///  * live support ||pi_A|| and the live distinct-value count.
///
/// NOT thread-safe; the service layer serializes batches per live dataset.
class LiveRelation {
 public:
  explicit LiveRelation(const RawTable& initial,
                        NullSemantics semantics = NullSemantics::kNullEqualsNull,
                        CsvOptions options = {});

  /// The backing storage, tombstones included. Only pass it to primitives
  /// that restrict themselves to caller-supplied row lists; whole-relation
  /// scans (BuildPartition, satisfies, ...) would see dead rows — use
  /// snapshot() for those.
  const Relation& relation() const { return encoder_.relation(); }
  const Schema& schema() const { return relation().schema(); }
  int num_cols() const { return relation().num_cols(); }
  NullSemantics semantics() const { return encoder_.semantics(); }

  RowId live_rows() const { return live_rows_; }
  RowId storage_rows() const { return relation().num_rows(); }
  bool is_live(RowId row) const { return live_[row] != 0; }
  double tombstone_fraction() const {
    return storage_rows() == 0
               ? 0.0
               : 1.0 - static_cast<double>(live_rows_) /
                           static_cast<double>(storage_rows());
  }

  /// The external id the next inserted row will receive.
  LiveRowId next_row_id() const { return next_id_; }
  /// External id of an internal row (dead rows keep their last id).
  LiveRowId id_of(RowId row) const { return ids_[row]; }
  /// Internal row for an external id, or -1 if unknown or deleted.
  RowId row_of(LiveRowId id) const;

  /// Encodes and appends one raw row; registers it in all live indexes.
  /// Returns the internal row id (== storage_rows()-1 until compaction).
  RowId insert_row(const std::vector<std::string>& cells);

  /// Tombstones an internal row and removes it from the live indexes.
  void erase_row(RowId row);

  /// Live rows holding `v` in column `a`, ascending (possibly empty).
  const std::vector<RowId>& group(AttrId a, ValueId v) const;

  /// The live stripped partition pi_A: the value groups of size >= 2.
  StrippedPartition live_attribute_partition(AttrId a) const;
  /// ||pi_A|| over live rows only.
  int64_t live_attribute_support(AttrId a) const { return supports_[a]; }
  /// Number of distinct codes among live rows of the column.
  int64_t live_distinct(AttrId a) const { return distinct_[a]; }
  /// Representatives of the first two distinct live values of the column,
  /// or {-1, -1} if the column has fewer than two. A witness pair for the
  /// refutation of {} -> a.
  std::pair<RowId, RowId> distinct_pair(AttrId a) const;

  /// The trivial partition {live rows} (one cluster; empty if < 2 live).
  StrippedPartition whole_live_cluster() const;

  /// A self-contained copy of the live rows (ascending internal order) with
  /// densely re-encoded codes — what a from-scratch discovery run sees.
  Relation snapshot() const;

  /// Drops tombstones: internal rows are renumbered (live order preserved),
  /// codes re-densified, groups rebuilt. External ids are unaffected.
  void compact();

  /// A refiner sized to the current max domain; invalidated (lazily
  /// re-created) when inserts grow a domain past its scratch capacity.
  PartitionRefiner& refiner();

  /// Original string of a cell (dead rows decode their stale values).
  const std::string& decode(RowId row, AttrId col) const {
    return encoder_.decode(row, col);
  }

  size_t memory_bytes() const;

 private:
  void register_row(RowId row);

  DeltaEncoder encoder_;
  // Per column, per code: ascending live rows with that code. Not partition
  // data (those are CSR StrippedPartitions); this is the mutable insert/
  // delete index, where per-group splice cost dominates and a flat arena
  // would force whole-column rewrites per batch.
  std::vector<std::vector<std::vector<RowId>>> groups_;  // lint-allow: nested-rowid
  std::vector<int64_t> supports_;
  std::vector<int64_t> distinct_;
  std::vector<uint8_t> live_;
  std::vector<LiveRowId> ids_;
  std::unordered_map<LiveRowId, RowId> row_of_;
  RowId live_rows_ = 0;
  LiveRowId next_id_ = 0;
  std::unique_ptr<PartitionRefiner> refiner_;
  ValueId refiner_domain_ = 0;
};

}  // namespace dhyfd

#endif  // DHYFD_INCR_LIVE_RELATION_H_
