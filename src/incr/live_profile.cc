#include "incr/live_profile.h"

#include <algorithm>

#include "algo/agree_sets.h"
#include "algo/validator.h"
#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

/// The deterministic total order FdSet::sort uses; set_difference over two
/// sorted covers yields the per-batch added/removed FD lists.
bool FdLess(const Fd& a, const Fd& b) {
  int ca = a.lhs.count(), cb = b.lhs.count();
  if (ca != cb) return ca < cb;
  if (a.lhs != b.lhs) return a.lhs < b.lhs;
  return a.rhs < b.rhs;
}

FdSet CoverMinus(const FdSet& a, const FdSet& b) {
  FdSet out;
  std::set_difference(a.fds.begin(), a.fds.end(), b.fds.begin(), b.fds.end(),
                      std::back_inserter(out.fds), FdLess);
  return out;
}

bool AnyLhsNull(const Relation& r, RowId row, const AttributeSet& lhs) {
  bool any = false;
  lhs.for_each([&](AttrId a) {
    if (!any && r.is_null(row, a)) any = true;
  });
  return any;
}

}  // namespace

LiveProfile::LiveProfile(const RawTable& initial, LiveProfileOptions options,
                         NullSemantics semantics)
    : options_(options), rel_(initial, semantics) {
  full_discover(nullptr);
  if (options_.maintain_ranking) full_rerank();
}

void LiveProfile::full_discover(BatchStats* stats) {
  DiscoveryResult res = Dhyfd(options_.discovery).discover(rel_.relation());
  last_full_seconds_ = res.stats.seconds;
  incremental_seconds_ = 0;
  cover_ = res.fds;  // already singleton-RHS, sorted
  rebuild_tree_from_cover();
  if (stats) {
    stats->validations += res.stats.validations;
    stats->pairs_compared += res.stats.pairs_compared;
  }
}

void LiveProfile::rebuild_tree_from_cover() {
  tree_ = std::make_unique<ExtendedFdTree>(rel_.num_cols());
  tree_->set_controlled_level(1);
  for (const Fd& fd : cover_.fds) tree_->add_fd(fd.lhs, fd.rhs);
}

void LiveProfile::refresh_cover() {
  cover_ = tree_->collect();
  cover_.sort();
}

AttributeSet LiveProfile::nonunique_attrs(RowId row) const {
  AttributeSet u;
  const Relation& r = rel_.relation();
  for (AttrId a = 0; a < r.num_cols(); ++a) {
    if (rel_.group(a, r.value(row, a)).size() >= 2) u.set(a);
  }
  return u;
}

bool LiveProfile::holds_on_live(
    const AttributeSet& lhs, AttrId a,
    std::unordered_map<AttributeSet, bool, AttributeSetHash>* cache,
    BatchStats* stats) {
  // {} -> a is exactly "the column has at most one live value".
  if (lhs.empty()) return rel_.live_distinct(a) <= 1;
  auto it = cache->find(lhs);
  if (it != cache->end()) return it->second;
  bool ok;
  if (!tree_->covered_rhs(lhs, AttributeSet::single(a)).empty()) {
    // Some tree FD X -> a with X subseteq lhs exists; tree FDs stay valid
    // under deletes, so lhs -> a is implied without touching the data.
    ok = true;
  } else {
    AttrId best = lhs.first();
    lhs.for_each([&](AttrId b) {
      if (rel_.live_attribute_support(b) < rel_.live_attribute_support(best)) {
        best = b;
      }
    });
    StrippedPartition base = rel_.live_attribute_partition(best);
    ++stats->validations;
    ValidationOutcome v =
        ValidateWithPartition(rel_.relation(), lhs, AttributeSet::single(a), base,
                              AttributeSet::single(best), rel_.refiner());
    stats->pairs_compared += v.pairs_checked;
    ok = v.valid_rhs.test(a);
  }
  cache->emplace(lhs, ok);
  return ok;
}

void LiveProfile::minimal_valid_subsets(
    const AttributeSet& z, AttrId a,
    std::unordered_map<AttributeSet, bool, AttributeSetHash>* cache,
    std::unordered_set<AttributeSet, AttributeSetHash>* visited,
    std::vector<AttributeSet>* out, BatchStats* stats) {
  if (!visited->insert(z).second) return;
  if (!holds_on_live(z, a, cache, stats)) return;
  // Validity is monotone in the LHS, so the minimal valid sets below z are
  // found by descending while any single-attribute removal stays valid.
  // Each lattice node is visited once per RHS attribute (visited memo);
  // invalid nodes cut their whole down-set, and the churn fallback bounds
  // how much of this work a degenerate delete stream can accumulate.
  bool any = false;
  z.for_each([&](AttrId b) {
    AttributeSet sub = z;
    sub.reset(b);
    if (holds_on_live(sub, a, cache, stats)) {
      any = true;
      minimal_valid_subsets(sub, a, cache, visited, out, stats);
    }
  });
  if (!any) out->push_back(z);
}

CoverDelta LiveProfile::apply(const UpdateBatch& batch, ApplyMode mode) {
  Timer timer;
  CoverDelta delta;
  BatchStats& stats = delta.stats;
  const int m = rel_.num_cols();
  const AttributeSet all = AttributeSet::full(m);
  const FdSet old_cover = cover_;

  // Fallback decision first (DDM-style efficiency ratio, Section IV-G
  // transplanted to maintenance): once incremental upkeep has cost more
  // than ratio x the last full run — or tombstones dominate storage — raw-
  // apply the batch and re-discover from scratch.
  std::string reason;
  if (mode == ApplyMode::kFullRerun) {
    reason = "forced";
  } else if (options_.auto_rebuild) {
    if (incremental_seconds_ > options_.rebuild_cost_ratio * last_full_seconds_) {
      reason = "cost-ratio";
    } else if (rel_.tombstone_fraction() > options_.max_tombstone_fraction) {
      reason = "tombstones";
    }
  }

  if (!reason.empty()) {
    TraceSpan span(kObsIncrRebuild);
    ObsAdd(kObsIncrRebuildFallbacks);
    for (const auto& cells : batch.inserts) {
      rel_.insert_row(cells);
      ++stats.rows_inserted;
    }
    for (LiveRowId id : batch.deletes) {
      RowId d = rel_.row_of(id);
      if (d < 0) {
        ++stats.unknown_deletes;
        continue;
      }
      rel_.erase_row(d);
      ++stats.rows_deleted;
    }
    rel_.compact();
    full_discover(&stats);
    ++rebuild_count_;
    stats.rebuilt = true;
    stats.rebuild_reason = reason;
    if (options_.maintain_ranking) full_rerank();
  } else {
    const Relation& r = rel_.relation();
    std::unordered_set<AttributeSet, AttributeSetHash> violated;
    std::vector<AttributeSet> touched_profiles;
    auto scan_partners =
        [&](RowId row, std::unordered_set<AttributeSet, AttributeSetHash>* sets) {
          if (partner_stamp_.size() < static_cast<size_t>(rel_.storage_rows())) {
            partner_stamp_.resize(rel_.storage_rows(), 0);
          }
          if (++partner_epoch_ == 0) {
            std::fill(partner_stamp_.begin(), partner_stamp_.end(), 0);
            partner_epoch_ = 1;
          }
          for (AttrId a = 0; a < m; ++a) {
            for (RowId s : rel_.group(a, r.value(row, a))) {
              if (s == row || partner_stamp_[s] == partner_epoch_) continue;
              partner_stamp_[s] = partner_epoch_;
              ++stats.pairs_compared;
              sets->insert(r.agree_set(row, s));
            }
          }
        };

    // --- Inserts: new violations come only from pairs touching a new row.
    // A pair sharing no value has an empty agree set and refutes only the
    // root FDs, which the live distinct counts catch below.
    {
      TraceSpan insert_span(kObsIncrInserts);
      for (const auto& cells : batch.inserts) {
        RowId t = rel_.insert_row(cells);
        ++stats.rows_inserted;
        scan_partners(t, &violated);
        if (options_.maintain_ranking) touched_profiles.push_back(nonunique_attrs(t));
      }
      AttributeSet root = tree_->root()->rhs;
      root.for_each([&](AttrId a) {
        if (rel_.live_distinct(a) > 1) {
          auto [u, v] = rel_.distinct_pair(a);
          if (u >= 0) violated.insert(r.agree_set(u, v));
        }
      });
      if (!violated.empty()) {
        std::vector<AttributeSet> vio(violated.begin(), violated.end());
        stats.agree_sets += static_cast<int64_t>(vio.size());
        SortBySizeDescending(vio);
        for (const AttributeSet& z : vio) {
          // Skip agree sets that refute nothing by now; induct() would be a
          // semantic no-op but still traverse the tree.
          if (!tree_->covered_rhs(z, all - z).empty()) tree_->induct(z, all - z);
        }
      }
    }

    // --- Deletes: record the agree set of every destroyed pair before the
    // row leaves the indexes; these bound which FDs can newly hold.
    TraceSpan delete_span(kObsIncrDeletes);
    std::unordered_set<AttributeSet, AttributeSetHash> destroyed;
    for (LiveRowId id : batch.deletes) {
      RowId d = rel_.row_of(id);
      if (d < 0) {
        ++stats.unknown_deletes;
        continue;
      }
      if (options_.maintain_ranking) touched_profiles.push_back(nonunique_attrs(d));
      scan_partners(d, &destroyed);
      rel_.erase_row(d);
      ++stats.rows_deleted;
    }

    std::vector<Fd> new_fds;
    if (!destroyed.empty()) {
      std::vector<AttributeSet> dvec(destroyed.begin(), destroyed.end());
      stats.agree_sets += static_cast<int64_t>(dvec.size());
      // A newly valid X -> A (X nonempty) had all its violating pairs die,
      // so X subseteq Z, A notin Z for some destroyed agree set Z; the per-
      // attribute-maximal destroyed sets therefore seed every candidate.
      std::vector<NonFd> seeds = NonRedundantNonFds(std::move(dvec), m);
      for (AttrId a = 0; a < m; ++a) {
        std::unordered_map<AttributeSet, bool, AttributeSetHash> cache;
        std::unordered_set<AttributeSet, AttributeSetHash> visited;
        std::vector<AttributeSet> mins;
        for (const NonFd& seed : seeds) {
          if (seed.rhs.test(a)) {
            minimal_valid_subsets(seed.lhs, a, &cache, &visited, &mins, &stats);
          }
        }
        for (const AttributeSet& lhs : mins) {
          // An emitted set has no valid strict subset, so a covering tree
          // FD can only be lhs -> a itself — already in the cover.
          if (tree_->covered_rhs(lhs, AttributeSet::single(a)).empty()) {
            new_fds.emplace_back(lhs, a);
          }
        }
      }
    }
    // {} -> A regains validity exactly when the column collapses to one
    // live value; its witnesses may have been zero-agreement pairs the
    // group scan cannot see, so check the distinct counts directly.
    if (stats.rows_deleted > 0) {
      for (AttrId a = 0; a < m; ++a) {
        if (!tree_->root()->rhs.test(a) && rel_.live_distinct(a) <= 1) {
          Fd root_fd(AttributeSet(), a);
          if (std::find(new_fds.begin(), new_fds.end(), root_fd) == new_fds.end()) {
            new_fds.push_back(root_fd);
          }
        }
      }
    }

    delete_span.finish();
    if (!new_fds.empty()) {
      // Install the newly minimal FDs and prune the specializations they
      // supersede, then rebuild the tree to match.
      FdSet updated = tree_->collect();
      std::vector<Fd> kept;
      kept.reserve(updated.fds.size() + new_fds.size());
      for (const Fd& fd : updated.fds) {
        bool superseded = false;
        for (const Fd& nf : new_fds) {
          if (nf.rhs == fd.rhs && nf.lhs != fd.lhs && nf.lhs.is_subset_of(fd.lhs)) {
            superseded = true;
            break;
          }
        }
        if (!superseded) kept.push_back(fd);
      }
      for (const Fd& nf : new_fds) kept.push_back(nf);
      cover_.fds = std::move(kept);
      cover_.sort();
      rebuild_tree_from_cover();
    }
    refresh_cover();
    if (options_.maintain_ranking) {
      TraceSpan rerank_span(kObsIncrRerank);
      FdSet added = CoverMinus(cover_, old_cover);
      FdSet removed = CoverMinus(old_cover, cover_);
      rerank_dirty(touched_profiles, added, removed, &stats);
    }
    incremental_seconds_ += timer.seconds();
  }

  delta.added = CoverMinus(cover_, old_cover);
  delta.removed = CoverMinus(old_cover, cover_);
  stats.fds_added = delta.added.size();
  stats.fds_removed = delta.removed.size();
  stats.seconds = timer.seconds();
  ++batches_applied_;
  ObsAdd(kObsIncrPairsCompared, stats.pairs_compared);
  ObsAdd(kObsIncrAgreeSets, stats.agree_sets);
  ObsAdd(kObsIncrValidations, stats.validations);
  ObsAdd(kObsIncrFdsReranked, stats.fds_reranked);
  return delta;
}

void LiveProfile::force_rebuild() {
  rel_.compact();
  full_discover(nullptr);
  ++rebuild_count_;
  if (options_.maintain_ranking) full_rerank();
}

FdRedundancy LiveProfile::compute_live_redundancy(const Fd& fd) {
  FdRedundancy red;
  red.fd = fd;
  StrippedPartition pi;
  if (fd.lhs.empty()) {
    pi = rel_.whole_live_cluster();
  } else {
    AttrId best = fd.lhs.first();
    fd.lhs.for_each([&](AttrId b) {
      if (rel_.live_attribute_support(b) < rel_.live_attribute_support(best)) {
        best = b;
      }
    });
    pi = rel_.refiner().refine_all(rel_.live_attribute_partition(best),
                                   fd.lhs - AttributeSet::single(best));
  }
  const Relation& r = rel_.relation();
  for (RowId row : pi.row_arena()) {
    bool lhs_null = AnyLhsNull(r, row, fd.lhs);
    fd.rhs.for_each([&](AttrId a) {
      ++red.with_nulls;
      if (!r.is_null(row, a)) {
        ++red.excluding_null_rhs;
        if (!lhs_null) ++red.excluding_null_lhs_rhs;
      }
    });
  }
  return red;
}

void LiveProfile::rerank_dirty(const std::vector<AttributeSet>& touched_profiles,
                               const FdSet& added, const FdSet& removed,
                               BatchStats* stats) {
  (void)added;  // added FDs are dirty by virtue of missing from the map
  for (const Fd& fd : removed.fds) redundancy_.erase(fd);
  for (const Fd& fd : cover_.fds) {
    bool dirty = redundancy_.find(fd) == redundancy_.end();
    if (!dirty) {
      // A batch only moves this FD's counts if a touched row shared its
      // LHS projection with another row — i.e. LHS inside that row's
      // non-unique attribute set.
      for (const AttributeSet& u : touched_profiles) {
        if (fd.lhs.is_subset_of(u)) {
          dirty = true;
          break;
        }
      }
    }
    if (dirty) {
      redundancy_[fd] = compute_live_redundancy(fd);
      ++stats->fds_reranked;
    }
  }
  ranking_sorted_ = false;
}

void LiveProfile::full_rerank() {
  redundancy_.clear();
  // Only called when the relation is freshly compacted (no tombstones), so
  // the batch counters can reuse the shared whole-relation implementation.
  for (FdRedundancy& red : ComputeFdRedundancies(rel_.relation(), cover_)) {
    redundancy_.emplace(red.fd, std::move(red));
  }
  ranking_sorted_ = false;
}

const std::vector<FdRedundancy>& LiveProfile::ranking() const {
  if (!ranking_sorted_) {
    ranking_.clear();
    ranking_.reserve(redundancy_.size());
    for (const Fd& fd : cover_.fds) {
      auto it = redundancy_.find(fd);
      if (it != redundancy_.end()) ranking_.push_back(it->second);
    }
    RedundancyMode mode = options_.ranking_mode;
    std::stable_sort(ranking_.begin(), ranking_.end(),
                     [mode](const FdRedundancy& a, const FdRedundancy& b) {
                       return RedundancyCount(a, mode) > RedundancyCount(b, mode);
                     });
    ranking_sorted_ = true;
  }
  return ranking_;
}

}  // namespace dhyfd
