#ifndef DHYFD_INCR_UPDATE_BATCH_H_
#define DHYFD_INCR_UPDATE_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dhyfd {

/// Stable, external identity of a tuple in a live relation. Ids are assigned
/// sequentially in insertion order (the initial table's rows get 0..n-1) and
/// survive churn-triggered compaction, which renumbers the *internal* RowIds.
using LiveRowId = int64_t;

/// One transactional change set against a live relation. Inserts are raw
/// string rows (one cell per schema column, null markers as in CsvOptions);
/// deletes name tuples by their stable LiveRowId.
///
/// Application order within a batch: all inserts first, then all deletes —
/// so a batch may delete a row it inserted itself (its id is the relation's
/// next_row_id() at the time the insert position is reached).
struct UpdateBatch {
  std::vector<std::vector<std::string>> inserts;
  std::vector<LiveRowId> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  int64_t size() const {
    return static_cast<int64_t>(inserts.size() + deletes.size());
  }
};

}  // namespace dhyfd

#endif  // DHYFD_INCR_UPDATE_BATCH_H_
