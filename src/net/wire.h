#ifndef DHYFD_NET_WIRE_H_
#define DHYFD_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace dhyfd::net {

/// The RPC wire format is deliberately minimal: a little-endian length
/// prefix, a one-byte message type, an eight-byte correlation id, and a
/// type-specific payload (see messages.h for the payload schemas and
/// DESIGN.md "Network service" for the framing rationale):
///
///   +----------+------+------------+---------------------+
///   | u32 len  | u8 t | u64 req_id | payload (len-9 B)   |
///   +----------+------+------------+---------------------+
///
/// `len` counts everything after itself (type + request id + payload), so a
/// frame occupies 4 + len bytes on the wire and the smallest legal frame has
/// len == 9. Anything malformed — len below the header size, len above the
/// negotiated maximum, an unknown type byte, or a payload whose fields read
/// past its end — is a protocol error: the peer's connection is dropped, it
/// is never "best-effort parsed".

/// Everything the client may send and everything the server may answer.
/// Values are wire-stable; add new ones at the end only.
enum class MsgType : std::uint8_t {
  // client -> server
  kHello = 1,            // version handshake; first frame on a connection
  kRegisterDataset = 2,  // upload a CSV table (optionally as a live dataset)
  kSubmitDiscovery = 3,  // run a profiling job; response carries the summary
  kQueryCover = 4,       // ranked cover of a live dataset (top-k)
  kApplyUpdate = 5,      // submit an UpdateBatch against a live dataset
  kSubscribe = 6,        // stream live cover deltas, credit-windowed
  kCredit = 7,           // grant credits to a subscription (the ACK)
  kUnsubscribe = 8,      // end a subscription
  kPing = 9,             // liveness probe; also resets the idle timer
  kGoodbye = 10,         // polite close: server flushes, then disconnects
  kSubmitQuery = 11,     // run a rank-driven discovery query (protocol v2+)
  kTracedRequest = 12,   // trace-context wrapper around any request (v3+)

  // server -> client
  kHelloOk = 64,         // handshake reply: limits the client must respect
  kError = 65,           // request failed; code + message
  kRegisterOk = 66,
  kDiscoveryResult = 67,
  kCoverResult = 68,
  kUpdateOk = 69,
  kSubscribeOk = 70,
  kCoverUpdate = 71,     // stream event; request id = subscription id
  kStreamEnd = 72,       // subscription closed; reason code
  kHeartbeat = 73,       // periodic keepalive on streaming connections
  kPong = 74,
  kQueryResult = 75,     // answer to kSubmitQuery (protocol v2+)
  kCostTrailer = 76,     // per-request cost ledger after a success (v3+)
};

/// True if `t` is a value the protocol defines (in either direction).
bool IsKnownMsgType(std::uint8_t t);

/// Error codes carried by kError frames.
enum class ErrCode : std::uint16_t {
  kBadRequest = 1,        // malformed or semantically invalid payload
  kUnsupportedVersion = 2,
  kUnknownDataset = 3,
  kQuotaExceeded = 4,     // per-client request rate quota exhausted
  kTooManyInFlight = 5,   // per-client in-flight window full
  kServerBusy = 6,        // scheduler queue full (admission backstop)
  kShuttingDown = 7,
  kInternal = 8,
};

const char* ErrCodeName(ErrCode code);

/// Reasons carried by kStreamEnd frames.
enum class StreamEndReason : std::uint16_t {
  kUnsubscribed = 1,
  kSlowConsumer = 2,    // credit window + event buffer both exhausted
  kServerShutdown = 3,
  kDatasetDropped = 4,
};

const char* StreamEndReasonName(StreamEndReason reason);

/// Protocol violation while decoding. The connection that produced the
/// bytes must be dropped; there is no recovery inside a corrupted stream.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

constexpr std::size_t kFrameHeaderBytes = 9;   // type + request id
constexpr std::size_t kLengthPrefixBytes = 4;
/// Default cap on `len`; covers a multi-MB CSV upload while bounding what a
/// hostile length prefix can make the server reserve.
constexpr std::uint32_t kDefaultMaxFrameLen = 16u << 20;

/// Appends little-endian primitives / length-prefixed strings to a byte
/// buffer. All multi-byte integers on the wire are little-endian.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v, 2); }
  void u32(std::uint32_t v) { append_le(v, 4); }
  void u64(std::uint64_t v) { append_le(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// IEEE-754 bits, little-endian.
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// u32 byte count, then the bytes.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  void append_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reads over one frame's payload. Every accessor throws
/// WireError instead of reading past the end, so a hostile payload can make
/// a request fail but never make the server touch memory it does not own.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(read_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(read_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(read_le(4)); }
  std::uint64_t u64() { return read_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    std::uint32_t n = u32();
    if (n > remaining()) {
      throw WireError("string length " + std::to_string(n) +
                      " exceeds remaining payload " + std::to_string(remaining()));
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  /// Throws unless the payload was consumed exactly — trailing garbage in a
  /// known message type is a protocol error too.
  void expect_done() const {
    if (!done()) {
      throw WireError("payload has " + std::to_string(remaining()) +
                      " trailing byte(s)");
    }
  }

 private:
  std::uint64_t read_le(int n) {
    if (static_cast<std::size_t>(n) > remaining()) {
      throw WireError("payload truncated: need " + std::to_string(n) +
                      " byte(s), have " + std::to_string(remaining()));
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= std::uint64_t{data_[pos_ + i]} << (8 * i);
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kPing;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Serializes a complete frame (length prefix included).
std::vector<std::uint8_t> EncodeFrame(MsgType type, std::uint64_t request_id,
                                      const std::vector<std::uint8_t>& payload);

/// Incremental frame extractor for one connection: feed() raw bytes as they
/// arrive, next() pops complete frames. Malformed input (length prefix
/// below the header size or above `max_frame_len`, unknown type byte)
/// throws WireError from next(); the decoder is then poisoned and the
/// caller must drop the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_len = kDefaultMaxFrameLen)
      : max_frame_len_(max_frame_len) {}

  void feed(const std::uint8_t* data, std::size_t size);

  /// Extracts the next complete frame into *out; false if more bytes are
  /// needed. Throws WireError on malformed input.
  bool next(Frame* out);

  /// Bytes buffered but not yet returned as frames.
  std::size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  const std::uint32_t max_frame_len_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // prefix of buf_ already handed out
  bool poisoned_ = false;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_WIRE_H_
