#include "net/slowlog.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "net/http.h"

namespace dhyfd::net {

void SlowLog::record(const RpcRecord& rec) {
  if (capacity_ == 0) return;
  if (entries_.size() >= capacity_ &&
      rec.duration_seconds <= entries_.back().duration_seconds) {
    return;  // faster than everything retained; not worth a shuffle
  }
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), rec,
      [](const RpcRecord& a, const RpcRecord& b) {
        return a.duration_seconds > b.duration_seconds;
      });
  entries_.insert(pos, rec);
  if (entries_.size() > capacity_) entries_.pop_back();
}

void RecentRpcRing::record(RpcRecord rec) {
  if (capacity_ == 0) return;
  ring_.push_back(std::move(rec));
  if (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<RpcRecord> RecentRpcRing::recent() const {
  return std::vector<RpcRecord>(ring_.rbegin(), ring_.rend());
}

namespace {

std::string Fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

}  // namespace

std::string CostLedgerJson(const CostLedger& cost) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"cpu_ms\":%.3f,\"validations\":%lld,"
                "\"partitions_built\":%lld,\"cache_hits\":%lld,"
                "\"cache_misses\":%lld,\"bytes_streamed\":%lld}",
                static_cast<double>(cost.cpu_ns) / 1e6,
                static_cast<long long>(cost.validations),
                static_cast<long long>(cost.partitions_built),
                static_cast<long long>(cost.cache_hits),
                static_cast<long long>(cost.cache_misses),
                static_cast<long long>(cost.bytes_streamed));
  return buf;
}

std::string RpcRecordJson(const RpcRecord& rec, double now_seconds) {
  std::string out = "{\"type\":\"";
  out += JsonEscape(rec.rtype);
  out += "\",\"outcome\":\"";
  out += JsonEscape(rec.outcome);
  out += "\",\"tenant\":\"";
  out += JsonEscape(rec.tenant);
  out += "\",\"trace_id\":" + std::to_string(rec.trace_id);
  out += ",\"request_id\":" + std::to_string(rec.request_id);
  out += ",\"conn_id\":" + std::to_string(rec.conn_id);
  out += ",\"age_seconds\":" + Fmt3(now_seconds - rec.end_seconds);
  out += ",\"duration_ms\":" + Fmt3(rec.duration_seconds * 1e3);
  out += ",\"queue_ms\":" + Fmt3(rec.queue_seconds * 1e3);
  out += ",\"run_ms\":" + Fmt3(rec.run_seconds * 1e3);
  out += ",\"cost\":" + CostLedgerJson(rec.cost);
  out += "}";
  return out;
}

}  // namespace dhyfd::net
