#include "net/server.h"

#include <algorithm>
#include <utility>

#include "core/profiler.h"
#include "net/http.h"
#include "net/messages.h"
#include "obs/obs_schema.gen.h"
#include "obs/prometheus.h"
#include "obs/trace.h"
#include "ranking/ranking.h"
#include "relation/csv.h"

namespace dhyfd::net {

namespace {

constexpr int kOpsThreads = 2;

/// Synthetic Chrome-trace lane for server-side request spans, matching the
/// scheduler's convention so one trace id lands on one visual row.
std::uint32_t TraceLane(std::uint64_t trace_id) {
  return 900000u + static_cast<std::uint32_t>(trace_id % 100000);
}

/// Stable request-type label for net.rpc.* metric names and /slowlog rows.
const char* RequestTypeName(MsgType type) {
  switch (type) {
    case MsgType::kSubmitDiscovery: return "submit_discovery";
    case MsgType::kSubmitQuery: return "submit_query";
    case MsgType::kRegisterDataset: return "register_dataset";
    case MsgType::kQueryCover: return "query_cover";
    case MsgType::kApplyUpdate: return "apply_update";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kHello:
    case MsgType::kCredit:
    case MsgType::kUnsubscribe:
    case MsgType::kPing:
    case MsgType::kGoodbye:
    case MsgType::kTracedRequest:
    case MsgType::kHelloOk:
    case MsgType::kError:
    case MsgType::kRegisterOk:
    case MsgType::kDiscoveryResult:
    case MsgType::kCoverResult:
    case MsgType::kUpdateOk:
    case MsgType::kSubscribeOk:
    case MsgType::kCoverUpdate:
    case MsgType::kStreamEnd:
    case MsgType::kHeartbeat:
    case MsgType::kPong:
    case MsgType::kQueryResult:
    case MsgType::kCostTrailer:
      return "other";
  }
  return "other";
}

bool IsRequestType(MsgType type) {
  switch (type) {
    case MsgType::kSubmitDiscovery:
    case MsgType::kSubmitQuery:
    case MsgType::kRegisterDataset:
    case MsgType::kQueryCover:
    case MsgType::kApplyUpdate:
    case MsgType::kSubscribe:
      return true;
    case MsgType::kHello:
    case MsgType::kCredit:
    case MsgType::kUnsubscribe:
    case MsgType::kPing:
    case MsgType::kGoodbye:
    case MsgType::kTracedRequest:
    case MsgType::kHelloOk:
    case MsgType::kError:
    case MsgType::kRegisterOk:
    case MsgType::kDiscoveryResult:
    case MsgType::kCoverResult:
    case MsgType::kUpdateOk:
    case MsgType::kSubscribeOk:
    case MsgType::kCoverUpdate:
    case MsgType::kStreamEnd:
    case MsgType::kHeartbeat:
    case MsgType::kPong:
    case MsgType::kQueryResult:
    case MsgType::kCostTrailer:
      return false;
  }
  return false;
}

/// Appends a kCostTrailer frame (same request_id as the answer it follows)
/// to `out`, so both ship in one write and the client reads the trailer
/// deterministically right after the result.
void AppendCostTrailer(std::vector<std::uint8_t>* out,
                       std::uint64_t request_id, const CostLedger& cost,
                       double queue_seconds, double run_seconds) {
  CostTrailerMsg trailer;
  trailer.cpu_ns = static_cast<std::uint64_t>(std::max<std::int64_t>(
      cost.cpu_ns, 0));
  trailer.validations = static_cast<std::uint64_t>(cost.validations);
  trailer.partitions_built = static_cast<std::uint64_t>(cost.partitions_built);
  trailer.cache_hits = static_cast<std::uint64_t>(cost.cache_hits);
  trailer.cache_misses = static_cast<std::uint64_t>(cost.cache_misses);
  trailer.bytes_streamed = static_cast<std::uint64_t>(cost.bytes_streamed);
  trailer.queue_seconds = queue_seconds;
  trailer.run_seconds = run_seconds;
  std::vector<std::uint8_t> frame =
      EncodeMsgFrame(MsgType::kCostTrailer, request_id, trailer);
  out->insert(out->end(), frame.begin(), frame.end());
}

NullSemantics SemanticsFromWire(std::uint8_t v) {
  return v == 0 ? NullSemantics::kNullEqualsNull
                : NullSemantics::kNullNotEqualsNull;
}

std::vector<RankedFdMsg> TopRanked(const std::vector<FdRedundancy>& ranking,
                                   std::uint32_t top_k) {
  std::vector<RankedFdMsg> out;
  std::uint32_t n = std::min<std::uint32_t>(
      top_k, static_cast<std::uint32_t>(ranking.size()));
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back({ranking[i].fd.to_string(),
                   static_cast<double>(RedundancyCount(
                       ranking[i], RedundancyMode::kExcludingNullRhs))});
  }
  return out;
}

std::vector<std::string> FdStrings(const FdSet& fds) {
  std::vector<std::string> out;
  out.reserve(fds.fds.size());
  for (const Fd& fd : fds.fds) out.push_back(fd.to_string());
  return out;
}

}  // namespace

ProfilingServer::ProfilingServer(JobScheduler* scheduler, LiveStore* live,
                                 DatasetRegistry* datasets,
                                 MetricsRegistry* metrics,
                                 ServerOptions options)
    : scheduler_(scheduler),
      live_(live),
      datasets_(datasets),
      metrics_(metrics),
      options_(std::move(options)),
      ops_pool_(kOpsThreads),
      epoch_(std::chrono::steady_clock::now()),
      slowlog_(options_.slowlog_capacity),
      tracez_(options_.tracez_capacity),
      m_requests_(metrics->counter(kObsNetRequests)),
      m_frames_rx_(metrics->counter(kObsNetFramesRx)),
      m_bytes_rx_(metrics->counter(kObsNetBytesRx)),
      m_frames_tx_(metrics->counter(kObsNetFramesTx)),
      m_bytes_tx_(metrics->counter(kObsNetBytesTx)),
      m_protocol_errors_(metrics->counter(kObsNetProtocolErrors)),
      m_request_seconds_(metrics->histogram(kObsNetRequestSeconds)),
      m_rpc_requests_(metrics->counter(kObsNetRpcRequests)),
      m_rpc_queue_seconds_(metrics->histogram(kObsNetRpcQueueSeconds)),
      m_rpc_run_seconds_(metrics->histogram(kObsNetRpcRunSeconds)),
      m_rpc_cpu_ns_(metrics->counter(kObsNetRpcCpuNs)),
      m_rpc_validations_(metrics->counter(kObsNetRpcValidations)),
      m_rpc_partitions_built_(metrics->counter(kObsNetRpcPartitionsBuilt)),
      m_rpc_bytes_streamed_(metrics->counter(kObsNetRpcBytesStreamed)) {}

ProfilingServer::~ProfilingServer() { shutdown(); }

double ProfilingServer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ProfilingServer::start() {
  listener_ = ListenTcp(options_.host, options_.port, options_.accept_backlog,
                        &port_);
  listener_.set_nonblocking(true);
  if (options_.http_enabled) {
    http_listener_ = ListenTcp(options_.host, options_.http_port,
                               options_.accept_backlog, &http_port_);
    http_listener_.set_nonblocking(true);
  }
  // Cover-change events are produced on LiveStore worker threads; they are
  // queued under mu_ and the loop is woken to fan them out to subscribers.
  {
    MutexLock lock(&shutdown_mu_);
    live_listener_token_ = live_->subscribe([this](const CoverChangeEvent& ev) {
      {
        MutexLock lock(&mu_);
        if (stop_requested_) return;
        events_.push_back(ev);
      }
      wake_.wake();
    });
  }
  // The event loop owns its thread for its whole lifetime; pool workers
  // are for bounded tasks.  // lint-allow: naked-thread
  loop_thread_ = std::thread([this] { loop(); });  // lint-allow: naked-thread
}

void ProfilingServer::shutdown() {
  {
    MutexLock lock(&mu_);
    stop_requested_ = true;
  }
  wake_.wake();
  // Exactly one caller runs the teardown; everyone else blocks on the
  // mutex until it finished, then sees shutdown_done_ and returns. No
  // caller can return while the loop thread is still draining, and the
  // listener token is only touched under the same lock.
  MutexLock teardown(&shutdown_mu_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (loop_thread_.joinable()) loop_thread_.join();
  if (live_listener_token_ != 0) {
    live_->unsubscribe(live_listener_token_);
    live_listener_token_ = 0;
  }
  ops_pool_.shutdown();
}

// ---------------------------------------------------------------- event loop

void ProfilingServer::loop() {
  Poller poller;
  for (;;) {
    // Pick the drain state up first so this tick already refuses new work.
    bool stop;
    {
      MutexLock lock(&mu_);
      stop = stop_requested_;
    }
    if (stop && !draining_) {
      draining_ = true;
      drain_deadline_ = now() + options_.drain_seconds;
      listener_.close();
      for (auto& [id, conn] : conns_) {
        // Subscribers get a terminal frame; everyone then drains and closes.
        std::vector<std::uint64_t> subs;
        for (const auto& [sub_id, sub] : conn->subs) subs.push_back(sub_id);
        for (std::uint64_t sub_id : subs) {
          end_subscription(*conn, sub_id, StreamEndReason::kServerShutdown,
                           "server shutting down");
        }
        conn->closing = true;
      }
    }
    if (draining_ && drain_finished()) break;

    poller.clear();
    if (listener_.valid()) poller.watch(listener_.fd(), true, false);
    // The HTTP listener outlives the drain start: /healthz keeps answering
    // (with 503) while the RPC side refuses work.
    if (http_listener_.valid()) poller.watch(http_listener_.fd(), true, false);
    poller.watch(wake_.read_fd(), true, false);
    for (const auto& [id, conn] : conns_) {
      if (conn->dead) continue;  // reaped at the end of this tick
      bool want_write = conn->out_pos < conn->out.size();
      poller.watch(conn->sock.fd(), true, want_write);
    }
    for (const auto& [id, hc] : http_conns_) {
      if (hc->dead) continue;
      poller.watch(hc->sock.fd(), !hc->responded,
                   hc->out_pos < hc->out.size());
    }
    // Job/update completion has no callback — the loop sweeps the handles.
    // Tighten the tick while any are pending so responses stay prompt.
    int timeout_ms =
        (!pending_jobs_.empty() || !pending_updates_.empty()) ? 2 : 50;
    if (draining_) timeout_ms = 2;
    std::vector<PollEvent> ready = poller.wait(timeout_ms);

    for (const PollEvent& ev : ready) {
      if (listener_.valid() && ev.fd == listener_.fd()) {
        if (ev.readable) accept_new();
        continue;
      }
      if (ev.fd == wake_.read_fd()) {
        wake_.drain();
        continue;
      }
      if (http_listener_.valid() && ev.fd == http_listener_.fd()) {
        if (ev.readable) accept_http();
        continue;
      }
      {
        HttpConnection* hc = nullptr;
        for (auto& [id, h] : http_conns_) {
          if (h->sock.fd() == ev.fd) {
            hc = h.get();
            break;
          }
        }
        if (hc != nullptr) {
          if (ev.error) {
            hc->dead = true;
          } else {
            if (ev.readable && !hc->responded) handle_http_readable(*hc);
            if (ev.writable && !hc->dead) flush_http_writes(*hc);
          }
          continue;
        }
      }
      // Find the connection (ids are stable; fd reuse cannot alias because
      // a dropped connection leaves conns_ in the same tick).
      Connection* conn = nullptr;
      std::uint64_t conn_id = 0;
      for (auto& [id, c] : conns_) {
        if (c->sock.fd() == ev.fd) {
          conn = c.get();
          conn_id = id;
          break;
        }
      }
      if (conn == nullptr || conn->dead) continue;
      if (ev.error) {
        drop_connection(conn_id, "poll error");
        continue;
      }
      if (ev.readable) handle_readable(*conn);
      // handle_readable may have dropped (read error) or killed (write
      // error) the connection.
      if (conns_.find(conn_id) == conns_.end() || conn->dead) continue;
      if (ev.writable) flush_writes(*conn);
      if (conns_.find(conn_id) == conns_.end() || conn->dead) continue;
      if (conn->closing && conn->out_pos >= conn->out.size()) {
        drop_connection(conn_id, "flushed and closing");
      }
    }

    sweep_pending();
    flush_completions();
    {
      std::vector<CoverChangeEvent> events;
      {
        MutexLock lock(&mu_);
        events.swap(events_);
      }
      if (!events.empty()) deliver_events(std::move(events));
    }
    heartbeat_and_idle();
    reap_connections();
    reap_http_connections();
  }

  // Hard stop: anything still open closes now.
  std::vector<std::uint64_t> remaining;
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (std::uint64_t id : remaining) drop_connection(id, "server stopped");
  metrics_->gauge(kObsNetHttpConnections)
      .add(-static_cast<std::int64_t>(http_conns_.size()));
  http_conns_.clear();
  http_listener_.close();
  pending_jobs_.clear();
  pending_updates_.clear();
}

bool ProfilingServer::drain_finished() {
  if (now() >= drain_deadline_) return true;
  if (!pending_jobs_.empty() || !pending_updates_.empty()) return false;
  {
    MutexLock lock(&mu_);
    if (!completions_.empty() || !events_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (conn->out_pos < conn->out.size()) return false;
  }
  return true;
}

void ProfilingServer::accept_new() {
  for (;;) {
    Socket sock = AcceptOn(listener_);
    if (!sock.valid()) return;
    if (static_cast<int>(conns_.size()) >= options_.max_connections ||
        draining_) {
      // Admission control, layer 1: over capacity the connection is closed
      // immediately — the client sees EOF instead of an unbounded queue.
      metrics_->counter(kObsNetConnsRejected).inc();
      continue;
    }
    sock.set_nonblocking(true);
    sock.set_tcp_nodelay(true);
    auto conn = std::make_unique<Connection>(
        options_.max_frame_len, options_.quota_rate, options_.quota_burst,
        options_.max_inflight);
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    conn->last_recv = conn->last_send = now();
    metrics_->counter(kObsNetConnsAccepted).inc();
    metrics_->gauge(kObsNetConnections).add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void ProfilingServer::handle_readable(Connection& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    IoResult r = c.sock.read_some(buf, sizeof buf);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status == IoStatus::kClosed || r.status == IoStatus::kError) {
      drop_connection(c.id, "peer closed");
      return;
    }
    m_bytes_rx_.inc(static_cast<std::int64_t>(r.bytes));
    c.decoder.feed(buf, r.bytes);
    c.last_recv = now();
    if (r.bytes < sizeof buf) break;
  }
  Frame frame;
  for (;;) {
    try {
      if (!c.decoder.next(&frame)) break;
    } catch (const WireError&) {
      // Corrupt framing: there is no resynchronization point inside a byte
      // stream, so the only safe answer is to drop the connection.
      m_protocol_errors_.inc();
      drop_connection(c.id, "protocol error");
      return;
    }
    m_frames_rx_.inc();
    std::uint64_t conn_id = c.id;
    dispatch(c, frame);
    if (conns_.find(conn_id) == conns_.end()) return;  // dispatch dropped it
    if (c.dead) return;  // a reply hit a reset socket; ignore the rest
  }
}

void ProfilingServer::dispatch(Connection& c, const Frame& frame) {
  if (frame.type == MsgType::kTracedRequest) {
    // Trace-context envelope (v3+): adopt the client-stamped ids, then
    // dispatch the wrapped request as if it had arrived bare. The inner
    // payload is the tail of the envelope's payload — no copy of the frame
    // header, same request_id.
    if (c.protocol_version < kTraceProtocolVersion) {
      send_error(c, frame.request_id, ErrCode::kUnsupportedVersion,
                 "traced requests require protocol version " +
                     std::to_string(kTraceProtocolVersion) +
                     "; this connection negotiated " +
                     std::to_string(c.protocol_version));
      return;
    }
    Frame inner;
    TraceContext ctx;
    try {
      WireReader r(frame.payload);
      MsgType inner_type;
      ctx = DecodeTracedHeader(r, &inner_type);
      inner.type = inner_type;
      inner.request_id = frame.request_id;
      inner.payload.assign(
          frame.payload.begin() +
              static_cast<std::ptrdiff_t>(frame.payload.size() - r.remaining()),
          frame.payload.end());
    } catch (const WireError&) {
      m_protocol_errors_.inc();
      drop_connection(c.id, "malformed traced envelope");
      return;
    }
    TraceIdScope trace_scope(ctx.trace_id);
    dispatch_request(c, inner, ctx);
    return;
  }
  dispatch_request(c, frame, TraceContext{});
}

void ProfilingServer::dispatch_request(Connection& c, const Frame& frame,
                                       const TraceContext& ctx) {
  TraceSpan span(kObsNetDispatch);
  if (c.closing) return;  // goodbye already seen; ignore the tail
  if (!c.got_hello && frame.type != MsgType::kHello) {
    m_protocol_errors_.inc();
    drop_connection(c.id, "first frame was not hello");
    return;
  }
  try {
    switch (frame.type) {
      case MsgType::kHello: {
        WireReader r(frame.payload);
        HelloMsg hello = HelloMsg::decode(r);
        if (hello.protocol_version < kMinProtocolVersion ||
            hello.protocol_version > kProtocolVersion) {
          send_error(c, frame.request_id, ErrCode::kUnsupportedVersion,
                     "server speaks protocol versions " +
                         std::to_string(kMinProtocolVersion) + ".." +
                         std::to_string(kProtocolVersion));
          c.closing = true;
          return;
        }
        c.got_hello = true;
        // Negotiate down to the client's version; v2-only requests from a
        // v1 connection get a clean per-request error, not a disconnect.
        c.protocol_version = hello.protocol_version;
        // The hello name becomes the tenant key for cost attribution;
        // bounded so a hostile client cannot grow the tenant table rows.
        if (!hello.client_name.empty()) {
          c.client_name = hello.client_name.substr(0, 64);
        }
        c.tenant_slot = tenant_slot(c.client_name);
        HelloOkMsg ok;
        ok.protocol_version = c.protocol_version;
        ok.max_inflight = options_.max_inflight;
        ok.credit_max = options_.credit_max;
        ok.heartbeat_seconds = options_.heartbeat_seconds;
        send_frame(c, EncodeMsgFrame(MsgType::kHelloOk, frame.request_id, ok));
        return;
      }
      case MsgType::kPing:
        send_frame(c, EncodeEmptyFrame(MsgType::kPong, frame.request_id));
        return;
      case MsgType::kGoodbye:
        c.closing = true;
        return;
      case MsgType::kCredit:
        handle_credit(c, frame);
        return;
      case MsgType::kUnsubscribe:
        handle_unsubscribe(c, frame);
        return;
      case MsgType::kRegisterDataset:
      case MsgType::kSubmitDiscovery:
      case MsgType::kQueryCover:
      case MsgType::kApplyUpdate:
      case MsgType::kSubscribe:
      case MsgType::kSubmitQuery:
      case MsgType::kTracedRequest:
      case MsgType::kHelloOk:
      case MsgType::kError:
      case MsgType::kRegisterOk:
      case MsgType::kDiscoveryResult:
      case MsgType::kCoverResult:
      case MsgType::kUpdateOk:
      case MsgType::kSubscribeOk:
      case MsgType::kCoverUpdate:
      case MsgType::kStreamEnd:
      case MsgType::kHeartbeat:
      case MsgType::kPong:
      case MsgType::kQueryResult:
      case MsgType::kCostTrailer:
        break;  // falls through to the quota-charged request path below
    }

    // Everything below is a real request: quota-charged, and refused
    // outright while draining.
    RpcFinish reject;
    reject.rtype = RequestTypeName(frame.type);
    reject.outcome = "rejected";
    reject.request_id = frame.request_id;
    reject.trace_id = ctx.trace_id;
    if (draining_) {
      if (IsRequestType(frame.type)) record_rpc(c, reject, 0);
      send_error(c, frame.request_id, ErrCode::kShuttingDown,
                 "server is draining");
      return;
    }
    m_requests_.inc();
    if (!c.bucket.try_take(now())) {
      metrics_->counter(kObsNetQuotaRejects).inc();
      if (IsRequestType(frame.type)) record_rpc(c, reject, 0);
      send_error(c, frame.request_id, ErrCode::kQuotaExceeded,
                 "request quota exhausted; slow down");
      return;
    }
    switch (frame.type) {
      case MsgType::kSubmitDiscovery:
        handle_submit_discovery(c, frame, ctx);
        return;
      case MsgType::kSubmitQuery:
        handle_submit_query(c, frame, ctx);
        return;
      case MsgType::kRegisterDataset:
        handle_register(c, frame, ctx);
        return;
      case MsgType::kQueryCover:
        handle_query_cover(c, frame, ctx);
        return;
      case MsgType::kApplyUpdate:
        handle_apply_update(c, frame, ctx);
        return;
      case MsgType::kSubscribe:
        handle_subscribe(c, frame);
        return;
      case MsgType::kHello:
      case MsgType::kCredit:
      case MsgType::kUnsubscribe:
      case MsgType::kPing:
      case MsgType::kGoodbye:
      case MsgType::kTracedRequest:
      case MsgType::kHelloOk:
      case MsgType::kError:
      case MsgType::kRegisterOk:
      case MsgType::kDiscoveryResult:
      case MsgType::kCoverResult:
      case MsgType::kUpdateOk:
      case MsgType::kSubscribeOk:
      case MsgType::kCoverUpdate:
      case MsgType::kStreamEnd:
      case MsgType::kHeartbeat:
      case MsgType::kPong:
      case MsgType::kQueryResult:
      case MsgType::kCostTrailer:
        // A known type that is not a client request: server->client codes,
        // a nested kTracedRequest, or control frames already handled above.
        m_protocol_errors_.inc();
        drop_connection(c.id, "unexpected message direction");
        return;
    }
  } catch (const WireError&) {
    // The frame header parsed but its payload did not match the schema.
    m_protocol_errors_.inc();
    drop_connection(c.id, "malformed payload");
  }
}

void ProfilingServer::handle_submit_discovery(Connection& c,
                                              const Frame& frame,
                                              const TraceContext& ctx) {
  WireReader r(frame.payload);
  SubmitDiscoveryMsg msg = SubmitDiscoveryMsg::decode(r, c.protocol_version);
  RpcFinish reject;
  reject.rtype = "submit_discovery";
  reject.outcome = "rejected";
  reject.request_id = frame.request_id;
  reject.trace_id = ctx.trace_id;
  if (!c.inflight.try_acquire()) {
    metrics_->counter(kObsNetInflightRejects).inc();
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full (" + std::to_string(c.inflight.max()) +
                   ")");
    return;
  }
  ProfileJob job;
  job.dataset = msg.dataset;
  job.options.algorithm = msg.algorithm;
  job.options.semantics = SemanticsFromWire(msg.semantics);
  job.priority = msg.priority;
  // The request deadline becomes the job's cooperative time limit: the
  // discovery loops poll it via util/deadline.h and stop past-due work
  // instead of burning a worker on an answer nobody is waiting for.
  job.time_limit_seconds = msg.deadline_ms / 1000.0;
  // v4 parallelism request: a hostile degree is harmless — the scheduler
  // clamps to its pool size — but bound it anyway so the int cast is safe.
  job.options.parallelism = static_cast<int>(
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(msg.parallelism,
                                                         1u << 10)));
  // Client-stamped trace context rides into the scheduler: svc.queue_wait
  // and svc.job.run land in the same causal tree as the client's call span.
  job.trace_id = ctx.trace_id;
  JobHandlePtr handle = scheduler_->submit(std::move(job));
  if (handle->rejected()) {
    c.inflight.release();
    metrics_->counter(kObsNetBusyRejects).inc();
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kServerBusy, handle->error());
    return;
  }
  PendingJob pending{c.id, frame.request_id, msg.top_k, now(),
                     std::move(handle)};
  pending.want_trailer = c.protocol_version >= kTraceProtocolVersion &&
                         ctx.trace_id != 0;
  pending_jobs_.push_back(std::move(pending));
}

void ProfilingServer::handle_submit_query(Connection& c, const Frame& frame,
                                          const TraceContext& ctx) {
  if (c.protocol_version < kQueryProtocolVersion) {
    send_error(c, frame.request_id, ErrCode::kUnsupportedVersion,
               "submit_query requires protocol version " +
                   std::to_string(kQueryProtocolVersion) +
                   "; this connection negotiated " +
                   std::to_string(c.protocol_version));
    return;
  }
  WireReader r(frame.payload);
  SubmitQueryMsg msg = SubmitQueryMsg::decode(r, c.protocol_version);
  DiscoveryQuery query;
  query.epsilon = msg.epsilon;
  query.max_lhs = static_cast<int>(
      std::min<std::uint32_t>(msg.max_lhs, 1u << 16));
  query.top_k = msg.top_k;
  query.ranking_mode = static_cast<RedundancyMode>(msg.ranking_mode);
  for (std::uint8_t col : msg.include_columns) {
    query.include_columns.push_back(static_cast<AttrId>(col));
  }
  for (std::uint8_t col : msg.exclude_columns) {
    query.exclude_columns.push_back(static_cast<AttrId>(col));
  }
  // Hostile-but-well-framed specs (epsilon out of [0,1], NaN, absurd arity)
  // decode fine and are rejected here with a per-request error; only
  // malformed bytes cost the connection. Schema-width checks happen when
  // the job runs against the resolved dataset.
  std::string spec_error = DescribeQueryError(query, /*num_cols=*/0);
  if (!spec_error.empty()) {
    send_error(c, frame.request_id, ErrCode::kBadRequest, spec_error);
    return;
  }
  RpcFinish reject;
  reject.rtype = "submit_query";
  reject.outcome = "rejected";
  reject.request_id = frame.request_id;
  reject.trace_id = ctx.trace_id;
  if (!c.inflight.try_acquire()) {
    metrics_->counter(kObsNetInflightRejects).inc();
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full (" + std::to_string(c.inflight.max()) +
                   ")");
    return;
  }
  ProfileJob job;
  job.dataset = msg.dataset;
  job.options.semantics = SemanticsFromWire(msg.semantics);
  // Route the discovery stage through the query engine; the ranked answer
  // lands in `query_slot` once the handle finishes.
  std::shared_ptr<QueryResultSlot> query_slot =
      BindQueryToProfile(job.options, std::move(query));
  // The full-profile tail stages add nothing to a query answer.
  job.options.compute_canonical = false;
  job.options.compute_ranking = false;
  job.priority = msg.priority;
  job.time_limit_seconds = msg.deadline_ms / 1000.0;
  job.options.parallelism = static_cast<int>(
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(msg.parallelism,
                                                         1u << 10)));
  job.trace_id = ctx.trace_id;
  JobHandlePtr handle = scheduler_->submit(std::move(job));
  if (handle->rejected()) {
    c.inflight.release();
    metrics_->counter(kObsNetBusyRejects).inc();
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kServerBusy, handle->error());
    return;
  }
  PendingJob pending{c.id, frame.request_id, msg.top_k, now(),
                     std::move(handle), /*is_query=*/true,
                     std::move(query_slot)};
  pending.want_trailer = c.protocol_version >= kTraceProtocolVersion &&
                         ctx.trace_id != 0;
  pending_jobs_.push_back(std::move(pending));
}

void ProfilingServer::handle_register(Connection& c, const Frame& frame,
                                      const TraceContext& ctx) {
  WireReader r(frame.payload);
  auto msg = std::make_shared<RegisterDatasetMsg>(
      RegisterDatasetMsg::decode(r));
  if (!c.inflight.try_acquire()) {
    metrics_->counter(kObsNetInflightRejects).inc();
    RpcFinish reject;
    reject.rtype = "register_dataset";
    reject.outcome = "rejected";
    reject.request_id = frame.request_id;
    reject.trace_id = ctx.trace_id;
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full");
    return;
  }
  // CSV parsing and (for live datasets) the synchronous initial discovery
  // are far too slow for the event loop; they run on the ops pool and come
  // back through the completion queue. The pool inherits the dispatch-time
  // TraceIdScope, so spans inside the task land on the client's trace.
  std::uint64_t conn_id = c.id;
  std::uint64_t request_id = frame.request_id;
  double started = now();
  std::uint64_t trace_id = ctx.trace_id;
  bool want_trailer = c.protocol_version >= kTraceProtocolVersion &&
                         ctx.trace_id != 0;
  Tracer& tracer = Tracer::Global();
  std::int64_t enq_us =
      (trace_id != 0 && tracer.enabled()) ? tracer.now_us() : 0;
  bool submitted = ops_pool_.submit([this, conn_id, request_id, started, msg,
                                     trace_id, want_trailer, enq_us] {
    Tracer& tracer = Tracer::Global();
    if (enq_us != 0 && tracer.enabled()) {
      tracer.record_span(kObsNetQueueWait, trace_id, enq_us, tracer.now_us(),
                         TraceLane(trace_id));
    }
    double run_start = now();
    CostLedger cost;
    std::vector<std::uint8_t> reply;
    bool ok = false;
    {
      // CPU attribution costs a thread-CPU clock syscall on each end;
      // only traced requests opted into that. Counter classification
      // (validations, partitions, cache traffic) stays on for everyone.
      CostLedgerScope cost_scope(&cost, /*charge_cpu=*/trace_id != 0);
      TraceSpan run_span(kObsNetOpsRun);
      try {
        RawTable table = ParseCsvString(msg->csv_text);
        RegisterOkMsg okmsg;
        okmsg.rows = static_cast<std::uint32_t>(table.num_rows());
        okmsg.cols = static_cast<std::uint32_t>(table.num_cols());
        datasets_->add_table(msg->name, table);
        if (msg->live && !live_->contains(msg->name)) {
          LiveDatasetOptions opts;
          opts.semantics = SemanticsFromWire(msg->semantics);
          live_->create(msg->name, std::move(table), opts);
        }
        reply = EncodeMsgFrame(MsgType::kRegisterOk, request_id, okmsg);
        ok = true;
      } catch (const std::exception& e) {
        ErrorMsg err{ErrCode::kBadRequest, e.what()};
        reply = EncodeMsgFrame(MsgType::kError, request_id, err);
      }
    }
    cost.bytes_streamed = static_cast<std::int64_t>(reply.size());
    Completion done{conn_id, std::vector<std::uint8_t>(), started, true};
    done.finish.rtype = "register_dataset";
    done.finish.outcome = ok ? "ok" : "error";
    done.finish.request_id = request_id;
    done.finish.trace_id = trace_id;
    done.finish.queue_seconds = run_start - started;
    done.finish.run_seconds = now() - run_start;
    done.finish.has_cost = true;
    done.finish.cost = cost;
    if (ok && want_trailer) {
      AppendCostTrailer(&reply, request_id, cost, done.finish.queue_seconds,
                        done.finish.run_seconds);
    }
    done.frame = std::move(reply);
    {
      MutexLock lock(&mu_);
      completions_.push_back(std::move(done));
    }
    wake_.wake();
  });
  if (!submitted) {
    c.inflight.release();
    send_error(c, frame.request_id, ErrCode::kShuttingDown,
               "server is shutting down");
  }
}

void ProfilingServer::handle_query_cover(Connection& c, const Frame& frame,
                                         const TraceContext& ctx) {
  WireReader r(frame.payload);
  auto msg = std::make_shared<QueryCoverMsg>(QueryCoverMsg::decode(r));
  if (!c.inflight.try_acquire()) {
    metrics_->counter(kObsNetInflightRejects).inc();
    RpcFinish reject;
    reject.rtype = "query_cover";
    reject.outcome = "rejected";
    reject.request_id = frame.request_id;
    reject.trace_id = ctx.trace_id;
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full");
    return;
  }
  // The ranking snapshot takes the dataset's profile lock, which a running
  // update batch may hold for a while — off the loop thread it goes.
  std::uint64_t conn_id = c.id;
  std::uint64_t request_id = frame.request_id;
  double started = now();
  std::uint64_t trace_id = ctx.trace_id;
  bool want_trailer = c.protocol_version >= kTraceProtocolVersion &&
                         ctx.trace_id != 0;
  Tracer& tracer = Tracer::Global();
  std::int64_t enq_us =
      (trace_id != 0 && tracer.enabled()) ? tracer.now_us() : 0;
  bool submitted = ops_pool_.submit([this, conn_id, request_id, started, msg,
                                     trace_id, want_trailer, enq_us] {
    Tracer& tracer = Tracer::Global();
    if (enq_us != 0 && tracer.enabled()) {
      tracer.record_span(kObsNetQueueWait, trace_id, enq_us, tracer.now_us(),
                         TraceLane(trace_id));
    }
    double run_start = now();
    CostLedger cost;
    std::vector<std::uint8_t> reply;
    bool ok = false;
    {
      // CPU attribution costs a thread-CPU clock syscall on each end;
      // only traced requests opted into that. Counter classification
      // (validations, partitions, cache traffic) stays on for everyone.
      CostLedgerScope cost_scope(&cost, /*charge_cpu=*/trace_id != 0);
      TraceSpan run_span(kObsNetOpsRun);
      try {
        if (!live_->contains(msg->dataset)) {
          ErrorMsg err{ErrCode::kUnknownDataset,
                       "no live dataset named '" + msg->dataset + "'"};
          reply = EncodeMsgFrame(MsgType::kError, request_id, err);
        } else {
          std::vector<FdRedundancy> ranking = live_->ranking(msg->dataset);
          CoverResultMsg okmsg;
          okmsg.total = static_cast<std::uint32_t>(ranking.size());
          okmsg.top = TopRanked(
              ranking, msg->top_k == 0
                           ? static_cast<std::uint32_t>(ranking.size())
                           : msg->top_k);
          reply = EncodeMsgFrame(MsgType::kCoverResult, request_id, okmsg);
          ok = true;
        }
      } catch (const std::exception& e) {
        ErrorMsg err{ErrCode::kInternal, e.what()};
        reply = EncodeMsgFrame(MsgType::kError, request_id, err);
      }
    }
    cost.bytes_streamed = static_cast<std::int64_t>(reply.size());
    Completion done{conn_id, std::vector<std::uint8_t>(), started, true};
    done.finish.rtype = "query_cover";
    done.finish.outcome = ok ? "ok" : "error";
    done.finish.request_id = request_id;
    done.finish.trace_id = trace_id;
    done.finish.queue_seconds = run_start - started;
    done.finish.run_seconds = now() - run_start;
    done.finish.has_cost = true;
    done.finish.cost = cost;
    if (ok && want_trailer) {
      AppendCostTrailer(&reply, request_id, cost, done.finish.queue_seconds,
                        done.finish.run_seconds);
    }
    done.frame = std::move(reply);
    {
      MutexLock lock(&mu_);
      completions_.push_back(std::move(done));
    }
    wake_.wake();
  });
  if (!submitted) {
    c.inflight.release();
    send_error(c, frame.request_id, ErrCode::kShuttingDown,
               "server is shutting down");
  }
}

void ProfilingServer::handle_apply_update(Connection& c, const Frame& frame,
                                          const TraceContext& ctx) {
  WireReader r(frame.payload);
  ApplyUpdateMsg msg = ApplyUpdateMsg::decode(r);
  if (!c.inflight.try_acquire()) {
    metrics_->counter(kObsNetInflightRejects).inc();
    RpcFinish reject;
    reject.rtype = "apply_update";
    reject.outcome = "rejected";
    reject.request_id = frame.request_id;
    reject.trace_id = ctx.trace_id;
    record_rpc(c, reject, 0);
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full");
    return;
  }
  UpdateJob job;
  job.dataset = msg.dataset;
  job.batch.inserts = std::move(msg.inserts);
  job.batch.deletes.assign(msg.deletes.begin(), msg.deletes.end());
  // The trace id rides the LiveStore strand: incr.queue_wait / incr.batch
  // spans and the resulting CoverChangeEvent all carry the client's id.
  job.trace_id = ctx.trace_id;
  UpdateJobHandlePtr handle = live_->submit(std::move(job));
  PendingUpdate pending{c.id, frame.request_id, now(), std::move(handle)};
  pending.want_trailer = c.protocol_version >= kTraceProtocolVersion &&
                         ctx.trace_id != 0;
  pending_updates_.push_back(std::move(pending));
}

void ProfilingServer::handle_subscribe(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  SubscribeMsg msg = SubscribeMsg::decode(r);
  if (!msg.dataset.empty() && !live_->contains(msg.dataset)) {
    send_error(c, frame.request_id, ErrCode::kUnknownDataset,
               "no live dataset named '" + msg.dataset + "'");
    return;
  }
  if (c.subs.count(frame.request_id) != 0) {
    send_error(c, frame.request_id, ErrCode::kBadRequest,
               "subscription id already in use");
    return;
  }
  Subscription sub{msg.dataset,
                   CreditWindow(msg.initial_credits, options_.credit_max,
                                options_.max_buffered_events)};
  SubscribeOkMsg ok;
  ok.granted_credits = sub.window.credits();
  c.subs.emplace(frame.request_id, std::move(sub));
  metrics_->gauge(kObsNetSubscriptions).add(1);
  send_frame(c, EncodeMsgFrame(MsgType::kSubscribeOk, frame.request_id, ok));
}

void ProfilingServer::handle_credit(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  CreditMsg msg = CreditMsg::decode(r);
  auto it = c.subs.find(frame.request_id);
  // Credits for an already-ended stream are not an error: the StreamEnd
  // may still be in flight toward the client.
  if (it == c.subs.end()) return;
  for (std::vector<std::uint8_t>& buffered :
       it->second.window.grant(msg.credits)) {
    metrics_->counter(kObsNetStreamEvents).inc();
    send_frame(c, std::move(buffered));
  }
}

void ProfilingServer::handle_unsubscribe(Connection& c, const Frame& frame) {
  end_subscription(c, frame.request_id, StreamEndReason::kUnsubscribed, "");
}

void ProfilingServer::end_subscription(Connection& c, std::uint64_t sub_id,
                                       StreamEndReason reason,
                                       const std::string& detail) {
  auto it = c.subs.find(sub_id);
  if (it == c.subs.end()) return;
  c.subs.erase(it);
  metrics_->gauge(kObsNetSubscriptions).add(-1);
  StreamEndMsg end{reason, detail};
  send_frame(c, EncodeMsgFrame(MsgType::kStreamEnd, sub_id, end));
}

void ProfilingServer::sweep_pending() {
  for (std::size_t i = 0; i < pending_jobs_.size();) {
    if (!pending_jobs_[i].handle->finished()) {
      ++i;
      continue;
    }
    PendingJob job = std::move(pending_jobs_[i]);
    pending_jobs_[i] = std::move(pending_jobs_.back());
    pending_jobs_.pop_back();
    finish_job(job);
  }
  for (std::size_t i = 0; i < pending_updates_.size();) {
    if (!pending_updates_[i].handle->finished()) {
      ++i;
      continue;
    }
    PendingUpdate update = std::move(pending_updates_[i]);
    pending_updates_[i] = std::move(pending_updates_.back());
    pending_updates_.pop_back();
    finish_update(update);
  }
}

void ProfilingServer::finish_job(const PendingJob& job) {
  auto it = conns_.find(job.conn_id);
  if (it == conns_.end()) return;  // requester is gone; drop the answer
  Connection& c = *it->second;
  c.inflight.release();
  double duration = now() - job.started;
  m_request_seconds_.record(duration);

  RpcFinish fin;
  fin.rtype = job.is_query ? "submit_query" : "submit_discovery";
  fin.outcome = "ok";
  fin.request_id = job.request_id;
  fin.trace_id = job.handle->trace_id();
  fin.queue_seconds = job.handle->queue_seconds();
  fin.run_seconds = job.handle->run_seconds();
  fin.has_cost = true;
  fin.cost = job.handle->cost();

  JobState state = job.handle->state();
  if (state == JobState::kFailed) {
    std::string error = job.handle->error();
    ErrCode code = error.find("invalid discovery query") != std::string::npos
                       ? ErrCode::kBadRequest
                       : ErrCode::kInternal;
    fin.outcome = "error";
    record_rpc(c, fin, duration);
    send_error(c, job.request_id, code, error);
    return;
  }

  std::vector<std::uint8_t> reply;
  if (job.is_query) {
    QueryResultMsg msg;
    msg.state = JobStateName(state);
    msg.queue_seconds = job.handle->queue_seconds();
    msg.run_seconds = job.handle->run_seconds();
    try {
      const ProfileReport& report = job.handle->report();
      if (job.query_slot != nullptr && job.query_slot->result.has_value()) {
        const QueryResult& qr = *job.query_slot->result;
        msg.total = static_cast<std::uint32_t>(qr.fds.size());
        msg.early_terminated = qr.stats.early_terminated;
        msg.timed_out = qr.stats.timed_out;
        msg.validations = static_cast<std::uint64_t>(qr.stats.validations);
        msg.pruned_epsilon = static_cast<std::uint64_t>(qr.stats.pruned_epsilon);
        msg.pruned_arity = static_cast<std::uint64_t>(qr.stats.pruned_arity);
        msg.pruned_bound = static_cast<std::uint64_t>(qr.stats.pruned_bound);
        msg.fds.reserve(qr.fds.size());
        for (const RankedFd& f : qr.fds) {
          msg.fds.push_back(
              {f.fd.to_string(), static_cast<double>(f.score)});
        }
      }
      if (report.cancelled) {
        msg.state = "cancelled";
      } else if (report.discovery.stats.timed_out) {
        msg.state = "deadline_expired";
      }
    } catch (const std::exception&) {
      // Cancelled before it started: no report, counts stay zero.
    }
    if (msg.state == "cancelled") fin.outcome = "cancelled";
    if (msg.state == "deadline_expired") fin.outcome = "deadline_expired";
    reply = EncodeMsgFrame(MsgType::kQueryResult, job.request_id, msg);
  } else {
    DiscoveryResultMsg msg;
    msg.state = JobStateName(state);
    msg.queue_seconds = job.handle->queue_seconds();
    msg.run_seconds = job.handle->run_seconds();
    try {
      const ProfileReport& report = job.handle->report();
      msg.cover_size = static_cast<std::uint32_t>(report.left_reduced.size());
      msg.canonical_size = static_cast<std::uint32_t>(report.canonical.size());
      msg.top = TopRanked(report.ranking, job.top_k);
      // A cancelled or deadline-expired run still finishes with a (partial)
      // report; on the wire that distinction is the state string.
      if (report.cancelled) {
        msg.state = "cancelled";
      } else if (report.discovery.stats.timed_out) {
        msg.state = "deadline_expired";
      }
    } catch (const std::exception&) {
      // Cancelled before it started: no report, counts stay zero.
    }
    if (msg.state == "cancelled") fin.outcome = "cancelled";
    if (msg.state == "deadline_expired") fin.outcome = "deadline_expired";
    reply = EncodeMsgFrame(MsgType::kDiscoveryResult, job.request_id, msg);
  }
  fin.cost.bytes_streamed += static_cast<std::int64_t>(reply.size());
  if (job.want_trailer) {
    // Any result frame (including cancelled / deadline_expired partials)
    // gets the trailer; only kError answers go bare, so a v3 client reads
    // the trailer exactly when it got a result.
    AppendCostTrailer(&reply, job.request_id, fin.cost, fin.queue_seconds,
                      fin.run_seconds);
  }
  record_rpc(c, fin, duration);
  send_frame(c, std::move(reply));
}

void ProfilingServer::finish_update(const PendingUpdate& update) {
  auto it = conns_.find(update.conn_id);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  c.inflight.release();
  double duration = now() - update.started;
  m_request_seconds_.record(duration);
  RpcFinish fin;
  fin.rtype = "apply_update";
  fin.outcome = "ok";
  fin.request_id = update.request_id;
  fin.trace_id = update.handle->trace_id();
  fin.run_seconds = duration;
  fin.has_cost = true;
  fin.cost = update.handle->cost();
  if (update.handle->state() == UpdateJobState::kFailed) {
    std::string error = update.handle->error();
    ErrCode code = error.find("unknown live dataset") != std::string::npos
                       ? ErrCode::kUnknownDataset
                       : ErrCode::kInternal;
    fin.outcome = "error";
    record_rpc(c, fin, duration);
    send_error(c, update.request_id, code, error);
    return;
  }
  const CoverDelta& delta = update.handle->delta();
  UpdateOkMsg msg;
  msg.fds_added = static_cast<std::uint32_t>(delta.added.size());
  msg.fds_removed = static_cast<std::uint32_t>(delta.removed.size());
  msg.rebuilt = delta.stats.rebuilt;
  msg.seconds = delta.stats.seconds;
  std::vector<std::uint8_t> reply =
      EncodeMsgFrame(MsgType::kUpdateOk, update.request_id, msg);
  fin.cost.bytes_streamed += static_cast<std::int64_t>(reply.size());
  if (update.want_trailer) {
    AppendCostTrailer(&reply, update.request_id, fin.cost, fin.queue_seconds,
                      fin.run_seconds);
  }
  record_rpc(c, fin, duration);
  send_frame(c, std::move(reply));
}

void ProfilingServer::deliver_events(std::vector<CoverChangeEvent> events) {
  Tracer& tracer = Tracer::Global();
  for (const CoverChangeEvent& ev : events) {
    // A delta born from a traced apply_update is tagged with the client's
    // trace id; the fan-out instant joins the same causal tree.
    if (ev.trace_id != 0 && tracer.enabled()) {
      tracer.record(TraceEvent{kObsNetStreamDelta, 'i', ev.trace_id,
                               tracer.now_us(), 0, 0, TraceLane(ev.trace_id)});
    }
    std::vector<std::string> added = FdStrings(ev.added);
    std::vector<std::string> removed = FdStrings(ev.removed);
    // Collect (conn, sub) pairs first: a slow-consumer verdict drops the
    // connection, which would invalidate iterators mid-walk.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> targets;
    for (const auto& [conn_id, conn] : conns_) {
      for (const auto& [sub_id, sub] : conn->subs) {
        if (sub.dataset.empty() || sub.dataset == ev.dataset) {
          targets.emplace_back(conn_id, sub_id);
        }
      }
    }
    for (const auto& [conn_id, sub_id] : targets) {
      auto cit = conns_.find(conn_id);
      if (cit == conns_.end()) continue;
      Connection& c = *cit->second;
      auto sit = c.subs.find(sub_id);
      if (sit == c.subs.end()) continue;
      CoverUpdateMsg msg;
      msg.dataset = ev.dataset;
      msg.batch_id = ev.batch_id;
      msg.added = added;
      msg.removed = removed;
      // Advisory: the credit count after this event if it ships now; for a
      // buffered event the window is already empty, which is what 0 says.
      msg.credits_left =
          sit->second.window.credits() > 0 ? sit->second.window.credits() - 1 : 0;
      std::vector<std::uint8_t> frame =
          EncodeMsgFrame(MsgType::kCoverUpdate, sub_id, msg);
      // push() only keeps the frame when it buffers, so hand it a copy and
      // ship the original ourselves on kSend.
      switch (sit->second.window.push(frame)) {
        case CreditWindow::Push::kSend:
          metrics_->counter(kObsNetStreamEvents).inc();
          send_frame(c, std::move(frame));
          break;
        case CreditWindow::Push::kBuffered:
          metrics_->counter(kObsNetStreamBuffered).inc();
          break;
        case CreditWindow::Push::kOverflow: {
          // Credit window and buffer both exhausted: the consumer is not
          // keeping up. End its stream and drop the connection so it can
          // never stall the other subscribers.
          metrics_->counter(kObsNetSlowConsumerDisconnects).inc();
          end_subscription(c, sub_id, StreamEndReason::kSlowConsumer,
                           "credit window and event buffer exhausted");
          c.closing = true;
          break;
        }
      }
    }
  }
}

void ProfilingServer::flush_completions() {
  std::vector<Completion> completions;
  {
    MutexLock lock(&mu_);
    completions.swap(completions_);
  }
  for (Completion& done : completions) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;
    Connection& c = *it->second;
    if (done.release_inflight) c.inflight.release();
    if (done.started >= 0) {
      m_request_seconds_.record(now() - done.started);
    }
    // Telemetry computed off-loop is applied here, on the loop thread that
    // owns the slow ring and tenant table.
    if (done.finish.rtype[0] != '\0') {
      record_rpc(c, done.finish, now() - done.started);
    }
    send_frame(c, std::move(done.frame));
  }
}

void ProfilingServer::heartbeat_and_idle() {
  double t = now();
  std::vector<std::uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    if (options_.idle_timeout_seconds > 0 && !conn->closing &&
        t - conn->last_recv > options_.idle_timeout_seconds) {
      idle.push_back(id);
      continue;
    }
    // Heartbeats keep streaming connections verifiably alive (and NATs
    // open) while the cover happens not to change.
    if (options_.heartbeat_seconds > 0 && !conn->subs.empty() &&
        !conn->closing && t - conn->last_send >= options_.heartbeat_seconds) {
      HeartbeatMsg hb;
      hb.server_time_us = static_cast<std::uint64_t>(t * 1e6);
      metrics_->counter(kObsNetHeartbeats).inc();
      send_frame(*conn, EncodeMsgFrame(MsgType::kHeartbeat, 0, hb));
    }
  }
  for (std::uint64_t id : idle) {
    metrics_->counter(kObsNetIdleDisconnects).inc();
    drop_connection(id, "idle timeout");
  }
}

void ProfilingServer::send_frame(Connection& c, std::vector<std::uint8_t> frame) {
  if (c.dead) return;  // socket already failed; the frame has no ride home
  m_frames_tx_.inc();
  m_bytes_tx_.inc(static_cast<std::int64_t>(frame.size()));
  c.out.insert(c.out.end(), frame.begin(), frame.end());
  c.last_send = now();
  flush_writes(c);
}

void ProfilingServer::send_error(Connection& c, std::uint64_t request_id,
                                 ErrCode code, const std::string& message) {
  ErrorMsg err{code, message};
  send_frame(c, EncodeMsgFrame(MsgType::kError, request_id, err));
}

void ProfilingServer::flush_writes(Connection& c) {
  if (c.dead) return;
  while (c.out_pos < c.out.size()) {
    IoResult r = c.sock.write_some(c.out.data() + c.out_pos,
                                   c.out.size() - c.out_pos);
    if (r.status == IoStatus::kOk) {
      c.out_pos += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) break;
    // A peer reset mid-send (ECONNRESET/EPIPE) must NOT erase the
    // Connection here: writes happen deep inside dispatch, the heartbeat
    // sweep, and event fan-out, all of which still hold the reference or
    // are range-iterating conns_. Mark it; reap_connections() erases it at
    // the safe point at the end of the tick.
    mark_dead(c);
    return;
  }
  if (c.out_pos == c.out.size()) {
    c.out.clear();
    c.out_pos = 0;
    return;
  }
  if (c.out.size() - c.out_pos > options_.max_write_buffer_bytes) {
    // TCP-level slow consumer: the peer stopped reading. Same verdict as a
    // credit overflow — kill it before the buffer eats the server.
    metrics_->counter(kObsNetSlowConsumerDisconnects).inc();
    mark_dead(c);
  }
}

void ProfilingServer::mark_dead(Connection& c) {
  if (c.dead) return;
  c.dead = true;
  c.closing = true;
  // Nothing can be written anymore; drop the buffer now so a draining
  // shutdown never waits on bytes that have no way out.
  c.out.clear();
  c.out_pos = 0;
}

void ProfilingServer::reap_connections() {
  // The single place dead or fully-drained closing connections are erased:
  // once per tick, with no conns_ iteration active and no Connection
  // reference live on the stack.
  std::vector<std::uint64_t> done;
  for (const auto& [id, conn] : conns_) {
    if (conn->dead || (conn->closing && conn->out_pos >= conn->out.size())) {
      done.push_back(id);
    }
  }
  for (std::uint64_t id : done) drop_connection(id, "dead or flushed");
}

// ---------------------------------------------------------- RPC telemetry

void ProfilingServer::record_rpc(Connection& c, const RpcFinish& fin,
                                 double duration) {
  m_rpc_requests_.inc();
  // Latency keyed by type x outcome: the registry is string-keyed, so the
  // family materializes lazily — only combinations that actually occur
  // show up in /metrics.
  rpc_outcome_histogram(fin.rtype, fin.outcome).record(duration);
  if (fin.queue_seconds > 0) {
    m_rpc_queue_seconds_.record(fin.queue_seconds);
  }
  if (fin.run_seconds > 0) {
    m_rpc_run_seconds_.record(fin.run_seconds);
  }
  if (fin.has_cost) {
    m_rpc_cpu_ns_.inc(std::max<std::int64_t>(fin.cost.cpu_ns, 0));
    m_rpc_validations_.inc(fin.cost.validations);
    m_rpc_partitions_built_.inc(fin.cost.partitions_built);
    m_rpc_bytes_streamed_.inc(fin.cost.bytes_streamed);
    c.total_cost.add(fin.cost);
    if (c.tenant_slot != nullptr) c.tenant_slot->add(fin.cost);
  }
  RpcRecord rec;
  rec.rtype = fin.rtype;
  rec.outcome = fin.outcome;
  rec.tenant = c.client_name;
  rec.trace_id = fin.trace_id;
  rec.request_id = fin.request_id;
  rec.conn_id = c.id;
  rec.end_seconds = now();
  rec.duration_seconds = duration;
  rec.queue_seconds = fin.queue_seconds;
  rec.run_seconds = fin.run_seconds;
  rec.cost = fin.cost;
  // SlowLog copies only entries that beat the current worst-N floor (one
  // double compare for everything else); the tracez ring then takes the
  // record by move so the tenant string is not reallocated.
  slowlog_.record(rec);
  tracez_.record(std::move(rec));
  // The request's server-side envelope span, drawn backwards from "now" so
  // it visually encloses net.queue_wait / net.ops.run / svc.job.run.
  Tracer& tracer = Tracer::Global();
  if (fin.trace_id != 0 && tracer.enabled()) {
    std::int64_t end_us = tracer.now_us();
    std::int64_t start_us = end_us - static_cast<std::int64_t>(duration * 1e6);
    tracer.record_span(kObsNetRpc, fin.trace_id, start_us, end_us,
                       TraceLane(fin.trace_id));
  }
}

Histogram& ProfilingServer::rpc_outcome_histogram(const char* rtype,
                                                  const char* outcome) {
  // Both names come from fixed literal tables (RequestTypeName and the
  // "ok"/"error" outcome strings), so pointer identity is a valid cache
  // key; a miss from a second literal address just re-resolves the same
  // registry slot once. Linear scan: the family tops out around two dozen
  // entries and the hit is almost always near the front.
  for (const auto& [t, o, h] : rpc_hist_cache_) {
    if (t == rtype && o == outcome) return *h;
  }
  std::string name =
      std::string("net.rpc.") + rtype + "." + outcome + "_seconds";
  Histogram& h = metrics_->histogram(name);
  rpc_hist_cache_.emplace_back(rtype, outcome, &h);
  return h;
}

CostLedger* ProfilingServer::tenant_slot(const std::string& tenant) {
  auto it = tenant_costs_.find(tenant);
  if (it == tenant_costs_.end()) {
    // Bounded tenant table: past the cap, cost lands in a shared overflow
    // row instead of letting hostile hello names grow server memory.
    if (tenant_costs_.size() >= 64) {
      return &tenant_costs_["(other)"];
    }
    it = tenant_costs_.emplace(tenant, CostLedger{}).first;
  }
  return &it->second;
}

// --------------------------------------------------- observability endpoint

void ProfilingServer::accept_http() {
  for (;;) {
    Socket sock = AcceptOn(http_listener_);
    if (!sock.valid()) return;
    if (static_cast<int>(http_conns_.size()) >= options_.max_http_connections) {
      metrics_->counter(kObsNetHttpConnsRejected).inc();
      continue;  // accept-then-close, same posture as the RPC listener
    }
    sock.set_nonblocking(true);
    auto hc = std::make_unique<HttpConnection>();
    hc->id = next_http_id_++;
    hc->sock = std::move(sock);
    metrics_->counter(kObsNetHttpConnsAccepted).inc();
    metrics_->gauge(kObsNetHttpConnections).add(1);
    http_conns_.emplace(hc->id, std::move(hc));
  }
}

void ProfilingServer::handle_http_readable(HttpConnection& h) {
  std::uint8_t buf[4096];
  for (;;) {
    IoResult r = h.sock.read_some(buf, sizeof buf);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status == IoStatus::kClosed || r.status == IoStatus::kError) {
      h.dead = true;
      return;
    }
    h.in.append(reinterpret_cast<const char*>(buf), r.bytes);
    if (r.bytes < sizeof buf) break;
  }
  HttpRequest req;
  switch (ParseHttpRequest(h.in, &req, options_.max_http_request_bytes)) {
    case HttpParseStatus::kNeedMore:
      return;
    case HttpParseStatus::kTooLarge:
      metrics_->counter(kObsNetHttpBadRequests).inc();
      respond_http(h, 431, "text/plain; charset=utf-8",
                   "request head too large\n");
      return;
    case HttpParseStatus::kBad:
      metrics_->counter(kObsNetHttpBadRequests).inc();
      respond_http(h, 400, "text/plain; charset=utf-8",
                   "malformed request\n");
      return;
    case HttpParseStatus::kOk:
      break;
  }
  metrics_->counter(kObsNetHttpRequests).inc();
  if (req.method != "GET") {
    respond_http(h, 405, "text/plain; charset=utf-8",
                 "only GET is supported\n");
    return;
  }
  std::string path = req.target.substr(0, req.target.find('?'));
  if (path == "/metrics") {
    metrics_->refresh_process_gauges();
    respond_http(h, 200, "text/plain; version=0.0.4; charset=utf-8",
                 PrometheusText(*metrics_));
  } else if (path == "/healthz") {
    // Drain-aware: flips to 503 the moment shutdown() starts draining, so
    // load balancers stop routing before the listener actually closes.
    if (draining_) {
      respond_http(h, 503, "text/plain; charset=utf-8", "draining\n");
    } else {
      respond_http(h, 200, "text/plain; charset=utf-8", "ok\n");
    }
  } else if (path == "/slowlog") {
    respond_http(h, 200, "application/json", render_slowlog_json());
  } else if (path == "/tracez") {
    respond_http(h, 200, "application/json", render_tracez_json());
  } else {
    respond_http(h, 404, "text/plain; charset=utf-8", "unknown path\n");
  }
}

void ProfilingServer::respond_http(HttpConnection& h, int status,
                                   const std::string& content_type,
                                   const std::string& body) {
  h.out = RenderHttpResponse(status, content_type, body);
  h.out_pos = 0;
  h.responded = true;
  flush_http_writes(h);
}

void ProfilingServer::flush_http_writes(HttpConnection& h) {
  if (h.dead) return;
  while (h.out_pos < h.out.size()) {
    IoResult r = h.sock.write_some(h.out.data() + h.out_pos,
                                   h.out.size() - h.out_pos);
    if (r.status == IoStatus::kOk) {
      h.out_pos += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) return;
    h.dead = true;
    return;
  }
  // Close-after-response: HTTP/1.0, Connection: close. The reaper at the
  // end of the tick erases it.
  if (h.responded) h.dead = true;
}

void ProfilingServer::reap_http_connections() {
  std::vector<std::uint64_t> done;
  for (const auto& [id, hc] : http_conns_) {
    if (hc->dead) done.push_back(id);
  }
  for (std::uint64_t id : done) {
    http_conns_.erase(id);
    metrics_->gauge(kObsNetHttpConnections).add(-1);
  }
}

std::string ProfilingServer::render_slowlog_json() {
  double t = now();
  std::string out =
      "{\"capacity\":" + std::to_string(slowlog_.capacity()) + ",\"slowest\":[";
  bool first = true;
  for (const RpcRecord& rec : slowlog_.worst()) {
    if (!first) out += ",";
    first = false;
    out += RpcRecordJson(rec, t);
  }
  out += "],\"tenants\":{";
  first = true;
  for (const auto& [tenant, cost] : tenant_costs_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(tenant) + "\":" + CostLedgerJson(cost);
  }
  out += "}}";
  return out;
}

std::string ProfilingServer::render_tracez_json() {
  double t = now();
  std::string out = "{\"recent\":[";
  bool first = true;
  for (const RpcRecord& rec : tracez_.recent()) {
    if (!first) out += ",";
    first = false;
    out += RpcRecordJson(rec, t);
  }
  out += "]}";
  return out;
}

void ProfilingServer::drop_connection(std::uint64_t conn_id, const char*) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  metrics_->gauge(kObsNetSubscriptions)
      .add(-static_cast<std::int64_t>(it->second->subs.size()));
  metrics_->counter(kObsNetConnsClosed).inc();
  metrics_->gauge(kObsNetConnections).add(-1);
  conns_.erase(it);
  // Pending jobs for this connection stay in the sweep lists; their answers
  // are dropped when they complete (finish_* finds no connection).
}

}  // namespace dhyfd::net
