#include "net/server.h"

#include <algorithm>
#include <utility>

#include "core/profiler.h"
#include "net/messages.h"
#include "obs/trace.h"
#include "ranking/ranking.h"
#include "relation/csv.h"

namespace dhyfd::net {

namespace {

constexpr int kOpsThreads = 2;

NullSemantics SemanticsFromWire(std::uint8_t v) {
  return v == 0 ? NullSemantics::kNullEqualsNull
                : NullSemantics::kNullNotEqualsNull;
}

std::vector<RankedFdMsg> TopRanked(const std::vector<FdRedundancy>& ranking,
                                   std::uint32_t top_k) {
  std::vector<RankedFdMsg> out;
  std::uint32_t n = std::min<std::uint32_t>(
      top_k, static_cast<std::uint32_t>(ranking.size()));
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back({ranking[i].fd.to_string(),
                   static_cast<double>(RedundancyCount(
                       ranking[i], RedundancyMode::kExcludingNullRhs))});
  }
  return out;
}

std::vector<std::string> FdStrings(const FdSet& fds) {
  std::vector<std::string> out;
  out.reserve(fds.fds.size());
  for (const Fd& fd : fds.fds) out.push_back(fd.to_string());
  return out;
}

}  // namespace

ProfilingServer::ProfilingServer(JobScheduler* scheduler, LiveStore* live,
                                 DatasetRegistry* datasets,
                                 MetricsRegistry* metrics,
                                 ServerOptions options)
    : scheduler_(scheduler),
      live_(live),
      datasets_(datasets),
      metrics_(metrics),
      options_(std::move(options)),
      ops_pool_(kOpsThreads),
      epoch_(std::chrono::steady_clock::now()) {}

ProfilingServer::~ProfilingServer() { shutdown(); }

double ProfilingServer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void ProfilingServer::start() {
  listener_ = ListenTcp(options_.host, options_.port, options_.accept_backlog,
                        &port_);
  listener_.set_nonblocking(true);
  // Cover-change events are produced on LiveStore worker threads; they are
  // queued under mu_ and the loop is woken to fan them out to subscribers.
  {
    MutexLock lock(&shutdown_mu_);
    live_listener_token_ = live_->subscribe([this](const CoverChangeEvent& ev) {
      {
        MutexLock lock(&mu_);
        if (stop_requested_) return;
        events_.push_back(ev);
      }
      wake_.wake();
    });
  }
  loop_thread_ = std::thread([this] { loop(); });
}

void ProfilingServer::shutdown() {
  {
    MutexLock lock(&mu_);
    stop_requested_ = true;
  }
  wake_.wake();
  // Exactly one caller runs the teardown; everyone else blocks on the
  // mutex until it finished, then sees shutdown_done_ and returns. No
  // caller can return while the loop thread is still draining, and the
  // listener token is only touched under the same lock.
  MutexLock teardown(&shutdown_mu_);
  if (shutdown_done_) return;
  shutdown_done_ = true;
  if (loop_thread_.joinable()) loop_thread_.join();
  if (live_listener_token_ != 0) {
    live_->unsubscribe(live_listener_token_);
    live_listener_token_ = 0;
  }
  ops_pool_.shutdown();
}

// ---------------------------------------------------------------- event loop

void ProfilingServer::loop() {
  Poller poller;
  for (;;) {
    // Pick the drain state up first so this tick already refuses new work.
    bool stop;
    {
      MutexLock lock(&mu_);
      stop = stop_requested_;
    }
    if (stop && !draining_) {
      draining_ = true;
      drain_deadline_ = now() + options_.drain_seconds;
      listener_.close();
      for (auto& [id, conn] : conns_) {
        // Subscribers get a terminal frame; everyone then drains and closes.
        std::vector<std::uint64_t> subs;
        for (const auto& [sub_id, sub] : conn->subs) subs.push_back(sub_id);
        for (std::uint64_t sub_id : subs) {
          end_subscription(*conn, sub_id, StreamEndReason::kServerShutdown,
                           "server shutting down");
        }
        conn->closing = true;
      }
    }
    if (draining_ && drain_finished()) break;

    poller.clear();
    if (listener_.valid()) poller.watch(listener_.fd(), true, false);
    poller.watch(wake_.read_fd(), true, false);
    for (const auto& [id, conn] : conns_) {
      if (conn->dead) continue;  // reaped at the end of this tick
      bool want_write = conn->out_pos < conn->out.size();
      poller.watch(conn->sock.fd(), true, want_write);
    }
    // Job/update completion has no callback — the loop sweeps the handles.
    // Tighten the tick while any are pending so responses stay prompt.
    int timeout_ms =
        (!pending_jobs_.empty() || !pending_updates_.empty()) ? 2 : 50;
    if (draining_) timeout_ms = 2;
    std::vector<PollEvent> ready = poller.wait(timeout_ms);

    for (const PollEvent& ev : ready) {
      if (listener_.valid() && ev.fd == listener_.fd()) {
        if (ev.readable) accept_new();
        continue;
      }
      if (ev.fd == wake_.read_fd()) {
        wake_.drain();
        continue;
      }
      // Find the connection (ids are stable; fd reuse cannot alias because
      // a dropped connection leaves conns_ in the same tick).
      Connection* conn = nullptr;
      std::uint64_t conn_id = 0;
      for (auto& [id, c] : conns_) {
        if (c->sock.fd() == ev.fd) {
          conn = c.get();
          conn_id = id;
          break;
        }
      }
      if (conn == nullptr || conn->dead) continue;
      if (ev.error) {
        drop_connection(conn_id, "poll error");
        continue;
      }
      if (ev.readable) handle_readable(*conn);
      // handle_readable may have dropped (read error) or killed (write
      // error) the connection.
      if (conns_.find(conn_id) == conns_.end() || conn->dead) continue;
      if (ev.writable) flush_writes(*conn);
      if (conns_.find(conn_id) == conns_.end() || conn->dead) continue;
      if (conn->closing && conn->out_pos >= conn->out.size()) {
        drop_connection(conn_id, "flushed and closing");
      }
    }

    sweep_pending();
    flush_completions();
    {
      std::vector<CoverChangeEvent> events;
      {
        MutexLock lock(&mu_);
        events.swap(events_);
      }
      if (!events.empty()) deliver_events(std::move(events));
    }
    heartbeat_and_idle();
    reap_connections();
  }

  // Hard stop: anything still open closes now.
  std::vector<std::uint64_t> remaining;
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (std::uint64_t id : remaining) drop_connection(id, "server stopped");
  pending_jobs_.clear();
  pending_updates_.clear();
}

bool ProfilingServer::drain_finished() {
  if (now() >= drain_deadline_) return true;
  if (!pending_jobs_.empty() || !pending_updates_.empty()) return false;
  {
    MutexLock lock(&mu_);
    if (!completions_.empty() || !events_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (conn->out_pos < conn->out.size()) return false;
  }
  return true;
}

void ProfilingServer::accept_new() {
  for (;;) {
    Socket sock = AcceptOn(listener_);
    if (!sock.valid()) return;
    if (static_cast<int>(conns_.size()) >= options_.max_connections ||
        draining_) {
      // Admission control, layer 1: over capacity the connection is closed
      // immediately — the client sees EOF instead of an unbounded queue.
      metrics_->counter("net.conns_rejected").inc();
      continue;
    }
    sock.set_nonblocking(true);
    sock.set_tcp_nodelay(true);
    auto conn = std::make_unique<Connection>(
        options_.max_frame_len, options_.quota_rate, options_.quota_burst,
        options_.max_inflight);
    conn->id = next_conn_id_++;
    conn->sock = std::move(sock);
    conn->last_recv = conn->last_send = now();
    metrics_->counter("net.conns_accepted").inc();
    metrics_->gauge("net.connections").add(1);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void ProfilingServer::handle_readable(Connection& c) {
  std::uint8_t buf[64 * 1024];
  for (;;) {
    IoResult r = c.sock.read_some(buf, sizeof buf);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status == IoStatus::kClosed || r.status == IoStatus::kError) {
      drop_connection(c.id, "peer closed");
      return;
    }
    metrics_->counter("net.bytes_rx").inc(static_cast<std::int64_t>(r.bytes));
    c.decoder.feed(buf, r.bytes);
    c.last_recv = now();
    if (r.bytes < sizeof buf) break;
  }
  Frame frame;
  for (;;) {
    try {
      if (!c.decoder.next(&frame)) break;
    } catch (const WireError&) {
      // Corrupt framing: there is no resynchronization point inside a byte
      // stream, so the only safe answer is to drop the connection.
      metrics_->counter("net.protocol_errors").inc();
      drop_connection(c.id, "protocol error");
      return;
    }
    metrics_->counter("net.frames_rx").inc();
    std::uint64_t conn_id = c.id;
    dispatch(c, frame);
    if (conns_.find(conn_id) == conns_.end()) return;  // dispatch dropped it
    if (c.dead) return;  // a reply hit a reset socket; ignore the rest
  }
}

void ProfilingServer::dispatch(Connection& c, const Frame& frame) {
  TraceSpan span("net.request");
  if (c.closing) return;  // goodbye already seen; ignore the tail
  if (!c.got_hello && frame.type != MsgType::kHello) {
    metrics_->counter("net.protocol_errors").inc();
    drop_connection(c.id, "first frame was not hello");
    return;
  }
  try {
    switch (frame.type) {
      case MsgType::kHello: {
        WireReader r(frame.payload);
        HelloMsg hello = HelloMsg::decode(r);
        if (hello.protocol_version < kMinProtocolVersion ||
            hello.protocol_version > kProtocolVersion) {
          send_error(c, frame.request_id, ErrCode::kUnsupportedVersion,
                     "server speaks protocol versions " +
                         std::to_string(kMinProtocolVersion) + ".." +
                         std::to_string(kProtocolVersion));
          c.closing = true;
          return;
        }
        c.got_hello = true;
        // Negotiate down to the client's version; v2-only requests from a
        // v1 connection get a clean per-request error, not a disconnect.
        c.protocol_version = hello.protocol_version;
        HelloOkMsg ok;
        ok.protocol_version = c.protocol_version;
        ok.max_inflight = options_.max_inflight;
        ok.credit_max = options_.credit_max;
        ok.heartbeat_seconds = options_.heartbeat_seconds;
        send_frame(c, EncodeMsgFrame(MsgType::kHelloOk, frame.request_id, ok));
        return;
      }
      case MsgType::kPing:
        send_frame(c, EncodeEmptyFrame(MsgType::kPong, frame.request_id));
        return;
      case MsgType::kGoodbye:
        c.closing = true;
        return;
      case MsgType::kCredit:
        handle_credit(c, frame);
        return;
      case MsgType::kUnsubscribe:
        handle_unsubscribe(c, frame);
        return;
      default:
        break;
    }

    // Everything below is a real request: quota-charged, and refused
    // outright while draining.
    if (draining_) {
      send_error(c, frame.request_id, ErrCode::kShuttingDown,
                 "server is draining");
      return;
    }
    metrics_->counter("net.requests").inc();
    if (!c.bucket.try_take(now())) {
      metrics_->counter("net.quota_rejects").inc();
      send_error(c, frame.request_id, ErrCode::kQuotaExceeded,
                 "request quota exhausted; slow down");
      return;
    }
    switch (frame.type) {
      case MsgType::kSubmitDiscovery:
        handle_submit_discovery(c, frame);
        return;
      case MsgType::kSubmitQuery:
        handle_submit_query(c, frame);
        return;
      case MsgType::kRegisterDataset:
        handle_register(c, frame);
        return;
      case MsgType::kQueryCover:
        handle_query_cover(c, frame);
        return;
      case MsgType::kApplyUpdate:
        handle_apply_update(c, frame);
        return;
      case MsgType::kSubscribe:
        handle_subscribe(c, frame);
        return;
      default:
        // A known type that is not a client request (server->client codes).
        metrics_->counter("net.protocol_errors").inc();
        drop_connection(c.id, "unexpected message direction");
        return;
    }
  } catch (const WireError&) {
    // The frame header parsed but its payload did not match the schema.
    metrics_->counter("net.protocol_errors").inc();
    drop_connection(c.id, "malformed payload");
  }
}

void ProfilingServer::handle_submit_discovery(Connection& c,
                                              const Frame& frame) {
  WireReader r(frame.payload);
  SubmitDiscoveryMsg msg = SubmitDiscoveryMsg::decode(r);
  if (!c.inflight.try_acquire()) {
    metrics_->counter("net.inflight_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full (" + std::to_string(c.inflight.max()) +
                   ")");
    return;
  }
  ProfileJob job;
  job.dataset = msg.dataset;
  job.options.algorithm = msg.algorithm;
  job.options.semantics = SemanticsFromWire(msg.semantics);
  job.priority = msg.priority;
  // The request deadline becomes the job's cooperative time limit: the
  // discovery loops poll it via util/deadline.h and stop past-due work
  // instead of burning a worker on an answer nobody is waiting for.
  job.time_limit_seconds = msg.deadline_ms / 1000.0;
  JobHandlePtr handle = scheduler_->submit(std::move(job));
  if (handle->rejected()) {
    c.inflight.release();
    metrics_->counter("net.busy_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kServerBusy, handle->error());
    return;
  }
  pending_jobs_.push_back(
      {c.id, frame.request_id, msg.top_k, now(), std::move(handle)});
}

void ProfilingServer::handle_submit_query(Connection& c, const Frame& frame) {
  if (c.protocol_version < kQueryProtocolVersion) {
    send_error(c, frame.request_id, ErrCode::kUnsupportedVersion,
               "submit_query requires protocol version " +
                   std::to_string(kQueryProtocolVersion) +
                   "; this connection negotiated " +
                   std::to_string(c.protocol_version));
    return;
  }
  WireReader r(frame.payload);
  SubmitQueryMsg msg = SubmitQueryMsg::decode(r);
  DiscoveryQuery query;
  query.epsilon = msg.epsilon;
  query.max_lhs = static_cast<int>(
      std::min<std::uint32_t>(msg.max_lhs, 1u << 16));
  query.top_k = msg.top_k;
  query.ranking_mode = static_cast<RedundancyMode>(msg.ranking_mode);
  for (std::uint8_t col : msg.include_columns) {
    query.include_columns.push_back(static_cast<AttrId>(col));
  }
  for (std::uint8_t col : msg.exclude_columns) {
    query.exclude_columns.push_back(static_cast<AttrId>(col));
  }
  // Hostile-but-well-framed specs (epsilon out of [0,1], NaN, absurd arity)
  // decode fine and are rejected here with a per-request error; only
  // malformed bytes cost the connection. Schema-width checks happen when
  // the job runs against the resolved dataset.
  std::string spec_error = DescribeQueryError(query, /*num_cols=*/0);
  if (!spec_error.empty()) {
    send_error(c, frame.request_id, ErrCode::kBadRequest, spec_error);
    return;
  }
  if (!c.inflight.try_acquire()) {
    metrics_->counter("net.inflight_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full (" + std::to_string(c.inflight.max()) +
                   ")");
    return;
  }
  ProfileJob job;
  job.dataset = msg.dataset;
  job.options.semantics = SemanticsFromWire(msg.semantics);
  job.options.query = std::move(query);
  // The full-profile tail stages add nothing to a query answer.
  job.options.compute_canonical = false;
  job.options.compute_ranking = false;
  job.priority = msg.priority;
  job.time_limit_seconds = msg.deadline_ms / 1000.0;
  JobHandlePtr handle = scheduler_->submit(std::move(job));
  if (handle->rejected()) {
    c.inflight.release();
    metrics_->counter("net.busy_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kServerBusy, handle->error());
    return;
  }
  pending_jobs_.push_back({c.id, frame.request_id, msg.top_k, now(),
                           std::move(handle), /*is_query=*/true});
}

void ProfilingServer::handle_register(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  auto msg = std::make_shared<RegisterDatasetMsg>(
      RegisterDatasetMsg::decode(r));
  if (!c.inflight.try_acquire()) {
    metrics_->counter("net.inflight_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full");
    return;
  }
  // CSV parsing and (for live datasets) the synchronous initial discovery
  // are far too slow for the event loop; they run on the ops pool and come
  // back through the completion queue.
  std::uint64_t conn_id = c.id;
  std::uint64_t request_id = frame.request_id;
  double started = now();
  bool submitted = ops_pool_.submit([this, conn_id, request_id, started, msg] {
    std::vector<std::uint8_t> reply;
    try {
      RawTable table = ParseCsvString(msg->csv_text);
      RegisterOkMsg ok;
      ok.rows = static_cast<std::uint32_t>(table.num_rows());
      ok.cols = static_cast<std::uint32_t>(table.num_cols());
      datasets_->add_table(msg->name, table);
      if (msg->live && !live_->contains(msg->name)) {
        LiveDatasetOptions opts;
        opts.semantics = SemanticsFromWire(msg->semantics);
        live_->create(msg->name, std::move(table), opts);
      }
      reply = EncodeMsgFrame(MsgType::kRegisterOk, request_id, ok);
    } catch (const std::exception& e) {
      ErrorMsg err{ErrCode::kBadRequest, e.what()};
      reply = EncodeMsgFrame(MsgType::kError, request_id, err);
    }
    {
      MutexLock lock(&mu_);
      completions_.push_back({conn_id, std::move(reply), started, true});
    }
    wake_.wake();
  });
  if (!submitted) {
    c.inflight.release();
    send_error(c, frame.request_id, ErrCode::kShuttingDown,
               "server is shutting down");
  }
}

void ProfilingServer::handle_query_cover(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  auto msg = std::make_shared<QueryCoverMsg>(QueryCoverMsg::decode(r));
  if (!c.inflight.try_acquire()) {
    metrics_->counter("net.inflight_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full");
    return;
  }
  // The ranking snapshot takes the dataset's profile lock, which a running
  // update batch may hold for a while — off the loop thread it goes.
  std::uint64_t conn_id = c.id;
  std::uint64_t request_id = frame.request_id;
  double started = now();
  bool submitted = ops_pool_.submit([this, conn_id, request_id, started, msg] {
    std::vector<std::uint8_t> reply;
    try {
      if (!live_->contains(msg->dataset)) {
        ErrorMsg err{ErrCode::kUnknownDataset,
                     "no live dataset named '" + msg->dataset + "'"};
        reply = EncodeMsgFrame(MsgType::kError, request_id, err);
      } else {
        std::vector<FdRedundancy> ranking = live_->ranking(msg->dataset);
        CoverResultMsg ok;
        ok.total = static_cast<std::uint32_t>(ranking.size());
        ok.top = TopRanked(
            ranking, msg->top_k == 0
                         ? static_cast<std::uint32_t>(ranking.size())
                         : msg->top_k);
        reply = EncodeMsgFrame(MsgType::kCoverResult, request_id, ok);
      }
    } catch (const std::exception& e) {
      ErrorMsg err{ErrCode::kInternal, e.what()};
      reply = EncodeMsgFrame(MsgType::kError, request_id, err);
    }
    {
      MutexLock lock(&mu_);
      completions_.push_back({conn_id, std::move(reply), started, true});
    }
    wake_.wake();
  });
  if (!submitted) {
    c.inflight.release();
    send_error(c, frame.request_id, ErrCode::kShuttingDown,
               "server is shutting down");
  }
}

void ProfilingServer::handle_apply_update(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  ApplyUpdateMsg msg = ApplyUpdateMsg::decode(r);
  if (!c.inflight.try_acquire()) {
    metrics_->counter("net.inflight_rejects").inc();
    send_error(c, frame.request_id, ErrCode::kTooManyInFlight,
               "in-flight window full");
    return;
  }
  UpdateJob job;
  job.dataset = msg.dataset;
  job.batch.inserts = std::move(msg.inserts);
  job.batch.deletes.assign(msg.deletes.begin(), msg.deletes.end());
  UpdateJobHandlePtr handle = live_->submit(std::move(job));
  pending_updates_.push_back({c.id, frame.request_id, now(), std::move(handle)});
}

void ProfilingServer::handle_subscribe(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  SubscribeMsg msg = SubscribeMsg::decode(r);
  if (!msg.dataset.empty() && !live_->contains(msg.dataset)) {
    send_error(c, frame.request_id, ErrCode::kUnknownDataset,
               "no live dataset named '" + msg.dataset + "'");
    return;
  }
  if (c.subs.count(frame.request_id) != 0) {
    send_error(c, frame.request_id, ErrCode::kBadRequest,
               "subscription id already in use");
    return;
  }
  Subscription sub{msg.dataset,
                   CreditWindow(msg.initial_credits, options_.credit_max,
                                options_.max_buffered_events)};
  SubscribeOkMsg ok;
  ok.granted_credits = sub.window.credits();
  c.subs.emplace(frame.request_id, std::move(sub));
  metrics_->gauge("net.subscriptions").add(1);
  send_frame(c, EncodeMsgFrame(MsgType::kSubscribeOk, frame.request_id, ok));
}

void ProfilingServer::handle_credit(Connection& c, const Frame& frame) {
  WireReader r(frame.payload);
  CreditMsg msg = CreditMsg::decode(r);
  auto it = c.subs.find(frame.request_id);
  // Credits for an already-ended stream are not an error: the StreamEnd
  // may still be in flight toward the client.
  if (it == c.subs.end()) return;
  for (std::vector<std::uint8_t>& buffered :
       it->second.window.grant(msg.credits)) {
    metrics_->counter("net.stream_events").inc();
    send_frame(c, std::move(buffered));
  }
}

void ProfilingServer::handle_unsubscribe(Connection& c, const Frame& frame) {
  end_subscription(c, frame.request_id, StreamEndReason::kUnsubscribed, "");
}

void ProfilingServer::end_subscription(Connection& c, std::uint64_t sub_id,
                                       StreamEndReason reason,
                                       const std::string& detail) {
  auto it = c.subs.find(sub_id);
  if (it == c.subs.end()) return;
  c.subs.erase(it);
  metrics_->gauge("net.subscriptions").add(-1);
  StreamEndMsg end{reason, detail};
  send_frame(c, EncodeMsgFrame(MsgType::kStreamEnd, sub_id, end));
}

void ProfilingServer::sweep_pending() {
  for (std::size_t i = 0; i < pending_jobs_.size();) {
    if (!pending_jobs_[i].handle->finished()) {
      ++i;
      continue;
    }
    PendingJob job = std::move(pending_jobs_[i]);
    pending_jobs_[i] = std::move(pending_jobs_.back());
    pending_jobs_.pop_back();
    finish_job(job);
  }
  for (std::size_t i = 0; i < pending_updates_.size();) {
    if (!pending_updates_[i].handle->finished()) {
      ++i;
      continue;
    }
    PendingUpdate update = std::move(pending_updates_[i]);
    pending_updates_[i] = std::move(pending_updates_.back());
    pending_updates_.pop_back();
    finish_update(update);
  }
}

void ProfilingServer::finish_job(const PendingJob& job) {
  auto it = conns_.find(job.conn_id);
  if (it == conns_.end()) return;  // requester is gone; drop the answer
  Connection& c = *it->second;
  c.inflight.release();
  metrics_->histogram("net.request_seconds").record(now() - job.started);
  JobState state = job.handle->state();
  if (state == JobState::kFailed) {
    std::string error = job.handle->error();
    ErrCode code = error.find("invalid discovery query") != std::string::npos
                       ? ErrCode::kBadRequest
                       : ErrCode::kInternal;
    send_error(c, job.request_id, code, error);
    return;
  }
  if (job.is_query) {
    QueryResultMsg msg;
    msg.state = JobStateName(state);
    msg.queue_seconds = job.handle->queue_seconds();
    msg.run_seconds = job.handle->run_seconds();
    try {
      const ProfileReport& report = job.handle->report();
      if (report.query_result.has_value()) {
        const QueryResult& qr = *report.query_result;
        msg.total = static_cast<std::uint32_t>(qr.fds.size());
        msg.early_terminated = qr.stats.early_terminated;
        msg.timed_out = qr.stats.timed_out;
        msg.validations = static_cast<std::uint64_t>(qr.stats.validations);
        msg.pruned_epsilon = static_cast<std::uint64_t>(qr.stats.pruned_epsilon);
        msg.pruned_arity = static_cast<std::uint64_t>(qr.stats.pruned_arity);
        msg.pruned_bound = static_cast<std::uint64_t>(qr.stats.pruned_bound);
        msg.fds.reserve(qr.fds.size());
        for (const RankedFd& f : qr.fds) {
          msg.fds.push_back(
              {f.fd.to_string(), static_cast<double>(f.score)});
        }
      }
      if (report.cancelled) {
        msg.state = "cancelled";
      } else if (report.discovery.stats.timed_out) {
        msg.state = "deadline_expired";
      }
    } catch (const std::exception&) {
      // Cancelled before it started: no report, counts stay zero.
    }
    send_frame(c, EncodeMsgFrame(MsgType::kQueryResult, job.request_id, msg));
    return;
  }
  DiscoveryResultMsg msg;
  msg.state = JobStateName(state);
  msg.queue_seconds = job.handle->queue_seconds();
  msg.run_seconds = job.handle->run_seconds();
  try {
    const ProfileReport& report = job.handle->report();
    msg.cover_size = static_cast<std::uint32_t>(report.left_reduced.size());
    msg.canonical_size = static_cast<std::uint32_t>(report.canonical.size());
    msg.top = TopRanked(report.ranking, job.top_k);
    // A cancelled or deadline-expired run still finishes with a (partial)
    // report; on the wire that distinction is the state string.
    if (report.cancelled) {
      msg.state = "cancelled";
    } else if (report.discovery.stats.timed_out) {
      msg.state = "deadline_expired";
    }
  } catch (const std::exception&) {
    // Cancelled before it started: no report, counts stay zero.
  }
  send_frame(c, EncodeMsgFrame(MsgType::kDiscoveryResult, job.request_id, msg));
}

void ProfilingServer::finish_update(const PendingUpdate& update) {
  auto it = conns_.find(update.conn_id);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  c.inflight.release();
  metrics_->histogram("net.request_seconds").record(now() - update.started);
  if (update.handle->state() == UpdateJobState::kFailed) {
    std::string error = update.handle->error();
    ErrCode code = error.find("unknown live dataset") != std::string::npos
                       ? ErrCode::kUnknownDataset
                       : ErrCode::kInternal;
    send_error(c, update.request_id, code, error);
    return;
  }
  const CoverDelta& delta = update.handle->delta();
  UpdateOkMsg msg;
  msg.fds_added = static_cast<std::uint32_t>(delta.added.size());
  msg.fds_removed = static_cast<std::uint32_t>(delta.removed.size());
  msg.rebuilt = delta.stats.rebuilt;
  msg.seconds = delta.stats.seconds;
  send_frame(c, EncodeMsgFrame(MsgType::kUpdateOk, update.request_id, msg));
}

void ProfilingServer::deliver_events(std::vector<CoverChangeEvent> events) {
  for (const CoverChangeEvent& ev : events) {
    std::vector<std::string> added = FdStrings(ev.added);
    std::vector<std::string> removed = FdStrings(ev.removed);
    // Collect (conn, sub) pairs first: a slow-consumer verdict drops the
    // connection, which would invalidate iterators mid-walk.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> targets;
    for (const auto& [conn_id, conn] : conns_) {
      for (const auto& [sub_id, sub] : conn->subs) {
        if (sub.dataset.empty() || sub.dataset == ev.dataset) {
          targets.emplace_back(conn_id, sub_id);
        }
      }
    }
    for (const auto& [conn_id, sub_id] : targets) {
      auto cit = conns_.find(conn_id);
      if (cit == conns_.end()) continue;
      Connection& c = *cit->second;
      auto sit = c.subs.find(sub_id);
      if (sit == c.subs.end()) continue;
      CoverUpdateMsg msg;
      msg.dataset = ev.dataset;
      msg.batch_id = ev.batch_id;
      msg.added = added;
      msg.removed = removed;
      // Advisory: the credit count after this event if it ships now; for a
      // buffered event the window is already empty, which is what 0 says.
      msg.credits_left =
          sit->second.window.credits() > 0 ? sit->second.window.credits() - 1 : 0;
      std::vector<std::uint8_t> frame =
          EncodeMsgFrame(MsgType::kCoverUpdate, sub_id, msg);
      // push() only keeps the frame when it buffers, so hand it a copy and
      // ship the original ourselves on kSend.
      switch (sit->second.window.push(frame)) {
        case CreditWindow::Push::kSend:
          metrics_->counter("net.stream_events").inc();
          send_frame(c, std::move(frame));
          break;
        case CreditWindow::Push::kBuffered:
          metrics_->counter("net.stream_buffered").inc();
          break;
        case CreditWindow::Push::kOverflow: {
          // Credit window and buffer both exhausted: the consumer is not
          // keeping up. End its stream and drop the connection so it can
          // never stall the other subscribers.
          metrics_->counter("net.slow_consumer_disconnects").inc();
          end_subscription(c, sub_id, StreamEndReason::kSlowConsumer,
                           "credit window and event buffer exhausted");
          c.closing = true;
          break;
        }
      }
    }
  }
}

void ProfilingServer::flush_completions() {
  std::vector<Completion> completions;
  {
    MutexLock lock(&mu_);
    completions.swap(completions_);
  }
  for (Completion& done : completions) {
    auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) continue;
    Connection& c = *it->second;
    if (done.release_inflight) c.inflight.release();
    if (done.started >= 0) {
      metrics_->histogram("net.request_seconds").record(now() - done.started);
    }
    send_frame(c, std::move(done.frame));
  }
}

void ProfilingServer::heartbeat_and_idle() {
  double t = now();
  std::vector<std::uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    if (options_.idle_timeout_seconds > 0 && !conn->closing &&
        t - conn->last_recv > options_.idle_timeout_seconds) {
      idle.push_back(id);
      continue;
    }
    // Heartbeats keep streaming connections verifiably alive (and NATs
    // open) while the cover happens not to change.
    if (options_.heartbeat_seconds > 0 && !conn->subs.empty() &&
        !conn->closing && t - conn->last_send >= options_.heartbeat_seconds) {
      HeartbeatMsg hb;
      hb.server_time_us = static_cast<std::uint64_t>(t * 1e6);
      metrics_->counter("net.heartbeats").inc();
      send_frame(*conn, EncodeMsgFrame(MsgType::kHeartbeat, 0, hb));
    }
  }
  for (std::uint64_t id : idle) {
    metrics_->counter("net.idle_disconnects").inc();
    drop_connection(id, "idle timeout");
  }
}

void ProfilingServer::send_frame(Connection& c, std::vector<std::uint8_t> frame) {
  if (c.dead) return;  // socket already failed; the frame has no ride home
  metrics_->counter("net.frames_tx").inc();
  metrics_->counter("net.bytes_tx").inc(static_cast<std::int64_t>(frame.size()));
  c.out.insert(c.out.end(), frame.begin(), frame.end());
  c.last_send = now();
  flush_writes(c);
}

void ProfilingServer::send_error(Connection& c, std::uint64_t request_id,
                                 ErrCode code, const std::string& message) {
  ErrorMsg err{code, message};
  send_frame(c, EncodeMsgFrame(MsgType::kError, request_id, err));
}

void ProfilingServer::flush_writes(Connection& c) {
  if (c.dead) return;
  while (c.out_pos < c.out.size()) {
    IoResult r = c.sock.write_some(c.out.data() + c.out_pos,
                                   c.out.size() - c.out_pos);
    if (r.status == IoStatus::kOk) {
      c.out_pos += r.bytes;
      continue;
    }
    if (r.status == IoStatus::kWouldBlock) break;
    // A peer reset mid-send (ECONNRESET/EPIPE) must NOT erase the
    // Connection here: writes happen deep inside dispatch, the heartbeat
    // sweep, and event fan-out, all of which still hold the reference or
    // are range-iterating conns_. Mark it; reap_connections() erases it at
    // the safe point at the end of the tick.
    mark_dead(c);
    return;
  }
  if (c.out_pos == c.out.size()) {
    c.out.clear();
    c.out_pos = 0;
    return;
  }
  if (c.out.size() - c.out_pos > options_.max_write_buffer_bytes) {
    // TCP-level slow consumer: the peer stopped reading. Same verdict as a
    // credit overflow — kill it before the buffer eats the server.
    metrics_->counter("net.slow_consumer_disconnects").inc();
    mark_dead(c);
  }
}

void ProfilingServer::mark_dead(Connection& c) {
  if (c.dead) return;
  c.dead = true;
  c.closing = true;
  // Nothing can be written anymore; drop the buffer now so a draining
  // shutdown never waits on bytes that have no way out.
  c.out.clear();
  c.out_pos = 0;
}

void ProfilingServer::reap_connections() {
  // The single place dead or fully-drained closing connections are erased:
  // once per tick, with no conns_ iteration active and no Connection
  // reference live on the stack.
  std::vector<std::uint64_t> done;
  for (const auto& [id, conn] : conns_) {
    if (conn->dead || (conn->closing && conn->out_pos >= conn->out.size())) {
      done.push_back(id);
    }
  }
  for (std::uint64_t id : done) drop_connection(id, "dead or flushed");
}

void ProfilingServer::drop_connection(std::uint64_t conn_id, const char*) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  metrics_->gauge("net.subscriptions")
      .add(-static_cast<std::int64_t>(it->second->subs.size()));
  metrics_->counter("net.conns_closed").inc();
  metrics_->gauge("net.connections").add(-1);
  conns_.erase(it);
  // Pending jobs for this connection stay in the sweep lists; their answers
  // are dropped when they complete (finish_* finds no connection).
}

}  // namespace dhyfd::net
