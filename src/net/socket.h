#ifndef DHYFD_NET_SOCKET_H_
#define DHYFD_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dhyfd::net {

/// Thin RAII + error-mapping layer over POSIX sockets. This file and
/// socket.cc are the only places in the tree allowed to touch socket
/// syscalls (tools/check_invariants.py `naked-socket` rule): everything
/// above it speaks in Socket/Poller terms, so the fd lifecycle and the
/// EINTR/EAGAIN/SIGPIPE edge cases are handled exactly once.

/// Result of a non-blocking read/write attempt.
enum class IoStatus {
  kOk,         // >= 1 byte moved
  kWouldBlock, // EAGAIN/EWOULDBLOCK: retry after the next poll wakeup
  kClosed,     // orderly EOF (read) — the peer is gone
  kError,      // anything else; the connection should be dropped
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// Owns one socket (or pipe) file descriptor; closes it on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();
  /// Releases ownership without closing.
  int release();

  void set_nonblocking(bool on);
  /// Disables Nagle batching; RPC frames are latency-sensitive.
  void set_tcp_nodelay(bool on);

  /// Non-blocking single read/write attempt. write_some never raises
  /// SIGPIPE (MSG_NOSIGNAL); a broken pipe surfaces as kError.
  IoResult read_some(std::uint8_t* buf, std::size_t len);
  IoResult write_some(const std::uint8_t* buf, std::size_t len);

  /// Blocking helpers for the synchronous client: move exactly `len` bytes
  /// or fail. read_exact returns false on orderly EOF before any byte;
  /// throws std::runtime_error on errors / EOF mid-message.
  bool read_exact(std::uint8_t* buf, std::size_t len);
  void write_all(const std::uint8_t* buf, std::size_t len);
  void write_all(const std::vector<std::uint8_t>& buf) {
    write_all(buf.data(), buf.size());
  }

  /// SO_RCVTIMEO in seconds (0 disables); makes read_exact fail with
  /// "timed out" instead of blocking forever.
  void set_recv_timeout(double seconds);

 private:
  int fd_ = -1;
};

/// Binds and listens on host:port (port 0 = ephemeral). Returns the
/// listening socket and stores the actually-bound port in *bound_port.
/// Throws std::runtime_error on failure.
Socket ListenTcp(const std::string& host, std::uint16_t port,
                 int backlog, std::uint16_t* bound_port);

/// Accepts one pending connection; invalid Socket if none is pending.
Socket AcceptOn(Socket& listener);

/// Blocking connect to host:port. Throws std::runtime_error on failure.
Socket ConnectTcp(const std::string& host, std::uint16_t port);

/// Self-pipe used to wake a poll loop from other threads. wake() is safe
/// from any thread and async-signal-safe; drain() runs on the loop thread.
class WakePipe {
 public:
  WakePipe();

  int read_fd() const { return read_end_.fd(); }
  void wake();
  void drain();

 private:
  Socket read_end_;
  Socket write_end_;
};

/// What a Poller reports for one registered fd.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  bool error = false;  // POLLERR / POLLHUP / POLLNVAL
};

/// Level-triggered poll(2) wrapper: rebuild the interest list each tick
/// (connection counts are hundreds, not millions — O(n) rebuild is in the
/// noise next to frame handling) and collect ready fds.
class Poller {
 public:
  void clear() { fds_.clear(); }
  void watch(int fd, bool want_read, bool want_write);

  /// Polls with a timeout in milliseconds (-1 = infinite). Returns the
  /// ready events; EINTR yields an empty result rather than an error.
  std::vector<PollEvent> wait(int timeout_ms);

 private:
  struct Interest {
    int fd;
    bool read;
    bool write;
  };
  std::vector<Interest> fds_;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_SOCKET_H_
