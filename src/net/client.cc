#include "net/client.h"

#include <cstring>
#include <optional>
#include <utility>

#include "obs/obs_schema.gen.h"
#include "obs/trace.h"

namespace dhyfd::net {

namespace {

/// Per-RPC client-side trace context. When the global tracer is enabled the
/// call runs under a trace id (the caller's, or a fresh one) and records a
/// "net.client.call" span — the root of the request's causal tree, which
/// the server-side spans join once the id crosses the wire.
class CallTrace {
 public:
  CallTrace() {
    Tracer& tracer = Tracer::Global();
    std::uint64_t current = CurrentTraceId();
    if (current != 0) {
      // An explicit TraceIdScope marks this call for end-to-end attribution
      // even when span recording is off: the envelope still crosses the
      // wire, so the server charges CPU and returns a cost trailer.
      trace_id_ = current;
    } else if (tracer.enabled()) {
      trace_id_ = tracer.next_trace_id();
      scope_.emplace(trace_id_);
    } else {
      return;  // untraced: bare frame, no envelope, no trailer
    }
    if (tracer.enabled()) span_.emplace(kObsNetClientCall);
  }

  std::uint64_t trace_id() const { return trace_id_; }

 private:
  std::uint64_t trace_id_ = 0;
  std::optional<TraceIdScope> scope_;
  std::optional<TraceSpan> span_;
};

/// Decodes one subscription-side frame. Exhaustive over MsgType so adding a
/// stream frame type forces a decode path here; the callers have already
/// checked is_stream_type, so the non-stream arms mean a logic bug, not a
/// peer protocol violation — and unlike the old `default: heartbeat` shape
/// they can never silently misread a future frame type as a keepalive.
StreamEvent DecodeStreamEvent(const Frame& frame) {
  StreamEvent ev;
  WireReader r(frame.payload);
  switch (frame.type) {
    case MsgType::kCoverUpdate:
      ev.kind = StreamEvent::Kind::kCoverUpdate;
      ev.sub_id = frame.request_id;
      ev.update = CoverUpdateMsg::decode(r);
      break;
    case MsgType::kStreamEnd:
      ev.kind = StreamEvent::Kind::kStreamEnd;
      ev.sub_id = frame.request_id;
      ev.end = StreamEndMsg::decode(r);
      break;
    case MsgType::kHeartbeat:
      ev.kind = StreamEvent::Kind::kHeartbeat;
      ev.heartbeat = HeartbeatMsg::decode(r);
      break;
    case MsgType::kHello:
    case MsgType::kRegisterDataset:
    case MsgType::kSubmitDiscovery:
    case MsgType::kQueryCover:
    case MsgType::kApplyUpdate:
    case MsgType::kSubscribe:
    case MsgType::kCredit:
    case MsgType::kUnsubscribe:
    case MsgType::kPing:
    case MsgType::kGoodbye:
    case MsgType::kSubmitQuery:
    case MsgType::kTracedRequest:
    case MsgType::kHelloOk:
    case MsgType::kError:
    case MsgType::kRegisterOk:
    case MsgType::kDiscoveryResult:
    case MsgType::kCoverResult:
    case MsgType::kUpdateOk:
    case MsgType::kSubscribeOk:
    case MsgType::kPong:
    case MsgType::kQueryResult:
    case MsgType::kCostTrailer:
      throw std::runtime_error("DecodeStreamEvent on non-stream frame");
  }
  return ev;
}

}  // namespace

template <typename Msg>
void BlockingClient::send_request(MsgType type, std::uint64_t request_id,
                                  const Msg& msg, std::uint64_t trace_id) {
  WireWriter w;
  msg.encode(w);
  send_payload(type, request_id, w.bytes(), trace_id);
}

void BlockingClient::send_payload(MsgType type, std::uint64_t request_id,
                                  const std::vector<std::uint8_t>& payload,
                                  std::uint64_t trace_id) {
  if (limits_.protocol_version >= kTraceProtocolVersion && trace_id != 0) {
    // Stamp the request: the envelope adds 17 bytes (trace id, span id,
    // inner type) and the server adopts the ids for all its spans.
    TraceContext ctx;
    ctx.trace_id = trace_id;
    ctx.span_id = Tracer::Global().next_trace_id();
    sock_.write_all(EncodeTracedFrame(type, request_id, payload, ctx));
    return;
  }
  sock_.write_all(EncodeFrame(type, request_id, payload));
}

void BlockingClient::read_cost_trailer(std::uint64_t request_id,
                                       std::uint64_t trace_id) {
  // Trailers pair with trace envelopes: the server only appends one when
  // the request arrived wrapped, so an untraced call must not wait for it
  // (and pays no extra reads on the fast path).
  if (trace_id == 0) return;
  if (limits_.protocol_version < kTraceProtocolVersion) return;
  Frame trailer = wait_response(request_id, MsgType::kCostTrailer);
  WireReader r(trailer.payload);
  last_cost_ = CostTrailerMsg::decode(r);
  has_last_cost_ = true;
}

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port,
                               const std::string& client_name,
                               double timeout_seconds,
                               std::uint32_t protocol_version)
    : timeout_seconds_(timeout_seconds) {
  sock_ = ConnectTcp(host, port);
  sock_.set_tcp_nodelay(true);
  sock_.set_recv_timeout(timeout_seconds);
  HelloMsg hello;
  hello.protocol_version = protocol_version;
  hello.client_name = client_name;
  std::uint64_t id = next_request_id();
  sock_.write_all(EncodeMsgFrame(MsgType::kHello, id, hello));
  Frame reply = wait_response(id, MsgType::kHelloOk);
  WireReader r(reply.payload);
  limits_ = HelloOkMsg::decode(r);
}

RegisterOkMsg BlockingClient::register_dataset(const std::string& name,
                                               const std::string& csv_text,
                                               bool live,
                                               std::uint8_t semantics) {
  RegisterDatasetMsg msg;
  msg.name = name;
  msg.csv_text = csv_text;
  msg.live = live;
  msg.semantics = semantics;
  CallTrace trace;
  std::uint64_t id = next_request_id();
  send_request(MsgType::kRegisterDataset, id, msg, trace.trace_id());
  Frame reply = wait_response(id, MsgType::kRegisterOk);
  read_cost_trailer(id, trace.trace_id());
  WireReader r(reply.payload);
  return RegisterOkMsg::decode(r);
}

DiscoveryResultMsg BlockingClient::submit_discovery(
    const SubmitDiscoveryMsg& request) {
  CallTrace trace;
  std::uint64_t id = next_request_id();
  // Encoded against the negotiated version: a v<=3 server gets the
  // pre-parallelism schema (and the parallelism request is simply dropped).
  WireWriter w;
  request.encode(w, limits_.protocol_version);
  send_payload(MsgType::kSubmitDiscovery, id, w.bytes(), trace.trace_id());
  Frame reply = wait_response(id, MsgType::kDiscoveryResult);
  read_cost_trailer(id, trace.trace_id());
  WireReader r(reply.payload);
  return DiscoveryResultMsg::decode(r);
}

QueryResultMsg BlockingClient::submit_query(const SubmitQueryMsg& request) {
  CallTrace trace;
  std::uint64_t id = next_request_id();
  WireWriter w;
  request.encode(w, limits_.protocol_version);
  send_payload(MsgType::kSubmitQuery, id, w.bytes(), trace.trace_id());
  Frame reply = wait_response(id, MsgType::kQueryResult);
  read_cost_trailer(id, trace.trace_id());
  WireReader r(reply.payload);
  return QueryResultMsg::decode(r);
}

CoverResultMsg BlockingClient::query_cover(const std::string& dataset,
                                           std::uint32_t top_k) {
  QueryCoverMsg msg;
  msg.dataset = dataset;
  msg.top_k = top_k;
  CallTrace trace;
  std::uint64_t id = next_request_id();
  send_request(MsgType::kQueryCover, id, msg, trace.trace_id());
  Frame reply = wait_response(id, MsgType::kCoverResult);
  read_cost_trailer(id, trace.trace_id());
  WireReader r(reply.payload);
  return CoverResultMsg::decode(r);
}

UpdateOkMsg BlockingClient::apply_update(const ApplyUpdateMsg& request) {
  CallTrace trace;
  std::uint64_t id = next_request_id();
  send_request(MsgType::kApplyUpdate, id, request, trace.trace_id());
  Frame reply = wait_response(id, MsgType::kUpdateOk);
  read_cost_trailer(id, trace.trace_id());
  WireReader r(reply.payload);
  return UpdateOkMsg::decode(r);
}

void BlockingClient::ping() {
  std::uint64_t id = next_request_id();
  sock_.write_all(EncodeEmptyFrame(MsgType::kPing, id));
  wait_response(id, MsgType::kPong);
}

void BlockingClient::goodbye() {
  if (!sock_.valid()) return;
  sock_.write_all(EncodeEmptyFrame(MsgType::kGoodbye, next_request_id()));
  sock_.close();
}

std::uint64_t BlockingClient::subscribe(const std::string& dataset,
                                        std::uint32_t initial_credits,
                                        std::uint32_t* granted) {
  SubscribeMsg msg;
  msg.dataset = dataset;
  msg.initial_credits = initial_credits;
  // The subscribe request id doubles as the subscription id: every
  // kCoverUpdate / kStreamEnd for this stream carries it.
  std::uint64_t id = next_request_id();
  sock_.write_all(EncodeMsgFrame(MsgType::kSubscribe, id, msg));
  Frame reply = wait_response(id, MsgType::kSubscribeOk);
  WireReader r(reply.payload);
  SubscribeOkMsg ok = SubscribeOkMsg::decode(r);
  if (granted != nullptr) *granted = ok.granted_credits;
  return id;
}

void BlockingClient::grant_credits(std::uint64_t sub_id,
                                   std::uint32_t credits) {
  CreditMsg msg;
  msg.credits = credits;
  sock_.write_all(EncodeMsgFrame(MsgType::kCredit, sub_id, msg));
}

void BlockingClient::unsubscribe(std::uint64_t sub_id) {
  sock_.write_all(EncodeEmptyFrame(MsgType::kUnsubscribe, sub_id));
}

bool BlockingClient::poll_event(StreamEvent* out, double timeout_seconds) {
  if (!events_.empty()) {
    *out = std::move(events_.front());
    events_.pop_front();
    return true;
  }
  // One bounded read: SO_RCVTIMEO turns "nothing arrived" into a timeout
  // error from read_exact, which poll_event reports as false. The narrowed
  // timeout is restored on every exit path — success, timeout, or throw —
  // so later blocking RPCs keep the constructor-configured bound. A zero
  // SO_RCVTIMEO would mean "block forever", the opposite of a 0-second
  // poll, hence the 1ms floor.
  struct RestoreRecvTimeout {
    Socket* sock;
    double seconds;
    ~RestoreRecvTimeout() {
      try {
        if (sock->valid()) sock->set_recv_timeout(seconds);
      } catch (...) {
        // Unwinding already; the socket is unusable anyway.
      }
    }
  } restore{&sock_, timeout_seconds_};
  sock_.set_recv_timeout(timeout_seconds < 0.001 ? 0.001 : timeout_seconds);
  Frame frame;
  bool got;
  try {
    got = read_one(&frame);
  } catch (const std::runtime_error& e) {
    if (std::string(e.what()).find("timed out") != std::string::npos) {
      return false;
    }
    throw;
  }
  if (!got) throw std::runtime_error("connection closed by server");
  if (!is_stream_type(frame.type)) {
    throw std::runtime_error("unexpected non-stream frame while polling");
  }
  *out = DecodeStreamEvent(frame);
  return true;
}

void BlockingClient::send_bytes(const void* data, std::size_t len) {
  sock_.write_all(static_cast<const std::uint8_t*>(data), len);
}

void BlockingClient::send_frame(MsgType type, std::uint64_t request_id,
                                const std::vector<std::uint8_t>& payload) {
  sock_.write_all(EncodeFrame(type, request_id, payload));
}

bool BlockingClient::read_frame(Frame* out) { return read_one(out); }

bool BlockingClient::read_one(Frame* out) {
  std::uint8_t len_bytes[kLengthPrefixBytes];
  if (!sock_.read_exact(len_bytes, sizeof len_bytes)) return false;
  std::uint32_t len = static_cast<std::uint32_t>(len_bytes[0]) |
                      static_cast<std::uint32_t>(len_bytes[1]) << 8 |
                      static_cast<std::uint32_t>(len_bytes[2]) << 16 |
                      static_cast<std::uint32_t>(len_bytes[3]) << 24;
  if (len < kFrameHeaderBytes || len > kDefaultMaxFrameLen) {
    throw std::runtime_error("invalid frame length from server");
  }
  std::vector<std::uint8_t> body(len);
  if (!sock_.read_exact(body.data(), body.size())) {
    throw std::runtime_error("connection closed mid-frame");
  }
  out->type = static_cast<MsgType>(body[0]);
  if (!IsKnownMsgType(body[0])) {
    throw std::runtime_error("unknown message type from server");
  }
  std::uint64_t id = 0;
  for (int i = 0; i < 8; ++i) {
    id |= static_cast<std::uint64_t>(body[1 + i]) << (8 * i);
  }
  out->request_id = id;
  out->payload.assign(body.begin() + kFrameHeaderBytes, body.end());
  return true;
}

Frame BlockingClient::wait_response(std::uint64_t request_id,
                                    MsgType expected) {
  Frame frame;
  for (;;) {
    if (!read_one(&frame)) {
      sock_.close();
      throw std::runtime_error("connection closed by server");
    }
    if (is_stream_type(frame.type)) {
      // Subscription traffic interleaves freely with responses; stash it
      // for poll_event() instead of dropping it on the floor.
      events_.push_back(DecodeStreamEvent(frame));
      continue;
    }
    if (frame.request_id != request_id) {
      // A response to someone else's id on a single-threaded client is a
      // server bug or a protocol violation; either way, bail out.
      throw std::runtime_error("response for unexpected request id");
    }
    if (frame.type == MsgType::kError) {
      WireReader r(frame.payload);
      ErrorMsg err = ErrorMsg::decode(r);
      throw RpcError(err.code, err.message);
    }
    if (frame.type != expected) {
      throw std::runtime_error("unexpected response type");
    }
    return frame;
  }
}

}  // namespace dhyfd::net
