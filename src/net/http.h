#ifndef DHYFD_NET_HTTP_H_
#define DHYFD_NET_HTTP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dhyfd::net {

/// Minimal HTTP/1.0 request/response handling for the embedded
/// observability endpoint. This is deliberately not a web server: requests
/// are GET-only, bodies are ignored, headers are bounded and skipped, and
/// every response closes the connection. All HTTP parsing in the repo lives
/// here (tools/check_invariants.py forbids it elsewhere), so the accepted
/// grammar stays auditable in one file.

/// One parsed request line. Headers are deliberately dropped: no route
/// reads them, so retaining them would only grow the attack surface.
struct HttpRequest {
  std::string method;   // e.g. "GET"
  std::string target;   // e.g. "/metrics"
  std::string version;  // e.g. "HTTP/1.0"
};

enum class HttpParseStatus {
  kNeedMore,  // terminator not seen yet; keep reading
  kOk,        // *out is valid
  kBad,       // malformed request line -> 400, drop after responding
  kTooLarge,  // no terminator within the byte cap -> 431, drop
};

/// Incremental parse over the bytes buffered so far. The request is complete
/// once the blank line ending the header block ("\r\n\r\n", or the tolerant
/// bare "\n\n") is present. A buffer that exceeds `max_bytes` without a
/// terminator is rejected as kTooLarge; a complete head whose request line
/// is not `METHOD SP TARGET SP HTTP/x.y` is kBad.
HttpParseStatus ParseHttpRequest(const std::string& buffered, HttpRequest* out,
                                 std::size_t max_bytes);

/// Serializes a complete HTTP/1.0 response with Content-Length and
/// Connection: close. `reason` defaults from the status code when null.
std::vector<std::uint8_t> RenderHttpResponse(int status,
                                             const std::string& content_type,
                                             const std::string& body);

const char* HttpStatusReason(int status);

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string JsonEscape(const std::string& s);

}  // namespace dhyfd::net

#endif  // DHYFD_NET_HTTP_H_
