#include "net/messages.h"

namespace dhyfd::net {

namespace {

/// Guards a decoded element count against the bytes actually present:
/// every element needs at least `min_bytes` more payload, so a count that
/// could not possibly fit is rejected before any allocation happens.
void CheckCount(const WireReader& r, std::uint32_t count,
                std::size_t min_bytes) {
  if (std::uint64_t{count} * min_bytes > r.remaining()) {
    throw WireError("element count " + std::to_string(count) +
                    " cannot fit in remaining payload " +
                    std::to_string(r.remaining()));
  }
}

void EncodeRankedFds(WireWriter& w, const std::vector<RankedFdMsg>& fds) {
  w.u32(static_cast<std::uint32_t>(fds.size()));
  for (const RankedFdMsg& f : fds) {
    w.str(f.fd);
    w.f64(f.redundancy);
  }
}

std::vector<RankedFdMsg> DecodeRankedFds(WireReader& r) {
  std::uint32_t n = r.u32();
  CheckCount(r, n, 12);  // 4-byte string length + 8-byte redundancy
  std::vector<RankedFdMsg> fds;
  fds.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    RankedFdMsg f;
    f.fd = r.str();
    f.redundancy = r.f64();
    fds.push_back(std::move(f));
  }
  return fds;
}

}  // namespace

void HelloMsg::encode(WireWriter& w) const {
  w.u32(protocol_version);
  w.str(client_name);
}

HelloMsg HelloMsg::decode(WireReader& r) {
  HelloMsg m;
  m.protocol_version = r.u32();
  m.client_name = r.str();
  r.expect_done();
  return m;
}

void HelloOkMsg::encode(WireWriter& w) const {
  w.u32(protocol_version);
  w.u32(max_inflight);
  w.u32(credit_max);
  w.f64(heartbeat_seconds);
}

HelloOkMsg HelloOkMsg::decode(WireReader& r) {
  HelloOkMsg m;
  m.protocol_version = r.u32();
  m.max_inflight = r.u32();
  m.credit_max = r.u32();
  m.heartbeat_seconds = r.f64();
  r.expect_done();
  return m;
}

void ErrorMsg::encode(WireWriter& w) const {
  w.u16(static_cast<std::uint16_t>(code));
  w.str(message);
}

ErrorMsg ErrorMsg::decode(WireReader& r) {
  ErrorMsg m;
  m.code = static_cast<ErrCode>(r.u16());
  m.message = r.str();
  r.expect_done();
  return m;
}

void RegisterDatasetMsg::encode(WireWriter& w) const {
  w.str(name);
  w.str(csv_text);
  w.u8(live ? 1 : 0);
  w.u8(semantics);
}

RegisterDatasetMsg RegisterDatasetMsg::decode(WireReader& r) {
  RegisterDatasetMsg m;
  m.name = r.str();
  m.csv_text = r.str();
  m.live = r.u8() != 0;
  m.semantics = r.u8();
  r.expect_done();
  return m;
}

void RegisterOkMsg::encode(WireWriter& w) const {
  w.u32(rows);
  w.u32(cols);
}

RegisterOkMsg RegisterOkMsg::decode(WireReader& r) {
  RegisterOkMsg m;
  m.rows = r.u32();
  m.cols = r.u32();
  r.expect_done();
  return m;
}

void SubmitDiscoveryMsg::encode(WireWriter& w, std::uint32_t version) const {
  w.str(dataset);
  w.str(algorithm);
  w.u8(semantics);
  w.u32(static_cast<std::uint32_t>(priority));
  w.u32(deadline_ms);
  w.u32(top_k);
  if (version >= kParallelProtocolVersion) w.u32(parallelism);
}

SubmitDiscoveryMsg SubmitDiscoveryMsg::decode(WireReader& r,
                                              std::uint32_t version) {
  SubmitDiscoveryMsg m;
  m.dataset = r.str();
  m.algorithm = r.str();
  m.semantics = r.u8();
  m.priority = static_cast<std::int32_t>(r.u32());
  m.deadline_ms = r.u32();
  m.top_k = r.u32();
  // The field is read per negotiated version, not by sniffing remaining
  // bytes, so a truncated v4 payload still fails expect_done() instead of
  // silently decoding as a v3 one.
  if (version >= kParallelProtocolVersion) m.parallelism = r.u32();
  r.expect_done();
  return m;
}

void DiscoveryResultMsg::encode(WireWriter& w) const {
  w.str(state);
  w.u32(cover_size);
  w.u32(canonical_size);
  w.f64(queue_seconds);
  w.f64(run_seconds);
  EncodeRankedFds(w, top);
}

DiscoveryResultMsg DiscoveryResultMsg::decode(WireReader& r) {
  DiscoveryResultMsg m;
  m.state = r.str();
  m.cover_size = r.u32();
  m.canonical_size = r.u32();
  m.queue_seconds = r.f64();
  m.run_seconds = r.f64();
  m.top = DecodeRankedFds(r);
  r.expect_done();
  return m;
}

void SubmitQueryMsg::encode(WireWriter& w, std::uint32_t version) const {
  w.str(dataset);
  w.u8(semantics);
  w.u32(static_cast<std::uint32_t>(priority));
  w.u32(deadline_ms);
  w.f64(epsilon);
  w.u32(max_lhs);
  w.u32(top_k);
  w.u8(ranking_mode);
  w.u32(static_cast<std::uint32_t>(include_columns.size()));
  for (std::uint8_t c : include_columns) w.u8(c);
  w.u32(static_cast<std::uint32_t>(exclude_columns.size()));
  for (std::uint8_t c : exclude_columns) w.u8(c);
  if (version >= kParallelProtocolVersion) w.u32(parallelism);
}

SubmitQueryMsg SubmitQueryMsg::decode(WireReader& r, std::uint32_t version) {
  SubmitQueryMsg m;
  m.dataset = r.str();
  m.semantics = r.u8();
  m.priority = static_cast<std::int32_t>(r.u32());
  m.deadline_ms = r.u32();
  m.epsilon = r.f64();
  m.max_lhs = r.u32();
  m.top_k = r.u32();
  m.ranking_mode = r.u8();
  std::uint32_t ni = r.u32();
  CheckCount(r, ni, 1);
  m.include_columns.reserve(ni);
  for (std::uint32_t i = 0; i < ni; ++i) m.include_columns.push_back(r.u8());
  std::uint32_t ne = r.u32();
  CheckCount(r, ne, 1);
  m.exclude_columns.reserve(ne);
  for (std::uint32_t i = 0; i < ne; ++i) m.exclude_columns.push_back(r.u8());
  if (version >= kParallelProtocolVersion) m.parallelism = r.u32();
  r.expect_done();
  return m;
}

void QueryResultMsg::encode(WireWriter& w) const {
  w.str(state);
  w.u32(total);
  w.u8(early_terminated ? 1 : 0);
  w.u8(timed_out ? 1 : 0);
  w.u64(validations);
  w.u64(pruned_epsilon);
  w.u64(pruned_arity);
  w.u64(pruned_bound);
  w.f64(queue_seconds);
  w.f64(run_seconds);
  EncodeRankedFds(w, fds);
}

QueryResultMsg QueryResultMsg::decode(WireReader& r) {
  QueryResultMsg m;
  m.state = r.str();
  m.total = r.u32();
  m.early_terminated = r.u8() != 0;
  m.timed_out = r.u8() != 0;
  m.validations = r.u64();
  m.pruned_epsilon = r.u64();
  m.pruned_arity = r.u64();
  m.pruned_bound = r.u64();
  m.queue_seconds = r.f64();
  m.run_seconds = r.f64();
  m.fds = DecodeRankedFds(r);
  r.expect_done();
  return m;
}

void QueryCoverMsg::encode(WireWriter& w) const {
  w.str(dataset);
  w.u32(top_k);
}

QueryCoverMsg QueryCoverMsg::decode(WireReader& r) {
  QueryCoverMsg m;
  m.dataset = r.str();
  m.top_k = r.u32();
  r.expect_done();
  return m;
}

void CoverResultMsg::encode(WireWriter& w) const {
  w.u32(total);
  EncodeRankedFds(w, top);
}

CoverResultMsg CoverResultMsg::decode(WireReader& r) {
  CoverResultMsg m;
  m.total = r.u32();
  m.top = DecodeRankedFds(r);
  r.expect_done();
  return m;
}

void ApplyUpdateMsg::encode(WireWriter& w) const {
  w.str(dataset);
  w.u32(static_cast<std::uint32_t>(inserts.size()));
  for (const std::vector<std::string>& row : inserts) {
    w.u32(static_cast<std::uint32_t>(row.size()));
    for (const std::string& cell : row) w.str(cell);
  }
  w.u32(static_cast<std::uint32_t>(deletes.size()));
  for (std::int64_t id : deletes) w.i64(id);
}

ApplyUpdateMsg ApplyUpdateMsg::decode(WireReader& r) {
  ApplyUpdateMsg m;
  m.dataset = r.str();
  std::uint32_t rows = r.u32();
  CheckCount(r, rows, 4);
  m.inserts.reserve(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    std::uint32_t cells = r.u32();
    CheckCount(r, cells, 4);
    std::vector<std::string> row;
    row.reserve(cells);
    for (std::uint32_t c = 0; c < cells; ++c) row.push_back(r.str());
    m.inserts.push_back(std::move(row));
  }
  std::uint32_t dels = r.u32();
  CheckCount(r, dels, 8);
  m.deletes.reserve(dels);
  for (std::uint32_t i = 0; i < dels; ++i) m.deletes.push_back(r.i64());
  r.expect_done();
  return m;
}

void UpdateOkMsg::encode(WireWriter& w) const {
  w.u32(fds_added);
  w.u32(fds_removed);
  w.u8(rebuilt ? 1 : 0);
  w.f64(seconds);
}

UpdateOkMsg UpdateOkMsg::decode(WireReader& r) {
  UpdateOkMsg m;
  m.fds_added = r.u32();
  m.fds_removed = r.u32();
  m.rebuilt = r.u8() != 0;
  m.seconds = r.f64();
  r.expect_done();
  return m;
}

void SubscribeMsg::encode(WireWriter& w) const {
  w.str(dataset);
  w.u32(initial_credits);
}

SubscribeMsg SubscribeMsg::decode(WireReader& r) {
  SubscribeMsg m;
  m.dataset = r.str();
  m.initial_credits = r.u32();
  r.expect_done();
  return m;
}

void SubscribeOkMsg::encode(WireWriter& w) const { w.u32(granted_credits); }

SubscribeOkMsg SubscribeOkMsg::decode(WireReader& r) {
  SubscribeOkMsg m;
  m.granted_credits = r.u32();
  r.expect_done();
  return m;
}

void CreditMsg::encode(WireWriter& w) const { w.u32(credits); }

CreditMsg CreditMsg::decode(WireReader& r) {
  CreditMsg m;
  m.credits = r.u32();
  r.expect_done();
  return m;
}

void CoverUpdateMsg::encode(WireWriter& w) const {
  w.str(dataset);
  w.u64(batch_id);
  w.u32(static_cast<std::uint32_t>(added.size()));
  for (const std::string& fd : added) w.str(fd);
  w.u32(static_cast<std::uint32_t>(removed.size()));
  for (const std::string& fd : removed) w.str(fd);
  w.u32(credits_left);
}

CoverUpdateMsg CoverUpdateMsg::decode(WireReader& r) {
  CoverUpdateMsg m;
  m.dataset = r.str();
  m.batch_id = r.u64();
  std::uint32_t na = r.u32();
  CheckCount(r, na, 4);
  m.added.reserve(na);
  for (std::uint32_t i = 0; i < na; ++i) m.added.push_back(r.str());
  std::uint32_t nr = r.u32();
  CheckCount(r, nr, 4);
  m.removed.reserve(nr);
  for (std::uint32_t i = 0; i < nr; ++i) m.removed.push_back(r.str());
  m.credits_left = r.u32();
  r.expect_done();
  return m;
}

void StreamEndMsg::encode(WireWriter& w) const {
  w.u16(static_cast<std::uint16_t>(reason));
  w.str(detail);
}

StreamEndMsg StreamEndMsg::decode(WireReader& r) {
  StreamEndMsg m;
  m.reason = static_cast<StreamEndReason>(r.u16());
  m.detail = r.str();
  r.expect_done();
  return m;
}

void HeartbeatMsg::encode(WireWriter& w) const { w.u64(server_time_us); }

HeartbeatMsg HeartbeatMsg::decode(WireReader& r) {
  HeartbeatMsg m;
  m.server_time_us = r.u64();
  r.expect_done();
  return m;
}

std::vector<std::uint8_t> EncodeTracedFrame(
    MsgType inner_type, std::uint64_t request_id,
    const std::vector<std::uint8_t>& inner_payload, const TraceContext& ctx) {
  WireWriter w;
  w.u64(ctx.trace_id);
  w.u64(ctx.span_id);
  w.u8(static_cast<std::uint8_t>(inner_type));
  std::vector<std::uint8_t> payload = w.take();
  payload.insert(payload.end(), inner_payload.begin(), inner_payload.end());
  return EncodeFrame(MsgType::kTracedRequest, request_id, payload);
}

TraceContext DecodeTracedHeader(WireReader& r, MsgType* inner_type) {
  TraceContext ctx;
  ctx.trace_id = r.u64();
  ctx.span_id = r.u64();
  std::uint8_t t = r.u8();
  if (!IsKnownMsgType(t) || t == static_cast<std::uint8_t>(MsgType::kTracedRequest)) {
    throw WireError("traced request wraps unknown or recursive type " +
                    std::to_string(int{t}));
  }
  *inner_type = static_cast<MsgType>(t);
  // Deliberately no expect_done(): the rest of the payload is the wrapped
  // request's payload, sliced off by the caller.
  return ctx;
}

void CostTrailerMsg::encode(WireWriter& w) const {
  w.u64(cpu_ns);
  w.u64(validations);
  w.u64(partitions_built);
  w.u64(cache_hits);
  w.u64(cache_misses);
  w.u64(bytes_streamed);
  w.f64(queue_seconds);
  w.f64(run_seconds);
}

CostTrailerMsg CostTrailerMsg::decode(WireReader& r) {
  CostTrailerMsg m;
  m.cpu_ns = r.u64();
  m.validations = r.u64();
  m.partitions_built = r.u64();
  m.cache_hits = r.u64();
  m.cache_misses = r.u64();
  m.bytes_streamed = r.u64();
  m.queue_seconds = r.f64();
  m.run_seconds = r.f64();
  r.expect_done();
  return m;
}

}  // namespace dhyfd::net
