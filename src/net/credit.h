#ifndef DHYFD_NET_CREDIT_H_
#define DHYFD_NET_CREDIT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace dhyfd::net {

/// Credit-based flow control for one subscription (the ACK window; see
/// DESIGN.md "Credit/ACK window state machine"). The server may only put a
/// stream event on the wire while the subscription holds credit; each sent
/// event consumes one credit and the client grants more with kCredit
/// frames. Events arriving while the window is empty are buffered up to
/// `max_buffered`; one more is the slow-consumer verdict — the caller must
/// end the stream, because an unbounded buffer would let one stalled
/// subscriber hold every other client's memory hostage.
///
/// The state machine, per event E and grant g:
///
///   OPEN    (credits > 0)             -- push(E) --> send E, credits-1
///   STALLED (credits == 0, buf <= max)-- push(E) --> buffer E
///                                     -- grant(g) --> flush min(g, |buf|)
///   DEAD    (buffer would overflow)   -- push(E) --> kOverflow, stream ends
///
/// Instances are owned by one connection and driven from the server's loop
/// thread only; no locking here.
class CreditWindow {
 public:
  enum class Push {
    kSend,      // credit held: the event should go on the wire now
    kBuffered,  // window empty: event queued until the next grant
    kOverflow,  // buffer full too: slow consumer, stream must end
  };

  /// `initial` credits, clamped to `credit_max`; `max_buffered` bounds the
  /// no-credit queue (0 = no buffering: the first no-credit event is
  /// already an overflow).
  CreditWindow(std::uint32_t initial, std::uint32_t credit_max,
               std::size_t max_buffered)
      : credit_max_(credit_max == 0 ? 1 : credit_max),
        max_buffered_(max_buffered),
        credits_(initial > credit_max_ ? credit_max_ : initial) {}

  /// Offers one encoded event to the window.
  Push push(std::vector<std::uint8_t> frame) {
    if (credits_ > 0) {
      --credits_;
      ++sent_;
      return Push::kSend;
    }
    if (buffer_.size() >= max_buffered_) {
      ++overflowed_;
      return Push::kOverflow;
    }
    buffer_.push_back(std::move(frame));
    if (buffer_.size() > peak_buffered_) peak_buffered_ = buffer_.size();
    return Push::kBuffered;
  }

  /// Grants `n` credits (clamped so credits never exceed credit_max) and
  /// returns the buffered frames that can be sent now, oldest first; each
  /// returned frame consumed one of the new credits.
  std::vector<std::vector<std::uint8_t>> grant(std::uint32_t n) {
    std::uint64_t total = std::uint64_t{credits_} + n;
    credits_ = total > credit_max_ ? credit_max_ : static_cast<std::uint32_t>(total);
    std::vector<std::vector<std::uint8_t>> out;
    while (credits_ > 0 && !buffer_.empty()) {
      out.push_back(std::move(buffer_.front()));
      buffer_.pop_front();
      --credits_;
      ++sent_;
    }
    return out;
  }

  std::uint32_t credits() const { return credits_; }
  std::size_t buffered() const { return buffer_.size(); }
  std::size_t peak_buffered() const { return peak_buffered_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t overflowed() const { return overflowed_; }
  bool stalled() const { return credits_ == 0; }

 private:
  const std::uint32_t credit_max_;
  const std::size_t max_buffered_;
  std::uint32_t credits_;
  std::deque<std::vector<std::uint8_t>> buffer_;
  std::size_t peak_buffered_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t overflowed_ = 0;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_CREDIT_H_
