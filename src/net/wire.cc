#include "net/wire.h"

namespace dhyfd::net {

bool IsKnownMsgType(std::uint8_t t) {
  if (t >= static_cast<std::uint8_t>(MsgType::kHello) &&
      t <= static_cast<std::uint8_t>(MsgType::kTracedRequest)) {
    return true;
  }
  return t >= static_cast<std::uint8_t>(MsgType::kHelloOk) &&
         t <= static_cast<std::uint8_t>(MsgType::kCostTrailer);
}

const char* ErrCodeName(ErrCode code) {
  switch (code) {
    case ErrCode::kBadRequest: return "bad_request";
    case ErrCode::kUnsupportedVersion: return "unsupported_version";
    case ErrCode::kUnknownDataset: return "unknown_dataset";
    case ErrCode::kQuotaExceeded: return "quota_exceeded";
    case ErrCode::kTooManyInFlight: return "too_many_in_flight";
    case ErrCode::kServerBusy: return "server_busy";
    case ErrCode::kShuttingDown: return "shutting_down";
    case ErrCode::kInternal: return "internal";
  }
  return "unknown";
}

const char* StreamEndReasonName(StreamEndReason reason) {
  switch (reason) {
    case StreamEndReason::kUnsubscribed: return "unsubscribed";
    case StreamEndReason::kSlowConsumer: return "slow_consumer";
    case StreamEndReason::kServerShutdown: return "server_shutdown";
    case StreamEndReason::kDatasetDropped: return "dataset_dropped";
  }
  return "unknown";
}

std::vector<std::uint8_t> EncodeFrame(MsgType type, std::uint64_t request_id,
                                      const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kLengthPrefixBytes + kFrameHeaderBytes + payload.size());
  std::uint32_t len =
      static_cast<std::uint32_t>(kFrameHeaderBytes + payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  out.push_back(static_cast<std::uint8_t>(type));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(request_id >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Reclaim consumed prefix before growing; keeps the buffer proportional
  // to the unparsed tail, not to connection lifetime.
  if (consumed_ > 0 && consumed_ == buf_.size()) {
    buf_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), data, data + size);
}

bool FrameDecoder::next(Frame* out) {
  if (poisoned_) throw WireError("decoder poisoned by earlier protocol error");
  std::size_t avail = buf_.size() - consumed_;
  if (avail < kLengthPrefixBytes) return false;
  const std::uint8_t* p = buf_.data() + consumed_;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= std::uint32_t{p[i]} << (8 * i);
  if (len < kFrameHeaderBytes) {
    poisoned_ = true;
    throw WireError("frame length " + std::to_string(len) +
                    " below header size");
  }
  if (len > max_frame_len_) {
    poisoned_ = true;
    throw WireError("frame length " + std::to_string(len) +
                    " exceeds maximum " + std::to_string(max_frame_len_));
  }
  // The type byte is validated as soon as it arrives, before buffering the
  // (possibly large) payload a garbage frame claims to carry.
  if (avail >= kLengthPrefixBytes + 1 && !IsKnownMsgType(p[4])) {
    poisoned_ = true;
    throw WireError("unknown message type " + std::to_string(int{p[4]}));
  }
  if (avail < kLengthPrefixBytes + len) return false;
  out->type = static_cast<MsgType>(p[4]);
  out->request_id = 0;
  for (int i = 0; i < 8; ++i) {
    out->request_id |= std::uint64_t{p[5 + i]} << (8 * i);
  }
  out->payload.assign(p + kLengthPrefixBytes + kFrameHeaderBytes,
                      p + kLengthPrefixBytes + len);
  consumed_ += kLengthPrefixBytes + len;
  return true;
}

}  // namespace dhyfd::net
