#include "net/http.h"

#include <cstdio>

namespace dhyfd::net {

namespace {

/// Finds the end of the header block; npos if not complete yet. Returns the
/// offset one past the terminator so callers could locate a body (unused —
/// the endpoint ignores bodies).
std::size_t FindHeadEnd(const std::string& buf) {
  std::size_t p = buf.find("\r\n\r\n");
  if (p != std::string::npos) return p + 4;
  p = buf.find("\n\n");
  if (p != std::string::npos) return p + 2;
  return std::string::npos;
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  for (char ch : s) {
    if (ch < 0x21 || ch > 0x7e) return false;  // printable ASCII, no spaces
  }
  return true;
}

}  // namespace

HttpParseStatus ParseHttpRequest(const std::string& buffered, HttpRequest* out,
                                 std::size_t max_bytes) {
  std::size_t head_end = FindHeadEnd(buffered);
  if (head_end == std::string::npos) {
    return buffered.size() > max_bytes ? HttpParseStatus::kTooLarge
                                       : HttpParseStatus::kNeedMore;
  }
  if (head_end > max_bytes) return HttpParseStatus::kTooLarge;

  std::size_t line_end = buffered.find('\n');
  std::string line = buffered.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') line.pop_back();

  std::size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return HttpParseStatus::kBad;
  std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return HttpParseStatus::kBad;
  if (line.find(' ', sp2 + 1) != std::string::npos) return HttpParseStatus::kBad;

  HttpRequest req;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  if (!IsToken(req.method) || !IsToken(req.target)) return HttpParseStatus::kBad;
  if (req.target[0] != '/') return HttpParseStatus::kBad;
  if (req.version.rfind("HTTP/", 0) != 0) return HttpParseStatus::kBad;
  *out = std::move(req);
  return HttpParseStatus::kOk;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::vector<std::uint8_t> RenderHttpResponse(int status,
                                             const std::string& content_type,
                                             const std::string& body) {
  char head[256];
  int n = std::snprintf(head, sizeof head,
                        "HTTP/1.0 %d %s\r\n"
                        "Content-Type: %s\r\n"
                        "Content-Length: %zu\r\n"
                        "Connection: close\r\n"
                        "\r\n",
                        status, HttpStatusReason(status), content_type.c_str(),
                        body.size());
  std::vector<std::uint8_t> out(head, head + n);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

}  // namespace dhyfd::net
