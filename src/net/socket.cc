#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace dhyfd::net {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() {
  int fd = fd_;
  fd_ = -1;
  return fd;
}

void Socket::set_nonblocking(bool on) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) ThrowErrno("fcntl(F_GETFL)");
  if (on) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) < 0) ThrowErrno("fcntl(F_SETFL)");
}

void Socket::set_tcp_nodelay(bool on) {
  int v = on ? 1 : 0;
  // Best-effort: fails harmlessly on non-TCP fds (e.g. the wake pipe).
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v);
}

IoResult Socket::read_some(std::uint8_t* buf, std::size_t len) {
  for (;;) {
    ssize_t n = ::recv(fd_, buf, len, 0);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

IoResult Socket::write_some(const std::uint8_t* buf, std::size_t len) {
  for (;;) {
    ssize_t n = ::send(fd_, buf, len, MSG_NOSIGNAL);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return {IoStatus::kWouldBlock, 0};
    return {IoStatus::kError, 0};
  }
}

bool Socket::read_exact(std::uint8_t* buf, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    ssize_t n = ::recv(fd_, buf + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got == 0) return false;  // clean EOF at a frame boundary
      throw std::runtime_error("connection closed mid-message");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("socket read timed out");
    }
    ThrowErrno("recv");
  }
  return true;
}

void Socket::write_all(const std::uint8_t* buf, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    ssize_t n = ::send(fd_, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n >= 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    ThrowErrno("send");
  }
}

void Socket::set_recv_timeout(double seconds) {
  struct timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) < 0) {
    ThrowErrno("setsockopt(SO_RCVTIMEO)");
  }
}

Socket ListenTcp(const std::string& host, std::uint16_t port, int backlog,
                 std::uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  Socket s(fd);
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ThrowErrno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) < 0) ThrowErrno("listen");
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t alen = sizeof actual;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &alen) < 0) {
      ThrowErrno("getsockname");
    }
    *bound_port = ntohs(actual.sin_port);
  }
  return s;
}

Socket AcceptOn(Socket& listener) {
  for (;;) {
    int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    return Socket();  // EAGAIN or a transient error: nothing to accept
  }
}

Socket ConnectTcp(const std::string& host, std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket");
  Socket s(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("bad connect address: " + host);
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
      return s;
    }
    if (errno == EINTR) continue;
    ThrowErrno("connect " + host + ":" + std::to_string(port));
  }
}

WakePipe::WakePipe() {
  int fds[2];
  if (::pipe(fds) < 0) ThrowErrno("pipe");
  read_end_ = Socket(fds[0]);
  write_end_ = Socket(fds[1]);
  read_end_.set_nonblocking(true);
  write_end_.set_nonblocking(true);
}

void WakePipe::wake() {
  std::uint8_t b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  [[maybe_unused]] ssize_t n = ::write(write_end_.fd(), &b, 1);
}

void WakePipe::drain() {
  std::uint8_t buf[256];
  while (::read(read_end_.fd(), buf, sizeof buf) > 0) {
  }
}

void Poller::watch(int fd, bool want_read, bool want_write) {
  fds_.push_back({fd, want_read, want_write});
}

std::vector<PollEvent> Poller::wait(int timeout_ms) {
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const Interest& in : fds_) {
    struct pollfd p{};
    p.fd = in.fd;
    p.events = static_cast<short>((in.read ? POLLIN : 0) | (in.write ? POLLOUT : 0));
    pfds.push_back(p);
  }
  int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  std::vector<PollEvent> out;
  if (n <= 0) return out;  // timeout or EINTR
  for (const struct pollfd& p : pfds) {
    if (p.revents == 0) continue;
    PollEvent e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    out.push_back(e);
  }
  return out;
}

}  // namespace dhyfd::net
