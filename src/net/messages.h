#ifndef DHYFD_NET_MESSAGES_H_
#define DHYFD_NET_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.h"

namespace dhyfd::net {

/// Typed payload schemas for every MsgType. Each message knows how to
/// encode itself into a WireWriter and how to decode itself from a
/// WireReader; decode throws WireError on any malformed field and verifies
/// the payload was consumed exactly. Element counts are validated against
/// the bytes actually present before anything is reserved, so a hostile
/// count field cannot trigger a multi-gigabyte allocation.

/// v1: the original message set (kHello .. kPong).
/// v2: adds kSubmitQuery / kQueryResult (rank-driven discovery queries).
/// v3: adds kTracedRequest (client-stamped trace context around any request)
///     and kCostTrailer (per-request cost ledger after successful results).
/// v4: appends a `parallelism` field to kSubmitDiscovery / kSubmitQuery
///     (requested intra-job thread count; the server clamps it to its pool).
///     No new message types — both codecs are version-parameterized, so a
///     v<=3 connection keeps the old byte-exact schema and its strict
///     truncation checks.
/// The handshake negotiates min(client, server); older clients keep working
/// but get kError(kUnsupportedVersion) if they send newer message types, and
/// the server never sends a trailer to a connection below v3.
constexpr std::uint32_t kProtocolVersion = 4;
constexpr std::uint32_t kMinProtocolVersion = 1;
/// The protocol version that introduced kSubmitQuery / kQueryResult.
constexpr std::uint32_t kQueryProtocolVersion = 2;
/// The protocol version that introduced kTracedRequest / kCostTrailer.
constexpr std::uint32_t kTraceProtocolVersion = 3;
/// The protocol version that introduced the submit-side parallelism field.
constexpr std::uint32_t kParallelProtocolVersion = 4;

struct HelloMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::string client_name;

  void encode(WireWriter& w) const;
  static HelloMsg decode(WireReader& r);
};

/// Handshake reply: the limits this connection must respect. A client that
/// exceeds max_inflight or lets its quota run dry gets per-request kError
/// replies; one that overruns its subscription credit buffer is dropped.
struct HelloOkMsg {
  std::uint32_t protocol_version = kProtocolVersion;
  std::uint32_t max_inflight = 0;
  std::uint32_t credit_max = 0;
  double heartbeat_seconds = 0;

  void encode(WireWriter& w) const;
  static HelloOkMsg decode(WireReader& r);
};

struct ErrorMsg {
  ErrCode code = ErrCode::kInternal;
  std::string message;

  void encode(WireWriter& w) const;
  static ErrorMsg decode(WireReader& r);
};

struct RegisterDatasetMsg {
  std::string name;
  std::string csv_text;
  /// Also create a live (subscribable, updatable) dataset in the LiveStore.
  bool live = false;
  /// NullSemantics as its underlying integer value.
  std::uint8_t semantics = 0;

  void encode(WireWriter& w) const;
  static RegisterDatasetMsg decode(WireReader& r);
};

struct RegisterOkMsg {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;

  void encode(WireWriter& w) const;
  static RegisterOkMsg decode(WireReader& r);
};

struct SubmitDiscoveryMsg {
  std::string dataset;
  std::string algorithm = "dhyfd";
  std::uint8_t semantics = 0;
  std::int32_t priority = 0;
  /// Per-request deadline, mapped onto the job's cooperative time limit
  /// (util/deadline.h); 0 = none.
  std::uint32_t deadline_ms = 0;
  /// How many ranked FDs the response should carry (0 = none).
  std::uint32_t top_k = 0;
  /// Protocol v4: requested intra-job parallelism — threads the discovery
  /// stage may shard over, including the job's own worker (0 or 1 =
  /// sequential). The server clamps to its pool size; the answer is
  /// bit-identical at any degree. Encoded only on v4+ connections.
  std::uint32_t parallelism = 0;

  /// `version` is the connection's negotiated protocol version: v<=3 peers
  /// keep the pre-parallelism schema byte for byte.
  void encode(WireWriter& w, std::uint32_t version = kProtocolVersion) const;
  static SubmitDiscoveryMsg decode(WireReader& r,
                                   std::uint32_t version = kProtocolVersion);
};

/// One ranked FD, rendered in numeric form ("{1,5} -> {3}").
struct RankedFdMsg {
  std::string fd;
  double redundancy = 0;
};

struct DiscoveryResultMsg {
  /// JobStateName() of the terminal state ("done", "cancelled", ...).
  std::string state;
  std::uint32_t cover_size = 0;
  std::uint32_t canonical_size = 0;
  double queue_seconds = 0;
  double run_seconds = 0;
  std::vector<RankedFdMsg> top;

  void encode(WireWriter& w) const;
  static DiscoveryResultMsg decode(WireReader& r);
};

/// Protocol v2: a rank-driven discovery query (src/query/) against a
/// registered dataset. Decode is deliberately permissive about *semantic*
/// values (a hostile epsilon or an absurd arity bound still decodes); the
/// server validates the spec with DescribeQueryError and answers
/// kError(kBadRequest) rather than dropping the connection.
struct SubmitQueryMsg {
  std::string dataset;
  std::uint8_t semantics = 0;
  std::int32_t priority = 0;
  /// Per-request deadline, mapped onto the job's cooperative time limit
  /// (util/deadline.h); 0 = none.
  std::uint32_t deadline_ms = 0;
  /// g3-style error threshold in [0, 1]; 0 = exact discovery.
  double epsilon = 0;
  /// Maximum LHS arity (0 = unbounded).
  std::uint32_t max_lhs = 0;
  /// Keep only the k best-ranked FDs (0 = all).
  std::uint32_t top_k = 0;
  /// RedundancyMode as its underlying integer value.
  std::uint8_t ranking_mode = 0;
  /// Column scope; empty include list = all columns.
  std::vector<std::uint8_t> include_columns;
  std::vector<std::uint8_t> exclude_columns;
  /// Protocol v4: requested intra-job parallelism (see SubmitDiscoveryMsg).
  /// Applies to the full-discovery query path; the top-k lattice walk is
  /// sequential and ignores it. Encoded only on v4+ connections.
  std::uint32_t parallelism = 0;

  /// `version` is the connection's negotiated protocol version: v<=3 peers
  /// keep the pre-parallelism schema byte for byte.
  void encode(WireWriter& w, std::uint32_t version = kProtocolVersion) const;
  static SubmitQueryMsg decode(WireReader& r,
                               std::uint32_t version = kProtocolVersion);
};

/// Protocol v2: answer to kSubmitQuery. `fds` carries the ranked answer in
/// rank order; the pruning counters mirror QueryStats so a client can see
/// why the search stopped.
struct QueryResultMsg {
  /// JobStateName() of the terminal state ("done", "cancelled", ...).
  std::string state;
  std::uint32_t total = 0;  // FDs in the (possibly truncated) answer
  bool early_terminated = false;
  bool timed_out = false;
  std::uint64_t validations = 0;
  std::uint64_t pruned_epsilon = 0;
  std::uint64_t pruned_arity = 0;
  std::uint64_t pruned_bound = 0;
  double queue_seconds = 0;
  double run_seconds = 0;
  std::vector<RankedFdMsg> fds;

  void encode(WireWriter& w) const;
  static QueryResultMsg decode(WireReader& r);
};

struct QueryCoverMsg {
  std::string dataset;
  std::uint32_t top_k = 0;  // 0 = all

  void encode(WireWriter& w) const;
  static QueryCoverMsg decode(WireReader& r);
};

struct CoverResultMsg {
  std::uint32_t total = 0;
  std::vector<RankedFdMsg> top;

  void encode(WireWriter& w) const;
  static CoverResultMsg decode(WireReader& r);
};

struct ApplyUpdateMsg {
  std::string dataset;
  std::vector<std::vector<std::string>> inserts;
  std::vector<std::int64_t> deletes;

  void encode(WireWriter& w) const;
  static ApplyUpdateMsg decode(WireReader& r);
};

struct UpdateOkMsg {
  std::uint32_t fds_added = 0;
  std::uint32_t fds_removed = 0;
  bool rebuilt = false;
  double seconds = 0;

  void encode(WireWriter& w) const;
  static UpdateOkMsg decode(WireReader& r);
};

struct SubscribeMsg {
  /// Dataset to follow; "" subscribes to every live dataset.
  std::string dataset;
  std::uint32_t initial_credits = 0;

  void encode(WireWriter& w) const;
  static SubscribeMsg decode(WireReader& r);
};

struct SubscribeOkMsg {
  /// initial_credits clamped to the server's credit_max.
  std::uint32_t granted_credits = 0;

  void encode(WireWriter& w) const;
  static SubscribeOkMsg decode(WireReader& r);
};

struct CreditMsg {
  std::uint32_t credits = 0;

  void encode(WireWriter& w) const;
  static CreditMsg decode(WireReader& r);
};

/// Stream event: one applied batch's cover delta. request_id carries the
/// subscription id it belongs to.
struct CoverUpdateMsg {
  std::string dataset;
  std::uint64_t batch_id = 0;
  std::vector<std::string> added;
  std::vector<std::string> removed;
  /// Credits the subscription has left after this event; the client should
  /// top up with kCredit before it reaches zero.
  std::uint32_t credits_left = 0;

  void encode(WireWriter& w) const;
  static CoverUpdateMsg decode(WireReader& r);
};

struct StreamEndMsg {
  StreamEndReason reason = StreamEndReason::kUnsubscribed;
  std::string detail;

  void encode(WireWriter& w) const;
  static StreamEndMsg decode(WireReader& r);
};

struct HeartbeatMsg {
  std::uint64_t server_time_us = 0;

  void encode(WireWriter& w) const;
  static HeartbeatMsg decode(WireReader& r);
};

/// Protocol v3: the trace context a client stamps on a request. Carried by
/// the kTracedRequest wrapper, whose payload is
///
///   u64 trace_id | u64 span_id | u8 inner_type | inner payload bytes
///
/// and whose request id is shared with the wrapped request. The wrapper adds
/// exactly 17 bytes per request and leaves every inner schema untouched, so
/// v1/v2 decoders (which reject trailing bytes) never see it.
struct TraceContext {
  /// The client's trace id for this causal tree; 0 = untraced.
  std::uint64_t trace_id = 0;
  /// The client-side span covering the request round trip.
  std::uint64_t span_id = 0;
};

/// Wraps an already-encoded request payload in a kTracedRequest frame.
std::vector<std::uint8_t> EncodeTracedFrame(
    MsgType inner_type, std::uint64_t request_id,
    const std::vector<std::uint8_t>& inner_payload, const TraceContext& ctx);

/// Reads the trace context and inner type from a kTracedRequest payload.
/// The reader is left positioned at the inner payload's first byte; the
/// caller slices the remaining bytes as the wrapped request's payload.
TraceContext DecodeTracedHeader(WireReader& r, MsgType* inner_type);

/// Protocol v3: per-request cost ledger, sent with the request's id
/// immediately after a *successful* result frame (never after kError), so a
/// blocking client can read it deterministically. Mirrors obs CostLedger.
struct CostTrailerMsg {
  std::uint64_t cpu_ns = 0;           // thread CPU time inside the request
  std::uint64_t validations = 0;      // FD validations performed
  std::uint64_t partitions_built = 0; // partition intersections + builds
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t bytes_streamed = 0;   // response bytes for this request
  double queue_seconds = 0;           // admission -> execution start
  double run_seconds = 0;             // execution wall time

  void encode(WireWriter& w) const;
  static CostTrailerMsg decode(WireReader& r);
};

/// Convenience: encodes `msg` and wraps it into a complete frame.
template <typename Msg>
std::vector<std::uint8_t> EncodeMsgFrame(MsgType type, std::uint64_t request_id,
                                         const Msg& msg) {
  WireWriter w;
  msg.encode(w);
  return EncodeFrame(type, request_id, w.bytes());
}

/// A frame with an empty payload (kPing, kPong, kUnsubscribe, kGoodbye).
inline std::vector<std::uint8_t> EncodeEmptyFrame(MsgType type,
                                                  std::uint64_t request_id) {
  return EncodeFrame(type, request_id, {});
}

}  // namespace dhyfd::net

#endif  // DHYFD_NET_MESSAGES_H_
