#ifndef DHYFD_NET_ADMISSION_H_
#define DHYFD_NET_ADMISSION_H_

#include <cstddef>
#include <cstdint>

namespace dhyfd::net {

/// Per-client request-rate quota: a token bucket holding at most `burst`
/// tokens, refilled at `rate` tokens/second. Time is injected by the caller
/// (seconds on any monotone clock), which keeps the policy deterministic
/// and directly testable — the server feeds it its loop clock.
class TokenBucket {
 public:
  /// rate <= 0 disables the quota (try_take always succeeds).
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst), tokens_(burst) {}

  /// Takes one token if available at time `now`; false = quota exhausted.
  bool try_take(double now) {
    if (rate_ <= 0) return true;
    refill(now);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens(double now) {
    refill(now);
    return tokens_;
  }

 private:
  void refill(double now) {
    if (last_ < 0) {
      last_ = now;
      return;
    }
    double dt = now - last_;
    if (dt <= 0) return;
    tokens_ += dt * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ = now;
  }

  const double rate_;
  const double burst_;
  double tokens_;
  double last_ = -1;
};

/// Per-client max-in-flight window: bounds requests accepted but not yet
/// answered. Combined with the JobScheduler's max_pending bound this gives
/// admission control two independent backstops — per client and global.
class InflightWindow {
 public:
  /// max == 0 disables the window.
  explicit InflightWindow(std::uint32_t max) : max_(max) {}

  bool try_acquire() {
    if (max_ != 0 && inflight_ >= max_) return false;
    ++inflight_;
    return true;
  }

  void release() {
    if (inflight_ > 0) --inflight_;
  }

  std::uint32_t inflight() const { return inflight_; }
  std::uint32_t max() const { return max_; }

 private:
  const std::uint32_t max_;
  std::uint32_t inflight_ = 0;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_ADMISSION_H_
