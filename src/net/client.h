#ifndef DHYFD_NET_CLIENT_H_
#define DHYFD_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/messages.h"
#include "net/socket.h"
#include "net/wire.h"

namespace dhyfd::net {

/// A server-side error reply, rethrown on the client as an exception so the
/// typed call sites stay simple. code() distinguishes retryable rejections
/// (kQuotaExceeded, kTooManyInFlight, kServerBusy) from real failures.
class RpcError : public std::runtime_error {
 public:
  RpcError(ErrCode code, const std::string& message)
      : std::runtime_error(std::string(ErrCodeName(code)) + ": " + message),
        code_(code) {}
  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

/// A stream-side frame (subscription traffic) surfaced by poll_event().
struct StreamEvent {
  enum class Kind { kCoverUpdate, kStreamEnd, kHeartbeat };
  Kind kind = Kind::kHeartbeat;
  /// Subscription id for kCoverUpdate / kStreamEnd; 0 for heartbeats.
  std::uint64_t sub_id = 0;
  CoverUpdateMsg update;   // kCoverUpdate only
  StreamEndMsg end;        // kStreamEnd only
  HeartbeatMsg heartbeat;  // kHeartbeat only
};

/// Synchronous client for the ProfilingServer: one blocking TCP socket, one
/// outstanding request at a time per call site (request ids still match
/// responses, so interleaved stream frames are fine). Stream frames that
/// arrive while a response is awaited are queued and drained later with
/// poll_event(). Not thread-safe; use one client per thread.
///
/// Every typed call throws RpcError when the server answers kError, and
/// std::runtime_error on transport failures (connection dropped, timeout,
/// protocol violation).
class BlockingClient {
 public:
  /// Connects and performs the hello handshake. `timeout_seconds` bounds
  /// every blocking read on this connection. `protocol_version` is what the
  /// hello announces — lower it to emulate an older client (compat tests);
  /// connections below kTraceProtocolVersion neither wrap requests in trace
  /// envelopes nor expect cost trailers.
  BlockingClient(const std::string& host, std::uint16_t port,
                 const std::string& client_name = "dhyfd-client",
                 double timeout_seconds = 30,
                 std::uint32_t protocol_version = kProtocolVersion);

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Limits announced by the server's hello reply.
  const HelloOkMsg& server_limits() const { return limits_; }

  // -- requests -------------------------------------------------------------
  RegisterOkMsg register_dataset(const std::string& name,
                                 const std::string& csv_text, bool live,
                                 std::uint8_t semantics = 0);
  DiscoveryResultMsg submit_discovery(const SubmitDiscoveryMsg& request);
  /// Protocol v2: rank-driven discovery query (approximate thresholds,
  /// arity bounds, top-k). RpcError(kUnsupportedVersion) when the server
  /// negotiated a pre-query protocol version for this connection.
  QueryResultMsg submit_query(const SubmitQueryMsg& request);
  CoverResultMsg query_cover(const std::string& dataset,
                             std::uint32_t top_k = 0);
  UpdateOkMsg apply_update(const ApplyUpdateMsg& request);
  void ping();
  /// Polite shutdown: sends kGoodbye and closes the socket.
  void goodbye();

  // -- streaming ------------------------------------------------------------
  /// Subscribes to cover updates for `dataset` ("" = all live datasets);
  /// returns the subscription id carried by its kCoverUpdate/kStreamEnd
  /// frames. `granted` (optional) receives the server-clamped credit count.
  std::uint64_t subscribe(const std::string& dataset,
                          std::uint32_t initial_credits,
                          std::uint32_t* granted = nullptr);
  /// Tops up a subscription's credit window (fire-and-forget).
  void grant_credits(std::uint64_t sub_id, std::uint32_t credits);
  /// Fire-and-forget; the stream answers with kStreamEnd(kUnsubscribed).
  void unsubscribe(std::uint64_t sub_id);

  /// Returns the next stream frame, waiting up to `timeout_seconds` for one
  /// to arrive; false on timeout. Queued frames are returned first.
  bool poll_event(StreamEvent* out, double timeout_seconds);

  /// Raw escape hatches for protocol tests: send arbitrary bytes / a frame,
  /// and read one raw frame (stream frames NOT diverted).
  void send_bytes(const void* data, std::size_t len);
  void send_frame(MsgType type, std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload);
  bool read_frame(Frame* out);

  /// True until the transport fails or the server closes the connection.
  bool connected() const { return sock_.valid(); }

  // -- cost attribution ------------------------------------------------------
  /// True once a *traced* RPC on a v3+ connection completed successfully
  /// (one issued under a TraceIdScope or with the global tracer enabled);
  /// the server's per-request cost trailer is then available in
  /// last_cost(). Untraced calls skip the trailer on both ends so the
  /// fast path pays nothing for attribution it never asked for.
  bool has_last_cost() const { return has_last_cost_; }
  /// Server-side resource ledger of the most recent traced successful RPC
  /// (CPU-ns, validations, partitions built, cache traffic, reply bytes).
  const CostTrailerMsg& last_cost() const { return last_cost_; }

 private:
  std::uint64_t next_request_id() { return next_request_id_++; }
  /// Sends one request frame, wrapped in a kTracedRequest envelope when the
  /// connection speaks v3+ and `trace_id` is non-zero. Instantiated only in
  /// client.cc.
  template <typename Msg>
  void send_request(MsgType type, std::uint64_t request_id, const Msg& msg,
                    std::uint64_t trace_id);
  /// Same, for an already-encoded payload — used by calls whose message
  /// schema depends on the negotiated protocol version (v4 submit requests
  /// encode themselves against limits_.protocol_version first).
  void send_payload(MsgType type, std::uint64_t request_id,
                    const std::vector<std::uint8_t>& payload,
                    std::uint64_t trace_id);
  /// On v3+ connections a successful result for a *traced* request (one
  /// that went out wrapped in a kTracedRequest envelope) is followed by a
  /// kCostTrailer with the same request id; read it into last_cost_.
  /// Untraced requests get no trailer, so this is a no-op for them.
  void read_cost_trailer(std::uint64_t request_id, std::uint64_t trace_id);
  /// Reads frames until the response for `request_id` arrives; stream
  /// frames encountered on the way are queued. Throws RpcError on kError.
  Frame wait_response(std::uint64_t request_id, MsgType expected);
  bool read_one(Frame* out);
  static bool is_stream_type(MsgType type) {
    return type == MsgType::kCoverUpdate || type == MsgType::kStreamEnd ||
           type == MsgType::kHeartbeat;
  }

  Socket sock_;
  HelloOkMsg limits_;
  /// Constructor-configured recv timeout; poll_event() temporarily narrows
  /// SO_RCVTIMEO to its own bound and must restore this one afterwards.
  double timeout_seconds_;
  std::uint64_t next_request_id_ = 1;
  std::deque<StreamEvent> events_;
  CostTrailerMsg last_cost_;
  bool has_last_cost_ = false;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_CLIENT_H_
