#ifndef DHYFD_NET_CLIENT_H_
#define DHYFD_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/messages.h"
#include "net/socket.h"
#include "net/wire.h"

namespace dhyfd::net {

/// A server-side error reply, rethrown on the client as an exception so the
/// typed call sites stay simple. code() distinguishes retryable rejections
/// (kQuotaExceeded, kTooManyInFlight, kServerBusy) from real failures.
class RpcError : public std::runtime_error {
 public:
  RpcError(ErrCode code, const std::string& message)
      : std::runtime_error(std::string(ErrCodeName(code)) + ": " + message),
        code_(code) {}
  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

/// A stream-side frame (subscription traffic) surfaced by poll_event().
struct StreamEvent {
  enum class Kind { kCoverUpdate, kStreamEnd, kHeartbeat };
  Kind kind = Kind::kHeartbeat;
  /// Subscription id for kCoverUpdate / kStreamEnd; 0 for heartbeats.
  std::uint64_t sub_id = 0;
  CoverUpdateMsg update;   // kCoverUpdate only
  StreamEndMsg end;        // kStreamEnd only
  HeartbeatMsg heartbeat;  // kHeartbeat only
};

/// Synchronous client for the ProfilingServer: one blocking TCP socket, one
/// outstanding request at a time per call site (request ids still match
/// responses, so interleaved stream frames are fine). Stream frames that
/// arrive while a response is awaited are queued and drained later with
/// poll_event(). Not thread-safe; use one client per thread.
///
/// Every typed call throws RpcError when the server answers kError, and
/// std::runtime_error on transport failures (connection dropped, timeout,
/// protocol violation).
class BlockingClient {
 public:
  /// Connects and performs the hello handshake. `timeout_seconds` bounds
  /// every blocking read on this connection.
  BlockingClient(const std::string& host, std::uint16_t port,
                 const std::string& client_name = "dhyfd-client",
                 double timeout_seconds = 30);

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  /// Limits announced by the server's hello reply.
  const HelloOkMsg& server_limits() const { return limits_; }

  // -- requests -------------------------------------------------------------
  RegisterOkMsg register_dataset(const std::string& name,
                                 const std::string& csv_text, bool live,
                                 std::uint8_t semantics = 0);
  DiscoveryResultMsg submit_discovery(const SubmitDiscoveryMsg& request);
  /// Protocol v2: rank-driven discovery query (approximate thresholds,
  /// arity bounds, top-k). RpcError(kUnsupportedVersion) when the server
  /// negotiated a pre-query protocol version for this connection.
  QueryResultMsg submit_query(const SubmitQueryMsg& request);
  CoverResultMsg query_cover(const std::string& dataset,
                             std::uint32_t top_k = 0);
  UpdateOkMsg apply_update(const ApplyUpdateMsg& request);
  void ping();
  /// Polite shutdown: sends kGoodbye and closes the socket.
  void goodbye();

  // -- streaming ------------------------------------------------------------
  /// Subscribes to cover updates for `dataset` ("" = all live datasets);
  /// returns the subscription id carried by its kCoverUpdate/kStreamEnd
  /// frames. `granted` (optional) receives the server-clamped credit count.
  std::uint64_t subscribe(const std::string& dataset,
                          std::uint32_t initial_credits,
                          std::uint32_t* granted = nullptr);
  /// Tops up a subscription's credit window (fire-and-forget).
  void grant_credits(std::uint64_t sub_id, std::uint32_t credits);
  /// Fire-and-forget; the stream answers with kStreamEnd(kUnsubscribed).
  void unsubscribe(std::uint64_t sub_id);

  /// Returns the next stream frame, waiting up to `timeout_seconds` for one
  /// to arrive; false on timeout. Queued frames are returned first.
  bool poll_event(StreamEvent* out, double timeout_seconds);

  /// Raw escape hatches for protocol tests: send arbitrary bytes / a frame,
  /// and read one raw frame (stream frames NOT diverted).
  void send_bytes(const void* data, std::size_t len);
  void send_frame(MsgType type, std::uint64_t request_id,
                  const std::vector<std::uint8_t>& payload);
  bool read_frame(Frame* out);

  /// True until the transport fails or the server closes the connection.
  bool connected() const { return sock_.valid(); }

 private:
  std::uint64_t next_request_id() { return next_request_id_++; }
  /// Reads frames until the response for `request_id` arrives; stream
  /// frames encountered on the way are queued. Throws RpcError on kError.
  Frame wait_response(std::uint64_t request_id, MsgType expected);
  bool read_one(Frame* out);
  static bool is_stream_type(MsgType type) {
    return type == MsgType::kCoverUpdate || type == MsgType::kStreamEnd ||
           type == MsgType::kHeartbeat;
  }

  Socket sock_;
  HelloOkMsg limits_;
  /// Constructor-configured recv timeout; poll_event() temporarily narrows
  /// SO_RCVTIMEO to its own bound and must restore this one afterwards.
  double timeout_seconds_;
  std::uint64_t next_request_id_ = 1;
  std::deque<StreamEvent> events_;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_CLIENT_H_
