#ifndef DHYFD_NET_SLOWLOG_H_
#define DHYFD_NET_SLOWLOG_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/cost_ledger.h"

namespace dhyfd::net {

/// Summary of one completed RPC: what it was, how it ended, what it cost.
/// Feeds the slow-request log (/slowlog) and the recent-span ring (/tracez).
struct RpcRecord {
  const char* rtype = "";    // request type name ("submit_discovery", ...)
  const char* outcome = "";  // "ok" / "rejected" / "deadline_expired" / ...
  std::string tenant;        // hello client_name ("anonymous" if empty)
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t conn_id = 0;
  double end_seconds = 0;       // completion time, server monotonic clock
  double duration_seconds = 0;  // receive -> response written
  double queue_seconds = 0;     // admission -> execution start
  double run_seconds = 0;       // execution wall time
  CostLedger cost;
};

/// Bounded worst-N log of completed requests, ordered by duration. Retention
/// is by pain, not recency: a request only enters once it is slower than the
/// current N-th worst, and the fastest entry is what eviction drops — so a
/// burst of cheap traffic can never flush the request you want to debug.
/// Loop-thread only; the server snapshots it when rendering /slowlog.
class SlowLog {
 public:
  explicit SlowLog(std::size_t capacity) : capacity_(capacity) {}

  void record(const RpcRecord& rec);

  /// Entries sorted slowest-first.
  const std::vector<RpcRecord>& worst() const { return entries_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::vector<RpcRecord> entries_;  // kept sorted, slowest first
};

/// Bounded most-recent-N ring of completed requests in completion order,
/// backing /tracez. Unlike SlowLog this *is* recency-retained: it answers
/// "what just happened", not "what hurt most".
class RecentRpcRing {
 public:
  explicit RecentRpcRing(std::size_t capacity) : capacity_(capacity) {}

  /// Takes the record by value so the hot path can move it in (the tenant
  /// string is the only heap member worth avoiding a copy of).
  void record(RpcRecord rec);

  /// Entries newest-first.
  std::vector<RpcRecord> recent() const;

 private:
  std::size_t capacity_;
  std::deque<RpcRecord> ring_;
};

/// JSON object for one ledger: {"cpu_ms":...,"validations":...,...}.
std::string CostLedgerJson(const CostLedger& cost);

/// JSON object for one record. `now_seconds` (same clock as end_seconds)
/// turns completion times into an "age_seconds" the reader can use directly.
std::string RpcRecordJson(const RpcRecord& rec, double now_seconds);

}  // namespace dhyfd::net

#endif  // DHYFD_NET_SLOWLOG_H_
