#ifndef DHYFD_NET_SERVER_H_
#define DHYFD_NET_SERVER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/admission.h"
#include "net/credit.h"
#include "net/messages.h"
#include "net/slowlog.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/cost_ledger.h"
#include "obs/obs_schema.gen.h"
#include "query/profile_query.h"
#include "service/live_store.h"
#include "service/metrics.h"
#include "service/scheduler.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dhyfd::net {

/// Tuning knobs for one ProfilingServer. The defaults are sized for the
/// load bench (hundreds of concurrent clients); tests shrink the windows
/// and timeouts to force every rejection path deterministically.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one with port() after
  /// start().
  std::uint16_t port = 0;
  int accept_backlog = 128;

  // -- admission control ----------------------------------------------------
  /// Connections beyond this are accepted and immediately closed (the
  /// kernel backlog stays bounded, the client sees a clean EOF).
  int max_connections = 256;
  /// Per-connection window of accepted-but-unanswered requests; the
  /// (max_inflight + 1)-th concurrent request gets kTooManyInFlight.
  /// 0 disables.
  std::uint32_t max_inflight = 16;
  /// Per-connection request quota: token bucket, requests/second + burst.
  /// rate 0 disables.
  double quota_rate = 200;
  double quota_burst = 400;

  // -- framing --------------------------------------------------------------
  std::uint32_t max_frame_len = kDefaultMaxFrameLen;
  /// A connection whose outbound buffer exceeds this is dropped as a slow
  /// consumer regardless of credits — TCP backpressure must never translate
  /// into unbounded server memory.
  std::size_t max_write_buffer_bytes = 4u << 20;

  // -- streaming ------------------------------------------------------------
  /// Most credits a subscription may hold at once (grants clamp here).
  std::uint32_t credit_max = 1024;
  /// Stream events buffered per subscription while it holds no credit; one
  /// more ends the stream with kSlowConsumer and drops the connection.
  std::size_t max_buffered_events = 64;
  /// Heartbeat cadence on connections with live subscriptions (0 = off).
  double heartbeat_seconds = 5;
  /// Drop connections that sent nothing for this long (0 = never).
  double idle_timeout_seconds = 0;

  // -- observability endpoint ----------------------------------------------
  /// Serve GET /metrics, /healthz, /slowlog, /tracez over HTTP/1.0 from a
  /// second listener inside the same event loop. Off by default: the
  /// endpoint is read-only but still a surface.
  bool http_enabled = false;
  /// 0 binds an ephemeral port; read the actual one with http_port().
  std::uint16_t http_port = 0;
  /// Concurrent HTTP connections beyond this are accepted and closed.
  int max_http_connections = 32;
  /// Request head (request line + headers) byte cap; over it -> 431.
  std::size_t max_http_request_bytes = 8192;
  /// Worst-N slow-request ring served by /slowlog (0 disables).
  std::size_t slowlog_capacity = 32;
  /// Most-recent-N completed-request ring served by /tracez (0 disables).
  std::size_t tracez_capacity = 64;

  // -- lifecycle ------------------------------------------------------------
  /// Graceful-drain budget: shutdown() stops accepting, answers in-flight
  /// work and flushes buffers for up to this long before closing hard.
  double drain_seconds = 5;
};

/// The networked front end of the profiling service: a poll(2) event loop
/// on one background thread, speaking the length-prefixed RPC protocol of
/// wire.h/messages.h over TCP, bridging into the in-process service layer:
///
///   kSubmitDiscovery -> JobScheduler (deadline_ms -> cooperative deadline)
///   kRegisterDataset -> DatasetRegistry (+ LiveStore::create when live)
///   kQueryCover      -> LiveStore ranking snapshot
///   kApplyUpdate     -> LiveStore strand submit
///   kSubscribe       -> LiveStore cover-change listener, credit-windowed
///
/// Robustness posture (DESIGN.md "Network service"):
///   * bounded everything — accept backlog, connection count, per-client
///     in-flight windows and rate quotas, scheduler max_pending backstop,
///     per-subscription event buffers, per-connection write buffers;
///   * protocol errors drop the connection, they are never parsed around;
///   * slow consumers are disconnected (credit overflow or write-buffer
///     overflow), so one stalled client cannot starve the rest;
///   * shutdown() drains: StreamEnd to subscribers, in-flight answers
///     flushed, then sockets close.
///
/// Observability: net.* counters/gauges/histograms into the shared
/// MetricsRegistry (so they ride the existing Prometheus exposition),
/// net.dispatch / net.queue_wait / net.rpc spans into the global tracer
/// (adopting client-stamped trace ids from kTracedRequest wrappers), a
/// per-request CostLedger returned in kCostTrailer frames and aggregated
/// per connection/tenant, net.rpc.<type>.<outcome>_seconds latency
/// histograms, and — when options.http_enabled — an embedded HTTP/1.0
/// endpoint serving /metrics, /healthz, /slowlog, and /tracez.
class ProfilingServer {
 public:
  /// None of the service objects are owned; all must outlive the server.
  ProfilingServer(JobScheduler* scheduler, LiveStore* live,
                  DatasetRegistry* datasets, MetricsRegistry* metrics,
                  ServerOptions options = {});

  /// Equivalent to shutdown().
  ~ProfilingServer();

  ProfilingServer(const ProfilingServer&) = delete;
  ProfilingServer& operator=(const ProfilingServer&) = delete;

  /// Binds the listen socket (throws std::runtime_error on failure) and
  /// starts the event-loop thread.
  void start();

  /// The bound port; valid after start().
  std::uint16_t port() const { return port_; }

  /// The observability endpoint's bound port; valid after start() when
  /// options.http_enabled (0 otherwise).
  std::uint16_t http_port() const { return http_port_; }

  /// Graceful drain then stop; idempotent, callable from any thread.
  void shutdown();

  /// Live connection count (mirrors the net.connections gauge).
  std::int64_t connections() const {
    return metrics_->gauge(kObsNetConnections).value();
  }

 private:
  struct Subscription {
    std::string dataset;  // "" follows every live dataset
    CreditWindow window;
  };

  /// Per-connection state; owned and touched by the loop thread only.
  struct Connection {
    std::uint64_t id = 0;
    Socket sock;
    FrameDecoder decoder;
    TokenBucket bucket;
    InflightWindow inflight;
    std::map<std::uint64_t, Subscription> subs;  // key: subscribe request id
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    double last_recv = 0;
    double last_send = 0;
    bool got_hello = false;
    /// Negotiated at the hello handshake: min(client, server). Gates
    /// version-specific requests (kSubmitQuery needs v2) without breaking
    /// older clients.
    std::uint32_t protocol_version = 0;
    /// Flush the outbound buffer, then close (goodbye / stream-end paths).
    bool closing = false;
    /// The socket failed mid-write (peer reset, buffer overflow). The
    /// Connection must NOT be erased from conns_ at the point of failure:
    /// writes happen deep inside call chains (dispatch, heartbeat sweeps,
    /// event fan-out) whose callers still hold the reference or are
    /// range-iterating conns_. Dead connections are reaped at one safe
    /// point per loop tick instead.
    bool dead = false;
    /// Hello client_name, used as the tenant key for cost attribution
    /// ("anonymous" when the client sent none).
    std::string client_name = "anonymous";
    /// This tenant's aggregate ledger inside tenant_costs_, resolved once
    /// at the hello handshake so the per-request path is a pointer add
    /// instead of a string-keyed map walk. std::map nodes are stable and
    /// tenant rows are never erased, so the pointer outlives the
    /// connection. Null until hello names the tenant.
    CostLedger* tenant_slot = nullptr;
    /// Running total of every finished request's ledger on this connection.
    CostLedger total_cost;

    Connection(std::uint32_t max_frame_len, double quota_rate,
               double quota_burst, std::uint32_t max_inflight)
        : decoder(max_frame_len),
          bucket(quota_rate, quota_burst),
          inflight(max_inflight) {}
  };

  /// One observability-endpoint connection: read a bounded request head,
  /// write one response, close. Owned and touched by the loop thread only.
  struct HttpConnection {
    std::uint64_t id = 0;
    Socket sock;
    std::string in;
    std::vector<std::uint8_t> out;
    std::size_t out_pos = 0;
    bool responded = false;
    bool dead = false;
  };

  /// An RPC whose answer comes from a service-layer handle the loop sweeps.
  struct PendingJob {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::uint32_t top_k = 0;
    double started = 0;
    JobHandlePtr handle;
    /// True for kSubmitQuery jobs: the answer is a kQueryResult frame built
    /// from query_slot instead of a kDiscoveryResult.
    bool is_query = false;
    /// Set for kSubmitQuery jobs: BindQueryToProfile routes the job's
    /// discovery stage through the query engine and parks the ranked
    /// answer here; safe to read once handle->finished() is true.
    std::shared_ptr<QueryResultSlot> query_slot;
    /// The connection negotiated v3+: successful answers get a kCostTrailer.
    bool want_trailer = false;
  };
  struct PendingUpdate {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    double started = 0;
    UpdateJobHandlePtr handle;
    bool want_trailer = false;
  };
  /// RPC telemetry computed off-loop, applied on the loop thread where the
  /// slow ring, tracez ring, and tenant aggregation live. rtype "" = none.
  struct RpcFinish {
    const char* rtype = "";
    const char* outcome = "";
    std::uint64_t request_id = 0;
    std::uint64_t trace_id = 0;
    double queue_seconds = 0;
    double run_seconds = 0;
    bool has_cost = false;
    CostLedger cost;
  };
  /// A frame produced off-loop (ops pool / LiveStore workers) for a
  /// connection, delivered through the completion queue + wake pipe.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> frame;
    double started = 0;   // request start time; <0 = not a request answer
    bool release_inflight = false;
    RpcFinish finish;
  };

  void loop();
  double now() const;

  // Loop-side handlers (loop thread only).
  void accept_new();
  void handle_readable(Connection& c);
  void dispatch(Connection& c, const Frame& frame);
  /// The per-request switch, after dispatch() unwrapped any kTracedRequest
  /// envelope. `ctx` carries the client-stamped trace context (ids 0 when
  /// the request was not traced); runs under TraceIdScope(ctx.trace_id).
  void dispatch_request(Connection& c, const Frame& frame,
                        const TraceContext& ctx);
  void handle_submit_discovery(Connection& c, const Frame& frame,
                               const TraceContext& ctx);
  void handle_submit_query(Connection& c, const Frame& frame,
                           const TraceContext& ctx);
  void handle_register(Connection& c, const Frame& frame,
                       const TraceContext& ctx);
  void handle_query_cover(Connection& c, const Frame& frame,
                          const TraceContext& ctx);
  void handle_apply_update(Connection& c, const Frame& frame,
                           const TraceContext& ctx);
  void handle_subscribe(Connection& c, const Frame& frame);
  void handle_credit(Connection& c, const Frame& frame);
  void handle_unsubscribe(Connection& c, const Frame& frame);
  void sweep_pending();
  void deliver_events(std::vector<CoverChangeEvent> events);
  void flush_completions();
  void heartbeat_and_idle();
  void send_frame(Connection& c, std::vector<std::uint8_t> frame);
  void send_error(Connection& c, std::uint64_t request_id, ErrCode code,
                  const std::string& message);
  void end_subscription(Connection& c, std::uint64_t sub_id,
                        StreamEndReason reason, const std::string& detail);
  void drop_connection(std::uint64_t conn_id, const char* why);
  void mark_dead(Connection& c);
  void reap_connections();
  void flush_writes(Connection& c);
  bool drain_finished();
  void finish_job(const PendingJob& job);
  void finish_update(const PendingUpdate& update);

  // Per-RPC telemetry (loop thread only): latency histograms by
  // type x outcome, slow/tracez rings, tenant cost aggregation.
  void record_rpc(Connection& c, const RpcFinish& fin, double duration);
  /// Resolves (creating if under the 64-row cap) the tenant's aggregate
  /// ledger row; past the cap everyone shares the "(other)" overflow row.
  CostLedger* tenant_slot(const std::string& tenant);
  Histogram& rpc_outcome_histogram(const char* rtype, const char* outcome);

  // Observability HTTP endpoint (loop thread only).
  void accept_http();
  void handle_http_readable(HttpConnection& h);
  void respond_http(HttpConnection& h, int status,
                    const std::string& content_type, const std::string& body);
  void flush_http_writes(HttpConnection& h);
  void reap_http_connections();
  std::string render_slowlog_json();
  std::string render_tracez_json();

  JobScheduler* scheduler_;
  LiveStore* live_;
  DatasetRegistry* datasets_;
  MetricsRegistry* metrics_;
  const ServerOptions options_;

  Socket listener_;
  std::uint16_t port_ = 0;
  WakePipe wake_;
  /// Blocking service calls (CSV parse/encode, initial live discovery,
  /// ranking snapshots) run here so the event loop never waits on them.
  ThreadPool ops_pool_;
  std::thread loop_thread_;  // lint-allow: naked-thread (event loop)
  std::chrono::steady_clock::time_point epoch_;

  // Loop-thread-only state (no locks: single owner).
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  std::vector<PendingJob> pending_jobs_;
  std::vector<PendingUpdate> pending_updates_;
  bool draining_ = false;
  double drain_deadline_ = 0;

  // Observability endpoint state (loop thread only). The HTTP listener
  // stays open during drain so /healthz can answer 503 while the RPC side
  // refuses work.
  Socket http_listener_;
  std::uint16_t http_port_ = 0;
  std::map<std::uint64_t, std::unique_ptr<HttpConnection>> http_conns_;
  std::uint64_t next_http_id_ = 1;
  SlowLog slowlog_;
  RecentRpcRing tracez_;
  std::map<std::string, CostLedger> tenant_costs_;

  // Pre-resolved metric handles for the per-request fast path. Every
  // registry lookup is a mutex acquisition plus a string-keyed map walk;
  // at tens of thousands of RPCs per second on the single loop thread that
  // dwarfs the work being measured. Registry slots are never erased, so
  // the references stay valid for the server's lifetime.
  Counter& m_requests_;
  Counter& m_frames_rx_;
  Counter& m_bytes_rx_;
  Counter& m_frames_tx_;
  Counter& m_bytes_tx_;
  Counter& m_protocol_errors_;
  Histogram& m_request_seconds_;
  Counter& m_rpc_requests_;
  Histogram& m_rpc_queue_seconds_;
  Histogram& m_rpc_run_seconds_;
  Counter& m_rpc_cpu_ns_;
  Counter& m_rpc_validations_;
  Counter& m_rpc_partitions_built_;
  Counter& m_rpc_bytes_streamed_;
  // Lazily grown cache of the type x outcome latency family, keyed by
  // pointer identity of the literal name tables (loop thread only). A
  // duplicate entry from a second literal address is harmless — both
  // resolve to the same registry slot — and the set stays tiny.
  std::vector<std::tuple<const char*, const char*, Histogram*>>
      rpc_hist_cache_;

  // Cross-thread state.
  mutable Mutex mu_;
  bool stop_requested_ DHYFD_GUARDED_BY(mu_) = false;
  std::vector<Completion> completions_ DHYFD_GUARDED_BY(mu_);
  std::vector<CoverChangeEvent> events_ DHYFD_GUARDED_BY(mu_);

  /// Serializes the shutdown body: exactly one caller joins the loop thread
  /// and tears down (unsubscribe, ops pool); concurrent or repeat callers
  /// block here until that teardown finished, so shutdown() never returns
  /// while the loop thread is still draining.
  Mutex shutdown_mu_;
  bool shutdown_done_ DHYFD_GUARDED_BY(shutdown_mu_) = false;
  std::uint64_t live_listener_token_ DHYFD_GUARDED_BY(shutdown_mu_) = 0;
};

}  // namespace dhyfd::net

#endif  // DHYFD_NET_SERVER_H_
