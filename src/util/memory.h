#ifndef DHYFD_UTIL_MEMORY_H_
#define DHYFD_UTIL_MEMORY_H_

#include <cstddef>

namespace dhyfd {

/// Current resident set size of this process in bytes (Linux /proc), or 0 if
/// unavailable. Used to report the memory columns of Table II / Figure 7.
size_t CurrentRssBytes();

/// Peak resident set size (VmHWM) in bytes, or 0 if unavailable.
size_t PeakRssBytes();

/// Number of open file descriptors of this process (Linux /proc/self/fd),
/// or 0 if unavailable. Exported as the process.open_fds gauge — the first
/// thing to watch on a socket-heavy server for descriptor leaks.
size_t CurrentOpenFds();

/// Tracks the memory high-water mark over a scoped region relative to the
/// RSS at construction. Benches report `delta_peak_bytes()` as the
/// algorithm's working memory, mirroring the paper's per-run MB figures.
class MemoryWatermark {
 public:
  MemoryWatermark() : base_(CurrentRssBytes()), peak_(base_) {}

  /// Samples the current RSS; call at phase boundaries inside algorithms.
  void sample() {
    size_t cur = CurrentRssBytes();
    if (cur > peak_) peak_ = cur;
  }

  size_t delta_peak_bytes() {
    sample();
    return peak_ > base_ ? peak_ - base_ : 0;
  }

  double delta_peak_mb() {
    return static_cast<double>(delta_peak_bytes()) / (1024.0 * 1024.0);
  }

 private:
  size_t base_;
  size_t peak_;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_MEMORY_H_
