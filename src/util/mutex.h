#ifndef DHYFD_UTIL_MUTEX_H_
#define DHYFD_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace dhyfd {

/// Annotated wrapper over std::mutex — the only mutex type the repo uses
/// (tools/check_invariants.py rejects naked std::mutex outside this file).
/// Under Clang with -DDHYFD_THREAD_SAFETY=ON, mismatched lock/unlock and
/// unguarded access to DHYFD_GUARDED_BY members are compile errors.
class DHYFD_LOCKABLE Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DHYFD_ACQUIRE() { mu_.lock(); }
  void unlock() DHYFD_RELEASE() { mu_.unlock(); }
  bool try_lock() DHYFD_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII scoped lock over Mutex; also the handle CondVar waits on. There is
/// deliberately no unlock()/relock() — a critical section is one scope, so
/// the analysis (and the reader) never has to track a toggled lock state.
class DHYFD_SCOPED_LOCKABLE MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DHYFD_ACQUIRE(mu) : lock_(mu->mu_) {}
  // Empty body (not `= default`) so the release annotation parses on every
  // compiler; lock_'s destructor does the actual unlock.
  ~MutexLock() DHYFD_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to MutexLock.
///
/// There are intentionally no predicate overloads: a predicate lambda is
/// analyzed as a separate function by Clang TSA, so its guarded reads could
/// not be proven. Callers write the standard loop instead, keeping every
/// guarded read inside the locked scope:
///
///   MutexLock lock(&mu_);
///   while (!ready_) cv_.wait(lock);
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock and blocks; the lock is re-held on
  /// return. Spurious wakeups happen — always wait in a predicate loop.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// wait() with a deadline; std::cv_status::timeout once it passes.
  std::cv_status wait_until(MutexLock& lock,
                            std::chrono::steady_clock::time_point deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  /// wait() with a relative timeout in seconds.
  std::cv_status wait_for(MutexLock& lock, double seconds) {
    return cv_.wait_for(lock.lock_, std::chrono::duration<double>(seconds));
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_MUTEX_H_
