#ifndef DHYFD_UTIL_DEADLINE_H_
#define DHYFD_UTIL_DEADLINE_H_

#include <chrono>

namespace dhyfd {

/// Cooperative time limit for discovery runs, mirroring the paper's 1-hour
/// "TL" budget in Table II. Algorithms poll expired() at loop boundaries and
/// abandon the run (flagging stats.timed_out) when it fires. A limit of 0
/// means no deadline.
class Deadline {
 public:
  explicit Deadline(double seconds)
      : enabled_(seconds > 0),
        end_(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(seconds > 0 ? seconds : 0))) {}

  bool expired() const {
    if (!enabled_) return false;
    if (expired_cache_) return true;
    // steady_clock::now() is a ~20 ns vDSO call on Linux: cheap enough to
    // poll unconditionally, and call sites vary wildly in how much work
    // sits between polls (stride-caching went stale on slow call sites).
    expired_cache_ = Clock::now() >= end_;
    return expired_cache_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  bool enabled_;
  Clock::time_point end_;
  mutable bool expired_cache_ = false;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_DEADLINE_H_
