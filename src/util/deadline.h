#ifndef DHYFD_UTIL_DEADLINE_H_
#define DHYFD_UTIL_DEADLINE_H_

#include <chrono>

#include "util/cancellation.h"

namespace dhyfd {

/// Cooperative time limit for discovery runs, mirroring the paper's 1-hour
/// "TL" budget in Table II. Algorithms poll expired() at loop boundaries and
/// abandon the run (flagging stats.timed_out) when it fires. A limit of 0
/// means no deadline.
///
/// The constructor also captures the thread's current CancelToken (see
/// CancelScope in util/cancellation.h): a cancelled token makes expired()
/// fire immediately, so the service layer's job cancellation rides the same
/// polls as the time limit.
class Deadline {
 public:
  explicit Deadline(double seconds)
      : enabled_(seconds > 0),
        cancel_(CancelScope::Current()),
        end_(Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(seconds > 0 ? seconds : 0))) {}

  bool expired() const {
    if (expired_cache_) return true;
    if (cancel_ != nullptr && cancel_->cancelled()) {
      expired_cache_ = true;
      return true;
    }
    if (!enabled_) return false;
    // steady_clock::now() is a ~20 ns vDSO call on Linux: cheap enough to
    // poll unconditionally, and call sites vary wildly in how much work
    // sits between polls (stride-caching went stale on slow call sites).
    expired_cache_ = Clock::now() >= end_;
    return expired_cache_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  bool enabled_;
  const CancelToken* cancel_;
  Clock::time_point end_;
  mutable bool expired_cache_ = false;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_DEADLINE_H_
