#ifndef DHYFD_UTIL_RANDOM_H_
#define DHYFD_UTIL_RANDOM_H_

#include <cstdint>

namespace dhyfd {

/// Deterministic 64-bit PRNG (splitmix64 seeding + xoshiro-style mixing).
///
/// The synthetic data generators must be reproducible across platforms and
/// standard-library versions, so we do not use <random> engines or
/// distributions anywhere in the generators.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t next_u64() {
    // splitmix64: passes BigCrush, two multiplies and three xors per draw.
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t next_below(uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi].
  int64_t next_range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(next_below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Zipf-ish skewed draw in [0, n): rank r is roughly proportional to
  /// 1/(r+1)^s with s ~ 1. Implemented by inverse-power transform, which is
  /// close enough for workload skew and much cheaper than exact Zipf.
  uint64_t next_zipf(uint64_t n, double skew = 1.0) {
    double u = next_double();
    double x = 1.0;
    if (skew > 0) {
      // Map uniform u through u^(skew+1) to pile mass on small ranks.
      for (int i = 0; i < static_cast<int>(skew + 0.5); ++i) x *= u;
      x *= u;
    } else {
      x = u;
    }
    uint64_t r = static_cast<uint64_t>(x * static_cast<double>(n));
    return r >= n ? n - 1 : r;
  }

 private:
  uint64_t state_;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_RANDOM_H_
