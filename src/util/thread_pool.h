#ifndef DHYFD_UTIL_THREAD_POOL_H_
#define DHYFD_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// A fixed-size worker pool with a bounded FIFO task queue and graceful
/// shutdown. Deliberately simple — no work stealing, one mutex, two
/// condition variables — because profiling jobs are coarse (seconds, not
/// microseconds) and lock discipline matters more than enqueue latency.
///
/// Exceptions escaping a task never kill a worker: they are caught, counted,
/// and forwarded to the exception handler (default: remember the first
/// message, see exceptions_caught() / first_exception_message()).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1). `max_queue` bounds the
  /// number of queued-but-not-running tasks; 0 means unbounded. When the
  /// queue is full, submit() blocks and try_submit() refuses.
  explicit ThreadPool(int num_threads, std::size_t max_queue = 0);

  /// Equivalent to shutdown(): drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false (and
  /// drops the task) if the pool is shutting down.
  bool submit(std::function<void()> task) DHYFD_EXCLUDES(mu_);

  /// Non-blocking enqueue; false if the queue is full or shutting down.
  bool try_submit(std::function<void()> task) DHYFD_EXCLUDES(mu_);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent and safe to call from multiple threads (but not
  /// from inside a pool task).
  void shutdown() DHYFD_EXCLUDES(mu_);

  /// Replaces the exception handler invoked (on the worker thread) when a
  /// task throws. Must be called before tasks that may throw are submitted.
  void set_exception_handler(std::function<void(std::exception_ptr)> handler)
      DHYFD_EXCLUDES(mu_);

  int num_threads() const DHYFD_EXCLUDES(mu_);
  std::size_t queue_depth() const DHYFD_EXCLUDES(mu_);
  std::int64_t tasks_executed() const DHYFD_EXCLUDES(mu_);
  std::int64_t exceptions_caught() const DHYFD_EXCLUDES(mu_);
  /// what() of the first task exception the default handler saw ("" if none).
  std::string first_exception_message() const DHYFD_EXCLUDES(mu_);

 private:
  void worker_loop() DHYFD_EXCLUDES(mu_);
  void default_exception_handler(std::exception_ptr e) DHYFD_EXCLUDES(mu_);
  /// Shared tail of submit()/try_submit(): wraps the task with the caller's
  /// trace context and enqueues it.
  void enqueue_locked(std::function<void()> task) DHYFD_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar not_empty_;  // workers wait: task available / stop
  CondVar not_full_;   // producers wait: queue has room
  std::deque<std::function<void()>> queue_ DHYFD_GUARDED_BY(mu_);
  const std::size_t max_queue_;
  bool stopping_ DHYFD_GUARDED_BY(mu_) = false;
  bool joined_ DHYFD_GUARDED_BY(mu_) = false;
  std::int64_t tasks_executed_ DHYFD_GUARDED_BY(mu_) = 0;
  std::int64_t exceptions_caught_ DHYFD_GUARDED_BY(mu_) = 0;
  std::string first_exception_message_ DHYFD_GUARDED_BY(mu_);
  std::function<void(std::exception_ptr)> exception_handler_
      DHYFD_GUARDED_BY(mu_);
  // Filled by the constructor (before any concurrency; TSA exempts
  // constructors) and swapped out by the single shutdown() winner.
  std::vector<std::thread> workers_ DHYFD_GUARDED_BY(mu_);
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_THREAD_POOL_H_
