#ifndef DHYFD_UTIL_THREAD_POOL_H_
#define DHYFD_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace dhyfd {

/// A fixed-size worker pool with a bounded FIFO task queue and graceful
/// shutdown. Deliberately simple — no work stealing, one mutex, two
/// condition variables — because profiling jobs are coarse (seconds, not
/// microseconds) and lock discipline matters more than enqueue latency.
///
/// Exceptions escaping a task never kill a worker: they are caught, counted,
/// and forwarded to the exception handler (default: remember the first
/// message, see exceptions_caught() / first_exception_message()).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1). `max_queue` bounds the
  /// number of queued-but-not-running tasks; 0 means unbounded. When the
  /// queue is full, submit() blocks and try_submit() refuses.
  explicit ThreadPool(int num_threads, std::size_t max_queue = 0);

  /// Equivalent to shutdown(): drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false (and
  /// drops the task) if the pool is shutting down.
  bool submit(std::function<void()> task);

  /// Non-blocking enqueue; false if the queue is full or shutting down.
  bool try_submit(std::function<void()> task);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent and safe to call from multiple threads (but not
  /// from inside a pool task).
  void shutdown();

  /// Replaces the exception handler invoked (on the worker thread) when a
  /// task throws. Must be called before tasks that may throw are submitted.
  void set_exception_handler(std::function<void(std::exception_ptr)> handler);

  int num_threads() const { return static_cast<int>(workers_.size()); }
  std::size_t queue_depth() const;
  std::int64_t tasks_executed() const;
  std::int64_t exceptions_caught() const;
  /// what() of the first task exception the default handler saw ("" if none).
  std::string first_exception_message() const;

 private:
  void worker_loop();
  void default_exception_handler(std::exception_ptr e);

  mutable std::mutex mu_;
  std::condition_variable not_empty_;   // workers wait: task available / stop
  std::condition_variable not_full_;    // producers wait: queue has room
  std::deque<std::function<void()>> queue_;
  std::size_t max_queue_;
  bool stopping_ = false;
  bool joined_ = false;
  std::int64_t tasks_executed_ = 0;
  std::int64_t exceptions_caught_ = 0;
  std::string first_exception_message_;
  std::function<void(std::exception_ptr)> exception_handler_;
  std::vector<std::thread> workers_;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_THREAD_POOL_H_
