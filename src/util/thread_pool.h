#ifndef DHYFD_UTIL_THREAD_POOL_H_
#define DHYFD_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// A fixed-size worker pool with a bounded FIFO task queue and graceful
/// shutdown. Deliberately simple — no work stealing, one mutex, two
/// condition variables — because profiling jobs are coarse (seconds, not
/// microseconds) and lock discipline matters more than enqueue latency.
///
/// Exceptions escaping a task never kill a worker: they are caught, counted,
/// and forwarded to the exception handler (default: remember the first
/// message, see exceptions_caught() / first_exception_message()).
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1). `max_queue` bounds the
  /// number of queued-but-not-running tasks; 0 means unbounded. When the
  /// queue is full, submit() blocks and try_submit() refuses.
  explicit ThreadPool(int num_threads, std::size_t max_queue = 0);

  /// Equivalent to shutdown(): drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false (and
  /// drops the task) if the pool is shutting down.
  bool submit(std::function<void()> task) DHYFD_EXCLUDES(mu_);

  /// Non-blocking enqueue; false if the queue is full or shutting down.
  bool try_submit(std::function<void()> task) DHYFD_EXCLUDES(mu_);

  /// Runs `shards` invocations of `body(shard)` for shard in [0, shards),
  /// each exactly once, using up to `parallelism` threads including the
  /// caller. Blocks until every shard has finished.
  ///
  /// Execution is help-first: the caller claims shards from a shared counter
  /// itself and enlists at most min(shards, parallelism) - 1 idle workers as
  /// helpers via try_submit. Because the caller alone can finish all shards,
  /// nesting run_shards inside a pool task cannot deadlock, and because
  /// helpers are capped by idle_threads() a parallel job never oversubscribes
  /// the pool. With parallelism <= 1 (or no idle workers) this degenerates to
  /// a plain sequential loop on the caller.
  ///
  /// Per shard, `span_name` (a string literal; nullptr = no span) is recorded
  /// as a TraceSpan under the caller's trace id — helper tickets go through
  /// the normal trace-context capture, so shards join the request trace.
  /// Counter deltas emitted by shards on helper threads (ObsAdd) are buffered
  /// and replayed on the caller thread after the join, so the caller's sink
  /// chain (TelemetrySink, CostLedgerScope) sees exactly the deltas a
  /// sequential run would have produced, plus one "pool.shard_cpu_ns" counter
  /// charging helper-thread CPU to the caller's ledger.
  ///
  /// If a shard throws, remaining unclaimed shards are skipped and the first
  /// exception is rethrown on the caller after all claimed shards finish.
  void run_shards(int parallelism, std::size_t shards,
                  const std::function<void(std::size_t)>& body,
                  const char* span_name = nullptr) DHYFD_EXCLUDES(mu_);

  /// Convenience over run_shards: splits [0, n) into min(parallelism, n)
  /// near-equal contiguous chunks and runs `body(shard, begin, end)` for
  /// each. Chunking is a pure function of (n, parallelism), never of thread
  /// timing, so a fixed parallelism degree always produces the same shard
  /// boundaries — the first half of the parallel ≡ sequential argument.
  void parallel_for(
      std::size_t n, int parallelism,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
      const char* span_name = nullptr) DHYFD_EXCLUDES(mu_);

  /// The contiguous [begin, end) range of shard `s` out of `shards` over n
  /// items: the first n % shards shards get one extra item.
  static std::pair<std::size_t, std::size_t> ShardRange(std::size_t n,
                                                        std::size_t shards,
                                                        std::size_t s);

  /// Stops accepting tasks, runs everything already queued, joins the
  /// workers. Idempotent and safe to call from multiple threads (but not
  /// from inside a pool task).
  void shutdown() DHYFD_EXCLUDES(mu_);

  /// Replaces the exception handler invoked (on the worker thread) when a
  /// task throws. Must be called before tasks that may throw are submitted.
  void set_exception_handler(std::function<void(std::exception_ptr)> handler)
      DHYFD_EXCLUDES(mu_);

  int num_threads() const DHYFD_EXCLUDES(mu_);
  std::size_t queue_depth() const DHYFD_EXCLUDES(mu_);
  /// Workers with no task running and none queued for them — the number of
  /// helper slots run_shards may claim right now. Advisory: the value can be
  /// stale by the time the caller acts on it.
  std::size_t idle_threads() const DHYFD_EXCLUDES(mu_);
  std::int64_t tasks_executed() const DHYFD_EXCLUDES(mu_);
  std::int64_t exceptions_caught() const DHYFD_EXCLUDES(mu_);
  /// what() of the first task exception the default handler saw ("" if none).
  std::string first_exception_message() const DHYFD_EXCLUDES(mu_);

 private:
  void worker_loop() DHYFD_EXCLUDES(mu_);
  void default_exception_handler(std::exception_ptr e) DHYFD_EXCLUDES(mu_);
  /// Shared tail of submit()/try_submit(): wraps the task with the caller's
  /// trace context and enqueues it.
  void enqueue_locked(std::function<void()> task) DHYFD_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar not_empty_;  // workers wait: task available / stop
  CondVar not_full_;   // producers wait: queue has room
  std::deque<std::function<void()>> queue_ DHYFD_GUARDED_BY(mu_);
  const std::size_t max_queue_;
  bool stopping_ DHYFD_GUARDED_BY(mu_) = false;
  bool joined_ DHYFD_GUARDED_BY(mu_) = false;
  std::size_t busy_workers_ DHYFD_GUARDED_BY(mu_) = 0;
  std::int64_t tasks_executed_ DHYFD_GUARDED_BY(mu_) = 0;
  std::int64_t exceptions_caught_ DHYFD_GUARDED_BY(mu_) = 0;
  std::string first_exception_message_ DHYFD_GUARDED_BY(mu_);
  std::function<void(std::exception_ptr)> exception_handler_
      DHYFD_GUARDED_BY(mu_);
  // Filled by the constructor (before any concurrency; TSA exempts
  // constructors) and swapped out by the single shutdown() winner.
  std::vector<std::thread> workers_ DHYFD_GUARDED_BY(mu_);
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_THREAD_POOL_H_
