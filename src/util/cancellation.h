#ifndef DHYFD_UTIL_CANCELLATION_H_
#define DHYFD_UTIL_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace dhyfd {

/// A shared, sticky cancellation flag. One side (e.g. a JobHandle) calls
/// cancel(); the other side (a discovery run) polls cancelled() at loop
/// boundaries and abandons the run, exactly like a fired Deadline.
class CancelToken {
 public:
  void cancel() { flag_.store(true, std::memory_order_release); }
  bool cancelled() const { return flag_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> flag_{false};
};

using CancelTokenPtr = std::shared_ptr<CancelToken>;

/// Binds a token as the calling thread's current cancellation context for
/// the lifetime of the scope. Every Deadline constructed on this thread
/// while the scope is alive observes the token, so the existing expired()
/// polls inside the discovery algorithms double as cancellation polls —
/// no per-algorithm plumbing required. Scopes nest; the previous binding
/// is restored on destruction.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken* token) : prev_(current_) {
    current_ = token;
  }
  ~CancelScope() { current_ = prev_; }

  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

  /// The token bound to this thread, or nullptr outside any scope.
  static const CancelToken* Current() { return current_; }

 private:
  static thread_local const CancelToken* current_;
  const CancelToken* prev_;
};

inline thread_local const CancelToken* CancelScope::current_ = nullptr;

}  // namespace dhyfd

#endif  // DHYFD_UTIL_CANCELLATION_H_
