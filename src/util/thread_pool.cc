#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/cost_ledger.h"
#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"

namespace dhyfd {

namespace {

/// Trace-context propagation: a task submitted from a traced context (a
/// job's worker fanning out, a traced main thread) runs under the same
/// trace id on whichever worker picks it up. Free when no context is set.
std::function<void()> CaptureTraceContext(std::function<void()> task) {
  std::uint64_t trace_id = CurrentTraceId();
  if (trace_id == 0) return task;
  return [trace_id, task = std::move(task)] {
    TraceIdScope scope(trace_id);
    task();
  };
}

/// Per-helper counter buffer: shards on helper threads record into this
/// instead of the (single-threaded) per-job sink chain; run_shards replays
/// the coalesced deltas on the caller thread after the join. Names are
/// string literals, so coalescing compares pointers.
class DeltaBuffer : public ObsSink {
 public:
  void add(const char* name, std::int64_t delta) override {
    for (auto& [n, d] : deltas_) {
      if (n == name) {
        d += delta;
        return;
      }
    }
    deltas_.emplace_back(name, delta);
  }

  std::vector<std::pair<const char*, std::int64_t>>& deltas() {
    return deltas_;
  }

 private:
  std::vector<std::pair<const char*, std::int64_t>> deltas_;
};

}  // namespace

ThreadPool::ThreadPool(int num_threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  exception_handler_ = [this](std::exception_ptr e) {
    default_exception_handler(e);
  };
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue_locked(std::function<void()> task) {
  queue_.push_back(CaptureTraceContext(std::move(task)));
  not_empty_.notify_one();
}

bool ThreadPool::submit(std::function<void()> task) {
  MutexLock lock(&mu_);
  while (!stopping_ && max_queue_ != 0 && queue_.size() >= max_queue_) {
    not_full_.wait(lock);
  }
  if (stopping_) return false;
  enqueue_locked(std::move(task));
  return true;
}

bool ThreadPool::try_submit(std::function<void()> task) {
  MutexLock lock(&mu_);
  if (stopping_) return false;
  if (max_queue_ != 0 && queue_.size() >= max_queue_) return false;
  enqueue_locked(std::move(task));
  return true;
}

void ThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
    if (joined_) return;
    joined_ = true;
    to_join.swap(workers_);
  }
  for (std::thread& w : to_join) w.join();
}

int ThreadPool::num_threads() const {
  MutexLock lock(&mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::set_exception_handler(
    std::function<void(std::exception_ptr)> handler) {
  MutexLock lock(&mu_);
  exception_handler_ = std::move(handler);
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

std::size_t ThreadPool::idle_threads() const {
  MutexLock lock(&mu_);
  std::size_t committed = busy_workers_ + queue_.size();
  return workers_.size() > committed ? workers_.size() - committed : 0;
}

std::pair<std::size_t, std::size_t> ThreadPool::ShardRange(std::size_t n,
                                                           std::size_t shards,
                                                           std::size_t s) {
  std::size_t base = n / shards;
  std::size_t extra = n % shards;
  std::size_t begin = s * base + std::min(s, extra);
  std::size_t end = begin + base + (s < extra ? 1 : 0);
  return {begin, end};
}

void ThreadPool::run_shards(int parallelism, std::size_t shards,
                            const std::function<void(std::size_t)>& body,
                            const char* span_name) {
  if (shards == 0) return;

  struct State {
    Mutex mu;
    CondVar helpers_done;
    int helpers_active DHYFD_GUARDED_BY(mu) = 0;
    std::exception_ptr error DHYFD_GUARDED_BY(mu);
    std::vector<std::pair<const char*, std::int64_t>> deltas
        DHYFD_GUARDED_BY(mu);
    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
  };
  State state;

  // Claims shards until the counter runs out (or a shard threw somewhere).
  // Runs on the caller and on every helper; each shard index is handed out
  // exactly once by the fetch_add.
  auto drain = [&state, &body, span_name, shards] {
    for (;;) {
      if (state.abort.load(std::memory_order_relaxed)) return;
      std::size_t shard = state.next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      try {
        TraceSpan span(span_name != nullptr ? span_name : kObsPoolShard);
        body(shard);
      } catch (...) {
        state.abort.store(true, std::memory_order_relaxed);
        MutexLock lock(&state.mu);
        if (!state.error) state.error = std::current_exception();
        return;
      }
    }
  };

  // Enlist idle workers, capped so caller + helpers <= parallelism. Helpers
  // are strictly optional — if the queue is full, the pool is stopping, or
  // every worker is busy, the caller just runs all shards itself.
  std::size_t helpers_wanted = 0;
  if (parallelism > 1 && shards > 1) {
    helpers_wanted = std::min({shards, static_cast<std::size_t>(parallelism),
                               idle_threads() + 1}) -
                     1;
  }
  for (std::size_t h = 0; h < helpers_wanted; ++h) {
    {
      MutexLock lock(&state.mu);
      ++state.helpers_active;
    }
    bool queued = try_submit([&state, &drain] {
      DeltaBuffer buffer;
      std::int64_t cpu_start = CurrentThreadCpuNs();
      {
        ObsScope scope(&buffer);
        drain();
      }
      buffer.add(kObsPoolShardCpuNs, CurrentThreadCpuNs() - cpu_start);
      MutexLock lock(&state.mu);
      for (auto& d : buffer.deltas()) state.deltas.push_back(d);
      --state.helpers_active;
      state.helpers_done.notify_all();
    });
    if (!queued) {
      MutexLock lock(&state.mu);
      --state.helpers_active;
      break;
    }
  }

  // The caller thread already carries the job's sink chain — no buffering.
  drain();

  std::exception_ptr error;
  std::vector<std::pair<const char*, std::int64_t>> deltas;
  {
    MutexLock lock(&state.mu);
    while (state.helpers_active > 0) state.helpers_done.wait(lock);
    error = state.error;
    deltas.swap(state.deltas);
  }
  // Replay helper-side counters on the caller thread so the per-job sink
  // chain (TelemetrySink, CostLedgerScope) aggregates them — even when a
  // shard threw, the work that did happen stays accounted.
  for (const auto& [name, delta] : deltas) ObsAdd(name, delta);
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(
    std::size_t n, int parallelism,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    const char* span_name) {
  if (n == 0) return;
  std::size_t shards = std::min(n, static_cast<std::size_t>(
                                       std::max(1, parallelism)));
  run_shards(
      parallelism, shards,
      [&body, n, shards](std::size_t s) {
        auto [begin, end] = ShardRange(n, shards, s);
        body(s, begin, end);
      },
      span_name);
}

std::int64_t ThreadPool::tasks_executed() const {
  MutexLock lock(&mu_);
  return tasks_executed_;
}

std::int64_t ThreadPool::exceptions_caught() const {
  MutexLock lock(&mu_);
  return exceptions_caught_;
}

std::string ThreadPool::first_exception_message() const {
  MutexLock lock(&mu_);
  return first_exception_message_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::function<void(std::exception_ptr)> handler;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) not_empty_.wait(lock);
      // Graceful shutdown: keep draining queued tasks even when stopping.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      handler = exception_handler_;
      ++busy_workers_;
      not_full_.notify_one();
    }
    try {
      task();
    } catch (...) {
      handler(std::current_exception());
    }
    MutexLock lock(&mu_);
    --busy_workers_;
    ++tasks_executed_;
  }
}

void ThreadPool::default_exception_handler(std::exception_ptr e) {
  std::string message = "unknown exception";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    message = ex.what();
  } catch (...) {
  }
  MutexLock lock(&mu_);
  ++exceptions_caught_;
  if (first_exception_message_.empty()) first_exception_message_ = message;
}

}  // namespace dhyfd

