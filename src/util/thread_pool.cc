#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"

namespace dhyfd {

namespace {

/// Trace-context propagation: a task submitted from a traced context (a
/// job's worker fanning out, a traced main thread) runs under the same
/// trace id on whichever worker picks it up. Free when no context is set.
std::function<void()> CaptureTraceContext(std::function<void()> task) {
  std::uint64_t trace_id = CurrentTraceId();
  if (trace_id == 0) return task;
  return [trace_id, task = std::move(task)] {
    TraceIdScope scope(trace_id);
    task();
  };
}

}  // namespace

ThreadPool::ThreadPool(int num_threads, std::size_t max_queue)
    : max_queue_(max_queue) {
  exception_handler_ = [this](std::exception_ptr e) {
    default_exception_handler(e);
  };
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::enqueue_locked(std::function<void()> task) {
  queue_.push_back(CaptureTraceContext(std::move(task)));
  not_empty_.notify_one();
}

bool ThreadPool::submit(std::function<void()> task) {
  MutexLock lock(&mu_);
  while (!stopping_ && max_queue_ != 0 && queue_.size() >= max_queue_) {
    not_full_.wait(lock);
  }
  if (stopping_) return false;
  enqueue_locked(std::move(task));
  return true;
}

bool ThreadPool::try_submit(std::function<void()> task) {
  MutexLock lock(&mu_);
  if (stopping_) return false;
  if (max_queue_ != 0 && queue_.size() >= max_queue_) return false;
  enqueue_locked(std::move(task));
  return true;
}

void ThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    MutexLock lock(&mu_);
    stopping_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
    if (joined_) return;
    joined_ = true;
    to_join.swap(workers_);
  }
  for (std::thread& w : to_join) w.join();
}

int ThreadPool::num_threads() const {
  MutexLock lock(&mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::set_exception_handler(
    std::function<void(std::exception_ptr)> handler) {
  MutexLock lock(&mu_);
  exception_handler_ = std::move(handler);
}

std::size_t ThreadPool::queue_depth() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

std::int64_t ThreadPool::tasks_executed() const {
  MutexLock lock(&mu_);
  return tasks_executed_;
}

std::int64_t ThreadPool::exceptions_caught() const {
  MutexLock lock(&mu_);
  return exceptions_caught_;
}

std::string ThreadPool::first_exception_message() const {
  MutexLock lock(&mu_);
  return first_exception_message_;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::function<void(std::exception_ptr)> handler;
    {
      MutexLock lock(&mu_);
      while (!stopping_ && queue_.empty()) not_empty_.wait(lock);
      // Graceful shutdown: keep draining queued tasks even when stopping.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      handler = exception_handler_;
      not_full_.notify_one();
    }
    try {
      task();
    } catch (...) {
      handler(std::current_exception());
    }
    MutexLock lock(&mu_);
    ++tasks_executed_;
  }
}

void ThreadPool::default_exception_handler(std::exception_ptr e) {
  std::string message = "unknown exception";
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    message = ex.what();
  } catch (...) {
  }
  MutexLock lock(&mu_);
  ++exceptions_caught_;
  if (first_exception_message_.empty()) first_exception_message_ = message;
}

}  // namespace dhyfd

