#include "util/memory.h"

#include <cstdio>
#include <cstring>

namespace dhyfd {

namespace {

// Reads a "Vm...: <kB> kB" field from /proc/self/status. Returns bytes.
size_t ReadStatusField(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t result = 0;
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      long kb = 0;
      if (std::sscanf(line + field_len, ": %ld", &kb) == 1 && kb > 0) {
        result = static_cast<size_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return result;
}

}  // namespace

size_t CurrentRssBytes() { return ReadStatusField("VmRSS"); }

size_t PeakRssBytes() { return ReadStatusField("VmHWM"); }

}  // namespace dhyfd
