#include "util/memory.h"

#include <dirent.h>

#include <cstdio>
#include <cstring>

namespace dhyfd {

namespace {

// Reads a "Vm...: <kB> kB" field from /proc/self/status. Returns bytes.
size_t ReadStatusField(const char* field) {
  FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t result = 0;
  size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0) {
      long kb = 0;
      if (std::sscanf(line + field_len, ": %ld", &kb) == 1 && kb > 0) {
        result = static_cast<size_t>(kb) * 1024;
      }
      break;
    }
  }
  std::fclose(f);
  return result;
}

}  // namespace

size_t CurrentRssBytes() { return ReadStatusField("VmRSS"); }

size_t PeakRssBytes() { return ReadStatusField("VmHWM"); }

size_t CurrentOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* entry = readdir(dir)) {
    if (entry->d_name[0] == '.') continue;  // "." and ".."
    ++count;
  }
  closedir(dir);
  // The directory fd used for the walk itself is still open while counting.
  return count > 0 ? count - 1 : 0;
}

}  // namespace dhyfd
