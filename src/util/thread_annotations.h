#ifndef DHYFD_UTIL_THREAD_ANNOTATIONS_H_
#define DHYFD_UTIL_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (Abseil-style), compiled to
/// nothing on other compilers. Together with the `Mutex` / `MutexLock` /
/// `CondVar` shims in util/mutex.h they make the repo's lock discipline a
/// compile-time proof: `cmake -DDHYFD_THREAD_SAFETY=ON` (Clang only) turns
/// every violation into an error via `-Werror=thread-safety`.
///
/// Conventions (see DESIGN.md "Static analysis & lock discipline"):
///   - every mutex-guarded member carries DHYFD_GUARDED_BY(mu_);
///   - a private helper that expects the lock held is named `FooLocked()`
///     and carries DHYFD_REQUIRES(mu_);
///   - public entry points that take the lock themselves carry
///     DHYFD_EXCLUDES(mu_) when calling them with the lock held would
///     self-deadlock.

#if defined(__clang__) && (!defined(SWIG))
#define DHYFD_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DHYFD_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

/// Marks a class as a lockable capability (our Mutex shim).
#define DHYFD_CAPABILITY(x) DHYFD_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define DHYFD_LOCKABLE DHYFD_CAPABILITY("mutex")

/// Marks an RAII class whose constructor acquires and destructor releases.
#define DHYFD_SCOPED_LOCKABLE DHYFD_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data members: may only be read/written with the given mutex held.
#define DHYFD_GUARDED_BY(x) DHYFD_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
/// Pointer members: the pointee (not the pointer) is guarded.
#define DHYFD_PT_GUARDED_BY(x) DHYFD_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Functions: the caller must hold the given mutex(es) — the `FooLocked()`
/// contract.
#define DHYFD_REQUIRES(...) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
/// Functions: the caller must NOT hold the given mutex(es) (they acquire it
/// themselves; calling with it held would self-deadlock).
#define DHYFD_EXCLUDES(...) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Lock-management functions on the capability itself.
#define DHYFD_ACQUIRE(...) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define DHYFD_RELEASE(...) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define DHYFD_TRY_ACQUIRE(...) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Asserts (at analysis time) that the capability is held — for the rare
/// spot where the analysis cannot see the acquisition.
#define DHYFD_ASSERT_CAPABILITY(x) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

/// The documented escape hatch. Every use must carry a comment saying why
/// the analysis cannot prove the access (e.g. publication via atomics).
#define DHYFD_NO_THREAD_SAFETY_ANALYSIS \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

/// Function returns a reference to the given capability (lock accessors).
#define DHYFD_RETURN_CAPABILITY(x) \
  DHYFD_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#endif  // DHYFD_UTIL_THREAD_ANNOTATIONS_H_
