#ifndef DHYFD_UTIL_ATTRIBUTE_SET_H_
#define DHYFD_UTIL_ATTRIBUTE_SET_H_

#include <array>
#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace dhyfd {

/// Identifies a column (attribute) of a relation schema. Attributes are the
/// integers 0..n-1 in schema order, matching the paper's convention that a
/// total order on the schema lets positive integers identify columns.
using AttrId = int;

/// A set of attributes, represented as a fixed-capacity 256-bit bitset.
///
/// 256 bits comfortably covers every schema in the paper's benchmark suite
/// (the widest, flight, has 109 columns). All lattice operations used by the
/// discovery algorithms (subset tests, unions, iteration in ascending
/// attribute order) are word-parallel.
class AttributeSet {
 public:
  static constexpr int kCapacity = 256;
  static constexpr int kWords = kCapacity / 64;

  constexpr AttributeSet() : words_{} {}

  AttributeSet(std::initializer_list<AttrId> attrs) : words_{} {
    for (AttrId a : attrs) set(a);
  }

  /// Returns the set {0, 1, ..., n-1}, i.e., a full schema of n attributes.
  static AttributeSet full(int n) {
    AttributeSet s;
    for (int w = 0; w < kWords; ++w) {
      if (n >= (w + 1) * 64) {
        s.words_[w] = ~uint64_t{0};
      } else if (n > w * 64) {
        s.words_[w] = (uint64_t{1} << (n - w * 64)) - 1;
      }
    }
    return s;
  }

  /// Returns the singleton set {a}.
  static AttributeSet single(AttrId a) {
    AttributeSet s;
    s.set(a);
    return s;
  }

  void set(AttrId a) { words_[word(a)] |= bit(a); }
  void reset(AttrId a) { words_[word(a)] &= ~bit(a); }
  bool test(AttrId a) const { return (words_[word(a)] & bit(a)) != 0; }
  void clear() { words_.fill(0); }

  bool empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Number of attributes in the set.
  int count() const {
    int c = 0;
    for (uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  /// Smallest attribute in the set, or -1 if empty.
  AttrId first() const {
    for (int w = 0; w < kWords; ++w) {
      if (words_[w] != 0) return w * 64 + std::countr_zero(words_[w]);
    }
    return -1;
  }

  /// Largest attribute in the set, or -1 if empty.
  AttrId last() const {
    for (int w = kWords - 1; w >= 0; --w) {
      if (words_[w] != 0) return w * 64 + 63 - std::countl_zero(words_[w]);
    }
    return -1;
  }

  /// Smallest attribute strictly greater than a, or -1 if none.
  AttrId next(AttrId a) const {
    int w = word(a + 1);
    if (a + 1 >= kCapacity) return -1;
    uint64_t cur = words_[w] & ~((bit(a + 1)) - 1);
    if (cur != 0) return w * 64 + std::countr_zero(cur);
    for (++w; w < kWords; ++w) {
      if (words_[w] != 0) return w * 64 + std::countr_zero(words_[w]);
    }
    return -1;
  }

  bool is_subset_of(const AttributeSet& other) const {
    for (int w = 0; w < kWords; ++w) {
      if ((words_[w] & ~other.words_[w]) != 0) return false;
    }
    return true;
  }

  bool intersects(const AttributeSet& other) const {
    for (int w = 0; w < kWords; ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  AttributeSet operator|(const AttributeSet& o) const {
    AttributeSet r;
    for (int w = 0; w < kWords; ++w) r.words_[w] = words_[w] | o.words_[w];
    return r;
  }

  AttributeSet operator&(const AttributeSet& o) const {
    AttributeSet r;
    for (int w = 0; w < kWords; ++w) r.words_[w] = words_[w] & o.words_[w];
    return r;
  }

  /// Set difference: attributes in this set but not in o.
  AttributeSet operator-(const AttributeSet& o) const {
    AttributeSet r;
    for (int w = 0; w < kWords; ++w) r.words_[w] = words_[w] & ~o.words_[w];
    return r;
  }

  AttributeSet& operator|=(const AttributeSet& o) {
    for (int w = 0; w < kWords; ++w) words_[w] |= o.words_[w];
    return *this;
  }

  AttributeSet& operator&=(const AttributeSet& o) {
    for (int w = 0; w < kWords; ++w) words_[w] &= o.words_[w];
    return *this;
  }

  AttributeSet& operator-=(const AttributeSet& o) {
    for (int w = 0; w < kWords; ++w) words_[w] &= ~o.words_[w];
    return *this;
  }

  /// Complement within a schema of n attributes.
  AttributeSet complement(int n) const { return full(n) - *this; }

  bool operator==(const AttributeSet& o) const { return words_ == o.words_; }
  bool operator!=(const AttributeSet& o) const { return words_ != o.words_; }

  /// Lexicographic order on the bit words; a total order usable as a map key.
  bool operator<(const AttributeSet& o) const {
    for (int w = kWords - 1; w >= 0; --w) {
      if (words_[w] != o.words_[w]) return words_[w] < o.words_[w];
    }
    return false;
  }

  /// Invokes fn(AttrId) for every attribute in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (int w = 0; w < kWords; ++w) {
      uint64_t cur = words_[w];
      while (cur != 0) {
        fn(static_cast<AttrId>(w * 64 + std::countr_zero(cur)));
        cur &= cur - 1;
      }
    }
  }

  size_t hash() const {
    // 64-bit FNV-1a over the words; adequate for hash-map bucketing.
    uint64_t h = 1469598103934665603ull;
    for (uint64_t w : words_) {
      h ^= w;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }

  /// Renders as e.g. "{0,3,7}"; for debugging and test failure messages.
  std::string to_string() const {
    std::string s = "{";
    bool fst = true;
    for_each([&](AttrId a) {
      if (!fst) s += ',';
      s += std::to_string(a);
      fst = false;
    });
    s += '}';
    return s;
  }

 private:
  static constexpr int word(AttrId a) { return a >> 6; }
  static constexpr uint64_t bit(AttrId a) { return uint64_t{1} << (a & 63); }

  std::array<uint64_t, kWords> words_;
};

struct AttributeSetHash {
  size_t operator()(const AttributeSet& s) const { return s.hash(); }
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_ATTRIBUTE_SET_H_
