#ifndef DHYFD_UTIL_TIMER_H_
#define DHYFD_UTIL_TIMER_H_

#include <chrono>

namespace dhyfd {

/// Wall-clock stopwatch used by discovery statistics and the bench harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dhyfd

#endif  // DHYFD_UTIL_TIMER_H_
