#ifndef DHYFD_ALGO_DHYFD_H_
#define DHYFD_ALGO_DHYFD_H_

#include "algo/discovery.h"

namespace dhyfd {

class ThreadPool;

struct DhyfdOptions {
  /// The efficiency-inefficiency ratio above which the DDM refreshes its
  /// dynamic partitions (paper Section IV-G; Figure 6 tunes this — 3.0 is
  /// the value the paper settles on).
  double ratio_threshold = 3.0;
  /// Neighborhood windows for the one-off initial sampling (paper line 5 of
  /// Algorithm 6: sampling is performed only once).
  int initial_sampling_windows = 3;
  /// If false, the DDM never refreshes: every validation starts from a
  /// single-attribute partition. For the E12 ablation bench.
  bool enable_ddm = true;
  /// Error threshold for approximate FDs: a candidate X -> A holds when its
  /// g3 removal count stays within floor(epsilon * |r|). With epsilon > 0
  /// the sampling phase is skipped — a single violating pair refutes only
  /// exact FDs — and failed candidates are specialized directly; soundness
  /// of the tree traversal follows from the measure's anti-monotonicity.
  /// 0 runs the exact hybrid path unchanged.
  double epsilon = 0;
  /// Precise LHS arity bound (0 = unbounded): the level loop stops after
  /// validating LHSs of max_lhs attributes and deeper speculative FDs are
  /// dropped from the collected cover.
  int max_lhs = 0;
  /// Cooperative deadline in seconds (0 = none).
  double time_limit_seconds = 0;
  /// Threads used within this run, including the calling thread (<= 1 =
  /// sequential). Effective only with a worker_pool; the cover is
  /// bit-identical to the sequential one at any degree (see DESIGN.md,
  /// "Parallel discovery").
  int parallelism = 1;
  /// Pool to fan validation/sampling/DDM shards out over. Not owned; may be
  /// shared with other jobs (shards are claimed help-first, so a busy pool
  /// degrades to sequential instead of deadlocking).
  ThreadPool* worker_pool = nullptr;
};

/// DHyFD (paper Algorithm 6): the dynamic hybrid FD-discovery algorithm.
///
/// Column-based traversal of an extended FD-tree, with a dynamic data
/// manager that refines stripped partitions to the current controlled level
/// whenever the efficiency-inefficiency ratio says many FDs are likely
/// valid. Validation (Algorithm 4) extracts non-FDs as it works; synergized
/// induction (Algorithm 2) applies them to the tree.
class Dhyfd : public FdDiscovery {
 public:
  explicit Dhyfd(DhyfdOptions options = {}) : options_(options) {}
  std::string name() const override { return "dhyfd"; }
  DiscoveryResult discover(const Relation& r) override;

 private:
  DhyfdOptions options_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_DHYFD_H_
