#ifndef DHYFD_ALGO_HYFD_H_
#define DHYFD_ALGO_HYFD_H_

#include "algo/discovery.h"

namespace dhyfd {

class ThreadPool;

struct HyfdOptions {
  /// Sampling runs stop once (new non-FDs / comparisons) drops below this.
  double sampling_efficiency_threshold = 0.01;
  /// After a validation level invalidates more than this fraction of its
  /// candidates, HyFD switches back to the sampling phase.
  double validation_switch_threshold = 0.2;
  /// Cap on sampling window growth per sampling phase.
  int max_windows_per_phase = 4;
  /// Cooperative deadline in seconds (0 = none).
  double time_limit_seconds = 0;
  /// Threads used within this run, including the calling thread (<= 1 =
  /// sequential). Effective only with a worker_pool; the cover is
  /// bit-identical to the sequential one at any degree.
  int parallelism = 1;
  /// Pool to fan validation/sampling shards out over (not owned).
  ThreadPool* worker_pool = nullptr;
};

/// HyFD (Papenbrock & Naumann 2016): the sampling-focused hybrid baseline.
///
/// Alternates a sorted-neighborhood sampling phase (harvesting non-FDs,
/// inducted into an FD-tree) with a validation phase that checks the tree's
/// candidates level by level against single-attribute stripped partitions.
/// Unlike DHyFD it never reuses refined partitions across levels, so LHS
/// values are recomputed redundantly — the inefficiency the paper's DDM
/// removes. As in the paper's experiments, this implementation uses
/// synergized induction on extended FD-trees ("our implementation of HyFD
/// uses synergized induction and performs better than the best known
/// bounds").
class Hyfd : public FdDiscovery {
 public:
  explicit Hyfd(HyfdOptions options = {}) : options_(options) {}
  std::string name() const override { return "hyfd"; }
  DiscoveryResult discover(const Relation& r) override;

 private:
  HyfdOptions options_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_HYFD_H_
