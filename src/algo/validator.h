#ifndef DHYFD_ALGO_VALIDATOR_H_
#define DHYFD_ALGO_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "partition/partition_ops.h"
#include "relation/relation.h"
#include "util/attribute_set.h"

namespace dhyfd {

/// Result of validating one candidate FD X -> Y (paper Algorithm 4).
struct ValidationOutcome {
  /// RHS attributes that survived: X -> valid_rhs holds on r.
  AttributeSet valid_rhs;
  /// Agree sets Z of witnessing violation pairs; each implies the non-FD
  /// Z !-> R - Z. At most |Y| entries: a pair is recorded only when it
  /// knocks out at least one still-valid RHS attribute.
  std::vector<AttributeSet> violations;
  int64_t pairs_checked = 0;
  int64_t refinements = 0;
};

/// Validates X -> Y from a stripped partition pi_{X'} with X' subseteq X.
///
/// Refines one equivalence class at a time by the attributes X - X'
/// (Algorithm 5 via `refiner`) so an invalid FD aborts early without paying
/// for the full pi_X. This combination of validation with non-FD extraction
/// is the DDM's validation primitive.
ValidationOutcome ValidateWithPartition(const Relation& r, const AttributeSet& lhs,
                                        const AttributeSet& rhs,
                                        const StrippedPartition& base,
                                        const AttributeSet& base_attrs,
                                        PartitionRefiner& refiner);

/// Approximate form: X -> A survives while its g3 removal count (minimum
/// tuples to delete so the FD holds exactly) stays <= budget; budget == 0
/// accepts exactly the FDs the exact validator accepts.
///
/// Unlike the exact form this records no violation agree sets — one
/// violating pair refutes an exact FD but says nothing about an approximate
/// one, so callers must refute failed candidates wholesale (induct the
/// failed LHS against rhs - valid_rhs) rather than from sampled pairs.
ValidationOutcome ValidateApproxWithPartition(const Relation& r,
                                              const AttributeSet& lhs,
                                              const AttributeSet& rhs,
                                              const StrippedPartition& base,
                                              const AttributeSet& base_attrs,
                                              PartitionRefiner& refiner,
                                              int64_t budget);

}  // namespace dhyfd

#endif  // DHYFD_ALGO_VALIDATOR_H_
