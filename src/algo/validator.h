#ifndef DHYFD_ALGO_VALIDATOR_H_
#define DHYFD_ALGO_VALIDATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "partition/partition_ops.h"
#include "relation/relation.h"
#include "util/attribute_set.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// Result of validating one candidate FD X -> Y (paper Algorithm 4).
struct ValidationOutcome {
  /// RHS attributes that survived: X -> valid_rhs holds on r.
  AttributeSet valid_rhs;
  /// Agree sets Z of witnessing violation pairs; each implies the non-FD
  /// Z !-> R - Z. At most |Y| entries: a pair is recorded only when it
  /// knocks out at least one still-valid RHS attribute.
  std::vector<AttributeSet> violations;
  int64_t pairs_checked = 0;
  int64_t refinements = 0;
};

/// Validates X -> Y from a stripped partition pi_{X'} with X' subseteq X.
///
/// Refines one equivalence class at a time by the attributes X - X'
/// (Algorithm 5 via `refiner`) so an invalid FD aborts early without paying
/// for the full pi_X. This combination of validation with non-FD extraction
/// is the DDM's validation primitive.
ValidationOutcome ValidateWithPartition(const Relation& r, const AttributeSet& lhs,
                                        const AttributeSet& rhs,
                                        const StrippedPartition& base,
                                        const AttributeSet& base_attrs,
                                        PartitionRefiner& refiner);

/// Approximate form: X -> A survives while its g3 removal count (minimum
/// tuples to delete so the FD holds exactly) stays <= budget; budget == 0
/// accepts exactly the FDs the exact validator accepts.
///
/// Unlike the exact form this records no violation agree sets — one
/// violating pair refutes an exact FD but says nothing about an approximate
/// one, so callers must refute failed candidates wholesale (induct the
/// failed LHS against rhs - valid_rhs) rather than from sampled pairs.
ValidationOutcome ValidateApproxWithPartition(const Relation& r,
                                              const AttributeSet& lhs,
                                              const AttributeSet& rhs,
                                              const StrippedPartition& base,
                                              const AttributeSet& base_attrs,
                                              PartitionRefiner& refiner,
                                              int64_t budget);

/// One contiguous slice of a validation level's results, accumulated in
/// candidate order by whichever shard processed it.
struct LevelValidationResult {
  /// Violation agree sets, in the order the candidates produced them.
  std::vector<AttributeSet> violations;
  /// Approximate mode: (lhs, refuted rhs) per failed candidate, in order.
  std::vector<std::pair<AttributeSet, AttributeSet>> refuted_fds;
  int64_t validations = 0;
  int64_t pairs_checked = 0;
  int64_t refinements = 0;
  int64_t invalidated = 0;
  bool timed_out = false;

  /// Appends `o` after this slice (vectors concatenate, counters sum).
  void append(LevelValidationResult&& o);
};

/// Mutex-guarded merge point for sharded level validation: each shard adds
/// its slice under its shard index, in whatever order shards finish, and
/// take_merged() concatenates the slices by index — reproducing exactly the
/// sequence a sequential candidate loop would have built. Combined with the
/// total order SortBySizeDescending imposes before induction, this is what
/// makes the parallel cover bit-identical to the sequential one.
class ParFdStorageBuilder {
 public:
  explicit ParFdStorageBuilder(std::size_t shards);

  ParFdStorageBuilder(const ParFdStorageBuilder&) = delete;
  ParFdStorageBuilder& operator=(const ParFdStorageBuilder&) = delete;

  void add(std::size_t shard, LevelValidationResult result)
      DHYFD_EXCLUDES(mu_);

  /// All slices concatenated in shard order. Call once, after every shard
  /// has added (run_shards' join is the barrier).
  LevelValidationResult take_merged() DHYFD_EXCLUDES(mu_);

 private:
  Mutex mu_;
  std::vector<LevelValidationResult> per_shard_ DHYFD_GUARDED_BY(mu_);
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_VALIDATOR_H_
