#ifndef DHYFD_ALGO_VALIDATOR_H_
#define DHYFD_ALGO_VALIDATOR_H_

#include <cstdint>
#include <vector>

#include "partition/partition_ops.h"
#include "relation/relation.h"
#include "util/attribute_set.h"

namespace dhyfd {

/// Result of validating one candidate FD X -> Y (paper Algorithm 4).
struct ValidationOutcome {
  /// RHS attributes that survived: X -> valid_rhs holds on r.
  AttributeSet valid_rhs;
  /// Agree sets Z of witnessing violation pairs; each implies the non-FD
  /// Z !-> R - Z. At most |Y| entries: a pair is recorded only when it
  /// knocks out at least one still-valid RHS attribute.
  std::vector<AttributeSet> violations;
  int64_t pairs_checked = 0;
  int64_t refinements = 0;
};

/// Validates X -> Y from a stripped partition pi_{X'} with X' subseteq X.
///
/// Refines one equivalence class at a time by the attributes X - X'
/// (Algorithm 5 via `refiner`) so an invalid FD aborts early without paying
/// for the full pi_X. This combination of validation with non-FD extraction
/// is the DDM's validation primitive.
ValidationOutcome ValidateWithPartition(const Relation& r, const AttributeSet& lhs,
                                        const AttributeSet& rhs,
                                        const StrippedPartition& base,
                                        const AttributeSet& base_attrs,
                                        PartitionRefiner& refiner);

}  // namespace dhyfd

#endif  // DHYFD_ALGO_VALIDATOR_H_
