#include "algo/tane.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "partition/partition_ops.h"
#include "util/deadline.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

struct LevelEntry {
  AttributeSet attrs;
  AttributeSet cplus;  // TANE's C+(X): still-possible RHS attributes
  StrippedPartition partition;
  int64_t error = 0;  // e(X) = ||pi_X|| - |pi_X|
};

using Level = std::vector<LevelEntry>;
using LevelIndex = std::unordered_map<AttributeSet, int, AttributeSetHash>;

// Persistent store of every C+(X) computed so far. The key-pruning rule
// needs C+ of sibling sets that may have been deleted — or never generated
// because an ancestor was a key; Huhtala et al. define those recursively as
// the intersection of the C+ of all |X|-1-subsets (memoized here).
class CplusStore {
 public:
  explicit CplusStore(int num_attrs) {
    memo_.emplace(AttributeSet(), AttributeSet::full(num_attrs));
  }

  void put(const AttributeSet& s, const AttributeSet& cplus) { memo_[s] = cplus; }

  AttributeSet get(const AttributeSet& s) {
    auto it = memo_.find(s);
    if (it != memo_.end()) return it->second;
    AttributeSet cplus = AttributeSet::full(AttributeSet::kCapacity);
    s.for_each([&](AttrId c) {
      AttributeSet sub = s;
      sub.reset(c);
      cplus &= get(sub);
    });
    memo_.emplace(s, cplus);
    return cplus;
  }

  size_t memory_bytes() const {
    return memo_.size() * (2 * sizeof(AttributeSet) + 2 * sizeof(void*));
  }

 private:
  std::unordered_map<AttributeSet, AttributeSet, AttributeSetHash> memo_;
};

}  // namespace

DiscoveryResult Tane::discover(const Relation& r) {
  Timer timer;
  MemoryWatermark mem;
  Deadline deadline(options_.time_limit_seconds);
  DiscoveryResult result;
  const int m = r.num_cols();
  const int64_t empty_error = r.num_rows() > 0 ? r.num_rows() - 1 : 0;
  const AttributeSet all = AttributeSet::full(m);
  // Approximate mode: candidates hold while their g3 removal count stays
  // within the budget. budget == 0 keeps the exact error-comparison test
  // (and skips the prev-level partition retention it would need).
  const int64_t budget = ApproxRemovalBudget(options_.epsilon, r.num_rows());
  const bool approx = budget > 0;
  ApproxErrorCalculator approx_calc(r);

  // One intersector for the whole run: its probe table and output arenas
  // persist across every level-(k+1) product.
  PartitionIntersector intersector(r.num_rows());

  // Level 0 state: C+({}) = R, e({}) = |r| - 1.
  Level level;
  LevelIndex index;
  for (AttrId a = 0; a < m; ++a) {
    LevelEntry e;
    e.attrs = AttributeSet::single(a);
    e.cplus = all;
    e.partition = BuildAttributePartition(r, a);
    e.error = e.partition.error();
    index.emplace(e.attrs, static_cast<int>(level.size()));
    level.push_back(std::move(e));
  }
  CplusStore cplus_store(m);
  // Level-1 dependencies {} -> A (constant columns; under a removal budget,
  // near-constant columns). pi_{} is the single whole-relation class.
  const StrippedPartition whole = StrippedPartition::whole(r.num_rows());
  for (LevelEntry& e : level) {
    ++result.stats.validations;
    AttrId a = e.attrs.first();
    bool valid = approx ? approx_calc.removals(whole, a) <= budget
                        : e.error == empty_error;
    if (valid) {
      result.fds.add(Fd(AttributeSet(), a));
      e.cplus.reset(a);
      // {} -> A valid: remove all B in R - X from C+(X) (X = {A}). This
      // extra pruning relies on exact-FD augmentation, which the g3 measure
      // does not satisfy as an equivalence, so approximate runs keep only
      // the minimality-preserving reset above.
      if (!approx) e.cplus &= e.attrs;
    } else {
      ++result.stats.invalidated;
    }
    cplus_store.put(e.attrs, e.cplus);
  }

  // Errors of the previous level, for the e(X - A) == e(X) test. Approximate
  // runs additionally retain the previous level's partitions: the removal
  // count for X - A -> A is computed from pi_{X-A} and the A column, which
  // the error values alone cannot provide.
  std::unordered_map<AttributeSet, int64_t, AttributeSetHash> prev_errors;
  std::unordered_map<AttributeSet, StrippedPartition, AttributeSetHash>
      prev_partitions;
  prev_errors.emplace(AttributeSet(), empty_error);
  size_t logical_peak = 0;

  int level_num = 1;
  while (!level.empty() && !result.stats.timed_out) {
    TraceSpan level_span(kObsDiscoverValidation);
    result.stats.levels = level_num;
    ObsAdd(kObsDiscoverLatticeLevelEntries, static_cast<int64_t>(level.size()));
    if (level_num >= 2) {
      // compute_dependencies for this level.
      for (LevelEntry& e : level) {
        if (deadline.expired()) {
          result.stats.timed_out = true;
          break;
        }
        AttributeSet check = e.attrs & e.cplus;
        check.for_each([&](AttrId a) {
          AttributeSet x_minus_a = e.attrs;
          x_minus_a.reset(a);
          auto it = prev_errors.find(x_minus_a);
          if (it == prev_errors.end()) return;  // pruned parent
          ++result.stats.validations;
          bool valid;
          if (approx) {
            valid =
                approx_calc.removals(prev_partitions.at(x_minus_a), a) <= budget;
          } else {
            valid = it->second == e.error;
          }
          if (valid) {
            result.fds.add(Fd(x_minus_a, a));
            e.cplus.reset(a);
            // See the level-1 comment: the R - X sweep is exact-only.
            if (!approx) e.cplus -= all - e.attrs;
          } else {
            ++result.stats.invalidated;
          }
        });
        cplus_store.put(e.attrs, e.cplus);
      }
    }

    // Prune: drop X with empty C+; emit key-based FDs and drop superkeys.
    // Key-rule FDs have an LHS of exactly level_num attributes, so the
    // precise arity bound suppresses them on its one extra level.
    const bool emit_key_fds =
        options_.max_lhs == 0 || level_num <= options_.max_lhs;
    Level pruned;
    LevelIndex pruned_index;
    for (LevelEntry& e : level) {
      if (e.cplus.empty()) continue;
      if (e.error == 0) {
        if (!emit_key_fds) continue;
        // X is a (super)key. Huhtala et al.'s key pruning rule: emit X -> A
        // for A in C+(X) - X whenever A survives the C+ of every sibling
        // set (X + {A}) - {B}, B in X; then delete X from the level.
        AttributeSet extra = e.cplus - e.attrs;
        extra.for_each([&](AttrId a) {
          bool emit = true;
          e.attrs.for_each([&](AttrId b) {
            if (!emit) return;
            AttributeSet sibling = e.attrs;
            sibling.reset(b);
            sibling.set(a);
            // Sibling C+ may belong to a set that was deleted or never
            // generated; the store derives it recursively in that case.
            if (!cplus_store.get(sibling).test(a)) emit = false;
          });
          if (emit) {
            ++result.stats.validations;
            result.fds.add(Fd(e.attrs, a));
          }
        });
        continue;  // superkeys never extend to the next level
      }
      pruned_index.emplace(e.attrs, static_cast<int>(pruned.size()));
      pruned.push_back(std::move(e));
    }

    if (options_.max_level > 0 && level_num >= options_.max_level) break;
    // The precise arity bound stops after the level that validates LHSs of
    // exactly max_lhs attributes (level max_lhs + 1), so the cover below the
    // bound is complete.
    if (options_.max_lhs > 0 && level_num > options_.max_lhs) break;

    // generate_next_level via prefix blocks: combine entries that share all
    // attributes except their largest one.
    prev_errors.clear();
    for (const LevelEntry& e : pruned) prev_errors.emplace(e.attrs, e.error);

    std::unordered_map<AttributeSet, std::vector<int>, AttributeSetHash> blocks;
    for (int i = 0; i < static_cast<int>(pruned.size()); ++i) {
      AttributeSet prefix = pruned[i].attrs;
      prefix.reset(pruned[i].attrs.last());
      blocks[prefix].push_back(i);
    }

    Level next;
    LevelIndex next_index;
    for (auto& [prefix, members] : blocks) {
      (void)prefix;
      if (result.stats.timed_out) break;
      for (size_t i = 0; i < members.size(); ++i) {
        for (size_t j = i + 1; j < members.size(); ++j) {
          if (deadline.expired()) {
            result.stats.timed_out = true;
            break;
          }
          const LevelEntry& a = pruned[members[i]];
          const LevelEntry& b = pruned[members[j]];
          AttributeSet xy = a.attrs | b.attrs;
          // All |XY|-1 subsets must have survived pruning.
          bool ok = true;
          AttributeSet cplus = all;
          xy.for_each([&](AttrId c) {
            if (!ok) return;
            AttributeSet sub = xy;
            sub.reset(c);
            auto it = pruned_index.find(sub);
            if (it == pruned_index.end()) {
              ok = false;
            } else {
              cplus &= pruned[it->second].cplus;
            }
          });
          if (!ok || cplus.empty()) continue;
          LevelEntry e;
          e.attrs = xy;
          e.cplus = cplus;
          intersector.intersect(a.partition, b.partition, e.partition);
          e.error = e.partition.error();
          result.stats.refinements += a.partition.size();
          next_index.emplace(xy, static_cast<int>(next.size()));
          next.push_back(std::move(e));
        }
        if (result.stats.timed_out) break;
      }
    }
    mem.sample();
    size_t level_bytes = cplus_store.memory_bytes();
    for (const LevelEntry& e : level) level_bytes += e.partition.memory_bytes();
    for (const LevelEntry& e : next) level_bytes += e.partition.memory_bytes();
    logical_peak = std::max(logical_peak, level_bytes);
    if (approx) {
      // Generation is done with this level's partitions; keep them one more
      // level for the next round's removal counts.
      prev_partitions.clear();
      for (LevelEntry& e : pruned) {
        prev_partitions.emplace(e.attrs, std::move(e.partition));
      }
    }
    level = std::move(next);
    index = std::move(next_index);
    ++level_num;
  }

  result.fds.sort();
  result.stats.seconds = timer.seconds();
  result.stats.memory_mb = std::max(
      mem.delta_peak_mb(), static_cast<double>(logical_peak) / (1024.0 * 1024.0));
  return result;
}

}  // namespace dhyfd
