#include "algo/sampler.h"

#include <algorithm>

#include "obs/obs.h"

namespace dhyfd {

NeighborhoodSampler::NeighborhoodSampler(
    const Relation& r, const std::vector<StrippedPartition>& attr_partitions)
    : rel_(r) {
  const int m = r.num_cols();
  sorted_.resize(m);
  for (AttrId a = 0; a < m; ++a) {
    sorted_[a] = attr_partitions[a];
    for (size_t ci = 0; ci < static_cast<size_t>(sorted_[a].size()); ++ci) {
      std::span<RowId> cluster = sorted_[a].mutable_cluster(ci);
      // Sort by the remaining attributes, wrapping around from a+1, so the
      // neighborhood ordering differs per attribute and covers more pairs.
      std::sort(cluster.begin(), cluster.end(), [&](RowId x, RowId y) {
        for (int off = 1; off < m; ++off) {
          AttrId c = (a + off) % m;
          ValueId vx = rel_.value(x, c), vy = rel_.value(y, c);
          if (vx != vy) return vx < vy;
        }
        return x < y;
      });
    }
  }
}

std::vector<AttributeSet> NeighborhoodSampler::run(int window) {
  std::vector<AttributeSet> fresh;
  int64_t comparisons = 0;
  const int m = rel_.num_cols();
  for (AttrId a = 0; a < m; ++a) {
    for (ClusterView cluster : sorted_[a].clusters()) {
      if (static_cast<int>(cluster.size()) <= window) continue;
      for (size_t i = 0; i + window < cluster.size(); ++i) {
        RowId s = cluster[i], t = cluster[i + window];
        ++comparisons;
        AttributeSet ag = rel_.agree_set(s, t);
        if (ag.count() == m) continue;  // duplicate rows imply no non-FD
        if (seen_.insert(ag).second) fresh.push_back(ag);
      }
    }
  }
  pairs_compared_ += comparisons;
  last_efficiency_ =
      comparisons == 0 ? 0.0
                       : static_cast<double>(fresh.size()) / static_cast<double>(comparisons);
  window_ = std::max(window_, window);
  ObsAdd("discover.sampler.rounds");
  ObsAdd("discover.sampler.pairs", comparisons);
  ObsAdd("discover.sampler.new_agree_sets", static_cast<int64_t>(fresh.size()));
  return fresh;
}

std::vector<AttributeSet> NeighborhoodSampler::initial(int max_window) {
  std::vector<AttributeSet> all;
  for (int w = 1; w <= max_window; ++w) {
    std::vector<AttributeSet> fresh = run(w);
    all.insert(all.end(), fresh.begin(), fresh.end());
  }
  return all;
}

}  // namespace dhyfd
