#include "algo/sampler.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "util/thread_pool.h"

namespace dhyfd {

NeighborhoodSampler::NeighborhoodSampler(
    const Relation& r, const std::vector<StrippedPartition>& attr_partitions,
    ThreadPool* pool, int parallelism)
    : rel_(r), pool_(pool), parallelism_(parallelism) {
  const int m = r.num_cols();
  sorted_.resize(m);
  // Per-attribute neighborhood sort; attributes are independent, so shards
  // write disjoint sorted_[a] slots.
  auto sort_attribute = [&](size_t a) {
    sorted_[a] = attr_partitions[a];
    for (size_t ci = 0; ci < static_cast<size_t>(sorted_[a].size()); ++ci) {
      std::span<RowId> cluster = sorted_[a].mutable_cluster(ci);
      // Sort by the remaining attributes, wrapping around from a+1, so the
      // neighborhood ordering differs per attribute and covers more pairs.
      std::sort(cluster.begin(), cluster.end(), [&](RowId x, RowId y) {
        for (int off = 1; off < m; ++off) {
          AttrId c = (static_cast<int>(a) + off) % m;
          ValueId vx = rel_.value(x, c), vy = rel_.value(y, c);
          if (vx != vy) return vx < vy;
        }
        return x < y;
      });
    }
  };
  if (pool_ != nullptr && parallelism_ > 1 && m > 1) {
    pool_->parallel_for(
        m, parallelism_,
        [&](size_t, size_t begin, size_t end) {
          for (size_t a = begin; a < end; ++a) sort_attribute(a);
        },
        kObsDiscoverShard);
  } else {
    for (int a = 0; a < m; ++a) sort_attribute(a);
  }
}

void NeighborhoodSampler::collect_attribute(AttrId a, int window,
                                            std::vector<AttributeSet>& out,
                                            int64_t& comparisons) const {
  const int m = rel_.num_cols();
  for (ClusterView cluster : sorted_[a].clusters()) {
    if (static_cast<int>(cluster.size()) <= window) continue;
    for (size_t i = 0; i + window < cluster.size(); ++i) {
      RowId s = cluster[i], t = cluster[i + window];
      ++comparisons;
      AttributeSet ag = rel_.agree_set(s, t);
      if (ag.count() == m) continue;  // duplicate rows imply no non-FD
      out.push_back(ag);
    }
  }
}

std::vector<AttributeSet> NeighborhoodSampler::run(int window) {
  const int m = rel_.num_cols();
  // Agree-set induction fans out per attribute; dedup stays on the calling
  // thread, replayed in attribute order, so `fresh` (and the seen_ state
  // feeding every later run) is independent of shard timing.
  std::vector<std::vector<AttributeSet>> per_attr(m);
  std::vector<int64_t> per_attr_comparisons(m, 0);
  if (pool_ != nullptr && parallelism_ > 1 && m > 1) {
    pool_->parallel_for(
        m, parallelism_,
        [&](size_t, size_t begin, size_t end) {
          for (size_t a = begin; a < end; ++a) {
            collect_attribute(static_cast<AttrId>(a), window, per_attr[a],
                              per_attr_comparisons[a]);
          }
        },
        kObsDiscoverShard);
  } else {
    for (AttrId a = 0; a < m; ++a) {
      collect_attribute(a, window, per_attr[a], per_attr_comparisons[a]);
    }
  }

  std::vector<AttributeSet> fresh;
  int64_t comparisons = 0;
  for (int a = 0; a < m; ++a) {
    comparisons += per_attr_comparisons[a];
    for (AttributeSet& ag : per_attr[a]) {
      if (seen_.insert(ag).second) fresh.push_back(ag);
    }
  }
  pairs_compared_ += comparisons;
  last_efficiency_ =
      comparisons == 0 ? 0.0
                       : static_cast<double>(fresh.size()) / static_cast<double>(comparisons);
  window_ = std::max(window_, window);
  ObsAdd(kObsDiscoverSamplerRounds);
  ObsAdd(kObsDiscoverSamplerPairs, comparisons);
  ObsAdd(kObsDiscoverSamplerNewAgreeSets, static_cast<int64_t>(fresh.size()));
  return fresh;
}

std::vector<AttributeSet> NeighborhoodSampler::initial(int max_window) {
  std::vector<AttributeSet> all;
  for (int w = 1; w <= max_window; ++w) {
    std::vector<AttributeSet> fresh = run(w);
    all.insert(all.end(), fresh.begin(), fresh.end());
  }
  return all;
}

}  // namespace dhyfd
