#include "algo/hitting_set.h"

#include <algorithm>

namespace dhyfd {

bool HitsAll(const std::vector<AttributeSet>& family, const AttributeSet& candidate) {
  for (const AttributeSet& s : family) {
    if (!s.intersects(candidate)) return false;
  }
  return true;
}

std::vector<AttributeSet> MinimalHittingSets(const std::vector<AttributeSet>& family,
                                             size_t max_results,
                                             const Deadline* deadline,
                                             bool* timed_out) {
  // An empty set in the family cannot be hit: no transversal exists.
  for (const AttributeSet& s : family) {
    if (s.empty()) return {};
  }

  // Berge's algorithm: fold the sets in one at a time, keeping the current
  // minimal transversals. Processing larger sets last keeps intermediate
  // families small in practice.
  std::vector<AttributeSet> sorted = family;
  std::sort(sorted.begin(), sorted.end(),
            [](const AttributeSet& a, const AttributeSet& b) {
              return a.count() < b.count();
            });

  std::vector<AttributeSet> transversals = {AttributeSet()};
  for (const AttributeSet& s : sorted) {
    if (deadline != nullptr && deadline->expired()) {
      if (timed_out != nullptr) *timed_out = true;
      break;
    }
    std::vector<AttributeSet> kept;
    std::vector<AttributeSet> extended;
    for (const AttributeSet& t : transversals) {
      if (t.intersects(s)) {
        kept.push_back(t);
      } else {
        s.for_each([&](AttrId a) {
          AttributeSet candidate = t;
          candidate.set(a);
          extended.push_back(candidate);
        });
      }
    }
    // A kept transversal is still minimal. An extended candidate survives
    // only if no kept transversal is a subset of it (extended candidates
    // cannot dominate kept ones, and equal-new-attr extensions of distinct
    // minimal t's cannot contain each other unless via kept-check).
    for (const AttributeSet& cand : extended) {
      if (deadline != nullptr && deadline->expired()) {
        if (timed_out != nullptr) *timed_out = true;
        break;
      }
      bool dominated = false;
      for (const AttributeSet& t : kept) {
        if (t.is_subset_of(cand)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      for (const AttributeSet& other : extended) {
        if (other != cand && other.is_subset_of(cand)) {
          // Strict subset, or equal-set duplicate resolved by keeping the
          // first occurrence (pointer order).
          if (other == cand) continue;
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      // Deduplicate equal candidates.
      bool duplicate = false;
      for (const AttributeSet& t : kept) {
        if (t == cand) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) kept.push_back(cand);
    }
    transversals = std::move(kept);
    if (max_results > 0 && transversals.size() > 4 * max_results) {
      // Soft cap mid-fold to bound blow-up; exactness is lost beyond the cap.
      transversals.resize(4 * max_results);
    }
  }
  if (max_results > 0 && transversals.size() > max_results) {
    transversals.resize(max_results);
  }
  return transversals;
}

}  // namespace dhyfd
