#ifndef DHYFD_ALGO_SAMPLER_H_
#define DHYFD_ALGO_SAMPLER_H_

#include <unordered_set>
#include <vector>

#include "partition/stripped_partition.h"
#include "relation/relation.h"

namespace dhyfd {

class ThreadPool;

/// Sorted-neighborhood pair selection sampling (Hernandez & Stolfo; used by
/// HyFD and, once at start-up, by DHyFD).
///
/// For every attribute, the rows of each cluster of pi_A are sorted
/// lexicographically by the remaining attributes (the "sorted
/// neighborhood"); likely-similar tuples then sit next to each other.
/// Comparing rows at neighbor distance w harvests large agree sets — the
/// most specific non-FDs — cheaply.
///
/// With a pool and parallelism > 1, the per-attribute work — neighborhood
/// sorting in the constructor, agree-set induction in run() — is sharded
/// over the pool. Each shard fills per-attribute buckets; the dedup against
/// `seen_` then replays the buckets in attribute order on the calling
/// thread, so the returned fresh agree sets are the exact sequence the
/// sequential loop produces.
class NeighborhoodSampler {
 public:
  /// `attr_partitions` must contain one partition per attribute and outlive
  /// the sampler. `pool` (not owned, may be null) enables sharded sampling
  /// with up to `parallelism` threads including the caller.
  NeighborhoodSampler(const Relation& r,
                      const std::vector<StrippedPartition>& attr_partitions,
                      ThreadPool* pool = nullptr, int parallelism = 1);

  /// Compares rows at distance `window` within every sorted cluster and
  /// returns the agree sets not seen before (across all calls).
  std::vector<AttributeSet> run(int window);

  /// Runs windows 1..max_window: the one-off initial sampling of DHyFD.
  std::vector<AttributeSet> initial(int max_window);

  int64_t pairs_compared() const { return pairs_compared_; }

  /// New non-FDs per comparison in the most recent run(); HyFD's sampling
  /// phase stops when this drops below its efficiency threshold.
  double last_efficiency() const { return last_efficiency_; }

  /// Largest window run so far; HyFD resumes from window() + 1.
  int window() const { return window_; }

 private:
  /// All (non-trivial) agree sets of attribute a's clusters at `window`, in
  /// cluster-then-pair order, before dedup.
  void collect_attribute(AttrId a, int window, std::vector<AttributeSet>& out,
                         int64_t& comparisons) const;

  const Relation& rel_;
  ThreadPool* pool_;
  int parallelism_;
  // Per attribute: a CSR copy of that attribute's partition with rows in
  // sorted-neighborhood order (reordered in place via mutable_cluster).
  std::vector<StrippedPartition> sorted_;
  std::unordered_set<AttributeSet, AttributeSetHash> seen_;
  int64_t pairs_compared_ = 0;
  double last_efficiency_ = 0;
  int window_ = 0;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_SAMPLER_H_
