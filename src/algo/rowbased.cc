#include "algo/rowbased.h"

#include <algorithm>

#include "algo/agree_sets.h"
#include "algo/hitting_set.h"
#include "util/deadline.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dhyfd {

DiscoveryResult RowBasedTransversal::discover(const Relation& r) {
  Timer timer;
  MemoryWatermark mem;
  Deadline deadline(time_limit_seconds_);
  DiscoveryResult result;
  const int m = r.num_cols();

  std::vector<AttributeSet> agree_sets = ComputeAllAgreeSets(
      r, &result.stats.pairs_compared, &deadline, &result.stats.timed_out);
  result.stats.sampled_non_fds = static_cast<int64_t>(agree_sets.size());

  for (AttrId a = 0; a < m && !result.stats.timed_out; ++a) {
    if (deadline.expired()) {
      result.stats.timed_out = true;
      break;
    }
    // Agree sets relevant to RHS a: those not containing a. Maximality may
    // only be applied per attribute (a globally dominated agree set can
    // still be the strongest constraint for attributes its dominator
    // contains).
    std::vector<AttributeSet> relevant;
    for (const AttributeSet& z : agree_sets) {
      if (!z.test(a)) relevant.push_back(z);
    }
    if (variant_ == RowBasedVariant::kDepMiner) {
      // Dep-Miner's max sets: maximal agree sets w.r.t. attribute a.
      relevant = MaximalAgreeSets(std::move(relevant));
    }
    // Family for RHS a: complements (minus a) of the relevant agree sets.
    std::vector<AttributeSet> family;
    bool impossible = false;
    for (const AttributeSet& z : relevant) {
      AttributeSet diff = z.complement(m);
      diff.reset(a);
      if (diff.empty()) {
        // A pair differs exactly on a: no FD with RHS a can hold.
        impossible = true;
        break;
      }
      family.push_back(diff);
    }
    if (impossible) continue;
    if (family.empty()) {
      // No pair ever differs on a without the constraint set: a holds from
      // the empty LHS only if no pair disagrees on a at all.
      result.fds.add(Fd(AttributeSet(), a));
      ++result.stats.validations;
      continue;
    }
    std::vector<AttributeSet> lhss =
        MinimalHittingSets(family, 0, &deadline, &result.stats.timed_out);
    result.stats.validations += static_cast<int64_t>(lhss.size());
    if (result.stats.timed_out) break;
    for (const AttributeSet& lhs : lhss) result.fds.add(Fd(lhs, a));
  }

  result.fds.sort();
  result.stats.seconds = timer.seconds();
  size_t logical = agree_sets.capacity() * sizeof(AttributeSet);
  result.stats.memory_mb = std::max(
      mem.delta_peak_mb(), static_cast<double>(logical) / (1024.0 * 1024.0));
  return result;
}

}  // namespace dhyfd
