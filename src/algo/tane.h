#ifndef DHYFD_ALGO_TANE_H_
#define DHYFD_ALGO_TANE_H_

#include "algo/discovery.h"

namespace dhyfd {

struct TaneOptions {
  /// Hard cap on lattice level (LHS size); 0 means no cap. The paper's TANE
  /// baseline runs uncapped; benches may cap to emulate its time limit.
  /// Coarse: stops before generating level max_level+1, so FDs whose LHS
  /// has exactly max_level attributes are not validated.
  int max_level = 0;
  /// Precise LHS arity bound (0 = unbounded): every FD with at most max_lhs
  /// LHS attributes is validated and emitted, nothing larger is explored.
  /// Unlike max_level this runs one extra validation level, so the output
  /// is exactly the full cover filtered to |LHS| <= max_lhs.
  int max_lhs = 0;
  /// Error threshold for approximate FDs: a candidate X -> A holds when
  /// e(X -> A) = removals / |r| <= epsilon (g3 measure; see
  /// ApproxErrorCalculator). 0 runs the exact error-comparison test.
  double epsilon = 0;
  /// Cooperative deadline in seconds (0 = none); on expiry the run stops
  /// with stats.timed_out set, mirroring the paper's TL entries.
  double time_limit_seconds = 0;
};

/// TANE (Huhtala et al. 1999): the column-based baseline. Traverses the
/// attribute lattice level by level, validating candidates via stripped-
/// partition errors and pruning with RHS-candidate sets C+ and superkeys.
class Tane : public FdDiscovery {
 public:
  explicit Tane(TaneOptions options = {}) : options_(options) {}
  std::string name() const override { return "tane"; }
  DiscoveryResult discover(const Relation& r) override;

 private:
  TaneOptions options_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_TANE_H_
