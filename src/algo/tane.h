#ifndef DHYFD_ALGO_TANE_H_
#define DHYFD_ALGO_TANE_H_

#include "algo/discovery.h"

namespace dhyfd {

struct TaneOptions {
  /// Hard cap on lattice level (LHS size); 0 means no cap. The paper's TANE
  /// baseline runs uncapped; benches may cap to emulate its time limit.
  int max_level = 0;
  /// Cooperative deadline in seconds (0 = none); on expiry the run stops
  /// with stats.timed_out set, mirroring the paper's TL entries.
  double time_limit_seconds = 0;
};

/// TANE (Huhtala et al. 1999): the column-based baseline. Traverses the
/// attribute lattice level by level, validating candidates via stripped-
/// partition errors and pruning with RHS-candidate sets C+ and superkeys.
class Tane : public FdDiscovery {
 public:
  explicit Tane(TaneOptions options = {}) : options_(options) {}
  std::string name() const override { return "tane"; }
  DiscoveryResult discover(const Relation& r) override;

 private:
  TaneOptions options_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_TANE_H_
