#include "algo/hyfd.h"

#include <algorithm>
#include <cstddef>
#include <memory>

#include "algo/agree_sets.h"
#include "algo/sampler.h"
#include "algo/validator.h"
#include "fdtree/extended_fd_tree.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "partition/partition_ops.h"
#include "util/deadline.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dhyfd {

DiscoveryResult Hyfd::discover(const Relation& r) {
  Timer timer;
  MemoryWatermark mem;
  Deadline deadline(options_.time_limit_seconds);
  DiscoveryResult result;
  const int m = r.num_cols();
  const AttributeSet all = AttributeSet::full(m);

  ThreadPool* pool = options_.worker_pool;
  const int par = pool != nullptr ? std::max(1, options_.parallelism) : 1;
  std::vector<std::unique_ptr<PartitionRefiner>> shard_refiners;
  for (int i = 0; i < (par > 1 ? par : 0); ++i) {
    shard_refiners.push_back(std::make_unique<PartitionRefiner>(r));
  }

  // Static single-attribute stripped partitions (HyFD's PLIs).
  std::vector<StrippedPartition> attr_partitions;
  attr_partitions.reserve(m);
  std::vector<int64_t> supports(m);
  for (AttrId a = 0; a < m; ++a) {
    attr_partitions.push_back(BuildAttributePartition(r, a));
    supports[a] = attr_partitions.back().support();
  }
  PartitionRefiner refiner(r);
  NeighborhoodSampler sampler(r, attr_partitions, pool, par);
  size_t static_bytes = 0;
  for (const StrippedPartition& p : attr_partitions) static_bytes += p.memory_bytes();
  size_t logical_peak = 2 * static_bytes;  // PLIs + the sampler's sorted copy

  ExtendedFdTree tree(m);
  tree.init_root_fd(all);

  auto induct_sorted = [&](std::vector<AttributeSet> non_fds) {
    SortBySizeDescending(non_fds);
    for (const AttributeSet& x : non_fds) {
      if (deadline.expired()) {
        result.stats.timed_out = true;
        break;
      }
      tree.induct(x, all - x);
    }
  };

  auto sampling_phase = [&]() {
    TraceSpan span(kObsDiscoverSampling);
    for (int i = 0; i < options_.max_windows_per_phase; ++i) {
      std::vector<AttributeSet> fresh = sampler.run(sampler.window() + 1);
      result.stats.sampled_non_fds += static_cast<int64_t>(fresh.size());
      induct_sorted(std::move(fresh));
      if (sampler.last_efficiency() < options_.sampling_efficiency_threshold) break;
    }
  };

  // Initial sampling phase, then validate the root FD {} -> R directly.
  sampling_phase();
  {
    StrippedPartition whole = StrippedPartition::whole(r.num_rows());
    result.stats.validations += tree.root()->rhs.count();
    ValidationOutcome v = ValidateWithPartition(r, AttributeSet(), tree.root()->rhs,
                                                whole, AttributeSet(), refiner);
    result.stats.pairs_compared += v.pairs_checked;
    result.stats.invalidated += tree.root()->rhs.count() - v.valid_rhs.count();
    induct_sorted(std::move(v.violations));
  }

  // Validation phase, level by level. Violations are inducted after each
  // level; a level with too many invalidations triggers more sampling.
  int vl = 1;
  while (vl <= tree.depth() && !result.stats.timed_out) {
    result.stats.levels = vl;
    std::vector<ExtendedFdTree::Node*> candidates = tree.level_nodes(vl);
    // Candidate validation shards over the pool: per-candidate work is
    // independent (reads of the static PLIs and tree paths, plus the
    // shard-private refiner), and the shard-ordered merge keeps the
    // violation sequence identical to the sequential loop's.
    auto validate_range = [&](PartitionRefiner& shard_refiner, size_t begin,
                              size_t end) {
      LevelValidationResult local;
      for (size_t i = begin; i < end; ++i) {
        if (deadline.expired()) {
          local.timed_out = true;
          break;
        }
        ExtendedFdTree::Node* node = candidates[i];
        if (!node->is_fd_node()) continue;
        AttributeSet lhs = tree.path_of(node);
        AttributeSet rhs = node->rhs;
        local.validations += rhs.count();
        // HyFD always starts from a single-attribute partition: pick the
        // path attribute whose partition has the least support.
        AttrId pivot = lhs.first();
        lhs.for_each([&](AttrId a) {
          if (supports[a] < supports[pivot]) pivot = a;
        });
        ValidationOutcome v =
            ValidateWithPartition(r, lhs, rhs, attr_partitions[pivot],
                                  AttributeSet::single(pivot), shard_refiner);
        local.pairs_checked += v.pairs_checked;
        local.refinements += v.refinements;
        local.invalidated += rhs.count() - v.valid_rhs.count();
        for (AttributeSet& z : v.violations) local.violations.push_back(z);
      }
      return local;
    };
    LevelValidationResult level;
    {
      TraceSpan level_span(kObsDiscoverValidation);
      if (par > 1 && candidates.size() > 1) {
        ParFdStorageBuilder builder(
            std::min(candidates.size(), static_cast<std::size_t>(par)));
        pool->parallel_for(
            candidates.size(), par,
            [&](size_t shard, size_t begin, size_t end) {
              builder.add(shard,
                          validate_range(*shard_refiners[shard], begin, end));
            },
            kObsDiscoverShard);
        level = builder.take_merged();
      } else {
        level = validate_range(refiner, 0, candidates.size());
      }
    }
    int64_t total = level.validations;
    int64_t invalid = level.invalidated;
    result.stats.validations += level.validations;
    result.stats.pairs_compared += level.pairs_checked;
    result.stats.refinements += level.refinements;
    if (level.timed_out) result.stats.timed_out = true;
    induct_sorted(std::move(level.violations));
    mem.sample();
    logical_peak = std::max(logical_peak, 2 * static_bytes + tree.memory_bytes());
    if (total > 0 &&
        static_cast<double>(invalid) >
            options_.validation_switch_threshold * static_cast<double>(total)) {
      sampling_phase();
    }
    ++vl;
  }

  result.fds = tree.collect();
  result.fds.sort();
  result.stats.pairs_compared += sampler.pairs_compared();
  result.stats.seconds = timer.seconds();
  logical_peak = std::max(logical_peak, 2 * static_bytes + tree.memory_bytes());
  result.stats.memory_mb = std::max(
      mem.delta_peak_mb(), static_cast<double>(logical_peak) / (1024.0 * 1024.0));
  return result;
}

}  // namespace dhyfd
