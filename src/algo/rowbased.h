#ifndef DHYFD_ALGO_ROWBASED_H_
#define DHYFD_ALGO_ROWBASED_H_

#include "algo/discovery.h"

namespace dhyfd {

/// The transversal-based row algorithms the paper cites as related work:
enum class RowBasedVariant {
  /// FastFDs (Wyss, Giannella & Robertson 2001): per RHS attribute, the
  /// minimal LHSs are the minimal hitting sets of the difference sets
  /// (complements of agree sets) containing that attribute.
  kFastFds,
  /// Dep-Miner (Lopes, Petit & Lakhal 2000): same reduction, but first
  /// shrinks each attribute's family to the complements of its maximal
  /// agree sets before computing transversals.
  kDepMiner,
};

/// Exact row-based discovery via hypergraph transversals. O(rows^2) for the
/// agree sets plus an output-sensitive (worst-case exponential) transversal
/// enumeration; the extra baselines for `bench_extra_rowbased`.
class RowBasedTransversal : public FdDiscovery {
 public:
  explicit RowBasedTransversal(RowBasedVariant variant = RowBasedVariant::kFastFds,
                               double time_limit_seconds = 0)
      : variant_(variant), time_limit_seconds_(time_limit_seconds) {}
  std::string name() const override {
    return variant_ == RowBasedVariant::kFastFds ? "fastfds" : "depminer";
  }
  DiscoveryResult discover(const Relation& r) override;

 private:
  RowBasedVariant variant_;
  double time_limit_seconds_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_ROWBASED_H_
