#ifndef DHYFD_ALGO_FDEP_H_
#define DHYFD_ALGO_FDEP_H_

#include "algo/discovery.h"

namespace dhyfd {

/// The three row-based variants evaluated in the paper (Section V-B):
enum class FdepVariant {
  /// FDEP: Flach & Savnik's original — classic FD-tree with propagated RHS
  /// labels and per-RHS-attribute induction.
  kClassic,
  /// FDEP1: non-redundant cover of non-FDs (maximal agree sets only), then
  /// synergized induction on an extended FD-tree.
  kNonRedundant,
  /// FDEP2: all non-FDs sorted descending by LHS size, synergized induction
  /// on an extended FD-tree. The paper's recommended variant.
  kSorted,
};

/// Row-based FD discovery from the complete agree-set cover of all tuple
/// pairs. Exact but O(rows^2); the paper's row-scalability baseline.
class Fdep : public FdDiscovery {
 public:
  /// time_limit_seconds > 0 sets a cooperative deadline (paper's TL).
  explicit Fdep(FdepVariant variant = FdepVariant::kSorted,
                double time_limit_seconds = 0)
      : variant_(variant), time_limit_seconds_(time_limit_seconds) {}
  std::string name() const override;
  DiscoveryResult discover(const Relation& r) override;

 private:
  FdepVariant variant_;
  double time_limit_seconds_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_FDEP_H_
