#include "algo/discovery.h"

#include <bit>
#include <stdexcept>

#include "algo/agree_sets.h"
#include "algo/dfd.h"
#include "algo/dhyfd.h"
#include "algo/fdep.h"
#include "algo/hyfd.h"
#include "algo/rowbased.h"
#include "algo/tane.h"

namespace dhyfd {

std::unique_ptr<FdDiscovery> MakeDiscovery(const std::string& name,
                                           double time_limit_seconds,
                                           int parallelism,
                                           ThreadPool* worker_pool) {
  if (name == "tane") {
    TaneOptions opt;
    opt.time_limit_seconds = time_limit_seconds;
    return std::make_unique<Tane>(opt);
  }
  if (name == "fdep") {
    return std::make_unique<Fdep>(FdepVariant::kClassic, time_limit_seconds);
  }
  if (name == "fdep1") {
    return std::make_unique<Fdep>(FdepVariant::kNonRedundant, time_limit_seconds);
  }
  if (name == "fdep2") {
    return std::make_unique<Fdep>(FdepVariant::kSorted, time_limit_seconds);
  }
  if (name == "hyfd") {
    HyfdOptions opt;
    opt.time_limit_seconds = time_limit_seconds;
    opt.parallelism = parallelism;
    opt.worker_pool = worker_pool;
    return std::make_unique<Hyfd>(opt);
  }
  if (name == "dhyfd") {
    DhyfdOptions opt;
    opt.time_limit_seconds = time_limit_seconds;
    opt.parallelism = parallelism;
    opt.worker_pool = worker_pool;
    return std::make_unique<Dhyfd>(opt);
  }
  // Extra baselines beyond the paper's Table II line-up.
  if (name == "dfd") return std::make_unique<Dfd>(time_limit_seconds);
  if (name == "fastfds") {
    return std::make_unique<RowBasedTransversal>(RowBasedVariant::kFastFds,
                                                 time_limit_seconds);
  }
  if (name == "depminer") {
    return std::make_unique<RowBasedTransversal>(RowBasedVariant::kDepMiner,
                                                 time_limit_seconds);
  }
  throw std::invalid_argument("unknown discovery algorithm: " + name);
}

const std::vector<std::string>& AllDiscoveryNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "tane", "fdep", "fdep1", "fdep2", "hyfd", "dhyfd"};
  return *names;
}

FdSet BruteForceDiscover(const Relation& r) {
  const int m = r.num_cols();
  if (m > 20) throw std::invalid_argument("BruteForceDiscover: too many columns");
  std::vector<AttributeSet> agree_sets = ComputeAllAgreeSets(r);

  // As 32-bit masks for speed; valid X -> a iff every agree set containing
  // X also contains a.
  std::vector<uint32_t> ag_masks;
  ag_masks.reserve(agree_sets.size());
  for (const AttributeSet& s : agree_sets) {
    uint32_t mask = 0;
    s.for_each([&](AttrId a) { mask |= 1u << a; });
    ag_masks.push_back(mask);
  }

  FdSet out;
  for (AttrId a = 0; a < m; ++a) {
    uint32_t rhs_bit = 1u << a;
    std::vector<uint32_t> minimal;
    // Enumerate candidate LHSs by popcount so minimality is a subset check
    // against already-accepted smaller LHSs.
    std::vector<std::vector<uint32_t>> by_size(m + 1);
    uint32_t universe = (m == 32) ? ~0u : ((1u << m) - 1);
    for (uint32_t x = 0; x <= universe; ++x) {
      if ((x & rhs_bit) != 0) continue;
      by_size[std::popcount(x)].push_back(x);
    }
    for (int size = 0; size <= m; ++size) {
      for (uint32_t x : by_size[size]) {
        bool dominated = false;
        for (uint32_t kept : minimal) {
          if ((kept & ~x) == 0) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        bool valid = true;
        for (uint32_t z : ag_masks) {
          if ((x & ~z) == 0 && (z & rhs_bit) == 0) {
            valid = false;
            break;
          }
        }
        if (valid) minimal.push_back(x);
      }
    }
    for (uint32_t x : minimal) {
      AttributeSet lhs;
      for (int b = 0; b < m; ++b) {
        if ((x >> b) & 1u) lhs.set(b);
      }
      out.add(Fd(lhs, a));
    }
  }
  out.sort();
  return out;
}

}  // namespace dhyfd
