#ifndef DHYFD_ALGO_DDM_H_
#define DHYFD_ALGO_DDM_H_

#include <cstdint>
#include <vector>

#include "fdtree/extended_fd_tree.h"
#include "partition/partition_ops.h"
#include "partition/stripped_partition.h"
#include "relation/relation.h"

namespace dhyfd {

class ThreadPool;

/// The paper's dynamic data manager (Section IV-E).
///
/// Holds (a) the pre-computed stripped partition of every single attribute
/// and (b) an array of dynamic stripped partitions keyed by the extended
/// FD-tree's node ids. A node id i < |R| denotes pi_{A_i}; an id i >= |R|
/// denotes the dynamic entry i - |R|, whose attribute set is guaranteed (by
/// Algorithm 1's id discipline) to be a subset of the node's path.
class Ddm {
 public:
  explicit Ddm(const Relation& r);

  const Relation& relation() const { return rel_; }
  PartitionRefiner& refiner() { return refiner_; }

  const StrippedPartition& attribute_partition(AttrId a) const {
    return static_partitions_[a];
  }

  /// All pre-computed single-attribute partitions (for the sampler).
  const std::vector<StrippedPartition>& static_partitions() const {
    return static_partitions_;
  }

  /// ||pi_A||; Algorithm 6 line 16 picks the path attribute minimizing this.
  int64_t attribute_support(AttrId a) const { return attribute_supports_[a]; }

  /// The partition a node id refers to, plus its attribute set.
  const StrippedPartition& partition_for_id(int id) const;
  AttributeSet attrs_for_id(int id) const;

  /// Algorithm 3: rebuilds the dynamic array from the reusable nodes at the
  /// new controlled level. Each node's current partition is refined by the
  /// attributes its path adds, the node's id is re-pointed at the new entry,
  /// and the id is copied to all descendants. Returns the number of cluster
  /// refinements performed.
  ///
  /// With a pool and parallelism > 1 the per-node refinements are sharded
  /// over the pool: ids are pre-assigned by node index (so the rebuilt array
  /// is identical to the sequential one), the level's nodes root disjoint
  /// subtrees (so id propagation never races), and each shard leases its own
  /// refiner.
  int64_t update(const std::vector<ExtendedFdTree::Node*>& level_nodes,
                 ExtendedFdTree& tree, ThreadPool* pool = nullptr,
                 int parallelism = 1);

  size_t memory_bytes() const;
  int dynamic_entries() const { return static_cast<int>(dynamic_.size()); }

 private:
  struct Entry {
    StrippedPartition partition;
    AttributeSet attrs;
  };

  const Relation& rel_;
  PartitionRefiner refiner_;
  std::vector<StrippedPartition> static_partitions_;
  std::vector<int64_t> attribute_supports_;
  std::vector<Entry> dynamic_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_DDM_H_
