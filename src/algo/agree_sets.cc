#include "algo/agree_sets.h"

#include <algorithm>
#include <unordered_set>

namespace dhyfd {

std::vector<AttributeSet> ComputeAllAgreeSets(const Relation& r,
                                              int64_t* pairs_compared,
                                              const Deadline* deadline,
                                              bool* timed_out) {
  std::unordered_set<AttributeSet, AttributeSetHash> distinct;
  const RowId n = r.num_rows();
  const int m = r.num_cols();
  int64_t pairs = 0;
  for (RowId i = 0; i < n; ++i) {
    if (deadline != nullptr && deadline->expired()) {
      if (timed_out != nullptr) *timed_out = true;
      break;
    }
    for (RowId j = i + 1; j < n; ++j) {
      AttributeSet ag;
      for (AttrId a = 0; a < m; ++a) {
        if (r.column(a)[i] == r.column(a)[j]) ag.set(a);
      }
      ++pairs;
      // A full agree set means duplicate tuples; it implies no non-FD.
      if (ag.count() < m) distinct.insert(ag);
    }
  }
  if (pairs_compared != nullptr) *pairs_compared += pairs;
  return {distinct.begin(), distinct.end()};
}

std::vector<AttributeSet> MaximalAgreeSets(std::vector<AttributeSet> sets) {
  // Sort descending by size: a set can only be contained in a larger one.
  SortBySizeDescending(sets);
  std::vector<AttributeSet> maximal;
  for (const AttributeSet& s : sets) {
    bool dominated = false;
    for (const AttributeSet& kept : maximal) {
      if (s.is_subset_of(kept)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(s);
  }
  return maximal;
}

std::vector<NonFd> NonRedundantNonFds(std::vector<AttributeSet> sets, int num_attrs) {
  SortBySizeDescending(sets);
  const AttributeSet all = AttributeSet::full(num_attrs);
  std::vector<NonFd> out;
  out.reserve(sets.size());
  for (const AttributeSet& z : sets) out.push_back({z, all - z});
  // A strictly larger agree set z' makes (z, a) redundant for every RHS
  // attribute a outside z'. Sorted descending, dominators precede.
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (out[i].lhs.is_subset_of(out[j].lhs)) out[i].rhs -= all - out[j].lhs;
      if (out[i].rhs.empty()) break;
    }
  }
  std::vector<NonFd> filtered;
  for (NonFd& nf : out) {
    if (!nf.rhs.empty()) filtered.push_back(std::move(nf));
  }
  return filtered;
}

void SortBySizeDescending(std::vector<AttributeSet>& sets) {
  std::sort(sets.begin(), sets.end(), [](const AttributeSet& a, const AttributeSet& b) {
    int ca = a.count(), cb = b.count();
    if (ca != cb) return ca > cb;
    return b < a;
  });
}

}  // namespace dhyfd
