#ifndef DHYFD_ALGO_HITTING_SET_H_
#define DHYFD_ALGO_HITTING_SET_H_

#include <vector>

#include "util/attribute_set.h"
#include "util/deadline.h"

namespace dhyfd {

/// Minimal hitting sets (hypergraph transversals) over attribute sets.
///
/// The row-based discovery family the paper cites — FastFDs (Wyss et al.)
/// and Dep-Miner (Lopes et al.) — reduces "minimal LHSs of valid FDs" to
/// minimal transversals of difference-set hypergraphs; the Armstrong
/// generator uses the same duality in reverse.
///
/// Implementation: Berge's incremental algorithm with minimization at each
/// step. Exponential in the worst case (the output can be exponential);
/// `max_results` caps the enumeration (0 = unlimited). If `deadline` fires
/// the enumeration stops and *timed_out is set; the returned sets are then
/// partial (they may miss transversals and need not hit the unprocessed
/// family members) and must only be used as a best-effort answer.
std::vector<AttributeSet> MinimalHittingSets(const std::vector<AttributeSet>& family,
                                             size_t max_results = 0,
                                             const Deadline* deadline = nullptr,
                                             bool* timed_out = nullptr);

/// True if `candidate` intersects every set of the family.
bool HitsAll(const std::vector<AttributeSet>& family, const AttributeSet& candidate);

}  // namespace dhyfd

#endif  // DHYFD_ALGO_HITTING_SET_H_
