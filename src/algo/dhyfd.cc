#include "algo/dhyfd.h"

#include <algorithm>
#include <memory>

#include "algo/agree_sets.h"
#include "algo/ddm.h"
#include "algo/sampler.h"
#include "algo/validator.h"
#include "fdtree/extended_fd_tree.h"
#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/memory.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dhyfd {

DiscoveryResult Dhyfd::discover(const Relation& r) {
  Timer timer;
  MemoryWatermark mem;
  Deadline deadline(options_.time_limit_seconds);
  DiscoveryResult result;
  const int m = r.num_cols();
  const AttributeSet all = AttributeSet::full(m);

  // Intra-job parallelism: shards fan out over the (shared) worker pool,
  // help-first, with the calling thread always participating. Each shard
  // gets its own refiner — the refiners' counting arenas are the only
  // mutable state validation shares.
  ThreadPool* pool = options_.worker_pool;
  const int par = pool != nullptr ? std::max(1, options_.parallelism) : 1;
  std::vector<std::unique_ptr<PartitionRefiner>> shard_refiners;
  for (int i = 0; i < (par > 1 ? par : 0); ++i) {
    shard_refiners.push_back(std::make_unique<PartitionRefiner>(r));
  }

  // Algorithm 6 line 3: the DDM pre-computes every single-attribute
  // stripped partition.
  Ddm ddm(r);

  // Line 4: the extended FD-tree starts from the single FD {} -> R.
  ExtendedFdTree tree(m);
  tree.init_root_fd(all);
  tree.set_controlled_level(1);

  // Approximate mode: exact pair-based evidence is unsound (a violating
  // pair refutes an exact FD, not one allowed `budget` removals), so the
  // sampling phase is skipped and refuted candidates are specialized
  // wholesale through the tree instead of via sampled agree sets.
  const int64_t budget = ApproxRemovalBudget(options_.epsilon, r.num_rows());
  const bool approx = budget > 0;

  // Lines 5-6: one-off sorted-neighborhood sampling, plus validating the
  // root FD against the whole relation (partition {r}).
  NeighborhoodSampler sampler(r, ddm.static_partitions(), pool, par);
  std::vector<AttributeSet> violations;
  if (!approx) {
    TraceSpan span(kObsDiscoverSampling);
    violations = sampler.initial(options_.initial_sampling_windows);
  }
  result.stats.sampled_non_fds = static_cast<int64_t>(violations.size());
  result.stats.pairs_compared += sampler.pairs_compared();
  {
    StrippedPartition whole = StrippedPartition::whole(r.num_rows());
    result.stats.validations += tree.root()->rhs.count();
    AttributeSet root_rhs = tree.root()->rhs;
    ValidationOutcome v =
        approx ? ValidateApproxWithPartition(r, AttributeSet(), root_rhs, whole,
                                             AttributeSet(), ddm.refiner(), budget)
               : ValidateWithPartition(r, AttributeSet(), root_rhs, whole,
                                       AttributeSet(), ddm.refiner());
    result.stats.pairs_compared += v.pairs_checked;
    result.stats.invalidated += root_rhs.count() - v.valid_rhs.count();
    if (approx) {
      AttributeSet refuted = root_rhs - v.valid_rhs;
      if (!refuted.empty()) tree.induct(AttributeSet(), refuted);
    }
    for (AttributeSet& z : v.violations) violations.push_back(z);
  }

  // Lines 7-8: induct all initial non-FDs, most specific first.
  {
    TraceSpan span(kObsDiscoverInduction);
    SortBySizeDescending(violations);
    for (const AttributeSet& x : violations) {
      if (deadline.expired()) {
        result.stats.timed_out = true;
        break;
      }
      tree.induct(x, all - x);
    }
    ObsAdd(kObsDiscoverInductions, static_cast<int64_t>(violations.size()));
  }

  // Lines 9-10.
  size_t logical_peak = 0;
  int cl = 1;
  int vl = 1;
  int64_t num_fds = 0;
  std::vector<ExtendedFdTree::Node*> candidates = tree.level_nodes(1);

  // Per-candidate validation body: candidates are independent (paper
  // Alg. 4), so a contiguous range of them is the shard unit. Everything a
  // candidate writes is local (the node's own id re-pointing included —
  // each node is visited by exactly one shard); the shared DDM is read-only
  // during a level.
  auto validate_range = [&](const std::vector<ExtendedFdTree::Node*>& nodes,
                            PartitionRefiner& refiner, size_t begin,
                            size_t end) {
    LevelValidationResult local;
    for (size_t i = begin; i < end; ++i) {
      if (deadline.expired()) {
        local.timed_out = true;
        break;
      }
      ExtendedFdTree::Node* node = nodes[i];
      if (!node->is_fd_node()) continue;
      AttributeSet lhs = tree.path_of(node);
      // Lines 15-16: a node without a dynamic partition starts from the
      // path attribute with the smallest single-attribute support.
      if (node->id < m) {
        AttrId best = lhs.first();
        lhs.for_each([&](AttrId a) {
          if (ddm.attribute_support(a) < ddm.attribute_support(best)) best = a;
        });
        node->id = best;
      }
      // Lines 17-18: validate from the DDM's partition for this node.
      const StrippedPartition& base = ddm.partition_for_id(node->id);
      AttributeSet base_attrs = ddm.attrs_for_id(node->id);
      local.validations += node->rhs.count();
      AttributeSet node_rhs = node->rhs;
      ValidationOutcome v =
          approx ? ValidateApproxWithPartition(r, lhs, node_rhs, base,
                                               base_attrs, refiner, budget)
                 : ValidateWithPartition(r, lhs, node_rhs, base, base_attrs,
                                         refiner);
      local.pairs_checked += v.pairs_checked;
      local.refinements += v.refinements;
      local.invalidated += node_rhs.count() - v.valid_rhs.count();
      if (approx) {
        AttributeSet refuted = node_rhs - v.valid_rhs;
        if (!refuted.empty()) local.refuted_fds.emplace_back(lhs, refuted);
      }
      for (AttributeSet& z : v.violations) local.violations.push_back(z);
    }
    return local;
  };

  auto validate_level =
      [&](const std::vector<ExtendedFdTree::Node*>& nodes) {
        if (par > 1 && nodes.size() > 1) {
          ParFdStorageBuilder builder(
              std::min(nodes.size(), static_cast<std::size_t>(par)));
          pool->parallel_for(
              nodes.size(), par,
              [&](size_t shard, size_t begin, size_t end) {
                builder.add(shard, validate_range(nodes, *shard_refiners[shard],
                                                  begin, end));
              },
              kObsDiscoverShard);
          return builder.take_merged();
        }
        return validate_range(nodes, ddm.refiner(), 0, nodes.size());
      };

  // Line 11: main loop over validation levels. The precise arity bound
  // stops the loop after validating LHSs of max_lhs attributes; anything
  // deeper the tree speculated about is filtered from the collected cover.
  std::vector<std::pair<AttributeSet, AttributeSet>> refuted_fds;
  while (!candidates.empty() && !result.stats.timed_out &&
         (options_.max_lhs == 0 || vl <= options_.max_lhs)) {
    result.stats.levels = vl;
    violations.clear();
    refuted_fds.clear();

    // Line 13: candidate FDs on this level, before induction.
    int64_t total = 0;
    for (ExtendedFdTree::Node* n : candidates) total += n->rhs.count();

    {
      TraceSpan level_span(kObsDiscoverValidation);
      LevelValidationResult level = validate_level(candidates);
      result.stats.validations += level.validations;
      result.stats.pairs_compared += level.pairs_checked;
      result.stats.refinements += level.refinements;
      result.stats.invalidated += level.invalidated;
      if (level.timed_out) result.stats.timed_out = true;
      violations = std::move(level.violations);
      refuted_fds = std::move(level.refuted_fds);
    }

    // Lines 19-20: induct this level's violations, most specific first. In
    // approximate mode each refuted candidate is specialized exactly — its
    // proper LHS subsets already failed at earlier levels (anti-monotone
    // removal counts), so induct(lhs, refuted_rhs) removes only the refuted
    // FDs and inserts their minimal specializations.
    {
      TraceSpan induct_span(kObsDiscoverInduction);
      SortBySizeDescending(violations);
      for (const AttributeSet& x : violations) {
        if (deadline.expired()) {
          result.stats.timed_out = true;
          break;
        }
        tree.induct(x, all - x);
      }
      for (const auto& [lhs, refuted] : refuted_fds) {
        if (deadline.expired()) {
          result.stats.timed_out = true;
          break;
        }
        tree.induct(lhs, refuted);
      }
      ObsAdd(kObsDiscoverInductions,
             static_cast<int64_t>(violations.size() + refuted_fds.size()));
    }

    // Lines 21-25: efficiency-inefficiency ratio.
    std::vector<ExtendedFdTree::Node*> reusables;
    for (ExtendedFdTree::Node* n : candidates) {
      if (!n->is_leaf()) reusables.push_back(n);
    }
    int64_t num_new_fds = 0;
    for (ExtendedFdTree::Node* n : candidates) num_new_fds += n->rhs.count();
    num_fds += num_new_fds;
    double efficiency =
        total > 0 ? static_cast<double>(num_new_fds) / static_cast<double>(total) : 0.0;
    int64_t higher_fds = tree.total_fd_count() - num_fds;
    double inefficiency =
        higher_fds > 0
            ? static_cast<double>(reusables.size()) / static_cast<double>(higher_fds)
            : 0.0;

    // Lines 26-27: refresh the DDM when validation is paying off.
    if (options_.enable_ddm && vl > 1 && !reusables.empty() && inefficiency > 0 &&
        efficiency / inefficiency > options_.ratio_threshold) {
      TraceSpan span(kObsDiscoverDdmUpdate);
      cl = vl;
      tree.set_controlled_level(cl);
      result.stats.refinements += ddm.update(reusables, tree, pool, par);
      ++result.stats.ddm_updates;
    }
    mem.sample();
    logical_peak = std::max(logical_peak, ddm.memory_bytes() + tree.memory_bytes());

    // Lines 28-29.
    ++vl;
    candidates = tree.level_nodes(vl);
  }

  // Line 30.
  result.fds = tree.collect();
  if (options_.max_lhs > 0) {
    // Specializations the tree speculated past the arity bound were never
    // validated; everything at or below the bound was (levels run in order).
    std::erase_if(result.fds.fds, [&](const Fd& fd) {
      return fd.lhs.count() > options_.max_lhs;
    });
  }
  result.fds.sort();
  ObsAdd(kObsDiscoverFdtreeFds, tree.total_fd_count());
  ObsAdd(kObsDiscoverLevels, result.stats.levels);
  result.stats.seconds = timer.seconds();
  logical_peak = std::max(logical_peak, ddm.memory_bytes() + tree.memory_bytes());
  result.stats.memory_mb = std::max(
      mem.delta_peak_mb(), static_cast<double>(logical_peak) / (1024.0 * 1024.0));
  return result;
}

}  // namespace dhyfd
