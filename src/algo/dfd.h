#ifndef DHYFD_ALGO_DFD_H_
#define DHYFD_ALGO_DFD_H_

#include "algo/discovery.h"

namespace dhyfd {

/// DFD-style lattice search (Abedjan, Schulze & Naumann, CIKM 2014 — cited
/// by the paper as [2]).
///
/// Per RHS attribute, the minimal LHSs are found by alternating two moves
/// until they meet: candidate LHSs are the minimal transversals of the
/// known maximal non-dependencies' complements ("dualize and advance" — the
/// deterministic skeleton DFD's random walks approximate); each candidate
/// is validated against a cached stripped partition, and failures are
/// greedily maximized into new maximal non-dependencies.
class Dfd : public FdDiscovery {
 public:
  explicit Dfd(double time_limit_seconds = 0)
      : time_limit_seconds_(time_limit_seconds) {}
  std::string name() const override { return "dfd"; }
  DiscoveryResult discover(const Relation& r) override;

 private:
  double time_limit_seconds_;
};

}  // namespace dhyfd

#endif  // DHYFD_ALGO_DFD_H_
