#include "algo/dfd.h"

#include <algorithm>

#include "algo/hitting_set.h"
#include "partition/partition_cache.h"
#include "util/deadline.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

// Greedily grows a non-dependency X (X !-> a) to a maximal one.
AttributeSet MaximizeNonDep(PartitionCache& cache, AttributeSet x, AttrId a,
                            const AttributeSet& rest) {
  (rest - x).for_each([&](AttrId b) {
    AttributeSet bigger = x;
    bigger.set(b);
    if (!cache.implies(bigger, a)) x = bigger;
  });
  return x;
}

}  // namespace

DiscoveryResult Dfd::discover(const Relation& r) {
  Timer timer;
  MemoryWatermark mem;
  Deadline deadline(time_limit_seconds_);
  DiscoveryResult result;
  const int m = r.num_cols();
  PartitionCache cache(r);

  for (AttrId a = 0; a < m && !result.stats.timed_out; ++a) {
    if (deadline.expired()) {
      result.stats.timed_out = true;
      break;
    }
    AttributeSet rest = AttributeSet::full(m);
    rest.reset(a);
    ++result.stats.validations;
    if (cache.implies(AttributeSet(), a)) {
      result.fds.add(Fd(AttributeSet(), a));
      continue;
    }
    ++result.stats.validations;
    if (!cache.implies(rest, a)) {
      // Even all other attributes fail to determine a (a pair differs only
      // on a): no FD with RHS a exists.
      ++result.stats.invalidated;
      continue;
    }

    // Dualize and advance until the candidate transversals are all valid.
    std::vector<AttributeSet> max_nondeps;
    std::vector<AttributeSet> min_deps;
    bool progressing = true;
    while (progressing && !result.stats.timed_out) {
      progressing = false;
      std::vector<AttributeSet> complements;
      complements.reserve(max_nondeps.size());
      for (const AttributeSet& n : max_nondeps) complements.push_back(rest - n);
      std::vector<AttributeSet> candidates =
          MinimalHittingSets(complements, 0, &deadline, &result.stats.timed_out);
      if (result.stats.timed_out) break;
      for (const AttributeSet& x : candidates) {
        if (deadline.expired()) {
          result.stats.timed_out = true;
          break;
        }
        bool known = false;
        for (const AttributeSet& d : min_deps) {
          if (d == x) {
            known = true;
            break;
          }
        }
        if (known) continue;
        ++result.stats.validations;
        if (cache.implies(x, a)) {
          min_deps.push_back(x);
        } else {
          ++result.stats.invalidated;
          max_nondeps.push_back(MaximizeNonDep(cache, x, a, rest));
          progressing = true;
        }
      }
    }
    for (const AttributeSet& lhs : min_deps) result.fds.add(Fd(lhs, a));
    mem.sample();
  }

  result.stats.refinements = cache.partitions_built();
  result.fds.sort();
  result.stats.seconds = timer.seconds();
  result.stats.memory_mb = mem.delta_peak_mb();
  return result;
}

}  // namespace dhyfd
