#include "algo/fdep.h"

#include <algorithm>

#include "algo/agree_sets.h"
#include "fdtree/extended_fd_tree.h"
#include "fdtree/fd_tree.h"
#include "util/memory.h"
#include "util/timer.h"

namespace dhyfd {

std::string Fdep::name() const {
  switch (variant_) {
    case FdepVariant::kClassic:
      return "fdep";
    case FdepVariant::kNonRedundant:
      return "fdep1";
    case FdepVariant::kSorted:
      return "fdep2";
  }
  return "fdep?";
}

DiscoveryResult Fdep::discover(const Relation& r) {
  Timer timer;
  MemoryWatermark mem;
  Deadline deadline(time_limit_seconds_);
  DiscoveryResult result;
  const int m = r.num_cols();
  const AttributeSet all = AttributeSet::full(m);

  std::vector<AttributeSet> agree_sets = ComputeAllAgreeSets(
      r, &result.stats.pairs_compared, &deadline, &result.stats.timed_out);
  result.stats.sampled_non_fds = static_cast<int64_t>(agree_sets.size());
  mem.sample();

  size_t tree_bytes = 0;
  if (variant_ == FdepVariant::kClassic) {
    // Classic FD-tree, one induction per RHS attribute of each non-FD.
    SortBySizeDescending(agree_sets);
    FdTree tree(m);
    for (AttrId a = 0; a < m; ++a) tree.add(AttributeSet(), a);
    for (const AttributeSet& x : agree_sets) {
      if (deadline.expired()) {
        result.stats.timed_out = true;
        break;
      }
      (x.complement(m)).for_each([&](AttrId a) { tree.induct(x, a); });
    }
    result.fds = tree.collect();
    tree_bytes = tree.memory_bytes();
  } else if (variant_ == FdepVariant::kNonRedundant) {
    // FDEP1: per-attribute-maximal (non-redundant) cover of non-FDs, then
    // synergized induction.
    std::vector<NonFd> cover = NonRedundantNonFds(std::move(agree_sets), m);
    ExtendedFdTree tree(m);
    tree.init_root_fd(all);
    for (const NonFd& nf : cover) {
      if (deadline.expired()) {
        result.stats.timed_out = true;
        break;
      }
      tree.induct(nf.lhs, nf.rhs);
    }
    result.fds = tree.collect();
    tree_bytes = tree.memory_bytes();
  } else {
    // FDEP2: all non-FDs, most specific first, synergized induction over an
    // extended FD-tree (one traversal per non-FD, whatever its RHS width).
    SortBySizeDescending(agree_sets);
    ExtendedFdTree tree(m);
    tree.init_root_fd(all);
    for (const AttributeSet& x : agree_sets) {
      if (deadline.expired()) {
        result.stats.timed_out = true;
        break;
      }
      tree.induct(x, all - x);
    }
    result.fds = tree.collect();
    tree_bytes = tree.memory_bytes();
  }

  result.fds.sort();
  result.stats.seconds = timer.seconds();
  size_t logical = agree_sets.capacity() * sizeof(AttributeSet) + tree_bytes;
  result.stats.memory_mb = std::max(
      mem.delta_peak_mb(), static_cast<double>(logical) / (1024.0 * 1024.0));
  return result;
}

}  // namespace dhyfd
