#ifndef DHYFD_ALGO_AGREE_SETS_H_
#define DHYFD_ALGO_AGREE_SETS_H_

#include <vector>

#include "relation/relation.h"
#include "util/attribute_set.h"
#include "util/deadline.h"

namespace dhyfd {

/// The distinct agree sets ag(t, t') over all pairs of distinct tuples
/// (paper Section IV-A). Each agree set X implies the non-FD X !-> R - X.
/// O(rows^2 * cols); this is the row-based algorithms' core cost.
/// If `deadline` fires, computation stops early and *timed_out is set.
std::vector<AttributeSet> ComputeAllAgreeSets(const Relation& r,
                                              int64_t* pairs_compared = nullptr,
                                              const Deadline* deadline = nullptr,
                                              bool* timed_out = nullptr);

/// Keeps only maximal agree sets (none a subset of another). NOTE: this is
/// NOT a complete negative cover on its own — a subsumed agree set Z of
/// Z' still refutes FDs whose RHS lies inside Z' - Z. Use
/// NonRedundantNonFds for induction.
std::vector<AttributeSet> MaximalAgreeSets(std::vector<AttributeSet> sets);

/// A non-FD with an explicitly restricted RHS: lhs !-> rhs.
struct NonFd {
  AttributeSet lhs;
  AttributeSet rhs;
};

/// The non-redundant cover of non-FDs FDEP1 inducts from: for each agree
/// set Z, the RHS is trimmed to the attributes A for which Z is maximal
/// among agree sets not containing A (per-attribute maximality). Entries
/// whose RHS empties out are dropped. Complete: every non-FD (Z, A) is
/// dominated by some retained (Z', A) with Z subseteq Z'.
std::vector<NonFd> NonRedundantNonFds(std::vector<AttributeSet> sets, int num_attrs);

/// Sorts descending by set size (ties by bits); the order FDEP2/DHyFD apply
/// non-FDs in (paper: most specific non-FDs first avoid redundant
/// inductions).
void SortBySizeDescending(std::vector<AttributeSet>& sets);

}  // namespace dhyfd

#endif  // DHYFD_ALGO_AGREE_SETS_H_
