#ifndef DHYFD_ALGO_DISCOVERY_H_
#define DHYFD_ALGO_DISCOVERY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fd/fd_set.h"
#include "relation/relation.h"

namespace dhyfd {

class ThreadPool;

/// Run statistics shared by every discovery algorithm; these back the
/// paper's Table II (time, memory) and the scalability figures.
struct DiscoveryStats {
  double seconds = 0;
  double memory_mb = 0;            // peak RSS delta during the run
  int64_t validations = 0;         // candidate FDs checked against the data
  int64_t invalidated = 0;         // candidates found invalid
  int64_t sampled_non_fds = 0;     // non-FDs from sampling / agree sets
  int64_t pairs_compared = 0;      // tuple pairs inspected
  int64_t refinements = 0;         // stripped-partition cluster refinements
  int ddm_updates = 0;             // DDM rebuilds (DHyFD only)
  int levels = 0;                  // validation levels processed
  /// True if the run was abandoned at its time limit; fds is then partial
  /// (the paper reports such runs as "TL").
  bool timed_out = false;
};

struct DiscoveryResult {
  /// A left-reduced cover of the FDs satisfied by the input, with singleton
  /// RHSs, in deterministic sorted order.
  FdSet fds;
  DiscoveryStats stats;
};

/// Common interface for all six discovery algorithms, so benches and tests
/// can sweep over them uniformly.
class FdDiscovery {
 public:
  virtual ~FdDiscovery() = default;
  virtual std::string name() const = 0;
  virtual DiscoveryResult discover(const Relation& r) = 0;
};

/// Names accepted by MakeDiscovery: "tane", "fdep", "fdep1", "fdep2",
/// "hyfd", "dhyfd", plus the extra row-based baselines "fastfds" and
/// "depminer". time_limit_seconds > 0 sets a cooperative deadline.
/// parallelism > 1 with a worker_pool shards the hybrid algorithms (hyfd,
/// dhyfd) over the pool; other algorithms ignore it. Parallel runs return
/// bit-identical covers to sequential ones.
std::unique_ptr<FdDiscovery> MakeDiscovery(const std::string& name,
                                           double time_limit_seconds = 0,
                                           int parallelism = 1,
                                           ThreadPool* worker_pool = nullptr);

/// All six algorithm names in the paper's Table II order.
const std::vector<std::string>& AllDiscoveryNames();

/// Brute-force reference: computes the left-reduced cover by enumerating
/// agree sets of all tuple pairs and minimizing. Exponential in columns;
/// only for cross-checking on small inputs in tests.
FdSet BruteForceDiscover(const Relation& r);

}  // namespace dhyfd

#endif  // DHYFD_ALGO_DISCOVERY_H_
