#include "algo/ddm.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace dhyfd {

Ddm::Ddm(const Relation& r) : rel_(r), refiner_(r) {
  const int m = r.num_cols();
  static_partitions_.reserve(m);
  attribute_supports_.reserve(m);
  for (AttrId a = 0; a < m; ++a) {
    static_partitions_.push_back(BuildAttributePartition(r, a));
    attribute_supports_.push_back(static_partitions_.back().support());
  }
}

const StrippedPartition& Ddm::partition_for_id(int id) const {
  if (id < rel_.num_cols()) return static_partitions_[id];
  return dynamic_[id - rel_.num_cols()].partition;
}

AttributeSet Ddm::attrs_for_id(int id) const {
  if (id < rel_.num_cols()) return AttributeSet::single(id);
  return dynamic_[id - rel_.num_cols()].attrs;
}

int64_t Ddm::update(const std::vector<ExtendedFdTree::Node*>& level_nodes,
                    ExtendedFdTree& tree, ThreadPool* pool, int parallelism) {
  const int m = rel_.num_cols();
  std::vector<Entry> fresh(level_nodes.size());
  int64_t refinements = 0;

  // Capture the nodes' current partition references before wiping ids:
  // Algorithm 3 starts each refinement from the node's previous partition.
  std::vector<int> old_ids;
  old_ids.reserve(level_nodes.size());
  for (const ExtendedFdTree::Node* node : level_nodes) old_ids.push_back(node->id);

  // Reset every id to its default so no node anywhere in the tree keeps a
  // reference into the dynamic array we are about to replace.
  tree.reset_ids();

  // Per-node rebuild. Entry ids are pre-assigned by node index (new_id =
  // m + idx), so the rebuilt array does not depend on completion order; the
  // level's nodes root disjoint subtrees, so the id propagation below writes
  // disjoint node sets.
  auto rebuild_node = [&](size_t idx, PartitionRefiner& refiner,
                          int64_t& shard_refinements) {
    ExtendedFdTree::Node* node = level_nodes[idx];
    AttributeSet path = tree.path_of(node);
    // Algorithm 3 steps 7-9: start from the node's current partition — the
    // dynamic entry its id pointed to, or its own attribute's partition.
    const StrippedPartition* start;
    AttributeSet start_attrs;
    if (old_ids[idx] >= m) {
      const Entry& e = dynamic_[old_ids[idx] - m];
      start = &e.partition;
      start_attrs = e.attrs;
    } else {
      start = &static_partitions_[node->attr];
      start_attrs = AttributeSet::single(node->attr);
    }
    Entry& entry = fresh[idx];
    entry.attrs = path;
    entry.partition = *start;
    AttributeSet todo = path - start_attrs;
    todo.for_each([&](AttrId b) {
      shard_refinements += entry.partition.size();
      refiner.refine_inplace(entry.partition, b);
    });
    int new_id = m + static_cast<int>(idx);
    // Step 13-15: re-point the node and propagate to descendants, keeping
    // every id consistent (descendant paths are supersets of `path`).
    std::vector<ExtendedFdTree::Node*> stack = {node};
    while (!stack.empty()) {
      ExtendedFdTree::Node* cur = stack.back();
      stack.pop_back();
      cur->id = new_id;
      for (const auto& c : cur->children) stack.push_back(c.get());
    }
  };

  if (pool != nullptr && parallelism > 1 && level_nodes.size() > 1) {
    std::size_t shards = std::min(level_nodes.size(),
                                  static_cast<std::size_t>(parallelism));
    std::vector<int64_t> shard_refinements(shards, 0);
    Mutex totals_mu;
    pool->parallel_for(
        level_nodes.size(), parallelism,
        [&](size_t shard, size_t begin, size_t end) {
          PartitionRefiner refiner(rel_);
          int64_t local = 0;
          for (size_t idx = begin; idx < end; ++idx) {
            rebuild_node(idx, refiner, local);
          }
          MutexLock lock(&totals_mu);
          shard_refinements[shard] = local;
        },
        kObsDiscoverShard);
    for (int64_t r : shard_refinements) refinements += r;
  } else {
    for (size_t idx = 0; idx < level_nodes.size(); ++idx) {
      rebuild_node(idx, refiner_, refinements);
    }
  }

  dynamic_ = std::move(fresh);
  ObsAdd(kObsPartitionDdmDynamicBuilds, static_cast<int64_t>(dynamic_.size()));
  ObsAdd(kObsPartitionDdmRefinements, refinements);
  return refinements;
}

size_t Ddm::memory_bytes() const {
  size_t bytes = 0;
  for (const StrippedPartition& p : static_partitions_) bytes += p.memory_bytes();
  for (const Entry& e : dynamic_) bytes += e.partition.memory_bytes();
  return bytes;
}

}  // namespace dhyfd
