#include "algo/validator.h"

#include <iterator>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"

namespace dhyfd {

ValidationOutcome ValidateWithPartition(const Relation& r, const AttributeSet& lhs,
                                        const AttributeSet& rhs,
                                        const StrippedPartition& base,
                                        const AttributeSet& base_attrs,
                                        PartitionRefiner& refiner) {
  ValidationOutcome out;
  out.valid_rhs = rhs;
  if (rhs.empty()) return out;
  // Counters are flushed once per call (below), not per pair: the observer
  // costs one thread-local check even when every row is visited.
  struct CallCounters {
    const ValidationOutcome& out;
    const AttributeSet& rhs;
    ~CallCounters() {
      ObsAdd(kObsDiscoverValidatorCalls);
      ObsAdd(kObsDiscoverValidatorPairs, out.pairs_checked);
      ObsAdd(kObsDiscoverValidatorRefutedFds,
             rhs.count() - out.valid_rhs.count());
      ObsAdd(kObsPartitionSingleClusterRefinements, out.refinements);
    }
  } counters{out, rhs};

  AttributeSet missing = lhs - base_attrs;
  std::vector<AttrId> missing_attrs;
  missing.for_each([&](AttrId a) { missing_attrs.push_back(a); });

  // Two CSR scratch arenas ping-pong per refinement step; their capacity is
  // reused across every class of `base`, so the whole call allocates only
  // while the arenas first grow.
  StrippedPartition pi, next;
  for (ClusterView s : base.clusters()) {
    // Algorithm 4 steps 5-8: refine only this class, one attribute at a time.
    pi.clear();
    pi.add_cluster(s);
    for (AttrId a : missing_attrs) {
      next.clear();
      const size_t n = static_cast<size_t>(pi.size());
      for (size_t i = 0; i < n; ++i) {
        refiner.refine_cluster(pi.cluster(i), a, next);
        ++out.refinements;
      }
      pi.swap(next);
      if (pi.empty()) break;
    }
    for (ClusterView cluster : pi.clusters()) {
      RowId t0 = cluster[0];
      for (size_t i = 1; i < cluster.size(); ++i) {
        RowId ti = cluster[i];
        ++out.pairs_checked;
        AttributeSet invalid;
        out.valid_rhs.for_each([&](AttrId a) {
          if (r.value(ti, a) != r.value(t0, a)) invalid.set(a);
        });
        if (!invalid.empty()) {
          out.valid_rhs -= invalid;
          out.violations.push_back(r.agree_set(t0, ti));
          if (out.valid_rhs.empty()) return out;
        }
      }
    }
  }
  return out;
}

ValidationOutcome ValidateApproxWithPartition(const Relation& r,
                                              const AttributeSet& lhs,
                                              const AttributeSet& rhs,
                                              const StrippedPartition& base,
                                              const AttributeSet& base_attrs,
                                              PartitionRefiner& refiner,
                                              int64_t budget) {
  ValidationOutcome out;
  out.valid_rhs = rhs;
  if (rhs.empty()) return out;
  struct CallCounters {
    const ValidationOutcome& out;
    const AttributeSet& rhs;
    ~CallCounters() {
      ObsAdd(kObsDiscoverValidatorCalls);
      ObsAdd(kObsDiscoverValidatorPairs, out.pairs_checked);
      ObsAdd(kObsDiscoverValidatorRefutedFds,
             rhs.count() - out.valid_rhs.count());
      ObsAdd(kObsPartitionSingleClusterRefinements, out.refinements);
    }
  } counters{out, rhs};

  AttributeSet missing = lhs - base_attrs;
  std::vector<AttrId> missing_attrs;
  missing.for_each([&](AttrId a) { missing_attrs.push_back(a); });

  // Per-RHS removal counts accumulate across base classes; an attribute is
  // refuted the moment its count exceeds the budget. Removal counting is
  // additive over disjoint classes, so per-class accumulation computes the
  // same total as one pass over the full pi_X.
  ApproxErrorCalculator calc(r);
  std::vector<int64_t> removals(static_cast<size_t>(r.num_cols()), 0);

  StrippedPartition pi, next;
  for (ClusterView s : base.clusters()) {
    pi.clear();
    pi.add_cluster(s);
    for (AttrId a : missing_attrs) {
      next.clear();
      const size_t n = static_cast<size_t>(pi.size());
      for (size_t i = 0; i < n; ++i) {
        refiner.refine_cluster(pi.cluster(i), a, next);
        ++out.refinements;
      }
      pi.swap(next);
      if (pi.empty()) break;
    }
    if (pi.empty()) continue;
    AttributeSet refuted;
    out.valid_rhs.for_each([&](AttrId a) {
      out.pairs_checked += pi.support();
      removals[a] += calc.removals(pi, a);
      if (removals[a] > budget) refuted.set(a);
    });
    if (!refuted.empty()) {
      out.valid_rhs -= refuted;
      if (out.valid_rhs.empty()) return out;
    }
  }
  return out;
}

void LevelValidationResult::append(LevelValidationResult&& o) {
  violations.insert(violations.end(),
                    std::make_move_iterator(o.violations.begin()),
                    std::make_move_iterator(o.violations.end()));
  refuted_fds.insert(refuted_fds.end(),
                     std::make_move_iterator(o.refuted_fds.begin()),
                     std::make_move_iterator(o.refuted_fds.end()));
  validations += o.validations;
  pairs_checked += o.pairs_checked;
  refinements += o.refinements;
  invalidated += o.invalidated;
  timed_out = timed_out || o.timed_out;
}

ParFdStorageBuilder::ParFdStorageBuilder(std::size_t shards) {
  MutexLock lock(&mu_);
  per_shard_.resize(shards);
}

void ParFdStorageBuilder::add(std::size_t shard, LevelValidationResult result) {
  MutexLock lock(&mu_);
  per_shard_[shard] = std::move(result);
}

LevelValidationResult ParFdStorageBuilder::take_merged() {
  MutexLock lock(&mu_);
  LevelValidationResult merged;
  for (LevelValidationResult& slice : per_shard_) {
    merged.append(std::move(slice));
  }
  per_shard_.clear();
  return merged;
}

}  // namespace dhyfd
