#ifndef DHYFD_SERVICE_DATASET_REGISTRY_H_
#define DHYFD_SERVICE_DATASET_REGISTRY_H_

#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relation/csv.h"
#include "relation/encoder.h"
#include "service/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// Caches DIIS-encoded relations by (dataset name, null semantics) so that
/// repeated profiling jobs against the same table skip re-reading and
/// re-encoding the CSV — the EAIFD view of profiling as repeated jobs over
/// (mostly) stable datasets rather than one-shot batches.
///
/// Thread safety: all methods may be called concurrently. When several jobs
/// request the same not-yet-encoded entry at once, exactly one thread
/// encodes while the others block on a shared future — encoding work is
/// never duplicated.
class DatasetRegistry {
 public:
  /// `metrics` is optional; when set, the registry reports
  /// dataset.cache_hits / dataset.cache_misses counters and a
  /// dataset.encode_seconds histogram into it. Not owned.
  explicit DatasetRegistry(MetricsRegistry* metrics = nullptr)
      : metrics_(metrics) {}

  /// Registers an in-memory raw table under `name` (replacing any previous
  /// registration and dropping its cached encodings).
  void add_table(const std::string& name, RawTable table) DHYFD_EXCLUDES(mu_);

  /// Registers a CSV file; it is read lazily on the first get().
  void add_csv_file(const std::string& name, const std::string& path,
                    CsvOptions options = {}) DHYFD_EXCLUDES(mu_);

  /// The encoded relation for `name` under `semantics`, encoding on first
  /// use. Throws std::out_of_range for unknown names; file-read or encode
  /// errors propagate to every waiting caller and are retried on the next
  /// get(). The returned pointer stays valid after erase()/clear().
  std::shared_ptr<const Relation> get(const std::string& name,
                                      NullSemantics semantics)
      DHYFD_EXCLUDES(mu_);

  bool contains(const std::string& name) const DHYFD_EXCLUDES(mu_);
  std::vector<std::string> names() const DHYFD_EXCLUDES(mu_);

  void erase(const std::string& name) DHYFD_EXCLUDES(mu_);
  void clear() DHYFD_EXCLUDES(mu_);

 private:
  struct Entry {
    // Exactly one of table / path is the source.
    std::shared_ptr<const RawTable> table;
    std::string path;
    CsvOptions csv_options;
    // Cached encodings, one slot per NullSemantics value; a slot holds a
    // shared future so concurrent first-getters encode once. Guarded by the
    // registry's mu_ (entries are only mutated through it); the encode
    // itself runs outside the lock on the shared future.
    std::map<NullSemantics, std::shared_future<std::shared_ptr<const Relation>>>
        encoded;
  };

  mutable Mutex mu_;
  std::map<std::string, std::shared_ptr<Entry>> entries_ DHYFD_GUARDED_BY(mu_);
  MetricsRegistry* metrics_;
};

}  // namespace dhyfd

#endif  // DHYFD_SERVICE_DATASET_REGISTRY_H_
