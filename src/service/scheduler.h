#ifndef DHYFD_SERVICE_SCHEDULER_H_
#define DHYFD_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "obs/obs_schema.gen.h"
#include "service/dataset_registry.h"
#include "service/job.h"
#include "service/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dhyfd {

struct SchedulerOptions {
  /// Worker threads; 0 picks std::thread::hardware_concurrency().
  int num_threads = 0;
  /// Bound on queued-but-not-running jobs (0 = unbounded). When full,
  /// submit() blocks until a worker frees a slot.
  std::size_t max_queue = 0;
  /// Hard admission bound on pending (queued-but-not-running) jobs
  /// (0 = unbounded). Unlike max_queue, hitting this limit never blocks:
  /// submit() returns a kFailed handle with rejected() set, so a network
  /// front end can answer "server busy" instead of stalling its event loop.
  std::size_t max_pending = 0;
};

/// The service core: accepts ProfileJobs, runs them on a ThreadPool in
/// priority order (ties FIFO), tracks per-job state, enforces per-job time
/// limits via util/deadline.h, supports cooperative cancellation, and
/// reports into a MetricsRegistry:
///
///   counters   jobs.submitted / completed / failed / cancelled / rejected
///   gauges     jobs.queued, jobs.running
///   histograms jobs.queue_seconds, jobs.run_seconds, and
///              stage.{encode,discover,canonical,rank}_seconds
///
/// Datasets are resolved by name through the DatasetRegistry, so concurrent
/// jobs over the same table share one encoded relation.
class JobScheduler {
 public:
  /// Neither registry is owned; both must outlive the scheduler.
  JobScheduler(DatasetRegistry* datasets, MetricsRegistry* metrics,
               SchedulerOptions options = {});

  /// Equivalent to shutdown().
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues a job; returns its handle immediately. Returns a kFailed
  /// handle (never nullptr) if the scheduler is already shut down, or — with
  /// rejected() set — if options.max_pending jobs are already waiting.
  JobHandlePtr submit(ProfileJob job) DHYFD_EXCLUDES(mu_);

  /// Stops accepting jobs, runs everything queued, joins the workers.
  /// Idempotent. Queued jobs whose handles were cancelled are dropped.
  void shutdown() DHYFD_EXCLUDES(mu_);

  /// Convenience: blocks until every job submitted so far is terminal.
  void wait_all() const DHYFD_EXCLUDES(mu_);

  int num_threads() const { return pool_.num_threads(); }
  std::int64_t queued_jobs() const { return metrics_->gauge(kObsJobsQueued).value(); }
  std::int64_t running_jobs() const { return metrics_->gauge(kObsJobsRunning).value(); }

 private:
  struct PendingOrder {
    bool operator()(const JobHandlePtr& a, const JobHandlePtr& b) const;
  };

  /// Pool task: pops the best pending job and runs it to a terminal state.
  void run_one() DHYFD_EXCLUDES(mu_);
  void execute(const JobHandlePtr& handle) DHYFD_EXCLUDES(mu_);
  /// Marks every still-queued pending job cancelled (shutdown cleanup).
  void reclaim_pending() DHYFD_EXCLUDES(mu_);

  DatasetRegistry* datasets_;
  MetricsRegistry* metrics_;
  const std::size_t max_pending_;
  ThreadPool pool_;

  mutable Mutex mu_;
  std::priority_queue<JobHandlePtr, std::vector<JobHandlePtr>, PendingOrder>
      pending_ DHYFD_GUARDED_BY(mu_);
  std::vector<JobHandlePtr> all_jobs_ DHYFD_GUARDED_BY(mu_);
  std::uint64_t next_id_ DHYFD_GUARDED_BY(mu_) = 1;
  bool shutdown_ DHYFD_GUARDED_BY(mu_) = false;
};

}  // namespace dhyfd

#endif  // DHYFD_SERVICE_SCHEDULER_H_
