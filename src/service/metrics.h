#ifndef DHYFD_SERVICE_METRICS_H_
#define DHYFD_SERVICE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// Monotone event count (jobs submitted, cache hits, ...). Lock-free.
class Counter {
 public:
  void inc(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Instantaneous level (queue depth, jobs running, ...). Lock-free.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Latency distribution in seconds: count/sum/min/max plus log-scale
/// buckets from 1 µs to 1000 s (upper bounds 1e-6, 1e-5, ..., 1e3, +inf).
/// Mutex-protected — profiling stages last milliseconds to minutes, so a
/// lock per observation is noise.
class Histogram {
 public:
  static constexpr int kNumBuckets = 11;

  /// Inclusive upper bound of bucket `i` in seconds (1e-6 for i=0, ...,
  /// 1e3 for i=9); the last bucket (i = kNumBuckets-1) is +infinity. An
  /// observation lands in the first bucket with `seconds <= bound`.
  static double bucket_bound(int i);

  /// Consistent copy of a histogram's state, for exporters and tests.
  /// All derived statistics (mean, quantiles) are computable from one
  /// Snapshot, so exporters take the histogram lock exactly once and every
  /// printed figure describes the same instant.
  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    std::int64_t buckets[kNumBuckets] = {};

    double mean() const;
    /// Upper-bound estimate of the q-quantile from the buckets, clamped to
    /// the observed [min, max]. Out-of-range q is clamped to [0, 1]; q=0
    /// returns min, q=1 returns max, and an empty histogram returns 0.
    double quantile(double q) const;
  };

  void record(double seconds) DHYFD_EXCLUDES(mu_);

  std::int64_t count() const DHYFD_EXCLUDES(mu_);
  double sum() const DHYFD_EXCLUDES(mu_);
  double min() const DHYFD_EXCLUDES(mu_);  // 0 when empty
  double max() const DHYFD_EXCLUDES(mu_);
  double mean() const DHYFD_EXCLUDES(mu_);
  /// Snapshot::quantile over the current state.
  double quantile(double q) const DHYFD_EXCLUDES(mu_);

  Snapshot snapshot_state() const DHYFD_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::int64_t count_ DHYFD_GUARDED_BY(mu_) = 0;
  double sum_ DHYFD_GUARDED_BY(mu_) = 0;
  double min_ DHYFD_GUARDED_BY(mu_) = 0;
  double max_ DHYFD_GUARDED_BY(mu_) = 0;
  std::int64_t buckets_[kNumBuckets] DHYFD_GUARDED_BY(mu_) = {};
};

/// Names and owns metrics for one service instance. Lookups create on first
/// use and return stable references, so hot paths can cache `Counter&`.
/// snapshot() renders everything as a sorted, human-readable text block —
/// the export format every future network front-end can wrap.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) DHYFD_EXCLUDES(mu_);
  Gauge& gauge(const std::string& name) DHYFD_EXCLUDES(mu_);
  Histogram& histogram(const std::string& name) DHYFD_EXCLUDES(mu_);

  /// `# TYPE`-style text dump: one line per counter/gauge, a short
  /// count/mean/min/max/p50/p99 line per histogram. Deterministic: metric
  /// names are sorted, and process gauges are refreshed first.
  std::string snapshot() DHYFD_EXCLUDES(mu_);

  /// Updates the process-level gauges (process.rss_bytes and
  /// process.peak_rss_bytes from /proc). Called by snapshot() and the
  /// Prometheus exporter so memory shows up in every export.
  void refresh_process_gauges() DHYFD_EXCLUDES(mu_);

  /// Sorted name -> value copies, for exporters. Histogram snapshots are
  /// taken one histogram at a time; each is internally consistent.
  std::map<std::string, std::int64_t> counter_values() const
      DHYFD_EXCLUDES(mu_);
  std::map<std::string, std::int64_t> gauge_values() const
      DHYFD_EXCLUDES(mu_);
  std::map<std::string, Histogram::Snapshot> histogram_values() const
      DHYFD_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DHYFD_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DHYFD_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DHYFD_GUARDED_BY(mu_);
};

}  // namespace dhyfd

#endif  // DHYFD_SERVICE_METRICS_H_
