#include "service/live_store.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace dhyfd {

// ---------------------------------------------------------------- handle

UpdateJobState UpdateJobHandle::state() const {
  MutexLock lock(&mu_);
  return state_;
}

bool UpdateJobHandle::finished() const {
  MutexLock lock(&mu_);
  return terminal_locked();
}

void UpdateJobHandle::wait() const {
  MutexLock lock(&mu_);
  while (!terminal_locked()) done_cv_.wait(lock);
}

bool UpdateJobHandle::wait_for(double seconds) const {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
  MutexLock lock(&mu_);
  while (!terminal_locked()) {
    if (done_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return terminal_locked();
    }
  }
  return true;
}

const CoverDelta& UpdateJobHandle::delta() const {
  MutexLock lock(&mu_);
  while (!terminal_locked()) done_cv_.wait(lock);
  if (state_ == UpdateJobState::kFailed) {
    throw std::runtime_error("update job failed: " + error_);
  }
  // Terminal state is sticky and delta_ is never written again, so the
  // reference stays valid after the lock is dropped.
  return delta_;
}

std::string UpdateJobHandle::error() const {
  MutexLock lock(&mu_);
  return error_;
}

CostLedger UpdateJobHandle::cost() const {
  MutexLock lock(&mu_);
  return cost_;
}

// ----------------------------------------------------------------- store

LiveStore::LiveStore(MetricsRegistry* metrics, int num_threads)
    : metrics_(metrics),
      pool_(num_threads > 0
                ? num_threads
                : static_cast<int>(std::thread::hardware_concurrency())) {}

LiveStore::~LiveStore() { shutdown(); }

void LiveStore::create(const std::string& name, RawTable initial,
                       LiveDatasetOptions options) {
  auto entry = std::make_shared<Entry>();
  // Initial discovery runs synchronously, outside any lock; create() is the
  // caller's setup phase, not the hot path.
  entry->profile = std::make_unique<LiveProfile>(initial, options.profile,
                                                 options.semantics);
  {
    MutexLock lock(&mu_);
    if (shutdown_) throw std::runtime_error("LiveStore is shut down");
    if (!datasets_.emplace(name, std::move(entry)).second) {
      throw std::invalid_argument("live dataset already exists: " + name);
    }
  }
  metrics_->gauge(kObsIncrDatasets).add(1);
}

bool LiveStore::contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return datasets_.count(name) != 0;
}

std::vector<std::string> LiveStore::names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(datasets_.size());
  for (const auto& [name, entry] : datasets_) out.push_back(name);
  return out;
}

std::shared_ptr<LiveStore::Entry> LiveStore::find(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = datasets_.find(name);
  return it == datasets_.end() ? nullptr : it->second;
}

UpdateJobHandlePtr LiveStore::failed_handle(std::uint64_t id, UpdateJob job,
                                            std::string error) {
  UpdateJobHandlePtr h(new UpdateJobHandle(id, std::move(job.dataset),
                                           std::move(job.batch), job.mode));
  // The handle has not escaped yet, but taking its lock keeps the write
  // provable instead of "safe by publication order".
  MutexLock lock(&h->mu_);
  h->state_ = UpdateJobState::kFailed;
  h->error_ = std::move(error);
  return h;
}

UpdateJobHandlePtr LiveStore::submit(UpdateJob job) {
  std::uint64_t id;
  {
    MutexLock lock(&mu_);
    id = next_job_id_++;
    if (shutdown_) {
      metrics_->counter(kObsIncrJobsFailed).inc();
      return failed_handle(id, std::move(job), "LiveStore is shut down");
    }
  }
  std::shared_ptr<Entry> entry = find(job.dataset);
  if (!entry) {
    metrics_->counter(kObsIncrJobsFailed).inc();
    std::string error = "unknown live dataset: " + job.dataset;
    return failed_handle(id, std::move(job), std::move(error));
  }

  UpdateJobHandlePtr h(new UpdateJobHandle(id, std::move(job.dataset),
                                           std::move(job.batch), job.mode));
  Tracer& tracer = Tracer::Global();
  if (job.trace_id != 0) {
    // Adopt the caller's (e.g. a client-stamped request's) trace id so this
    // batch's spans join that tree instead of starting a fresh one.
    h->trace_id_ = job.trace_id;
    if (tracer.enabled()) h->submit_ts_us_ = tracer.now_us();
  } else if (tracer.enabled()) {
    h->trace_id_ = tracer.next_trace_id();
    h->submit_ts_us_ = tracer.now_us();
  }
  {
    MutexLock lock(&mu_);
    ++unfinished_jobs_;
  }
  metrics_->gauge(kObsIncrJobsQueued).add(1);

  bool claim;
  {
    MutexLock lock(&entry->mu);
    entry->queue.push_back(h);
    // One worker per dataset at a time: only the submitter that flips
    // `draining` schedules a drain task; everyone else just enqueues.
    claim = !entry->draining;
    if (claim) entry->draining = true;
  }
  if (claim && !pool_.submit([this, entry] { drain(entry); })) {
    // Pool refused (shutdown raced us); run inline so the handle terminates.
    drain(entry);
  }
  return h;
}

void LiveStore::drain(const std::shared_ptr<Entry>& entry) {
  for (;;) {
    UpdateJobHandlePtr h;
    {
      MutexLock lock(&entry->mu);
      if (entry->queue.empty()) {
        entry->draining = false;
        return;
      }
      h = std::move(entry->queue.front());
      entry->queue.pop_front();
    }
    run_job(entry, h);
  }
}

void LiveStore::run_job(const std::shared_ptr<Entry>& entry,
                        const UpdateJobHandlePtr& h) {
  {
    MutexLock lock(&h->mu_);
    h->state_ = UpdateJobState::kRunning;
  }
  metrics_->gauge(kObsIncrJobsQueued).add(-1);

  Tracer& tracer = Tracer::Global();
  if (h->trace_id_ != 0 && h->submit_ts_us_ != 0 && tracer.enabled()) {
    // Synthetic per-job lane; see JobScheduler::run_one for why queue-wait
    // spans cannot live on a worker's real lane.
    std::uint32_t lane =
        900000u + static_cast<std::uint32_t>(h->trace_id_ % 100000);
    tracer.record_span(kObsIncrQueueWait, h->trace_id_, h->submit_ts_us_,
                       tracer.now_us(), lane);
  }

  CoverDelta delta;
  std::string error;
  CostLedger cost;
  {
    // The strand worker runs under the batch's trace id with a per-batch
    // sink, so incr.* counters and spans group under this update's tree;
    // the cost scope classifies the same counters into the batch's ledger.
    TraceIdScope trace_scope(h->trace_id_);
    TelemetrySink sink(metrics_, h->trace_id_);
    ObsScope obs_scope(&sink);
    CostLedgerScope cost_scope(&cost);
    TraceSpan batch_span(kObsIncrBatch);
    MutexLock lock(&entry->profile_mu);
    try {
      delta = entry->profile->apply(h->batch_, h->mode_);
    } catch (const std::exception& e) {
      error = e.what();
    }
  }

  if (error.empty()) {
    const BatchStats& s = delta.stats;
    metrics_->counter(kObsIncrBatches).inc();
    metrics_->counter(kObsIncrRowsInserted).inc(s.rows_inserted);
    metrics_->counter(kObsIncrRowsDeleted).inc(s.rows_deleted);
    metrics_->counter(kObsIncrFdsAdded).inc(s.fds_added);
    metrics_->counter(kObsIncrFdsRemoved).inc(s.fds_removed);
    if (s.rebuilt) metrics_->counter(kObsIncrRebuilds).inc();
    metrics_->histogram(kObsIncrBatchSeconds).record(s.seconds);

    CoverChangeEvent event;
    event.dataset = h->dataset_;
    event.batch_id = h->id();
    event.added = delta.added;
    event.removed = delta.removed;
    event.stats = delta.stats;
    event.trace_id = h->trace_id_;

    {
      MutexLock lock(&h->mu_);
      h->delta_ = std::move(delta);
      h->cost_ = cost;
      h->state_ = UpdateJobState::kDone;
    }
    h->done_cv_.notify_all();
    // Listeners fire after the handle commits but still on the strand, so
    // one dataset's events arrive in batch order.
    notify(event);
  } else {
    metrics_->counter(kObsIncrJobsFailed).inc();
    {
      MutexLock lock(&h->mu_);
      h->error_ = std::move(error);
      h->cost_ = cost;
      h->state_ = UpdateJobState::kFailed;
    }
    h->done_cv_.notify_all();
  }

  {
    MutexLock lock(&mu_);
    --unfinished_jobs_;
  }
  idle_cv_.notify_all();
}

void LiveStore::notify(const CoverChangeEvent& event) {
  std::vector<CoverChangeListener> listeners;
  {
    MutexLock lock(&mu_);
    listeners.reserve(listeners_.size());
    for (const auto& [token, fn] : listeners_) listeners.push_back(fn);
  }
  for (const auto& fn : listeners) fn(event);
}

CoverDelta LiveStore::apply(const std::string& name, UpdateBatch batch,
                            ApplyMode mode) {
  UpdateJobHandlePtr h = submit({name, std::move(batch), mode});
  return h->delta();  // throws on failure
}

FdSet LiveStore::cover(const std::string& name) const {
  std::shared_ptr<Entry> entry = find(name);
  if (!entry) throw std::invalid_argument("unknown live dataset: " + name);
  MutexLock lock(&entry->profile_mu);
  return entry->profile->cover();
}

std::vector<FdRedundancy> LiveStore::ranking(const std::string& name) const {
  std::shared_ptr<Entry> entry = find(name);
  if (!entry) throw std::invalid_argument("unknown live dataset: " + name);
  MutexLock lock(&entry->profile_mu);
  return entry->profile->ranking();
}

RowId LiveStore::live_rows(const std::string& name) const {
  std::shared_ptr<Entry> entry = find(name);
  if (!entry) throw std::invalid_argument("unknown live dataset: " + name);
  MutexLock lock(&entry->profile_mu);
  return entry->profile->live_relation().live_rows();
}

std::uint64_t LiveStore::subscribe(CoverChangeListener listener) {
  MutexLock lock(&mu_);
  std::uint64_t token = next_listener_id_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void LiveStore::unsubscribe(std::uint64_t token) {
  MutexLock lock(&mu_);
  listeners_.erase(token);
}

void LiveStore::shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  // The pool drains queued strand tasks before joining, so every already-
  // submitted batch reaches a terminal state.
  pool_.shutdown();
}

void LiveStore::wait_all() const {
  MutexLock lock(&mu_);
  while (unfinished_jobs_ != 0) idle_cv_.wait(lock);
}

}  // namespace dhyfd
