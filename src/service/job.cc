#include "service/job.h"

#include <chrono>
#include <stdexcept>

namespace dhyfd {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

namespace {

bool IsTerminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed ||
         s == JobState::kCancelled;
}

}  // namespace

JobState JobHandle::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

bool JobHandle::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return IsTerminal(state_);
}

void JobHandle::cancel() { cancel_token_.cancel(); }

void JobHandle::wait() const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return IsTerminal(state_); });
}

bool JobHandle::wait_for(double seconds) const {
  std::unique_lock<std::mutex> lock(mu_);
  return done_cv_.wait_for(lock, std::chrono::duration<double>(seconds),
                           [this] { return IsTerminal(state_); });
}

const ProfileReport& JobHandle::report() const {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return IsTerminal(state_); });
  if (has_report_) return report_;
  if (state_ == JobState::kFailed) {
    throw std::runtime_error("profile job failed: " + error_);
  }
  throw std::runtime_error("profile job cancelled before it started");
}

std::string JobHandle::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

double JobHandle::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_seconds_;
}

double JobHandle::run_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_seconds_;
}

}  // namespace dhyfd
