#include "service/job.h"

#include <chrono>
#include <stdexcept>

namespace dhyfd {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

bool JobHandle::finished_locked() const {
  return state_ == JobState::kDone || state_ == JobState::kFailed ||
         state_ == JobState::kCancelled;
}

JobState JobHandle::state() const {
  MutexLock lock(&mu_);
  return state_;
}

bool JobHandle::finished() const {
  MutexLock lock(&mu_);
  return finished_locked();
}

void JobHandle::cancel() { cancel_token_.cancel(); }

void JobHandle::wait() const {
  MutexLock lock(&mu_);
  while (!finished_locked()) done_cv_.wait(lock);
}

bool JobHandle::wait_for(double seconds) const {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
  MutexLock lock(&mu_);
  while (!finished_locked()) {
    if (done_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return finished_locked();
    }
  }
  return true;
}

const ProfileReport& JobHandle::report() const {
  MutexLock lock(&mu_);
  while (!finished_locked()) done_cv_.wait(lock);
  // Terminal state is sticky and report_ is never written again, so the
  // reference stays valid after the lock is dropped.
  if (has_report_) return report_;
  if (state_ == JobState::kFailed) {
    throw std::runtime_error("profile job failed: " + error_);
  }
  throw std::runtime_error("profile job cancelled before it started");
}

std::string JobHandle::error() const {
  MutexLock lock(&mu_);
  return error_;
}

double JobHandle::queue_seconds() const {
  MutexLock lock(&mu_);
  return queue_seconds_;
}

double JobHandle::run_seconds() const {
  MutexLock lock(&mu_);
  return run_seconds_;
}

CostLedger JobHandle::cost() const {
  MutexLock lock(&mu_);
  return cost_;
}

}  // namespace dhyfd
