#ifndef DHYFD_SERVICE_LIVE_STORE_H_
#define DHYFD_SERVICE_LIVE_STORE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "incr/live_profile.h"
#include "obs/cost_ledger.h"
#include "relation/csv.h"
#include "service/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace dhyfd {

/// Per-dataset configuration for LiveStore::create().
struct LiveDatasetOptions {
  LiveProfileOptions profile;
  NullSemantics semantics = NullSemantics::kNullEqualsNull;
};

/// One update request against a live dataset.
struct UpdateJob {
  std::string dataset;
  UpdateBatch batch;
  /// Forces a compact + full re-discovery for this batch.
  ApplyMode mode = ApplyMode::kIncremental;
  /// Trace id to adopt for this batch's span tree (0 = mint one when tracing
  /// is on). Set by the net server from the client-stamped trace context.
  std::uint64_t trace_id = 0;
};

enum class UpdateJobState { kQueued, kRunning, kDone, kFailed };

/// Shared state of one submitted update; all methods thread-safe.
class UpdateJobHandle {
 public:
  std::uint64_t id() const { return id_; }
  const std::string& dataset() const { return dataset_; }

  UpdateJobState state() const DHYFD_EXCLUDES(mu_);
  bool finished() const DHYFD_EXCLUDES(mu_);
  void wait() const DHYFD_EXCLUDES(mu_);
  bool wait_for(double seconds) const DHYFD_EXCLUDES(mu_);

  /// The batch's cover delta; throws std::runtime_error for kFailed.
  /// Blocks until terminal.
  const CoverDelta& delta() const DHYFD_EXCLUDES(mu_);
  /// Error message for kFailed jobs ("" otherwise).
  std::string error() const DHYFD_EXCLUDES(mu_);

  /// Trace id grouping this batch's spans/counters when tracing was enabled
  /// at submission (0 otherwise).
  std::uint64_t trace_id() const { return trace_id_; }

  /// Resource cost the worker accumulated applying this batch (zero-valued
  /// until the job ran). Valid once the job is terminal.
  CostLedger cost() const DHYFD_EXCLUDES(mu_);

 private:
  friend class LiveStore;

  UpdateJobHandle(std::uint64_t id, std::string dataset, UpdateBatch batch,
                  ApplyMode mode)
      : id_(id), dataset_(std::move(dataset)), batch_(std::move(batch)), mode_(mode) {}

  /// True for kDone / kFailed.
  bool terminal_locked() const DHYFD_REQUIRES(mu_) {
    return state_ == UpdateJobState::kDone || state_ == UpdateJobState::kFailed;
  }

  const std::uint64_t id_;
  const std::string dataset_;
  UpdateBatch batch_;
  ApplyMode mode_;
  // Set once by LiveStore::submit() before the handle is shared; read-only
  // afterwards.
  std::uint64_t trace_id_ = 0;
  std::int64_t submit_ts_us_ = 0;

  mutable Mutex mu_;
  mutable CondVar done_cv_;
  UpdateJobState state_ DHYFD_GUARDED_BY(mu_) = UpdateJobState::kQueued;
  CoverDelta delta_ DHYFD_GUARDED_BY(mu_);
  std::string error_ DHYFD_GUARDED_BY(mu_);
  CostLedger cost_ DHYFD_GUARDED_BY(mu_);
};

using UpdateJobHandlePtr = std::shared_ptr<UpdateJobHandle>;

/// What one applied batch changed; delivered to subscribers after the cover
/// is updated (outside the dataset's profile lock, in batch order).
struct CoverChangeEvent {
  std::string dataset;
  std::uint64_t batch_id = 0;
  FdSet added;
  FdSet removed;
  BatchStats stats;
  /// Trace id of the update batch that produced this delta (0 = untraced),
  /// so streamed events stay attributable to the request that caused them.
  std::uint64_t trace_id = 0;
};

using CoverChangeListener = std::function<void(const CoverChangeEvent&)>;

/// Hosts named LiveProfiles and applies update batches to them on a shared
/// thread pool. Batches for one dataset form a strand: they run strictly in
/// submission order, one at a time, while different datasets update in
/// parallel. Reads (cover / ranking / stats) take a per-dataset lock and
/// return copies, so they never observe a half-applied batch.
///
/// Metrics: counters incr.batches, incr.rows_inserted, incr.rows_deleted,
/// incr.fds_added, incr.fds_removed, incr.rebuilds, incr.jobs_failed;
/// gauges incr.datasets, incr.jobs_queued; histogram incr.batch_seconds.
class LiveStore {
 public:
  /// `metrics` is not owned and must outlive the store.
  explicit LiveStore(MetricsRegistry* metrics, int num_threads = 0);

  /// Equivalent to shutdown().
  ~LiveStore();

  LiveStore(const LiveStore&) = delete;
  LiveStore& operator=(const LiveStore&) = delete;

  /// Registers a dataset and runs initial discovery synchronously. Throws
  /// std::invalid_argument if the name is taken.
  void create(const std::string& name, RawTable initial,
              LiveDatasetOptions options = {}) DHYFD_EXCLUDES(mu_);

  bool contains(const std::string& name) const DHYFD_EXCLUDES(mu_);
  std::vector<std::string> names() const DHYFD_EXCLUDES(mu_);

  /// Enqueues a batch; returns its handle immediately (kFailed handle if the
  /// dataset is unknown or the store is shut down — never nullptr).
  UpdateJobHandlePtr submit(UpdateJob job) DHYFD_EXCLUDES(mu_);

  /// Synchronous convenience: submit + wait + return the delta (throws on
  /// failure).
  CoverDelta apply(const std::string& name, UpdateBatch batch,
                   ApplyMode mode = ApplyMode::kIncremental);

  /// Copies of the current cover / ranking / live row count; throw
  /// std::invalid_argument for unknown datasets.
  FdSet cover(const std::string& name) const DHYFD_EXCLUDES(mu_);
  std::vector<FdRedundancy> ranking(const std::string& name) const
      DHYFD_EXCLUDES(mu_);
  RowId live_rows(const std::string& name) const DHYFD_EXCLUDES(mu_);

  /// Registers a listener for every dataset's cover changes; returns a
  /// token for unsubscribe(). Listeners run on worker threads, after the
  /// batch commits, in per-dataset batch order; they must not call back
  /// into the store's blocking operations.
  std::uint64_t subscribe(CoverChangeListener listener) DHYFD_EXCLUDES(mu_);
  void unsubscribe(std::uint64_t token) DHYFD_EXCLUDES(mu_);

  /// Stops accepting work, drains queued batches, joins the workers.
  /// Idempotent.
  void shutdown() DHYFD_EXCLUDES(mu_);

  /// Blocks until every batch submitted so far is terminal.
  void wait_all() const DHYFD_EXCLUDES(mu_);

 private:
  struct Entry {
    Mutex mu;  // guards queue + draining flag
    std::deque<UpdateJobHandlePtr> queue DHYFD_GUARDED_BY(mu);
    bool draining DHYFD_GUARDED_BY(mu) = false;  // a worker owns this strand
    mutable Mutex profile_mu;  // guards the LiveProfile itself
    // The pointer is set once by create() before the entry is published;
    // the pointee is what profile_mu protects.
    std::unique_ptr<LiveProfile> profile DHYFD_PT_GUARDED_BY(profile_mu);
  };

  /// Worker task: drains `entry`'s queue until empty (strand execution).
  void drain(const std::shared_ptr<Entry>& entry) DHYFD_EXCLUDES(mu_);
  void run_job(const std::shared_ptr<Entry>& entry, const UpdateJobHandlePtr& h)
      DHYFD_EXCLUDES(mu_);
  std::shared_ptr<Entry> find(const std::string& name) const
      DHYFD_EXCLUDES(mu_);
  static UpdateJobHandlePtr failed_handle(std::uint64_t id, UpdateJob job,
                                          std::string error);
  void notify(const CoverChangeEvent& event) DHYFD_EXCLUDES(mu_);

  MetricsRegistry* metrics_;
  ThreadPool pool_;

  mutable Mutex mu_;
  mutable CondVar idle_cv_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> datasets_
      DHYFD_GUARDED_BY(mu_);
  std::unordered_map<std::uint64_t, CoverChangeListener> listeners_
      DHYFD_GUARDED_BY(mu_);
  std::uint64_t next_job_id_ DHYFD_GUARDED_BY(mu_) = 1;
  std::uint64_t next_listener_id_ DHYFD_GUARDED_BY(mu_) = 1;
  std::int64_t unfinished_jobs_ DHYFD_GUARDED_BY(mu_) = 0;
  bool shutdown_ DHYFD_GUARDED_BY(mu_) = false;
};

}  // namespace dhyfd

#endif  // DHYFD_SERVICE_LIVE_STORE_H_
