#include "service/dataset_registry.h"

#include <stdexcept>
#include <utility>

#include "obs/obs_schema.gen.h"
#include "util/timer.h"

namespace dhyfd {

void DatasetRegistry::add_table(const std::string& name, RawTable table) {
  auto entry = std::make_shared<Entry>();
  entry->table = std::make_shared<const RawTable>(std::move(table));
  MutexLock lock(&mu_);
  entries_[name] = std::move(entry);
}

void DatasetRegistry::add_csv_file(const std::string& name,
                                   const std::string& path,
                                   CsvOptions options) {
  auto entry = std::make_shared<Entry>();
  entry->path = path;
  entry->csv_options = std::move(options);
  MutexLock lock(&mu_);
  entries_[name] = std::move(entry);
}

std::shared_ptr<const Relation> DatasetRegistry::get(const std::string& name,
                                                     NullSemantics semantics) {
  std::shared_ptr<Entry> entry;
  std::shared_future<std::shared_ptr<const Relation>> future;
  std::promise<std::shared_ptr<const Relation>> promise;
  bool encoder = false;
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      throw std::out_of_range("DatasetRegistry: unknown dataset: " + name);
    }
    entry = it->second;
    auto slot = entry->encoded.find(semantics);
    if (slot != entry->encoded.end()) {
      future = slot->second;
    } else {
      encoder = true;
      future = promise.get_future().share();
      entry->encoded.emplace(semantics, future);
    }
  }

  if (metrics_ != nullptr) {
    metrics_->counter(encoder ? kObsDatasetCacheMisses : kObsDatasetCacheHits)
        .inc();
  }

  if (encoder) {
    try {
      Timer timer;
      RawTable loaded;
      const RawTable* source = entry->table.get();
      if (source == nullptr) {
        loaded = ReadCsvFile(entry->path, entry->csv_options);
        source = &loaded;
      }
      auto relation = std::make_shared<const Relation>(
          EncodeRelation(*source, semantics).relation);
      if (metrics_ != nullptr) {
        metrics_->histogram(kObsDatasetEncodeSeconds).record(timer.seconds());
      }
      promise.set_value(std::move(relation));
    } catch (...) {
      promise.set_exception(std::current_exception());
      // Drop the failed slot so a later get() can retry (e.g. the CSV file
      // appears after a transient read failure). Waiters already holding
      // the future still see this exception.
      MutexLock lock(&mu_);
      auto slot = entry->encoded.find(semantics);
      if (slot != entry->encoded.end()) entry->encoded.erase(slot);
    }
  }

  return future.get();
}

bool DatasetRegistry::contains(const std::string& name) const {
  MutexLock lock(&mu_);
  return entries_.count(name) > 0;
}

std::vector<std::string> DatasetRegistry::names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

void DatasetRegistry::erase(const std::string& name) {
  MutexLock lock(&mu_);
  entries_.erase(name);
}

void DatasetRegistry::clear() {
  MutexLock lock(&mu_);
  entries_.clear();
}

}  // namespace dhyfd
