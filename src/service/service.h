#ifndef DHYFD_SERVICE_SERVICE_H_
#define DHYFD_SERVICE_SERVICE_H_

/// Umbrella header for the embeddable profiling service:
///
///   MetricsRegistry metrics;
///   DatasetRegistry datasets(&metrics);
///   datasets.add_table("orders", std::move(raw));
///   JobScheduler scheduler(&datasets, &metrics);
///   auto h = scheduler.submit({.dataset = "orders",
///                              .options = {.algorithm = "dhyfd"}});
///   h->wait();
///   std::cout << h->report().summary() << metrics.snapshot();

/// Live (mutating) datasets are hosted by the LiveStore: register a table
/// with create(), then stream UpdateBatches through submit()/apply() while
/// cover() / ranking() serve the maintained profile between batches.

#include "service/dataset_registry.h"
#include "service/job.h"
#include "service/live_store.h"
#include "service/metrics.h"
#include "service/scheduler.h"

#endif  // DHYFD_SERVICE_SERVICE_H_
