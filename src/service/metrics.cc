#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "obs/obs_schema.gen.h"
#include "util/memory.h"

namespace dhyfd {

namespace {

int BucketIndex(double seconds) {
  for (int i = 0; i < Histogram::kNumBuckets - 1; ++i) {
    if (seconds <= Histogram::bucket_bound(i)) return i;
  }
  return Histogram::kNumBuckets - 1;
}

}  // namespace

// Bucket upper bounds in seconds: 1e-6 .. 1e3, last bucket catches the rest.
double Histogram::bucket_bound(int i) {
  if (i >= kNumBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::pow(10.0, i - 6);
}

double Histogram::Snapshot::mean() const {
  return count == 0 ? 0 : sum / static_cast<double>(count);
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // The extremes are tracked exactly; only interior quantiles need the
  // bucket estimate. This also covers the single-observation histogram
  // (min == max) and keeps q=0 from reading an arbitrary first bucket.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  std::int64_t rank = static_cast<std::int64_t>(std::ceil(q * count));
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Clamp the bucket bound by the observed extremes so tiny samples
      // don't report a 10x-too-wide estimate (and so the +inf bucket
      // degrades to max rather than infinity).
      return std::clamp(bucket_bound(i), min, max);
    }
  }
  return max;
}

void Histogram::record(double seconds) {
  MutexLock lock(&mu_);
  if (count_ == 0) {
    min_ = max_ = seconds;
  } else {
    min_ = std::min(min_, seconds);
    max_ = std::max(max_, seconds);
  }
  ++count_;
  sum_ += seconds;
  ++buckets_[BucketIndex(seconds)];
}

std::int64_t Histogram::count() const {
  MutexLock lock(&mu_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(&mu_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(&mu_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(&mu_);
  return max_;
}

double Histogram::mean() const { return snapshot_state().mean(); }

double Histogram::quantile(double q) const {
  return snapshot_state().quantile(q);
}

Histogram::Snapshot Histogram::snapshot_state() const {
  MutexLock lock(&mu_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  std::copy(std::begin(buckets_), std::end(buckets_), std::begin(s.buckets));
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(&mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::refresh_process_gauges() {
  gauge(kObsProcessRssBytes).set(static_cast<std::int64_t>(CurrentRssBytes()));
  gauge(kObsProcessPeakRssBytes)
      .set(static_cast<std::int64_t>(PeakRssBytes()));
  gauge(kObsProcessOpenFds).set(static_cast<std::int64_t>(CurrentOpenFds()));
}

std::map<std::string, std::int64_t> MetricsRegistry::counter_values() const {
  MutexLock lock(&mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

std::map<std::string, std::int64_t> MetricsRegistry::gauge_values() const {
  MutexLock lock(&mu_);
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

std::map<std::string, Histogram::Snapshot> MetricsRegistry::histogram_values()
    const {
  MutexLock lock(&mu_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, h] : histograms_) out.emplace(name, h->snapshot_state());
  return out;
}

std::string MetricsRegistry::snapshot() {
  refresh_process_gauges();
  MutexLock lock(&mu_);
  std::ostringstream out;
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge " << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    // One snapshot per histogram: count/mean/min/max/p50/p99 all describe
    // the same instant (six separate locked reads used to race recorders).
    Histogram::Snapshot s = h->snapshot_state();
    out << "histogram " << name << " count=" << s.count
        << " mean=" << s.mean() << "s min=" << s.min << "s max="
        << s.max << "s p50=" << s.quantile(0.5) << "s p99="
        << s.quantile(0.99) << "s\n";
  }
  return out.str();
}

}  // namespace dhyfd
