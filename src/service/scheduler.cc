#include "service/scheduler.h"

#include <algorithm>
#include <exception>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/timer.h"

namespace dhyfd {

namespace {

int ResolveThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 4;
}

}  // namespace

bool JobScheduler::PendingOrder::operator()(const JobHandlePtr& a,
                                            const JobHandlePtr& b) const {
  // priority_queue pops the "largest": higher priority wins, then lower id
  // (earlier submission) wins.
  if (a->job_.priority != b->job_.priority) {
    return a->job_.priority < b->job_.priority;
  }
  return a->id_ > b->id_;
}

JobScheduler::JobScheduler(DatasetRegistry* datasets, MetricsRegistry* metrics,
                           SchedulerOptions options)
    : datasets_(datasets),
      metrics_(metrics),
      max_pending_(options.max_pending),
      pool_(ResolveThreads(options.num_threads), options.max_queue) {}

JobScheduler::~JobScheduler() { shutdown(); }

JobHandlePtr JobScheduler::submit(ProfileJob job) {
  JobHandlePtr handle;
  {
    MutexLock lock(&mu_);
    handle = JobHandlePtr(new JobHandle(next_id_++, std::move(job)));
    Tracer& tracer = Tracer::Global();
    if (handle->job_.trace_id != 0) {
      // The caller (e.g. the net server relaying a client-stamped trace
      // context) already owns a trace id; adopt it so this job's spans land
      // in the caller's tree instead of a fresh one.
      handle->trace_id_ = handle->job_.trace_id;
      if (tracer.enabled()) handle->submit_ts_us_ = tracer.now_us();
    } else if (tracer.enabled()) {
      handle->trace_id_ = tracer.next_trace_id();
      handle->submit_ts_us_ = tracer.now_us();
    }
    if (shutdown_) {
      MutexLock hlock(&handle->mu_);
      handle->state_ = JobState::kFailed;
      handle->error_ = "scheduler is shut down";
      handle->done_cv_.notify_all();
      return handle;
    }
    if (max_pending_ > 0 && pending_.size() >= max_pending_) {
      // Admission backstop: refuse instead of queueing without bound (or
      // blocking the caller, which may be a server's event loop).
      handle->rejected_ = true;
      metrics_->counter(kObsJobsRejected).inc();
      MutexLock hlock(&handle->mu_);
      handle->state_ = JobState::kFailed;
      handle->error_ = "job queue full (" + std::to_string(pending_.size()) +
                       " pending)";
      handle->done_cv_.notify_all();
      return handle;
    }
    all_jobs_.push_back(handle);
    pending_.push(handle);
    metrics_->counter(kObsJobsSubmitted).inc();
    metrics_->gauge(kObsJobsQueued).set(static_cast<std::int64_t>(pending_.size()));
  }
  // One pool ticket per pending job; each ticket pops the then-best job.
  // This may block while the pool queue is at its bound.
  if (!pool_.submit([this] { run_one(); })) {
    // Shutdown raced the submit: one ticket was lost, so one pending job
    // would never be served. Reclaim everything still queued.
    reclaim_pending();
  }
  return handle;
}

void JobScheduler::reclaim_pending() {
  MutexLock lock(&mu_);
  while (!pending_.empty()) {
    JobHandlePtr handle = pending_.top();
    pending_.pop();
    MutexLock hlock(&handle->mu_);
    if (handle->state_ == JobState::kQueued) {
      handle->state_ = JobState::kCancelled;
      metrics_->counter(kObsJobsCancelled).inc();
      handle->done_cv_.notify_all();
    }
  }
  metrics_->gauge(kObsJobsQueued).set(0);
}

void JobScheduler::run_one() {
  JobHandlePtr handle;
  {
    MutexLock lock(&mu_);
    if (pending_.empty()) return;  // its job was reclaimed by shutdown()
    handle = pending_.top();
    pending_.pop();
    metrics_->gauge(kObsJobsQueued).set(static_cast<std::int64_t>(pending_.size()));
  }

  bool cancelled_in_queue = false;
  {
    MutexLock hlock(&handle->mu_);
    handle->queue_seconds_ = handle->queue_timer_.seconds();
    if (handle->cancel_token_.cancelled()) {
      handle->state_ = JobState::kCancelled;
      metrics_->counter(kObsJobsCancelled).inc();
      handle->done_cv_.notify_all();
      cancelled_in_queue = true;
    } else {
      handle->state_ = JobState::kRunning;
    }
  }
  Tracer& tracer = Tracer::Global();
  if (handle->trace_id_ != 0 && handle->submit_ts_us_ != 0 &&
      tracer.enabled()) {
    // Queue-wait spans started on the submitter and ended on the worker, so
    // each gets its own synthetic lane: drawn on a real worker lane they
    // would overlap that worker's previous job and render as bogus nesting.
    std::uint32_t lane =
        900000u + static_cast<std::uint32_t>(handle->trace_id_ % 100000);
    tracer.record_span(kObsSvcQueueWait, handle->trace_id_,
                       handle->submit_ts_us_, tracer.now_us(), lane);
    if (cancelled_in_queue) {
      tracer.record(TraceEvent{kObsSvcJobCancelled, 'i', handle->trace_id_,
                               tracer.now_us(), 0, 0, 0});
    }
  }
  if (cancelled_in_queue) return;
  metrics_->histogram(kObsJobsQueueSeconds).record(handle->queue_seconds());
  metrics_->gauge(kObsJobsRunning).add(1);
  execute(handle);
}

void JobScheduler::execute(const JobHandlePtr& handle) {
  ProfileOptions options = handle->job_.options;
  if (handle->job_.time_limit_seconds > 0) {
    options.time_limit_seconds = handle->job_.time_limit_seconds;
  }
  // Intra-job parallelism: this job's discovery shards fan out over the
  // same pool that runs the jobs. Degree is clamped to the pool size; the
  // slot accounting lives in ThreadPool::run_shards, which enlists only
  // idle workers — an N-way job on a busy pool degrades toward sequential
  // instead of oversubscribing.
  options.worker_pool = &pool_;
  options.parallelism =
      std::max(1, std::min(options.parallelism, pool_.num_threads()));
  std::function<void(ProfileStage, double)> user_hook = options.stage_hook;
  options.stage_hook = [this, &user_hook](ProfileStage stage, double seconds) {
    metrics_
        ->histogram(std::string("stage.") + ProfileStageName(stage) +
                    "_seconds")
        .record(seconds);
    if (user_hook) user_hook(stage, seconds);
  };

  Timer run_timer;
  ProfileReport report;
  std::string error;
  bool failed = false;
  CostLedger cost;
  {
    // The worker runs under the job's trace id, with a per-job sink feeding
    // algorithm counters into the metrics registry and the trace, and a cost
    // scope on top classifying the same counters into this job's ledger.
    // Every Deadline constructed below (inside the discovery algorithms)
    // also polls this job's cancel token.
    TraceIdScope trace_scope(handle->trace_id_);
    TelemetrySink sink(metrics_, handle->trace_id_);
    ObsScope obs_scope(&sink);
    CostLedgerScope cost_scope(&cost);
    TraceSpan run_span(kObsSvcJobRun);
    CancelScope scope(&handle->cancel_token_);
    try {
      std::shared_ptr<const Relation> relation =
          datasets_->get(handle->job_.dataset, options.semantics);
      report = Profiler(options).profile(*relation);
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    } catch (...) {
      failed = true;
      error = "unknown exception";
    }
  }
  double run_seconds = run_timer.seconds();

  JobState final_state;
  if (failed) {
    final_state = JobState::kFailed;
  } else if (handle->cancel_token_.cancelled()) {
    final_state = JobState::kCancelled;
  } else {
    final_state = JobState::kDone;
  }
  Tracer& tracer = Tracer::Global();
  if (handle->trace_id_ != 0 && tracer.enabled() &&
      final_state == JobState::kCancelled) {
    tracer.record(TraceEvent{kObsSvcJobCancelled, 'i', handle->trace_id_,
                             tracer.now_us(), 0, 0, 0});
  }

  // Metrics are finalized before the handle turns terminal, so a thread
  // returning from wait()/wait_all() always sees consistent counts.
  metrics_->histogram(kObsJobsRunSeconds).record(run_seconds);
  switch (final_state) {
    case JobState::kDone:
      metrics_->counter(kObsJobsCompleted).inc();
      break;
    case JobState::kFailed:
      metrics_->counter(kObsJobsFailed).inc();
      break;
    case JobState::kCancelled:
      metrics_->counter(kObsJobsCancelled).inc();
      break;
    case JobState::kQueued:
    case JobState::kRunning:
      // Unreachable: final_state is computed above from the terminal
      // outcome of a job that just finished executing.
      break;
  }
  metrics_->gauge(kObsJobsRunning).add(-1);

  {
    MutexLock hlock(&handle->mu_);
    handle->state_ = final_state;
    handle->run_seconds_ = run_seconds;
    handle->cost_ = cost;
    if (failed) {
      handle->error_ = error;
    } else {
      report.cancelled = final_state == JobState::kCancelled;
      handle->report_ = std::move(report);
      handle->has_report_ = true;
    }
    handle->done_cv_.notify_all();
  }
}

void JobScheduler::shutdown() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  // Drains every queued run_one ticket, then joins the workers; all
  // submitted jobs are terminal afterwards. Any job a lost ticket left
  // behind is reclaimed as cancelled so no handle waits forever.
  pool_.shutdown();
  reclaim_pending();
}

void JobScheduler::wait_all() const {
  std::vector<JobHandlePtr> jobs;
  {
    MutexLock lock(&mu_);
    jobs = all_jobs_;
  }
  for (const JobHandlePtr& handle : jobs) handle->wait();
}

}  // namespace dhyfd
