#ifndef DHYFD_SERVICE_JOB_H_
#define DHYFD_SERVICE_JOB_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/profiler.h"
#include "obs/cost_ledger.h"
#include "util/cancellation.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace dhyfd {

/// One profiling request: which registered dataset to profile and how.
struct ProfileJob {
  /// Name of a dataset previously registered in the DatasetRegistry.
  std::string dataset;
  ProfileOptions options;
  /// Higher-priority jobs run first; ties run in submission order.
  int priority = 0;
  /// Per-job cooperative time limit in seconds (0 = none). Overrides
  /// options.time_limit_seconds when positive.
  double time_limit_seconds = 0;
  /// Trace id to adopt for this job's span tree (0 = let the scheduler mint
  /// one when tracing is on). Set by the server from the client-stamped
  /// kTracedRequest context so client and server spans share one tree.
  std::uint64_t trace_id = 0;
};

/// Lifecycle of a submitted job.
enum class JobState {
  kQueued,     // accepted, waiting for a worker
  kRunning,    // a worker is executing the pipeline
  kDone,       // finished; report() is valid
  kFailed,     // threw; error() has the message
  kCancelled,  // cancel() won: either never started, or stopped early
};

const char* JobStateName(JobState state);

/// Shared state for one submitted job; returned by JobScheduler::submit().
/// All methods are thread-safe. Holding the handle after the scheduler is
/// destroyed is safe (shared ownership).
class JobHandle {
 public:
  std::uint64_t id() const { return id_; }
  const ProfileJob& job() const { return job_; }

  JobState state() const DHYFD_EXCLUDES(mu_);
  bool finished() const DHYFD_EXCLUDES(mu_);

  /// Requests cooperative cancellation. A queued job is dropped before it
  /// starts; a running job stops at its next deadline poll (inside the
  /// discovery loops or between pipeline stages).
  void cancel();

  /// Blocks until the job reaches a terminal state.
  void wait() const DHYFD_EXCLUDES(mu_);
  /// Like wait(), with a timeout; false if still unfinished after it.
  bool wait_for(double seconds) const DHYFD_EXCLUDES(mu_);

  /// The pipeline's output; valid for kDone, and for kCancelled jobs that
  /// were stopped mid-run (partial: stages after the cancellation point are
  /// empty). Throws std::runtime_error for kFailed, and for kCancelled jobs
  /// that never started. Blocks until terminal.
  const ProfileReport& report() const DHYFD_EXCLUDES(mu_);

  /// Error message for kFailed jobs ("" otherwise).
  std::string error() const DHYFD_EXCLUDES(mu_);

  /// True for jobs the scheduler refused at admission because its
  /// max_pending bound was full (always kFailed; see SchedulerOptions).
  /// Lets callers distinguish "retry later" from a genuine failure.
  bool rejected() const { return rejected_; }

  /// Seconds spent queued before a worker picked the job up, and executing.
  double queue_seconds() const DHYFD_EXCLUDES(mu_);
  double run_seconds() const DHYFD_EXCLUDES(mu_);

  /// Trace id grouping this job's spans/counters when tracing was enabled at
  /// submission (0 otherwise). Filter on args.trace_id in the exported trace
  /// to see one job's queue-wait, run, and discovery stages as one tree.
  std::uint64_t trace_id() const { return trace_id_; }

  /// Resource cost the worker accumulated while executing (zero-valued for
  /// jobs that never ran). Valid once the job is terminal.
  CostLedger cost() const DHYFD_EXCLUDES(mu_);

 private:
  friend class JobScheduler;

  JobHandle(std::uint64_t id, ProfileJob job)
      : id_(id), job_(std::move(job)) {}

  /// True for kDone / kFailed / kCancelled.
  bool finished_locked() const DHYFD_REQUIRES(mu_);

  const std::uint64_t id_;
  const ProfileJob job_;
  CancelToken cancel_token_;
  Timer queue_timer_;  // started at submission
  // Set once by JobScheduler::submit() before the handle is shared; read-only
  // afterwards, so no lock is needed.
  std::uint64_t trace_id_ = 0;
  std::int64_t submit_ts_us_ = 0;
  bool rejected_ = false;

  mutable Mutex mu_;
  mutable CondVar done_cv_;
  JobState state_ DHYFD_GUARDED_BY(mu_) = JobState::kQueued;
  bool has_report_ DHYFD_GUARDED_BY(mu_) = false;
  ProfileReport report_ DHYFD_GUARDED_BY(mu_);
  std::string error_ DHYFD_GUARDED_BY(mu_);
  double queue_seconds_ DHYFD_GUARDED_BY(mu_) = 0;
  double run_seconds_ DHYFD_GUARDED_BY(mu_) = 0;
  CostLedger cost_ DHYFD_GUARDED_BY(mu_);
};

using JobHandlePtr = std::shared_ptr<JobHandle>;

}  // namespace dhyfd

#endif  // DHYFD_SERVICE_JOB_H_
