#ifndef DHYFD_RANKING_REDUNDANCY_H_
#define DHYFD_RANKING_REDUNDANCY_H_

#include <cstdint>
#include <vector>

#include "fd/fd_set.h"
#include "relation/relation.h"

namespace dhyfd {

/// Redundant data-value occurrences caused by one FD (Vincent's notion,
/// paper Section VI): an occurrence t(A) is redundant w.r.t. X -> A iff
/// another tuple shares t's X-projection — changing t(A) alone would then
/// violate the FD. For a valid FD that is exactly the tuples inside the
/// clusters of pi_X, once per RHS attribute.
struct FdRedundancy {
  Fd fd;
  /// #red+0: every redundant occurrence, null markers included.
  int64_t with_nulls = 0;
  /// #red: redundant occurrences whose own value is not a null marker.
  int64_t excluding_null_rhs = 0;
  /// #red-0 (Figure 11): additionally requires no null on any LHS attribute
  /// of the witnessing tuple.
  int64_t excluding_null_lhs_rhs = 0;
};

/// Per-FD redundancy counts for every FD of a (valid) cover.
std::vector<FdRedundancy> ComputeFdRedundancies(const Relation& r, const FdSet& cover);

class StrippedPartition;

/// Redundancy counts for one FD from an already-built pi_{lhs}. The query
/// engine scores candidates with the partitions its lattice traversal holds
/// anyway; sharing this kernel keeps those scores bit-identical to the
/// discover-then-rank pipeline.
FdRedundancy FdRedundancyFromPartition(const Relation& r, const Fd& fd,
                                       const StrippedPartition& pi_lhs);

/// Dataset-level redundancy (Table IV): an occurrence counts once no matter
/// how many FDs of the cover make it redundant.
struct DatasetRedundancy {
  int64_t num_values = 0;  // #values = rows * cols
  int64_t red = 0;         // #red   (occurrence itself not null)
  int64_t red_plus0 = 0;   // #red+0 (nulls included)

  double percent_red() const {
    return num_values ? 100.0 * static_cast<double>(red) / static_cast<double>(num_values) : 0;
  }
  double percent_red_plus0() const {
    return num_values
               ? 100.0 * static_cast<double>(red_plus0) / static_cast<double>(num_values)
               : 0;
  }
};

DatasetRedundancy ComputeDatasetRedundancy(const Relation& r, const FdSet& cover);

/// O(rows^2) reference counter for one FD; cross-checks the partition-based
/// counters in tests.
FdRedundancy BruteForceFdRedundancy(const Relation& r, const Fd& fd);

}  // namespace dhyfd

#endif  // DHYFD_RANKING_REDUNDANCY_H_
