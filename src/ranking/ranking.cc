#include "ranking/ranking.h"

#include <algorithm>

namespace dhyfd {

int64_t RedundancyCount(const FdRedundancy& red, RedundancyMode mode) {
  switch (mode) {
    case RedundancyMode::kWithNulls:
      return red.with_nulls;
    case RedundancyMode::kExcludingNullRhs:
      return red.excluding_null_rhs;
    case RedundancyMode::kExcludingNullBoth:
      return red.excluding_null_lhs_rhs;
  }
  return 0;
}

std::vector<FdRedundancy> RankFds(const Relation& r, const FdSet& cover,
                                  RedundancyMode mode) {
  std::vector<FdRedundancy> reds = ComputeFdRedundancies(r, cover);
  std::stable_sort(reds.begin(), reds.end(),
                   [mode](const FdRedundancy& a, const FdRedundancy& b) {
                     return RedundancyCount(a, mode) > RedundancyCount(b, mode);
                   });
  return reds;
}

RedundancyHistogram BuildRedundancyHistogram(const std::vector<FdRedundancy>& reds,
                                             RedundancyMode mode) {
  static const double kPercents[] = {2.5, 5, 10, 15, 20, 40, 60, 80, 100};
  RedundancyHistogram hist;
  for (const FdRedundancy& red : reds) {
    hist.max_redundancy = std::max(hist.max_redundancy, RedundancyCount(red, mode));
  }
  hist.thresholds.push_back(0);
  for (double p : kPercents) {
    int64_t t = static_cast<int64_t>(p / 100.0 * static_cast<double>(hist.max_redundancy));
    // Keep thresholds strictly increasing even for tiny maxima.
    if (t <= hist.thresholds.back()) t = hist.thresholds.back() + 1;
    hist.thresholds.push_back(t);
  }
  hist.fd_counts.assign(hist.thresholds.size(), 0);
  for (const FdRedundancy& red : reds) {
    int64_t count = RedundancyCount(red, mode);
    for (size_t i = 0; i < hist.thresholds.size(); ++i) {
      if (count <= hist.thresholds[i]) {
        ++hist.fd_counts[i];
        break;
      }
    }
  }
  return hist;
}

std::vector<FdRedundancy> LhsCandidatesForColumn(const Relation& r, const FdSet& cover,
                                                 AttrId column, RedundancyMode mode) {
  FdSet filtered;
  for (const Fd& fd : cover.fds) {
    if (fd.rhs.test(column)) filtered.add(Fd(fd.lhs, column));
  }
  return RankFds(r, filtered, mode);
}

std::string FormatRanking(const Schema& schema, const std::vector<FdRedundancy>& reds,
                          size_t top_n) {
  std::string out;
  size_t n = std::min(top_n, reds.size());
  for (size_t i = 0; i < n; ++i) {
    const FdRedundancy& red = reds[i];
    out += std::to_string(i + 1);
    out += ". ";
    out += red.fd.to_string(schema);
    out += "   #red=" + std::to_string(red.excluding_null_rhs);
    out += " #red+0=" + std::to_string(red.with_nulls);
    out += " #red-0=" + std::to_string(red.excluding_null_lhs_rhs);
    out += '\n';
  }
  if (reds.size() > n) {
    out += "... (" + std::to_string(reds.size() - n) + " more)\n";
  }
  return out;
}

}  // namespace dhyfd
