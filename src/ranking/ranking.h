#ifndef DHYFD_RANKING_RANKING_H_
#define DHYFD_RANKING_RANKING_H_

#include <string>
#include <vector>

#include "ranking/redundancy.h"

namespace dhyfd {

/// Which redundancy count orders the ranking.
enum class RedundancyMode {
  kWithNulls,          // #red+0
  kExcludingNullRhs,   // #red
  kExcludingNullBoth,  // #red-0
};

int64_t RedundancyCount(const FdRedundancy& red, RedundancyMode mode);

/// Ranks a cover's FDs by descending redundancy (paper Section VI: high
/// counts mean the "X determines Y" pattern has strong support; zero counts
/// hint at keys; low-but-nonzero counts flag accidental FDs or dirty data).
std::vector<FdRedundancy> RankFds(const Relation& r, const FdSet& cover,
                                  RedundancyMode mode = RedundancyMode::kExcludingNullRhs);

/// The bucketed distribution of Figures 10 and 11: bucket i counts the FDs
/// whose redundancy lies in (thresholds[i-1], thresholds[i]]; bucket 0
/// counts FDs with redundancy exactly 0. Thresholds are 2.5%, 5%, 10%, 15%,
/// 20%, 40%, 60%, 80%, 100% of the maximum per-FD redundancy.
struct RedundancyHistogram {
  std::vector<int64_t> thresholds;  // first entry is 0
  std::vector<int64_t> fd_counts;   // same length
  int64_t max_redundancy = 0;
};

RedundancyHistogram BuildRedundancyHistogram(const std::vector<FdRedundancy>& reds,
                                             RedundancyMode mode);

/// The qualitative "fix a column of interest" view (Section VI-B): all FDs
/// of the cover whose RHS contains `column`, with their redundancy counts,
/// sorted descending by the chosen mode.
std::vector<FdRedundancy> LhsCandidatesForColumn(
    const Relation& r, const FdSet& cover, AttrId column,
    RedundancyMode mode = RedundancyMode::kExcludingNullRhs);

/// Human-readable ranking report used by the examples.
std::string FormatRanking(const Schema& schema, const std::vector<FdRedundancy>& reds,
                          size_t top_n = 20);

}  // namespace dhyfd

#endif  // DHYFD_RANKING_RANKING_H_
