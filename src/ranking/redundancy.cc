#include "ranking/redundancy.h"

#include "partition/stripped_partition.h"

namespace dhyfd {

namespace {

bool AnyLhsNull(const Relation& r, RowId row, const AttributeSet& lhs) {
  bool any = false;
  lhs.for_each([&](AttrId a) {
    if (!any && r.is_null(row, a)) any = true;
  });
  return any;
}

}  // namespace

FdRedundancy FdRedundancyFromPartition(const Relation& r, const Fd& fd,
                                       const StrippedPartition& pi_lhs) {
  FdRedundancy red;
  red.fd = fd;
  // The redundant rows are exactly the arena rows — the class bounds are
  // irrelevant here, so scan the CSR arena flat.
  for (RowId row : pi_lhs.row_arena()) {
    bool lhs_null = AnyLhsNull(r, row, fd.lhs);
    fd.rhs.for_each([&](AttrId a) {
      ++red.with_nulls;
      if (!r.is_null(row, a)) {
        ++red.excluding_null_rhs;
        if (!lhs_null) ++red.excluding_null_lhs_rhs;
      }
    });
  }
  return red;
}

std::vector<FdRedundancy> ComputeFdRedundancies(const Relation& r, const FdSet& cover) {
  std::vector<FdRedundancy> out;
  out.reserve(cover.fds.size());
  for (const Fd& fd : cover.fds) {
    out.push_back(FdRedundancyFromPartition(r, fd, BuildPartition(r, fd.lhs)));
  }
  return out;
}

DatasetRedundancy ComputeDatasetRedundancy(const Relation& r, const FdSet& cover) {
  DatasetRedundancy result;
  result.num_values = r.num_values();
  const int m = r.num_cols();
  std::vector<uint8_t> marked(static_cast<size_t>(r.num_rows()) * m, 0);
  for (const Fd& fd : cover.fds) {
    StrippedPartition pi = BuildPartition(r, fd.lhs);
    for (RowId row : pi.row_arena()) {
      fd.rhs.for_each([&](AttrId a) {
        marked[static_cast<size_t>(row) * m + a] = 1;
      });
    }
  }
  for (RowId row = 0; row < r.num_rows(); ++row) {
    for (AttrId a = 0; a < m; ++a) {
      if (!marked[static_cast<size_t>(row) * m + a]) continue;
      ++result.red_plus0;
      if (!r.is_null(row, a)) ++result.red;
    }
  }
  return result;
}

FdRedundancy BruteForceFdRedundancy(const Relation& r, const Fd& fd) {
  FdRedundancy red;
  red.fd = fd;
  for (RowId t = 0; t < r.num_rows(); ++t) {
    bool has_witness = false;
    for (RowId s = 0; s < r.num_rows() && !has_witness; ++s) {
      if (s != t && r.agree_on(s, t, fd.lhs)) has_witness = true;
    }
    if (!has_witness) continue;
    bool lhs_null = AnyLhsNull(r, t, fd.lhs);
    fd.rhs.for_each([&](AttrId a) {
      ++red.with_nulls;
      if (!r.is_null(t, a)) {
        ++red.excluding_null_rhs;
        if (!lhs_null) ++red.excluding_null_lhs_rhs;
      }
    });
  }
  return red;
}

}  // namespace dhyfd
