#ifndef DHYFD_OBS_OBS_H_
#define DHYFD_OBS_OBS_H_

#include <cstdint>

namespace dhyfd {

/// Receiver for algorithm-level counters. Implementations decide where a
/// count goes (MetricsRegistry, trace counter series, both, nowhere).
///
/// `name` must be a string literal — hot paths hand it over without copying.
/// Sinks are installed per thread (ObsScope) and are not required to be
/// thread-safe: the service layers give each job its own sink.
class ObsSink {
 public:
  virtual ~ObsSink() = default;
  virtual void add(const char* name, std::int64_t delta) = 0;
};

namespace obs_internal {
inline thread_local ObsSink* tls_sink = nullptr;
}  // namespace obs_internal

/// The calling thread's installed sink (nullptr when observability is off).
inline ObsSink* CurrentObsSink() { return obs_internal::tls_sink; }

/// Records `delta` into the named counter series, if a sink is installed.
/// With no sink this is one thread-local load and a branch — cheap enough
/// for instrumented hot paths at per-call granularity.
inline void ObsAdd(const char* name, std::int64_t delta = 1) {
  if (ObsSink* sink = CurrentObsSink()) sink->add(name, delta);
}

/// RAII: installs `sink` as the calling thread's sink, restoring the
/// previous one on destruction (scopes nest).
class ObsScope {
 public:
  explicit ObsScope(ObsSink* sink) : prev_(obs_internal::tls_sink) {
    obs_internal::tls_sink = sink;
  }
  ~ObsScope() { obs_internal::tls_sink = prev_; }

  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  ObsSink* prev_;
};

}  // namespace dhyfd

#endif  // DHYFD_OBS_OBS_H_
