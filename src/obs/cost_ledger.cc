#include "obs/cost_ledger.h"

#include <ctime>
#include <cstring>

#include "obs/obs_schema.gen.h"

namespace dhyfd {

namespace {

/// Classification table: which existing counter names feed which ledger
/// field. Names arrive as string literals, so the per-add cost is a few
/// short strcmp()s — small next to the registry lookup the forwarded sink
/// already pays. Unlisted counters are forwarded but not classified.
enum class LedgerField {
  kNone, kValidations, kPartitionsBuilt, kHits, kMisses, kCpu
};

LedgerField Classify(const char* name) {
  if (std::strcmp(name, kObsDiscoverValidatorCalls) == 0 ||
      std::strcmp(name, kObsQueryValidations) == 0 ||
      std::strcmp(name, kObsIncrValidations) == 0) {
    return LedgerField::kValidations;
  }
  // CPU burned by pool helpers running another job's shards; the helper
  // measures its own thread clock and ThreadPool::run_shards replays the
  // delta on the requesting thread, so it lands in that job's ledger (the
  // scope's own CLOCK_THREAD_CPUTIME_ID window cannot see foreign threads).
  if (std::strcmp(name, kObsPoolShardCpuNs) == 0) {
    return LedgerField::kCpu;
  }
  if (std::strcmp(name, kObsPartitionIntersections) == 0 ||
      std::strcmp(name, kObsPartitionDdmDynamicBuilds) == 0) {
    return LedgerField::kPartitionsBuilt;
  }
  if (std::strcmp(name, kObsPartitionCacheHits) == 0 ||
      std::strcmp(name, kObsPartitionPrefixCacheHits) == 0) {
    return LedgerField::kHits;
  }
  if (std::strcmp(name, kObsPartitionCacheMisses) == 0) {
    return LedgerField::kMisses;
  }
  return LedgerField::kNone;
}

}  // namespace

std::int64_t CurrentThreadCpuNs() {
  struct timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return std::int64_t{ts.tv_sec} * 1'000'000'000 + ts.tv_nsec;
}

CostLedgerScope::CostLedgerScope(CostLedger* out, bool charge_cpu)
    : out_(out),
      prev_(CurrentObsSink()),
      cpu_start_ns_(charge_cpu ? CurrentThreadCpuNs() : -1) {
  obs_internal::tls_sink = this;
}

CostLedgerScope::~CostLedgerScope() {
  obs_internal::tls_sink = prev_;
  if (cpu_start_ns_ >= 0) {
    out_->cpu_ns += CurrentThreadCpuNs() - cpu_start_ns_;
  }
}

void CostLedgerScope::add(const char* name, std::int64_t delta) {
  switch (Classify(name)) {
    case LedgerField::kValidations: out_->validations += delta; break;
    case LedgerField::kPartitionsBuilt: out_->partitions_built += delta; break;
    case LedgerField::kHits: out_->cache_hits += delta; break;
    case LedgerField::kMisses: out_->cache_misses += delta; break;
    case LedgerField::kCpu: out_->cpu_ns += delta; break;
    case LedgerField::kNone: break;
  }
  if (prev_ != nullptr) prev_->add(name, delta);
}

}  // namespace dhyfd
