#ifndef DHYFD_OBS_SESSION_H_
#define DHYFD_OBS_SESSION_H_

#include <memory>
#include <string>

#include "obs/snapshot_writer.h"
#include "obs/telemetry.h"
#include "service/metrics.h"

namespace dhyfd {

/// One observability session for a CLI run: turns `--trace=<file>` /
/// `--metrics=<file>` into a started tracer, a main-thread TelemetrySink,
/// and flush-on-destruction exporters.
///
///   ObsSession obs({.trace_path = flags.get_str("trace", ""),
///                   .metrics_path = flags.get_str("metrics", "")});
///   ... run the workload ...
///   // destructor: stop tracer, write Chrome JSON + Prometheus text
///
/// With both paths empty the session is inert: no tracer start, no sink, no
/// files — the zero-cost default for untraced bench runs.
struct ObsSessionOptions {
  std::string trace_path;
  std::string metrics_path;
  /// Registry to export; nullptr makes the session own a private one
  /// (the single-process bench case). Must outlive the session.
  MetricsRegistry* metrics = nullptr;
  /// > 0 with a metrics_path: a SnapshotWriter rewrites the metrics file on
  /// this cadence for the whole session, so a scraper (or `watch cat`) can
  /// follow a long run instead of waiting for the final flush.
  double snapshot_interval_seconds = 0;
};

class ObsSession {
 public:
  explicit ObsSession(ObsSessionOptions options);
  ~ObsSession();

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  bool tracing() const { return !options_.trace_path.empty(); }
  MetricsRegistry& metrics() { return *metrics_; }

  /// Writes the trace/metrics files now (also done by the destructor;
  /// flushing twice rewrites the files with the latest state).
  void flush();

 private:
  ObsSessionOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
  std::unique_ptr<TelemetrySink> sink_;
  std::unique_ptr<ObsScope> scope_;
  std::unique_ptr<SnapshotWriter> snapshot_writer_;
};

}  // namespace dhyfd

#endif  // DHYFD_OBS_SESSION_H_
