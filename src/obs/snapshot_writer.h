#ifndef DHYFD_OBS_SNAPSHOT_WRITER_H_
#define DHYFD_OBS_SNAPSHOT_WRITER_H_

#include <cstdint>
#include <string>
#include <thread>

#include "service/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// Periodically writes the registry's Prometheus text exposition to a file
/// (overwriting in place), so an external scraper — or a human with `watch
/// cat` — can follow a long run. stop() (and the destructor) writes one
/// final snapshot, so short runs still leave a complete file behind.
class SnapshotWriter {
 public:
  /// `metrics` is not owned and must outlive the writer. Starts the
  /// background thread immediately; intervals below 10 ms are clamped up.
  SnapshotWriter(MetricsRegistry* metrics, std::string path,
                 double interval_seconds = 5.0);
  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Joins the background thread after a final write. Idempotent.
  void stop() DHYFD_EXCLUDES(mu_);

  std::int64_t snapshots_written() const DHYFD_EXCLUDES(mu_);

 private:
  void loop() DHYFD_EXCLUDES(mu_);
  void write_once() DHYFD_EXCLUDES(mu_);

  MetricsRegistry* metrics_;
  const std::string path_;
  const double interval_seconds_;

  mutable Mutex mu_;
  CondVar wake_;
  bool stopping_ DHYFD_GUARDED_BY(mu_) = false;
  bool joined_ DHYFD_GUARDED_BY(mu_) = false;
  std::int64_t snapshots_written_ DHYFD_GUARDED_BY(mu_) = 0;
  std::thread thread_;  // lint-allow: naked-thread (periodic writer)
};

}  // namespace dhyfd

#endif  // DHYFD_OBS_SNAPSHOT_WRITER_H_
