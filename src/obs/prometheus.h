#ifndef DHYFD_OBS_PROMETHEUS_H_
#define DHYFD_OBS_PROMETHEUS_H_

#include <string>

#include "service/metrics.h"

namespace dhyfd {

/// Renders the registry in the Prometheus text exposition format (version
/// 0.0.4): counters and gauges as single samples, histograms as cumulative
/// `_bucket{le="..."}` samples plus `_sum` and `_count`.
///
/// Deterministic by construction: metric names are emitted in sorted order
/// with the `dhyfd_` prefix, dots mapped to underscores, and one stable
/// label (`le`) — the golden-file test pins the exact bytes. Refreshes the
/// process gauges first, so RSS appears in every scrape.
std::string PrometheusText(MetricsRegistry& metrics);

/// Prometheus metric name for a dotted registry name, e.g.
/// "job.run_seconds" -> "dhyfd_job_run_seconds".
std::string PrometheusName(const std::string& name);

/// Writes PrometheusText(metrics) to `path`; false if the file cannot be
/// opened or written.
bool WritePrometheusFile(MetricsRegistry& metrics, const std::string& path);

}  // namespace dhyfd

#endif  // DHYFD_OBS_PROMETHEUS_H_
