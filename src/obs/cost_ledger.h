#ifndef DHYFD_OBS_COST_LEDGER_H_
#define DHYFD_OBS_COST_LEDGER_H_

#include <cstdint>

#include "obs/obs.h"

namespace dhyfd {

/// Per-request resource accounting, accumulated from the algorithm-level
/// counters the discovery/partition/query layers already emit. The ledger is
/// what the server hands back to clients in the kCostTrailer, aggregates per
/// connection/tenant, and ranks the slow-request log by — one request's cost
/// in a handful of numbers rather than a counter dump.
struct CostLedger {
  std::int64_t cpu_ns = 0;            // CLOCK_THREAD_CPUTIME_ID delta
  std::int64_t validations = 0;       // discover/query/incr FD validations
  std::int64_t partitions_built = 0;  // intersections + dynamic DDM builds
  std::int64_t cache_hits = 0;        // partition cache + prefix cache hits
  std::int64_t cache_misses = 0;
  std::int64_t bytes_streamed = 0;    // filled by the transport, not the scope

  void add(const CostLedger& o) {
    cpu_ns += o.cpu_ns;
    validations += o.validations;
    partitions_built += o.partitions_built;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    bytes_streamed += o.bytes_streamed;
  }

  bool zero() const {
    return cpu_ns == 0 && validations == 0 && partitions_built == 0 &&
           cache_hits == 0 && cache_misses == 0 && bytes_streamed == 0;
  }
};

/// Thread-local delta scope: installs itself as the calling thread's ObsSink
/// for its lifetime, classifies every counter it sees into `out`, and
/// forwards each add() unchanged to the previously installed sink — so the
/// MetricsRegistry/trace fan-out (TelemetrySink) keeps seeing exactly what
/// it saw before. On destruction it also charges the elapsed thread CPU time
/// to out->cpu_ns. Scopes nest like ObsScope; the innermost wins the
/// classification, outer scopes still see the forwarded deltas.
///
/// `charge_cpu = false` skips the CPU charge: the counter classification is
/// a few strcmp()s, but the thread-CPU clock is a real syscall on both ends
/// of the scope — too hot for per-request use on fast paths unless the
/// caller opted into attribution (e.g. a traced RPC). Long-running work
/// (discovery jobs, update batches) should keep the default.
class CostLedgerScope : public ObsSink {
 public:
  explicit CostLedgerScope(CostLedger* out, bool charge_cpu = true);
  ~CostLedgerScope() override;

  CostLedgerScope(const CostLedgerScope&) = delete;
  CostLedgerScope& operator=(const CostLedgerScope&) = delete;

  void add(const char* name, std::int64_t delta) override;

 private:
  CostLedger* out_;
  ObsSink* prev_;
  std::int64_t cpu_start_ns_;
};

/// Nanoseconds of CPU time the calling thread has consumed
/// (CLOCK_THREAD_CPUTIME_ID); 0 if the clock is unavailable.
std::int64_t CurrentThreadCpuNs();

}  // namespace dhyfd

#endif  // DHYFD_OBS_COST_LEDGER_H_
