#include "obs/snapshot_writer.h"

#include <algorithm>
#include <chrono>

#include "obs/prometheus.h"

namespace dhyfd {

SnapshotWriter::SnapshotWriter(MetricsRegistry* metrics, std::string path,
                               double interval_seconds)
    : metrics_(metrics),
      path_(std::move(path)),
      interval_seconds_(std::max(interval_seconds, 0.01)) {
  // A periodic background writer, not pool work: it sleeps most of its
  // life and must survive pool saturation.  // lint-allow: naked-thread
  thread_ = std::thread([this] { loop(); });  // lint-allow: naked-thread
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::stop() {
  {
    MutexLock lock(&mu_);
    if (joined_) return;
    stopping_ = true;
    joined_ = true;
    wake_.notify_all();
  }
  thread_.join();
}

std::int64_t SnapshotWriter::snapshots_written() const {
  MutexLock lock(&mu_);
  return snapshots_written_;
}

void SnapshotWriter::loop() {
  for (;;) {
    bool stop_requested;
    {
      MutexLock lock(&mu_);
      auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_seconds_));
      while (!stopping_) {
        if (wake_.wait_until(lock, deadline) == std::cv_status::timeout) break;
      }
      stop_requested = stopping_;
    }
    if (stop_requested) break;
    write_once();  // file I/O runs outside the lock
  }
  write_once();  // final snapshot on the way out
}

void SnapshotWriter::write_once() {
  if (WritePrometheusFile(*metrics_, path_)) {
    MutexLock lock(&mu_);
    ++snapshots_written_;
  }
}

}  // namespace dhyfd
