#include "obs/snapshot_writer.h"

#include <algorithm>
#include <chrono>

#include "obs/prometheus.h"

namespace dhyfd {

SnapshotWriter::SnapshotWriter(MetricsRegistry* metrics, std::string path,
                               double interval_seconds)
    : metrics_(metrics),
      path_(std::move(path)),
      interval_seconds_(std::max(interval_seconds, 0.01)) {
  thread_ = std::thread([this] { loop(); });
}

SnapshotWriter::~SnapshotWriter() { stop(); }

void SnapshotWriter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (joined_) return;
    stopping_ = true;
    joined_ = true;
    wake_.notify_all();
  }
  thread_.join();
}

std::int64_t SnapshotWriter::snapshots_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_written_;
}

void SnapshotWriter::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    wake_.wait_for(lock, std::chrono::duration<double>(interval_seconds_),
                   [this] { return stopping_; });
    if (stopping_) break;
    lock.unlock();
    write_once();
    lock.lock();
  }
  lock.unlock();
  write_once();  // final snapshot on the way out
}

void SnapshotWriter::write_once() {
  if (WritePrometheusFile(*metrics_, path_)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++snapshots_written_;
  }
}

}  // namespace dhyfd
