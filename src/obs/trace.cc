#include "obs/trace.h"

namespace dhyfd {

namespace {

std::atomic<std::uint32_t> g_next_tid{1};

thread_local std::uint32_t tls_tid = 0;
thread_local std::uint64_t tls_trace_id = 0;

// Per-thread buffer cache: re-resolved when a different tracer records on
// this thread (tests construct private tracers; the hot path uses Global()).
struct BufferCache {
  const Tracer* tracer = nullptr;
  void* buffer = nullptr;
};
thread_local BufferCache tls_buffer;

}  // namespace

std::uint32_t CurrentTraceTid() {
  if (tls_tid == 0) tls_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tls_tid;
}

std::uint64_t CurrentTraceId() { return tls_trace_id; }

TraceIdScope::TraceIdScope(std::uint64_t id) : prev_(tls_trace_id) {
  tls_trace_id = id;
}

TraceIdScope::~TraceIdScope() { tls_trace_id = prev_; }

/// Fixed-capacity slab of events. The writer fills slot `used` and then
/// publishes it with a release store; readers acquire-load `used` and never
/// look past it, so published slots are immutable and race-free.
struct Tracer::Chunk {
  static constexpr int kCapacity = 4096;
  TraceEvent events[kCapacity];
  std::atomic<int> used{0};
  std::atomic<Chunk*> next{nullptr};
};

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t tid) : tid(tid), head(new Chunk) {
    tail = head.get();
  }
  ~ThreadBuffer() {
    // Chunks past head are owned via raw `next` pointers; free the chain.
    Chunk* c = head->next.load(std::memory_order_acquire);
    while (c != nullptr) {
      Chunk* n = c->next.load(std::memory_order_acquire);
      delete c;
      c = n;
    }
  }
  const std::uint32_t tid;
  std::unique_ptr<Chunk> head;
  Chunk* tail;  // only the owning thread advances this
};

Tracer::Tracer() = default;

Tracer::~Tracer() = default;

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // intentionally leaked: threads may
  return *tracer;                        // record until process exit
}

void Tracer::start() {
  bool expected = false;
  if (epoch_set_.compare_exchange_strong(expected, true)) {
    epoch_ = std::chrono::steady_clock::now();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_relaxed); }

std::int64_t Tracer::now_us() const {
  if (!epoch_set_.load(std::memory_order_acquire)) return 0;
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuffer* Tracer::buffer_for_this_thread() {
  if (tls_buffer.tracer == this) {
    return static_cast<ThreadBuffer*>(tls_buffer.buffer);
  }
  auto buffer = std::make_unique<ThreadBuffer>(CurrentTraceTid());
  ThreadBuffer* raw = buffer.get();
  {
    MutexLock lock(&mu_);
    buffers_.push_back(std::move(buffer));
  }
  tls_buffer = {this, raw};
  return raw;
}

void Tracer::record(const TraceEvent& event) {
  if (!enabled()) return;
  ThreadBuffer* buf = buffer_for_this_thread();
  Chunk* tail = buf->tail;
  int used = tail->used.load(std::memory_order_relaxed);
  if (used == Chunk::kCapacity) {
    Chunk* fresh = new Chunk;
    tail->next.store(fresh, std::memory_order_release);
    buf->tail = fresh;
    tail = fresh;
    used = 0;
  }
  tail->events[used] = event;
  if (tail->events[used].tid == 0) tail->events[used].tid = buf->tid;
  if (tail->events[used].trace_id == 0) {
    tail->events[used].trace_id = tls_trace_id;
  }
  tail->used.store(used + 1, std::memory_order_release);
}

void Tracer::record_span(const char* name, std::uint64_t trace_id,
                         std::int64_t start_us, std::int64_t end_us,
                         std::uint32_t tid_override) {
  TraceEvent e;
  e.name = name;
  e.phase = 'X';
  e.trace_id = trace_id;
  e.ts_us = start_us;
  e.dur_us = end_us > start_us ? end_us - start_us : 0;
  e.tid = tid_override;
  record(e);
}

std::vector<TraceEvent> Tracer::drain() const {
  std::vector<const ThreadBuffer*> buffers;
  {
    MutexLock lock(&mu_);
    buffers.reserve(buffers_.size());
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  std::vector<TraceEvent> out;
  for (const ThreadBuffer* buf : buffers) {
    const Chunk* c = buf->head.get();
    while (c != nullptr) {
      int used = c->used.load(std::memory_order_acquire);
      for (int i = 0; i < used; ++i) out.push_back(c->events[i]);
      // Only follow the chain past a fully published chunk: a partially
      // filled tail is by construction the last chunk with events.
      if (used < Chunk::kCapacity) break;
      c = c->next.load(std::memory_order_acquire);
    }
  }
  return out;
}

std::size_t Tracer::event_count() const {
  std::vector<const ThreadBuffer*> buffers;
  {
    MutexLock lock(&mu_);
    for (const auto& b : buffers_) buffers.push_back(b.get());
  }
  std::size_t n = 0;
  for (const ThreadBuffer* buf : buffers) {
    const Chunk* c = buf->head.get();
    while (c != nullptr) {
      int used = c->used.load(std::memory_order_acquire);
      n += static_cast<std::size_t>(used);
      if (used < Chunk::kCapacity) break;
      c = c->next.load(std::memory_order_acquire);
    }
  }
  return n;
}

void TraceSpan::begin(const char* name) {
  name_ = name;
  start_us_ = Tracer::Global().now_us();
  active_ = true;
}

void TraceSpan::end() {
  Tracer& tracer = Tracer::Global();
  // record() re-checks the enabled flag, so a span still open when tracing
  // stops is dropped — fine for the session-oriented start/flush lifecycle.
  TraceEvent e;
  e.name = name_;
  e.phase = 'X';
  e.ts_us = start_us_;
  e.dur_us = tracer.now_us() - start_us_;
  tracer.record(e);
}

}  // namespace dhyfd
