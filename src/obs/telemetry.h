#ifndef DHYFD_OBS_TELEMETRY_H_
#define DHYFD_OBS_TELEMETRY_H_

#include <cstdint>
#include <unordered_map>

#include "obs/obs.h"
#include "obs/trace.h"
#include "service/metrics.h"

namespace dhyfd {

/// The standard ObsSink: mirrors every counter into a MetricsRegistry
/// (under the same dotted name) and, when the global tracer is recording,
/// emits a Chrome counter-series sample ('C' event) with the cumulative
/// value seen through this sink.
///
/// One instance per job/thread — the cumulative map is unsynchronized by
/// design, which keeps the recording path allocation- and lock-free apart
/// from the registry's own counter increments.
class TelemetrySink : public ObsSink {
 public:
  /// Either pointer may be null. `trace_id` tags emitted counter samples;
  /// 0 uses the thread's current trace id at record time.
  explicit TelemetrySink(MetricsRegistry* metrics, std::uint64_t trace_id = 0)
      : metrics_(metrics), trace_id_(trace_id) {}

  void add(const char* name, std::int64_t delta) override;

 private:
  MetricsRegistry* metrics_;
  std::uint64_t trace_id_;
  /// Cumulative totals keyed by the literal's address — counter names are
  /// compile-time constants, so pointer identity is the cheap correct key.
  std::unordered_map<const char*, std::int64_t> totals_;
  std::unordered_map<const char*, Counter*> cached_;
};

}  // namespace dhyfd

#endif  // DHYFD_OBS_TELEMETRY_H_
