#include "obs/chrome_trace.h"

#include <cstdio>
#include <fstream>

namespace dhyfd {

namespace {

// Span/counter names are identifier-like literals, but escape defensively
// so the output is always valid JSON.
void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    char c = *s;
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"dhyfd\"}}";
  for (const TraceEvent& e : events) {
    if (e.name == nullptr) continue;
    out << ",\n{\"name\":";
    WriteJsonString(out, e.name);
    out << ",\"cat\":\"dhyfd\",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":"
        << e.tid << ",\"ts\":" << e.ts_us;
    if (e.phase == 'X') out << ",\"dur\":" << e.dur_us;
    out << ",\"args\":{";
    if (e.phase == 'C') out << "\"value\":" << e.value << ",";
    out << "\"trace_id\":" << e.trace_id << "}}";
  }
  out << "\n]}\n";
}

bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  WriteChromeTrace(tracer.drain(), out);
  return out.good();
}

}  // namespace dhyfd
