#ifndef DHYFD_OBS_CHROME_TRACE_H_
#define DHYFD_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace dhyfd {

/// Writes `events` as Chrome trace-event JSON (the object form,
/// {"traceEvents": [...]}), loadable in Perfetto / chrome://tracing.
///
/// Spans become "X" (complete) events, counters become "C" events whose
/// args carry the series value; every event's args also carry its trace_id
/// so one job's tree can be filtered out of a busy capture.
void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& out);

/// Convenience: drains `tracer` and writes the JSON to `path`. Returns
/// false (and writes nothing) if the file cannot be opened.
bool WriteChromeTraceFile(const Tracer& tracer, const std::string& path);

}  // namespace dhyfd

#endif  // DHYFD_OBS_CHROME_TRACE_H_
