#ifndef DHYFD_OBS_TRACE_H_
#define DHYFD_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// One recorded event in the Chrome trace-event model. Only the phases the
/// stack emits are supported:
///
///   'X'  complete span: [ts_us, ts_us + dur_us)
///   'C'  counter sample: series `name` has cumulative `value` at ts_us
///   'i'  instant marker
///
/// `name` must be a string literal (or otherwise outlive the tracer): events
/// are recorded from hot paths, so they never copy the name.
struct TraceEvent {
  const char* name = nullptr;
  char phase = 'X';
  /// Groups every span/counter of one logical request (0 = none). Exported
  /// as args.trace_id so one job's tree is filterable in Perfetto.
  std::uint64_t trace_id = 0;
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;  // 'X' only
  std::int64_t value = 0;   // 'C' only
  std::uint32_t tid = 0;
};

/// Low-overhead span/counter recorder.
///
/// Design: each recording thread owns a chain of fixed-size event chunks.
/// Appends are lock-free — the writer fills a slot, then publishes it with a
/// release store of the chunk's `used` count; drain() walks every chain with
/// acquire loads and only reads published slots. The registry of per-thread
/// chains is the only mutex, taken once per (thread, tracer) on first use.
///
/// When disabled (the default), the instrumentation macros reduce to one
/// relaxed atomic load — cheap enough to leave compiled into release hot
/// paths. Chunks are retained until the tracer is destroyed; a tracing
/// session trades memory for a drain that cannot race recording threads.
class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer the instrumentation macros record into.
  static Tracer& Global();

  /// Starts recording. Timestamps are relative to the first start().
  void start();
  /// Stops recording; already-buffered events remain drainable.
  void stop();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds on the monotonic clock since the first start().
  std::int64_t now_us() const;

  /// Fresh id for one logical request's span tree (never returns 0).
  std::uint64_t next_trace_id() {
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends to the calling thread's buffer. No-op when disabled.
  void record(const TraceEvent& event);

  /// Convenience: record a completed span with explicit timestamps (used for
  /// queue-wait spans measured across threads).
  void record_span(const char* name, std::uint64_t trace_id,
                   std::int64_t start_us, std::int64_t end_us,
                   std::uint32_t tid_override = 0);

  /// Snapshot of every published event, across all threads, in recording
  /// order per thread. Safe to call while other threads record; events
  /// published after the snapshot began may be missed.
  std::vector<TraceEvent> drain() const DHYFD_EXCLUDES(mu_);

  /// Published events across all threads (cheap sum; for tests/telemetry).
  std::size_t event_count() const DHYFD_EXCLUDES(mu_);

 private:
  struct Chunk;
  struct ThreadBuffer;

  ThreadBuffer* buffer_for_this_thread() DHYFD_EXCLUDES(mu_);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> epoch_set_{false};

  mutable Mutex mu_;  // guards buffers_ registration only
  // Registration is guarded; the buffers themselves are published via the
  // chunks' release/acquire protocol, not the mutex.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ DHYFD_GUARDED_BY(mu_);
};

/// Stable small integer id for the calling thread (1, 2, ...), used as the
/// Chrome trace `tid` so per-thread lanes are readable.
std::uint32_t CurrentTraceTid();

/// The trace id of the logical request the calling thread is working on
/// (0 when none). Propagated by ThreadPool/JobScheduler/LiveStore.
std::uint64_t CurrentTraceId();

/// RAII: installs `id` as the calling thread's current trace id, restoring
/// the previous one on destruction.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::uint64_t id);
  ~TraceIdScope();

  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::uint64_t prev_;
};

/// RAII span against the global tracer: records an 'X' event covering the
/// scope's lifetime, tagged with the current trace id. When the tracer is
/// disabled at construction, both ends are a single relaxed load.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (Tracer::Global().enabled()) begin(name);
  }
  ~TraceSpan() {
    if (active_) end();
  }

  /// Records the span now instead of at scope exit (idempotent).
  void finish() {
    if (active_) {
      end();
      active_ = false;
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void begin(const char* name);
  void end();

  const char* name_ = nullptr;
  std::int64_t start_us_ = 0;
  bool active_ = false;
};

}  // namespace dhyfd

#endif  // DHYFD_OBS_TRACE_H_
