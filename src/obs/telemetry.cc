#include "obs/telemetry.h"

namespace dhyfd {

void TelemetrySink::add(const char* name, std::int64_t delta) {
  if (metrics_ != nullptr) {
    Counter*& counter = cached_[name];
    if (counter == nullptr) counter = &metrics_->counter(name);
    counter->inc(delta);
  }
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    std::int64_t total = (totals_[name] += delta);
    TraceEvent e;
    e.name = name;
    e.phase = 'C';
    e.trace_id = trace_id_;
    e.ts_us = tracer.now_us();
    e.value = total;
    tracer.record(e);
  }
}

}  // namespace dhyfd
