#include "obs/session.h"

#include <cstdio>

#include "obs/chrome_trace.h"
#include "obs/prometheus.h"

namespace dhyfd {

ObsSession::ObsSession(ObsSessionOptions options)
    : options_(std::move(options)), metrics_(options_.metrics) {
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  bool active = !options_.trace_path.empty() || !options_.metrics_path.empty();
  if (!active) return;
  if (!options_.trace_path.empty()) Tracer::Global().start();
  // Main-thread sink: single-threaded benches get counter series without
  // any service layer; the scheduler/store install their own per-job sinks.
  sink_ = std::make_unique<TelemetrySink>(metrics_);
  scope_ = std::make_unique<ObsScope>(sink_.get());
  if (options_.snapshot_interval_seconds > 0 &&
      !options_.metrics_path.empty()) {
    snapshot_writer_ = std::make_unique<SnapshotWriter>(
        metrics_, options_.metrics_path, options_.snapshot_interval_seconds);
  }
}

ObsSession::~ObsSession() {
  scope_.reset();
  sink_.reset();
  if (!options_.trace_path.empty()) Tracer::Global().stop();
  // Stop the periodic writer (its own final snapshot included) before the
  // destructor's flush, so the last write on disk is the complete one.
  snapshot_writer_.reset();
  flush();
}

void ObsSession::flush() {
  if (!options_.trace_path.empty()) {
    if (WriteChromeTraceFile(Tracer::Global(), options_.trace_path)) {
      std::fprintf(stderr, "obs: wrote trace to %s (%zu events)\n",
                   options_.trace_path.c_str(),
                   Tracer::Global().event_count());
    } else {
      std::fprintf(stderr, "obs: failed to write trace to %s\n",
                   options_.trace_path.c_str());
    }
  }
  if (!options_.metrics_path.empty()) {
    if (WritePrometheusFile(*metrics_, options_.metrics_path)) {
      std::fprintf(stderr, "obs: wrote metrics to %s\n",
                   options_.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "obs: failed to write metrics to %s\n",
                   options_.metrics_path.c_str());
    }
  }
}

}  // namespace dhyfd
