#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace dhyfd {

namespace {

/// Shortest round-trip double formatting (%.17g is exact but noisy; %g at
/// default precision is lossy). Prometheus accepts any float syntax; we pin
/// %.9g so the golden file is stable across libc versions.
std::string FmtDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "dhyfd_";
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

std::string PrometheusText(MetricsRegistry& metrics) {
  metrics.refresh_process_gauges();
  std::ostringstream out;

  for (const auto& [name, value] : metrics.counter_values()) {
    std::string p = PrometheusName(name);
    out << "# TYPE " << p << " counter\n" << p << " " << value << "\n";
  }
  for (const auto& [name, value] : metrics.gauge_values()) {
    std::string p = PrometheusName(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << value << "\n";
  }
  for (const auto& [name, snap] : metrics.histogram_values()) {
    std::string p = PrometheusName(name);
    out << "# TYPE " << p << " histogram\n";
    std::int64_t cumulative = 0;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += snap.buckets[i];
      out << p << "_bucket{le=\"" << FmtDouble(Histogram::bucket_bound(i))
          << "\"} " << cumulative << "\n";
    }
    out << p << "_sum " << FmtDouble(snap.sum) << "\n";
    out << p << "_count " << snap.count << "\n";
  }
  return out.str();
}

bool WritePrometheusFile(MetricsRegistry& metrics, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << PrometheusText(metrics);
  return out.good();
}

}  // namespace dhyfd
