#include "relation/schema.h"

namespace dhyfd {

Schema::Schema(std::vector<std::string> names) : names_(std::move(names)) {}

Schema Schema::numbered(int n, const std::string& prefix) {
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) names.push_back(prefix + std::to_string(i));
  return Schema(std::move(names));
}

AttrId Schema::index_of(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<AttrId>(i);
  }
  return -1;
}

std::string Schema::format(const AttributeSet& attrs) const {
  std::string out;
  bool first = true;
  attrs.for_each([&](AttrId a) {
    if (!first) out += ", ";
    out += name(a);
    first = false;
  });
  return out;
}

}  // namespace dhyfd
