#ifndef DHYFD_RELATION_ENCODER_H_
#define DHYFD_RELATION_ENCODER_H_

#include <string>
#include <vector>

#include "relation/csv.h"
#include "relation/relation.h"

namespace dhyfd {

/// Result of DIIS encoding: the encoded relation plus, per column, the
/// dictionary mapping ValueId back to the original string (null codes map to
/// an empty string under kNullNotEqualsNull; under kNullEqualsNull the single
/// null code maps to the first null token seen).
struct EncodedRelation {
  Relation relation;
  std::vector<std::vector<std::string>> dictionaries;

  /// Original string for a cell; convenience for reports and examples.
  const std::string& decode(RowId row, AttrId col) const {
    return dictionaries[col][relation.value(row, col)];
  }
};

/// Encodes a raw string table with the paper's domain independent indexing
/// scheme (DIIS): per column, a bijection from the active domain onto dense
/// integer codes 0..|adom|-1.
///
/// Null handling follows `semantics`:
///  * kNullEqualsNull: all null markers in a column share one code.
///  * kNullNotEqualsNull: every null occurrence gets a fresh code, so it
///    agrees with no other row. The null flag is preserved either way.
EncodedRelation EncodeRelation(const RawTable& table,
                               NullSemantics semantics = NullSemantics::kNullEqualsNull,
                               const CsvOptions& options = {});

/// Statistics about missing values (the #IR / #IC / #null columns reported
/// alongside the paper's data sets).
struct NullStats {
  int64_t incomplete_rows = 0;
  int incomplete_columns = 0;
  int64_t null_occurrences = 0;
};

NullStats ComputeNullStats(const Relation& r);

}  // namespace dhyfd

#endif  // DHYFD_RELATION_ENCODER_H_
