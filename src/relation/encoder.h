#ifndef DHYFD_RELATION_ENCODER_H_
#define DHYFD_RELATION_ENCODER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "relation/csv.h"
#include "relation/relation.h"

namespace dhyfd {

/// Result of DIIS encoding: the encoded relation plus, per column, the
/// dictionary mapping ValueId back to the original string (null codes map to
/// an empty string under kNullNotEqualsNull; under kNullEqualsNull the single
/// null code maps to the first null token seen).
struct EncodedRelation {
  Relation relation;
  std::vector<std::vector<std::string>> dictionaries;

  /// Original string for a cell; convenience for reports and examples.
  const std::string& decode(RowId row, AttrId col) const {
    return dictionaries[col][relation.value(row, col)];
  }
};

/// Encodes a raw string table with the paper's domain independent indexing
/// scheme (DIIS): per column, a bijection from the active domain onto dense
/// integer codes 0..|adom|-1.
///
/// Null handling follows `semantics`:
///  * kNullEqualsNull: all null markers in a column share one code.
///  * kNullNotEqualsNull: every null occurrence gets a fresh code, so it
///    agrees with no other row. The null flag is preserved either way.
EncodedRelation EncodeRelation(const RawTable& table,
                               NullSemantics semantics = NullSemantics::kNullEqualsNull,
                               const CsvOptions& options = {});

/// Stateful DIIS encoder for live relations: encodes an initial table like
/// EncodeRelation, then re-encodes only the cells of appended rows. Existing
/// codes are stable across appends; unseen values extend the per-column
/// dictionary (the active domain grows at the top, staying dense).
///
/// compact() re-densifies codes onto a surviving subset of rows — the hook
/// LiveRelation uses when churn-triggered rebuilds drop tombstoned rows, so
/// dictionaries and refinement scratch arrays do not grow without bound.
class DeltaEncoder {
 public:
  explicit DeltaEncoder(const RawTable& table,
                        NullSemantics semantics = NullSemantics::kNullEqualsNull,
                        const CsvOptions& options = {});

  Relation& relation() { return rel_; }
  const Relation& relation() const { return rel_; }
  NullSemantics semantics() const { return semantics_; }
  const std::vector<std::vector<std::string>>& dictionaries() const {
    return dictionaries_;
  }

  /// Encodes and appends one raw row (cells.size() must match the schema).
  /// Only the new cells are touched; returns the new row id.
  RowId append(const std::vector<std::string>& cells);

  /// Rebuilds the relation from the given rows (ascending, deduplicated),
  /// re-densifying every column's codes to the values those rows actually
  /// use. Row `keep[i]` of the old relation becomes row i of the new one.
  void compact(const std::vector<RowId>& keep);

  /// Original string for a cell; null cells decode to their dictionary
  /// entry, like EncodedRelation::decode.
  const std::string& decode(RowId row, AttrId col) const {
    return dictionaries_[col][rel_.value(row, col)];
  }

 private:
  ValueId encode_cell(AttrId col, const std::string& cell, bool* is_null);

  Relation rel_;
  NullSemantics semantics_;
  CsvOptions options_;
  std::vector<std::vector<std::string>> dictionaries_;
  // Per column: string -> code for non-null values, plus the shared null
  // code under kNullEqualsNull (-1 until the first null is seen).
  std::vector<std::unordered_map<std::string, ValueId>> code_of_;
  std::vector<ValueId> null_code_;
};

/// Statistics about missing values (the #IR / #IC / #null columns reported
/// alongside the paper's data sets).
struct NullStats {
  int64_t incomplete_rows = 0;
  int incomplete_columns = 0;
  int64_t null_occurrences = 0;
};

NullStats ComputeNullStats(const Relation& r);

}  // namespace dhyfd

#endif  // DHYFD_RELATION_ENCODER_H_
