#include "relation/encoder.h"

#include <unordered_map>

namespace dhyfd {

EncodedRelation EncodeRelation(const RawTable& table, NullSemantics semantics,
                               const CsvOptions& options) {
  const int cols = table.num_cols();
  const RowId rows = table.num_rows();
  EncodedRelation out{Relation(Schema(table.header), rows), {}};
  out.dictionaries.resize(cols);

  for (int c = 0; c < cols; ++c) {
    std::unordered_map<std::string, ValueId> codes;
    codes.reserve(rows);
    std::vector<std::string>& dict = out.dictionaries[c];
    ValueId null_code = -1;
    for (RowId r = 0; r < rows; ++r) {
      const std::string& cell = table.rows[r][c];
      if (IsNullToken(cell, options)) {
        out.relation.set_null(r, c);
        if (semantics == NullSemantics::kNullNotEqualsNull) {
          // Fresh code per null occurrence: never agrees with any row.
          ValueId code = static_cast<ValueId>(dict.size());
          dict.push_back("");
          out.relation.set_value(r, c, code);
        } else {
          if (null_code < 0) {
            null_code = static_cast<ValueId>(dict.size());
            dict.push_back(cell);
          }
          out.relation.set_value(r, c, null_code);
        }
        continue;
      }
      auto [it, inserted] = codes.emplace(cell, static_cast<ValueId>(dict.size()));
      if (inserted) dict.push_back(cell);
      out.relation.set_value(r, c, it->second);
    }
    out.relation.set_domain_size(c, static_cast<ValueId>(dict.size()));
  }
  return out;
}

NullStats ComputeNullStats(const Relation& r) {
  NullStats stats;
  std::vector<uint8_t> row_incomplete(r.num_rows(), 0);
  for (int c = 0; c < r.num_cols(); ++c) {
    if (!r.column_has_nulls(c)) continue;
    bool col_has = false;
    for (RowId i = 0; i < r.num_rows(); ++i) {
      if (r.is_null(i, c)) {
        ++stats.null_occurrences;
        row_incomplete[i] = 1;
        col_has = true;
      }
    }
    if (col_has) ++stats.incomplete_columns;
  }
  for (uint8_t f : row_incomplete) stats.incomplete_rows += f;
  return stats;
}

}  // namespace dhyfd
