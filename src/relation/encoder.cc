#include "relation/encoder.h"

#include <unordered_map>

namespace dhyfd {

EncodedRelation EncodeRelation(const RawTable& table, NullSemantics semantics,
                               const CsvOptions& options) {
  const int cols = table.num_cols();
  const RowId rows = table.num_rows();
  EncodedRelation out{Relation(Schema(table.header), rows), {}};
  out.dictionaries.resize(cols);

  for (int c = 0; c < cols; ++c) {
    std::unordered_map<std::string, ValueId> codes;
    codes.reserve(rows);
    std::vector<std::string>& dict = out.dictionaries[c];
    ValueId null_code = -1;
    for (RowId r = 0; r < rows; ++r) {
      const std::string& cell = table.rows[r][c];
      if (IsNullToken(cell, options)) {
        out.relation.set_null(r, c);
        if (semantics == NullSemantics::kNullNotEqualsNull) {
          // Fresh code per null occurrence: never agrees with any row.
          ValueId code = static_cast<ValueId>(dict.size());
          dict.push_back("");
          out.relation.set_value(r, c, code);
        } else {
          if (null_code < 0) {
            null_code = static_cast<ValueId>(dict.size());
            dict.push_back(cell);
          }
          out.relation.set_value(r, c, null_code);
        }
        continue;
      }
      auto [it, inserted] = codes.emplace(cell, static_cast<ValueId>(dict.size()));
      if (inserted) dict.push_back(cell);
      out.relation.set_value(r, c, it->second);
    }
    out.relation.set_domain_size(c, static_cast<ValueId>(dict.size()));
  }
  return out;
}

DeltaEncoder::DeltaEncoder(const RawTable& table, NullSemantics semantics,
                           const CsvOptions& options)
    : rel_(Schema(table.header), 0),
      semantics_(semantics),
      options_(options),
      dictionaries_(table.num_cols()),
      code_of_(table.num_cols()),
      null_code_(table.num_cols(), -1) {
  for (const auto& row : table.rows) append(row);
}

ValueId DeltaEncoder::encode_cell(AttrId col, const std::string& cell,
                                  bool* is_null) {
  std::vector<std::string>& dict = dictionaries_[col];
  if (IsNullToken(cell, options_)) {
    *is_null = true;
    if (semantics_ == NullSemantics::kNullNotEqualsNull) {
      // Fresh code per null occurrence: never agrees with any row.
      ValueId code = static_cast<ValueId>(dict.size());
      dict.emplace_back();
      return code;
    }
    if (null_code_[col] < 0) {
      null_code_[col] = static_cast<ValueId>(dict.size());
      dict.push_back(cell);
    }
    return null_code_[col];
  }
  *is_null = false;
  auto [it, inserted] = code_of_[col].emplace(cell, static_cast<ValueId>(dict.size()));
  if (inserted) dict.push_back(cell);
  return it->second;
}

RowId DeltaEncoder::append(const std::vector<std::string>& cells) {
  const int m = rel_.num_cols();
  std::vector<ValueId> codes(m);
  std::vector<uint8_t> nulls(m, 0);
  for (int c = 0; c < m; ++c) {
    bool is_null = false;
    codes[c] = encode_cell(c, cells[c], &is_null);
    nulls[c] = is_null;
    if (static_cast<ValueId>(dictionaries_[c].size()) > rel_.domain_size(c)) {
      rel_.set_domain_size(c, static_cast<ValueId>(dictionaries_[c].size()));
    }
  }
  RowId row = rel_.append_row(codes);
  for (int c = 0; c < m; ++c) {
    if (nulls[c]) rel_.set_null(row, c);
  }
  return row;
}

void DeltaEncoder::compact(const std::vector<RowId>& keep) {
  const int m = rel_.num_cols();
  Relation fresh(rel_.schema(), static_cast<RowId>(keep.size()));
  for (int c = 0; c < m; ++c) {
    std::vector<std::string> dict;
    std::unordered_map<std::string, ValueId> codes;
    std::unordered_map<ValueId, ValueId> remap;
    ValueId null_code = -1;
    remap.reserve(keep.size());
    for (size_t i = 0; i < keep.size(); ++i) {
      RowId old_row = keep[i];
      ValueId old_code = rel_.value(old_row, c);
      auto [it, inserted] = remap.emplace(old_code, static_cast<ValueId>(dict.size()));
      if (inserted) {
        dict.push_back(dictionaries_[c][old_code]);
        if (rel_.is_null(old_row, c)) {
          if (semantics_ == NullSemantics::kNullEqualsNull) null_code = it->second;
        } else {
          codes.emplace(dict.back(), it->second);
        }
      }
      fresh.set_value(static_cast<RowId>(i), c, it->second);
      if (rel_.is_null(old_row, c)) fresh.set_null(static_cast<RowId>(i), c);
    }
    fresh.set_domain_size(c, static_cast<ValueId>(dict.size()));
    dictionaries_[c] = std::move(dict);
    code_of_[c] = std::move(codes);
    null_code_[c] = null_code;
  }
  rel_ = std::move(fresh);
}

NullStats ComputeNullStats(const Relation& r) {
  NullStats stats;
  std::vector<uint8_t> row_incomplete(r.num_rows(), 0);
  for (int c = 0; c < r.num_cols(); ++c) {
    if (!r.column_has_nulls(c)) continue;
    bool col_has = false;
    for (RowId i = 0; i < r.num_rows(); ++i) {
      if (r.is_null(i, c)) {
        ++stats.null_occurrences;
        row_incomplete[i] = 1;
        col_has = true;
      }
    }
    if (col_has) ++stats.incomplete_columns;
  }
  for (uint8_t f : row_incomplete) stats.incomplete_rows += f;
  return stats;
}

}  // namespace dhyfd
