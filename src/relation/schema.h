#ifndef DHYFD_RELATION_SCHEMA_H_
#define DHYFD_RELATION_SCHEMA_H_

#include <string>
#include <vector>

#include "util/attribute_set.h"

namespace dhyfd {

/// A relation schema: an ordered list of named attributes.
///
/// The total order on attributes (schema position) is what lets the
/// discovery algorithms identify columns by integers, as the paper assumes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<std::string> names);

  /// Convenience: makes a schema "c0", "c1", ..., "c(n-1)".
  static Schema numbered(int n, const std::string& prefix = "c");

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(AttrId a) const { return names_[a]; }
  const std::vector<std::string>& names() const { return names_; }

  /// Index of the attribute with the given name, or -1 if absent.
  AttrId index_of(const std::string& name) const;

  /// The set of all attributes of this schema.
  AttributeSet all() const { return AttributeSet::full(size()); }

  /// Renders an attribute set as a comma-separated list of column names.
  std::string format(const AttributeSet& attrs) const;

 private:
  std::vector<std::string> names_;
};

}  // namespace dhyfd

#endif  // DHYFD_RELATION_SCHEMA_H_
