#include "relation/csv.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace dhyfd {

namespace {

// Parses one CSV record starting at `pos`; advances `pos` past the record's
// trailing newline. Returns false at end of input.
bool ParseRecord(const std::string& text, size_t& pos, const CsvOptions& opt,
                 std::vector<std::string>& out) {
  if (pos >= text.size()) return false;
  out.clear();
  std::string cell;
  bool in_quotes = false;
  bool saw_any = false;
  while (pos < text.size()) {
    char c = text[pos];
    if (in_quotes) {
      if (c == opt.quote) {
        if (pos + 1 < text.size() && text[pos + 1] == opt.quote) {
          cell += opt.quote;
          pos += 2;
        } else {
          in_quotes = false;
          ++pos;
        }
      } else {
        cell += c;
        ++pos;
      }
      saw_any = true;
      continue;
    }
    if (c == opt.quote && cell.empty()) {
      in_quotes = true;
      saw_any = true;
      ++pos;
    } else if (c == opt.separator) {
      out.push_back(std::move(cell));
      cell.clear();
      saw_any = true;
      ++pos;
    } else if (c == '\n' || c == '\r') {
      ++pos;
      if (c == '\r' && pos < text.size() && text[pos] == '\n') ++pos;
      break;
    } else {
      cell += c;
      saw_any = true;
      ++pos;
    }
  }
  if (in_quotes) throw std::runtime_error("csv: unterminated quoted cell");
  if (!saw_any && out.empty()) return false;  // Blank trailing line.
  out.push_back(std::move(cell));
  return true;
}

bool NeedsQuoting(const std::string& cell, const CsvOptions& opt) {
  for (char c : cell) {
    if (c == opt.separator || c == opt.quote || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

bool IsNullToken(const std::string& cell, const CsvOptions& options) {
  for (const std::string& tok : options.null_tokens) {
    if (cell == tok) return true;
  }
  return false;
}

RawTable ParseCsvString(const std::string& text, const CsvOptions& options) {
  RawTable table;
  size_t pos = 0;
  std::vector<std::string> record;
  bool first = true;
  while (ParseRecord(text, pos, options, record)) {
    if (first && options.has_header) {
      table.header = record;
      first = false;
      continue;
    }
    if (first) {
      // Headerless input: synthesize column names from the first record.
      for (size_t i = 0; i < record.size(); ++i) {
        table.header.push_back("c" + std::to_string(i));
      }
      first = false;
    }
    if (record.size() != table.header.size()) {
      throw std::runtime_error(
          "csv: row " + std::to_string(table.rows.size() + 1) + " has " +
          std::to_string(record.size()) + " cells, expected " +
          std::to_string(table.header.size()));
    }
    table.rows.push_back(record);
  }
  return table;
}

RawTable ParseCsv(std::istream& in, const CsvOptions& options) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseCsvString(buf.str(), options);
}

RawTable ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("csv: cannot open " + path);
  return ParseCsv(in, options);
}

void WriteCsv(const RawTable& table, std::ostream& out, const CsvOptions& options) {
  auto emit_record = [&](const std::vector<std::string>& record) {
    for (size_t i = 0; i < record.size(); ++i) {
      if (i > 0) out << options.separator;
      if (NeedsQuoting(record[i], options)) {
        out << options.quote;
        for (char c : record[i]) {
          if (c == options.quote) out << options.quote;
          out << c;
        }
        out << options.quote;
      } else {
        out << record[i];
      }
    }
    out << '\n';
  };
  if (options.has_header) emit_record(table.header);
  for (const auto& row : table.rows) emit_record(row);
}

std::string WriteCsvString(const RawTable& table, const CsvOptions& options) {
  std::ostringstream out;
  WriteCsv(table, out, options);
  return out.str();
}

}  // namespace dhyfd
