#ifndef DHYFD_RELATION_CSV_H_
#define DHYFD_RELATION_CSV_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace dhyfd {

/// An un-encoded table of strings, as read from a CSV file. This is the
/// input to the DIIS encoder.
struct RawTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  int num_cols() const { return static_cast<int>(header.size()); }
  int num_rows() const { return static_cast<int>(rows.size()); }
};

/// CSV dialect options. The defaults match the Metanome benchmark files:
/// comma separator, optional double-quote quoting with "" escapes.
struct CsvOptions {
  char separator = ',';
  char quote = '"';
  bool has_header = true;
  /// Cell values treated as null markers (in addition to the empty string).
  std::vector<std::string> null_tokens = {"", "?", "NULL", "null"};
};

/// Parses CSV text. Throws std::runtime_error on structural errors
/// (unterminated quote, rows with inconsistent arity).
RawTable ParseCsv(std::istream& in, const CsvOptions& options = {});
RawTable ParseCsvString(const std::string& text, const CsvOptions& options = {});
RawTable ReadCsvFile(const std::string& path, const CsvOptions& options = {});

/// Serializes a table back to CSV (quoting cells that need it).
void WriteCsv(const RawTable& table, std::ostream& out,
              const CsvOptions& options = {});
std::string WriteCsvString(const RawTable& table, const CsvOptions& options = {});

/// True if the cell is one of the configured null markers.
bool IsNullToken(const std::string& cell, const CsvOptions& options);

}  // namespace dhyfd

#endif  // DHYFD_RELATION_CSV_H_
