#include "relation/relation.h"

#include <algorithm>
#include <unordered_map>

namespace dhyfd {

Relation::Relation(Schema schema, RowId num_rows)
    : schema_(std::move(schema)),
      num_rows_(num_rows),
      columns_(schema_.size(), std::vector<ValueId>(num_rows, 0)),
      null_rows_(schema_.size()),
      domain_sizes_(schema_.size(), 0) {}

RowId Relation::append_row(const std::vector<ValueId>& values) {
  RowId id = num_rows_++;
  for (int c = 0; c < num_cols(); ++c) {
    columns_[c].push_back(values[c]);
    // Columns already tracking nulls grow one non-null flag; columns without
    // nulls stay empty (set_null sizes them lazily to num_rows_).
    if (!null_rows_[c].empty()) null_rows_[c].push_back(0);
  }
  return id;
}

ValueId Relation::max_domain_size() const {
  ValueId m = 0;
  for (ValueId d : domain_sizes_) m = std::max(m, d);
  return m;
}

bool Relation::agree_on(RowId s, RowId t, const AttributeSet& x) const {
  bool ok = true;
  x.for_each([&](AttrId a) {
    if (ok && columns_[a][s] != columns_[a][t]) ok = false;
  });
  return ok;
}

AttributeSet Relation::agree_set(RowId s, RowId t) const {
  AttributeSet ag;
  for (int a = 0; a < num_cols(); ++a) {
    if (columns_[a][s] == columns_[a][t]) ag.set(a);
  }
  return ag;
}

bool Relation::satisfies(const AttributeSet& lhs, AttrId rhs) const {
  // Group rows by their LHS projection via sorting row ids.
  std::vector<RowId> rows(num_rows_);
  for (RowId i = 0; i < num_rows_; ++i) rows[i] = i;
  std::vector<AttrId> lhs_attrs;
  lhs.for_each([&](AttrId a) { lhs_attrs.push_back(a); });
  std::sort(rows.begin(), rows.end(), [&](RowId a, RowId b) {
    for (AttrId c : lhs_attrs) {
      if (columns_[c][a] != columns_[c][b]) return columns_[c][a] < columns_[c][b];
    }
    return false;
  });
  for (RowId i = 1; i < num_rows_; ++i) {
    if (agree_on(rows[i - 1], rows[i], lhs) &&
        columns_[rhs][rows[i - 1]] != columns_[rhs][rows[i]]) {
      return false;
    }
  }
  return true;
}

Relation Relation::fragment(RowId rows, int cols) const {
  rows = std::min(rows, num_rows_);
  cols = std::min(cols, num_cols());
  std::vector<std::string> names(schema_.names().begin(),
                                 schema_.names().begin() + cols);
  Relation out(Schema(std::move(names)), rows);
  for (int c = 0; c < cols; ++c) {
    // Re-densify codes for the fragment so refinement scratch arrays stay
    // sized to the fragment's active domain.
    std::unordered_map<ValueId, ValueId> remap;
    remap.reserve(rows);
    for (RowId r = 0; r < rows; ++r) {
      ValueId old = columns_[c][r];
      auto [it, inserted] = remap.emplace(old, static_cast<ValueId>(remap.size()));
      out.columns_[c][r] = it->second;
      (void)inserted;
      if (is_null(r, c)) out.set_null(r, c);
    }
    out.domain_sizes_[c] = static_cast<ValueId>(remap.size());
  }
  return out;
}

}  // namespace dhyfd
