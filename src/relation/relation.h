#ifndef DHYFD_RELATION_RELATION_H_
#define DHYFD_RELATION_RELATION_H_

#include <cstdint>
#include <vector>

#include "relation/schema.h"
#include "util/attribute_set.h"

namespace dhyfd {

/// Identifies a row (tuple) of a relation.
using RowId = int32_t;

/// A DIIS-compressed value: the paper's domain independent indexing scheme
/// maps each active domain bijectively onto {0, ..., |adom|-1}. We use
/// 0-based codes.
using ValueId = int32_t;

/// How null markers compare during FD discovery (paper Section V-B).
enum class NullSemantics {
  /// Missing values are treated like any other value: two nulls agree.
  kNullEqualsNull,
  /// Each missing value is a fresh, unique value: two nulls never agree.
  kNullNotEqualsNull,
};

/// A DIIS-encoded relation: a column-major ValueId matrix plus a null map.
///
/// Under kNullNotEqualsNull each null occurrence carries a distinct code so
/// it matches no other row, but `is_null` still reports it as missing so the
/// ranking module can exclude null occurrences from redundancy counts.
class Relation {
 public:
  Relation() = default;
  Relation(Schema schema, RowId num_rows);

  const Schema& schema() const { return schema_; }
  RowId num_rows() const { return num_rows_; }
  int num_cols() const { return schema_.size(); }

  ValueId value(RowId row, AttrId col) const { return columns_[col][row]; }
  void set_value(RowId row, AttrId col, ValueId v) { columns_[col][row] = v; }

  /// Appends one row with the given per-column codes (values.size() must be
  /// num_cols()); returns the new row's id. Null flags default to non-null;
  /// call set_null afterwards. Domain sizes are NOT adjusted — the caller
  /// (the incremental encoder) tracks code allocation.
  RowId append_row(const std::vector<ValueId>& values);

  bool is_null(RowId row, AttrId col) const {
    return !null_rows_[col].empty() && null_rows_[col][row];
  }
  void set_null(RowId row, AttrId col) {
    if (null_rows_[col].empty()) null_rows_[col].assign(num_rows_, 0);
    null_rows_[col][row] = 1;
  }

  /// True if the column contains at least one null marker.
  bool column_has_nulls(AttrId col) const { return !null_rows_[col].empty(); }

  /// Number of distinct codes in the column (the active domain size under
  /// the encoding's null semantics). Codes are dense: 0..domain_size-1.
  ValueId domain_size(AttrId col) const { return domain_sizes_[col]; }
  void set_domain_size(AttrId col, ValueId n) { domain_sizes_[col] = n; }

  /// Largest domain size over all columns; sizes refinement scratch arrays.
  ValueId max_domain_size() const;

  const std::vector<ValueId>& column(AttrId col) const { return columns_[col]; }

  /// True if rows s and t agree on every attribute in X.
  bool agree_on(RowId s, RowId t, const AttributeSet& x) const;

  /// The agree set ag(s, t): all attributes on which rows s and t match.
  AttributeSet agree_set(RowId s, RowId t) const;

  /// Brute-force satisfaction test for X -> A; O(rows log rows). Used by
  /// tests and the example tools, not by the discovery algorithms.
  bool satisfies(const AttributeSet& lhs, AttrId rhs) const;

  /// Copies the first `rows` rows and the first `cols` columns; used by the
  /// row-/column-scalability experiments (Figures 7-9). Domain sizes are
  /// recomputed densely for the fragment.
  Relation fragment(RowId rows, int cols) const;

  /// Total number of value occurrences (#values in Table IV).
  int64_t num_values() const {
    return static_cast<int64_t>(num_rows_) * num_cols();
  }

 private:
  Schema schema_;
  RowId num_rows_ = 0;
  std::vector<std::vector<ValueId>> columns_;
  // Per column: empty if the column has no nulls, else one flag per row.
  std::vector<std::vector<uint8_t>> null_rows_;
  std::vector<ValueId> domain_sizes_;
};

}  // namespace dhyfd

#endif  // DHYFD_RELATION_RELATION_H_
