#include "datagen/generator.h"

#include <stdexcept>

#include "util/random.h"

namespace dhyfd {

namespace {

uint64_t MixHash(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace

RawTable GenerateRawTable(const DatasetSpec& spec) {
  const int m = spec.num_cols();
  RawTable table;
  table.header.reserve(m);
  for (const ColumnSpec& c : spec.columns) table.header.push_back(c.name);

  Random rng(spec.seed);
  // Integer values first; stringified at the end.
  std::vector<std::vector<int64_t>> values(m, std::vector<int64_t>(spec.rows));
  std::vector<std::vector<uint8_t>> nulls(m, std::vector<uint8_t>(spec.rows, 0));

  // Columns eligible for near-duplicate mutation: any random column with a
  // non-trivial domain. When a mutated column is a parent, its derived
  // children are recomputed, so planted FDs are never violated.
  std::vector<int> mutable_cols;
  for (int c = 0; c < m; ++c) {
    if (spec.columns[c].kind == ColumnKind::kRandom &&
        spec.columns[c].domain_size >= 2 && spec.columns[c].allow_mutation) {
      mutable_cols.push_back(c);
    }
  }

  auto recompute_derived = [&](int row) {
    for (int c = 0; c < m; ++c) {
      const ColumnSpec& col = spec.columns[c];
      if (col.kind != ColumnKind::kDerived) continue;
      uint64_t h = 0x4cf5ad432745937full;
      for (int p : col.parents) h = MixHash(h, static_cast<uint64_t>(values[p][row]));
      values[c][row] = static_cast<int64_t>(h % static_cast<uint64_t>(col.domain_size));
    }
  };

  size_t next_mutation = 0;
  for (int row = 0; row < spec.rows; ++row) {
    if (row > 0 && !mutable_cols.empty() && spec.near_duplicate_rate > 0 &&
        rng.next_bool(spec.near_duplicate_rate)) {
      // Copy the previous row wholesale, then redraw one mutable column and
      // refresh its derived children. Key columns keep fresh values so
      // planted keys stay unique.
      for (int c = 0; c < m; ++c) {
        if (spec.columns[c].kind == ColumnKind::kKey) {
          values[c][row] = row;
          continue;
        }
        values[c][row] = values[c][row - 1];
        nulls[c][row] = nulls[c][row - 1];
      }
      // Round-robin over the mutable columns: every one is guaranteed to be
      // hit once there are at least |mutable| near-duplicates, so no
      // unprotected column's accidental FDs survive by luck.
      int c = mutable_cols[next_mutation++ % mutable_cols.size()];
      int64_t old = values[c][row];
      int64_t fresh = old;
      while (fresh == old) {
        fresh = static_cast<int64_t>(rng.next_below(spec.columns[c].domain_size));
      }
      values[c][row] = fresh;
      nulls[c][row] = 0;
      recompute_derived(row);
      continue;
    }
    bool duplicate = row > 0 && spec.duplicate_row_rate > 0 &&
                     rng.next_bool(spec.duplicate_row_rate);
    // Pass 1: independent columns.
    for (int c = 0; c < m; ++c) {
      const ColumnSpec& col = spec.columns[c];
      switch (col.kind) {
        case ColumnKind::kConstant:
          values[c][row] = 0;
          break;
        case ColumnKind::kKey:
          values[c][row] = row;
          break;
        case ColumnKind::kRandom:
          if (duplicate) {
            values[c][row] = values[c][row - 1];
          } else if (col.skew > 0) {
            values[c][row] =
                static_cast<int64_t>(rng.next_zipf(col.domain_size, col.skew));
          } else {
            values[c][row] = static_cast<int64_t>(rng.next_below(col.domain_size));
          }
          break;
        case ColumnKind::kDerived:
          break;  // pass 2
      }
    }
    // Pass 2: derived columns, in index order so a derived column may
    // depend on any non-derived column or an earlier derived one.
    for (int c = 0; c < m; ++c) {
      const ColumnSpec& col = spec.columns[c];
      if (col.kind != ColumnKind::kDerived) continue;
      if (duplicate) {
        // Parents were copied, so recomputing gives the same value; copy
        // directly to keep the FD intact.
        values[c][row] = values[c][row - 1];
        continue;
      }
      uint64_t h = 0x4cf5ad432745937full;
      for (int p : col.parents) {
        if (p == c) throw std::invalid_argument("derived column depends on itself");
        if (p > c && spec.columns[p].kind == ColumnKind::kDerived) {
          throw std::invalid_argument("derived column depends on later derived column");
        }
        h = MixHash(h, static_cast<uint64_t>(values[p][row]));
      }
      values[c][row] = static_cast<int64_t>(h % static_cast<uint64_t>(col.domain_size));
    }
    // Null injection after the row is complete so derived columns read
    // pre-null parent values (nulls are dirt, not structure).
    for (int c = 0; c < m; ++c) {
      const ColumnSpec& col = spec.columns[c];
      if (col.null_rate > 0 && !duplicate && rng.next_bool(col.null_rate)) {
        nulls[c][row] = 1;
      }
    }
  }

  table.rows.assign(spec.rows, std::vector<std::string>(m));
  for (int row = 0; row < spec.rows; ++row) {
    for (int c = 0; c < m; ++c) {
      table.rows[row][c] =
          nulls[c][row] ? std::string() : "v" + std::to_string(values[c][row]);
    }
  }
  return table;
}

}  // namespace dhyfd
