#include "datagen/benchmark_data.h"

#include <stdexcept>

namespace dhyfd {

namespace {

// ---------------------------------------------------------------------------
// Recipe helpers.
// ---------------------------------------------------------------------------

void AddRandom(DatasetSpec& s, const std::string& name, int domain, double skew = 0,
               double null_rate = 0) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kRandom;
  c.domain_size = domain;
  c.skew = skew;
  c.null_rate = null_rate;
  s.columns.push_back(std::move(c));
}

void AddConstant(DatasetSpec& s, const std::string& name) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kConstant;
  s.columns.push_back(std::move(c));
}

void AddKey(DatasetSpec& s, const std::string& name) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kKey;
  s.columns.push_back(std::move(c));
}

void AddDerived(DatasetSpec& s, const std::string& name, std::vector<int> parents,
                int domain, double null_rate = 0) {
  ColumnSpec c;
  c.name = name;
  c.kind = ColumnKind::kDerived;
  c.domain_size = domain;
  c.null_rate = null_rate;
  c.parents = std::move(parents);
  s.columns.push_back(std::move(c));
}

// Fills up to `total` columns with random columns of cycling small domains;
// the workhorse for wide survey-style data sets (plista, flight, horse...).
void FillSmallDomains(DatasetSpec& s, const std::string& prefix, int count,
                      int min_domain, int max_domain, double null_rate) {
  for (int i = 0; i < count; ++i) {
    int domain = min_domain + (i * 7) % (max_domain - min_domain + 1);
    AddRandom(s, prefix + std::to_string(i), domain, /*skew=*/0, null_rate);
  }
}

// ---------------------------------------------------------------------------
// Per-data-set recipes. Shapes (columns, domain profile, null rate, planted
// FD structure) follow the originals as described in DESIGN.md.
// ---------------------------------------------------------------------------

DatasetSpec SpecIris(int rows) {
  DatasetSpec s{.name = "iris", .rows = rows, .seed = 101};
  AddRandom(s, "sepal_len", 35);
  AddRandom(s, "sepal_wid", 23);
  AddRandom(s, "petal_len", 43);
  AddRandom(s, "petal_wid", 22);
  AddDerived(s, "class", {2, 3}, 3);
  return s;
}

DatasetSpec SpecBalance(int rows) {
  DatasetSpec s{.name = "balance", .rows = rows, .seed = 102};
  AddRandom(s, "left_weight", 5);
  AddRandom(s, "left_dist", 5);
  AddRandom(s, "right_weight", 5);
  AddRandom(s, "right_dist", 5);
  AddDerived(s, "class", {0, 1, 2, 3}, 3);
  return s;
}

DatasetSpec SpecChess(int rows) {
  DatasetSpec s{.name = "chess", .rows = rows, .seed = 103};
  AddRandom(s, "wk_file", 8);
  AddRandom(s, "wk_rank", 8);
  AddRandom(s, "wr_file", 8);
  AddRandom(s, "wr_rank", 8);
  AddRandom(s, "bk_file", 8);
  AddRandom(s, "bk_rank", 8);
  AddDerived(s, "result", {0, 1, 2, 3, 4, 5}, 18);
  return s;
}

DatasetSpec SpecAbalone(int rows) {
  DatasetSpec s{.name = "abalone", .rows = rows, .seed = 104};
  AddRandom(s, "sex", 3);
  AddRandom(s, "length", rows / 30 + 40);
  AddRandom(s, "diameter", rows / 36 + 30);
  AddRandom(s, "height", rows / 80 + 20);
  AddRandom(s, "whole_w", rows / 2 + 100);
  AddRandom(s, "shucked_w", rows / 3 + 80);
  AddRandom(s, "viscera_w", rows / 5 + 60);
  AddRandom(s, "shell_w", rows / 4 + 70);
  AddRandom(s, "rings", 29);
  return s;
}

DatasetSpec SpecNursery(int rows) {
  DatasetSpec s{.name = "nursery", .rows = rows, .seed = 105};
  AddRandom(s, "parents", 3);
  AddRandom(s, "has_nurs", 5);
  AddRandom(s, "form", 4);
  AddRandom(s, "children", 4);
  AddRandom(s, "housing", 3);
  AddRandom(s, "finance", 2);
  AddRandom(s, "social", 3);
  AddRandom(s, "health", 3);
  AddDerived(s, "class", {0, 1, 2, 3, 4, 5, 6, 7}, 5);
  return s;
}

DatasetSpec SpecBreast(int rows) {
  DatasetSpec s{.name = "breast", .rows = rows, .seed = 106};
  s.near_duplicate_rate = 0.05;
  AddRandom(s, "id", rows - rows / 12);  // near key with a few repeats
  for (int i = 0; i < 9; ++i) {
    AddRandom(s, "f" + std::to_string(i), 10, 0.8, i == 5 ? 0.02 : 0.0);
  }
  AddDerived(s, "class", {2, 3, 4}, 2);
  return s;
}

DatasetSpec SpecBridges(int rows) {
  DatasetSpec s{.name = "bridges", .rows = rows, .seed = 107};
  s.near_duplicate_rate = 0.10;
  AddKey(s, "id");
  AddRandom(s, "river", 3);
  AddRandom(s, "location", 50, 0, 0.01);
  AddRandom(s, "erected", 30);
  AddRandom(s, "purpose", 4);
  AddRandom(s, "length", 30, 0, 0.2);
  AddRandom(s, "lanes", 4, 0, 0.1);
  AddRandom(s, "clear_g", 2, 0, 0.02);
  AddRandom(s, "t_or_d", 2, 0, 0.05);
  AddRandom(s, "material", 3, 0, 0.02);
  AddRandom(s, "span", 3, 0, 0.1);
  AddRandom(s, "rel_l", 3, 0, 0.04);
  AddRandom(s, "type", 7, 0, 0.02);
  return s;
}

DatasetSpec SpecEcho(int rows) {
  DatasetSpec s{.name = "echo", .rows = rows, .seed = 108};
  s.near_duplicate_rate = 0.05;
  AddRandom(s, "survival", 40, 0, 0.02);
  AddRandom(s, "still_alive", 2, 0, 0.01);
  AddRandom(s, "age", 30, 0, 0.04);
  AddRandom(s, "pe", 2, 0, 0.01);
  AddRandom(s, "fs", 60, 0, 0.06);
  AddRandom(s, "epss", 60, 0, 0.1);
  AddRandom(s, "lvdd", 50, 0, 0.08);
  AddRandom(s, "wm_score", 30, 0, 0.03);
  AddRandom(s, "wm_index", 30, 0, 0.01);
  AddRandom(s, "mult", 15, 0, 0.03);
  AddRandom(s, "name", 2);
  AddRandom(s, "group", 3, 0, 0.16);
  AddRandom(s, "alive_at_1", 2, 0, 0.4);
  return s;
}

DatasetSpec SpecAdult(int rows) {
  DatasetSpec s{.name = "adult", .rows = rows, .seed = 109};
  s.near_duplicate_rate = 0.03;
  AddRandom(s, "age", 74, 0.6);
  AddRandom(s, "workclass", 9, 1.0, 0.05);
  AddRandom(s, "fnlwgt", rows / 2 + 500);
  AddRandom(s, "education", 16, 0.8);
  AddDerived(s, "education_num", {3}, 16);  // education -> education_num
  AddRandom(s, "marital", 7, 0.7);
  AddRandom(s, "occupation", 15, 0.4, 0.05);
  AddRandom(s, "relationship", 6, 0.6);
  AddRandom(s, "race", 5, 1.2);
  AddRandom(s, "sex", 2);
  AddRandom(s, "cap_gain", 120, 2.0);
  AddRandom(s, "cap_loss", 99, 2.0);
  AddRandom(s, "hours", 96, 1.0);
  // Never mutated by near-duplicates: retains accidental FDs with this RHS,
  // landing the total near the paper's 78.
  s.columns.back().allow_mutation = false;
  AddRandom(s, "country", 42, 2.0, 0.02);
  return s;
}

DatasetSpec SpecLetter(int rows) {
  DatasetSpec s{.name = "letter", .rows = rows, .seed = 110};
  s.near_duplicate_rate = 0.04;
  for (int i = 0; i < 16; ++i) AddRandom(s, "f" + std::to_string(i), 16, 0.3);
  AddDerived(s, "class", {0, 3, 7, 12}, 26);
  return s;
}

DatasetSpec SpecNcvoter(int rows) {
  DatasetSpec s{.name = "ncvoter", .rows = rows, .seed = 111};
  s.duplicate_row_rate = 0.004;  // the odd duplicated voter (Table I)
  s.near_duplicate_rate = 0.01;
  AddRandom(s, "voter_id", rows - rows / 200);  // near-key, rare repeats
  AddRandom(s, "first_name", rows / 4 + 50, 0.8);
  AddRandom(s, "middle_name", rows / 3 + 50, 0.8, 0.12);
  AddRandom(s, "last_name", rows / 4 + 80, 0.8);
  AddRandom(s, "name_prefix", 4, 1.5, 0.97);
  AddRandom(s, "name_suffix", 6, 1.5, 0.93);
  AddRandom(s, "age", 80, 0.4);
  AddRandom(s, "gender", 2);
  AddRandom(s, "race", 7, 1.4);
  AddRandom(s, "ethnic", 3, 1.0);
  AddRandom(s, "street_address", rows - rows / 20);  // near-key (flatmates)
  AddRandom(s, "zip_code", rows / 12 + 20, 0.5);
  AddDerived(s, "city", {11}, rows / 25 + 10);   // zip -> city
  AddConstant(s, "state");                       // all voters from nc
  AddDerived(s, "area_code", {11}, rows / 40 + 8);
  AddRandom(s, "full_phone_num", rows - rows / 30, 0, 0.04);
  AddRandom(s, "register_date", rows / 3 + 100);
  AddRandom(s, "download_month", 3);
  AddDerived(s, "party", {6, 8}, 4);
  return s;
}

DatasetSpec SpecHepatitis(int rows) {
  DatasetSpec s{.name = "hepatitis", .rows = rows, .seed = 112};
  s.near_duplicate_rate = 0.30;
  AddRandom(s, "class", 2);
  AddRandom(s, "age", 50, 0.4);
  AddRandom(s, "sex", 2);
  for (int i = 0; i < 13; ++i) {
    AddRandom(s, "sym" + std::to_string(i), 2, 0, 0.04 + 0.01 * (i % 4));
    // Two protected columns carry the surviving accidental-FD mass,
    // landing the total near the paper's 8,250.
    if (i < 2) s.columns.back().allow_mutation = false;
  }
  AddRandom(s, "bilirubin", 30, 0, 0.04);
  AddRandom(s, "alk", 60, 0, 0.19);
  AddRandom(s, "sgot", 70, 0, 0.03);
  AddRandom(s, "albumin", 30, 0, 0.1);
  return s;
}

DatasetSpec SpecHorse(int rows) {
  DatasetSpec s{.name = "horse", .rows = rows, .seed = 113};
  s.near_duplicate_rate = 0.30;
  AddRandom(s, "surgery", 2, 0, 0.003);
  AddRandom(s, "age", 2);
  AddRandom(s, "hospital_id", rows - rows / 10);
  for (int i = 0; i < 22; ++i) {
    AddRandom(s, "c" + std::to_string(i), 3 + (i % 5), 0, 0.15 + 0.02 * (i % 5));
    if (i < 1) s.columns.back().allow_mutation = false;
  }
  AddRandom(s, "outcome", 3, 0, 0.02);
  s.columns.back().allow_mutation = false;
  AddRandom(s, "lesion_site", 60, 1.0, 0.0);
  AddRandom(s, "lesion_type", 30, 1.0, 0.0);
  AddRandom(s, "cp_data", 2);
  return s;
}

DatasetSpec SpecPlista(int rows) {
  DatasetSpec s{.name = "plista", .rows = rows, .seed = 114};
  s.near_duplicate_rate = 0.30;
  AddKey(s, "item_id");
  AddConstant(s, "team");
  FillSmallDomains(s, "p", 53, 2, 40, 0.12);
  // No protected columns: with 63 columns even one unprotected RHS explodes
  // combinatorially at this row scale; the analog keeps the planted FDs.
  AddRandom(s, "publisher", rows / 8 + 10, 1.2);
  AddDerived(s, "domain_id", {55}, rows / 10 + 8);
  AddRandom(s, "created_ts", rows - rows / 15);
  AddRandom(s, "updated_ts", rows - rows / 25);
  AddDerived(s, "category", {55, 2}, 30);
  FillSmallDomains(s, "q", 3, 2, 6, 0.3);
  return s;
}

DatasetSpec SpecFlight(int rows) {
  DatasetSpec s{.name = "flight", .rows = rows, .seed = 115};
  s.near_duplicate_rate = 0.35;
  AddKey(s, "flight_key");
  AddConstant(s, "year");
  AddRandom(s, "month", 12);
  AddRandom(s, "day", 31);
  AddRandom(s, "carrier", 14, 0.8);
  AddRandom(s, "tail_num", rows / 3 + 40, 0, 0.25);
  AddRandom(s, "origin", 60, 1.0);
  // NOTE: at 109 columns and laptop-scale rows, any derived column makes
  // the accidental-FD lattice intractable (every sibling-conditioned LHS
  // becomes minimal). The analog therefore keeps flight's width and null
  // profile but only constant/key planted structure; see DESIGN.md.
  AddRandom(s, "origin_city", 55, 1.0);
  AddRandom(s, "origin_state", 30, 1.0);
  AddRandom(s, "dest", 60, 1.0);
  AddRandom(s, "dest_city", 55, 1.0);
  AddRandom(s, "dest_state", 30, 1.0);
  // Wide tail of sparse operational columns, heavily null (the original
  // flight data set has 109 columns, most of them mostly missing).
  FillSmallDomains(s, "op", 89, 2, 25, 0.35);
  // No protected columns (see plista note).
  AddConstant(s, "source");
  AddRandom(s, "delay_code", 5, 1.5, 0.6);
  AddRandom(s, "cancelled", 2, 2.0);
  AddRandom(s, "diverted", 2, 2.0);
  AddRandom(s, "distance_bin", 12);
  AddRandom(s, "region_pair", 25, 1.0);
  AddRandom(s, "pad0", 6, 0, 0.5);
  AddRandom(s, "pad1", 8, 0, 0.45);
  return s;
}

DatasetSpec SpecFdReduced(int rows) {
  // Papenbrock's synthetic generator: every planted FD has a 3-attribute
  // LHS, which is why TANE shines on it (short-LHS lattice levels).
  DatasetSpec s{.name = "fd_reduced", .rows = rows, .seed = 116};
  for (int i = 0; i < 20; ++i) {
    AddRandom(s, "b" + std::to_string(i), rows / 25 + 17);
  }
  for (int i = 0; i < 10; ++i) {
    int p0 = (i * 3) % 20, p1 = (i * 5 + 1) % 20, p2 = (i * 7 + 2) % 20;
    AddDerived(s, "d" + std::to_string(i), {p0, p1, p2}, rows / 4 + 97);
  }
  return s;
}

DatasetSpec SpecWeather(int rows) {
  DatasetSpec s{.name = "weather", .rows = rows, .seed = 117};
  s.near_duplicate_rate = 0.01;
  AddRandom(s, "station", 450, 0.5);
  AddDerived(s, "state", {0}, 50);
  AddDerived(s, "lat_bin", {0}, 180);
  AddDerived(s, "lon_bin", {0}, 240);
  AddRandom(s, "date", 740);
  AddDerived(s, "month", {4}, 25);
  AddRandom(s, "temp_max", 130, 0.2);
  AddRandom(s, "temp_min", 120, 0.2);
  AddRandom(s, "precip", 300, 1.5);
  AddRandom(s, "snow", 120, 2.2);
  AddRandom(s, "wind_dir", 36);
  AddRandom(s, "wind_speed", 80, 0.7);
  AddRandom(s, "humidity", 100);
  AddRandom(s, "pressure", 220);
  AddRandom(s, "visibility", 40, 0.8);
  AddRandom(s, "cloud", 9);
  AddRandom(s, "events", 12, 1.4);
  AddDerived(s, "station_name", {0}, 449);
  return s;
}

DatasetSpec SpecDiabetic(int rows) {
  DatasetSpec s{.name = "diabetic", .rows = rows, .seed = 118};
  s.near_duplicate_rate = 0.12;
  AddKey(s, "encounter_id");
  AddRandom(s, "patient_id", rows / 2 + 100);
  AddRandom(s, "race", 6, 1.0, 0.02);
  AddRandom(s, "gender", 3, 0.5);
  AddRandom(s, "age_band", 10);
  AddRandom(s, "weight_band", 10, 0, 0.6);
  AddRandom(s, "admission_type", 8, 1.0);
  AddRandom(s, "discharge", 26, 1.3);
  AddRandom(s, "admission_src", 17, 1.2);
  AddRandom(s, "time_in_hosp", 14);
  AddRandom(s, "payer_code", 18, 1.0, 0.4);
  AddRandom(s, "specialty", 70, 1.5, 0.35);
  AddRandom(s, "num_lab", 120, 0.3);
  AddRandom(s, "num_proc", 7);
  AddRandom(s, "num_meds", 75, 0.5);
  AddRandom(s, "outpatient", 20, 2.0);
  AddRandom(s, "emergency", 20, 2.5);
  AddRandom(s, "inpatient", 15, 2.0);
  AddRandom(s, "diag_1", 700, 1.2, 0.01);
  AddDerived(s, "diag_2", {18}, 500, 0.02);  // comorbidity follows diag_1
  AddDerived(s, "diag_3", {18}, 450, 0.05);
  AddRandom(s, "num_diag", 16);
  for (int i = 0; i < 7; ++i) AddRandom(s, "med" + std::to_string(i), 4, 1.8);
  AddRandom(s, "readmitted", 3);
  return s;
}

DatasetSpec SpecPdbx(int rows) {
  // Very tall, very few FDs: mostly independent small-domain columns over
  // millions of rows, plus a handful of constants and one derived pair.
  DatasetSpec s{.name = "pdbx", .rows = rows, .seed = 119};
  s.near_duplicate_rate = 0.02;
  AddRandom(s, "entry_id", rows / 5 + 11);
  AddRandom(s, "atom_site", 28);
  s.columns.back().allow_mutation = false;
  AddRandom(s, "symbol", 90);
  AddDerived(s, "symbol_group", {2}, 18);
  AddRandom(s, "residue", 24);
  AddRandom(s, "chain", 36);
  AddRandom(s, "seq_id", 1200);
  AddRandom(s, "x_bin", 2000);
  AddRandom(s, "y_bin", 2000);
  AddRandom(s, "z_bin", 2000);
  AddConstant(s, "model_num");
  AddRandom(s, "occupancy", 60, 2.5);
  AddConstant(s, "format_ver");
  return s;
}

DatasetSpec SpecLineitem(int rows) {
  DatasetSpec s{.name = "lineitem", .rows = rows, .seed = 120};
  s.near_duplicate_rate = 0.01;
  AddRandom(s, "orderkey", rows / 4 + 10);
  AddRandom(s, "partkey", rows / 8 + 10);
  AddDerived(s, "suppkey", {1}, rows / 40 + 10);  // part -> its supplier
  AddRandom(s, "linenumber", 7);
  AddRandom(s, "quantity", 50);
  AddDerived(s, "extendedprice", {1, 4}, rows / 2 + 1000);
  AddRandom(s, "discount", 11);
  AddRandom(s, "tax", 9);
  AddRandom(s, "returnflag", 3);
  AddRandom(s, "linestatus", 2);
  AddRandom(s, "shipdate", 2500);
  AddDerived(s, "commitdate", {0}, 2400);
  AddDerived(s, "receiptdate", {10, 6}, 2500);
  AddRandom(s, "shipinstruct", 4);
  AddRandom(s, "shipmode", 7);
  AddRandom(s, "comment_len", 120);
  return s;
}

DatasetSpec SpecUniprot(int rows) {
  DatasetSpec s{.name = "uniprot", .rows = rows, .seed = 121};
  s.near_duplicate_rate = 0.05;
  AddKey(s, "entry");
  AddDerived(s, "entry_name", {0}, 1 << 24);  // bijective-ish with the key
  AddRandom(s, "status", 2);
  AddRandom(s, "organism", rows / 14 + 30, 1.0);
  AddDerived(s, "organism_id", {3}, rows / 14 + 29);
  AddDerived(s, "taxonomy", {6}, 400);  // coarse bin of length
  AddRandom(s, "length", 2000, 0.4);
  AddRandom(s, "mass_bin", 2200, 0.4);
  for (int i = 0; i < 16; ++i) {
    AddRandom(s, "anno" + std::to_string(i), 6 + (i * 5) % 40, 0.8,
              0.1 + 0.03 * (i % 5));
  }
  AddRandom(s, "created", 2600);
  AddRandom(s, "modified", 2600);
  AddRandom(s, "version", 120, 1.2);
  AddRandom(s, "fragment", 2, 2.0, 0.3);
  AddRandom(s, "precursor", 2, 2.0, 0.55);
  AddRandom(s, "evidence", 5, 1.0);
  return s;
}

DatasetSpec SpecChina(int rows) {
  DatasetSpec s{.name = "china", .rows = rows, .seed = 122};
  s.duplicate_row_rate = 0.12;  // heavy redundancy (41.65% in Table IV)
  s.near_duplicate_rate = 0.10;
  AddRandom(s, "province", 34, 0.8);
  AddDerived(s, "region", {0}, 7);
  AddRandom(s, "city", 340, 1.0, 0.01);
  AddDerived(s, "city_tier", {2}, 5);
  AddRandom(s, "year", 20);
  AddRandom(s, "indicator", 60, 0.6);
  AddDerived(s, "indicator_group", {5}, 12);
  AddRandom(s, "value_bin", 500, 0.5, 0.03);
  AddRandom(s, "unit", 9, 1.2);
  AddRandom(s, "source", 14, 1.2, 0.05);
  for (int i = 0; i < 10; ++i) {
    AddRandom(s, "x" + std::to_string(i), 4 + (i * 3) % 30, 0.6, 0.02 * (i % 3));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Catalog with the paper's reported numbers.
// ---------------------------------------------------------------------------

std::vector<BenchmarkInfo> BuildCatalog() {
  std::vector<BenchmarkInfo> cat;
  auto add = [&](BenchmarkInfo info) { cat.push_back(std::move(info)); };

  const double TL = kTimeLimit, NA = kNotAvail;

  add({.name = "iris", .paper_rows = 150, .default_rows = 150,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {150, 5, 4, 0.001, 0.002, 0.002, 0.002, 0.0001, 0.0001, 0.1, 0.67, 0.64},
       .t3 = {4, 16, 4, 16, 100, 100, 0},
       .t4 = {750, 31, 4.13}});
  add({.name = "balance", .paper_rows = 625, .default_rows = 625,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {625, 5, 1, 0.002, 0.031, 0.04, 0.024, 0.001, 0.0001, 0.1, 0.7, 0.69},
       .t3 = {1, 5, 1, 5, 100, 100, 0},
       .t4 = {3125, 0, 0}});
  add({.name = "chess", .paper_rows = 28056, .default_rows = 6000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {28056, 7, 1, 0.154, 50.192, 94.13, 47.942, 0.017, 0.017, 0.2, 12, 12},
       .t3 = {1, 7, 1, 7, 100, 100, 0},
       .t4 = {196392, 0, 0}});
  add({.name = "abalone", .paper_rows = 4177, .default_rows = 4177,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {4177, 9, 137, 0.029, 0.785, 2.794, 1.191, 0.03, 0.017, 0.2, 3, 3},
       .t3 = {137, 715, 41, 217, 30, 30, 0.001},
       .t4 = {37593, 67, 0.18}});
  add({.name = "nursery", .paper_rows = 12960, .default_rows = 6000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {12960, 9, 1, 0.241, 23.415, 26.205, 13.684, 0.011, 0.01, 0.5, 7, 5},
       .t3 = {1, 9, 1, 9, 100, 100, 0},
       .t4 = {116640, 0, 0}});
  add({.name = "breast", .paper_rows = 699, .default_rows = 699,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {699, 11, 46, 0.044, 0.127, 0.09, 0.048, 0.02, 0.009, 0.2, 1, 1},
       .t3 = {46, 214, 39, 184, 85, 86, 0},
       .t4 = {7689, 706, 9.18, 706, 9.18}});
  add({.name = "bridges", .paper_rows = 108, .default_rows = 108,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {108, 13, 142, 0.03, 0.011, 0.007, 0.005, 0.004, 0.003, 0.1, 0.7, 0.73},
       .t3 = {142, 669, 65, 337, 46, 50, 0.002},
       .t4 = {1404, 388, 28.13, 395, 28.13}});
  add({.name = "echo", .paper_rows = 132, .default_rows = 132,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {132, 13, 527, 0.01, 0.007, 0.009, 0.006, 0.003, 0.002, 0.1, 0.69, 0.76},
       .t3 = {527, 2322, 93, 392, 18, 17, 0.012},
       .t4 = {1716, 375, 21.85, 416, 24.24}});
  add({.name = "adult", .paper_rows = 48842, .default_rows = 8000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {48842, 14, 78, 22.491, 311.365, 278.591, 129.174, 0.279, 0.215, 1.1, 14, 14},
       .t3 = {78, 495, 42, 267, 54, 54, 0.001},
       .t4 = {683788, 75718, 11.07}});
  add({.name = "letter", .paper_rows = 20000, .default_rows = 6000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {20000, 17, 61, 208.67, 73.718, 130.414, 47.4, 6.96, 2.035, 3.4, 33, 29},
       .t3 = {61, 786, 61, 786, 100, 100, 0},
       .t4 = {340000, 6809, 2}});
  add({.name = "ncvoter", .paper_rows = 1000, .default_rows = 1000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {1000, 19, 758, 0.444, 0.384, 0.551, 0.216, 0.046, 0.029, 0.4, 3, 3},
       .t3 = {758, 3754, 185, 927, 24, 25, 0.023},
       .t4 = {19000, 2886, 15.19, 3659, 19.26}});
  add({.name = "hepatitis", .paper_rows = 155, .default_rows = 155,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {155, 20, 8250, 9.851, 0.532, 0.158, 0.153, 0.174, 0.189, 0.6, 9, 14},
       .t3 = {8250, 54821, 2204, 14718, 27, 27, 0.927},
       .t4 = {3100, 1588, 51.23, 1629, 52.55}});
  add({.name = "horse", .paper_rows = 368, .default_rows = 368,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {368, 29, 128727, 130.527, 4.985, 4.607, 3.334, 4.728, 2.595, 7.1, 123, 268},
       .t3 = {128727, 1045762, 34053, 267385, 26, 26, 81.85},
       .t4 = {10304, 3703, 35.94, 4854, 47.11}});
  add({.name = "plista", .paper_rows = 1000, .default_rows = 1000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {1000, 63, 178152, TL, 35.985, 17.945, 13.894, 19.203, 15.403, 21.7, 389, 2048},
       .t3 = {178152, 1397038, 22680, 166963, 13, 12, 276.35},
       .t4 = {63000, 27024, 42.9, 50047, 79.44}});
  add({.name = "flight", .paper_rows = 1000, .default_rows = 1000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {1000, 109, 982631, TL, 16.134, 21.28, 9.04, 37.064, 9.934, 53.4, 841, 2048},
       .t3 = {982631, 6106725, 83496, 520623, 8, 9, 19996},
       .t4 = {109000, 48297, 44.31, 100233, 91.96}});
  add({.name = "fd_reduced", .paper_rows = 250000, .default_rows = 10000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {250000, 30, 89571, 8.084, TL, TL, TL, 201.005, 158.94, 41.1, 170, 181},
       .t3 = {89571, 358238, 1550, 6203, 2, 2, 79.46},
       .t4 = {7500000, 2500000, 33.33}});
  add({.name = "weather", .paper_rows = 262920, .default_rows = 16000,
       .has_table2 = true, .has_table3 = true, .has_table4 = false,
       .t2 = {262920, 18, 918, TL, TL, TL, TL, 332.734, 49.839, NA, 140, 1024},
       .t3 = {918, 7219, 514, 4061, 56, 56, 0.015}});
  add({.name = "diabetic", .paper_rows = 101766, .default_rows = 6000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {101766, 30, 40195, TL, TL, TL, TL, 2864.84, 847.582, NA, 2253, 4301},
       .t3 = {40195, 464871, 32689, 378546, 81, 81, 9.14},
       .t4 = {3052980, 420607, 13.78, 474460, 15.54}});
  add({.name = "pdbx", .paper_rows = 17305799, .default_rows = 40000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {17305799, 13, 68, TL, TL, TL, TL, 95.893, 100.906, 240, 6348.8, 6451.2},
       .t3 = {68, 157, 19, 58, 28, 37, 0},
       .t4 = {224975387, 131743942, 58.56, 132441479, 58.87}});
  add({.name = "lineitem", .paper_rows = 6001215, .default_rows = 30000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {6001215, 16, 3984, TL, TL, TL, TL, 1352.87, 1047.44, 2340, 2662.4, 27648},
       .t3 = {3984, 24927, 679, 4241, 17, 17, 0.6},
       .t4 = {96019440, 11407131, 11.88}});
  add({.name = "uniprot", .paper_rows = 512000, .default_rows = 12000,
       .has_table2 = true, .has_table3 = true, .has_table4 = true,
       .t2 = {512000, 30, 3703, TL, TL, TL, TL, 184.573, 75.442, NA, 3481.6, 4608},
       .t3 = {3703, 23530, 1677, 11179, 45, 48, 0.104},
       .t4 = {15360030, 1288502, 8.39, 2556639, 16.64}});
  add({.name = "china", .paper_rows = 236628, .default_rows = 8000,
       .has_table2 = false, .has_table3 = false, .has_table4 = true,
       .t4 = {4732560, 1971104, 41.65, 2022994, 42.75}});
  return cat;
}

const std::vector<BenchmarkInfo>& Catalog() {
  static const std::vector<BenchmarkInfo>* cat =
      new std::vector<BenchmarkInfo>(BuildCatalog());
  return *cat;
}

}  // namespace

const std::vector<std::string>& BenchmarkNames() {
  static const std::vector<std::string>* names = [] {
    auto* v = new std::vector<std::string>();
    for (const BenchmarkInfo& info : Catalog()) v->push_back(info.name);
    return v;
  }();
  return *names;
}

const BenchmarkInfo* FindBenchmark(const std::string& name) {
  for (const BenchmarkInfo& info : Catalog()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

DatasetSpec MakeBenchmarkSpec(const std::string& name, int rows_override) {
  const BenchmarkInfo* info = FindBenchmark(name);
  if (info == nullptr) throw std::invalid_argument("unknown benchmark: " + name);
  int rows = rows_override > 0 ? rows_override : info->default_rows;
  if (name == "iris") return SpecIris(rows);
  if (name == "balance") return SpecBalance(rows);
  if (name == "chess") return SpecChess(rows);
  if (name == "abalone") return SpecAbalone(rows);
  if (name == "nursery") return SpecNursery(rows);
  if (name == "breast") return SpecBreast(rows);
  if (name == "bridges") return SpecBridges(rows);
  if (name == "echo") return SpecEcho(rows);
  if (name == "adult") return SpecAdult(rows);
  if (name == "letter") return SpecLetter(rows);
  if (name == "ncvoter") return SpecNcvoter(rows);
  if (name == "hepatitis") return SpecHepatitis(rows);
  if (name == "horse") return SpecHorse(rows);
  if (name == "plista") return SpecPlista(rows);
  if (name == "flight") return SpecFlight(rows);
  if (name == "fd_reduced") return SpecFdReduced(rows);
  if (name == "weather") return SpecWeather(rows);
  if (name == "diabetic") return SpecDiabetic(rows);
  if (name == "pdbx") return SpecPdbx(rows);
  if (name == "lineitem") return SpecLineitem(rows);
  if (name == "uniprot") return SpecUniprot(rows);
  if (name == "china") return SpecChina(rows);
  throw std::invalid_argument("benchmark without recipe: " + name);
}

RawTable GenerateBenchmark(const std::string& name, int rows_override) {
  return GenerateRawTable(MakeBenchmarkSpec(name, rows_override));
}

}  // namespace dhyfd
