#ifndef DHYFD_DATAGEN_UPDATE_STREAM_H_
#define DHYFD_DATAGEN_UPDATE_STREAM_H_

#include <cstdint>
#include <vector>

#include "datagen/generator.h"
#include "incr/update_batch.h"

namespace dhyfd {

/// Shape of a synthetic update workload against a live relation.
///
/// The generator materializes one large table from `base` (its planted FD
/// structure spans the whole stream, so inserts keep refuting and restoring
/// the same dependencies), serves the first `initial_rows` as the seed table
/// and the rest as the insert pool, and interleaves deletes against rows it
/// knows to be live — mirroring LiveRelation's sequential id assignment.
struct UpdateStreamSpec {
  DatasetSpec base;
  /// Rows in the initial table (base.rows is overridden to cover the pool).
  int initial_rows = 500;
  int num_batches = 20;
  /// Insert+delete operations per batch.
  int batch_size = 32;
  /// Expected fraction of a batch's operations that are deletes. Deletes are
  /// dropped (not re-rolled) when nothing is live, so early batches of a
  /// small relation may skew toward inserts.
  double delete_fraction = 0.3;
  /// 0 = uniform victim choice; > 0 Zipf-skews deletes toward recently
  /// inserted rows (hot tail), stressing insert-then-delete churn.
  double delete_skew = 0;
  uint64_t seed = 1;
};

struct UpdateStream {
  RawTable initial;
  std::vector<UpdateBatch> batches;

  int64_t total_inserts() const {
    int64_t n = 0;
    for (const UpdateBatch& b : batches) n += static_cast<int64_t>(b.inserts.size());
    return n;
  }
  int64_t total_deletes() const {
    int64_t n = 0;
    for (const UpdateBatch& b : batches) n += static_cast<int64_t>(b.deletes.size());
    return n;
  }
};

/// Deterministic in the spec contents. Every emitted delete id refers to a
/// row that is live when its batch is applied in order (initial rows get ids
/// 0..initial_rows-1, each insert the next sequential id), and no id is
/// deleted twice.
UpdateStream GenerateUpdateStream(const UpdateStreamSpec& spec);

}  // namespace dhyfd

#endif  // DHYFD_DATAGEN_UPDATE_STREAM_H_
