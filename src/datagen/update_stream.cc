#include "datagen/update_stream.h"

#include <utility>

#include "util/random.h"

namespace dhyfd {

UpdateStream GenerateUpdateStream(const UpdateStreamSpec& spec) {
  // One table covers seed + insert pool so derived/key columns stay coherent
  // across the stream; worst case every operation is an insert.
  DatasetSpec base = spec.base;
  base.rows = spec.initial_rows + spec.num_batches * spec.batch_size;
  RawTable pool = GenerateRawTable(base);

  UpdateStream stream;
  stream.initial.header = pool.header;
  stream.initial.rows.assign(pool.rows.begin(), pool.rows.begin() + spec.initial_rows);

  Random rng(spec.seed ^ 0x75d8a2f3c91e4b07ull);
  // Mirror LiveRelation's id assignment: initial rows 0..n-1, every insert
  // the next sequential id. `live` holds ids in insertion order so a skewed
  // draw from the back hits recent rows.
  std::vector<LiveRowId> live(spec.initial_rows);
  for (int i = 0; i < spec.initial_rows; ++i) live[i] = i;
  LiveRowId next_id = spec.initial_rows;
  size_t next_pool_row = static_cast<size_t>(spec.initial_rows);

  stream.batches.resize(spec.num_batches);
  for (UpdateBatch& batch : stream.batches) {
    for (int op = 0; op < spec.batch_size; ++op) {
      bool do_delete = rng.next_bool(spec.delete_fraction);
      if (do_delete && !live.empty()) {
        size_t pick;
        if (spec.delete_skew > 0) {
          // next_zipf piles mass on small ranks; rank 0 = newest insert.
          pick = live.size() - 1 - rng.next_zipf(live.size(), spec.delete_skew);
        } else {
          pick = rng.next_below(live.size());
        }
        batch.deletes.push_back(live[pick]);
        live[pick] = live.back();
        live.pop_back();
      } else if (!do_delete && next_pool_row < pool.rows.size()) {
        batch.inserts.push_back(std::move(pool.rows[next_pool_row]));
        ++next_pool_row;
        live.push_back(next_id++);
      }
      // A delete with nothing live, or an insert past the pool, is dropped.
    }
  }
  return stream;
}

}  // namespace dhyfd
