#ifndef DHYFD_DATAGEN_BENCHMARK_DATA_H_
#define DHYFD_DATAGEN_BENCHMARK_DATA_H_

#include <string>
#include <vector>

#include "datagen/generator.h"

namespace dhyfd {

/// Sentinels used in the paper's tables.
inline constexpr double kTimeLimit = -1;   // "TL": exceeded the 1 h limit
inline constexpr double kNotAvail = -2;    // "N/A"

/// One row of the paper's Table II (runtime under null = null, memory MB).
struct PaperTable2 {
  int rows = 0, cols = 0, fds = 0;
  double tane = kNotAvail, fdep = kNotAvail, fdep1 = kNotAvail, fdep2 = kNotAvail;
  double hyfd = kNotAvail, dhyfd = kNotAvail, old_best = kNotAvail;
  double hyfd_mb = kNotAvail, dhyfd_mb = kNotAvail;
};

/// One row of Table III (left-reduced vs canonical covers).
struct PaperTable3 {
  long long lr = 0, lr_occ = 0, can = 0, can_occ = 0;
  double pct_size = 0, pct_card = 0, seconds = 0;
};

/// One row of Table IV (data redundancy). red_plus0 < 0 when the data set is
/// complete and the paper reports only the null-free count.
struct PaperTable4 {
  long long values = 0, red = 0;
  double pct_red = 0;
  long long red_plus0 = -1;
  double pct_red_plus0 = -1;
};

/// Catalog entry: the synthetic analog's recipe plus every figure the paper
/// reports for the original data set, so benches can print
/// paper-vs-measured side by side.
struct BenchmarkInfo {
  std::string name;
  /// Paper row count (Table II); the generator may default to fewer rows so
  /// the whole suite finishes in minutes — `default_rows` is that scale.
  int paper_rows = 0;
  int default_rows = 0;
  bool has_table2 = false, has_table3 = false, has_table4 = false;
  PaperTable2 t2;
  PaperTable3 t3;
  PaperTable4 t4;
};

/// All catalog names, in the paper's Table II order (plus `china`, which
/// appears only in Table IV).
const std::vector<std::string>& BenchmarkNames();

/// Catalog lookup; returns nullptr for unknown names.
const BenchmarkInfo* FindBenchmark(const std::string& name);

/// Builds the generator spec for a data set's synthetic analog.
/// rows_override > 0 overrides the default (scaled) row count.
DatasetSpec MakeBenchmarkSpec(const std::string& name, int rows_override = 0);

/// Convenience: generate + return the raw table.
RawTable GenerateBenchmark(const std::string& name, int rows_override = 0);

}  // namespace dhyfd

#endif  // DHYFD_DATAGEN_BENCHMARK_DATA_H_
