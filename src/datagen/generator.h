#ifndef DHYFD_DATAGEN_GENERATOR_H_
#define DHYFD_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/csv.h"

namespace dhyfd {

/// Column roles for the synthetic generator.
enum class ColumnKind {
  /// Independent draw from a (possibly skewed) finite domain.
  kRandom,
  /// Same value in every row (plants the FD {} -> A).
  kConstant,
  /// Unique value per row (plants the key A -> R).
  kKey,
  /// Deterministic function of the `parents` columns (plants parents -> A).
  kDerived,
};

struct ColumnSpec {
  std::string name;
  ColumnKind kind = ColumnKind::kRandom;
  /// Distinct values for kRandom / kDerived.
  int domain_size = 16;
  /// Zipf-ish skew for kRandom (0 = uniform).
  double skew = 0;
  /// Fraction of cells replaced by a null marker after generation. Nulls on
  /// kDerived columns may break the planted FD — deliberate dirt.
  double null_rate = 0;
  /// For kDerived: indices of determining columns (must be earlier-indexed
  /// or non-derived; evaluation is in index order, so parents must not be
  /// derived from this column).
  std::vector<int> parents;
  /// If false, near-duplicate rows never mutate this column, so the FDs
  /// whose RHS is this column are not refuted by near-duplicates — a knob
  /// for keeping some accidental FD mass in an analog.
  bool allow_mutation = true;
};

/// A synthetic data set: the analog of one paper benchmark file.
struct DatasetSpec {
  std::string name;
  int rows = 1000;
  uint64_t seed = 42;
  std::vector<ColumnSpec> columns;
  /// With this probability a row duplicates the previous row on every
  /// non-key column (near-duplicate tuples, ncvoter-style), creating large
  /// agree sets and data redundancy.
  double duplicate_row_rate = 0;
  /// With this probability a row copies the previous row and redraws
  /// exactly ONE random column (never a parent of a derived column). Such a
  /// pair agrees on R minus that column, refuting every FD whose RHS is the
  /// mutated column — the mechanism that keeps real-world FD counts low
  /// even though the analog has far fewer rows than the original.
  double near_duplicate_rate = 0;

  int num_cols() const { return static_cast<int>(columns.size()); }
};

/// Generates the table; deterministic in (spec.seed, spec contents).
/// Derived cells are a hash of the parent cells modulo the domain, so the
/// planted FD parents -> column holds exactly (before null injection).
RawTable GenerateRawTable(const DatasetSpec& spec);

}  // namespace dhyfd

#endif  // DHYFD_DATAGEN_GENERATOR_H_
