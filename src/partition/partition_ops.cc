#include "partition/partition_ops.h"

#include <algorithm>

#include "obs/obs.h"

namespace dhyfd {

PartitionRefiner::PartitionRefiner(const Relation& r)
    : rel_(r), slots_(static_cast<size_t>(std::max<ValueId>(r.max_domain_size(), 1))) {}

void PartitionRefiner::refine_cluster(const std::vector<RowId>& cluster, AttrId a,
                                      std::vector<std::vector<RowId>>& out) {
  const std::vector<ValueId>& col = rel_.column(a);
  // Algorithm 5: drop each tuple into the slot of its A-value, remembering
  // which slots were touched so we can sweep and reset only those.
  for (RowId row : cluster) {
    ValueId v = col[row];
    if (slots_[v].empty()) touched_.push_back(v);
    slots_[v].push_back(row);
  }
  for (ValueId v : touched_) {
    if (slots_[v].size() >= 2) {
      out.emplace_back(std::move(slots_[v]));
      slots_[v] = {};
    } else {
      slots_[v].clear();
    }
  }
  touched_.clear();
}

StrippedPartition PartitionRefiner::refine(const StrippedPartition& p, AttrId a) {
  StrippedPartition out;
  out.clusters.reserve(p.clusters.size());
  for (const auto& cluster : p.clusters) refine_cluster(cluster, a, out.clusters);
  return out;
}

StrippedPartition PartitionRefiner::refine_all(const StrippedPartition& p,
                                               const AttributeSet& attrs) {
  StrippedPartition cur = p;
  attrs.for_each([&](AttrId a) { cur = refine(cur, a); });
  return cur;
}

StrippedPartition IntersectPartitions(const StrippedPartition& a,
                                      const StrippedPartition& b, RowId num_rows) {
  ObsAdd("partition.intersections");
  // Standard TANE product: probe rows of b's clusters against a's cluster
  // ids. Rows outside a's clusters are singletons in pi_a and stay stripped.
  std::vector<int32_t> probe(num_rows, -1);
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    for (RowId row : a.clusters[i]) probe[row] = static_cast<int32_t>(i);
  }
  StrippedPartition out;
  std::vector<std::vector<RowId>> groups(a.clusters.size());
  std::vector<int32_t> touched;
  for (const auto& cluster : b.clusters) {
    for (RowId row : cluster) {
      int32_t g = probe[row];
      if (g < 0) continue;
      if (groups[g].empty()) touched.push_back(g);
      groups[g].push_back(row);
    }
    for (int32_t g : touched) {
      if (groups[g].size() >= 2) {
        out.clusters.emplace_back(std::move(groups[g]));
        groups[g] = {};
      } else {
        groups[g].clear();
      }
    }
    touched.clear();
  }
  return out;
}

bool PartitionImpliesFd(const Relation& r, const StrippedPartition& lhs_partition,
                        AttrId rhs) {
  const std::vector<ValueId>& col = r.column(rhs);
  for (const auto& cluster : lhs_partition.clusters) {
    ValueId v = col[cluster.front()];
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (col[cluster[i]] != v) return false;
    }
  }
  return true;
}

}  // namespace dhyfd
