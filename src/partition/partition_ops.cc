#include "partition/partition_ops.h"

#include <algorithm>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"

namespace dhyfd {

namespace {
// Marks a scratch cursor whose value-class was stripped (size < 2).
constexpr uint32_t kStripped = UINT32_MAX;
}  // namespace

PartitionRefiner::PartitionRefiner(const Relation& r)
    : rel_(r),
      counts_(static_cast<size_t>(std::max<ValueId>(r.max_domain_size(), 1)), 0) {}

void PartitionRefiner::refine_cluster(ClusterView cluster, AttrId a,
                                      StrippedPartition& out) {
  const std::vector<ValueId>& col = rel_.column(a);
  // Algorithm 5, flattened: count each A-value's occurrences in the class,
  // lay the surviving sub-classes out contiguously in the output arena,
  // then place each row at its sub-class cursor. Two passes, no per-class
  // vectors; only touched counters are reset afterwards.
  for (RowId row : cluster) {
    ValueId v = col[row];
    if (counts_[v] == 0) touched_.push_back(v);
    ++counts_[v];
  }
  uint32_t cursor = static_cast<uint32_t>(out.rows_.size());
  size_t kept = 0;
  for (ValueId v : touched_) {
    if (counts_[v] >= 2) kept += counts_[v];
  }
  if (kept > 0) {
    out.rows_.resize(out.rows_.size() + kept);
    if (out.offsets_.empty()) out.offsets_.push_back(0);
    for (ValueId v : touched_) {
      if (counts_[v] >= 2) {
        uint32_t begin = cursor;
        cursor += counts_[v];
        counts_[v] = begin;
        out.offsets_.push_back(cursor);
      } else {
        counts_[v] = kStripped;
      }
    }
    for (RowId row : cluster) {
      uint32_t& cur = counts_[col[row]];
      if (cur != kStripped) out.rows_[cur++] = row;
    }
  }
  for (ValueId v : touched_) counts_[v] = 0;
  touched_.clear();
}

void PartitionRefiner::refine_into(const StrippedPartition& p, AttrId a,
                                   StrippedPartition& out) {
  size_t cap_before = out.rows_.capacity();
  out.clear();
  out.reserve(static_cast<size_t>(p.support()), static_cast<size_t>(p.size()));
  const size_t n = static_cast<size_t>(p.size());
  for (size_t i = 0; i < n; ++i) refine_cluster(p.cluster(i), a, out);
  if (out.rows_.capacity() == cap_before) {
    ObsAdd(kObsPartitionArenaReuses);
  } else {
    ObsAdd(kObsPartitionArenaGrowths);
  }
}

void PartitionRefiner::refine_inplace(StrippedPartition& p, AttrId a) {
  refine_into(p, a, buffer_);
  p.swap(buffer_);
}

StrippedPartition PartitionRefiner::refine(const StrippedPartition& p, AttrId a) {
  StrippedPartition out;
  refine_into(p, a, out);
  return out;
}

StrippedPartition PartitionRefiner::refine_all(const StrippedPartition& p,
                                               const AttributeSet& attrs) {
  StrippedPartition cur = p;
  attrs.for_each([&](AttrId a) { refine_inplace(cur, a); });
  return cur;
}

PartitionIntersector::PartitionIntersector(RowId num_rows)
    : probe_(static_cast<size_t>(std::max<RowId>(num_rows, 0)), 0),
      stamp_(static_cast<size_t>(std::max<RowId>(num_rows, 0)), 0) {}

void PartitionIntersector::intersect(const StrippedPartition& a,
                                     const StrippedPartition& b,
                                     StrippedPartition& out) {
  ObsAdd(kObsPartitionIntersections);
  size_t cap_before = out.rows_.capacity();
  out.clear();
  if (++epoch_ == 0) {
    // Stamp wrap-around: invalidate everything once per 2^32 calls.
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
  // Standard TANE product: probe rows of b's classes against a's class ids.
  // Rows outside a's classes are singletons in pi_a and stay stripped.
  const size_t na = static_cast<size_t>(a.size());
  if (counts_.size() < na) counts_.resize(na, 0);
  for (size_t i = 0; i < na; ++i) {
    for (RowId row : a.cluster(i)) {
      probe_[row] = static_cast<uint32_t>(i);
      stamp_[row] = epoch_;
    }
  }
  const size_t nb = static_cast<size_t>(b.size());
  for (size_t j = 0; j < nb; ++j) {
    ClusterView cluster = b.cluster(j);
    // Same two-pass counting split as the refiner, keyed by a-class id.
    for (RowId row : cluster) {
      if (stamp_[row] != epoch_) continue;
      uint32_t g = probe_[row];
      if (counts_[g] == 0) touched_.push_back(g);
      ++counts_[g];
    }
    uint32_t cursor = static_cast<uint32_t>(out.rows_.size());
    size_t kept = 0;
    for (uint32_t g : touched_) {
      if (counts_[g] >= 2) kept += counts_[g];
    }
    if (kept > 0) {
      out.rows_.resize(out.rows_.size() + kept);
      if (out.offsets_.empty()) out.offsets_.push_back(0);
      for (uint32_t g : touched_) {
        if (counts_[g] >= 2) {
          uint32_t begin = cursor;
          cursor += counts_[g];
          counts_[g] = begin;
          out.offsets_.push_back(cursor);
        } else {
          counts_[g] = kStripped;
        }
      }
      for (RowId row : cluster) {
        if (stamp_[row] != epoch_) continue;
        uint32_t& cur = counts_[probe_[row]];
        if (cur != kStripped) out.rows_[cur++] = row;
      }
    }
    for (uint32_t g : touched_) counts_[g] = 0;
    touched_.clear();
  }
  if (out.rows_.capacity() == cap_before) {
    ObsAdd(kObsPartitionArenaReuses);
  } else {
    ObsAdd(kObsPartitionArenaGrowths);
  }
}

StrippedPartition IntersectPartitions(const StrippedPartition& a,
                                      const StrippedPartition& b, RowId num_rows) {
  PartitionIntersector intersector(num_rows);
  StrippedPartition out;
  intersector.intersect(a, b, out);
  return out;
}

ApproxErrorCalculator::ApproxErrorCalculator(const Relation& r)
    : rel_(r),
      counts_(static_cast<size_t>(std::max<ValueId>(r.max_domain_size(), 1)), 0) {}

int64_t ApproxErrorCalculator::removals(const StrippedPartition& lhs_partition,
                                        AttrId rhs) {
  const std::vector<ValueId>& col = rel_.column(rhs);
  int64_t total = 0;
  for (ClusterView cluster : lhs_partition.clusters()) {
    uint32_t max_group = 0;
    for (RowId row : cluster) {
      ValueId v = col[row];
      if (counts_[v] == 0) touched_.push_back(v);
      if (++counts_[v] > max_group) max_group = counts_[v];
    }
    total += static_cast<int64_t>(cluster.size()) - max_group;
    for (ValueId v : touched_) counts_[v] = 0;
    touched_.clear();
  }
  return total;
}

int64_t ApproxFdRemovals(const Relation& r, const StrippedPartition& lhs_partition,
                         AttrId rhs) {
  ApproxErrorCalculator calc(r);
  return calc.removals(lhs_partition, rhs);
}

int64_t ApproxRemovalBudget(double epsilon, RowId num_rows) {
  if (epsilon <= 0 || num_rows <= 0) return 0;
  return static_cast<int64_t>(epsilon * static_cast<double>(num_rows) + 1e-9);
}

bool PartitionImpliesFd(const Relation& r, const StrippedPartition& lhs_partition,
                        AttrId rhs) {
  const std::vector<ValueId>& col = r.column(rhs);
  for (ClusterView cluster : lhs_partition.clusters()) {
    ValueId v = col[cluster.front()];
    for (size_t i = 1; i < cluster.size(); ++i) {
      if (col[cluster[i]] != v) return false;
    }
  }
  return true;
}

}  // namespace dhyfd
