#ifndef DHYFD_PARTITION_PARTITION_OPS_H_
#define DHYFD_PARTITION_PARTITION_OPS_H_

#include <vector>

#include "partition/stripped_partition.h"

namespace dhyfd {

/// Refines stripped partitions one attribute at a time (paper Algorithm 5).
///
/// The refiner owns the value-indexed scratch array (`sets_array` in the
/// paper) sized to the relation's largest active domain, plus the list of
/// touched positions so only dirtied slots are reset between calls. Reusing
/// one refiner across refinements is what makes dynamic partition
/// maintenance affordable.
class PartitionRefiner {
 public:
  explicit PartitionRefiner(const Relation& r);

  PartitionRefiner(const PartitionRefiner&) = delete;
  PartitionRefiner& operator=(const PartitionRefiner&) = delete;

  /// Splits one equivalence class by attribute `a`, appending the resulting
  /// classes of size >= 2 to `out`. This is the single-cluster form that
  /// lets Algorithm 4 abort validation early.
  void refine_cluster(const std::vector<RowId>& cluster, AttrId a,
                      std::vector<std::vector<RowId>>& out);

  /// Refines a whole stripped partition: pi_X -> pi_{XA}.
  StrippedPartition refine(const StrippedPartition& p, AttrId a);

  /// Refines by several attributes in ascending order.
  StrippedPartition refine_all(const StrippedPartition& p, const AttributeSet& attrs);

  const Relation& relation() const { return rel_; }

 private:
  const Relation& rel_;
  // slot per ValueId; vectors keep their capacity across calls.
  std::vector<std::vector<RowId>> slots_;
  std::vector<ValueId> touched_;
};

/// TANE-style product pi_X * pi_Y via a row-indexed probe table. Used by the
/// TANE baseline to build level k+1 partitions from two prefix blocks.
StrippedPartition IntersectPartitions(const StrippedPartition& a,
                                      const StrippedPartition& b, RowId num_rows);

/// True if pi_lhs refines to the same error when the RHS attribute is added,
/// i.e., the FD lhs -> rhs holds (TANE's validity criterion).
bool PartitionImpliesFd(const Relation& r, const StrippedPartition& lhs_partition,
                        AttrId rhs);

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_PARTITION_OPS_H_
