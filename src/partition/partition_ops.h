#ifndef DHYFD_PARTITION_PARTITION_OPS_H_
#define DHYFD_PARTITION_PARTITION_OPS_H_

#include <cstdint>
#include <vector>

#include "partition/stripped_partition.h"

namespace dhyfd {

/// Refines stripped partitions one attribute at a time (paper Algorithm 5).
///
/// The refiner owns the value-indexed scratch counters (`sets_array` in the
/// paper) sized to the relation's largest active domain, plus the list of
/// touched values so only dirtied slots are reset between calls, plus a
/// reusable double-buffer arena so a refinement chain pi_X -> pi_XA -> ...
/// allocates nothing once the arenas reach steady-state capacity. Reusing
/// one refiner across refinements is what makes dynamic partition
/// maintenance affordable.
class PartitionRefiner {
 public:
  explicit PartitionRefiner(const Relation& r);

  PartitionRefiner(const PartitionRefiner&) = delete;
  PartitionRefiner& operator=(const PartitionRefiner&) = delete;

  /// Splits one equivalence class by attribute `a`, appending the resulting
  /// classes of size >= 2 to `out`. This is the single-cluster form that
  /// lets Algorithm 4 abort validation early. `cluster` must not alias
  /// `out`'s arena (pass views over a different partition).
  void refine_cluster(ClusterView cluster, AttrId a, StrippedPartition& out);

  /// Refines a whole stripped partition into `out` (cleared first; its
  /// arena capacity is reused). `out` must not alias `p`.
  void refine_into(const StrippedPartition& p, AttrId a, StrippedPartition& out);

  /// Refines pi_X -> pi_{XA} in place via the internal double buffer.
  void refine_inplace(StrippedPartition& p, AttrId a);

  /// Refines a whole stripped partition: pi_X -> pi_{XA}.
  StrippedPartition refine(const StrippedPartition& p, AttrId a);

  /// Refines by several attributes in ascending order.
  StrippedPartition refine_all(const StrippedPartition& p, const AttributeSet& attrs);

  const Relation& relation() const { return rel_; }

 private:
  const Relation& rel_;
  // Per-ValueId occurrence counter, then write cursor, for the two-pass
  // counting split; only `touched_` entries are live between passes.
  std::vector<uint32_t> counts_;
  std::vector<ValueId> touched_;
  // Double buffer backing refine_inplace / refine_all.
  StrippedPartition buffer_;
};

/// TANE-style product pi_X * pi_Y via a row-indexed probe table (paper's
/// STRIPPED_PRODUCT). The probe table and per-class counters persist across
/// calls — epoch-stamped, so no O(|r|) reset between intersections — which
/// is what makes TANE's level construction allocation-free in steady state.
class PartitionIntersector {
 public:
  explicit PartitionIntersector(RowId num_rows);

  PartitionIntersector(const PartitionIntersector&) = delete;
  PartitionIntersector& operator=(const PartitionIntersector&) = delete;

  /// out = a * b. `out` is cleared first and its arena capacity reused; it
  /// must alias neither input.
  void intersect(const StrippedPartition& a, const StrippedPartition& b,
                 StrippedPartition& out);

 private:
  // probe_[row] = index of row's class in `a`, valid iff stamp_[row] == epoch_.
  std::vector<uint32_t> probe_;
  std::vector<uint32_t> stamp_;
  uint32_t epoch_ = 0;
  // Per-a-class counter / write cursor within one b-class (touched-reset).
  std::vector<uint32_t> counts_;
  std::vector<uint32_t> touched_;
};

/// One-shot product; convenience for tests and callers without a persistent
/// intersector.
StrippedPartition IntersectPartitions(const StrippedPartition& a,
                                      const StrippedPartition& b, RowId num_rows);

/// The g3-style error numerator for an approximate FD X -> A: the minimum
/// number of tuples to remove from r so X -> A holds exactly. Computed from
/// pi_X alone (singleton X-classes contribute nothing): each class pays its
/// size minus the size of its largest single-A-value group.
///
/// The count is anti-monotone in X — refining the LHS partition splits
/// classes, and the per-class maxima of the parts sum to at least the
/// parent's maximum — so lattice pruning that relies on "supersets of a
/// valid LHS stay valid" remains sound under a removal budget, and a budget
/// of 0 coincides exactly with the exact-FD test (PartitionImpliesFd).
class ApproxErrorCalculator {
 public:
  explicit ApproxErrorCalculator(const Relation& r);

  ApproxErrorCalculator(const ApproxErrorCalculator&) = delete;
  ApproxErrorCalculator& operator=(const ApproxErrorCalculator&) = delete;

  /// Removal count for lhs_partition -> rhs. O(||pi_X||) with touched-only
  /// counter resets, like the refiner's counting split.
  int64_t removals(const StrippedPartition& lhs_partition, AttrId rhs);

 private:
  const Relation& rel_;
  std::vector<uint32_t> counts_;
  std::vector<ValueId> touched_;
};

/// One-shot removal count; convenience for tests and cold paths.
int64_t ApproxFdRemovals(const Relation& r, const StrippedPartition& lhs_partition,
                         AttrId rhs);

/// Integer removal budget for an error threshold: e(X -> A) <= epsilon iff
/// removals <= floor(epsilon * |r|). The small bias absorbs representation
/// error so thresholds like 0.1 on 10-row inputs admit exactly 1 removal.
int64_t ApproxRemovalBudget(double epsilon, RowId num_rows);

/// True if pi_lhs refines to the same error when the RHS attribute is added,
/// i.e., the FD lhs -> rhs holds (TANE's validity criterion).
bool PartitionImpliesFd(const Relation& r, const StrippedPartition& lhs_partition,
                        AttrId rhs);

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_PARTITION_OPS_H_
