#ifndef DHYFD_PARTITION_STRIPPED_PARTITION_H_
#define DHYFD_PARTITION_STRIPPED_PARTITION_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace dhyfd {

/// A view over one equivalence class: the row ids of the class, in the
/// order the builder emitted them (ascending for attribute partitions).
using ClusterView = std::span<const RowId>;

/// A stripped partition pi_X(r): the X-equivalence classes of r with at
/// least two tuples (singleton classes are "stripped"; paper Section III).
///
/// Flat CSR layout: all cluster rows live in one contiguous `rows` arena;
/// cluster i is rows[offsets[i], offsets[i+1]). Compared to the former
/// vector-of-vectors this is one allocation instead of one per class, the
/// refinement/intersection kernels stream through it linearly, and
/// `support()`/`size()`/`error()` are O(1) reads of the array bounds.
class StrippedPartition {
 public:
  StrippedPartition() = default;

  /// |pi_X|: the number of equivalence classes (cardinality). O(1).
  int64_t size() const {
    return offsets_.empty() ? 0 : static_cast<int64_t>(offsets_.size()) - 1;
  }

  /// ||pi_X||: the total number of tuples across classes (support). O(1):
  /// every arena row belongs to exactly one class.
  int64_t support() const { return static_cast<int64_t>(rows_.size()); }

  /// TANE's error measure e(X) = ||pi_X|| - |pi_X|. X is a superkey iff 0.
  int64_t error() const { return support() - size(); }

  bool empty() const { return rows_.empty(); }

  /// The i-th equivalence class.
  ClusterView cluster(size_t i) const {
    return ClusterView(rows_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// Mutable view of the i-th class; used for in-place row reordering
  /// (normalize, the sampler's sorted neighborhoods).
  std::span<RowId> mutable_cluster(size_t i) {
    return std::span<RowId>(rows_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]);
  }

  /// Every clustered row in one flat span. Consumers that only need "rows
  /// with an LHS witness" (redundancy counting) can skip the class bounds.
  ClusterView row_arena() const { return ClusterView(rows_.data(), rows_.size()); }

  /// Iteration over classes as ClusterViews: `for (ClusterView c : p.clusters())`.
  class ClusterIterator {
   public:
    using value_type = ClusterView;
    using difference_type = std::ptrdiff_t;

    ClusterIterator(const StrippedPartition* p, size_t i) : p_(p), i_(i) {}
    ClusterView operator*() const { return p_->cluster(i_); }
    ClusterIterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator!=(const ClusterIterator& o) const { return i_ != o.i_; }
    bool operator==(const ClusterIterator& o) const { return i_ == o.i_; }

   private:
    const StrippedPartition* p_;
    size_t i_;
  };
  struct ClusterRange {
    const StrippedPartition* p;
    ClusterIterator begin() const { return ClusterIterator(p, 0); }
    ClusterIterator end() const {
      return ClusterIterator(p, static_cast<size_t>(p->size()));
    }
  };
  ClusterRange clusters() const { return ClusterRange{this}; }

  /// Drops all classes but keeps the arena capacity: the double-buffer
  /// refiner and the intersector reuse cleared partitions as output arenas.
  void clear() {
    rows_.clear();
    offsets_.clear();
  }

  void reserve(size_t rows, size_t num_clusters) {
    rows_.reserve(rows);
    offsets_.reserve(num_clusters + 1);
  }

  /// Appends one class (copying its rows into the arena). The caller must
  /// only pass classes with >= 2 rows — singletons are stripped by contract.
  void add_cluster(ClusterView cluster_rows) {
    if (offsets_.empty()) offsets_.push_back(0);
    rows_.insert(rows_.end(), cluster_rows.begin(), cluster_rows.end());
    offsets_.push_back(static_cast<uint32_t>(rows_.size()));
  }

  /// Streaming build: push rows, then seal them into a class. rollback
  /// drops the pending rows instead (how builders strip singletons).
  void append_row(RowId row) { rows_.push_back(row); }
  size_t pending_rows() const {
    return rows_.size() - (offsets_.empty() ? 0 : offsets_.back());
  }
  void commit_cluster() {
    if (offsets_.empty()) offsets_.push_back(0);
    offsets_.push_back(static_cast<uint32_t>(rows_.size()));
  }
  void rollback_cluster() {
    rows_.resize(offsets_.empty() ? 0 : offsets_.back());
  }

  /// pi_{} for a relation of `num_rows` rows: one class holding every tuple
  /// (no class at all if |r| < 2, since singletons are stripped).
  static StrippedPartition whole(RowId num_rows);

  /// True arena footprint in bytes; feeds the memory accounting that backs
  /// the paper's Table II / Figure 7 measurements. Exact for the CSR layout:
  /// the arena and offset capacities are the only heap blocks.
  size_t memory_bytes() const {
    return sizeof(StrippedPartition) + rows_.capacity() * sizeof(RowId) +
           offsets_.capacity() * sizeof(uint32_t);
  }

  /// Canonical form: sorts rows within clusters and clusters by first row.
  /// Only used by tests to compare partitions for equality.
  void normalize();

  std::string to_string() const;

  void swap(StrippedPartition& o) {
    rows_.swap(o.rows_);
    offsets_.swap(o.offsets_);
  }

 private:
  friend class PartitionRefiner;
  friend class PartitionIntersector;
  friend StrippedPartition BuildAttributePartition(const Relation& r, AttrId attr);

  /// Concatenated class rows (the arena).
  std::vector<RowId> rows_;
  /// Class boundaries: size() + 1 entries when non-empty, offsets_[0] == 0.
  std::vector<uint32_t> offsets_;
};

/// Builds pi_A(r) for a single attribute.
StrippedPartition BuildAttributePartition(const Relation& r, AttrId attr);

/// Builds pi_X(r) for an attribute set by iterated refinement. Convenience
/// for tests, ranking, and cover checking; the discovery algorithms use
/// PartitionRefiner / intersection directly.
StrippedPartition BuildPartition(const Relation& r, const AttributeSet& x);

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_STRIPPED_PARTITION_H_
