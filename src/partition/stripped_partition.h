#ifndef DHYFD_PARTITION_STRIPPED_PARTITION_H_
#define DHYFD_PARTITION_STRIPPED_PARTITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relation/relation.h"

namespace dhyfd {

/// A stripped partition pi_X(r): the X-equivalence classes of r with at
/// least two tuples (singleton classes are "stripped"; paper Section III).
struct StrippedPartition {
  /// Equivalence classes; each holds the row ids of one class, ascending.
  std::vector<std::vector<RowId>> clusters;

  /// |pi_X|: the number of equivalence classes (cardinality).
  int64_t size() const { return static_cast<int64_t>(clusters.size()); }

  /// ||pi_X||: the total number of tuples across classes (support).
  int64_t support() const {
    int64_t s = 0;
    for (const auto& c : clusters) s += static_cast<int64_t>(c.size());
    return s;
  }

  /// TANE's error measure e(X) = ||pi_X|| - |pi_X|. X is a superkey iff 0.
  int64_t error() const { return support() - size(); }

  bool empty() const { return clusters.empty(); }

  /// Approximate heap footprint in bytes; feeds the memory accounting that
  /// backs the paper's Table II / Figure 7 measurements.
  size_t memory_bytes() const;

  /// Canonical form: sorts rows within clusters and clusters by first row.
  /// Only used by tests to compare partitions for equality.
  void normalize();

  std::string to_string() const;
};

/// Builds pi_A(r) for a single attribute.
StrippedPartition BuildAttributePartition(const Relation& r, AttrId attr);

/// Builds pi_X(r) for an attribute set by iterated refinement. Convenience
/// for tests, ranking, and cover checking; the discovery algorithms use
/// PartitionRefiner / intersection directly.
StrippedPartition BuildPartition(const Relation& r, const AttributeSet& x);

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_STRIPPED_PARTITION_H_
