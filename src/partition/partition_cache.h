#ifndef DHYFD_PARTITION_PARTITION_CACHE_H_
#define DHYFD_PARTITION_PARTITION_CACHE_H_

#include <cstddef>
#include <list>
#include <unordered_map>

#include "partition/partition_ops.h"
#include "partition/stripped_partition.h"

namespace dhyfd {

/// Lazily computed, cached stripped partitions keyed by attribute set.
///
/// pi_X is built by refining along the sorted-prefix chain of X (each
/// prefix is cached too), so repeated lattice probes — the access pattern
/// of DFD-style searches — share work. Entries are tracked LRU with
/// byte-accurate accounting (the CSR arena footprint of every resident
/// partition); get() evicts the least recently used partitions until the
/// cache fits both the entry and byte budgets.
class PartitionCache {
 public:
  /// Default byte budget: enough for dense lattice sweeps on the bench
  /// datasets, small enough to bound service-side memory per job.
  static constexpr size_t kDefaultMaxBytes = size_t{256} << 20;

  explicit PartitionCache(const Relation& r, size_t max_entries = 8192,
                          size_t max_bytes = kDefaultMaxBytes);

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// pi_X; X must be non-empty. The reference is valid until the next get()
  /// (which may evict).
  const StrippedPartition& get(const AttributeSet& x);

  /// True if X -> a holds, validated against pi_X.
  bool implies(const AttributeSet& x, AttrId a);

  int64_t partitions_built() const { return built_; }
  int64_t evictions() const { return evictions_; }
  size_t size() const { return cache_.size(); }

  /// Bytes held by the resident partitions (their exact arena footprint).
  size_t memory_bytes() const { return bytes_; }
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    StrippedPartition partition;
    std::list<AttributeSet>::iterator lru_it;
    size_t bytes = 0;
  };

  void touch(Entry& e);
  void evict_until_fits();

  const Relation& rel_;
  PartitionRefiner refiner_;
  size_t max_entries_;
  size_t max_bytes_;
  std::unordered_map<AttributeSet, Entry, AttributeSetHash> cache_;
  // Front = most recently used.
  std::list<AttributeSet> lru_;
  size_t bytes_ = 0;
  int64_t built_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_PARTITION_CACHE_H_
