#ifndef DHYFD_PARTITION_PARTITION_CACHE_H_
#define DHYFD_PARTITION_PARTITION_CACHE_H_

#include <unordered_map>

#include "partition/partition_ops.h"
#include "partition/stripped_partition.h"

namespace dhyfd {

/// Lazily computed, cached stripped partitions keyed by attribute set.
///
/// pi_X is built by refining along the sorted-prefix chain of X (each
/// prefix is cached too), so repeated lattice probes — the access pattern
/// of DFD-style searches — share work. The cache clears itself when it
/// exceeds `max_entries` partitions.
class PartitionCache {
 public:
  explicit PartitionCache(const Relation& r, size_t max_entries = 8192);

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// pi_X; X must be non-empty. The reference is valid until the next get()
  /// (which may evict).
  const StrippedPartition& get(const AttributeSet& x);

  /// True if X -> a holds, validated against pi_X.
  bool implies(const AttributeSet& x, AttrId a);

  int64_t partitions_built() const { return built_; }
  size_t size() const { return cache_.size(); }

 private:
  const Relation& rel_;
  PartitionRefiner refiner_;
  size_t max_entries_;
  std::unordered_map<AttributeSet, StrippedPartition, AttributeSetHash> cache_;
  int64_t built_ = 0;
};

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_PARTITION_CACHE_H_
