#ifndef DHYFD_PARTITION_PARTITION_CACHE_H_
#define DHYFD_PARTITION_PARTITION_CACHE_H_

#include <atomic>
#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>

#include "partition/partition_ops.h"
#include "partition/scratch_pool.h"
#include "partition/stripped_partition.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// A cached partition, pinned: holding the pointer keeps the partition alive
/// even if the cache evicts the entry, so readers never see a partition
/// disappear under them. Partitions are immutable once published.
using PartitionPin = std::shared_ptr<const StrippedPartition>;

/// Lazily computed, cached stripped partitions keyed by attribute set, safe
/// for concurrent readers.
///
/// pi_X is built by refining along the sorted-prefix chain of X (each
/// prefix is cached too), so repeated lattice probes — the access pattern
/// of DFD-style searches — share work. The key space is hashed over a fixed
/// number of lock shards; each shard tracks its entries LRU with
/// byte-accurate accounting (the CSR arena footprint of every resident
/// partition) against a 1/kLockShards slice of the entry and byte budgets.
/// Eviction only drops the cache's own reference — get() hands out pins, so
/// an evicted-while-in-use partition lives until its last reader lets go.
///
/// Builds happen outside the shard locks with a leased refiner from a
/// scratch pool (the refiner's warm counting arenas are single-threaded by
/// design). Two threads racing to build the same prefix both compute it;
/// insert() keeps the first and returns it to both — partitions of the same
/// attribute set are structurally identical, so the loser's copy is merely
/// wasted work, never divergent state.
class PartitionCache {
 public:
  /// Default byte budget: enough for dense lattice sweeps on the bench
  /// datasets, small enough to bound service-side memory per job.
  static constexpr size_t kDefaultMaxBytes = size_t{256} << 20;

  static constexpr size_t kLockShards = 8;

  explicit PartitionCache(const Relation& r, size_t max_entries = 8192,
                          size_t max_bytes = kDefaultMaxBytes);

  PartitionCache(const PartitionCache&) = delete;
  PartitionCache& operator=(const PartitionCache&) = delete;

  /// pi_X, pinned; X must be non-empty. Never null.
  PartitionPin get(const AttributeSet& x);

  /// True if X -> a holds, validated against pi_X.
  bool implies(const AttributeSet& x, AttrId a);

  int64_t partitions_built() const {
    return built_.load(std::memory_order_relaxed);
  }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Resident entries / bytes across all lock shards (momentary snapshot;
  /// pinned-but-evicted partitions are not counted).
  size_t size() const;
  size_t memory_bytes() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    PartitionPin pin;
    std::list<AttributeSet>::iterator lru_it;
    size_t bytes = 0;
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<AttributeSet, Entry, AttributeSetHash> map
        DHYFD_GUARDED_BY(mu);
    // Front = most recently used.
    std::list<AttributeSet> lru DHYFD_GUARDED_BY(mu);
    size_t bytes DHYFD_GUARDED_BY(mu) = 0;
  };

  Shard& shard_for(const AttributeSet& x) {
    return shards_[AttributeSetHash{}(x) % kLockShards];
  }

  /// Pin for x if resident (touches LRU), else null.
  PartitionPin lookup(const AttributeSet& x);
  /// Publishes a freshly built partition; if x is already resident (a racing
  /// build won), returns the incumbent pin instead. Evicts LRU entries past
  /// the shard budget — never the entry just inserted.
  PartitionPin insert(const AttributeSet& x, StrippedPartition partition);
  void evict_past_budget(Shard& shard) DHYFD_REQUIRES(shard.mu);

  const Relation& rel_;
  ScratchPool<PartitionRefiner> refiners_;
  const size_t max_entries_per_shard_;
  const size_t max_bytes_per_shard_;
  const size_t max_bytes_;
  Shard shards_[kLockShards];
  std::atomic<int64_t> built_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_PARTITION_CACHE_H_
