#include "partition/stripped_partition.h"

#include <algorithm>

#include "partition/partition_ops.h"

namespace dhyfd {

size_t StrippedPartition::memory_bytes() const {
  size_t bytes = sizeof(StrippedPartition) +
                 clusters.capacity() * sizeof(std::vector<RowId>);
  for (const auto& c : clusters) bytes += c.capacity() * sizeof(RowId);
  return bytes;
}

void StrippedPartition::normalize() {
  for (auto& c : clusters) std::sort(c.begin(), c.end());
  std::sort(clusters.begin(), clusters.end(),
            [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
              return a.front() < b.front();
            });
}

std::string StrippedPartition::to_string() const {
  std::string s = "{";
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (i > 0) s += ", ";
    s += "[";
    for (size_t j = 0; j < clusters[i].size(); ++j) {
      if (j > 0) s += ",";
      s += std::to_string(clusters[i][j]);
    }
    s += "]";
  }
  s += "}";
  return s;
}

StrippedPartition BuildAttributePartition(const Relation& r, AttrId attr) {
  StrippedPartition out;
  const std::vector<ValueId>& col = r.column(attr);
  std::vector<std::vector<RowId>> slots(r.domain_size(attr));
  for (RowId row = 0; row < r.num_rows(); ++row) slots[col[row]].push_back(row);
  for (auto& slot : slots) {
    if (slot.size() >= 2) out.clusters.push_back(std::move(slot));
  }
  return out;
}

StrippedPartition BuildPartition(const Relation& r, const AttributeSet& x) {
  if (x.empty()) {
    // pi_empty is one class with every tuple (or no class if |r| < 2).
    StrippedPartition out;
    if (r.num_rows() >= 2) {
      std::vector<RowId> all(r.num_rows());
      for (RowId i = 0; i < r.num_rows(); ++i) all[i] = i;
      out.clusters.push_back(std::move(all));
    }
    return out;
  }
  AttrId first = x.first();
  StrippedPartition p = BuildAttributePartition(r, first);
  PartitionRefiner refiner(r);
  return refiner.refine_all(p, x - AttributeSet::single(first));
}

}  // namespace dhyfd
