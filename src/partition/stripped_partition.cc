#include "partition/stripped_partition.h"

#include <algorithm>
#include <numeric>

#include "partition/partition_ops.h"

namespace dhyfd {

StrippedPartition StrippedPartition::whole(RowId num_rows) {
  StrippedPartition out;
  if (num_rows >= 2) {
    out.rows_.resize(static_cast<size_t>(num_rows));
    std::iota(out.rows_.begin(), out.rows_.end(), RowId{0});
    out.offsets_ = {0, static_cast<uint32_t>(num_rows)};
  }
  return out;
}

void StrippedPartition::normalize() {
  const size_t n = static_cast<size_t>(size());
  for (size_t i = 0; i < n; ++i) {
    std::span<RowId> c = mutable_cluster(i);
    std::sort(c.begin(), c.end());
  }
  // Reorder whole classes by first row: permute via a scratch arena.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return cluster(a).front() < cluster(b).front();
  });
  StrippedPartition sorted;
  sorted.reserve(rows_.size(), n);
  for (size_t i : order) sorted.add_cluster(cluster(i));
  swap(sorted);
}

std::string StrippedPartition::to_string() const {
  std::string s = "{";
  const size_t n = static_cast<size_t>(size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) s += ", ";
    s += "[";
    ClusterView c = cluster(i);
    for (size_t j = 0; j < c.size(); ++j) {
      if (j > 0) s += ",";
      s += std::to_string(c[j]);
    }
    s += "]";
  }
  s += "}";
  return s;
}

StrippedPartition BuildAttributePartition(const Relation& r, AttrId attr) {
  // Counting sort into the arena: count per value, lay out the classes of
  // size >= 2 contiguously, then place each row at its class cursor. Two
  // linear column scans, zero per-class allocations.
  const std::vector<ValueId>& col = r.column(attr);
  const size_t domain = static_cast<size_t>(std::max<ValueId>(r.domain_size(attr), 0));
  std::vector<uint32_t> counts(domain, 0);
  for (RowId row = 0; row < r.num_rows(); ++row) ++counts[col[row]];

  StrippedPartition out;
  size_t kept_rows = 0, kept_classes = 0;
  for (uint32_t c : counts) {
    if (c >= 2) {
      kept_rows += c;
      ++kept_classes;
    }
  }
  if (kept_classes == 0) return out;
  out.rows_.resize(kept_rows);
  out.offsets_.reserve(kept_classes + 1);
  out.offsets_.push_back(0);
  // Repurpose counts[v] as the write cursor of v's class; stripped
  // singleton values get a sentinel and are skipped during placement.
  constexpr uint32_t kStripped = UINT32_MAX;
  uint32_t cursor = 0;
  for (size_t v = 0; v < domain; ++v) {
    if (counts[v] >= 2) {
      uint32_t begin = cursor;
      cursor += counts[v];
      counts[v] = begin;
      out.offsets_.push_back(cursor);
    } else {
      counts[v] = kStripped;
    }
  }
  for (RowId row = 0; row < r.num_rows(); ++row) {
    uint32_t& cur = counts[col[row]];
    if (cur != kStripped) out.rows_[cur++] = row;
  }
  return out;
}

StrippedPartition BuildPartition(const Relation& r, const AttributeSet& x) {
  if (x.empty()) return StrippedPartition::whole(r.num_rows());
  AttrId first = x.first();
  StrippedPartition p = BuildAttributePartition(r, first);
  PartitionRefiner refiner(r);
  return refiner.refine_all(p, x - AttributeSet::single(first));
}

}  // namespace dhyfd
