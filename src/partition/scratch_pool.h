#ifndef DHYFD_PARTITION_SCRATCH_POOL_H_
#define DHYFD_PARTITION_SCRATCH_POOL_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

/// Free-list of reusable scratch objects (PartitionRefiner,
/// PartitionIntersector, ...) for code paths that run on arbitrary pool
/// threads. The scratch classes themselves are deliberately single-threaded
/// — their value is the warm counting-sort arenas — so concurrent callers
/// each lease their own instance instead of sharing one behind a lock held
/// across the whole operation.
///
/// acquire() pops a warm instance or builds a fresh one via the factory;
/// the returned Lease returns it on destruction. Instances therefore migrate
/// between threads but are never used by two at once, and the pool retains
/// at most as many instances as the peak concurrency that touched it.
template <typename T>
class ScratchPool {
 public:
  explicit ScratchPool(std::function<std::unique_ptr<T>()> factory)
      : factory_(std::move(factory)) {}

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> obj)
        : pool_(pool), obj_(std::move(obj)) {}
    ~Lease() {
      if (obj_) pool_->release(std::move(obj_));
    }

    Lease(Lease&& o) noexcept : pool_(o.pool_), obj_(std::move(o.obj_)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    T& operator*() const { return *obj_; }
    T* operator->() const { return obj_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<T> obj_;
  };

  Lease acquire() DHYFD_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      if (!free_.empty()) {
        std::unique_ptr<T> obj = std::move(free_.back());
        free_.pop_back();
        return Lease(this, std::move(obj));
      }
    }
    // Build outside the lock — factories (refiner construction) touch the
    // relation and size arenas, too slow to serialize.
    return Lease(this, factory_());
  }

  std::size_t idle_count() const DHYFD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return free_.size();
  }

 private:
  void release(std::unique_ptr<T> obj) DHYFD_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    free_.push_back(std::move(obj));
  }

  std::function<std::unique_ptr<T>()> factory_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<T>> free_ DHYFD_GUARDED_BY(mu_);
};

}  // namespace dhyfd

#endif  // DHYFD_PARTITION_SCRATCH_POOL_H_
