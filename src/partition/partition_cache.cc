#include "partition/partition_cache.h"

#include <cassert>

#include "obs/obs.h"

namespace dhyfd {

PartitionCache::PartitionCache(const Relation& r, size_t max_entries,
                               size_t max_bytes)
    : rel_(r), refiner_(r), max_entries_(max_entries), max_bytes_(max_bytes) {}

void PartitionCache::touch(Entry& e) {
  lru_.splice(lru_.begin(), lru_, e.lru_it);
}

void PartitionCache::evict_until_fits() {
  while (!lru_.empty() &&
         (cache_.size() >= max_entries_ || bytes_ > max_bytes_)) {
    auto it = cache_.find(lru_.back());
    assert(it != cache_.end());
    bytes_ -= it->second.bytes;
    cache_.erase(it);
    lru_.pop_back();
    ++evictions_;
    ObsAdd("partition.cache_evictions");
  }
}

const StrippedPartition& PartitionCache::get(const AttributeSet& x) {
  assert(!x.empty());
  auto it = cache_.find(x);
  if (it != cache_.end()) {
    ObsAdd("partition.cache_hits");
    touch(it->second);
    return it->second.partition;
  }
  ObsAdd("partition.cache_misses");

  // Make room up front: references produced below stay valid until the
  // next get(), so eviction must not run while the chain is being built.
  evict_until_fits();

  // Build along the sorted-prefix chain, reusing the longest cached prefix.
  AttributeSet prefix;
  const StrippedPartition* current = nullptr;
  x.for_each([&](AttrId a) {
    prefix.set(a);
    auto hit = cache_.find(prefix);
    if (hit != cache_.end()) {
      ObsAdd("partition.prefix_cache_hits");
      touch(hit->second);
      current = &hit->second.partition;
      return;
    }
    StrippedPartition next = current == nullptr
                                 ? BuildAttributePartition(rel_, a)
                                 : refiner_.refine(*current, a);
    ++built_;
    Entry entry;
    entry.partition = std::move(next);
    entry.bytes = entry.partition.memory_bytes();
    lru_.push_front(prefix);
    entry.lru_it = lru_.begin();
    bytes_ += entry.bytes;
    current = &cache_.emplace(prefix, std::move(entry)).first->second.partition;
  });
  return *current;
}

bool PartitionCache::implies(const AttributeSet& x, AttrId a) {
  if (x.empty()) {
    // {} -> a holds iff column a is constant.
    const std::vector<ValueId>& col = rel_.column(a);
    for (RowId i = 1; i < rel_.num_rows(); ++i) {
      if (col[i] != col[0]) return false;
    }
    return true;
  }
  return PartitionImpliesFd(rel_, get(x), a);
}

}  // namespace dhyfd
