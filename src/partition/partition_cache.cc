#include "partition/partition_cache.h"

#include <cassert>

#include "obs/obs.h"

namespace dhyfd {

PartitionCache::PartitionCache(const Relation& r, size_t max_entries)
    : rel_(r), refiner_(r), max_entries_(max_entries) {}

const StrippedPartition& PartitionCache::get(const AttributeSet& x) {
  assert(!x.empty());
  auto it = cache_.find(x);
  if (it != cache_.end()) {
    ObsAdd("partition.cache_hits");
    return it->second;
  }
  ObsAdd("partition.cache_misses");

  if (cache_.size() >= max_entries_) cache_.clear();

  // Build along the sorted-prefix chain, reusing the longest cached prefix.
  AttributeSet prefix;
  const StrippedPartition* current = nullptr;
  x.for_each([&](AttrId a) {
    prefix.set(a);
    auto hit = cache_.find(prefix);
    if (hit != cache_.end()) {
      ObsAdd("partition.prefix_cache_hits");
      current = &hit->second;
      return;
    }
    StrippedPartition next = current == nullptr
                                 ? BuildAttributePartition(rel_, a)
                                 : refiner_.refine(*current, a);
    ++built_;
    current = &cache_.emplace(prefix, std::move(next)).first->second;
  });
  return *current;
}

bool PartitionCache::implies(const AttributeSet& x, AttrId a) {
  if (x.empty()) {
    // {} -> a holds iff column a is constant.
    const std::vector<ValueId>& col = rel_.column(a);
    for (RowId i = 1; i < rel_.num_rows(); ++i) {
      if (col[i] != col[0]) return false;
    }
    return true;
  }
  return PartitionImpliesFd(rel_, get(x), a);
}

}  // namespace dhyfd
