#include "partition/partition_cache.h"

#include <cassert>
#include <utility>

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"

namespace dhyfd {

namespace {

size_t PerShard(size_t budget, size_t shards) {
  size_t slice = budget / shards;
  return slice > 0 ? slice : 1;
}

}  // namespace

PartitionCache::PartitionCache(const Relation& r, size_t max_entries,
                               size_t max_bytes)
    : rel_(r),
      refiners_([&r] { return std::make_unique<PartitionRefiner>(r); }),
      max_entries_per_shard_(PerShard(max_entries, kLockShards)),
      max_bytes_per_shard_(PerShard(max_bytes, kLockShards)),
      max_bytes_(max_bytes) {}

PartitionPin PartitionCache::lookup(const AttributeSet& x) {
  Shard& shard = shard_for(x);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(x);
  if (it == shard.map.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.pin;
}

void PartitionCache::evict_past_budget(Shard& shard) {
  while (shard.lru.size() > 1 && (shard.map.size() > max_entries_per_shard_ ||
                                  shard.bytes > max_bytes_per_shard_)) {
    auto it = shard.map.find(shard.lru.back());
    assert(it != shard.map.end());
    shard.bytes -= it->second.bytes;
    shard.map.erase(it);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    ObsAdd(kObsPartitionCacheEvictions);
  }
}

PartitionPin PartitionCache::insert(const AttributeSet& x,
                                    StrippedPartition partition) {
  auto pin = std::make_shared<const StrippedPartition>(std::move(partition));
  Shard& shard = shard_for(x);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(x);
  if (it != shard.map.end()) {
    // A racing build published first; same attribute set, same partition —
    // adopt the incumbent so the LRU/byte books stay single-entry.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
    return it->second.pin;
  }
  Entry entry;
  entry.pin = pin;
  entry.bytes = pin->memory_bytes();
  shard.lru.push_front(x);
  entry.lru_it = shard.lru.begin();
  shard.bytes += entry.bytes;
  shard.map.emplace(x, std::move(entry));
  evict_past_budget(shard);
  return pin;
}

PartitionPin PartitionCache::get(const AttributeSet& x) {
  assert(!x.empty());
  if (PartitionPin hit = lookup(x)) {
    ObsAdd(kObsPartitionCacheHits);
    return hit;
  }
  ObsAdd(kObsPartitionCacheMisses);

  // Build along the sorted-prefix chain, reusing the longest cached prefix.
  // The leased refiner's arenas stay warm across the chain's refinements.
  auto refiner = refiners_.acquire();
  AttributeSet prefix;
  PartitionPin current;
  x.for_each([&](AttrId a) {
    prefix.set(a);
    if (PartitionPin hit = lookup(prefix)) {
      if (prefix != x) ObsAdd(kObsPartitionPrefixCacheHits);
      current = std::move(hit);
      return;
    }
    StrippedPartition next = current == nullptr
                                 ? BuildAttributePartition(rel_, a)
                                 : refiner->refine(*current, a);
    built_.fetch_add(1, std::memory_order_relaxed);
    current = insert(prefix, std::move(next));
  });
  return current;
}

bool PartitionCache::implies(const AttributeSet& x, AttrId a) {
  if (x.empty()) {
    // {} -> a holds iff column a is constant.
    const std::vector<ValueId>& col = rel_.column(a);
    for (RowId i = 1; i < rel_.num_rows(); ++i) {
      if (col[i] != col[0]) return false;
    }
    return true;
  }
  return PartitionImpliesFd(rel_, *get(x), a);
}

size_t PartitionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total += shard.map.size();
  }
  return total;
}

size_t PartitionCache::memory_bytes() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    total += shard.bytes;
  }
  return total;
}

}  // namespace dhyfd
