#!/usr/bin/env python3
"""Fold stamped bench JSON rows into trajectory files at the repo root.

Every bench binary prints, next to its human-readable table, one or more
single-line JSON objects of the shape

    {"bench":"server_load","commit":"<sha>","timestamp":"<iso8601>",...}

This script scans its input (stdin, or files given as arguments) for such
lines and appends them to ``BENCH_<bench>.json`` at the repo root — one
file per bench name, each holding the full history of runs so performance
can be tracked across commits:

    {"bench": "server_load", "rows": [ {...}, {...} ]}

Rows are kept in input order, appended after whatever the file already
holds; exact duplicates (same commit, timestamp, and payload) are skipped
so re-piping the same output is idempotent. Non-JSON lines and JSON lines
without a "bench" key are ignored, so piping a bench's entire stdout is
fine:

    build/bench/bench_server_load --clients=200 | python3 tools/bench_distill.py

Use --root to write somewhere other than the repo root (tests do), and
--dry-run to see what would change without touching any file.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def extract_rows(lines):
    """Yield (bench_name, row_dict) for every stamped JSON row in `lines`."""
    for line in lines:
        line = line.strip()
        if not line.startswith("{") or '"bench"' not in line:
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(row, dict) and isinstance(row.get("bench"), str):
            yield row["bench"], row


def load_trajectory(path: pathlib.Path, bench: str) -> dict:
    if path.exists():
        data = json.loads(path.read_text())
        if not isinstance(data, dict) or not isinstance(data.get("rows"), list):
            raise SystemExit(f"{path}: not a trajectory file (expected "
                             '{"bench": ..., "rows": [...]})')
        return data
    return {"bench": bench, "rows": []}


def fold(rows_by_bench: dict, root: pathlib.Path, dry_run: bool) -> int:
    """Merge new rows into their trajectory files; return rows added."""
    added = 0
    for bench, rows in sorted(rows_by_bench.items()):
        path = root / f"BENCH_{bench}.json"
        data = load_trajectory(path, bench)
        seen = {json.dumps(r, sort_keys=True) for r in data["rows"]}
        fresh = []
        for row in rows:
            key = json.dumps(row, sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            fresh.append(row)
        if not fresh:
            print(f"{path.name}: no new rows ({len(data['rows'])} on file)")
            continue
        data["rows"].extend(fresh)
        added += len(fresh)
        if dry_run:
            print(f"{path.name}: would add {len(fresh)} row(s) "
                  f"-> {len(data['rows'])} total")
            continue
        path.write_text(json.dumps(data, indent=1, sort_keys=False) + "\n")
        print(f"{path.name}: +{len(fresh)} row(s) -> {len(data['rows'])} total")
    return added


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="fold stamped bench JSON rows into BENCH_<name>.json")
    parser.add_argument("inputs", nargs="*",
                        help="files holding bench output (default: stdin)")
    parser.add_argument("--root", type=pathlib.Path, default=REPO_ROOT,
                        help="directory for BENCH_*.json (default: repo root)")
    parser.add_argument("--dry-run", action="store_true",
                        help="report what would change, write nothing")
    args = parser.parse_args(argv)

    lines = []
    if args.inputs:
        for name in args.inputs:
            lines.extend(pathlib.Path(name).read_text().splitlines())
    else:
        lines = sys.stdin.read().splitlines()

    rows_by_bench: dict = {}
    for bench, row in extract_rows(lines):
        rows_by_bench.setdefault(bench, []).append(row)

    if not rows_by_bench:
        print("no stamped bench rows found in input", file=sys.stderr)
        return 1
    fold(rows_by_bench, args.root, args.dry_run)
    return 0


if __name__ == "__main__":
    sys.exit(main())
