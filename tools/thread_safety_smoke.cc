// Deliberately broken lock discipline. This TU is NOT part of any build
// target: ci.sh compiles it with -Werror=thread-safety and requires the
// compile to FAIL, proving the thread-safety gate actually bites (a silently
// ineffective analysis would otherwise pass every build forever).
//
// If this file ever compiles under Clang with -Wthread-safety, the gate is
// broken — fix the gate, not this file.

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace dhyfd {

class SmokeCounter {
 public:
  void increment_unlocked() {
    ++value_;  // BUG: guarded write without holding mu_
  }

  int read_while_pretending() DHYFD_REQUIRES(mu_) { return value_; }

  int call_requires_without_lock() {
    return read_while_pretending();  // BUG: REQUIRES(mu_) callee, no lock
  }

  void double_trouble() {
    mu_.lock();
    mu_.lock();  // BUG: acquiring a capability already held
    mu_.unlock();
  }

 private:
  Mutex mu_;
  int value_ DHYFD_GUARDED_BY(mu_) = 0;
};

}  // namespace dhyfd

int main() {
  dhyfd::SmokeCounter c;
  c.increment_unlocked();
  return 0;
}
