// Deliberately typo'd observability constant. This TU is NOT part of any
// build target: ci.sh compiles it with -fsyntax-only and requires the
// compile to FAIL, proving the generated-schema gate actually bites — with
// string literals a typo'd counter name silently forked a metric series;
// with src/obs/obs_schema.gen.h constants it cannot name-lookup.
//
// If this file ever compiles, the schema gate is broken — fix the gate
// (or the generator), not this file.

#include "obs/obs.h"
#include "obs/obs_schema.gen.h"

namespace dhyfd {

void SmokeEmit() {
  // BUG: "callz" — the registered constant is kObsDiscoverValidatorCalls.
  ObsAdd(kObsDiscoverValidatorCallz, 1);
}

}  // namespace dhyfd
