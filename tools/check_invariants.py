#!/usr/bin/env python3
"""Repo-invariant linter: fast, compiler-free checks of conventions that the
type system cannot express. Wired into ctest (invariant_lint) and ci.sh, so a
violation fails tier-1, not just code review.

Rules (suppress one occurrence with `// lint-allow: <rule>` on the line):

  nested-rowid     no std::vector<std::vector<RowId>> in src/ headers — the
                   CSR partition substrate (DESIGN.md "Partition substrate")
                   made flat arenas the only partition representation.
  obs-naming       obs counter/span name literals follow the layer.noun[_verb]
                   convention from DESIGN.md: dotted lowercase, first segment
                   = subsystem (discover.*, partition.*, incr.*, svc.*, ...).
  naked-mutex      no std::mutex / std::condition_variable / std::lock_guard /
                   std::unique_lock outside src/util/mutex.h — all locking
                   goes through the annotated Mutex/MutexLock/CondVar shims
                   so Clang Thread Safety Analysis can prove lock discipline.
  header-guard     every header carries an include guard (#pragma once or a
                   matching #ifndef/#define pair).
  nondeterminism   no rand()/srand()/std::random_device/std::mt19937 outside
                   src/util/random.h — reproducibility across platforms is a
                   hard requirement for the datagen and sampling layers.
  obs-prefix       obs counter/gauge/histogram/span name literals in src/net/
                   carry the net. prefix (and in src/query/ the query.
                   prefix), so each subsystem's telemetry stays greppable
                   and dashboard-stable.
  naked-socket     no raw socket syscalls (socket/bind/listen/accept/connect/
                   recv*/send*/poll/epoll_*/setsockopt/...) outside src/net/ —
                   net/socket.h is the one place fd lifecycle and EINTR/EAGAIN
                   edge cases are handled; everything else speaks
                   Socket/Poller.
  rpc-obs-prefix   obs name literals in src/net/ containing an rpc. or http.
                   segment live under the net.rpc. / net.http. namespaces —
                   the per-RPC telemetry and endpoint metrics dashboards key
                   on those exact prefixes (DESIGN.md "Per-RPC telemetry").
  naked-http       no hand-rolled HTTP literals (request lines, HTTP/1.x
                   version strings) outside src/net/ — net/http.h is the one
                   place the accepted HTTP grammar lives, so the endpoint's
                   attack surface stays auditable in one file.
  naked-thread     no raw std::thread / std::jthread outside src/util/ —
                   compute parallelism goes through ThreadPool (run_shards /
                   parallel_for handle slot accounting, trace propagation,
                   and obs-delta relay; a raw thread gets none of that).
                   std::thread::hardware_concurrency() is a capacity query,
                   not a thread, and stays legal. The rare legitimate
                   dedicated thread (an event loop, a background writer)
                   carries a lint-allow with its rationale.

Usage:
  check_invariants.py [--root DIR]   lint the tree (exit 1 on findings)
  check_invariants.py --self-test    prove every rule fires and passes
"""

import argparse
import os
import re
import sys

# The obs naming grammar (name regex, call-site regex, per-directory prefix
# rules) is shared with tools/analyze/analyze.py via one module, so the two
# gates can never drift apart on what a legal name is.
sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "analyze"))
from obs_grammar import OBS_CALL_RE, OBS_NAME_RE, required_prefix  # noqa: E402

# ------------------------------------------------------------------ helpers

SUPPRESS_RE = re.compile(r"//\s*lint-allow:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")


def strip_comments(text):
    """Blanks out // and /* */ comments (preserving newlines and suppression
    markers' line positions are handled separately, so plain blanking is fine
    for matching)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
            elif c == "'":
                state = "chr"
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "str":
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == '"':
                state = "code"
            out.append(c)
        else:  # chr
            if c == "\\":
                out.append(c + nxt)
                i += 2
                continue
            if c == "'":
                state = "code"
            out.append(c)
        i += 1
    return "".join(out)


def suppressed_rules(line):
    m = SUPPRESS_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def line_findings(path, text, rule, pattern, message, exempt=lambda m: False):
    """One finding per regex match, honoring same-line suppressions (matched
    against the ORIGINAL text so markers inside comments count)."""
    original_lines = text.splitlines()
    stripped = strip_comments(text)
    findings = []
    for i, line in enumerate(stripped.splitlines(), start=1):
        for m in pattern.finditer(line):
            if exempt(m):
                continue
            raw = original_lines[i - 1] if i <= len(original_lines) else ""
            if rule in suppressed_rules(raw):
                continue
            findings.append(Finding(path, i, rule, message(m)))
    return findings


# -------------------------------------------------------------------- rules

NESTED_ROWID_RE = re.compile(
    r"std::vector\s*<\s*std::vector\s*<\s*RowId\b")


def check_nested_rowid(path, text):
    if not path.endswith(".h"):
        return []
    return line_findings(
        path, text, "nested-rowid", NESTED_ROWID_RE,
        lambda m: "nested std::vector<std::vector<RowId>> in a header; "
                  "use the flat CSR StrippedPartition arena instead")


# OBS_NAME_RE / OBS_CALL_RE come from tools/analyze/obs_grammar.py (shared
# with the analyzer's schema pass).
def check_obs_naming(path, text):
    return line_findings(
        path, text, "obs-naming", OBS_CALL_RE,
        lambda m: f'obs name "{m.group(1)}" does not match the '
                  "layer.noun[_verb] convention (dotted lowercase, "
                  "first segment = subsystem; see DESIGN.md)",
        exempt=lambda m: OBS_NAME_RE.match(m.group(1)) is not None)


NAKED_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")
MUTEX_SHIM = os.path.join("src", "util", "mutex.h")


def check_naked_mutex(path, text):
    if path.replace(os.sep, "/").endswith("src/util/mutex.h"):
        return []
    return line_findings(
        path, text, "naked-mutex", NAKED_MUTEX_RE,
        lambda m: f"naked std::{m.group(1)}; use the annotated "
                  "Mutex/MutexLock/CondVar shims from util/mutex.h so "
                  "thread-safety analysis can see the lock")


GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.MULTILINE)
GUARD_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)", re.MULTILINE)


def check_header_guard(path, text):
    if not path.endswith(".h"):
        return []
    stripped = strip_comments(text)
    if "#pragma once" in stripped:
        return []
    ifndef = GUARD_IFNDEF_RE.search(stripped)
    if ifndef:
        define = GUARD_DEFINE_RE.search(stripped)
        if define and define.group(1) == ifndef.group(1):
            return []
    if "lint-allow: header-guard" in text:
        return []
    return [Finding(path, 1, "header-guard",
                    "header lacks an include guard (#pragma once or a "
                    "matching #ifndef/#define pair)")]


NONDET_RE = re.compile(
    r"(?<![\w:])(?:s?rand\s*\(|std::random_device\b|std::mt19937(?:_64)?\b)")
RNG_HOME = "src/util/random.h"


def check_nondeterminism(path, text):
    if path.replace(os.sep, "/").endswith(RNG_HOME):
        return []
    return line_findings(
        path, text, "nondeterminism", NONDET_RE,
        lambda m: f"nondeterministic source '{m.group(0).strip('(').strip()}'; "
                  "seed a dhyfd::Random (util/random.h) instead so runs "
                  "reproduce across platforms")


NET_DIR = "src/net/"
QUERY_DIR = "src/query/"


def _check_obs_prefix(path, text, scope_dir):
    """Common body for the per-subsystem prefix rules: the prefix itself
    comes from obs_grammar.PREFIX_RULES via required_prefix()."""
    norm = path.replace(os.sep, "/")
    if not norm.startswith(scope_dir):
        return []
    prefix = required_prefix(norm)
    if prefix is None:
        return []
    return line_findings(
        path, text, "obs-prefix", OBS_CALL_RE,
        lambda m: f'obs name "{m.group(1)}" in {scope_dir} must start with '
                  f'"{prefix}" so the subsystem\'s telemetry stays greppable',
        exempt=lambda m: m.group(1).startswith(prefix))


def check_net_obs_prefix(path, text):
    return _check_obs_prefix(path, text, NET_DIR)


def check_query_obs_prefix(path, text):
    return _check_obs_prefix(path, text, QUERY_DIR)


# An rpc. or http. segment anywhere in an obs name. Names that carry one
# must sit under the net.rpc. / net.http. namespaces — /metrics dashboards
# and the bench's server-side percentiles select on those exact prefixes.
RPC_SEGMENT_RE = re.compile(r"(?:^|\.)(rpc|http)\.")


def check_rpc_obs_prefix(path, text):
    if not path.replace(os.sep, "/").startswith(NET_DIR):
        return []

    def exempt(m):
        name = m.group(1)
        seg = RPC_SEGMENT_RE.search(name)
        if seg is None:
            return True  # no rpc./http. segment: obs-prefix covers the rest
        return name.startswith(f"net.{seg.group(1)}.")

    return line_findings(
        path, text, "rpc-obs-prefix", OBS_CALL_RE,
        lambda m: f'obs name "{m.group(1)}" carries an rpc./http. segment '
                  'outside the net.rpc./net.http. namespace the dashboards '
                  "key on",
        exempt=exempt)


# A string literal that starts an HTTP request line or names an HTTP/1.x
# version. Anywhere outside src/net/ this means someone is hand-rolling the
# protocol instead of using net/http.h's parser/renderer.
NAKED_HTTP_RE = re.compile(
    r'"(?:GET|POST|HEAD|PUT|DELETE|OPTIONS) /|HTTP/1\.[01]')


def check_naked_http(path, text):
    if path.replace(os.sep, "/").startswith(NET_DIR):
        return []
    return line_findings(
        path, text, "naked-http", NAKED_HTTP_RE,
        lambda m: "hand-rolled HTTP literal outside src/net/; parse and "
                  "render through net/http.h so the accepted grammar stays "
                  "in one audited file")


# A bare or global-namespace call to a socket-layer syscall. The optional
# prefix group distinguishes `::connect(` (a violation) from `std::bind(`
# or `resolver::connect(` (library / member-style calls, exempt); the
# lookbehind drops `obj.send(` / `ptr->recv(` member calls. `shutdown` is
# deliberately absent: it is a ubiquitous method name, and no socket can
# exist to shut down unless one of the listed calls appeared first.
NAKED_SOCKET_RE = re.compile(
    r"(?<![\w.>])((?:::)?|(?:\w+::)+)"
    r"(socket|bind|listen|accept4?|connect|recvfrom|recvmsg|recv|sendto|"
    r"sendmsg|send|setsockopt|getsockopt|getsockname|getpeername|inet_pton|"
    r"inet_ntop|poll|ppoll|epoll_create1?|epoll_ctl|epoll_wait)\s*\(")


def check_naked_socket(path, text):
    if path.replace(os.sep, "/").startswith(NET_DIR):
        return []
    return line_findings(
        path, text, "naked-socket", NAKED_SOCKET_RE,
        lambda m: f"naked socket syscall '{m.group(2)}' outside src/net/; "
                  "use the Socket/Poller wrappers from net/socket.h, which "
                  "own the fd lifecycle and the EINTR/EAGAIN edge cases",
        exempt=lambda m: m.group(1) not in ("", "::"))


# A raw std::thread/std::jthread mention outside src/util/. The negative
# lookahead keeps std::thread::hardware_concurrency() (a capacity query with
# no thread behind it) legal everywhere.
NAKED_THREAD_RE = re.compile(
    r"\bstd::(thread|jthread)\b(?!::hardware_concurrency)")
UTIL_DIR = "src/util/"


def check_naked_thread(path, text):
    if path.replace(os.sep, "/").startswith(UTIL_DIR):
        return []
    return line_findings(
        path, text, "naked-thread", NAKED_THREAD_RE,
        lambda m: f"raw std::{m.group(1)} outside src/util/; fan work out "
                  "through ThreadPool (run_shards/parallel_for) so slot "
                  "accounting, trace propagation, and obs-delta relay hold")


ALL_CHECKS = [
    check_nested_rowid,
    check_obs_naming,
    check_naked_mutex,
    check_header_guard,
    check_nondeterminism,
    check_net_obs_prefix,
    check_query_obs_prefix,
    check_rpc_obs_prefix,
    check_naked_http,
    check_naked_socket,
    check_naked_thread,
]

# ------------------------------------------------------------------- driver

# Which trees each rule sweeps. Tests may use ad-hoc metric names and raw
# std threading primitives to attack the shims, so the style rules stay
# scoped to src/; determinism also covers bench/ and examples/ because their
# JSON rows and demo output are diffed across runs.
SCOPES = {
    check_nested_rowid: ["src"],
    check_obs_naming: ["src"],
    check_naked_mutex: ["src"],
    check_header_guard: ["src", "bench", "tests", "examples"],
    check_nondeterminism: ["src", "bench", "examples"],
    check_net_obs_prefix: ["src"],
    check_query_obs_prefix: ["src"],
    check_rpc_obs_prefix: ["src"],
    check_naked_http: ["src", "bench", "examples"],
    check_naked_socket: ["src", "bench", "examples"],
    check_naked_thread: ["src"],
}

SOURCE_EXTS = (".h", ".cc", ".cpp")


def lint_tree(root):
    findings = []
    for check, scopes in SCOPES.items():
        for scope in scopes:
            base = os.path.join(root, scope)
            if not os.path.isdir(base):
                continue
            for dirpath, dirnames, filenames in os.walk(base):
                dirnames[:] = [d for d in dirnames if not d.startswith(".")]
                for name in sorted(filenames):
                    if not name.endswith(SOURCE_EXTS):
                        continue
                    path = os.path.join(dirpath, name)
                    rel = os.path.relpath(path, root)
                    with open(path, encoding="utf-8", errors="replace") as f:
                        text = f.read()
                    findings.extend(check(rel, text))
    return findings


# ---------------------------------------------------------------- self-test

# (rule, virtual path, snippet, expected finding count)
FIXTURES = [
    # nested-rowid: fires on the nested vector, passes on flat CSR members
    # and on suppressed lines, and ignores .cc files (scratch buffers are
    # allowed outside headers).
    (check_nested_rowid, "src/partition/bad.h",
     "std::vector<std::vector<RowId>> clusters_;\n", 1),
    (check_nested_rowid, "src/partition/bad_spaced.h",
     "std::vector< std::vector< RowId > > clusters_;\n", 1),
    (check_nested_rowid, "src/partition/good.h",
     "std::vector<RowId> arena_;\nstd::vector<uint32_t> offsets_;\n", 0),
    (check_nested_rowid, "src/partition/allowed.h",
     "std::vector<std::vector<RowId>> g_;  // lint-allow: nested-rowid\n", 0),
    (check_nested_rowid, "src/partition/scratch.cc",
     "std::vector<std::vector<RowId>> tmp;\n", 0),
    # obs-naming: fires on undotted/uppercase names, passes on layer.noun.
    (check_obs_naming, "src/algo/bad.cc",
     'ObsAdd("validatorCalls");\n', 1),
    (check_obs_naming, "src/algo/bad2.cc",
     'metrics_->counter("jobsSubmitted").inc();\n', 1),
    (check_obs_naming, "src/algo/bad3.cc",
     'TraceSpan span("Discover.Sampling");\n', 1),
    (check_obs_naming, "src/algo/good.cc",
     'ObsAdd("discover.validator.calls");\n'
     'TraceSpan span("discover.sampling");\n'
     'metrics_->histogram("jobs.run_seconds").record(s);\n'
     'tracer.record_span("svc.queue_wait", id, a, b);\n', 0),
    (check_obs_naming, "src/algo/nonliteral.cc",
     "metrics_->histogram(stage_name).record(s);\n", 0),
    (check_obs_naming, "src/algo/comment.cc",
     '// ObsAdd("NotAName") in a comment is fine\n', 0),
    # naked-mutex: fires on std primitives, passes on the shims and on the
    # shim header itself.
    (check_naked_mutex, "src/service/bad.h",
     "mutable std::mutex mu_;\n", 1),
    (check_naked_mutex, "src/service/bad2.cc",
     "std::lock_guard<std::mutex> lock(mu_);\n", 2),
    (check_naked_mutex, "src/service/bad3.h",
     "std::condition_variable cv_;\n", 1),
    (check_naked_mutex, "src/service/good.h",
     "mutable Mutex mu_;\nCondVar cv_;\nMutexLock lock(&mu_);\n", 0),
    (check_naked_mutex, "src/util/mutex.h",
     "class Mutex { std::mutex mu_; };\n", 0),
    (check_naked_mutex, "src/service/comment.cc",
     "// std::mutex is banned outside util/mutex.h\n", 0),
    # header-guard: fires on a bare header, passes on both guard styles.
    (check_header_guard, "src/util/bad.h",
     "namespace dhyfd {}\n", 1),
    (check_header_guard, "src/util/pragma.h",
     "#pragma once\nnamespace dhyfd {}\n", 0),
    (check_header_guard, "src/util/classic.h",
     "#ifndef DHYFD_UTIL_CLASSIC_H_\n#define DHYFD_UTIL_CLASSIC_H_\n"
     "#endif\n", 0),
    (check_header_guard, "src/util/mismatched.h",
     "#ifndef GUARD_A\n#define GUARD_B\n#endif\n", 1),
    (check_header_guard, "src/util/impl.cc",
     "namespace dhyfd {}\n", 0),
    # nondeterminism: fires on rand()/random_device/mt19937, passes on the
    # seeded dhyfd::Random and on the rng home itself.
    (check_nondeterminism, "src/datagen/bad.cc",
     "int x = rand() % 10;\n", 1),
    (check_nondeterminism, "src/datagen/bad2.cc",
     "std::random_device rd;\nstd::mt19937 gen(rd());\n", 2),
    (check_nondeterminism, "src/datagen/bad3.cc",
     "srand(time(nullptr));\n", 1),
    (check_nondeterminism, "src/datagen/good.cc",
     "Random rng(42);\nuint64_t v = rng.next_u64();\n", 0),
    (check_nondeterminism, "src/util/random.h",
     "// splitmix64, no std::random_device anywhere\n", 0),
    (check_nondeterminism, "src/datagen/operand.cc",
     "int operand(int a);\nint brand(int b);\n", 0),
    # obs-prefix: names in src/net/ must start with "net."; files elsewhere
    # are out of scope for this rule (obs-naming still applies to them).
    (check_net_obs_prefix, "src/net/bad.cc",
     'metrics_->counter("conns.accepted").inc();\n', 1),
    (check_net_obs_prefix, "src/net/bad2.cc",
     'TraceSpan span("svc.request");\n', 1),
    (check_net_obs_prefix, "src/net/good.cc",
     'metrics_->counter("net.frames_rx").inc();\n'
     'metrics_->gauge("net.connections").add(1);\n'
     'TraceSpan span("net.request");\n', 0),
    (check_net_obs_prefix, "src/service/other.cc",
     'metrics_->counter("jobs.submitted").inc();\n', 0),
    (check_net_obs_prefix, "src/net/allowed.cc",
     'counter("legacy.name")  // lint-allow: obs-prefix\n', 0),
    # obs-prefix (query): names in src/query/ must start with "query.";
    # other trees are out of scope for this variant.
    (check_query_obs_prefix, "src/query/bad.cc",
     'ObsAdd("topk.validations");\n', 1),
    (check_query_obs_prefix, "src/query/bad2.cc",
     'TraceSpan span("engine.execute");\n', 1),
    (check_query_obs_prefix, "src/query/good.cc",
     'ObsAdd("query.validations");\n'
     'TraceSpan span("query.lattice_level");\n'
     'metrics_->counter("query.executes").inc();\n', 0),
    (check_query_obs_prefix, "src/ranking/other.cc",
     'ObsAdd("rank.scored");\n', 0),
    (check_query_obs_prefix, "src/query/allowed.cc",
     'counter("legacy.name")  // lint-allow: obs-prefix\n', 0),
    # rpc-obs-prefix: rpc./http. segments in src/net/ obs names must live
    # under net.rpc./net.http.; names without such a segment are left to the
    # plain obs-prefix rule, and other trees are out of scope.
    (check_rpc_obs_prefix, "src/net/bad.cc",
     'metrics_->counter("rpc.requests").inc();\n', 1),
    (check_rpc_obs_prefix, "src/net/bad2.cc",
     'metrics_->gauge("http.connections").add(1);\n', 1),
    (check_rpc_obs_prefix, "src/net/bad3.cc",
     'metrics_->histogram("svc.rpc.run_seconds").record(s);\n', 1),
    (check_rpc_obs_prefix, "src/net/good.cc",
     'metrics_->counter("net.rpc.requests").inc();\n'
     'metrics_->gauge("net.http.connections").add(1);\n'
     'metrics_->histogram("net.rpc.queue_seconds").record(s);\n'
     'metrics_->counter("net.frames_rx").inc();\n', 0),
    (check_rpc_obs_prefix, "src/service/other.cc",
     'metrics_->counter("rpc.requests").inc();\n', 0),
    (check_rpc_obs_prefix, "src/net/allowed.cc",
     'counter("rpc.legacy")  // lint-allow: rpc-obs-prefix\n', 0),
    # naked-http: HTTP request-line / version literals outside src/net/ fire;
    # net/http.* itself and comments are exempt.
    (check_naked_http, "src/service/bad.cc",
     'std::string req = "GET /metrics HTTP/1.0\\r\\n\\r\\n";\n', 2),
    (check_naked_http, "src/obs/bad2.cc",
     'out += "HTTP/1.1 200 OK";\n', 1),
    (check_naked_http, "src/net/http.cc",
     '"GET /metrics HTTP/1.0\\r\\n\\r\\n";\n', 0),
    (check_naked_http, "src/service/good.cc",
     'std::string path = "/metrics";  // served by net/http.h\n', 0),
    (check_naked_http, "src/service/comment.cc",
     '// a "GET /metrics HTTP/1.0" example in a comment is fine\n', 0),
    # naked-socket: fires on bare and ::-qualified syscalls outside src/net/,
    # passes on member calls, std::bind, and anything inside src/net/.
    (check_naked_socket, "src/service/bad.cc",
     "int fd = socket(AF_INET, SOCK_STREAM, 0);\n", 1),
    (check_naked_socket, "src/service/bad2.cc",
     "::connect(fd, addr, len);\nrecv(fd, buf, n, 0);\n", 2),
    (check_naked_socket, "src/service/bad3.cc",
     "setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);\n"
     "poll(fds, n, timeout);\n", 2),
    (check_naked_socket, "src/service/good.cc",
     "Socket s = ConnectTcp(host, port);\n"
     "auto f = std::bind(&T::run, this);\n"
     "client.send_frame(type, id, payload);\n"
     "sock.connect_timeout();\nobj->sendto_queue(x);\n", 0),
    (check_naked_socket, "src/net/socket.cc",
     "int fd = ::socket(AF_INET, SOCK_STREAM, 0);\n", 0),
    (check_naked_socket, "src/service/member.cc",
     "pool_.shutdown();\nbus.send(msg);\nself->poll(1);\n", 0),
    (check_naked_socket, "src/service/comment.cc",
     "// recv(fd, ...) in a comment is fine\n", 0),
    (check_naked_socket, "src/service/allowed.cc",
     "poll(fds, n, t);  // lint-allow: naked-socket\n", 0),
    # naked-thread: fires on raw std::thread/jthread outside src/util/,
    # passes on hardware_concurrency queries, the pool's own home, member
    # names, suppressed lines, and comments.
    (check_naked_thread, "src/service/bad.cc",
     "std::thread worker([] { run(); });\n", 1),
    (check_naked_thread, "src/net/bad2.h",
     "std::jthread loop_;\n", 1),
    (check_naked_thread, "src/service/bad3.h",
     "std::vector<std::thread> workers_;\n", 1),
    (check_naked_thread, "src/service/good.cc",
     "unsigned hw = std::thread::hardware_concurrency();\n"
     "pool_.parallel_for(n, par, body);\n", 0),
    (check_naked_thread, "src/util/thread_pool.cc",
     "std::vector<std::thread> to_join;\n", 0),
    (check_naked_thread, "src/service/member.cc",
     "my::thread t;\nobj.thread();\n", 0),
    (check_naked_thread, "src/net/allowed.cc",
     "std::thread loop_;  // lint-allow: naked-thread\n", 0),
    (check_naked_thread, "src/service/comment.cc",
     "// std::thread is banned outside src/util/\n", 0),
]


def self_test():
    failures = 0
    for check, path, snippet, expected in FIXTURES:
        got = check(path, snippet)
        status = "ok" if len(got) == expected else "FAIL"
        if len(got) != expected:
            failures += 1
        print(f"[{status}] {check.__name__:22s} {path}: "
              f"expected {expected}, got {len(got)}")
        if status == "FAIL":
            for f in got:
                print(f"       {f}")
    if failures:
        print(f"self-test: {failures} fixture(s) failed")
        return 1
    print(f"self-test: all {len(FIXTURES)} fixtures passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule fixtures instead of linting")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"check_invariants: {len(findings)} finding(s)")
        return 1
    print("check_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
