"""Single source of truth for the observability naming grammar.

Both repo gates import from here, so a name cannot pass one and fail the
other (they used to carry divergent copies of these regexes):

  tools/check_invariants.py   per-file regex linter (string literals only)
  tools/analyze/analyze.py    multi-pass analyzer (literals + generated
                              kObs* schema constants, tools/analyze/
                              obs_schema.json manifest)

The grammar (DESIGN.md "Observability"): names are dotted lowercase,
`layer.noun[_verb]`, first segment = owning subsystem. Subsystem-scoped
trees additionally pin the first segment (src/net/ -> net., src/query/ ->
query.) so each subsystem's telemetry stays greppable and dashboard-stable.
"""

import re

# A legal obs name: dotted lowercase, >= 2 segments, layer.noun[_verb].
OBS_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

# Call sites whose first string literal is an obs/metrics name. TraceSpan
# appears both as a declaration (TraceSpan span("x")) and a temporary;
# TraceEvent is brace-initialized with the name first.
OBS_CALL_RE = re.compile(
    r"\b(?:ObsAdd|record_span|TraceSpan(?:\s+\w+)?|TraceEvent\s*\{"
    r"|counter|gauge|histogram)"
    r"\s*[({]\s*\"([^\"]+)\"")

# Directory -> mandatory first segment ("prefix") for obs names used there.
# Checked by check_invariants.py on raw literals and by analyze.py on both
# literals and schema-constant references.
PREFIX_RULES = (
    ("src/net/", "net."),
    ("src/query/", "query."),
)


def required_prefix(relpath):
    """The name prefix obs names in `relpath` must carry, or None."""
    path = relpath.replace("\\", "/")
    for directory, prefix in PREFIX_RULES:
        if path.startswith(directory):
            return prefix
    return None


def name_ok(name):
    """True if `name` satisfies the layer.noun[_verb] grammar."""
    return OBS_NAME_RE.match(name) is not None
