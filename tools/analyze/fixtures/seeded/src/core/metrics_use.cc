#include "core/profiler.h"

#include "util/fruit.h"

namespace seeded {

void ObsAdd(const char* name, long delta = 1);

void Touch() {
  ObsAdd("core.widgets");
  // SEEDED VIOLATION: this name is not registered in obs_schema.json.
  ObsAdd("core.unregistered_counter");
}

int Classify(Fruit f) {
  // SEEDED VIOLATION: non-exhaustive switch over Fruit; the default arm
  // does not excuse the missing kBanana/kCherry enumerators.
  switch (f) {
    case Fruit::kApple:
      return 1;
    default:
      return 0;
  }
}

}  // namespace seeded
