#ifndef SEEDED_CORE_PROFILER_H_
#define SEEDED_CORE_PROFILER_H_

// SEEDED VIOLATION: core may not include query (query depends on core).
#include "query/query.h"

namespace seeded {

struct Profiler {
  Query pending;
};

}  // namespace seeded

#endif  // SEEDED_CORE_PROFILER_H_
