#ifndef SEEDED_QUERY_QUERY_H_
#define SEEDED_QUERY_QUERY_H_

namespace seeded {

struct Query {
  int top_k = 0;
};

}  // namespace seeded

#endif  // SEEDED_QUERY_QUERY_H_
