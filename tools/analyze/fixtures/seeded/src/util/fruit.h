#ifndef SEEDED_UTIL_FRUIT_H_
#define SEEDED_UTIL_FRUIT_H_

namespace seeded {

enum class Fruit { kApple, kBanana, kCherry };

}  // namespace seeded

#endif  // SEEDED_UTIL_FRUIT_H_
