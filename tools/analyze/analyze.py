#!/usr/bin/env python3
"""Multi-pass, compiler-free static analyzer for repo architecture.

Where tools/check_invariants.py lints one file at a time with regexes, this
tool tokenizes every C++ source under src/ and checks *structural* facts
that only exist across files:

  Pass 1 — layering.  The #include graph over src/ is checked against the
      declared layer DAG (tools/analyze/layers.json): every edge must go to
      the same layer or to a layer the source layer is allowed to depend on,
      file-level include cycles are reported, test-only layers (datagen) may
      not be included from product layers, and the condensed layer graph is
      emitted as a checked-in Graphviz artifact (include_graph.dot). Specific
      legacy edges are allowlisted per-file in layers.json with a reason —
      there is no blanket suppression.

  Pass 2 — observability schema.  tools/analyze/obs_schema.json is the
      canonical registry of every counter/gauge/histogram/span name.
      src/obs/obs_schema.gen.h is generated from it (constexpr kObs*
      constants plus the all-names table the Prometheus golden test checks
      against); this pass verifies the header is byte-identical to what the
      manifest renders (--fix regenerates it), that every name literal at an
      obs call site is registered, that every registered name is actually
      referenced somewhere (drift: a typo'd counter can no longer silently
      fork a series), that manifest names obey the layer.noun[_verb] grammar
      (shared with check_invariants.py via obs_grammar.py), and that
      subsystem prefix rules (net., query.) hold for schema-constant
      references, which the string-literal linter cannot see.

  Pass 3 — codec exhaustiveness.  For the enums named in layers.json
      ("exhaustive_enums": wire MessageType/ErrCode/StreamEndReason, job
      states, ...), every switch over the enum must name every enumerator
      explicitly — a `default:` label does not excuse a missing case, so
      adding a v5 frame type without confronting every version-parameterized
      codec fails this gate instead of becoming a runtime protocol error.

Suppress one occurrence with `// analyze-allow: <rule>` on the offending
line (rules: layering, include-cycle, obs-schema, exhaustive).

Usage:
  analyze.py [--root DIR] [--config DIR]   run all passes (exit 1 on findings)
  analyze.py --fix                         regenerate obs_schema.gen.h + .dot
  analyze.py --self-test                   prove every rule fires and passes
  analyze.py --dump-names                  list scanned obs names (dev aid)
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from obs_grammar import OBS_NAME_RE, required_prefix  # noqa: E402

SOURCE_EXTS = (".h", ".cc", ".cpp")
GEN_HEADER_REL = os.path.join("src", "obs", "obs_schema.gen.h")
DOT_NAME = "include_graph.dot"

SUPPRESS_RE = re.compile(r"//\s*analyze-allow:\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)")

# ------------------------------------------------------------------ tokenizer

TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<line_comment>//[^\n]*)
    | (?P<block_comment>/\*.*?\*/)
    | (?P<raw_string>R"(?P<delim>[^()\s\\]{0,16})\(.*?\)(?P=delim)")
    | (?P<string>"(?:[^"\\\n]|\\.)*")
    | (?P<char>'(?:[^'\\\n]|\\.)*')
    | (?P<ident>[A-Za-z_]\w*)
    | (?P<number>\.?\d(?:[eEpP][+-]|[\w.'])*)
    | (?P<punct>::|->|\#|[{}()\[\];:,<>=+\-*/%!&|^~?.@\\])
    """,
    re.X | re.S,
)


class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line})"


def tokenize(text):
    """Lexes C++ source into (kind, text, line) tokens, dropping whitespace
    and comments. Strings keep their quotes; use str_value() for content."""
    tokens = []
    line = 1
    pos = 0
    n = len(text)
    while pos < n:
        m = TOKEN_RE.match(text, pos)
        if m is None:  # stray byte (e.g. inside a #error message): skip it
            if text[pos] == "\n":
                line += 1
            pos += 1
            continue
        kind = m.lastgroup
        if kind == "delim":  # inner group of raw_string
            kind = "raw_string"
        tok_text = m.group(0)
        if kind not in ("ws", "line_comment", "block_comment"):
            k = "string" if kind == "raw_string" else kind
            tokens.append(Token(k, tok_text, line))
        line += tok_text.count("\n")
        pos = m.end()
    return tokens


def str_value(token):
    """The content of a string token (no un-escaping: obs names and include
    paths never carry escapes)."""
    text = token.text
    if text.startswith('R"'):
        open_paren = text.index("(")
        return text[open_paren + 1 : text.rindex(")")]
    return text[1:-1]


# ------------------------------------------------------------------- findings


class Finding:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def suppressed(rule, tree, path, line_no):
    lines = tree.get(path, "").splitlines()
    if 1 <= line_no <= len(lines):
        m = SUPPRESS_RE.search(lines[line_no - 1])
        if m and rule in {r.strip() for r in m.group(1).split(",")}:
            return True
    return False


# ---------------------------------------------------------- pass 1: layering


def file_layer(relpath):
    """Layer of a src-relative file: its first path component under src/."""
    parts = relpath.replace(os.sep, "/").split("/")
    if len(parts) >= 3 and parts[0] == "src":
        return parts[1]
    return None


def collect_includes(tokens):
    """(target, line) for every `#include "..."` token triple."""
    out = []
    for i in range(len(tokens) - 2):
        if (
            tokens[i].text == "#"
            and tokens[i + 1].kind == "ident"
            and tokens[i + 1].text == "include"
            and tokens[i + 2].kind == "string"
        ):
            out.append((str_value(tokens[i + 2]), tokens[i + 2].line))
    return out


def validate_layer_config(cfg):
    """Raises ValueError if the declared layer DAG is malformed or cyclic."""
    layers = cfg.get("layers", {})
    for layer, deps in layers.items():
        for dep in deps:
            if dep not in layers:
                raise ValueError(f"layer {layer!r} depends on unknown layer {dep!r}")
    # Toposort: the *declared* DAG must be acyclic, or "allowed dependency"
    # stops meaning "strictly lower".
    state = {}  # 0=visiting, 1=done

    def visit(layer, trail):
        if state.get(layer) == 1:
            return
        if state.get(layer) == 0:
            cycle = " -> ".join(trail + [layer])
            raise ValueError(f"declared layer DAG has a cycle: {cycle}")
        state[layer] = 0
        for dep in layers[layer]:
            visit(dep, trail + [layer])
        state[layer] = 1

    for layer in layers:
        visit(layer, [])
    for layer in cfg.get("test_only", []):
        if layer not in layers:
            raise ValueError(f"test_only names unknown layer {layer!r}")


def match_exception(exc, src_file, dst_file):
    """True if allowlist entry `exc` covers the edge src_file -> dst_file.
    `from`/`to` each name either a src-relative file ("util/thread_pool.cc")
    or a whole layer ("obs")."""

    def matches(spec, relpath):
        bare = relpath.replace(os.sep, "/")
        if bare.startswith("src/"):
            bare = bare[len("src/") :]
        return spec == bare or spec == bare.split("/")[0]

    return matches(exc["from"], src_file) and matches(exc["to"], dst_file)


def pass_layering(tree, cfg):
    """Returns (findings, edges) where edges is
    {(src_layer, dst_layer): {"count": n, "status": ok|exception|violation,
                              "examples": [...]}} for the .dot artifact."""
    findings = []
    layers = cfg.get("layers", {})
    test_only = set(cfg.get("test_only", []))
    exceptions = cfg.get("exceptions", [])
    exception_used = [False] * len(exceptions)

    src_files = {p for p in tree if p.replace(os.sep, "/").startswith("src/")}
    graph = {}  # relpath -> [(target relpath, line)]
    for path in sorted(src_files):
        layer = file_layer(path)
        if layer is None:
            continue
        includes = []
        for target, line in collect_includes(tokenize(tree[path])):
            resolved = "src/" + target
            if resolved in src_files:
                includes.append((resolved, line))
        graph[path] = includes

    edges = {}
    for path in sorted(graph):
        src_layer = file_layer(path)
        if src_layer not in layers:
            findings.append(
                Finding(path, 1, "layering",
                        f"layer {src_layer!r} is not declared in layers.json"))
            continue
        for target, line in graph[path]:
            dst_layer = file_layer(target)
            if dst_layer == src_layer:
                continue
            key = (src_layer, dst_layer)
            entry = edges.setdefault(
                key, {"count": 0, "status": "ok", "examples": []})
            entry["count"] += 1
            if len(entry["examples"]) < 3:
                entry["examples"].append(f"{path}:{line} -> {target}")
            legal = dst_layer in layers.get(src_layer, [])
            if legal and dst_layer in test_only:
                legal = False  # test-only layers are not importable, period
            if legal:
                continue
            excused = False
            for idx, exc in enumerate(exceptions):
                if match_exception(exc, path, target):
                    exception_used[idx] = True
                    excused = True
                    break
            if excused:
                if entry["status"] == "ok":
                    entry["status"] = "exception"
                continue
            if suppressed("layering", tree, path, line):
                continue
            entry["status"] = "violation"
            reason = (
                f"test-only layer '{dst_layer}' included from '{src_layer}'"
                if dst_layer in test_only
                else f"layer '{src_layer}' may not depend on '{dst_layer}'"
            )
            findings.append(
                Finding(path, line, "layering",
                        f"illegal include of {target}: {reason} "
                        "(declare the edge in tools/analyze/layers.json with "
                        "a reason, or break the dependency)"))

    for idx, used in enumerate(exception_used):
        if not used:
            exc = exceptions[idx]
            findings.append(
                Finding("tools/analyze/layers.json", 1, "layering",
                        f"stale allowlist entry {exc['from']} -> {exc['to']}: "
                        "no such edge exists anymore; delete it"))

    findings.extend(find_include_cycles(tree, graph))
    return findings, edges


def find_include_cycles(tree, graph):
    """File-level include cycles via iterative DFS (header guards hide them
    from the compiler; they still mean the layering is lying)."""
    findings = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {p: WHITE for p in graph}
    reported = set()
    for root in sorted(graph):
        if color[root] != WHITE:
            continue
        stack = [(root, iter(graph.get(root, ())))]
        trail = [root]
        color[root] = GRAY
        while stack:
            node, it = stack[-1]
            advanced = False
            for target, line in it:
                if target not in graph:
                    continue
                if color[target] == GRAY:
                    start = trail.index(target)
                    cycle = tuple(sorted(trail[start:]))
                    if cycle not in reported:
                        reported.add(cycle)
                        if not suppressed("include-cycle", tree, node, line):
                            pretty = " -> ".join(trail[start:] + [target])
                            findings.append(
                                Finding(node, line, "include-cycle",
                                        f"include cycle: {pretty}"))
                elif color[target] == WHITE:
                    color[target] = GRAY
                    trail.append(target)
                    stack.append((target, iter(graph.get(target, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                trail.pop()
                stack.pop()
    return findings


def render_dot(cfg, edges):
    """Condensed layer graph, deterministic; checked in next to layers.json
    so reviews see architecture drift as a diff."""
    layers = cfg.get("layers", {})
    test_only = set(cfg.get("test_only", []))
    out = []
    out.append("// GENERATED by tools/analyze/analyze.py --fix; DO NOT EDIT.")
    out.append("// Condensed #include graph over src/, one node per layer.")
    out.append("// Solid: declared-legal edge. Dashed: allowlisted exception")
    out.append("// (see layers.json). Bold red: violation (the gate fails).")
    out.append("digraph dhyfd_layers {")
    out.append("  rankdir=BT;")
    out.append('  node [shape=box, fontname="Helvetica"];')
    for layer in sorted(layers):
        attrs = ""
        if layer in test_only:
            attrs = ' [style=dotted, label="%s\\n(test-only)"]' % layer
        out.append(f'  "{layer}"{attrs};')
    for (src, dst), entry in sorted(edges.items()):
        style = {
            "ok": "",
            "exception": " style=dashed",
            "violation": " style=bold color=red",
        }[entry["status"]]
        out.append(
            f'  "{src}" -> "{dst}" [label="{entry["count"]}"{style}];')
    out.append("}")
    return "\n".join(out) + "\n"


# ------------------------------------------------------ pass 2: obs schema


def mangle(name):
    """Obs name -> schema constant: discover.validator.calls ->
    kObsDiscoverValidatorCalls."""
    return "kObs" + "".join(
        seg.capitalize() for seg in re.split(r"[._]", name))


def pattern_regex(pattern):
    """'*' matches within one dotted segment (mirrors ObsWildcardMatch in
    the generated header)."""
    return re.compile(
        "^" + "".join("[^.]*" if c == "*" else re.escape(c) for c in pattern)
        + "$")


def validate_manifest(manifest):
    findings = []
    seen = set()
    kinds = {"counter", "gauge", "histogram", "span"}
    loc = "tools/analyze/obs_schema.json"
    constants = set()
    for entry in manifest.get("names", []):
        name = entry.get("name", "")
        if name in seen:
            findings.append(Finding(loc, 1, "obs-schema",
                                    f"duplicate schema name {name!r}"))
        seen.add(name)
        if not OBS_NAME_RE.match(name):
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f"schema name {name!r} violates the layer.noun[_verb] "
                        "grammar (obs_grammar.py, shared with "
                        "check_invariants.py)"))
        if entry.get("kind") not in kinds:
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f"schema name {name!r} has unknown kind "
                        f"{entry.get('kind')!r}"))
        const = mangle(name)
        if const in constants:
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f"schema constant collision: {const} (from {name!r})"))
        constants.add(const)
    for entry in manifest.get("patterns", []):
        pat = entry.get("pattern", "")
        if "*" not in pat:
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f"pattern {pat!r} has no wildcard; register it as an "
                        "exact name instead"))
        if entry.get("kind") not in kinds:
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f"pattern {pat!r} has unknown kind "
                        f"{entry.get('kind')!r}"))
        if not entry.get("witness"):
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f"pattern {pat!r} needs a witness literal (the exact "
                        "string the code composes the family from)"))
    return findings


def render_header(manifest):
    """Deterministic C++ header from the manifest. Byte-stable: same manifest
    -> same bytes, so CI can `git diff --exit-code` after regeneration."""
    names = sorted(manifest.get("names", []), key=lambda e: e["name"])
    patterns = sorted(manifest.get("patterns", []), key=lambda e: e["pattern"])
    by_layer = {}
    for entry in names:
        by_layer.setdefault(entry["name"].split(".")[0], []).append(entry)

    out = []
    a = out.append
    a("// GENERATED by tools/analyze/analyze.py --fix; DO NOT EDIT.")
    a("//")
    a("// Canonical observability schema: one constant per registered")
    a("// counter/gauge/histogram/span name. Call sites reference these")
    a("// constants instead of string literals, so a typo'd name is a")
    a("// compile error instead of a silently forked metric series.")
    a("//")
    a("// Source of truth: tools/analyze/obs_schema.json.")
    a("// Regenerate:      python3 tools/analyze/analyze.py --fix")
    a("// Verified by:     tools/analyze/analyze.py (schema pass) in ci.sh")
    a("#ifndef DHYFD_OBS_OBS_SCHEMA_GEN_H_")
    a("#define DHYFD_OBS_OBS_SCHEMA_GEN_H_")
    a("")
    a("#include <cstddef>")
    a("#include <string_view>")
    a("")
    a("namespace dhyfd {")
    for layer in sorted(by_layer):
        a("")
        a(f"// --- {layer} ".ljust(78, "-"))
        for entry in by_layer[layer]:
            decl = f"inline constexpr char {mangle(entry['name'])}[] ="
            lit = f'    "{entry["name"]}";'
            a(decl)
            a(f"{lit}  // {entry['kind']}")
    a("")
    a("/// Every exact schema name, sorted (spans included); the Prometheus")
    a("/// golden test asserts exposition names are a subset of this table")
    a("/// plus the patterns below.")
    a("inline constexpr std::string_view kObsSchemaNames[] = {")
    for entry in names:
        a(f'    "{entry["name"]}",')
    a("};")
    a("")
    a("/// Dynamic name families composed at runtime; '*' matches within one")
    a("/// dotted segment.")
    a("inline constexpr std::string_view kObsSchemaPatterns[] = {")
    for entry in patterns:
        a(f'    "{entry["pattern"]}",  // {entry["kind"]}, witness '
          f'"{entry["witness"]}"')
    a("};")
    a("")
    a("inline constexpr std::size_t kObsSchemaNameCount =")
    a("    sizeof(kObsSchemaNames) / sizeof(kObsSchemaNames[0]);")
    a("")
    a("/// Wildcard match where '*' never crosses a '.' (segment-scoped).")
    a("inline bool ObsWildcardMatch(std::string_view pat,")
    a("                             std::string_view name) {")
    a("  std::size_t p = 0, n = 0;")
    a("  std::size_t star_p = std::string_view::npos, star_n = 0;")
    a("  while (n < name.size()) {")
    a("    if (p < pat.size() && pat[p] != '*' && pat[p] == name[n]) {")
    a("      ++p;")
    a("      ++n;")
    a("    } else if (p < pat.size() && pat[p] == '*') {")
    a("      star_p = p++;")
    a("      star_n = n;")
    a("    } else if (star_p != std::string_view::npos &&")
    a("               name[star_n] != '.') {")
    a("      p = star_p + 1;")
    a("      n = ++star_n;")
    a("    } else {")
    a("      return false;")
    a("    }")
    a("  }")
    a("  while (p < pat.size() && pat[p] == '*') ++p;")
    a("  return p == pat.size();")
    a("}")
    a("")
    a("/// True iff `name` is an exact schema name or matches a pattern.")
    a("inline bool ObsSchemaMatches(std::string_view name) {")
    a("  std::size_t lo = 0, hi = kObsSchemaNameCount;")
    a("  while (lo < hi) {  // kObsSchemaNames is sorted: binary search")
    a("    std::size_t mid = lo + (hi - lo) / 2;")
    a("    if (kObsSchemaNames[mid] == name) return true;")
    a("    if (kObsSchemaNames[mid] < name) {")
    a("      lo = mid + 1;")
    a("    } else {")
    a("      hi = mid;")
    a("    }")
    a("  }")
    a("  for (std::string_view pat : kObsSchemaPatterns) {")
    a("    if (ObsWildcardMatch(pat, name)) return true;")
    a("  }")
    a("  return false;")
    a("}")
    a("")
    a("}  // namespace dhyfd")
    a("")
    a("#endif  // DHYFD_OBS_OBS_SCHEMA_GEN_H_")
    return "\n".join(out) + "\n"


# Idents whose first string/constant argument is an obs name, with the kind
# the usage implies. TraceSpan may carry a declarator ident before '(';
# TraceEvent is brace-initialized.
OBS_SCAN_IDENTS = {
    "ObsAdd": "counter",
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "record_span": "span",
    "TraceSpan": "span",
    "TraceEvent": "span",
}


def scan_obs_usages(tree):
    """(literals, constants, all_strings) where
    literals:  [(path, line, kind, name)] for string-literal call sites
    constants: [(path, line, kind_or_None, const_ident)] for kObs* references
    all_strings: set of every string literal in src/ (witness checks)."""
    literals = []
    constants = []
    all_strings = set()
    gen_rel = GEN_HEADER_REL.replace(os.sep, "/")
    for path in sorted(tree):
        norm = path.replace(os.sep, "/")
        if not norm.startswith("src/") or norm == gen_rel:
            continue
        tokens = tokenize(tree[path])
        # Kind implied for a kObs constant passed as a call's first argument,
        # keyed by that argument's token index (the sweep reaches it later).
        arg_kinds = {}
        for i, tok in enumerate(tokens):
            if tok.kind == "string":
                all_strings.add(str_value(tok))
            if tok.kind != "ident":
                continue
            if tok.text.startswith("kObs"):
                constants.append((path, tok.line, arg_kinds.get(i), tok.text))
                continue
            kind = OBS_SCAN_IDENTS.get(tok.text)
            if kind is None:
                continue
            j = i + 1
            if (tok.text == "TraceSpan" and j < len(tokens)
                    and tokens[j].kind == "ident"):
                j += 1  # declarator: TraceSpan span("...")
            if j >= len(tokens):
                continue
            opener = "{" if tok.text == "TraceEvent" else "("
            if tokens[j].text != opener:
                continue
            j += 1
            if j >= len(tokens):
                continue
            arg = tokens[j]
            if arg.kind == "string":
                literals.append((path, arg.line, kind, str_value(arg)))
            elif arg.kind == "ident" and arg.text.startswith("kObs"):
                # Tag the argument's index so the kObs sweep records the
                # same kind check literals get when it reaches that token.
                arg_kinds[j] = kind
    return literals, constants, all_strings


def pass_schema(tree, manifest, disk_header, disk_header_path=GEN_HEADER_REL):
    findings = list(validate_manifest(manifest))
    loc = "tools/analyze/obs_schema.json"

    exact = {e["name"]: e for e in manifest.get("names", [])}
    patterns = [
        (pattern_regex(e["pattern"]), e) for e in manifest.get("patterns", [])
    ]
    const_to_name = {mangle(n): n for n in exact}

    rendered = render_header(manifest)
    if disk_header is None:
        findings.append(
            Finding(disk_header_path, 1, "obs-schema",
                    "generated header is missing; run analyze.py --fix"))
    elif disk_header != rendered:
        findings.append(
            Finding(disk_header_path, 1, "obs-schema",
                    "generated header is stale (does not match "
                    "obs_schema.json); run analyze.py --fix"))

    literals, constants, all_strings = scan_obs_usages(tree)
    used = set()

    for path, line, kind, name in literals:
        if suppressed("obs-schema", tree, path, line):
            continue
        entry = exact.get(name)
        pat_entry = None
        if entry is None:
            for regex, pe in patterns:
                if regex.match(name):
                    pat_entry = pe
                    break
        if entry is None and pat_entry is None:
            findings.append(
                Finding(path, line, "obs-schema",
                        f'obs name "{name}" is not registered in {loc}; '
                        "add it (and prefer the generated kObs* constant)"))
            continue
        used.add(name)
        expected = (entry or pat_entry)["kind"]
        if expected != kind:
            findings.append(
                Finding(path, line, "obs-schema",
                        f'"{name}" is registered as a {expected} but used '
                        f"as a {kind}"))
        prefix = required_prefix(path)
        if prefix and not name.startswith(prefix):
            findings.append(
                Finding(path, line, "obs-schema",
                        f'obs name "{name}" used under {path.split("/")[1]}/'
                        f'{path.split("/")[1]} must start with "{prefix}"'
                        if False else
                        f'obs name "{name}" used in this subsystem must '
                        f'start with "{prefix}" (obs_grammar.PREFIX_RULES)'))

    for path, line, kind, const in constants:
        if suppressed("obs-schema", tree, path, line):
            continue
        name = const_to_name.get(const)
        if name is None:
            findings.append(
                Finding(path, line, "obs-schema",
                        f"{const} is not a schema constant (no matching "
                        f"name in {loc}); the build would fail too"))
            continue
        used.add(name)
        if kind is not None and exact[name]["kind"] != kind:
            findings.append(
                Finding(path, line, "obs-schema",
                        f'{const} ("{name}") is registered as a '
                        f"{exact[name]['kind']} but used as a {kind}"))
        prefix = required_prefix(path)
        if prefix and not name.startswith(prefix):
            findings.append(
                Finding(path, line, "obs-schema",
                        f'{const} ("{name}") used in this subsystem must '
                        f'start with "{prefix}" (obs_grammar.PREFIX_RULES)'))

    for name in sorted(exact):
        if name not in used:
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f'registered name "{name}" is never referenced in '
                        "src/ (neither as a literal nor via "
                        f"{mangle(name)}); delete it or wire it up"))
    for regex, entry in patterns:
        if entry["witness"] not in all_strings:
            findings.append(
                Finding(loc, 1, "obs-schema",
                        f'pattern "{entry["pattern"]}" witness literal '
                        f'"{entry["witness"]}" does not appear in src/; the '
                        "family is dead or composed differently now"))
    return findings


# ------------------------------------------- pass 3: switch exhaustiveness


def collect_enums(tree):
    """enum name -> list of enumerators, over every file in the tree.
    Name collisions keep the first definition (project enums are unique)."""
    enums = {}
    for path in sorted(tree):
        tokens = tokenize(tree[path])
        i = 0
        n = len(tokens)
        while i < n:
            if not (tokens[i].kind == "ident" and tokens[i].text == "enum"):
                i += 1
                continue
            j = i + 1
            if j < n and tokens[j].text in ("class", "struct"):
                j += 1
            if j >= n or tokens[j].kind != "ident":
                i = j
                continue
            name = tokens[j].text
            j += 1
            while j < n and tokens[j].text not in ("{", ";"):
                j += 1
            if j >= n or tokens[j].text != "{":
                i = j  # forward declaration / opaque enum
                continue
            j += 1
            depth = 1
            values = []
            expect_name = True
            while j < n and depth > 0:
                t = tokens[j]
                if t.text == "{":
                    depth += 1
                elif t.text == "}":
                    depth -= 1
                elif depth == 1:
                    if expect_name and t.kind == "ident":
                        values.append(t.text)
                        expect_name = False
                    elif t.text == ",":
                        expect_name = True
                j += 1
            if name not in enums:
                enums[name] = values
            i = j
    return enums


def pass_exhaustive(tree, exhaustive_names, enums=None):
    if enums is None:
        enums = collect_enums(tree)
    findings = []
    watched = {
        name: set(vals)
        for name, vals in enums.items()
        if name in exhaustive_names
    }
    for name in sorted(exhaustive_names):
        if name not in enums:
            findings.append(
                Finding("tools/analyze/layers.json", 1, "exhaustive",
                        f"exhaustive_enums names {name!r} but no such enum "
                        "is defined anywhere in the tree"))

    for path in sorted(tree):
        if not path.replace(os.sep, "/").startswith("src/"):
            continue
        tokens = tokenize(tree[path])
        n = len(tokens)
        depth = 0
        # Each open switch: [entry_depth, line, {enum: set(values)}, pending]
        stack = []
        i = 0
        while i < n:
            t = tokens[i]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                while stack and depth < stack[-1][0]:
                    entry_depth, line, labels = stack.pop()
                    evaluate_switch(tree, path, line, labels, watched,
                                    findings)
            elif t.kind == "ident" and t.text == "switch":
                # Skip the controlling expression's balanced parens.
                j = i + 1
                if j < n and tokens[j].text == "(":
                    pdepth = 1
                    j += 1
                    while j < n and pdepth > 0:
                        if tokens[j].text == "(":
                            pdepth += 1
                        elif tokens[j].text == ")":
                            pdepth -= 1
                        j += 1
                if j < n and tokens[j].text == "{":
                    stack.append([depth + 1, t.line, {}])
                    depth += 1
                    i = j
            elif t.kind == "ident" and t.text == "case" and stack:
                # Label tokens run until ':' ('::' is a distinct token).
                j = i + 1
                parts = []
                while j < n and tokens[j].text != ":":
                    if tokens[j].kind == "ident":
                        parts.append(tokens[j].text)
                    j += 1
                if len(parts) >= 2:
                    stack[-1][2].setdefault(parts[-2], set()).add(parts[-1])
                i = j
            i += 1
        while stack:  # unbalanced braces (macro trickery): close out
            entry_depth, line, labels = stack.pop()
            evaluate_switch(tree, path, line, labels, watched, findings)
    return findings


def evaluate_switch(tree, path, line, labels, watched, findings):
    for enum_name, present in sorted(labels.items()):
        if enum_name not in watched:
            continue
        missing = sorted(watched[enum_name] - present)
        if not missing:
            continue
        if suppressed("exhaustive", tree, path, line):
            continue
        findings.append(
            Finding(path, line, "exhaustive",
                    f"switch over {enum_name} does not handle: "
                    f"{', '.join(missing)} (a default: label does not "
                    "count — every codec must confront every value)"))


# ------------------------------------------------------------------- driver


def load_tree(root):
    tree = {}
    for scope in ("src",):
        base = os.path.join(root, scope)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames if not d.startswith(".")]
            for fname in sorted(filenames):
                if not fname.endswith(SOURCE_EXTS):
                    continue
                path = os.path.join(dirpath, fname)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8", errors="replace") as f:
                    tree[rel.replace(os.sep, "/")] = f.read()
    return tree


def load_json(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def run(root, config_dir, fix=False, dump_names=False):
    tree = load_tree(root)
    layers_path = os.path.join(config_dir, "layers.json")
    schema_path = os.path.join(config_dir, "obs_schema.json")
    cfg = load_json(layers_path)
    manifest = load_json(schema_path)
    try:
        validate_layer_config(cfg)
    except ValueError as err:
        print(f"{layers_path}: {err}")
        return 1

    if dump_names:
        literals, constants, _ = scan_obs_usages(tree)
        for path, line, kind, name in sorted(literals, key=lambda u: u[3]):
            print(f"{kind:9s} {name:40s} {path}:{line}")
        return 0

    findings = []

    # Pass 1: layering + dot artifact.
    layer_findings, edges = pass_layering(tree, cfg)
    findings.extend(layer_findings)
    dot_path = os.path.join(config_dir, DOT_NAME)
    rendered_dot = render_dot(cfg, edges)
    disk_dot = None
    if os.path.exists(dot_path):
        with open(dot_path, encoding="utf-8") as f:
            disk_dot = f.read()
    if fix:
        if disk_dot != rendered_dot:
            with open(dot_path, "w", encoding="utf-8") as f:
                f.write(rendered_dot)
            print(f"analyze --fix: wrote {dot_path}")
    elif disk_dot != rendered_dot:
        findings.append(
            Finding(os.path.relpath(dot_path, root), 1, "layering",
                    "include_graph.dot is stale; run analyze.py --fix"))

    # Pass 2: obs schema + generated header.
    header_path = os.path.join(root, GEN_HEADER_REL)
    disk_header = None
    if os.path.exists(header_path):
        with open(header_path, encoding="utf-8") as f:
            disk_header = f.read()
    if fix:
        rendered = render_header(manifest)
        if disk_header != rendered:
            os.makedirs(os.path.dirname(header_path), exist_ok=True)
            with open(header_path, "w", encoding="utf-8") as f:
                f.write(rendered)
            print(f"analyze --fix: wrote {header_path}")
        disk_header = rendered
    findings.extend(pass_schema(tree, manifest, disk_header))

    # Pass 3: switch exhaustiveness.
    findings.extend(pass_exhaustive(tree, set(cfg.get("exhaustive_enums", []))))

    for f in findings:
        print(f)
    if findings:
        print(f"analyze: {len(findings)} finding(s)")
        return 1
    print("analyze: OK (layering + obs schema + exhaustiveness)")
    return 0


# ---------------------------------------------------------------- self-test


def selftest_layer_cfg():
    return {
        "layers": {"util": [], "mid": ["util"], "top": ["util", "mid"]},
        "test_only": ["datagen"],
        "exceptions": [],
    }


def _lay(tree, cfg=None):
    return pass_layering(tree, cfg or selftest_layer_cfg())[0]


def _schema(tree, manifest, header="RENDERED"):
    disk = render_header(manifest) if header == "RENDERED" else header
    return pass_schema(tree, manifest, disk)


def _exh(tree, names):
    return pass_exhaustive(tree, set(names))


BASIC_MANIFEST = {
    "names": [{"name": "mid.widgets", "kind": "counter"}],
    "patterns": [],
}

# (label, callable, expected finding count, expected rules)
FIXTURES = [
    # -- pass 1: layering ---------------------------------------------------
    ("layering: upward include fires with provenance",
     lambda: _lay({
         "src/util/a.h": "#pragma once\n#include \"top/b.h\"\n",
         "src/top/b.h": "#pragma once\n",
     }), 1, {"layering"}),
    ("layering: downward include passes",
     lambda: _lay({
         "src/top/b.cc": "#include \"util/a.h\"\n#include \"mid/m.h\"\n",
         "src/util/a.h": "#pragma once\n",
         "src/mid/m.h": "#pragma once\n",
     }), 0, set()),
    ("layering: allowlisted exception passes, stale entry fires",
     lambda: _lay({
         "src/util/a.cc": "#include \"mid/m.h\"\n",
         "src/mid/m.h": "#pragma once\n",
     }, {
         "layers": {"util": [], "mid": ["util"]},
         "test_only": [],
         "exceptions": [
             {"from": "util/a.cc", "to": "mid", "reason": "test"},
             {"from": "mid", "to": "top", "reason": "stale"},
         ],
     }), 1, {"layering"}),
    ("layering: test-only layer import fires",
     lambda: _lay({
         "src/mid/m.cc": "#include \"datagen/gen.h\"\n",
         "src/datagen/gen.h": "#pragma once\n",
     }, {
         "layers": {"mid": ["datagen"], "datagen": []},
         "test_only": ["datagen"],
         "exceptions": [],
     }), 1, {"layering"}),
    ("layering: synthetic include cycle detected",
     lambda: _lay({
         "src/mid/a.h": "#include \"mid/b.h\"\n",
         "src/mid/b.h": "#include \"mid/c.h\"\n",
         "src/mid/c.h": "#include \"mid/a.h\"\n",
     }), 1, {"include-cycle"}),
    ("layering: analyze-allow suppression honored",
     lambda: _lay({
         "src/util/a.cc":
             "#include \"mid/m.h\"  // analyze-allow: layering\n",
         "src/mid/m.h": "#pragma once\n",
     }), 0, set()),
    # -- pass 2: obs schema -------------------------------------------------
    ("schema: registered literal passes; usage recorded",
     lambda: _schema({
         "src/mid/m.cc": 'void f() { ObsAdd("mid.widgets"); }\n',
     }, BASIC_MANIFEST), 0, set()),
    ("schema: unregistered literal fires",
     lambda: _schema({
         "src/mid/m.cc":
             'void f() { ObsAdd("mid.widgets"); ObsAdd("mid.wigdets"); }\n',
     }, BASIC_MANIFEST), 1, {"obs-schema"}),
    ("schema: literal in a comment or string soup is ignored",
     lambda: _schema({
         "src/mid/m.cc":
             '// ObsAdd("not.a.counter")\n'
             '/* counter("also.not") */\n'
             'void f() { ObsAdd("mid.widgets"); }\n',
     }, BASIC_MANIFEST), 0, set()),
    ("schema: registered-but-never-referenced drift fires",
     lambda: _schema({
         "src/mid/m.cc": 'void f() { ObsAdd("mid.widgets"); }\n',
     }, {
         "names": [
             {"name": "mid.widgets", "kind": "counter"},
             {"name": "mid.orphans", "kind": "counter"},
         ],
         "patterns": [],
     }), 1, {"obs-schema"}),
    ("schema: kind mismatch fires (counter used as histogram)",
     lambda: _schema({
         "src/mid/m.cc": 'void f() { h.histogram("mid.widgets"); }\n',
     }, BASIC_MANIFEST), 1, {"obs-schema"}),
    ("schema: bad grammar in manifest fires",
     lambda: _schema({
         "src/mid/m.cc": 'void f() { ObsAdd("BadName"); }\n',
     }, {
         "names": [{"name": "BadName", "kind": "counter"}],
         "patterns": [],
     }), 1, {"obs-schema"}),
    ("schema: constant reference counts as usage; unknown constant fires",
     lambda: _schema({
         "src/mid/m.cc":
             "void f() { ObsAdd(kObsMidWidgets); ObsAdd(kObsMidWigdets); }\n",
     }, BASIC_MANIFEST), 1, {"obs-schema"}),
    ("schema: pattern matches dynamic family; witness enforced",
     lambda: _schema({
         "src/mid/m.cc":
             'void f() { m.histogram("mid.rpc.a.ok_seconds");\n'
             '  std::string n = std::string("mid.rpc.") + t; }\n',
     }, {
         "names": [],
         "patterns": [{"pattern": "mid.rpc.*.*_seconds",
                       "kind": "histogram", "witness": "mid.rpc."}],
     }), 0, set()),
    ("schema: missing witness literal fires",
     lambda: _schema({
         "src/mid/m.cc": "void f() {}\n",
     }, {
         "names": [],
         "patterns": [{"pattern": "mid.rpc.*.*_seconds",
                       "kind": "histogram", "witness": "mid.rpc."}],
     }), 1, {"obs-schema"}),
    ("schema: net. prefix rule applies to constants too",
     lambda: _schema({
         "src/net/m.cc": "void f() { ObsAdd(kObsMidWidgets); }\n",
     }, BASIC_MANIFEST), 1, {"obs-schema"}),
    ("schema: stale generated header fires",
     lambda: _schema({
         "src/mid/m.cc": 'void f() { ObsAdd("mid.widgets"); }\n',
     }, BASIC_MANIFEST, header="// stale bytes\n"), 1, {"obs-schema"}),
    # -- pass 3: exhaustiveness ---------------------------------------------
    ("exhaustive: missing enumerator fires (default does not excuse)",
     lambda: _exh({
         "src/mid/m.cc":
             "enum class Color { kRed, kGreen, kBlue };\n"
             "int f(Color c) { switch (c) {\n"
             "  case Color::kRed: return 1;\n"
             "  default: return 0;\n"
             "} }\n",
     }, {"Color"}), 1, {"exhaustive"}),
    ("exhaustive: full coverage passes",
     lambda: _exh({
         "src/mid/m.cc":
             "enum class Color { kRed, kGreen, kBlue };\n"
             "int f(Color c) { switch (c) {\n"
             "  case Color::kRed: return 1;\n"
             "  case Color::kGreen:\n"
             "  case Color::kBlue: return 2;\n"
             "} return 0; }\n",
     }, {"Color"}), 0, set()),
    ("exhaustive: unwatched enums are out of scope",
     lambda: _exh({
         "src/mid/m.cc":
             "enum class Other { kA, kB };\n"
             "int f(Other o) { switch (o) { case Other::kA: return 1; "
             "default: return 0; } }\n",
     }, {"Color"}), 1, {"exhaustive"}),  # config names a missing enum
    ("exhaustive: nested switches attribute cases correctly",
     lambda: _exh({
         "src/mid/m.cc":
             "enum class A { kX, kY };\n"
             "enum class B { kP, kQ };\n"
             "int f(A a, B b) { switch (a) {\n"
             "  case A::kX:\n"
             "    switch (b) { case B::kP: case B::kQ: return 1; }\n"
             "    return 2;\n"
             "  case A::kY: return 3;\n"
             "} return 0; }\n",
     }, {"A", "B"}), 0, set()),
    ("exhaustive: suppression on the switch line passes",
     lambda: _exh({
         "src/mid/m.cc":
             "enum class Color { kRed, kGreen };\n"
             "int f(Color c) { switch (c) {  // analyze-allow: exhaustive\n"
             "  case Color::kRed: return 1;\n"
             "} return 0; }\n",
     }, {"Color"}), 0, set()),
    ("exhaustive: switch-in-string and comment are ignored",
     lambda: _exh({
         "src/mid/m.cc":
             "enum class Color { kRed, kGreen };\n"
             '// switch (c) { case Color::kRed: break; }\n'
             'const char* s = "switch (c) { case Color::kRed: }";\n'
             "int f(Color c) { switch (c) {\n"
             "  case Color::kRed:\n"
             "  case Color::kGreen: return 1;\n"
             "} return 0; }\n",
     }, {"Color"}), 0, set()),
]


def self_test():
    failures = 0
    for label, thunk, expected, rules in FIXTURES:
        got = thunk()
        got_rules = {f.rule for f in got}
        ok = len(got) == expected and (not rules or rules == got_rules)
        if not ok:
            failures += 1
        print(f"[{'ok' if ok else 'FAIL'}] {label}: expected {expected} "
              f"finding(s), got {len(got)}")
        if not ok:
            for f in got:
                print(f"       {f}")
    # Provenance spot-check: the layering fixture reports file:line.
    prov = _lay({
        "src/util/a.h": "#pragma once\n#include \"top/b.h\"\n",
        "src/top/b.h": "#pragma once\n",
    })
    if not (prov and prov[0].path == "src/util/a.h" and prov[0].line_no == 2):
        failures += 1
        print("[FAIL] layering provenance: expected src/util/a.h:2, got "
              f"{prov[0].path}:{prov[0].line_no}" if prov else "no finding")
    else:
        print("[ok] layering provenance: src/util/a.h:2")
    # The python wildcard matcher mirrors the generated C++ matcher.
    checks = [
        ("net.rpc.*.*_seconds", "net.rpc.submit_query.ok_seconds", True),
        ("net.rpc.*.*_seconds", "net.rpc.queue_seconds", False),
        ("stage.*_seconds", "stage.encode_seconds", True),
        ("stage.*_seconds", "stage.encode.seconds", False),
    ]
    for pat, name, want in checks:
        got_match = pattern_regex(pat).match(name) is not None
        if got_match != want:
            failures += 1
        print(f"[{'ok' if got_match == want else 'FAIL'}] wildcard "
              f"{pat!r} vs {name!r} -> {got_match}")
    if failures:
        print(f"self-test: {failures} fixture(s) failed")
        return 1
    print(f"self-test: all {len(FIXTURES)} fixtures + provenance + wildcard "
          "checks passed")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--config", default=None,
                        help="directory holding layers.json + obs_schema.json "
                             "(default: this script's directory)")
    parser.add_argument("--fix", action="store_true",
                        help="regenerate obs_schema.gen.h and "
                             "include_graph.dot instead of reporting drift")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule fixtures instead of analyzing")
    parser.add_argument("--dump-names", action="store_true",
                        help="print every scanned obs name literal (dev aid)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))
    config_dir = args.config or here
    return run(root, config_dir, fix=args.fix, dump_names=args.dump_names)


if __name__ == "__main__":
    sys.exit(main())
