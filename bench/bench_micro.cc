// Micro-benchmarks (google-benchmark) for the hot primitives: stripped-
// partition construction/refinement/intersection, FD-tree operations,
// synergized induction, attribute closure, and agree-set extraction.
#include <benchmark/benchmark.h>

#include "bench_util.h"

#include "algo/agree_sets.h"
#include "algo/discovery.h"
#include "datagen/benchmark_data.h"
#include "fd/closure.h"
#include "fdtree/extended_fd_tree.h"
#include "fdtree/fd_tree.h"
#include "partition/partition_ops.h"
#include "relation/encoder.h"
#include "util/random.h"
#include "util/timer.h"

namespace dhyfd {
namespace {

Relation MakeRelation(int rows, int cols, int domain, uint64_t seed) {
  Random rng(seed);
  Relation r(Schema::numbered(cols), rows);
  for (int c = 0; c < cols; ++c) {
    for (RowId i = 0; i < rows; ++i) {
      r.set_value(i, c, static_cast<ValueId>(rng.next_below(domain)));
    }
    r.set_domain_size(c, domain);
  }
  return r;
}

void BM_BuildAttributePartition(benchmark::State& state) {
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 4, 64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildAttributePartition(r, 0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildAttributePartition)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RefinePartition(benchmark::State& state) {
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 4, 64, 2);
  PartitionRefiner refiner(r);
  StrippedPartition p = BuildAttributePartition(r, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(refiner.refine(p, 1));
  }
  state.SetItemsProcessed(state.iterations() * p.support());
}
BENCHMARK(BM_RefinePartition)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RefineInplace(benchmark::State& state) {
  // The double-buffered steady-state path: a fresh copy is refined in place
  // each iteration, so the refiner's arena capacity is reused throughout.
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 4, 64, 2);
  PartitionRefiner refiner(r);
  StrippedPartition base = BuildAttributePartition(r, 0);
  StrippedPartition p;
  for (auto _ : state) {
    p = base;
    refiner.refine_inplace(p, 1);
    benchmark::DoNotOptimize(p.error());
  }
  state.SetItemsProcessed(state.iterations() * base.support());
}
BENCHMARK(BM_RefineInplace)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_RefineSingleCluster(benchmark::State& state) {
  // Algorithm 4's validator primitive: split one big class by an attribute.
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 4, 64, 2);
  PartitionRefiner refiner(r);
  StrippedPartition whole = StrippedPartition::whole(r.num_rows());
  StrippedPartition out;
  for (auto _ : state) {
    out.clear();
    refiner.refine_cluster(whole.cluster(0), 1, out);
    benchmark::DoNotOptimize(out.support());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RefineSingleCluster)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IntersectPartitions(benchmark::State& state) {
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 4, 64, 3);
  StrippedPartition a = BuildAttributePartition(r, 0);
  StrippedPartition b = BuildAttributePartition(r, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectPartitions(a, b, r.num_rows()));
  }
  state.SetItemsProcessed(state.iterations() * r.num_rows());
}
BENCHMARK(BM_IntersectPartitions)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IntersectPersistent(benchmark::State& state) {
  // TANE's steady-state path: the probe table and output arena persist.
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 4, 64, 3);
  StrippedPartition a = BuildAttributePartition(r, 0);
  StrippedPartition b = BuildAttributePartition(r, 1);
  PartitionIntersector intersector(r.num_rows());
  StrippedPartition out;
  for (auto _ : state) {
    intersector.intersect(a, b, out);
    benchmark::DoNotOptimize(out.error());
  }
  state.SetItemsProcessed(state.iterations() * r.num_rows());
}
BENCHMARK(BM_IntersectPersistent)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_AgreeSets(benchmark::State& state) {
  Relation r = MakeRelation(static_cast<int>(state.range(0)), 10, 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeAllAgreeSets(r));
  }
  int64_t pairs = static_cast<int64_t>(state.range(0)) * (state.range(0) - 1) / 2;
  state.SetItemsProcessed(state.iterations() * pairs);
}
BENCHMARK(BM_AgreeSets)->Arg(200)->Arg(1000)->Arg(3000);

void BM_SynergizedInduction(benchmark::State& state) {
  // Induct a stream of random non-FDs into a fresh extended tree.
  const int m = 20;
  Random rng(5);
  std::vector<AttributeSet> non_fds;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    AttributeSet x;
    for (int a = 0; a < m; ++a) {
      if (rng.next_bool(0.6)) x.set(a);
    }
    non_fds.push_back(x);
  }
  SortBySizeDescending(non_fds);
  const AttributeSet all = AttributeSet::full(m);
  for (auto _ : state) {
    ExtendedFdTree tree(m);
    tree.init_root_fd(all);
    for (const AttributeSet& x : non_fds) tree.induct(x, all - x);
    benchmark::DoNotOptimize(tree.total_fd_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SynergizedInduction)->Arg(100)->Arg(500)->Arg(2000);

void BM_ClassicInduction(benchmark::State& state) {
  const int m = 20;
  Random rng(5);
  std::vector<AttributeSet> non_fds;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    AttributeSet x;
    for (int a = 0; a < m; ++a) {
      if (rng.next_bool(0.6)) x.set(a);
    }
    non_fds.push_back(x);
  }
  SortBySizeDescending(non_fds);
  const AttributeSet all = AttributeSet::full(m);
  for (auto _ : state) {
    FdTree tree(m);
    for (AttrId a = 0; a < m; ++a) tree.add(AttributeSet(), a);
    for (const AttributeSet& x : non_fds) {
      (all - x).for_each([&](AttrId a) { tree.induct(x, a); });
    }
    benchmark::DoNotOptimize(tree.node_count());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ClassicInduction)->Arg(100)->Arg(500)->Arg(2000);

void BM_Closure(benchmark::State& state) {
  const int m = 30;
  Random rng(6);
  FdSet fds;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    AttributeSet lhs;
    for (int k = 0; k < 3; ++k) lhs.set(static_cast<AttrId>(rng.next_below(m)));
    fds.add(Fd(lhs, static_cast<AttrId>(rng.next_below(m))));
  }
  ClosureEngine engine(fds, m);
  AttributeSet x{0, 5, 10};
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.closure(x));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Closure)->Arg(100)->Arg(1000)->Arg(10000);

void BM_EndToEndDhyfdNcvoter(benchmark::State& state) {
  RawTable t = GenerateBenchmark("ncvoter", static_cast<int>(state.range(0)));
  Relation r = EncodeRelation(t).relation;
  for (auto _ : state) {
    auto algo = MakeDiscovery("dhyfd");
    benchmark::DoNotOptimize(algo->discover(r).fds.size());
  }
}
BENCHMARK(BM_EndToEndDhyfdNcvoter)->Arg(500)->Arg(1000)->Unit(benchmark::kMillisecond);

// Stamped JSON rows for the partition kernels, so the refine/intersect
// trajectory is tracked across commits alongside the google-benchmark
// human-readable output. One row per kernel x row-count.
void EmitPartitionKernelJson() {
  constexpr int kRows[] = {10000, 100000};
  constexpr int kReps = 20;
  for (int rows : kRows) {
    Relation r = MakeRelation(rows, 4, 64, 2);
    PartitionRefiner refiner(r);
    PartitionIntersector intersector(r.num_rows());
    StrippedPartition base = BuildAttributePartition(r, 0);
    StrippedPartition pb = BuildAttributePartition(r, 1);
    StrippedPartition scratch;

    auto time_ns = [](auto&& fn) {
      Timer t;
      for (int i = 0; i < kReps; ++i) fn();
      return t.seconds() * 1e9 / kReps;
    };
    double build_ns = time_ns([&] {
      benchmark::DoNotOptimize(BuildAttributePartition(r, 0));
    });
    double refine_cluster_ns = time_ns([&] {
      StrippedPartition whole = StrippedPartition::whole(r.num_rows());
      scratch.clear();
      refiner.refine_cluster(whole.cluster(0), 1, scratch);
      benchmark::DoNotOptimize(scratch.support());
    });
    double refine_ns = time_ns([&] {
      StrippedPartition p = base;
      refiner.refine_inplace(p, 1);
      benchmark::DoNotOptimize(p.error());
    });
    double intersect_ns = time_ns([&] {
      intersector.intersect(base, pb, scratch);
      benchmark::DoNotOptimize(scratch.error());
    });
    std::printf(
        "{\"bench\":\"micro_partition\",%s,\"rows\":%d,"
        "\"attr_build_ns\":%.0f,\"refine_cluster_ns\":%.0f,"
        "\"refine_ns\":%.0f,\"intersect_ns\":%.0f,"
        "\"partition_bytes\":%zu}\n",
        bench::JsonStamp("synthetic-u64").c_str(), rows, build_ns,
        refine_cluster_ns, refine_ns, intersect_ns, base.memory_bytes());
  }
  std::fflush(stdout);
}

}  // namespace
}  // namespace dhyfd

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dhyfd::EmitPartitionKernelJson();
  return 0;
}
