// Incremental maintenance vs full re-profiling over a live relation: a
// batch-size x churn grid. Each cell streams the same update workload twice
// through a LiveProfile — once incrementally (insert induction + delete
// generalization + DDM-style rebuild fallback), once forcing a compact +
// full DHyFD re-run per batch — and reports mean per-batch latency and the
// speedup. Small batches are where incremental maintenance must win; heavy
// churn is where the rebuild fallback is allowed to take over.
//
// Flags: --rows=N --ops=N --batch_sizes=1,8,64,256
//        --delete_fractions=0,0.25,0.5 --seed=N
//        --trace=<file> (Chrome trace JSON) --metrics=<file> (Prometheus)
#include "bench_util.h"

#include "datagen/update_stream.h"
#include "incr/live_profile.h"

namespace dhyfd::bench {
namespace {

DatasetSpec BaseSpec(uint64_t seed) {
  DatasetSpec s;
  s.name = "live";
  s.seed = seed;
  ColumnSpec key{.name = "k", .kind = ColumnKind::kKey};
  ColumnSpec s3{.name = "s", .kind = ColumnKind::kRandom, .domain_size = 4};
  ColumnSpec m1{.name = "m1", .kind = ColumnKind::kRandom, .domain_size = 16};
  ColumnSpec m2{.name = "m2", .kind = ColumnKind::kRandom, .domain_size = 32};
  ColumnSpec d1{.name = "d1", .kind = ColumnKind::kDerived, .domain_size = 24};
  d1.parents = {1, 2};
  ColumnSpec d2{.name = "d2", .kind = ColumnKind::kDerived, .domain_size = 48};
  d2.parents = {3};
  s.columns = {key, s3, m1, m2, d1, d2};
  s.duplicate_row_rate = 0.05;
  s.near_duplicate_rate = 0.1;
  return s;
}

struct CellResult {
  double incr_ms_per_batch = 0;
  double full_ms_per_batch = 0;
  int64_t rebuilds = 0;
  int64_t fds_final = 0;
  int batches = 0;
};

CellResult RunCell(const UpdateStreamSpec& spec) {
  UpdateStream stream = GenerateUpdateStream(spec);
  CellResult out;
  out.batches = static_cast<int>(stream.batches.size());

  {
    LiveProfile incr(stream.initial);
    for (const UpdateBatch& b : stream.batches) {
      out.incr_ms_per_batch += incr.apply(b).stats.seconds * 1e3;
    }
    out.incr_ms_per_batch /= out.batches;
    out.rebuilds = incr.rebuild_count();
    out.fds_final = incr.cover().size();
  }
  {
    LiveProfile full(stream.initial);
    for (const UpdateBatch& b : stream.batches) {
      out.full_ms_per_batch += full.apply(b, ApplyMode::kFullRerun).stats.seconds * 1e3;
    }
    out.full_ms_per_batch /= out.batches;
  }
  return out;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  int initial_rows = flags.get_int("rows", 2000);
  int total_ops = flags.get_int("ops", 1024);
  uint64_t seed = static_cast<uint64_t>(flags.get_int("seed", 17));
  std::vector<std::string> batch_sizes =
      flags.get_list("batch_sizes", {"1", "8", "64", "256"});
  std::vector<std::string> delete_fractions =
      flags.get_list("delete_fractions", {"0", "0.25", "0.5"});

  PrintHeader("Incremental maintenance",
              "Per-batch latency of incremental cover maintenance vs a full "
              "compact+re-discover per batch, over a batch-size x churn "
              "grid (same total update count per cell). speedup > 1 means "
              "incremental wins; the rebuilds column shows how often the "
              "cost-ratio / tombstone fallback fired.");

  std::printf("%10s %10s %8s %12s %12s %8s %8s %6s\n", "batch", "del_frac",
              "batches", "incr_ms/b", "full_ms/b", "speedup", "rebuilds", "#FD");
  PrintRule(80);

  for (const std::string& bs : batch_sizes) {
    for (const std::string& df : delete_fractions) {
      UpdateStreamSpec spec;
      spec.base = BaseSpec(seed);
      spec.initial_rows = initial_rows;
      spec.batch_size = std::atoi(bs.c_str());
      spec.num_batches = total_ops / spec.batch_size;
      if (spec.num_batches < 1) spec.num_batches = 1;
      spec.delete_fraction = std::atof(df.c_str());
      spec.seed = seed + 1;

      CellResult cell = RunCell(spec);
      double speedup = cell.incr_ms_per_batch > 0
                           ? cell.full_ms_per_batch / cell.incr_ms_per_batch
                           : 0;
      std::printf("%10s %10s %8d %12.3f %12.3f %8.1f %8lld %6lld\n", bs.c_str(),
                  df.c_str(), cell.batches, cell.incr_ms_per_batch,
                  cell.full_ms_per_batch, speedup,
                  static_cast<long long>(cell.rebuilds),
                  static_cast<long long>(cell.fds_final));
      std::printf(
          "{\"bench\":\"incremental\",%s,\"batch_size\":%s,"
          "\"delete_fraction\":%s,\"batches\":%d,\"incr_ms_per_batch\":%.3f,"
          "\"full_ms_per_batch\":%.3f,\"speedup\":%.2f,\"rebuilds\":%lld,"
          "\"fds\":%lld}\n",
          JsonStamp(spec.base.name).c_str(), bs.c_str(), df.c_str(),
          cell.batches, cell.incr_ms_per_batch, cell.full_ms_per_batch, speedup,
          static_cast<long long>(cell.rebuilds),
          static_cast<long long>(cell.fds_final));
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
