// Reproduces Table IV: data redundancy per data set — #values, #red
// (redundant occurrences excluding null markers), %red, #red+0 (including
// nulls), %red+0 — computed from the canonical cover, as in the paper.
//
// Flags: --datasets=a,b  --rows=N  --tl=SECONDS (default 30)
#include "bench_util.h"

#include "fd/cover.h"
#include "ranking/redundancy.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 30.0);
  int64_t max_cover = flags.get_int("max_cover", 100000);
  std::vector<std::string> datasets;
  for (const std::string& name : BenchmarkNames()) {
    if (FindBenchmark(name)->has_table4) datasets.push_back(name);
  }
  datasets = flags.get_list("datasets", datasets);

  PrintHeader("Table IV",
              "Data redundancy of the canonical cover. #red excludes "
              "occurrences that are null markers; #red+0 includes them. "
              "Complete data sets report only #red (both are equal).");

  std::printf("%-11s %-9s %13s %12s %7s %12s %8s\n", "dataset", "", "#values",
              "#red", "%red", "#red+0", "%red+0");
  PrintRule(80);
  for (const std::string& name : datasets) {
    const BenchmarkInfo* info = FindBenchmark(name);
    if (info == nullptr || !info->has_table4) continue;
    const PaperTable4& p = info->t4;
    if (p.red_plus0 >= 0) {
      std::printf("%-11s %-9s %13lld %12lld %7.2f %12lld %8.2f\n", name.c_str(),
                  "paper", p.values, p.red, p.pct_red, p.red_plus0, p.pct_red_plus0);
    } else {
      std::printf("%-11s %-9s %13lld %12lld %7.2f %12s %8s\n", name.c_str(), "paper",
                  p.values, p.red, p.pct_red, "-", "-");
    }
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    DiscoveryResult res = MakeDiscovery("dhyfd", tl)->discover(r);
    if (res.stats.timed_out) {
      std::printf("%-11s %-9s discovery TL\n", "", "measured");
    } else if (max_cover > 0 && res.fds.size() > max_cover) {
      std::printf("%-11s %-9s skipped: %lld FDs exceed --max_cover=%lld\n", "",
                  "measured", static_cast<long long>(res.fds.size()),
                  static_cast<long long>(max_cover));
    } else {
      FdSet canonical = CanonicalCover(res.fds, r.num_cols());
      DatasetRedundancy d = ComputeDatasetRedundancy(r, canonical);
      std::printf("%-11s %-9s %13lld %12lld %7.2f %12lld %8.2f\n", "", "measured",
                  static_cast<long long>(d.num_values), static_cast<long long>(d.red),
                  d.percent_red(), static_cast<long long>(d.red_plus0),
                  d.percent_red_plus0());
    }
    PrintRule(80);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
