// Top-k query engine: how much discovery work does the rank cutoff save?
//
// Sweeps a k x epsilon grid over one benchmark dataset and reports, per
// cell, the validations performed and the pruning counters. The acceptance
// shape: within a fixed epsilon column, validations shrink monotonically as
// k tightens — the admissible score bound terminates the lattice walk
// earlier the higher the heap floor sits.
//
// The sweep stays on the top-k lattice path (k > 0) so validation counts
// are like-for-like; k=0 routes to the hybrid sampler whose validation
// accounting is not comparable (it counts refinement batches, not lattice
// candidates).
//
// Emits one {"bench":"topk",...} JSON row per cell on stdout; fold into
// BENCH_topk.json with tools/bench_distill.py.
//
// Flags: --dataset=weather --rows=3000 --ks=1,2,4,8,16,64 --eps=0,0.01,0.05
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_util.h"
#include "query/engine.h"

namespace dhyfd::bench {
namespace {

struct Cell {
  std::uint32_t k = 0;
  double epsilon = 0;
  QueryStats stats;
  std::size_t fds = 0;
};

Cell RunCell(const Relation& r, std::uint32_t k, double epsilon) {
  DiscoveryQuery q;
  q.top_k = k;
  q.epsilon = epsilon;
  QueryResult res = QueryEngine().execute(r, q);
  Cell cell;
  cell.k = k;
  cell.epsilon = epsilon;
  cell.stats = res.stats;
  cell.fds = res.fds.size();
  return cell;
}

void PrintJsonRow(const std::string& dataset, const Relation& r,
                  const Cell& c) {
  std::printf(
      "{\"bench\":\"topk\",%s,\"rows\":%d,\"cols\":%d,\"k\":%u,"
      "\"epsilon\":%g,\"fds\":%zu,\"validations\":%lld,"
      "\"pruned_epsilon\":%lld,\"pruned_arity\":%lld,\"pruned_bound\":%lld,"
      "\"levels\":%d,\"early_terminated\":%s,\"seconds\":%.4f}\n",
      JsonStamp(dataset).c_str(), r.num_rows(), r.num_cols(), c.k, c.epsilon,
      c.fds, static_cast<long long>(c.stats.validations),
      static_cast<long long>(c.stats.pruned_epsilon),
      static_cast<long long>(c.stats.pruned_arity),
      static_cast<long long>(c.stats.pruned_bound), c.stats.levels,
      c.stats.early_terminated ? "true" : "false", c.stats.seconds);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  PrintHeader("Top-k query pruning",
              "Validations per k x epsilon cell. Reading: within an epsilon "
              "column, validations must fall monotonically as k shrinks — "
              "the heap floor rises faster, so the score bound terminates "
              "the lattice walk earlier.");

  const std::string dataset = flags.get_str("dataset", "weather");
  Relation r = LoadBenchmark(dataset, flags.get_int("rows", 3000));
  std::printf("dataset=%s rows=%d cols=%d\n\n", dataset.c_str(), r.num_rows(),
              r.num_cols());

  std::vector<std::uint32_t> ks;
  for (const std::string& s :
       flags.get_list("ks", {"1", "2", "4", "8", "16", "64"}))
    ks.push_back(static_cast<std::uint32_t>(std::atoi(s.c_str())));
  std::vector<double> epsilons;
  for (const std::string& s : flags.get_list("eps", {"0", "0.01", "0.05"}))
    epsilons.push_back(std::atof(s.c_str()));

  std::printf("%8s %8s | %12s %12s %12s %6s %5s %8s\n", "k", "eps",
              "validations", "pruned_bound", "pruned_eps", "fds", "early",
              "time_s");
  PrintRule(80);
  std::vector<Cell> cells;
  for (double eps : epsilons) {
    for (std::uint32_t k : ks) {
      Cell c = RunCell(r, k, eps);
      cells.push_back(c);
      std::printf("%8u %8g | %12lld %12lld %12lld %6zu %5s %8.3f\n", c.k,
                  c.epsilon, static_cast<long long>(c.stats.validations),
                  static_cast<long long>(c.stats.pruned_bound),
                  static_cast<long long>(c.stats.pruned_epsilon), c.fds,
                  c.stats.early_terminated ? "yes" : "no", c.stats.seconds);
      std::fflush(stdout);
    }
    PrintRule(80);
  }

  // Machine-readable rows, then a self-check of the acceptance shape:
  // within each epsilon, validations non-increasing as k decreases.
  std::printf("\n");
  for (const Cell& c : cells) PrintJsonRow(dataset, r, c);
  bool monotone = true;
  for (double eps : epsilons) {
    std::int64_t prev = -1;
    // ks runs largest-work-first only if sorted; compare by k descending
    // (treating 0 = unbounded as the largest).
    std::vector<Cell> col;
    for (const Cell& c : cells)
      if (c.epsilon == eps) col.push_back(c);
    std::sort(col.begin(), col.end(), [](const Cell& a, const Cell& b) {
      std::uint64_t ka = a.k == 0 ? ~0ull : a.k;
      std::uint64_t kb = b.k == 0 ? ~0ull : b.k;
      return ka > kb;
    });
    for (const Cell& c : col) {
      if (prev >= 0 && c.stats.validations > prev) {
        monotone = false;
        std::printf("NON-MONOTONE: eps=%g k=%u validations=%lld > %lld\n",
                    eps, c.k, static_cast<long long>(c.stats.validations),
                    static_cast<long long>(prev));
      }
      prev = c.stats.validations;
    }
  }
  std::printf("\nmonotone(validations non-increasing as k tightens): %s\n",
              monotone ? "yes" : "NO");
  return monotone ? 0 : 1;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
