// Reproduces the Section V-B null-semantics comparison: discovery runtime
// and FD counts under null = null vs null != null. The paper reports that
// null != null tends to exhibit more FDs and hence longer runtimes,
// especially on larger data sets, with the same algorithm ranking.
//
// Flags: --datasets=a,b  --rows=N  --tl=SECONDS (default 20) --algos=...
#include "bench_util.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 12.0);
  std::vector<std::string> datasets = flags.get_list(
      "datasets", {"bridges", "echo", "hepatitis", "horse", "ncvoter", "diabetic",
                   "weather", "uniprot"});
  std::vector<std::string> algos =
      flags.get_list("algos", {"fdep2", "hyfd", "dhyfd"});

  PrintHeader("Null semantics (Section V-B)",
              "Runtime (s) and #FD under null = null vs null != null. Paper: "
              "null != null exhibits more FDs and longer runtimes; algorithm "
              "ranking is mostly unchanged, with FDEP fastest on some small "
              "incomplete data sets under null != null.");

  std::printf("%-11s %-9s", "dataset", "semantics");
  for (const std::string& a : algos) std::printf(" %10s", a.c_str());
  std::printf(" %10s\n", "#FD");
  PrintRule(34 + 11 * (static_cast<int>(algos.size()) + 1));

  for (const std::string& name : datasets) {
    for (NullSemantics sem :
         {NullSemantics::kNullEqualsNull, NullSemantics::kNullNotEqualsNull}) {
      Relation r = LoadBenchmark(name, flags.get_int("rows", 0), sem);
      std::printf("%-11s %-9s", name.c_str(),
                  sem == NullSemantics::kNullEqualsNull ? "null=" : "null!=");
      int64_t fds = -1;
      for (const std::string& algo : algos) {
        DiscoveryResult res = MakeDiscovery(algo, tl)->discover(r);
        std::printf(" %10s", FmtTime(res.stats).c_str());
        if (!res.stats.timed_out) fds = res.fds.size();
        std::fflush(stdout);
      }
      std::printf(" %10lld\n", static_cast<long long>(fds));
    }
    PrintRule(34 + 11 * (static_cast<int>(algos.size()) + 1));
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
