// Reproduces Table III: properties of left-reduced vs canonical covers —
// |L-r|, ||L-r||, |Can|, ||Can||, the percentage ratios, and the time to
// compute the canonical cover from the left-reduced one. Paper: ~50%
// average savings; small data sets ~25%, large ones >70%.
//
// Flags: --datasets=a,b  --rows=N  --tl=SECONDS (discovery limit, default 30)
#include "bench_util.h"

#include "fd/cover.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 30.0);
  int64_t max_cover = flags.get_int("max_cover", 100000);
  std::vector<std::string> datasets;
  for (const std::string& name : BenchmarkNames()) {
    if (FindBenchmark(name)->has_table3) datasets.push_back(name);
  }
  datasets = flags.get_list("datasets", datasets);

  PrintHeader("Table III",
              "Left-reduced vs canonical cover sizes. %S = 100*|Can|/|L-r|, "
              "%C = 100*||Can||/||L-r||, Time = canonical-cover computation "
              "seconds.");

  std::printf("%-11s %-9s %9s %10s %9s %10s %6s %6s %9s\n", "dataset", "",
              "|L-r|", "||L-r||", "|Can|", "||Can||", "%S", "%C", "time_s");
  PrintRule(88);
  for (const std::string& name : datasets) {
    const BenchmarkInfo* info = FindBenchmark(name);
    if (info == nullptr || !info->has_table3) continue;
    const PaperTable3& p = info->t3;
    std::printf("%-11s %-9s %9lld %10lld %9lld %10lld %6.0f %6.0f %9s\n",
                name.c_str(), "paper", p.lr, p.lr_occ, p.can, p.can_occ, p.pct_size,
                p.pct_card, FmtPaper(p.seconds).c_str());
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    DiscoveryResult res = MakeDiscovery("dhyfd", tl)->discover(r);
    if (res.stats.timed_out) {
      std::printf("%-11s %-9s discovery TL\n", "", "measured");
    } else if (max_cover > 0 && res.fds.size() > max_cover) {
      std::printf("%-11s %-9s skipped: %lld FDs exceed --max_cover=%lld\n", "",
                  "measured", static_cast<long long>(res.fds.size()),
                  static_cast<long long>(max_cover));
    } else {
      CoverStats stats = ComputeCoverStats(res.fds, r.num_cols());
      std::printf("%-11s %-9s %9lld %10lld %9lld %10lld %6.0f %6.0f %9.3f\n", "",
                  "measured", static_cast<long long>(stats.left_reduced_count),
                  static_cast<long long>(stats.left_reduced_occurrences),
                  static_cast<long long>(stats.canonical_count),
                  static_cast<long long>(stats.canonical_occurrences),
                  stats.percent_size, stats.percent_card, stats.seconds);
    }
    PrintRule(88);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
