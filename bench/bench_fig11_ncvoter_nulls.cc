// Reproduces Figure 11: over increasing fragments of ncvoter, the number
// of FDs causing up to a given number of redundancies, counted with nulls
// (paper: blue) vs without any nulls on LHS or RHS (orange), plus the time
// to determine them. The paper uses 8k/16k/512k/1024k-tuple fragments; the
// analog defaults to scaled fragments.
//
// Flags: --fragments=1000,2000,...  --tl=SECONDS (default 30)
#include "bench_util.h"

#include "fd/cover.h"
#include "ranking/ranking.h"
#include "util/timer.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 30.0);
  int64_t max_cover = flags.get_int("max_cover", 250000);
  std::vector<std::string> fragments =
      flags.get_list("fragments", {"1000", "2000", "8000", "16000"});

  PrintHeader("Figure 11",
              "ncvoter fragments: FDs per redundancy bucket counted with "
              "nulls (w/) vs with no nulls on LHS and RHS (w/o), plus "
              "computation times. Paper: counts stay stable across fragment "
              "sizes; excluding nulls shifts low-redundancy FDs to the "
              "zero bucket.");

  for (const std::string& fs : fragments) {
    int rows = std::atoi(fs.c_str());
    Relation r = LoadBenchmark("ncvoter", rows);
    DiscoveryResult res = MakeDiscovery("dhyfd", tl)->discover(r);
    if (res.stats.timed_out) {
      std::printf("ncvoter_%sr: discovery TL\n\n", fs.c_str());
      continue;
    }
    if (max_cover > 0 && res.fds.size() > max_cover) {
      std::printf("ncvoter_%sr: skipped (%lld FDs exceed --max_cover)\n\n", fs.c_str(),
                  static_cast<long long>(res.fds.size()));
      continue;
    }
    FdSet canonical = CanonicalCover(res.fds, r.num_cols());
    Timer timer;
    std::vector<FdRedundancy> reds = ComputeFdRedundancies(r, canonical);
    double seconds = timer.seconds();
    RedundancyHistogram with_nulls =
        BuildRedundancyHistogram(reds, RedundancyMode::kWithNulls);
    RedundancyHistogram without =
        BuildRedundancyHistogram(reds, RedundancyMode::kExcludingNullBoth);
    std::printf("ncvoter_%sr: %lld FDs, counts computed in %.3f s\n", fs.c_str(),
                static_cast<long long>(canonical.size()), seconds);
    std::printf("  %12s", "bucket<=");
    for (int64_t t : with_nulls.thresholds) {
      std::printf(" %8lld", static_cast<long long>(t));
    }
    std::printf("\n  %12s", "w/ nulls");
    for (int64_t c : with_nulls.fd_counts) {
      std::printf(" %8lld", static_cast<long long>(c));
    }
    std::printf("\n  %12s", "w/o nulls");
    for (int64_t c : without.fd_counts) {
      std::printf(" %8lld", static_cast<long long>(c));
    }
    std::printf("\n\n");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
