// Reproduces Figure 9: row scalability on weather (left) and column
// scalability on diabetic at fixed rows (right), with the #FD series that
// the paper overlays on the right chart. Paper: TANE and FDEP blow up with
// rows; HyFD degrades sharply past a column threshold where the number of
// valid FDs doubles; DHyFD stays smooth.
//
// Flags: --tl=SECONDS (default 15) --weather_rows=... --diabetic_rows=N --cols=...
#include "bench_util.h"

namespace dhyfd::bench {
namespace {

const std::vector<std::string> kAlgos = {"tane", "fdep2", "hyfd", "dhyfd"};

void PrintHeaderRow(const char* dim) {
  std::printf("%10s", dim);
  for (const std::string& a : kAlgos) std::printf(" %10s", a.c_str());
  std::printf(" %10s\n", "#FD");
  PrintRule(10 + 11 * (static_cast<int>(kAlgos.size()) + 1));
}

void Sweep(const Relation& frag, const char* label, double tl) {
  std::printf("%10s", label);
  int64_t fds = -1;
  for (const std::string& algo : kAlgos) {
    DiscoveryResult res = MakeDiscovery(algo, tl)->discover(frag);
    std::printf(" %10s", FmtTime(res.stats).c_str());
    if (!res.stats.timed_out) fds = res.fds.size();
    std::fflush(stdout);
  }
  std::printf(" %10lld\n", static_cast<long long>(fds));
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 10.0);
  PrintHeader("Figure 9",
              "Left: row scalability on weather. Right: column scalability on "
              "diabetic at fixed rows, with the valid-FD count that drives "
              "HyFD's degradation.");

  std::printf("weather: time (s) vs rows\n");
  PrintHeaderRow("rows");
  Relation weather = LoadBenchmark("weather", flags.get_int("weather_max_rows", 16000));
  for (int rows : {1000, 2000, 4000, 6000, 8000, 12000, 16000}) {
    if (rows > weather.num_rows()) break;
    Relation frag = weather.fragment(rows, weather.num_cols());
    Sweep(frag, std::to_string(rows).c_str(), tl);
  }

  int drows = flags.get_int("diabetic_rows", 3000);
  std::printf("\ndiabetic (%d rows): time (s) vs columns\n", drows);
  PrintHeaderRow("cols");
  Relation diabetic = LoadBenchmark("diabetic", drows);
  for (int cols : {8, 12, 16, 20, 24, 27, 30}) {
    Relation frag = diabetic.fragment(diabetic.num_rows(), cols);
    Sweep(frag, std::to_string(cols).c_str(), tl);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
