// Extra baselines beyond the paper's Table II line-up: FastFDs and
// Dep-Miner (the transversal-based row algorithms the paper cites as
// related work [10], [19]) against FDEP2 and DHyFD on the smaller analogs.
//
// Flags: --datasets=a,b  --rows=N  --tl=SECONDS (default 20)
#include "bench_util.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 20.0);
  std::vector<std::string> datasets = flags.get_list(
      "datasets", {"iris", "balance", "abalone", "breast", "bridges", "echo",
                   "ncvoter", "hepatitis"});
  const std::vector<std::string> algos = {"fdep2", "fastfds", "depminer", "dfd", "dhyfd"};

  PrintHeader("Extra row-based baselines",
              "FastFDs (Wyss et al. [19]) and Dep-Miner (Lopes et al. [10]) "
              "vs FDEP2 and DHyFD — the transversal branch of the row-based "
              "family the paper's related work discusses. Times in seconds.");

  std::printf("%-11s", "dataset");
  for (const std::string& a : algos) std::printf(" %10s", a.c_str());
  std::printf(" %10s\n", "#FD");
  PrintRule(81);
  for (const std::string& name : datasets) {
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    std::printf("%-11s", name.c_str());
    int64_t fds = -1;
    for (const std::string& algo : algos) {
      DiscoveryResult res = MakeDiscovery(algo, tl)->discover(r);
      std::printf(" %10s", FmtTime(res.stats).c_str());
      if (!res.stats.timed_out) fds = res.fds.size();
      std::fflush(stdout);
    }
    std::printf(" %10lld\n", static_cast<long long>(fds));
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
