// Load harness for the src/net/ profiling server: an in-process server on a
// loopback port, driven by hundreds of concurrent BlockingClients, reporting
// end-to-end request latency quantiles (p50/p95/p99), throughput, and the
// admission-control picture (quota / in-flight / busy rejections) as both a
// human table and stamped JSON rows. Fold the JSON rows into the committed
// trajectory file with:
//
//   build/bench/bench_server_load | python3 tools/bench_distill.py
//
// Flags:
//   --clients=N        concurrent client connections (default 200)
//   --requests=N       requests per client (default 50)
//   --mode=query|discover|mixed   request mix (default query)
//   --dataset=NAME --rows=N       benchmark analog served (abalone, 500)
//   --subscribers=N    streaming side-channel consumers (default 8)
//   --batches=N        update batches pushed through the stream (default 10)
//   --quota_rate=R --quota_burst=B --max_inflight=N --max_pending=N
//                      admission knobs (defaults: quota off, 64, 512)
//   --trace=FILE --metrics=FILE   standard obs session outputs

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "relation/csv.h"
#include "service/live_store.h"
#include "service/scheduler.h"

namespace dhyfd::bench {
namespace {

using net::BlockingClient;
using net::ErrCode;
using net::ProfilingServer;
using net::RpcError;
using net::ServerOptions;
using net::StreamEvent;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ClientStats {
  std::vector<double> latencies;  // seconds, successful requests only
  long long ok = 0;
  long long quota_rejects = 0;
  long long inflight_rejects = 0;
  long long busy_rejects = 0;
  long long errors = 0;
};

double Quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double idx = q * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(idx);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));

  const int clients = flags.get_int("clients", 200);
  const int requests = flags.get_int("requests", 50);
  const std::string mode = flags.get_str("mode", "query");
  const std::string dataset = flags.get_str("dataset", "abalone");
  const int rows = flags.get_int("rows", 500);
  const int subscribers = flags.get_int("subscribers", 8);
  const int batches = flags.get_int("batches", 10);

  PrintHeader("server_load",
              "End-to-end RPC latency and admission control under concurrent "
              "load: one in-process server, --clients blocking clients each "
              "issuing --requests requests, plus --subscribers streaming "
              "consumers fed --batches live update batches.");

  MetricsRegistry metrics;
  DatasetRegistry datasets(&metrics);
  SchedulerOptions sched;
  sched.max_pending = static_cast<std::size_t>(flags.get_int("max_pending", 512));
  JobScheduler scheduler(&datasets, &metrics, sched);
  LiveStore live(&metrics);

  ServerOptions options;
  options.max_connections = clients + subscribers + 16;
  options.max_inflight = static_cast<std::uint32_t>(flags.get_int("max_inflight", 64));
  options.quota_rate = flags.get_double("quota_rate", 0);
  options.quota_burst = flags.get_double("quota_burst", 0);
  ProfilingServer server(&scheduler, &live, &datasets, &metrics, options);
  server.start();
  std::printf("server on 127.0.0.1:%u  clients=%d requests=%d mode=%s "
              "dataset=%s rows=%d\n\n",
              server.port(), clients, requests, mode.c_str(), dataset.c_str(),
              rows);

  // Seed the dataset through the front door, like any client would.
  {
    BlockingClient seed("127.0.0.1", server.port(), "seed");
    RawTable table = GenerateBenchmark(dataset, rows);
    seed.register_dataset(dataset, WriteCsvString(table), /*live=*/true);
    seed.goodbye();
  }

  // ---- streaming side channel: subscribers + an updater ------------------
  std::atomic<bool> stream_stop{false};
  std::atomic<long long> events_delivered{0};
  std::vector<std::thread> stream_threads;
  stream_threads.reserve(static_cast<std::size_t>(subscribers) + 1);
  for (int s = 0; s < subscribers; ++s) {
    stream_threads.emplace_back([&, s] {
      try {
        BlockingClient sub("127.0.0.1", server.port(),
                           "sub-" + std::to_string(s));
        std::uint64_t sub_id = sub.subscribe(dataset, 32);
        StreamEvent ev;
        while (!stream_stop.load()) {
          if (!sub.poll_event(&ev, 0.1)) continue;
          if (ev.kind == StreamEvent::Kind::kCoverUpdate) {
            events_delivered.fetch_add(1);
            sub.grant_credits(sub_id, 1);
          } else if (ev.kind == StreamEvent::Kind::kStreamEnd) {
            break;
          }
        }
      } catch (const std::exception&) {
        // A dropped subscriber is part of the picture, not a bench failure.
      }
    });
  }
  stream_threads.emplace_back([&] {
    try {
      BlockingClient updater("127.0.0.1", server.port(), "updater");
      RawTable extra = GenerateBenchmark(dataset, rows + batches * 5);
      for (int b = 0; b < batches && !stream_stop.load(); ++b) {
        net::ApplyUpdateMsg update;
        update.dataset = dataset;
        for (int i = rows + b * 5; i < rows + (b + 1) * 5; ++i) {
          update.inserts.push_back(extra.rows[i]);
        }
        updater.apply_update(update);
      }
      updater.goodbye();
    } catch (const std::exception&) {
    }
  });

  // ---- request load ------------------------------------------------------
  std::vector<ClientStats> stats(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  double wall_start = NowSeconds();
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ClientStats& my = stats[static_cast<std::size_t>(c)];
      try {
        BlockingClient client("127.0.0.1", server.port(),
                              "load-" + std::to_string(c));
        for (int i = 0; i < requests; ++i) {
          bool discover = mode == "discover" || (mode == "mixed" && i % 10 == 0);
          double t0 = NowSeconds();
          try {
            if (discover) {
              net::SubmitDiscoveryMsg submit;
              submit.dataset = dataset;
              submit.top_k = 5;
              client.submit_discovery(submit);
            } else {
              client.query_cover(dataset, 5);
            }
            my.latencies.push_back(NowSeconds() - t0);
            ++my.ok;
          } catch (const RpcError& e) {
            switch (e.code()) {
              case ErrCode::kQuotaExceeded: ++my.quota_rejects; break;
              case ErrCode::kTooManyInFlight: ++my.inflight_rejects; break;
              case ErrCode::kServerBusy: ++my.busy_rejects; break;
              default: ++my.errors; break;
            }
          }
        }
        client.goodbye();
      } catch (const std::exception&) {
        ++my.errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  double wall = NowSeconds() - wall_start;

  stream_stop.store(true);
  for (std::thread& t : stream_threads) t.join();

  // ---- aggregate ---------------------------------------------------------
  std::vector<double> all;
  ClientStats total;
  for (const ClientStats& s : stats) {
    all.insert(all.end(), s.latencies.begin(), s.latencies.end());
    total.ok += s.ok;
    total.quota_rejects += s.quota_rejects;
    total.inflight_rejects += s.inflight_rejects;
    total.busy_rejects += s.busy_rejects;
    total.errors += s.errors;
  }
  std::sort(all.begin(), all.end());
  double p50 = Quantile(all, 0.50) * 1e3;
  double p95 = Quantile(all, 0.95) * 1e3;
  double p99 = Quantile(all, 0.99) * 1e3;
  double pmax = all.empty() ? 0 : all.back() * 1e3;
  double rps = wall > 0 ? static_cast<double>(total.ok) / wall : 0;
  long long rejected =
      total.quota_rejects + total.inflight_rejects + total.busy_rejects;

  // Server-side view of the same load: the per-RPC net.rpc.<type>.ok_seconds
  // histograms, merged across request types. The client numbers above
  // include the wire and the client scheduler; the gap between the two is
  // where the network (or a slow client thread pool) hides.
  Histogram::Snapshot server_ok;
  for (const auto& [name, snap] : metrics.histogram_values()) {
    if (name.rfind("net.rpc.", 0) != 0 || snap.count == 0) continue;
    const std::string suffix = ".ok_seconds";
    if (name.size() < suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    if (server_ok.count == 0) {
      server_ok.min = snap.min;
      server_ok.max = snap.max;
    } else {
      server_ok.min = std::min(server_ok.min, snap.min);
      server_ok.max = std::max(server_ok.max, snap.max);
    }
    server_ok.count += snap.count;
    server_ok.sum += snap.sum;
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      server_ok.buckets[b] += snap.buckets[b];
    }
  }
  // The mean is exact (sum/count); the quantiles are decade-bucket upper
  // bounds clamped to the observed extremes, so they are coarse but never
  // understate the latency.
  double srv_mean = server_ok.mean() * 1e3;
  double srv_p50 = server_ok.quantile(0.50) * 1e3;
  double srv_p99 = server_ok.quantile(0.99) * 1e3;

  std::printf("%-22s %12s\n", "metric", "value");
  PrintRule(36);
  std::printf("%-22s %12lld\n", "requests ok", total.ok);
  std::printf("%-22s %12lld\n", "rejected (saturation)", rejected);
  std::printf("%-22s %12lld\n", "  quota", total.quota_rejects);
  std::printf("%-22s %12lld\n", "  inflight", total.inflight_rejects);
  std::printf("%-22s %12lld\n", "  busy", total.busy_rejects);
  std::printf("%-22s %12lld\n", "transport errors", total.errors);
  std::printf("%-22s %12.1f\n", "throughput (req/s)", rps);
  std::printf("%-22s %12.3f\n", "p50 latency (ms)", p50);
  std::printf("%-22s %12.3f\n", "p95 latency (ms)", p95);
  std::printf("%-22s %12.3f\n", "p99 latency (ms)", p99);
  std::printf("%-22s %12.3f\n", "max latency (ms)", pmax);
  std::printf("%-22s %12.3f\n", "server mean (ms)", srv_mean);
  std::printf("%-22s %12.3f\n", "server p50 (ms)", srv_p50);
  std::printf("%-22s %12.3f\n", "server p99 (ms)", srv_p99);
  std::printf("%-22s %12.2f\n", "wall seconds", wall);
  std::printf("%-22s %12lld\n", "stream events seen",
              events_delivered.load());
  std::printf("%-22s %12lld\n", "slow-consumer drops",
              static_cast<long long>(
                  metrics.counter("net.slow_consumer_disconnects").value()));
  std::printf("%-22s %12lld\n", "frames rx (server)",
              static_cast<long long>(metrics.counter("net.frames_rx").value()));
  PrintRule(36);

  std::printf(
      "{\"bench\":\"server_load\",%s,\"mode\":\"%s\",\"clients\":%d,"
      "\"requests_per_client\":%d,\"ok\":%lld,\"rejected\":%lld,"
      "\"quota_rejects\":%lld,\"inflight_rejects\":%lld,\"busy_rejects\":%lld,"
      "\"errors\":%lld,\"throughput_rps\":%.1f,\"p50_ms\":%.3f,"
      "\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f,"
      "\"server_mean_ms\":%.3f,\"server_p50_ms\":%.3f,"
      "\"server_p99_ms\":%.3f,\"server_rpc_ok\":%lld,\"wall_s\":%.2f,"
      "\"stream_events\":%lld,\"slow_consumer_drops\":%lld}\n",
      JsonStamp(dataset).c_str(), mode.c_str(), clients, requests, total.ok,
      rejected, total.quota_rejects, total.inflight_rejects,
      total.busy_rejects, total.errors, rps, p50, p95, p99, pmax, srv_mean,
      srv_p50, srv_p99, static_cast<long long>(server_ok.count), wall,
      events_delivered.load(),
      static_cast<long long>(
          metrics.counter("net.slow_consumer_disconnects").value()));
  std::fflush(stdout);

  server.shutdown();
  live.shutdown();
  scheduler.shutdown();
  return total.errors > clients / 10 ? 1 : 0;  // tolerate stragglers
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
