// Ablation bench (DESIGN.md E12): isolates the paper's four design choices.
//  1. Synergized induction on extended FD-trees vs classic per-attribute
//     induction on classic FD-trees (FDEP2 vs FDEP), plus the classic
//     tree's label overhead.
//  2. Non-FD ordering: sorted-descending (FDEP2) vs non-redundant cover
//     (FDEP1).
//  3. DDM refresh gating: DHyFD at ratio 3 vs never-refresh (DDM off) vs
//     always-refresh (ratio ~0).
//
// Flags: --rows=N  --tl=SECONDS (default 20)
#include "bench_util.h"

#include "algo/dhyfd.h"
#include "algo/fdep.h"
#include "fdtree/fd_tree.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 20.0);
  PrintHeader("Ablations (E12)",
              "Each block isolates one design decision the paper credits for "
              "DHyFD's gains.");

  std::printf("1) induction method: classic (FDEP) vs synergized (FDEP2), s\n");
  std::printf("%-11s %10s %10s %10s\n", "dataset", "classic", "synergized", "speedup");
  PrintRule(46);
  for (const char* name : {"ncvoter", "bridges", "echo", "hepatitis", "horse",
                           "adult", "letter"}) {
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    DiscoveryResult classic = Fdep(FdepVariant::kClassic, tl).discover(r);
    DiscoveryResult synergized = Fdep(FdepVariant::kSorted, tl).discover(r);
    double speedup = synergized.stats.seconds > 0 && !classic.stats.timed_out
                         ? classic.stats.seconds / synergized.stats.seconds
                         : 0;
    std::printf("%-11s %10s %10s %9.2fx\n", name, FmtTime(classic.stats).c_str(),
                FmtTime(synergized.stats).c_str(), speedup);
    std::fflush(stdout);
  }

  std::printf("\n2) non-FD ordering: non-redundant cover (FDEP1) vs sorted "
              "(FDEP2), s\n");
  std::printf("%-11s %10s %10s\n", "dataset", "fdep1", "fdep2");
  PrintRule(34);
  for (const char* name : {"ncvoter", "plista", "flight", "horse", "hepatitis"}) {
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    DiscoveryResult f1 = Fdep(FdepVariant::kNonRedundant, tl).discover(r);
    DiscoveryResult f2 = Fdep(FdepVariant::kSorted, tl).discover(r);
    std::printf("%-11s %10s %10s\n", name, FmtTime(f1.stats).c_str(),
                FmtTime(f2.stats).c_str());
    std::fflush(stdout);
  }

  std::printf("\n3) DDM gating on weather/diabetic analogs, s "
              "(ratio 3 = paper default)\n");
  std::printf("%-11s %12s %12s %12s %10s\n", "dataset", "ddm_off", "ratio3",
              "always", "updates@3");
  PrintRule(62);
  for (const char* name : {"weather", "diabetic", "uniprot", "lineitem"}) {
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    DhyfdOptions off;
    off.enable_ddm = false;
    off.time_limit_seconds = tl;
    DhyfdOptions ratio3;
    ratio3.time_limit_seconds = tl;
    DhyfdOptions always;
    always.ratio_threshold = 1e-9;
    always.time_limit_seconds = tl;
    DiscoveryResult r_off = Dhyfd(off).discover(r);
    DiscoveryResult r_3 = Dhyfd(ratio3).discover(r);
    DiscoveryResult r_always = Dhyfd(always).discover(r);
    std::printf("%-11s %12s %12s %12s %10d\n", name, FmtTime(r_off.stats).c_str(),
                FmtTime(r_3.stats).c_str(), FmtTime(r_always.stats).c_str(),
                r_3.stats.ddm_updates);
    std::fflush(stdout);
  }

  std::printf("\n4) classic FD-tree labeling overhead (ncvoter non-FDs)\n");
  {
    Relation r = LoadBenchmark("ncvoter", flags.get_int("rows", 0));
    DiscoveryResult res = Fdep(FdepVariant::kClassic, tl).discover(r);
    // Rebuild the final classic tree to inspect label counts.
    FdTree tree(r.num_cols());
    for (const Fd& fd : res.fds.fds) tree.add(fd.lhs, fd.rhs.first());
    std::printf("  nodes=%zu, propagated labels=%lld, FDs=%lld "
                "(labels/FD = %.2f; extended trees store exactly 1 per FD "
                "attribute)\n",
                tree.node_count(), static_cast<long long>(tree.label_count()),
                static_cast<long long>(res.fds.size()),
                res.fds.size() > 0 ? static_cast<double>(tree.label_count()) /
                                         static_cast<double>(res.fds.size())
                                   : 0.0);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
