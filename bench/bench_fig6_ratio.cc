// Reproduces Figure 6: DHyFD discovery time on the weather (left) and
// uniprot (right) analogs as a function of the efficiency-inefficiency
// ratio threshold. The paper finds a broad minimum around ratio 3 on
// weather and 2.5 on uniprot.
//
// Flags: --rows=N  --ratios=0.5,1,...  --datasets=weather,uniprot
#include "bench_util.h"

#include "algo/dhyfd.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  std::vector<std::string> datasets =
      flags.get_list("datasets", {"weather", "uniprot"});
  std::vector<std::string> ratio_strs = flags.get_list(
      "ratios", {"0.5", "1", "1.5", "2", "2.5", "3", "4", "5", "8", "1e9"});

  PrintHeader("Figure 6",
              "DHyFD time (s) vs efficiency-inefficiency ratio threshold. "
              "Paper: best ~3 on weather, ~2.5 on uniprot; ratio 1e9 "
              "effectively disables DDM refreshes (upper baseline).");

  for (const std::string& name : datasets) {
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    std::printf("%s (%d rows, %d cols)\n", name.c_str(), r.num_rows(), r.num_cols());
    std::printf("%10s %10s %8s %8s %10s\n", "ratio", "time_s", "#FD", "updates",
                "mem_MB");
    PrintRule(50);
    for (const std::string& rs : ratio_strs) {
      DhyfdOptions opt;
      opt.ratio_threshold = std::atof(rs.c_str());
      DiscoveryResult res = Dhyfd(opt).discover(r);
      std::printf("%10s %10.3f %8lld %8d %10.1f\n", rs.c_str(), res.stats.seconds,
                  static_cast<long long>(res.fds.size()), res.stats.ddm_updates,
                  res.stats.memory_mb);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
