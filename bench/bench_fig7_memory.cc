// Reproduces Figure 7: memory used in FD discovery on weather fragments
// with varying numbers of rows (left) and diabetic fragments with varying
// numbers of columns (right), for HyFD vs DHyFD, plus the paper's PIR
// (performance increase rate) and MIR (memory increase rate).
//
// PIR = (t_HyFD - t_DHyFD) / t_HyFD; MIR = (m_DHyFD - m_HyFD) / m_DHyFD.
//
// Flags: --weather_rows=..., --diabetic_rows=N, --cols=...
#include "bench_util.h"

#include "algo/dhyfd.h"
#include "algo/hyfd.h"

namespace dhyfd::bench {
namespace {

void Report(const Relation& r, const char* label) {
  DiscoveryResult hy = Hyfd().discover(r);
  DiscoveryResult dhy = Dhyfd().discover(r);
  double pir = hy.stats.seconds > 0
                   ? (hy.stats.seconds - dhy.stats.seconds) / hy.stats.seconds
                   : 0;
  double mir = dhy.stats.memory_mb > 0
                   ? (dhy.stats.memory_mb - hy.stats.memory_mb) / dhy.stats.memory_mb
                   : 0;
  std::printf("%12s %10.3f %10.3f %10.2f %10.2f %8.1f%% %8.1f%%\n", label,
              hy.stats.seconds, dhy.stats.seconds, hy.stats.memory_mb,
              dhy.stats.memory_mb, 100 * pir, 100 * mir);
  std::fflush(stdout);
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  PrintHeader("Figure 7",
              "Memory (MB) and time (s) of HyFD vs DHyFD on weather fragments "
              "(varying rows) and diabetic fragments (varying columns). "
              "Paper: DHyFD trades conservatively more memory for solid "
              "performance gains (positive PIR).");

  std::vector<std::string> row_list =
      flags.get_list("weather_rows", {"2000", "4000", "8000", "12000", "16000"});
  std::printf("weather fragments (rows sweep)\n");
  std::printf("%12s %10s %10s %10s %10s %9s %9s\n", "rows", "hyfd_s", "dhyfd_s",
              "hyfd_MB", "dhyfd_MB", "PIR", "MIR");
  PrintRule(78);
  Relation weather = LoadBenchmark("weather", 16000);
  for (const std::string& rs : row_list) {
    int rows = std::atoi(rs.c_str());
    Relation frag = weather.fragment(rows, weather.num_cols());
    Report(frag, rs.c_str());
  }

  std::printf("\ndiabetic fragments (columns sweep, %d rows)\n",
              flags.get_int("diabetic_rows", 4000));
  std::printf("%12s %10s %10s %10s %10s %9s %9s\n", "cols", "hyfd_s", "dhyfd_s",
              "hyfd_MB", "dhyfd_MB", "PIR", "MIR");
  PrintRule(78);
  Relation diabetic = LoadBenchmark("diabetic", flags.get_int("diabetic_rows", 4000));
  std::vector<std::string> col_list =
      flags.get_list("cols", {"10", "15", "20", "25", "30"});
  for (const std::string& cs : col_list) {
    int cols = std::atoi(cs.c_str());
    Relation frag = diabetic.fragment(diabetic.num_rows(), cols);
    Report(frag, cs.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
