// Reproduces Figure 10: for the bigger incomplete data sets, how many FDs
// of the canonical cover cause at most a given number of redundant
// occurrences (buckets at 0 and 2.5/5/10/15/20/40/60/80/100% of the
// maximum per-FD redundancy), plus the time to compute all redundant
// occurrences from the canonical cover.
//
// Flags: --datasets=...  --rows=N  --tl=SECONDS (default 30)
#include "bench_util.h"

#include "fd/cover.h"
#include "ranking/ranking.h"
#include "util/timer.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 30.0);
  int64_t max_cover = flags.get_int("max_cover", 100000);
  std::vector<std::string> datasets = flags.get_list(
      "datasets", {"ncvoter", "horse", "plista", "flight", "diabetic", "uniprot"});

  PrintHeader("Figure 10",
              "FDs in the canonical cover (count per bucket) that cause at "
              "most the given number of redundant occurrences; buckets are "
              "percents of the maximum per-FD redundancy. Paper: many FDs "
              "land in the low percentile (dirty data / accidental FDs), a "
              "few in the top buckets.");

  for (const std::string& name : datasets) {
    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    DiscoveryResult res = MakeDiscovery("dhyfd", tl)->discover(r);
    if (res.stats.timed_out) {
      std::printf("%s: discovery TL\n\n", name.c_str());
      continue;
    }
    if (max_cover > 0 && res.fds.size() > max_cover) {
      std::printf("%s: skipped (%lld FDs exceed --max_cover=%lld)\n\n", name.c_str(),
                  static_cast<long long>(res.fds.size()),
                  static_cast<long long>(max_cover));
      continue;
    }
    FdSet canonical = CanonicalCover(res.fds, r.num_cols());
    Timer timer;
    std::vector<FdRedundancy> reds = ComputeFdRedundancies(r, canonical);
    double seconds = timer.seconds();
    RedundancyHistogram hist =
        BuildRedundancyHistogram(reds, RedundancyMode::kWithNulls);
    std::printf("%s: %lld FDs in canonical cover, max per-FD redundancy %lld, "
                "ranking computed in %.3f s\n",
                name.c_str(), static_cast<long long>(canonical.size()),
                static_cast<long long>(hist.max_redundancy), seconds);
    std::printf("  %12s", "bucket<=");
    for (int64_t t : hist.thresholds) std::printf(" %8lld", static_cast<long long>(t));
    std::printf("\n  %12s", "#FDs");
    for (int64_t c : hist.fd_counts) std::printf(" %8lld", static_cast<long long>(c));
    std::printf("\n\n");
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
