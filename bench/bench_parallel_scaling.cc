// Intra-job parallel discovery: threads x dataset scaling grid.
//
// For each dataset, runs the hybrid discoverer once sequentially (the
// baseline) and then at each requested degree with a ThreadPool, reporting
// wall seconds, speedup over the baseline, and whether the parallel cover
// is bit-identical to the sequential one (it must be — sharding changes who
// does the work, never the answer; see DESIGN.md, "Parallel discovery").
//
// Acceptance shape: covers identical at every degree (enforced always),
// and >= --min-speedup at the highest degree on each dataset. The speedup
// gate only bites when the machine has at least that many cores — on a
// smaller box the grid still runs and the rows still record the measured
// numbers (with "cores" for context), but slowdown there is physics, not a
// regression, so the gate reports itself skipped instead of failing.
//
// Emits one {"bench":"parallel_scaling",...} JSON row per cell on stdout;
// fold into BENCH_parallel_scaling.json with tools/bench_distill.py.
//
// Flags: --datasets=diabetic --rows=6000 --threads=1,2,4 --algo=dhyfd
//        --reps=3 --min-speedup=3.0
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "util/thread_pool.h"

namespace dhyfd::bench {
namespace {

struct Cell {
  int threads = 1;
  double seconds = 0;    // best of --reps runs
  double speedup = 1.0;  // sequential seconds / this cell's seconds
  std::size_t fds = 0;
  std::int64_t validations = 0;
  bool identical = true;  // cover bit-identical to the sequential baseline
};

bool SameCover(const FdSet& a, const FdSet& b) {
  if (a.fds.size() != b.fds.size()) return false;
  for (std::size_t i = 0; i < a.fds.size(); ++i) {
    if (!(a.fds[i] == b.fds[i])) return false;
  }
  return true;
}

/// Best-of-reps run at one degree; degree 1 runs without a pool (the true
/// sequential path, not a one-thread pool).
Cell RunCell(const std::string& algo, const Relation& r, int threads,
             int reps, const DiscoveryResult* baseline) {
  Cell cell;
  cell.threads = threads;
  ThreadPool pool(threads);
  for (int rep = 0; rep < reps; ++rep) {
    auto discovery =
        threads > 1 ? MakeDiscovery(algo, 0, threads, &pool)
                    : MakeDiscovery(algo);
    DiscoveryResult res = discovery->discover(r);
    if (rep == 0 || res.stats.seconds < cell.seconds) {
      cell.seconds = res.stats.seconds;
    }
    cell.fds = res.fds.fds.size();
    cell.validations = res.stats.validations;
    if (baseline != nullptr) {
      cell.identical = cell.identical && SameCover(baseline->fds, res.fds);
    }
  }
  if (baseline != nullptr && cell.seconds > 0) {
    cell.speedup = baseline->stats.seconds / cell.seconds;
  }
  return cell;
}

void PrintJsonRow(const std::string& dataset, const Relation& r,
                  const std::string& algo, int reps, unsigned cores,
                  const Cell& c) {
  std::printf(
      "{\"bench\":\"parallel_scaling\",%s,\"rows\":%d,\"cols\":%d,"
      "\"algo\":\"%s\",\"threads\":%d,\"cores\":%u,\"reps\":%d,"
      "\"seconds\":%.4f,\"speedup\":%.2f,\"fds\":%zu,\"validations\":%lld,"
      "\"identical\":%s}\n",
      JsonStamp(dataset).c_str(), r.num_rows(), r.num_cols(), algo.c_str(),
      c.threads, cores, reps, c.seconds, c.speedup, c.fds,
      static_cast<long long>(c.validations), c.identical ? "true" : "false");
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  PrintHeader("Intra-job parallel scaling",
              "Wall seconds and speedup per threads x dataset cell. Reading: "
              "the cover is bit-identical to the sequential run at every "
              "degree, and seconds shrink as threads grow — up to the "
              "machine's core count, past which extra shards only add "
              "coordination.");

  const std::string algo = flags.get_str("algo", "dhyfd");
  const int rows = flags.get_int("rows", 6000);
  const int reps = flags.get_int("reps", 3);
  const double min_speedup = flags.get_double("min-speedup", 3.0);
  const unsigned cores = std::thread::hardware_concurrency();

  std::vector<int> degrees;
  for (const std::string& s : flags.get_list("threads", {"1", "2", "4"}))
    degrees.push_back(std::atoi(s.c_str()));

  std::printf("algo=%s reps=%d cores=%u\n\n", algo.c_str(), reps, cores);
  std::printf("%-10s %8s | %9s %8s %6s %12s %10s\n", "dataset", "threads",
              "seconds", "speedup", "fds", "validations", "identical");
  PrintRule(76);

  bool all_identical = true;
  bool speedup_ok = true;
  bool speedup_checked = false;
  for (const std::string& dataset : flags.get_list("datasets", {"diabetic"})) {
    Relation r = LoadBenchmark(dataset, rows);
    DiscoveryResult baseline;
    std::vector<Cell> cells;
    int max_degree = 1;
    for (int d : degrees) {
      if (d <= 1 && cells.empty()) {
        // Sequential baseline cell: measured like any other, then used as
        // the reference for every parallel cell's speedup + cover check.
        auto discovery = MakeDiscovery(algo);
        baseline = discovery->discover(r);
        Cell c = RunCell(algo, r, 1, reps, &baseline);
        baseline.stats.seconds = c.seconds;  // best-of-reps reference
        cells.push_back(c);
      } else {
        cells.push_back(RunCell(algo, r, d, reps, &baseline));
      }
      if (d > max_degree) max_degree = d;
    }
    for (const Cell& c : cells) {
      std::printf("%-10s %8d | %9.3f %8.2fx %6zu %12lld %10s\n",
                  dataset.c_str(), c.threads, c.seconds, c.speedup, c.fds,
                  static_cast<long long>(c.validations),
                  c.identical ? "yes" : "NO");
      std::fflush(stdout);
      all_identical = all_identical && c.identical;
      if (c.threads == max_degree && max_degree > 1) {
        if (cores >= static_cast<unsigned>(max_degree)) {
          speedup_checked = true;
          if (c.speedup < min_speedup) {
            speedup_ok = false;
            std::printf("BELOW TARGET: %s at %d threads: %.2fx < %.2fx\n",
                        dataset.c_str(), c.threads, c.speedup, min_speedup);
          }
        } else {
          std::printf(
              "note: speedup gate skipped for %s — %u core(s) < %d "
              "threads, parallel shards just time-slice here\n",
              dataset.c_str(), cores, max_degree);
        }
      }
    }
    PrintRule(76);
    std::printf("\n");
    for (const Cell& c : cells) PrintJsonRow(dataset, r, algo, reps, cores, c);
    std::printf("\n");
  }

  std::printf("covers identical at every degree: %s\n",
              all_identical ? "yes" : "NO");
  if (speedup_checked) {
    std::printf("speedup >= %.2fx at max threads: %s\n", min_speedup,
                speedup_ok ? "yes" : "NO");
  }
  return (all_identical && speedup_ok) ? 0 : 1;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
