#ifndef DHYFD_BENCH_BENCH_UTIL_H_
#define DHYFD_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <map>
#include <string>
#include <vector>

#include "algo/discovery.h"
#include "datagen/benchmark_data.h"
#include "obs/session.h"
#include "relation/encoder.h"

namespace dhyfd::bench {

/// Minimal --key=value flag parser shared by all bench binaries.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "1";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  int get_int(const std::string& key, int def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::atoi(it->second.c_str());
  }
  double get_double(const std::string& key, double def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : std::atof(it->second.c_str());
  }
  std::string get_str(const std::string& key, const std::string& def) const {
    auto it = kv_.find(key);
    return it == kv_.end() ? def : it->second;
  }
  bool has(const std::string& key) const { return kv_.count(key) > 0; }

  /// Comma-separated list flag.
  std::vector<std::string> get_list(const std::string& key,
                                    const std::vector<std::string>& def) const {
    auto it = kv_.find(key);
    if (it == kv_.end()) return def;
    std::vector<std::string> out;
    std::string cur;
    for (char c : it->second) {
      if (c == ',') {
        if (!cur.empty()) out.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) out.push_back(cur);
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
};

/// Observability options from the shared --trace=<file> / --metrics=<file>
/// flags. --metrics-interval=<seconds> adds periodic Prometheus snapshots
/// on top of the final flush, so a long bench is scrapeable mid-run.
/// Typical use, first thing in a bench Main():
///
///   ObsSession obs(ObsOptionsFromFlags(flags));
inline ObsSessionOptions ObsOptionsFromFlags(const Flags& flags) {
  ObsSessionOptions options;
  options.trace_path = flags.get_str("trace", "");
  options.metrics_path = flags.get_str("metrics", "");
  options.snapshot_interval_seconds = flags.get_double("metrics-interval", 0);
  return options;
}

/// Git commit the binary was built from (baked in by bench/CMakeLists.txt;
/// "unknown" when the sources were not in a git checkout at configure time).
inline const char* BuildCommit() {
#ifdef DHYFD_GIT_SHA
  return DHYFD_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Current UTC time, ISO-8601 (e.g. "2026-08-06T12:34:56Z").
inline std::string Iso8601Now() {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

/// Provenance fragment for machine-readable bench rows — splice into a JSON
/// object: "commit":"<sha>","dataset":"<name>","timestamp":"<iso8601>".
inline std::string JsonStamp(const std::string& dataset) {
  return std::string("\"commit\":\"") + BuildCommit() + "\",\"dataset\":\"" +
         dataset + "\",\"timestamp\":\"" + Iso8601Now() + "\"";
}

/// Generates and DIIS-encodes a benchmark analog.
inline Relation LoadBenchmark(const std::string& name, int rows_override = 0,
                              NullSemantics semantics = NullSemantics::kNullEqualsNull) {
  RawTable table = GenerateBenchmark(name, rows_override);
  return EncodeRelation(table, semantics).relation;
}

/// Formats a measured runtime, or "TL" for timed-out runs.
inline std::string FmtTime(const DiscoveryStats& stats) {
  if (stats.timed_out) return "TL";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", stats.seconds);
  return buf;
}

/// Formats a paper-reported figure (handles the TL / N/A sentinels).
inline std::string FmtPaper(double v) {
  if (v == kTimeLimit) return "TL";
  if (v == kNotAvail) return "N/A";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

inline void PrintRule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Standard preamble: what the bench reproduces and how to read it.
inline void PrintHeader(const char* experiment, const char* description) {
  std::printf("=== %s ===\n%s\n", experiment, description);
  std::printf(
      "NOTE: data sets are seeded synthetic analogs (see DESIGN.md); "
      "absolute numbers differ from the paper's testbed, the qualitative "
      "shape is what reproduces.\n\n");
}

}  // namespace dhyfd::bench

#endif  // DHYFD_BENCH_BENCH_UTIL_H_
