// Reproduces Figure 8: the best-performing algorithm on row x column
// fragments of weather and diabetic. The paper's pattern: FDEP wins at few
// rows (and gains with more columns), TANE only at few columns, DHyFD wins
// once both rows and columns grow, with HyFD close behind.
//
// Flags: --tl=SECONDS (per run; default 5) --weather_rows=... --weather_cols=...
#include "bench_util.h"

namespace dhyfd::bench {
namespace {

void Grid(const Relation& base, const std::vector<int>& row_steps,
          const std::vector<int>& col_steps, double tl) {
  const std::vector<std::string> algos = {"tane", "fdep2", "hyfd", "dhyfd"};
  std::printf("%8s |", "rows\\cols");
  for (int c : col_steps) std::printf(" %7d", c);
  std::printf("\n");
  PrintRule(12 + 8 * static_cast<int>(col_steps.size()));
  for (int rows : row_steps) {
    std::printf("%8d |", rows);
    for (int cols : col_steps) {
      Relation frag = base.fragment(rows, cols);
      std::string best = "-";
      double best_time = 1e18;
      for (const std::string& algo : algos) {
        DiscoveryResult res = MakeDiscovery(algo, tl)->discover(frag);
        if (!res.stats.timed_out && res.stats.seconds < best_time) {
          best_time = res.stats.seconds;
          best = algo;
        }
      }
      std::printf(" %7s", best.c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 4.0);
  PrintHeader("Figure 8",
              "Best performer (lowest runtime) per rows x columns fragment. "
              "Paper: FDEP wins on few rows, TANE on few columns, DHyFD when "
              "both grow.");

  std::printf("weather fragments\n");
  Relation weather = LoadBenchmark("weather", flags.get_int("weather_max_rows", 12000));
  Grid(weather, {500, 1000, 2000, 4000, 8000, 12000}, {6, 9, 12, 15, 18}, tl);

  std::printf("\ndiabetic fragments\n");
  Relation diabetic =
      LoadBenchmark("diabetic", flags.get_int("diabetic_max_rows", 6000));
  Grid(diabetic, {500, 1000, 2000, 4000, 6000}, {10, 15, 20, 25, 30}, tl);
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
