// Reproduces Table II: running time (seconds) under null = null semantics
// and memory usage (MB) for TANE, FDEP, FDEP1, FDEP2, HyFD, and DHyFD on
// the benchmark-data-set analogs.
//
// Flags: --datasets=a,b,c  --rows=N (override all row counts)
//        --tl=SECONDS (per-run time limit; default 20)
//        --algos=tane,fdep,...
//        --trace=<file> (Chrome trace JSON) --metrics=<file> (Prometheus)
#include "bench_util.h"

#include "util/memory.h"

namespace dhyfd::bench {
namespace {

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  ObsSession obs(ObsOptionsFromFlags(flags));
  double tl = flags.get_double("tl", 15.0);
  std::vector<std::string> datasets;
  for (const std::string& name : BenchmarkNames()) {
    if (FindBenchmark(name)->has_table2) datasets.push_back(name);
  }
  datasets = flags.get_list("datasets", datasets);
  std::vector<std::string> algos = flags.get_list("algos", AllDiscoveryNames());

  PrintHeader("Table II",
              "Running time (s, null = null) and memory (MB). Each data set "
              "prints the paper's reported row, then the measured row on the "
              "synthetic analog (TL = exceeded the time limit).");
  std::printf("per-run time limit: %.0f s (--tl=)\n\n", tl);

  std::printf("%-11s %-9s %8s %4s %8s | %9s %9s %9s %9s %9s %9s | %9s %9s\n",
              "dataset", "", "#R", "#C", "#FD", "tane", "fdep", "fdep1", "fdep2",
              "hyfd", "dhyfd", "hyfd_MB", "dhyfd_MB");
  PrintRule(132);

  for (const std::string& name : datasets) {
    const BenchmarkInfo* info = FindBenchmark(name);
    if (info == nullptr || !info->has_table2) continue;
    const PaperTable2& p = info->t2;
    std::printf("%-11s %-9s %8d %4d %8d | %9s %9s %9s %9s %9s %9s | %9s %9s\n",
                name.c_str(), "paper", p.rows, p.cols, p.fds,
                FmtPaper(p.tane).c_str(), FmtPaper(p.fdep).c_str(),
                FmtPaper(p.fdep1).c_str(), FmtPaper(p.fdep2).c_str(),
                FmtPaper(p.hyfd).c_str(), FmtPaper(p.dhyfd).c_str(),
                FmtPaper(p.hyfd_mb).c_str(), FmtPaper(p.dhyfd_mb).c_str());

    Relation r = LoadBenchmark(name, flags.get_int("rows", 0));
    std::map<std::string, std::string> cells;
    std::map<std::string, std::string> mem_cells;
    int64_t fd_count = -1;
    std::string json_cells;
    for (const std::string& algo : algos) {
      DiscoveryResult res = MakeDiscovery(algo, tl)->discover(r);
      cells[algo] = FmtTime(res.stats);
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.1f", res.stats.memory_mb);
      mem_cells[algo] = buf;
      if (!res.stats.timed_out) fd_count = res.fds.size();
      std::snprintf(buf, sizeof(buf), ",\"%s_seconds\":%s", algo.c_str(),
                    res.stats.timed_out ? "null" : FmtTime(res.stats).c_str());
      json_cells += buf;
    }
    auto cell = [&](const char* a) -> std::string {
      auto it = cells.find(a);
      return it == cells.end() ? "-" : it->second;
    };
    auto memcell = [&](const char* a) -> std::string {
      auto it = mem_cells.find(a);
      return it == mem_cells.end() ? "-" : it->second;
    };
    std::printf("%-11s %-9s %8d %4d %8lld | %9s %9s %9s %9s %9s %9s | %9s %9s\n",
                "", "measured", r.num_rows(), r.num_cols(),
                static_cast<long long>(fd_count), cell("tane").c_str(),
                cell("fdep").c_str(), cell("fdep1").c_str(), cell("fdep2").c_str(),
                cell("hyfd").c_str(), cell("dhyfd").c_str(), memcell("hyfd").c_str(),
                memcell("dhyfd").c_str());
    std::printf("{\"bench\":\"table2\",%s,\"rows\":%d,\"cols\":%d,\"fds\":%lld%s}\n",
                JsonStamp(name).c_str(), r.num_rows(), r.num_cols(),
                static_cast<long long>(fd_count), json_cells.c_str());
    PrintRule(132);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace
}  // namespace dhyfd::bench

int main(int argc, char** argv) { return dhyfd::bench::Main(argc, argv); }
