// live_profiling_demo: incremental FD maintenance over a mutating relation.
//
// Hosts a synthetic dataset in a LiveStore, subscribes to cover-change
// events, and streams a generated insert/delete workload through it. Each
// batch prints the FDs that entered and left the maintained cover; at the
// end the demo shows the redundancy ranking of the surviving FDs and the
// store's metrics snapshot (per-batch latencies, rebuild count).
//
// Usage:
//   example_live_profiling_demo [initial_rows] [batches] [batch_size]
//                               [--trace=out.json] [--metrics=out.prom]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datagen/update_stream.h"
#include "obs/session.h"
#include "ranking/ranking.h"
#include "service/service.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  ObsSessionOptions obs_options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      obs_options.trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      obs_options.metrics_path = arg.substr(10);
    } else {
      positional.push_back(arg);
    }
  }
  int initial_rows = positional.size() > 0 ? std::atoi(positional[0].c_str()) : 800;
  int batches = positional.size() > 1 ? std::atoi(positional[1].c_str()) : 12;
  int batch_size = positional.size() > 2 ? std::atoi(positional[2].c_str()) : 48;

  // A schema whose cover actually churns: one planted FD chain (region ->
  // warehouse) for stability, plus independent medium-cardinality columns
  // whose minimal accidental FDs sit right at the validity margin — each
  // batch's inserts refute a few and its deletes restore others.
  DatasetSpec base;
  base.name = "orders";
  base.seed = 97;
  ColumnSpec region{.name = "region", .kind = ColumnKind::kRandom, .domain_size = 5};
  ColumnSpec sku{.name = "sku", .kind = ColumnKind::kRandom, .domain_size = 6};
  ColumnSpec warehouse{.name = "warehouse", .kind = ColumnKind::kDerived,
                       .domain_size = 8};
  warehouse.parents = {0};
  ColumnSpec qty{.name = "qty", .kind = ColumnKind::kRandom, .domain_size = 5};
  ColumnSpec status{.name = "status", .kind = ColumnKind::kRandom, .domain_size = 3};
  base.columns = {region, sku, warehouse, qty, status};
  base.duplicate_row_rate = 0.05;

  UpdateStreamSpec stream_spec;
  stream_spec.base = base;
  stream_spec.initial_rows = initial_rows;
  stream_spec.num_batches = batches;
  stream_spec.batch_size = batch_size;
  stream_spec.delete_fraction = 0.35;
  stream_spec.delete_skew = 1.0;
  stream_spec.seed = 3;
  UpdateStream stream = GenerateUpdateStream(stream_spec);

  // Inject a dirty-data episode every third batch: one corrupted row whose
  // warehouse contradicts its region (breaking the planted FD region ->
  // warehouse), cleaned up again by a delete in the following batch. This
  // is the live-profiling story: the cover reports the quality regression
  // the moment the bad row lands, and the repair the moment it is removed.
  {
    LiveRowId next_id = initial_rows;
    LiveRowId pending_cleanup = -1;
    for (size_t i = 0; i < stream.batches.size(); ++i) {
      UpdateBatch& b = stream.batches[i];
      if (pending_cleanup >= 0) {
        b.deletes.insert(b.deletes.begin(), pending_cleanup);
        pending_cleanup = -1;
      }
      if (i % 3 == 0 && !stream.initial.rows.empty()) {
        std::vector<std::string> dirty = stream.initial.rows[0];
        dirty[2] = "WRONG-WH";  // contradicts every clean row of this region
        b.inserts.push_back(dirty);
        pending_cleanup = next_id + static_cast<LiveRowId>(b.inserts.size()) - 1;
      }
      next_id += static_cast<LiveRowId>(b.inserts.size());
    }
  }

  MetricsRegistry metrics;
  obs_options.metrics = &metrics;
  ObsSession obs(obs_options);
  LiveStore store(&metrics, 2);
  store.create("orders", stream.initial);
  Schema schema = Schema(stream.initial.header);

  std::printf("live store up: dataset 'orders', %d rows, %lld FDs discovered\n\n",
              initial_rows, static_cast<long long>(store.cover("orders").size()));

  store.subscribe([&](const CoverChangeEvent& e) {
    const BatchStats& s = e.stats;
    std::printf("batch %llu: +%lld/-%lld rows, %lld pairs, %lld validations, "
                "%.2f ms%s\n",
                static_cast<unsigned long long>(e.batch_id),
                static_cast<long long>(s.rows_inserted),
                static_cast<long long>(s.rows_deleted),
                static_cast<long long>(s.pairs_compared),
                static_cast<long long>(s.validations), s.seconds * 1e3,
                s.rebuilt ? (" [FULL REBUILD: " + s.rebuild_reason + "]").c_str()
                          : "");
    for (const Fd& fd : e.removed.fds) {
      std::printf("  - lost     %s\n", fd.to_string(schema).c_str());
    }
    for (const Fd& fd : e.added.fds) {
      std::printf("  + restored %s\n", fd.to_string(schema).c_str());
    }
  });

  for (const UpdateBatch& batch : stream.batches) {
    store.apply("orders", batch);  // synchronous: events print in order
  }
  store.wait_all();  // listeners fire after apply() resolves; let them finish

  std::printf("\nfinal cover: %lld FDs over %d live rows\n",
              static_cast<long long>(store.cover("orders").size()),
              static_cast<int>(store.live_rows("orders")));
  std::printf("\n%s\n",
              FormatRanking(schema, store.ranking("orders"), 10).c_str());
  std::printf("%s", metrics.snapshot().c_str());
  return 0;
}
