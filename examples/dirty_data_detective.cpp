// Dirty-data detective: the paper's Section VI qualitative insight in
// reverse. FDs whose redundancy is tiny-but-nonzero are suspicious: either
// the FD holds accidentally, or — like sigma_4 = voter_id -> state, whose
// only support is a duplicated voter — the few supporting rows are dirty.
// This example surfaces those FDs together with the concrete witness rows
// a data steward should look at.
//
// Usage:
//   example_dirty_data_detective            # built-in ncvoter-style demo
//   example_dirty_data_detective data.csv
#include <cstdio>
#include <string>

#include "algo/discovery.h"
#include "datagen/benchmark_data.h"
#include "fd/cover.h"
#include "partition/stripped_partition.h"
#include "ranking/ranking.h"
#include "relation/csv.h"
#include "relation/encoder.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  RawTable table = argc > 1 ? ReadCsvFile(argv[1])
                            : GenerateBenchmark("ncvoter", 1000);
  EncodedRelation enc = EncodeRelation(table);
  const Relation& r = enc.relation;
  std::printf("inspecting %s (%d rows, %d columns)\n",
              argc > 1 ? argv[1] : "built-in ncvoter-style demo", r.num_rows(),
              r.num_cols());

  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  FdSet canonical = CanonicalCover(res.fds, r.num_cols());
  auto ranked = RankFds(r, canonical, RedundancyMode::kWithNulls);
  std::printf("%lld FDs in the canonical cover\n\n",
              static_cast<long long>(canonical.size()));

  // Suspicious FDs: the lowest-but-nonzero redundancy in the ranking — the
  // FDs whose entire support is a handful of row pairs.
  std::printf("most weakly-supported FDs and their witness rows:\n");
  int shown = 0;
  for (auto it = ranked.rbegin(); it != ranked.rend() && shown < 5; ++it) {
    if (it->with_nulls == 0) continue;
    std::printf("\n  %s  (only %lld redundant values)\n",
                it->fd.to_string(r.schema()).c_str(),
                static_cast<long long>(it->with_nulls));
    // The witnesses: the clusters of pi_LHS with >= 2 tuples.
    StrippedPartition pi = BuildPartition(r, it->fd.lhs);
    int cluster_shown = 0;
    for (dhyfd::ClusterView cluster : pi.clusters()) {
      if (cluster_shown >= 2) break;
      std::printf("    rows sharing this LHS value:\n");
      for (size_t i = 0; i < cluster.size() && i < 3; ++i) {
        std::printf("      row %d:", cluster[i]);
        for (int c = 0; c < r.num_cols() && c < 6; ++c) {
          std::printf(" %s", enc.decode(cluster[i], c).c_str());
        }
        std::printf("%s\n", r.num_cols() > 6 ? " ..." : "");
      }
      ++cluster_shown;
    }
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (none — every FD is either well-supported or a key)\n");
  }

  std::printf("\nwhat to do with these (paper Section VI): if the witness "
              "rows are near-duplicates, they are likely data-entry "
              "duplicates (sigma_4's duplicated voter); if they look "
              "unrelated, the FD probably holds by accident and should not "
              "be enforced.\n");
  return 0;
}
