// Normalization advisor: the paper grounds its redundancy ranking in
// normal-form theory — the FDs causing redundant values are the ones
// normalization eliminates. This example profiles a data set, reports
// candidate keys and the schema's normal form, ranks the BCNF violations
// by the redundancy they cause, and prints both a BCNF decomposition and a
// dependency-preserving 3NF synthesis.
//
// Usage:
//   example_normalization_advisor            # built-in lineitem-style demo
//   example_normalization_advisor data.csv
#include <cstdio>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "datagen/benchmark_data.h"
#include "fd/closure.h"
#include "fd/keys.h"
#include "fd/normalize.h"
#include "relation/csv.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  RawTable table = argc > 1 ? ReadCsvFile(argv[1])
                            : GenerateBenchmark("lineitem", 2000);
  std::printf("analyzing %s (%d rows, %d columns)\n",
              argc > 1 ? argv[1] : "built-in lineitem-style demo",
              table.num_rows(), table.num_cols());

  ProfileReport report = Profiler().profile(table);
  const Schema& schema = report.schema;
  const int n = schema.size();
  const FdSet& cover = report.canonical;

  std::vector<AttributeSet> keys = FindCandidateKeys(cover, n, 32);
  std::printf("\ncandidate keys (%zu%s):\n", keys.size(),
              keys.size() == 32 ? "+, capped" : "");
  for (size_t i = 0; i < keys.size() && i < 5; ++i) {
    std::printf("  {%s}\n", schema.format(keys[i]).c_str());
  }

  std::printf("\nnormal form: %s\n",
              IsBcnf(cover, n)   ? "BCNF"
              : Is3nf(cover, n)  ? "3NF (not BCNF)"
                                 : "below 3NF");

  std::printf("\nBCNF violations ranked by the data redundancy they cause:\n");
  ClosureEngine closure(cover, n);
  int shown = 0;
  for (const FdRedundancy& red : report.ranking) {
    if (closure.closure(red.fd.lhs).count() == n) continue;  // superkey LHS
    if (red.excluding_null_rhs == 0) continue;
    std::printf("  %-58s fixes %lld redundant values\n",
                red.fd.to_string(schema).c_str(),
                static_cast<long long>(red.excluding_null_rhs));
    if (++shown >= 8) break;
  }
  if (shown == 0) {
    std::printf("  none - the schema is effectively in BCNF for this data\n");
    return 0;
  }

  std::printf("\nBCNF decomposition (lossless%s):\n",
              DecomposeBcnf(cover, n).dependencies_preserved
                  ? ", dependency-preserving"
                  : "; some FDs become cross-table constraints");
  BcnfResult bcnf = DecomposeBcnf(cover, n);
  for (const SubSchema& s : bcnf.schemas) {
    std::printf("  %s\n", s.to_string(schema).c_str());
  }

  std::printf("\n3NF synthesis (lossless and dependency-preserving):\n");
  for (const SubSchema& s : Synthesize3nf(cover, n)) {
    std::printf("  %s\n", s.to_string(schema).c_str());
  }

  std::printf("\nredundancy eliminated by full normalization: up to %lld of "
              "%lld values (%.2f%%)\n",
              static_cast<long long>(report.dataset_redundancy.red),
              static_cast<long long>(report.dataset_redundancy.num_values),
              report.dataset_redundancy.percent_red());
  return 0;
}
