// Column investigator: the paper's Section VI-B qualitative analysis —
// "fix a column of interest and see which minimal LHSs cause how many
// redundant occurrences in that column" (the city-in-ncvoter table).
//
// Usage:
//   example_column_investigator                   # demo: ncvoter's city
//   example_column_investigator data.csv city
#include <cstdio>
#include <string>

#include "algo/discovery.h"
#include "datagen/benchmark_data.h"
#include "fd/cover.h"
#include "ranking/ranking.h"
#include "relation/csv.h"
#include "relation/encoder.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  RawTable table;
  std::string column;
  if (argc > 2) {
    table = ReadCsvFile(argv[1]);
    column = argv[2];
  } else {
    table = GenerateBenchmark("ncvoter", 1000);
    column = "city";
    std::printf("no file given; investigating column 'city' of the built-in "
                "ncvoter-style demo\n");
  }

  EncodedRelation encoded = EncodeRelation(table);
  const Relation& r = encoded.relation;
  AttrId target = r.schema().index_of(column);
  if (target < 0) {
    std::fprintf(stderr, "column '%s' not found; columns are:\n", column.c_str());
    for (const std::string& name : r.schema().names()) {
      std::fprintf(stderr, "  %s\n", name.c_str());
    }
    return 1;
  }

  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
  FdSet canonical = CanonicalCover(res.fds, r.num_cols());
  std::printf("discovered %lld FDs (canonical cover: %lld) in %.3f s\n",
              static_cast<long long>(res.fds.size()),
              static_cast<long long>(canonical.size()), res.stats.seconds);

  // The paper's per-column table: minimal LHSs determining the target,
  // with redundancy counts including (#red) and excluding (#red-0) nulls.
  // LHSs come from the left-reduced cover so every minimal LHS appears.
  auto candidates = LhsCandidatesForColumn(r, res.fds, target);
  std::printf("\nminimal LHSs for %s (%zu)\n", column.c_str(), candidates.size());
  std::printf("%-55s %8s %8s\n", "LHS", "#red", "#red-0");
  for (size_t i = 0; i < candidates.size() && i < 15; ++i) {
    // Paper Section VI-B: #red counts any redundant occurrence in the
    // column; #red-0 requires no nulls on the LHS attributes or the column.
    const FdRedundancy& c = candidates[i];
    std::printf("%-55s %8lld %8lld%s\n", r.schema().format(c.fd.lhs).c_str(),
                static_cast<long long>(c.with_nulls),
                static_cast<long long>(c.excluding_null_lhs_rhs),
                c.excluding_null_lhs_rhs > 0 &&
                        c.excluding_null_lhs_rhs == c.excluding_null_rhs
                    ? "   <- strong evidence (no nulls involved)"
                    : "");
  }

  std::printf("\nreading the table (paper Section VI-B): large #red-0 marks "
              "FDs whose pattern has strong support; #red >> #red-0 hints "
              "the agreement rides on null markers; zero redundancy marks "
              "key-like LHSs.\n");
  return 0;
}
