// fd_service_demo: the profiling service end to end.
//
// Registers three synthetic benchmark tables in a DatasetRegistry, spins up
// a JobScheduler, and submits a mixed batch of concurrent jobs across four
// discovery algorithms (dhyfd, tane, hyfd, fdep) at different priorities —
// plus one deliberately slow job that gets cancelled mid-run and one with a
// tight per-job time limit. Prints every job's outcome and the service's
// metrics snapshot (per-stage latencies included).
//
// Usage:
//   example_fd_service_demo [threads] [rows] [--trace=out.json] [--metrics=out.prom]
//
// --trace exports a Chrome trace (open in Perfetto / chrome://tracing): each
// job's queue-wait, run span, discovery stages, and algorithm counter series
// grouped under its args.trace_id. --metrics writes the final Prometheus
// snapshot.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "datagen/benchmark_data.h"
#include "obs/session.h"
#include "service/service.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  // Positional args first, --key=value flags anywhere.
  ObsSessionOptions obs_options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      obs_options.trace_path = arg.substr(8);
    } else if (arg.rfind("--metrics=", 0) == 0) {
      obs_options.metrics_path = arg.substr(10);
    } else {
      positional.push_back(arg);
    }
  }
  int threads = positional.size() > 0 ? std::atoi(positional[0].c_str()) : 4;
  int rows = positional.size() > 1 ? std::atoi(positional[1].c_str()) : 1500;

  MetricsRegistry metrics;
  obs_options.metrics = &metrics;  // export the service registry, not a private one
  ObsSession obs(obs_options);
  DatasetRegistry datasets(&metrics);
  datasets.add_table("ncvoter", GenerateBenchmark("ncvoter", rows));
  datasets.add_table("adult", GenerateBenchmark("adult", rows));
  datasets.add_table("abalone", GenerateBenchmark("abalone", rows));
  // A bigger table for the job we cancel: fdep compares all tuple pairs, so
  // at 6x the rows it reliably outlives the cancel request below.
  datasets.add_table("ncvoter_big", GenerateBenchmark("ncvoter", rows * 6));

  JobScheduler scheduler(&datasets, &metrics, {.num_threads = threads});
  std::printf("service up: %d worker threads, datasets:", scheduler.num_threads());
  for (const std::string& name : datasets.names()) std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // The mixed batch: 9 jobs, 4 algorithms, 3 datasets, varying priorities.
  // Repeated (dataset, semantics) pairs hit the registry's encoding cache.
  struct Spec { const char* dataset; const char* algorithm; int priority; };
  const std::vector<Spec> batch = {
      {"ncvoter", "dhyfd", 2}, {"ncvoter", "tane", 0}, {"ncvoter", "hyfd", 1},
      {"adult", "dhyfd", 2},   {"adult", "fdep", 0},   {"adult", "tane", 1},
      {"abalone", "dhyfd", 1}, {"abalone", "hyfd", 0}, {"abalone", "fdep", 0},
  };

  std::vector<JobHandlePtr> handles;
  for (const Spec& spec : batch) {
    ProfileJob job;
    job.dataset = spec.dataset;
    job.options.algorithm = spec.algorithm;
    job.priority = spec.priority;
    handles.push_back(scheduler.submit(job));
  }

  // The victim: a slow full-pipeline job we cancel shortly after submission.
  ProfileJob victim_job;
  victim_job.dataset = "ncvoter_big";
  victim_job.options.algorithm = "fdep";
  victim_job.priority = 3;  // jumps the queue so it is running when we cancel
  JobHandlePtr victim = scheduler.submit(victim_job);

  // A job with a per-job time limit far below what fdep needs at this size.
  ProfileJob limited_job;
  limited_job.dataset = "ncvoter_big";
  limited_job.options.algorithm = "fdep";
  limited_job.time_limit_seconds = 0.05;
  JobHandlePtr limited = scheduler.submit(limited_job);

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::printf("cancelling job #%llu (%s on ncvoter_big) after 100 ms...\n\n",
              static_cast<unsigned long long>(victim->id()),
              victim->job().options.algorithm.c_str());
  victim->cancel();

  scheduler.wait_all();

  std::printf("%-4s %-12s %-7s %-10s %9s %9s  %s\n", "id", "dataset", "algo",
              "state", "queued_s", "run_s", "detail");
  auto print_row = [](const JobHandlePtr& h) {
    std::string detail;
    if (h->state() == JobState::kDone) {
      const ProfileReport& rep = h->report();
      detail = "|L-r|=" + std::to_string(rep.left_reduced.size()) +
               " |Can|=" + std::to_string(rep.canonical.size());
      if (rep.discovery.stats.timed_out) detail += " (timed out: partial)";
    } else if (h->state() == JobState::kFailed) {
      detail = h->error();
    } else {
      detail = "stopped early";
    }
    std::printf("%-4llu %-12s %-7s %-10s %9.4f %9.4f  %s\n",
                static_cast<unsigned long long>(h->id()),
                h->job().dataset.c_str(), h->job().options.algorithm.c_str(),
                JobStateName(h->state()), h->queue_seconds(), h->run_seconds(),
                detail.c_str());
  };
  for (const JobHandlePtr& h : handles) print_row(h);
  print_row(victim);
  print_row(limited);

  if (victim->state() != JobState::kCancelled) {
    std::printf("\nWARNING: victim finished before the cancel landed; rerun "
                "with more rows.\n");
  }

  std::printf("\n=== metrics snapshot ===\n%s", metrics.snapshot().c_str());
  return 0;
}
