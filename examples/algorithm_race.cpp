// Algorithm race: run all six discovery algorithms on the same input and
// compare runtimes, validations, and sampling effort — a miniature of the
// paper's Table II on any CSV you have lying around.
//
// Usage:
//   example_algorithm_race                 # built-in abalone-style demo
//   example_algorithm_race data.csv
//   example_algorithm_race data.csv 10    # per-algorithm time limit (s)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "algo/discovery.h"
#include "datagen/benchmark_data.h"
#include "relation/csv.h"
#include "relation/encoder.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  RawTable table = argc > 1 ? ReadCsvFile(argv[1])
                            : GenerateBenchmark("abalone", 4177);
  double tl = argc > 2 ? std::atof(argv[2]) : 30.0;

  EncodedRelation encoded = EncodeRelation(table);
  const Relation& r = encoded.relation;
  std::printf("racing %d rows x %d columns (time limit %.0f s per algorithm)\n\n",
              r.num_rows(), r.num_cols(), tl);

  std::printf("%-8s %10s %8s %12s %12s %12s %10s\n", "algo", "time_s", "#FD",
              "validations", "pairs", "refinements", "mem_MB");
  for (const std::string& name : AllDiscoveryNames()) {
    DiscoveryResult res = MakeDiscovery(name, tl)->discover(r);
    if (res.stats.timed_out) {
      std::printf("%-8s %10s\n", name.c_str(), "TL");
      continue;
    }
    std::printf("%-8s %10.3f %8lld %12lld %12lld %12lld %10.1f\n", name.c_str(),
                res.stats.seconds, static_cast<long long>(res.fds.size()),
                static_cast<long long>(res.stats.validations),
                static_cast<long long>(res.stats.pairs_compared),
                static_cast<long long>(res.stats.refinements),
                res.stats.memory_mb);
  }
  std::printf("\nall algorithms compute the same left-reduced cover; the race "
              "is about how much of the row/column structure each one "
              "exploits (paper Sections IV-V).\n");
  return 0;
}
