// Null-semantics explorer: Section V-B of the paper stresses that the two
// common interpretations of missing values (null = null vs null != null)
// change which FDs hold and how relevant they are. This example profiles
// an incomplete data set under both semantics and shows the FDs whose
// status flips, plus the paper's sigma_3-style diagnosis: FDs whose
// redundancy is almost entirely null markers are likely accidental.
//
// Usage:
//   example_null_semantics_explorer            # built-in bridges-style demo
//   example_null_semantics_explorer data.csv
#include <cstdio>
#include <string>

#include "core/profiler.h"
#include "datagen/benchmark_data.h"
#include "fd/closure.h"
#include "relation/csv.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  RawTable table = argc > 1 ? ReadCsvFile(argv[1])
                            : GenerateBenchmark("bridges", 108);
  std::printf("analyzing %s (%d rows, %d columns)\n",
              argc > 1 ? argv[1] : "built-in bridges-style demo",
              table.num_rows(), table.num_cols());

  ProfileOptions eq_opts;
  eq_opts.semantics = NullSemantics::kNullEqualsNull;
  ProfileReport eq = Profiler(eq_opts).profile(table);

  ProfileOptions neq_opts;
  neq_opts.semantics = NullSemantics::kNullNotEqualsNull;
  ProfileReport neq = Profiler(neq_opts).profile(table);

  std::printf("\nnull occurrences: %lld (%d incomplete columns)\n",
              static_cast<long long>(eq.null_stats.null_occurrences),
              eq.null_stats.incomplete_columns);
  std::printf("%-14s %14s %14s\n", "", "null = null", "null != null");
  std::printf("%-14s %14lld %14lld\n", "|L-r|",
              static_cast<long long>(eq.left_reduced.size()),
              static_cast<long long>(neq.left_reduced.size()));
  std::printf("%-14s %14lld %14lld\n", "|Can|",
              static_cast<long long>(eq.canonical.size()),
              static_cast<long long>(neq.canonical.size()));
  std::printf("%-14s %14lld %14lld\n", "#red",
              static_cast<long long>(eq.dataset_redundancy.red),
              static_cast<long long>(neq.dataset_redundancy.red));

  // Making nulls unique can only shrink agreement clusters, so every
  // null = null FD keeps holding; the interesting delta is the FDs GAINED
  // under null != null — they hold only because null collisions no longer
  // create violating pairs.
  const int n = eq.schema.size();
  ClosureEngine eq_closure(eq.left_reduced, n);
  std::printf("\nFDs gained under null != null (their violations were pairs "
              "of matching null markers):\n");
  int shown = 0;
  for (const Fd& fd : neq.canonical.fds) {
    if (!eq_closure.implies(fd.lhs, fd.rhs)) {
      std::printf("  %s\n", fd.to_string(neq.schema).c_str());
      if (++shown >= 8) break;
    }
  }
  if (shown == 0) std::printf("  (none)\n");

  // Paper's sigma_3 diagnostic: redundancy dominated by null markers.
  std::printf("\nlikely-accidental FDs (over 80%% of their redundant values "
              "are null markers):\n");
  shown = 0;
  for (const FdRedundancy& red : eq.ranking) {
    if (red.with_nulls >= 5 &&
        static_cast<double>(red.excluding_null_rhs) <
            0.2 * static_cast<double>(red.with_nulls)) {
      std::printf("  %-50s #red+0=%lld but #red=%lld\n",
                  red.fd.to_string(eq.schema).c_str(),
                  static_cast<long long>(red.with_nulls),
                  static_cast<long long>(red.excluding_null_rhs));
      if (++shown >= 8) break;
    }
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}
