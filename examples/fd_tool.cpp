// fd_tool: a small command-line front end for the whole library.
//
//   example_fd_tool discover <csv> [--algo=dhyfd] [--semantics=eq|neq]
//                   [--canonical] [--out=cover.fds]
//       Discover FDs, optionally reduce to a canonical cover, print or save.
//
//   example_fd_tool rank <csv> [--cover=cover.fds] [--top=20]
//       Rank FDs by the data redundancy they cause (discovers a canonical
//       cover first unless one is loaded from --cover).
//
//   example_fd_tool keys <csv>
//       Candidate keys of the data set.
//
//   example_fd_tool armstrong <cover.fds> [--out=sample.csv]
//       Generate a minimal Armstrong relation for a saved cover: a sample
//       database that satisfies exactly those FDs.
//
//   example_fd_tool generate <dataset> [rows] [--out=data.csv]
//       Emit one of the built-in benchmark analogs as CSV.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "algo/discovery.h"
#include "core/profiler.h"
#include "datagen/benchmark_data.h"
#include "fd/armstrong.h"
#include "fd/cover.h"
#include "fd/cover_io.h"
#include "fd/keys.h"
#include "ranking/ranking.h"
#include "relation/csv.h"
#include "relation/encoder.h"

namespace {

using namespace dhyfd;

std::string GetFlag(int argc, char** argv, const std::string& key,
                    const std::string& def) {
  std::string prefix = "--" + key + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const std::string& key) {
  std::string flag = "--" + key;
  for (int i = 2; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int CmdDiscover(int argc, char** argv) {
  RawTable table = ReadCsvFile(argv[2]);
  NullSemantics sem = GetFlag(argc, argv, "semantics", "eq") == "neq"
                          ? NullSemantics::kNullNotEqualsNull
                          : NullSemantics::kNullEqualsNull;
  EncodedRelation enc = EncodeRelation(table, sem);
  std::string algo = GetFlag(argc, argv, "algo", "dhyfd");
  DiscoveryResult res = MakeDiscovery(algo)->discover(enc.relation);
  std::fprintf(stderr, "%s: %lld FDs in %.3f s (%.1f MB)\n", algo.c_str(),
               static_cast<long long>(res.fds.size()), res.stats.seconds,
               res.stats.memory_mb);
  FdSet cover = res.fds;
  if (HasFlag(argc, argv, "canonical")) {
    cover = CanonicalCover(cover, enc.relation.num_cols());
    std::fprintf(stderr, "canonical cover: %lld FDs\n",
                 static_cast<long long>(cover.size()));
  }
  std::string out = GetFlag(argc, argv, "out", "");
  if (out.empty()) {
    std::printf("%s", WriteCoverString(enc.relation.schema(), cover).c_str());
  } else {
    WriteCoverFile(enc.relation.schema(), cover, out);
    std::fprintf(stderr, "wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdRank(int argc, char** argv) {
  RawTable table = ReadCsvFile(argv[2]);
  EncodedRelation enc = EncodeRelation(table);
  FdSet cover;
  std::string cover_path = GetFlag(argc, argv, "cover", "");
  if (!cover_path.empty()) {
    cover = ReadCoverFile(cover_path).cover;
  } else {
    DiscoveryResult res = MakeDiscovery("dhyfd")->discover(enc.relation);
    cover = CanonicalCover(res.fds, enc.relation.num_cols());
  }
  auto ranked = RankFds(enc.relation, cover);
  int top = std::atoi(GetFlag(argc, argv, "top", "20").c_str());
  std::printf("%s", FormatRanking(enc.relation.schema(), ranked,
                                  static_cast<size_t>(top))
                        .c_str());
  return 0;
}

int CmdKeys(int /*argc*/, char** argv) {
  RawTable table = ReadCsvFile(argv[2]);
  EncodedRelation enc = EncodeRelation(table);
  DiscoveryResult res = MakeDiscovery("dhyfd")->discover(enc.relation);
  FdSet canonical = CanonicalCover(res.fds, enc.relation.num_cols());
  auto keys = FindCandidateKeys(canonical, enc.relation.num_cols(), 64);
  std::printf("%zu candidate key(s):\n", keys.size());
  for (const AttributeSet& key : keys) {
    std::printf("  {%s}\n", enc.relation.schema().format(key).c_str());
  }
  return 0;
}

int CmdArmstrong(int argc, char** argv) {
  LoadedCover loaded = ReadCoverFile(argv[2]);
  Relation r = BuildArmstrongRelation(loaded.cover, loaded.schema.size());
  // Decode into a CSV with per-column symbolic values.
  RawTable out;
  out.header = loaded.schema.names();
  out.rows.assign(r.num_rows(), std::vector<std::string>(r.num_cols()));
  for (RowId row = 0; row < r.num_rows(); ++row) {
    for (int c = 0; c < r.num_cols(); ++c) {
      out.rows[row][c] =
          loaded.schema.name(c) + std::to_string(r.value(row, c));
    }
  }
  std::string path = GetFlag(argc, argv, "out", "");
  if (path.empty()) {
    std::printf("%s", WriteCsvString(out).c_str());
  } else {
    std::ofstream f(path);
    WriteCsv(out, f);
    std::fprintf(stderr, "wrote %d-row Armstrong relation to %s\n",
                 out.num_rows(), path.c_str());
  }
  return 0;
}

int CmdGenerate(int argc, char** argv) {
  int rows = argc > 3 && argv[3][0] != '-' ? std::atoi(argv[3]) : 0;
  RawTable table = GenerateBenchmark(argv[2], rows);
  std::string path = GetFlag(argc, argv, "out", "");
  if (path.empty()) {
    std::printf("%s", WriteCsvString(table).c_str());
  } else {
    std::ofstream f(path);
    WriteCsv(table, f);
    std::fprintf(stderr, "wrote %d rows to %s\n", table.num_rows(), path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s discover|rank|keys|armstrong|generate <input> "
                 "[flags]\n(see file header for details)\n",
                 argv[0]);
    return 2;
  }
  std::string cmd = argv[1];
  try {
    if (cmd == "discover") return CmdDiscover(argc, argv);
    if (cmd == "rank") return CmdRank(argc, argv);
    if (cmd == "keys") return CmdKeys(argc, argv);
    if (cmd == "armstrong") return CmdArmstrong(argc, argv);
    if (cmd == "generate") return CmdGenerate(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
