// Quickstart: profile a CSV file (or a built-in demo table) in one call —
// discover the FDs with DHyFD, shrink the output to a canonical cover, and
// rank the FDs by the data redundancy they cause.
//
// Usage:
//   example_quickstart                # runs on a built-in ncvoter-style demo
//   example_quickstart data.csv      # profiles your CSV (header expected)
//   example_quickstart data.csv hyfd # pick the discovery algorithm
#include <cstdio>
#include <string>

#include "core/profiler.h"
#include "datagen/benchmark_data.h"
#include "relation/csv.h"

int main(int argc, char** argv) {
  using namespace dhyfd;

  RawTable table;
  if (argc > 1) {
    table = ReadCsvFile(argv[1]);
    std::printf("profiling %s: %d rows, %d columns\n", argv[1], table.num_rows(),
                table.num_cols());
  } else {
    table = GenerateBenchmark("ncvoter", 1000);
    std::printf("no file given; profiling the built-in ncvoter-style demo "
                "(%d rows, %d columns)\n",
                table.num_rows(), table.num_cols());
  }

  ProfileOptions options;
  if (argc > 2) options.algorithm = argv[2];

  ProfileReport report = Profiler(options).profile(table);

  std::printf("\n%s\n", report.summary().c_str());
  std::printf("top FDs by redundancy (the patterns with the strongest support "
              "in the data):\n");
  std::printf("%s", FormatRanking(report.schema, report.ranking, 10).c_str());

  std::printf("\nFDs causing zero redundancy (LHSs that look like keys):\n");
  int shown = 0;
  for (auto it = report.ranking.rbegin(); it != report.ranking.rend() && shown < 5;
       ++it) {
    if (it->excluding_null_rhs == 0) {
      std::printf("  %s\n", it->fd.to_string(report.schema).c_str());
      ++shown;
    }
  }
  if (shown == 0) std::printf("  (none)\n");
  return 0;
}
