# Empty dependencies file for bench_table3_covers.
# This may be replaced when dependencies are built.
