file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_covers.dir/bench_table3_covers.cc.o"
  "CMakeFiles/bench_table3_covers.dir/bench_table3_covers.cc.o.d"
  "bench_table3_covers"
  "bench_table3_covers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_covers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
