# Empty dependencies file for bench_fig8_grid.
# This may be replaced when dependencies are built.
