file(REMOVE_RECURSE
  "CMakeFiles/bench_null_semantics.dir/bench_null_semantics.cc.o"
  "CMakeFiles/bench_null_semantics.dir/bench_null_semantics.cc.o.d"
  "bench_null_semantics"
  "bench_null_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_null_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
