# Empty compiler generated dependencies file for bench_null_semantics.
# This may be replaced when dependencies are built.
