# Empty dependencies file for bench_fig10_ranking.
# This may be replaced when dependencies are built.
