file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ranking.dir/bench_fig10_ranking.cc.o"
  "CMakeFiles/bench_fig10_ranking.dir/bench_fig10_ranking.cc.o.d"
  "bench_fig10_ranking"
  "bench_fig10_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
