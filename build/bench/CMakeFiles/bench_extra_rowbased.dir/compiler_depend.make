# Empty compiler generated dependencies file for bench_extra_rowbased.
# This may be replaced when dependencies are built.
