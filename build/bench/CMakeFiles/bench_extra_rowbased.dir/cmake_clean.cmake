file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_rowbased.dir/bench_extra_rowbased.cc.o"
  "CMakeFiles/bench_extra_rowbased.dir/bench_extra_rowbased.cc.o.d"
  "bench_extra_rowbased"
  "bench_extra_rowbased.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_rowbased.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
