# Empty compiler generated dependencies file for bench_fig11_ncvoter_nulls.
# This may be replaced when dependencies are built.
