file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_ncvoter_nulls.dir/bench_fig11_ncvoter_nulls.cc.o"
  "CMakeFiles/bench_fig11_ncvoter_nulls.dir/bench_fig11_ncvoter_nulls.cc.o.d"
  "bench_fig11_ncvoter_nulls"
  "bench_fig11_ncvoter_nulls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_ncvoter_nulls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
