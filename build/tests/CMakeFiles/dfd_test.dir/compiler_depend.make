# Empty compiler generated dependencies file for dfd_test.
# This may be replaced when dependencies are built.
