file(REMOVE_RECURSE
  "CMakeFiles/dfd_test.dir/dfd_test.cc.o"
  "CMakeFiles/dfd_test.dir/dfd_test.cc.o.d"
  "dfd_test"
  "dfd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
