file(REMOVE_RECURSE
  "CMakeFiles/attribute_set_test.dir/attribute_set_test.cc.o"
  "CMakeFiles/attribute_set_test.dir/attribute_set_test.cc.o.d"
  "attribute_set_test"
  "attribute_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
