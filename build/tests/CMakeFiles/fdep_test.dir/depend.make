# Empty dependencies file for fdep_test.
# This may be replaced when dependencies are built.
