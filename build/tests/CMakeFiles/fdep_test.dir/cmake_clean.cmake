file(REMOVE_RECURSE
  "CMakeFiles/fdep_test.dir/fdep_test.cc.o"
  "CMakeFiles/fdep_test.dir/fdep_test.cc.o.d"
  "fdep_test"
  "fdep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
