# Empty dependencies file for null_semantics_property_test.
# This may be replaced when dependencies are built.
