file(REMOVE_RECURSE
  "CMakeFiles/discovery_property_test.dir/discovery_property_test.cc.o"
  "CMakeFiles/discovery_property_test.dir/discovery_property_test.cc.o.d"
  "discovery_property_test"
  "discovery_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discovery_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
