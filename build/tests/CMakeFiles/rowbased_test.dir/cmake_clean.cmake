file(REMOVE_RECURSE
  "CMakeFiles/rowbased_test.dir/rowbased_test.cc.o"
  "CMakeFiles/rowbased_test.dir/rowbased_test.cc.o.d"
  "rowbased_test"
  "rowbased_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rowbased_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
