# Empty dependencies file for rowbased_test.
# This may be replaced when dependencies are built.
