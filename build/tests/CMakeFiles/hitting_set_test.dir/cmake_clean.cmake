file(REMOVE_RECURSE
  "CMakeFiles/hitting_set_test.dir/hitting_set_test.cc.o"
  "CMakeFiles/hitting_set_test.dir/hitting_set_test.cc.o.d"
  "hitting_set_test"
  "hitting_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hitting_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
