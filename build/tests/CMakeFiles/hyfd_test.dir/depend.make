# Empty dependencies file for hyfd_test.
# This may be replaced when dependencies are built.
