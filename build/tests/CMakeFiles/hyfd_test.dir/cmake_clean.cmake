file(REMOVE_RECURSE
  "CMakeFiles/hyfd_test.dir/hyfd_test.cc.o"
  "CMakeFiles/hyfd_test.dir/hyfd_test.cc.o.d"
  "hyfd_test"
  "hyfd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
