# Empty dependencies file for fd_tree_test.
# This may be replaced when dependencies are built.
