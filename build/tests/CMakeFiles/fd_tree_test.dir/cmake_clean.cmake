file(REMOVE_RECURSE
  "CMakeFiles/fd_tree_test.dir/fd_tree_test.cc.o"
  "CMakeFiles/fd_tree_test.dir/fd_tree_test.cc.o.d"
  "fd_tree_test"
  "fd_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
