# Empty compiler generated dependencies file for ddm_test.
# This may be replaced when dependencies are built.
