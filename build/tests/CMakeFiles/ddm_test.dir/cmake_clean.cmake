file(REMOVE_RECURSE
  "CMakeFiles/ddm_test.dir/ddm_test.cc.o"
  "CMakeFiles/ddm_test.dir/ddm_test.cc.o.d"
  "ddm_test"
  "ddm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
