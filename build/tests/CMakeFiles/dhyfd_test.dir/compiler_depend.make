# Empty compiler generated dependencies file for dhyfd_test.
# This may be replaced when dependencies are built.
