file(REMOVE_RECURSE
  "CMakeFiles/dhyfd_test.dir/dhyfd_test.cc.o"
  "CMakeFiles/dhyfd_test.dir/dhyfd_test.cc.o.d"
  "dhyfd_test"
  "dhyfd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dhyfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
