file(REMOVE_RECURSE
  "CMakeFiles/agree_sets_test.dir/agree_sets_test.cc.o"
  "CMakeFiles/agree_sets_test.dir/agree_sets_test.cc.o.d"
  "agree_sets_test"
  "agree_sets_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agree_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
