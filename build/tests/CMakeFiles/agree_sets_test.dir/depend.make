# Empty dependencies file for agree_sets_test.
# This may be replaced when dependencies are built.
