# Empty dependencies file for cover_io_test.
# This may be replaced when dependencies are built.
