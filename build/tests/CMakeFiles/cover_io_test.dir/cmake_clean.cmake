file(REMOVE_RECURSE
  "CMakeFiles/cover_io_test.dir/cover_io_test.cc.o"
  "CMakeFiles/cover_io_test.dir/cover_io_test.cc.o.d"
  "cover_io_test"
  "cover_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cover_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
