file(REMOVE_RECURSE
  "CMakeFiles/fdtree_induction_chain_test.dir/fdtree_induction_chain_test.cc.o"
  "CMakeFiles/fdtree_induction_chain_test.dir/fdtree_induction_chain_test.cc.o.d"
  "fdtree_induction_chain_test"
  "fdtree_induction_chain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdtree_induction_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
