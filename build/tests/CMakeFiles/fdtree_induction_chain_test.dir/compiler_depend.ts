# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fdtree_induction_chain_test.
