# Empty compiler generated dependencies file for fdtree_induction_chain_test.
# This may be replaced when dependencies are built.
