# Empty compiler generated dependencies file for extended_fd_tree_test.
# This may be replaced when dependencies are built.
