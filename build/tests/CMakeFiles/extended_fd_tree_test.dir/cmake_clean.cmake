file(REMOVE_RECURSE
  "CMakeFiles/extended_fd_tree_test.dir/extended_fd_tree_test.cc.o"
  "CMakeFiles/extended_fd_tree_test.dir/extended_fd_tree_test.cc.o.d"
  "extended_fd_tree_test"
  "extended_fd_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_fd_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
