# Empty dependencies file for dhyfd.
# This may be replaced when dependencies are built.
