
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/agree_sets.cc" "src/CMakeFiles/dhyfd.dir/algo/agree_sets.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/agree_sets.cc.o.d"
  "/root/repo/src/algo/ddm.cc" "src/CMakeFiles/dhyfd.dir/algo/ddm.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/ddm.cc.o.d"
  "/root/repo/src/algo/dfd.cc" "src/CMakeFiles/dhyfd.dir/algo/dfd.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/dfd.cc.o.d"
  "/root/repo/src/algo/dhyfd.cc" "src/CMakeFiles/dhyfd.dir/algo/dhyfd.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/dhyfd.cc.o.d"
  "/root/repo/src/algo/discovery.cc" "src/CMakeFiles/dhyfd.dir/algo/discovery.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/discovery.cc.o.d"
  "/root/repo/src/algo/fdep.cc" "src/CMakeFiles/dhyfd.dir/algo/fdep.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/fdep.cc.o.d"
  "/root/repo/src/algo/hitting_set.cc" "src/CMakeFiles/dhyfd.dir/algo/hitting_set.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/hitting_set.cc.o.d"
  "/root/repo/src/algo/hyfd.cc" "src/CMakeFiles/dhyfd.dir/algo/hyfd.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/hyfd.cc.o.d"
  "/root/repo/src/algo/rowbased.cc" "src/CMakeFiles/dhyfd.dir/algo/rowbased.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/rowbased.cc.o.d"
  "/root/repo/src/algo/sampler.cc" "src/CMakeFiles/dhyfd.dir/algo/sampler.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/sampler.cc.o.d"
  "/root/repo/src/algo/tane.cc" "src/CMakeFiles/dhyfd.dir/algo/tane.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/tane.cc.o.d"
  "/root/repo/src/algo/validator.cc" "src/CMakeFiles/dhyfd.dir/algo/validator.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/algo/validator.cc.o.d"
  "/root/repo/src/core/profiler.cc" "src/CMakeFiles/dhyfd.dir/core/profiler.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/core/profiler.cc.o.d"
  "/root/repo/src/datagen/benchmark_data.cc" "src/CMakeFiles/dhyfd.dir/datagen/benchmark_data.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/datagen/benchmark_data.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/CMakeFiles/dhyfd.dir/datagen/generator.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/datagen/generator.cc.o.d"
  "/root/repo/src/fd/armstrong.cc" "src/CMakeFiles/dhyfd.dir/fd/armstrong.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/armstrong.cc.o.d"
  "/root/repo/src/fd/closure.cc" "src/CMakeFiles/dhyfd.dir/fd/closure.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/closure.cc.o.d"
  "/root/repo/src/fd/cover.cc" "src/CMakeFiles/dhyfd.dir/fd/cover.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/cover.cc.o.d"
  "/root/repo/src/fd/cover_io.cc" "src/CMakeFiles/dhyfd.dir/fd/cover_io.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/cover_io.cc.o.d"
  "/root/repo/src/fd/fd.cc" "src/CMakeFiles/dhyfd.dir/fd/fd.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/fd.cc.o.d"
  "/root/repo/src/fd/fd_set.cc" "src/CMakeFiles/dhyfd.dir/fd/fd_set.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/fd_set.cc.o.d"
  "/root/repo/src/fd/keys.cc" "src/CMakeFiles/dhyfd.dir/fd/keys.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/keys.cc.o.d"
  "/root/repo/src/fd/normalize.cc" "src/CMakeFiles/dhyfd.dir/fd/normalize.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fd/normalize.cc.o.d"
  "/root/repo/src/fdtree/extended_fd_tree.cc" "src/CMakeFiles/dhyfd.dir/fdtree/extended_fd_tree.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fdtree/extended_fd_tree.cc.o.d"
  "/root/repo/src/fdtree/fd_tree.cc" "src/CMakeFiles/dhyfd.dir/fdtree/fd_tree.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/fdtree/fd_tree.cc.o.d"
  "/root/repo/src/partition/partition_cache.cc" "src/CMakeFiles/dhyfd.dir/partition/partition_cache.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/partition/partition_cache.cc.o.d"
  "/root/repo/src/partition/partition_ops.cc" "src/CMakeFiles/dhyfd.dir/partition/partition_ops.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/partition/partition_ops.cc.o.d"
  "/root/repo/src/partition/stripped_partition.cc" "src/CMakeFiles/dhyfd.dir/partition/stripped_partition.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/partition/stripped_partition.cc.o.d"
  "/root/repo/src/ranking/ranking.cc" "src/CMakeFiles/dhyfd.dir/ranking/ranking.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/ranking/ranking.cc.o.d"
  "/root/repo/src/ranking/redundancy.cc" "src/CMakeFiles/dhyfd.dir/ranking/redundancy.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/ranking/redundancy.cc.o.d"
  "/root/repo/src/relation/csv.cc" "src/CMakeFiles/dhyfd.dir/relation/csv.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/relation/csv.cc.o.d"
  "/root/repo/src/relation/encoder.cc" "src/CMakeFiles/dhyfd.dir/relation/encoder.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/relation/encoder.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/dhyfd.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/relation/relation.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/CMakeFiles/dhyfd.dir/relation/schema.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/relation/schema.cc.o.d"
  "/root/repo/src/util/memory.cc" "src/CMakeFiles/dhyfd.dir/util/memory.cc.o" "gcc" "src/CMakeFiles/dhyfd.dir/util/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
