file(REMOVE_RECURSE
  "libdhyfd.a"
)
