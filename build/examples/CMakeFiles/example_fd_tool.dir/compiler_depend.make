# Empty compiler generated dependencies file for example_fd_tool.
# This may be replaced when dependencies are built.
