file(REMOVE_RECURSE
  "CMakeFiles/example_fd_tool.dir/fd_tool.cpp.o"
  "CMakeFiles/example_fd_tool.dir/fd_tool.cpp.o.d"
  "example_fd_tool"
  "example_fd_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fd_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
