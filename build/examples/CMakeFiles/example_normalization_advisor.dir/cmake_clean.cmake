file(REMOVE_RECURSE
  "CMakeFiles/example_normalization_advisor.dir/normalization_advisor.cpp.o"
  "CMakeFiles/example_normalization_advisor.dir/normalization_advisor.cpp.o.d"
  "example_normalization_advisor"
  "example_normalization_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_normalization_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
