# Empty compiler generated dependencies file for example_normalization_advisor.
# This may be replaced when dependencies are built.
