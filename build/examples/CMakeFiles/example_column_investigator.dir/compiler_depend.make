# Empty compiler generated dependencies file for example_column_investigator.
# This may be replaced when dependencies are built.
