file(REMOVE_RECURSE
  "CMakeFiles/example_column_investigator.dir/column_investigator.cpp.o"
  "CMakeFiles/example_column_investigator.dir/column_investigator.cpp.o.d"
  "example_column_investigator"
  "example_column_investigator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_column_investigator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
