file(REMOVE_RECURSE
  "CMakeFiles/example_null_semantics_explorer.dir/null_semantics_explorer.cpp.o"
  "CMakeFiles/example_null_semantics_explorer.dir/null_semantics_explorer.cpp.o.d"
  "example_null_semantics_explorer"
  "example_null_semantics_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_null_semantics_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
