# Empty compiler generated dependencies file for example_null_semantics_explorer.
# This may be replaced when dependencies are built.
