file(REMOVE_RECURSE
  "CMakeFiles/example_algorithm_race.dir/algorithm_race.cpp.o"
  "CMakeFiles/example_algorithm_race.dir/algorithm_race.cpp.o.d"
  "example_algorithm_race"
  "example_algorithm_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_algorithm_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
