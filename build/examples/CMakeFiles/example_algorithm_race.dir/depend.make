# Empty dependencies file for example_algorithm_race.
# This may be replaced when dependencies are built.
