# Empty compiler generated dependencies file for example_dirty_data_detective.
# This may be replaced when dependencies are built.
