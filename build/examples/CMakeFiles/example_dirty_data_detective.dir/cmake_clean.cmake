file(REMOVE_RECURSE
  "CMakeFiles/example_dirty_data_detective.dir/dirty_data_detective.cpp.o"
  "CMakeFiles/example_dirty_data_detective.dir/dirty_data_detective.cpp.o.d"
  "example_dirty_data_detective"
  "example_dirty_data_detective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dirty_data_detective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
