// Edge-case and property tests for the CSR IntersectPartitions /
// PartitionIntersector against a legacy nested-vector reference
// implementation of TANE's stripped product.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "partition/partition_ops.h"
#include "partition/stripped_partition.h"
#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

using testutil::FromValues;
using testutil::RandomRelation;

/// The pre-CSR reference: vector-of-vectors probe-table product, kept here
/// verbatim (modulo types) as the semantic oracle for the flat kernel.
std::vector<std::vector<RowId>> ReferenceIntersect(
    const std::vector<std::vector<RowId>>& a,
    const std::vector<std::vector<RowId>>& b, RowId num_rows) {
  std::vector<int32_t> probe(num_rows, -1);
  for (size_t i = 0; i < a.size(); ++i) {
    for (RowId row : a[i]) probe[row] = static_cast<int32_t>(i);
  }
  std::vector<std::vector<RowId>> out;
  std::vector<std::vector<RowId>> groups(a.size());
  std::vector<int32_t> touched;
  for (const auto& cluster : b) {
    for (RowId row : cluster) {
      int32_t g = probe[row];
      if (g < 0) continue;
      if (groups[g].empty()) touched.push_back(g);
      groups[g].push_back(row);
    }
    for (int32_t g : touched) {
      if (groups[g].size() >= 2) {
        out.emplace_back(std::move(groups[g]));
        groups[g] = {};
      } else {
        groups[g].clear();
      }
    }
    touched.clear();
  }
  return out;
}

std::vector<std::vector<RowId>> ToNested(const StrippedPartition& p) {
  std::vector<std::vector<RowId>> out;
  for (ClusterView c : p.clusters()) out.emplace_back(c.begin(), c.end());
  return out;
}

std::string NestedToString(std::vector<std::vector<RowId>> clusters) {
  for (auto& c : clusters) std::sort(c.begin(), c.end());
  std::sort(clusters.begin(), clusters.end(),
            [](const std::vector<RowId>& a, const std::vector<RowId>& b) {
              return a.front() < b.front();
            });
  std::string s = "{";
  for (size_t i = 0; i < clusters.size(); ++i) {
    if (i > 0) s += ", ";
    s += "[";
    for (size_t j = 0; j < clusters[i].size(); ++j) {
      if (j > 0) s += ",";
      s += std::to_string(clusters[i][j]);
    }
    s += "]";
  }
  return s + "}";
}

TEST(IntersectEdgeCasesTest, EmptyPartitions) {
  Relation r = FromValues({{0, 0}, {1, 1}, {2, 2}});  // both columns are keys
  StrippedPartition empty_a = BuildAttributePartition(r, 0);
  StrippedPartition empty_b = BuildAttributePartition(r, 1);
  ASSERT_TRUE(empty_a.empty());
  // empty * empty, empty * non-empty, non-empty * empty.
  StrippedPartition whole = StrippedPartition::whole(r.num_rows());
  EXPECT_TRUE(IntersectPartitions(empty_a, empty_b, r.num_rows()).empty());
  EXPECT_TRUE(IntersectPartitions(empty_a, whole, r.num_rows()).empty());
  EXPECT_TRUE(IntersectPartitions(whole, empty_b, r.num_rows()).empty());
  EXPECT_EQ(IntersectPartitions(empty_a, whole, r.num_rows()).error(), 0);
}

TEST(IntersectEdgeCasesTest, AllSingletonResultIsFullyStripped) {
  // pi_0 and pi_1 each have one big class, but no row pair agrees on both:
  // the product consists solely of singletons and must come out empty.
  Relation r = FromValues({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  StrippedPartition pa = BuildAttributePartition(r, 0);
  StrippedPartition pb = BuildAttributePartition(r, 1);
  ASSERT_EQ(pa.size(), 2);
  ASSERT_EQ(pb.size(), 2);
  StrippedPartition inter = IntersectPartitions(pa, pb, r.num_rows());
  EXPECT_TRUE(inter.empty());
  EXPECT_EQ(inter.size(), 0);
  EXPECT_EQ(inter.support(), 0);
  EXPECT_EQ(inter.memory_bytes(), sizeof(StrippedPartition));
}

TEST(IntersectEdgeCasesTest, IdenticalInputsAreIdempotent) {
  Relation r = RandomRelation(41, 200, 3, 4);
  StrippedPartition p = BuildPartition(r, AttributeSet{0, 1});
  StrippedPartition self = IntersectPartitions(p, p, r.num_rows());
  self.normalize();
  StrippedPartition want = p;
  want.normalize();
  EXPECT_EQ(self.to_string(), want.to_string());
  EXPECT_EQ(self.support(), p.support());
  EXPECT_EQ(self.size(), p.size());
}

TEST(IntersectPersistentTest, ReusedIntersectorMatchesOneShot) {
  // The epoch-stamped probe table must give identical results across many
  // reuses, including after results that leave stale probe entries behind.
  Relation r = RandomRelation(43, 300, 5, 4);
  PartitionIntersector intersector(r.num_rows());
  StrippedPartition out;
  for (AttrId a = 0; a < 4; ++a) {
    StrippedPartition pa = BuildAttributePartition(r, a);
    StrippedPartition pb = BuildAttributePartition(r, a + 1);
    intersector.intersect(pa, pb, out);
    StrippedPartition oneshot = IntersectPartitions(pa, pb, r.num_rows());
    out.normalize();
    oneshot.normalize();
    EXPECT_EQ(out.to_string(), oneshot.to_string()) << "a=" << static_cast<int>(a);
  }
}

// Property: CSR intersection ≡ the legacy nested-vector reference on random
// relations, across shapes, and the product equals direct construction.
class IntersectSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntersectSweep, MatchesLegacyReferenceAndDirectBuild) {
  int seed = GetParam();
  Random rng(seed);
  int rows = 30 + static_cast<int>(rng.next_below(170));
  int cols = 3 + static_cast<int>(rng.next_below(3));
  int domain = 2 + static_cast<int>(rng.next_below(6));
  Relation r = RandomRelation(seed * 17 + 3, rows, cols, domain);
  AttrId a1 = static_cast<AttrId>(rng.next_below(cols));
  AttrId a2 = static_cast<AttrId>(rng.next_below(cols));
  StrippedPartition pa = BuildAttributePartition(r, a1);
  StrippedPartition pb = BuildAttributePartition(r, a2);

  StrippedPartition csr = IntersectPartitions(pa, pb, r.num_rows());
  std::vector<std::vector<RowId>> ref =
      ReferenceIntersect(ToNested(pa), ToNested(pb), r.num_rows());
  EXPECT_EQ(NestedToString(ToNested(csr)), NestedToString(ref));

  StrippedPartition direct = BuildPartition(r, AttributeSet{a1, a2});
  csr.normalize();
  direct.normalize();
  EXPECT_EQ(csr.to_string(), direct.to_string())
      << "a1=" << static_cast<int>(a1) << " a2=" << static_cast<int>(a2);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntersectSweep, ::testing::Range(0, 16));

}  // namespace
}  // namespace dhyfd
