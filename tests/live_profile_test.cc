#include "incr/live_profile.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "algo/dhyfd.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;

RawTable Table(std::vector<std::string> header,
               std::vector<std::vector<std::string>> rows) {
  RawTable t;
  t.header = std::move(header);
  t.rows = std::move(rows);
  return t;
}

FdSet Discover(const Relation& r) { return Dhyfd().discover(r).fds; }

/// The invariant every test leans on: the maintained cover is equivalent to
/// a from-scratch run on the live rows.
void ExpectFresh(const LiveProfile& p) {
  FdSet want = Discover(p.live_relation().snapshot());
  EXPECT_EQ(CoverDifference(want, p.cover(), p.live_relation().num_cols()), "");
}

bool Contains(const FdSet& cover, const Fd& fd) {
  return std::find(cover.fds.begin(), cover.fds.end(), fd) != cover.fds.end();
}

TEST(LiveProfileTest, InsertRefutesAndSpecializes) {
  // a -> b holds initially; the inserted row breaks it.
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"x", "1"}, {"y", "2"}}));
  ASSERT_TRUE(Contains(p.cover(), Fd(AttributeSet{0}, 1)));

  UpdateBatch batch;
  batch.inserts.push_back({"x", "2"});
  CoverDelta d = p.apply(batch);
  EXPECT_FALSE(Contains(p.cover(), Fd(AttributeSet{0}, 1)));
  EXPECT_TRUE(Contains(d.removed, Fd(AttributeSet{0}, 1)));
  EXPECT_FALSE(d.stats.rebuilt);
  EXPECT_GT(d.stats.pairs_compared, 0);
  ExpectFresh(p);
}

TEST(LiveProfileTest, InsertRefutesRootFd) {
  // b is constant, so {} -> b holds; an insert with a fresh b value refutes
  // it even though the new row shares no value with any live row.
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "1"}}));
  ASSERT_TRUE(Contains(p.cover(), Fd(AttributeSet{}, 1)));

  UpdateBatch batch;
  batch.inserts.push_back({"z", "2"});
  CoverDelta d = p.apply(batch);
  EXPECT_FALSE(Contains(p.cover(), Fd(AttributeSet{}, 1)));
  EXPECT_GT(d.stats.fds_removed, 0);
  ExpectFresh(p);
}

TEST(LiveProfileTest, DeleteRestoresFd) {
  // Rows 0 and 2 violate a -> b; deleting row 2 restores it.
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}, {"x", "2"}}));
  ASSERT_FALSE(Contains(p.cover(), Fd(AttributeSet{0}, 1)));

  UpdateBatch batch;
  batch.deletes.push_back(2);
  CoverDelta d = p.apply(batch);
  EXPECT_TRUE(Contains(p.cover(), Fd(AttributeSet{0}, 1)));
  EXPECT_TRUE(Contains(d.added, Fd(AttributeSet{0}, 1)));
  EXPECT_GT(d.stats.validations, 0);
  ExpectFresh(p);
}

TEST(LiveProfileTest, DeleteRestoresRootFd) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}, {"z", "2"}}));
  ASSERT_FALSE(Contains(p.cover(), Fd(AttributeSet{}, 1)));
  UpdateBatch batch;
  batch.deletes.push_back(0);
  p.apply(batch);
  EXPECT_TRUE(Contains(p.cover(), Fd(AttributeSet{}, 1)));
  ExpectFresh(p);
}

TEST(LiveProfileTest, DeleteEnablesIncomparableGeneralization) {
  // The generalization move DynFD-style single-step walks miss: after the
  // delete, d -> a becomes minimal although no pre-delete cover FD X -> a
  // satisfies X superseteq {d}.
  //
  //   a  b  c  d
  //   0  0  0  0
  //   1  0  1  0    <- kill this row
  //   0  1  0  1
  //   1  1  1  2
  LiveProfile p(Table({"a", "b", "c", "d"}, {
                          {"0", "0", "0", "0"},
                          {"1", "0", "1", "0"},
                          {"0", "1", "0", "1"},
                          {"1", "1", "1", "2"},
                      }));
  Fd want(AttributeSet{3}, 0);  // d -> a
  ASSERT_FALSE(Contains(p.cover(), want));

  UpdateBatch batch;
  batch.deletes.push_back(1);
  CoverDelta d = p.apply(batch);
  EXPECT_TRUE(Contains(p.cover(), want));
  EXPECT_TRUE(Contains(d.added, want));
  ExpectFresh(p);
}

TEST(LiveProfileTest, MixedBatchAndSelfInsertedDelete) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}}));
  UpdateBatch batch;
  batch.inserts.push_back({"x", "2"});  // id 2: refutes a -> b
  batch.inserts.push_back({"z", "3"});  // id 3
  batch.deletes.push_back(2);           // ... and dies within the same batch
  CoverDelta d = p.apply(batch);
  EXPECT_EQ(d.stats.rows_inserted, 2);
  EXPECT_EQ(d.stats.rows_deleted, 1);
  EXPECT_TRUE(Contains(p.cover(), Fd(AttributeSet{0}, 1)));
  ExpectFresh(p);
}

TEST(LiveProfileTest, UnknownDeletesAreCountedNotFatal) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}}));
  UpdateBatch batch;
  batch.deletes = {7, 0, 0};  // unknown, live, already-dead
  CoverDelta d = p.apply(batch);
  EXPECT_EQ(d.stats.rows_deleted, 1);
  EXPECT_EQ(d.stats.unknown_deletes, 2);
  ExpectFresh(p);
}

TEST(LiveProfileTest, ForcedModeRebuilds) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}}));
  UpdateBatch batch;
  batch.inserts.push_back({"x", "2"});
  CoverDelta d = p.apply(batch, ApplyMode::kFullRerun);
  EXPECT_TRUE(d.stats.rebuilt);
  EXPECT_EQ(d.stats.rebuild_reason, "forced");
  EXPECT_EQ(p.rebuild_count(), 1);
  EXPECT_EQ(p.live_relation().tombstone_fraction(), 0.0);  // compacted
  ExpectFresh(p);
}

TEST(LiveProfileTest, TombstoneChurnTriggersRebuild) {
  std::vector<std::vector<std::string>> rows;
  for (int i = 0; i < 40; ++i) rows.push_back({std::to_string(i), "v"});
  LiveProfileOptions opts;
  opts.max_tombstone_fraction = 0.25;
  opts.rebuild_cost_ratio = 1e9;  // timing trigger out of the way
  LiveProfile p(Table({"a", "b"}, rows), opts);

  UpdateBatch kill;
  for (LiveRowId id = 0; id < 20; ++id) kill.deletes.push_back(id);
  CoverDelta d1 = p.apply(kill);
  EXPECT_FALSE(d1.stats.rebuilt);  // triggers are checked before applying
  UpdateBatch next;
  next.inserts.push_back({"x", "v"});
  CoverDelta d2 = p.apply(next);
  EXPECT_TRUE(d2.stats.rebuilt);
  EXPECT_EQ(d2.stats.rebuild_reason, "tombstones");
  EXPECT_EQ(p.live_relation().tombstone_fraction(), 0.0);
  ExpectFresh(p);
}

TEST(LiveProfileTest, ForceRebuildCompactsAndRediscovers) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}, {"x", "2"}}));
  UpdateBatch batch;
  batch.deletes.push_back(2);
  p.apply(batch);
  p.force_rebuild();
  EXPECT_EQ(p.rebuild_count(), 1);
  EXPECT_EQ(p.live_relation().storage_rows(), 2);
  ExpectFresh(p);
}

TEST(LiveProfileTest, RankingMatchesFromScratchCounts) {
  LiveProfile p(Table({"a", "b", "c"}, {
                          {"x", "1", "p"},
                          {"x", "1", "p"},
                          {"y", "2", "p"},
                          {"y", "2", "q"},
                      }));
  UpdateBatch batch;
  batch.inserts.push_back({"x", "1", "q"});
  batch.inserts.push_back({"z", "3", "q"});
  batch.deletes.push_back(3);
  CoverDelta d = p.apply(batch);
  EXPECT_GT(d.stats.fds_reranked, 0);

  // The maintained per-FD counts must equal a from-scratch ranking of the
  // same cover over the live rows.
  Relation snap = p.live_relation().snapshot();
  std::vector<FdRedundancy> want = ComputeFdRedundancies(snap, p.cover());
  const std::vector<FdRedundancy>& got = p.ranking();
  ASSERT_EQ(got.size(), want.size());
  auto find_want = [&](const Fd& fd) -> const FdRedundancy* {
    for (const FdRedundancy& w : want) {
      if (w.fd == fd) return &w;
    }
    return nullptr;
  };
  for (const FdRedundancy& g : got) {
    const FdRedundancy* w = find_want(g.fd);
    ASSERT_NE(w, nullptr) << g.fd.to_string();
    EXPECT_EQ(g.with_nulls, w->with_nulls) << g.fd.to_string();
    EXPECT_EQ(g.excluding_null_rhs, w->excluding_null_rhs) << g.fd.to_string();
    EXPECT_EQ(g.excluding_null_lhs_rhs, w->excluding_null_lhs_rhs)
        << g.fd.to_string();
  }
  // Sorted descending by the configured mode.
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(RedundancyCount(got[i - 1], RedundancyMode::kExcludingNullRhs),
              RedundancyCount(got[i], RedundancyMode::kExcludingNullRhs));
  }
}

TEST(LiveProfileTest, DeltaIsExactSetDifference) {
  LiveProfile p(Table({"a", "b", "c"}, {
                          {"x", "1", "p"},
                          {"y", "2", "p"},
                          {"x", "2", "q"},
                      }));
  FdSet before = p.cover();
  UpdateBatch batch;
  batch.inserts.push_back({"y", "1", "q"});
  CoverDelta d = p.apply(batch);
  for (const Fd& fd : d.added.fds) {
    EXPECT_FALSE(Contains(before, fd)) << fd.to_string();
    EXPECT_TRUE(Contains(p.cover(), fd)) << fd.to_string();
  }
  for (const Fd& fd : d.removed.fds) {
    EXPECT_TRUE(Contains(before, fd)) << fd.to_string();
    EXPECT_FALSE(Contains(p.cover(), fd)) << fd.to_string();
  }
  EXPECT_EQ(d.stats.fds_added, d.added.size());
  EXPECT_EQ(d.stats.fds_removed, d.removed.size());
}

TEST(LiveProfileTest, EmptyBatchIsANoOp) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}}));
  FdSet before = p.cover();
  CoverDelta d = p.apply(UpdateBatch{});
  EXPECT_TRUE(d.added.empty());
  EXPECT_TRUE(d.removed.empty());
  EXPECT_EQ(CoverDifference(before, p.cover(), 2), "");
}

TEST(LiveProfileTest, DeleteDownToOneRowAndRefill) {
  LiveProfile p(Table({"a", "b"}, {{"x", "1"}, {"y", "2"}}));
  UpdateBatch kill;
  kill.deletes = {0, 1};
  UpdateBatch refill;
  refill.inserts.push_back({"q", "7"});
  p.apply(kill);
  EXPECT_EQ(p.live_relation().live_rows(), 0);
  ExpectFresh(p);
  p.apply(refill);
  EXPECT_EQ(p.live_relation().live_rows(), 1);
  ExpectFresh(p);
}

}  // namespace
}  // namespace dhyfd
