#include "algo/rowbased.h"

#include <gtest/gtest.h>

#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::RandomRelation;

class RowBasedTest : public ::testing::TestWithParam<RowBasedVariant> {};

TEST_P(RowBasedTest, MatchesBruteForce) {
  for (int seed = 1; seed <= 10; ++seed) {
    Relation r = RandomRelation(seed * 11, 40, 5, 3);
    DiscoveryResult res = RowBasedTransversal(GetParam()).discover(r);
    FdSet expected = BruteForceDiscover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 5), "") << "seed=" << seed;
    EXPECT_EQ(res.fds.size(), expected.size()) << "seed=" << seed;
  }
}

TEST_P(RowBasedTest, OutputLeftReduced) {
  Relation r = RandomRelation(71, 60, 6, 3);
  DiscoveryResult res = RowBasedTransversal(GetParam()).discover(r);
  EXPECT_TRUE(IsLeftReduced(res.fds, 6));
}

TEST_P(RowBasedTest, ConstantKeyDerived) {
  Relation r = FromValues({{7, 0, 0, 10}, {7, 1, 0, 10}, {7, 2, 1, 11}, {7, 3, 2, 12}});
  DiscoveryResult res = RowBasedTransversal(GetParam()).discover(r);
  bool constant = false, derived = false, key = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{}, 0)) constant = true;
    if (fd == Fd(AttributeSet{2}, 3)) derived = true;
    if (fd == Fd(AttributeSet{1}, 2)) key = true;
  }
  EXPECT_TRUE(constant);
  EXPECT_TRUE(derived);
  EXPECT_TRUE(key);
}

TEST_P(RowBasedTest, NoFdWhenPairDiffersOnOneAttr) {
  // Rows differing only on column 1: no FD with RHS 1 can hold.
  Relation r = FromValues({{0, 0}, {0, 1}});
  DiscoveryResult res = RowBasedTransversal(GetParam()).discover(r);
  for (const Fd& fd : res.fds.fds) EXPECT_FALSE(fd.rhs.test(1));
}

TEST_P(RowBasedTest, EmptyAndTinyRelations) {
  DiscoveryResult res0 = RowBasedTransversal(GetParam()).discover(FromValues({}));
  SUCCEED();
  DiscoveryResult res1 = RowBasedTransversal(GetParam()).discover(FromValues({{1, 2}}));
  EXPECT_EQ(res1.fds.size(), 2);
}

TEST_P(RowBasedTest, TimeLimitFlags) {
  Relation r = RandomRelation(5, 2500, 10, 3);
  DiscoveryResult res = RowBasedTransversal(GetParam(), 1e-6).discover(r);
  EXPECT_TRUE(res.stats.timed_out);
}

INSTANTIATE_TEST_SUITE_P(Variants, RowBasedTest,
                         ::testing::Values(RowBasedVariant::kFastFds,
                                           RowBasedVariant::kDepMiner),
                         [](const ::testing::TestParamInfo<RowBasedVariant>& info) {
                           return info.param == RowBasedVariant::kFastFds
                                      ? "fastfds"
                                      : "depminer";
                         });

TEST(RowBasedFactoryTest, Names) {
  EXPECT_EQ(MakeDiscovery("fastfds")->name(), "fastfds");
  EXPECT_EQ(MakeDiscovery("depminer")->name(), "depminer");
}

TEST(RowBasedTest, VariantsAgree) {
  for (int seed = 1; seed <= 5; ++seed) {
    Relation r = RandomRelation(seed * 41, 50, 5, 2);
    DiscoveryResult fast = RowBasedTransversal(RowBasedVariant::kFastFds).discover(r);
    DiscoveryResult dep = RowBasedTransversal(RowBasedVariant::kDepMiner).discover(r);
    EXPECT_EQ(fast.fds.size(), dep.fds.size()) << seed;
    EXPECT_EQ(CoverDifference(fast.fds, dep.fds, 5), "") << seed;
  }
}

}  // namespace
}  // namespace dhyfd
