#include "algo/fdep.h"

#include <gtest/gtest.h>

#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::HoldsBruteForce;
using testutil::RandomRelation;

class FdepVariantTest : public ::testing::TestWithParam<FdepVariant> {};

TEST_P(FdepVariantTest, MatchesBruteForceOnRandomData) {
  for (int seed = 1; seed <= 8; ++seed) {
    Relation r = RandomRelation(seed * 13, 35, 5, 3);
    DiscoveryResult res = Fdep(GetParam()).discover(r);
    FdSet expected = BruteForceDiscover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 5), "")
        << "variant=" << static_cast<int>(GetParam()) << " seed=" << seed;
    EXPECT_EQ(res.fds.size(), expected.size());
  }
}

TEST_P(FdepVariantTest, OutputLeftReducedAndValid) {
  Relation r = RandomRelation(99, 50, 6, 3);
  DiscoveryResult res = Fdep(GetParam()).discover(r);
  EXPECT_TRUE(IsLeftReduced(res.fds, 6));
  for (const Fd& fd : res.fds.fds) {
    EXPECT_TRUE(HoldsBruteForce(r, fd)) << fd.to_string();
  }
}

TEST_P(FdepVariantTest, ConstantAndKeyColumns) {
  Relation r = FromValues({{7, 0, 3}, {7, 1, 3}, {7, 2, 4}});
  DiscoveryResult res = Fdep(GetParam()).discover(r);
  bool has_constant = false, has_key = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{}, 0)) has_constant = true;
    if (fd == Fd(AttributeSet{1}, 2)) has_key = true;
  }
  EXPECT_TRUE(has_constant);
  EXPECT_TRUE(has_key);
}

TEST_P(FdepVariantTest, NullsAsValuesUnderNullEqualsNull) {
  // Two nulls (same negative marker) agree; FD discovery treats the null
  // like any other value.
  Relation r = FromValues({{-1, 5}, {-1, 5}, {0, 6}});
  DiscoveryResult res = Fdep(GetParam()).discover(r);
  bool has = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{0}, 1)) has = true;
  }
  EXPECT_TRUE(has);
}

TEST_P(FdepVariantTest, EmptyAndTinyRelations) {
  DiscoveryResult res0 = Fdep(GetParam()).discover(FromValues({}));
  SUCCEED();
  DiscoveryResult res1 = Fdep(GetParam()).discover(FromValues({{1, 2}}));
  EXPECT_EQ(res1.fds.size(), 2);  // both constant
  for (const Fd& fd : res1.fds.fds) EXPECT_TRUE(fd.lhs.empty());
}

INSTANTIATE_TEST_SUITE_P(AllVariants, FdepVariantTest,
                         ::testing::Values(FdepVariant::kClassic,
                                           FdepVariant::kNonRedundant,
                                           FdepVariant::kSorted));

TEST(FdepTest, VariantsAgreeWithEachOther) {
  for (int seed = 1; seed <= 6; ++seed) {
    Relation r = RandomRelation(seed * 31, 45, 5, 2);
    DiscoveryResult classic = Fdep(FdepVariant::kClassic).discover(r);
    DiscoveryResult nonred = Fdep(FdepVariant::kNonRedundant).discover(r);
    DiscoveryResult sorted = Fdep(FdepVariant::kSorted).discover(r);
    EXPECT_EQ(CoverDifference(classic.fds, nonred.fds, 5), "") << seed;
    EXPECT_EQ(CoverDifference(classic.fds, sorted.fds, 5), "") << seed;
    // All variants compute covers of the same FD set; with minimality they
    // should in fact produce identical left-reduced covers.
    EXPECT_EQ(classic.fds.size(), sorted.fds.size());
  }
}

TEST(FdepTest, Names) {
  EXPECT_EQ(Fdep(FdepVariant::kClassic).name(), "fdep");
  EXPECT_EQ(Fdep(FdepVariant::kNonRedundant).name(), "fdep1");
  EXPECT_EQ(Fdep(FdepVariant::kSorted).name(), "fdep2");
}

TEST(FdepTest, StatsCountPairs) {
  Relation r = RandomRelation(11, 30, 4, 3);
  DiscoveryResult res = Fdep(FdepVariant::kSorted).discover(r);
  EXPECT_EQ(res.stats.pairs_compared, 30 * 29 / 2);
  EXPECT_GT(res.stats.sampled_non_fds, 0);
}

}  // namespace
}  // namespace dhyfd
