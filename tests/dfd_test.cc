#include "algo/dfd.h"

#include <gtest/gtest.h>

#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::RandomRelation;

TEST(DfdTest, MatchesBruteForce) {
  for (int seed = 1; seed <= 10; ++seed) {
    Relation r = RandomRelation(seed * 29, 40, 5, 3);
    DiscoveryResult res = Dfd().discover(r);
    FdSet expected = BruteForceDiscover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 5), "") << "seed=" << seed;
    EXPECT_EQ(res.fds.size(), expected.size()) << "seed=" << seed;
  }
}

TEST(DfdTest, OutputLeftReduced) {
  Relation r = RandomRelation(83, 70, 6, 3);
  DiscoveryResult res = Dfd().discover(r);
  EXPECT_TRUE(IsLeftReduced(res.fds, 6));
}

TEST(DfdTest, ConstantColumn) {
  Relation r = FromValues({{5, 0}, {5, 1}});
  DiscoveryResult res = Dfd().discover(r);
  ASSERT_GE(res.fds.size(), 1);
  EXPECT_EQ(res.fds.fds[0], Fd(AttributeSet{}, 0));
}

TEST(DfdTest, NoFdForSingleDifferingColumn) {
  Relation r = FromValues({{0, 0}, {0, 1}});
  DiscoveryResult res = Dfd().discover(r);
  for (const Fd& fd : res.fds.fds) EXPECT_FALSE(fd.rhs.test(1));
}

TEST(DfdTest, CompositeMinimalLhs) {
  Relation r = FromValues({
      {0, 0, 10}, {0, 0, 10}, {0, 1, 11}, {1, 0, 12}, {1, 1, 13}, {1, 1, 13}});
  DiscoveryResult res = Dfd().discover(r);
  bool found = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{0, 1}, 2)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(DfdTest, EmptyAndTinyRelations) {
  DiscoveryResult res0 = Dfd().discover(FromValues({}));
  SUCCEED();
  DiscoveryResult res1 = Dfd().discover(FromValues({{1, 2}}));
  EXPECT_EQ(res1.fds.size(), 2);
}

TEST(DfdTest, UsesPartitionCache) {
  Relation r = RandomRelation(91, 100, 6, 3);
  DiscoveryResult res = Dfd().discover(r);
  EXPECT_GT(res.stats.refinements, 0);  // partitions built through the cache
  EXPECT_GT(res.stats.validations, 0);
}

TEST(DfdTest, TimeLimit) {
  Relation r = RandomRelation(5, 2500, 10, 3);
  DiscoveryResult res = Dfd(1e-6).discover(r);
  EXPECT_TRUE(res.stats.timed_out);
}

}  // namespace
}  // namespace dhyfd
