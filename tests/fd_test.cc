#include "fd/fd.h"
#include "fd/fd_set.h"

#include <gtest/gtest.h>

namespace dhyfd {
namespace {

TEST(FdTest, Construction) {
  Fd fd(AttributeSet{0, 1}, 2);
  EXPECT_EQ(fd.lhs, (AttributeSet{0, 1}));
  EXPECT_EQ(fd.rhs, AttributeSet{2});
  EXPECT_EQ(fd.attribute_occurrences(), 3);
}

TEST(FdTest, ToStringNumeric) {
  Fd fd(AttributeSet{1, 5}, 3);
  EXPECT_EQ(fd.to_string(), "{1,5} -> {3}");
}

TEST(FdTest, ToStringWithSchema) {
  Schema s({"last_name", "zip", "city"});
  Fd fd(AttributeSet{0, 1}, 2);
  EXPECT_EQ(fd.to_string(s), "last_name, zip -> city");
}

TEST(FdTest, EmptyLhsRendering) {
  Schema s({"state"});
  Fd fd(AttributeSet{}, 0);
  EXPECT_EQ(fd.to_string(s), "{} -> state");
}

TEST(FdSetTest, SizeMeasures) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0, 1}, 2));
  fds.add(Fd(AttributeSet{3}, AttributeSet{4, 5}));
  EXPECT_EQ(fds.size(), 2);
  EXPECT_EQ(fds.attribute_occurrences(), 3 + 3);
}

TEST(FdSetTest, SingletonRhsSplit) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, AttributeSet{1, 2}));
  FdSet split = fds.with_singleton_rhs();
  ASSERT_EQ(split.size(), 2);
  EXPECT_EQ(split.fds[0].rhs.count(), 1);
  EXPECT_EQ(split.fds[1].rhs.count(), 1);
  // Same total attribute occurrences distribution as paper's |Can| vs ||Can||.
  EXPECT_EQ(split.attribute_occurrences(), 4);
}

TEST(FdSetTest, MergeSameLhs) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0}, 1));
  fds.add(Fd(AttributeSet{0}, 2));
  fds.add(Fd(AttributeSet{3}, 4));
  FdSet merged = fds.with_merged_lhs();
  ASSERT_EQ(merged.size(), 2);
  EXPECT_EQ(merged.fds[0].rhs, (AttributeSet{1, 2}));
  EXPECT_EQ(merged.fds[1].rhs, AttributeSet{4});
}

TEST(FdSetTest, SplitMergeRoundTrip) {
  FdSet fds;
  fds.add(Fd(AttributeSet{0, 2}, AttributeSet{1, 3}));
  FdSet round = fds.with_singleton_rhs().with_merged_lhs();
  ASSERT_EQ(round.size(), 1);
  EXPECT_EQ(round.fds[0].lhs, fds.fds[0].lhs);
  EXPECT_EQ(round.fds[0].rhs, fds.fds[0].rhs);
}

TEST(FdSetTest, SortIsDeterministic) {
  FdSet fds;
  fds.add(Fd(AttributeSet{2, 3}, 0));
  fds.add(Fd(AttributeSet{1}, 0));
  fds.add(Fd(AttributeSet{0}, 2));
  fds.sort();
  EXPECT_EQ(fds.fds[0].lhs, AttributeSet{0});
  EXPECT_EQ(fds.fds[1].lhs, AttributeSet{1});
  EXPECT_EQ(fds.fds[2].lhs, (AttributeSet{2, 3}));
}

}  // namespace
}  // namespace dhyfd
