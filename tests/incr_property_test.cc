#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/dhyfd.h"
#include "datagen/update_stream.h"
#include "incr/live_profile.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;

// The tentpole property: after ANY sequence of insert/delete batches, the
// maintained cover is equivalent (by closure) to a from-scratch DHyFD run on
// the live rows. Checked after EVERY batch, not just at the end, so a
// transiently wrong cover cannot hide behind later corrections.

DatasetSpec MixedSpec(uint64_t seed) {
  DatasetSpec s;
  s.name = "mixed";
  s.seed = seed;
  ColumnSpec key{.name = "k", .kind = ColumnKind::kKey};
  ColumnSpec small{.name = "s", .kind = ColumnKind::kRandom, .domain_size = 3};
  ColumnSpec mid{.name = "m", .kind = ColumnKind::kRandom, .domain_size = 8};
  ColumnSpec derived{.name = "d", .kind = ColumnKind::kDerived, .domain_size = 12};
  derived.parents = {1, 2};
  ColumnSpec constant{.name = "c", .kind = ColumnKind::kConstant};
  s.columns = {key, small, mid, derived, constant};
  s.duplicate_row_rate = 0.1;
  s.near_duplicate_rate = 0.15;
  return s;
}

DatasetSpec NullSpec(uint64_t seed) {
  DatasetSpec s = MixedSpec(seed);
  s.name = "nully";
  s.columns[1].null_rate = 0.2;
  s.columns[3].null_rate = 0.1;
  return s;
}

void RunStream(const UpdateStreamSpec& spec, NullSemantics semantics,
               bool auto_rebuild, const std::string& label) {
  UpdateStream stream = GenerateUpdateStream(spec);
  LiveProfileOptions opts;
  opts.auto_rebuild = auto_rebuild;
  LiveProfile profile(stream.initial, opts, semantics);
  Dhyfd reference;
  int n = 0;
  for (const UpdateBatch& batch : stream.batches) {
    profile.apply(batch);
    FdSet want = reference.discover(profile.live_relation().snapshot()).fds;
    std::string diff =
        CoverDifference(want, profile.cover(), profile.live_relation().num_cols());
    ASSERT_EQ(diff, "") << label << ", batch " << n << " (live rows "
                        << profile.live_relation().live_rows() << ")";
    ++n;
  }
}

TEST(IncrPropertyTest, CoverMatchesFromScratchOnMixedStream) {
  UpdateStreamSpec spec;
  spec.base = MixedSpec(21);
  spec.initial_rows = 120;
  spec.num_batches = 12;
  spec.batch_size = 24;
  spec.delete_fraction = 0.35;
  spec.seed = 5;
  RunStream(spec, NullSemantics::kNullEqualsNull, /*auto_rebuild=*/false,
            "mixed/pure-incremental");
  RunStream(spec, NullSemantics::kNullEqualsNull, /*auto_rebuild=*/true,
            "mixed/auto-rebuild");
}

TEST(IncrPropertyTest, CoverMatchesUnderBothNullSemantics) {
  UpdateStreamSpec spec;
  spec.base = NullSpec(33);
  spec.initial_rows = 90;
  spec.num_batches = 10;
  spec.batch_size = 20;
  spec.delete_fraction = 0.3;
  spec.seed = 9;
  RunStream(spec, NullSemantics::kNullEqualsNull, false, "null=null");
  RunStream(spec, NullSemantics::kNullNotEqualsNull, false, "null!=null");
}

TEST(IncrPropertyTest, CoverMatchesUnderDeleteHeavyChurn) {
  UpdateStreamSpec spec;
  spec.base = MixedSpec(44);
  spec.initial_rows = 100;
  spec.num_batches = 10;
  spec.batch_size = 30;
  spec.delete_fraction = 0.7;
  spec.delete_skew = 1.5;
  spec.seed = 13;
  RunStream(spec, NullSemantics::kNullEqualsNull, false, "delete-heavy");
}

TEST(IncrPropertyTest, CoverMatchesWhenEverythingDies) {
  // Drain the relation to empty (and below batch granularity) — the cover
  // must collapse to the trivial {} -> A for every attribute.
  DatasetSpec base = MixedSpec(55);
  base.rows = 30;
  UpdateStream stream;
  stream.initial = GenerateRawTable(base);
  for (int start = 0; start < 30; start += 10) {
    UpdateBatch b;
    for (int i = start; i < start + 10; ++i) b.deletes.push_back(i);
    stream.batches.push_back(b);
  }
  LiveProfileOptions opts;
  opts.auto_rebuild = false;
  LiveProfile profile(stream.initial, opts);
  Dhyfd reference;
  for (const UpdateBatch& batch : stream.batches) {
    profile.apply(batch);
    FdSet want = reference.discover(profile.live_relation().snapshot()).fds;
    ASSERT_EQ(CoverDifference(want, profile.cover(), 5), "")
        << "live rows " << profile.live_relation().live_rows();
  }
  EXPECT_EQ(profile.live_relation().live_rows(), 0);
}

TEST(IncrPropertyTest, SmallRandomRelationsExhaustiveChurn) {
  // Dense tiny tables maximize agree-set collisions per row — the regime
  // where minimality bookkeeping errors actually surface.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    DatasetSpec s;
    s.name = "tiny";
    s.seed = seed;
    for (int c = 0; c < 4; ++c) {
      s.columns.push_back(ColumnSpec{.name = std::string(1, static_cast<char>('a' + c)),
                                     .kind = ColumnKind::kRandom,
                                     .domain_size = 2 + c});
    }
    UpdateStreamSpec spec;
    spec.base = s;
    spec.initial_rows = 12;
    spec.num_batches = 15;
    spec.batch_size = 4;
    spec.delete_fraction = 0.45;
    spec.seed = seed * 100 + 7;
    RunStream(spec, NullSemantics::kNullEqualsNull, false,
              "tiny seed " + std::to_string(seed));
  }
}

}  // namespace
}  // namespace dhyfd
