// Properties connecting the two null-marker interpretations (paper §V-B):
// under null != null a null agrees with nothing, so agree sets shrink
// monotonically — which has checkable consequences for discovery, covers,
// and ranking.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/agree_sets.h"
#include "algo/discovery.h"
#include "fd/closure.h"
#include "ranking/redundancy.h"
#include "relation/encoder.h"
#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

RawTable RandomNullTable(uint64_t seed, int rows, int cols, double null_rate) {
  Random rng(seed);
  RawTable t;
  for (int c = 0; c < cols; ++c) t.header.push_back("c" + std::to_string(c));
  for (int i = 0; i < rows; ++i) {
    std::vector<std::string> row;
    for (int c = 0; c < cols; ++c) {
      row.push_back(rng.next_bool(null_rate)
                        ? ""
                        : "v" + std::to_string(rng.next_below(4)));
    }
    t.rows.push_back(std::move(row));
  }
  return t;
}

class NullSemanticsSweep : public ::testing::TestWithParam<int> {};

TEST_P(NullSemanticsSweep, AgreeSetsShrinkUnderNotEquals) {
  RawTable t = RandomNullTable(GetParam() * 101 + 7, 40, 4, 0.25);
  Relation eq = EncodeRelation(t, NullSemantics::kNullEqualsNull).relation;
  Relation neq = EncodeRelation(t, NullSemantics::kNullNotEqualsNull).relation;
  // Pairwise: the null != null agree set of any row pair is a subset of the
  // null = null agree set (nulls stop matching, nothing starts matching).
  for (RowId i = 0; i < eq.num_rows(); ++i) {
    for (RowId j = i + 1; j < eq.num_rows(); ++j) {
      EXPECT_TRUE(neq.agree_set(i, j).is_subset_of(eq.agree_set(i, j)))
          << i << "," << j;
    }
  }
}

TEST_P(NullSemanticsSweep, DiscoveryExactUnderBothSemantics) {
  RawTable t = RandomNullTable(GetParam() * 131 + 3, 35, 4, 0.3);
  for (NullSemantics sem :
       {NullSemantics::kNullEqualsNull, NullSemantics::kNullNotEqualsNull}) {
    Relation r = EncodeRelation(t, sem).relation;
    FdSet expected = BruteForceDiscover(r);
    DiscoveryResult res = MakeDiscovery("dhyfd")->discover(r);
    EXPECT_EQ(testutil::CoverDifference(expected, res.fds, 4), "")
        << "sem=" << static_cast<int>(sem);
  }
}

TEST_P(NullSemanticsSweep, NullFreeTablesAreSemanticsInvariant) {
  RawTable t = RandomNullTable(GetParam() * 151 + 11, 30, 4, 0.0);
  Relation eq = EncodeRelation(t, NullSemantics::kNullEqualsNull).relation;
  Relation neq = EncodeRelation(t, NullSemantics::kNullNotEqualsNull).relation;
  FdSet fds_eq = MakeDiscovery("dhyfd")->discover(eq).fds;
  FdSet fds_neq = MakeDiscovery("dhyfd")->discover(neq).fds;
  ASSERT_EQ(fds_eq.size(), fds_neq.size());
  EXPECT_TRUE(CoversEquivalent(fds_eq, fds_neq, 4));
}

TEST_P(NullSemanticsSweep, RedundancyCountOrderings) {
  RawTable t = RandomNullTable(GetParam() * 171 + 13, 40, 4, 0.2);
  Relation r = EncodeRelation(t, NullSemantics::kNullEqualsNull).relation;
  FdSet cover = BruteForceDiscover(r);
  for (const FdRedundancy& red : ComputeFdRedundancies(r, cover)) {
    // with_nulls >= excluding_null_rhs >= excluding_null_lhs_rhs >= 0.
    EXPECT_GE(red.with_nulls, red.excluding_null_rhs);
    EXPECT_GE(red.excluding_null_rhs, red.excluding_null_lhs_rhs);
    EXPECT_GE(red.excluding_null_lhs_rhs, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NullSemanticsSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace dhyfd
