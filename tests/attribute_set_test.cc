#include "util/attribute_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace dhyfd {
namespace {

TEST(AttributeSetTest, DefaultIsEmpty) {
  AttributeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.first(), -1);
  EXPECT_EQ(s.last(), -1);
}

TEST(AttributeSetTest, SetTestReset) {
  AttributeSet s;
  s.set(0);
  s.set(63);
  s.set(64);
  s.set(255);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(63));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(255));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 4);
  s.reset(63);
  EXPECT_FALSE(s.test(63));
  EXPECT_EQ(s.count(), 3);
}

TEST(AttributeSetTest, InitializerList) {
  AttributeSet s{1, 3, 5};
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.test(1));
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(5));
}

TEST(AttributeSetTest, FullCrossesWordBoundaries) {
  for (int n : {0, 1, 5, 63, 64, 65, 127, 128, 200, 256}) {
    AttributeSet s = AttributeSet::full(n);
    EXPECT_EQ(s.count(), n) << "n=" << n;
    if (n > 0) {
      EXPECT_TRUE(s.test(n - 1));
      EXPECT_EQ(s.first(), 0);
      EXPECT_EQ(s.last(), n - 1);
    }
    if (n < 256) {
      EXPECT_FALSE(s.test(n));
    }
  }
}

TEST(AttributeSetTest, FirstLastNext) {
  AttributeSet s{5, 70, 200};
  EXPECT_EQ(s.first(), 5);
  EXPECT_EQ(s.last(), 200);
  EXPECT_EQ(s.next(4), 5);
  EXPECT_EQ(s.next(5), 70);
  EXPECT_EQ(s.next(70), 200);
  EXPECT_EQ(s.next(200), -1);
  EXPECT_EQ(s.next(255), -1);
}

TEST(AttributeSetTest, SubsetAndIntersects) {
  AttributeSet a{1, 2}, b{1, 2, 3}, c{4};
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_TRUE(AttributeSet().is_subset_of(a));
  EXPECT_TRUE(a.intersects(b));
  EXPECT_FALSE(a.intersects(c));
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a{1, 2, 70}, b{2, 3};
  EXPECT_EQ((a | b), (AttributeSet{1, 2, 3, 70}));
  EXPECT_EQ((a & b), AttributeSet{2});
  EXPECT_EQ((a - b), (AttributeSet{1, 70}));
  AttributeSet c = a;
  c |= b;
  EXPECT_EQ(c, (a | b));
  c = a;
  c &= b;
  EXPECT_EQ(c, (a & b));
  c = a;
  c -= b;
  EXPECT_EQ(c, (a - b));
}

TEST(AttributeSetTest, Complement) {
  AttributeSet a{0, 2};
  AttributeSet comp = a.complement(4);
  EXPECT_EQ(comp, (AttributeSet{1, 3}));
}

TEST(AttributeSetTest, ForEachAscending) {
  AttributeSet s{200, 3, 64, 1};
  std::vector<AttrId> seen;
  s.for_each([&](AttrId a) { seen.push_back(a); });
  EXPECT_EQ(seen, (std::vector<AttrId>{1, 3, 64, 200}));
}

TEST(AttributeSetTest, OrderingIsTotal) {
  std::set<AttributeSet> ordered;
  ordered.insert(AttributeSet{1});
  ordered.insert(AttributeSet{2});
  ordered.insert(AttributeSet{1, 2});
  ordered.insert(AttributeSet{});
  EXPECT_EQ(ordered.size(), 4u);
  EXPECT_FALSE(AttributeSet{1} < AttributeSet{1});
}

TEST(AttributeSetTest, HashDistinguishesSmallSets) {
  AttributeSetHash h;
  EXPECT_NE(h(AttributeSet{1}), h(AttributeSet{2}));
  EXPECT_EQ(h(AttributeSet{1, 5}), h(AttributeSet{5, 1}));
}

TEST(AttributeSetTest, ToString) {
  EXPECT_EQ((AttributeSet{0, 3}).to_string(), "{0,3}");
  EXPECT_EQ(AttributeSet().to_string(), "{}");
}

TEST(AttributeSetTest, SingleFactory) {
  AttributeSet s = AttributeSet::single(77);
  EXPECT_EQ(s.count(), 1);
  EXPECT_TRUE(s.test(77));
}

}  // namespace
}  // namespace dhyfd
