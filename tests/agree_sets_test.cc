#include "algo/agree_sets.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;

TEST(AgreeSetsTest, AllPairs) {
  Relation r = FromValues({{0, 0}, {0, 1}, {1, 0}});
  int64_t pairs = 0;
  std::vector<AttributeSet> sets = ComputeAllAgreeSets(r, &pairs);
  EXPECT_EQ(pairs, 3);
  std::sort(sets.begin(), sets.end());
  // Pairs: (0,1) agree on {0}; (0,2) agree on {1}; (1,2) agree on {}.
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_NE(std::find(sets.begin(), sets.end(), AttributeSet{0}), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), AttributeSet{1}), sets.end());
  EXPECT_NE(std::find(sets.begin(), sets.end(), AttributeSet{}), sets.end());
}

TEST(AgreeSetsTest, DuplicateRowsExcluded) {
  Relation r = FromValues({{0, 0}, {0, 0}});
  std::vector<AttributeSet> sets = ComputeAllAgreeSets(r);
  // Full agreement implies no non-FD; must not appear.
  EXPECT_TRUE(sets.empty());
}

TEST(AgreeSetsTest, DistinctOnly) {
  Relation r = FromValues({{0, 1}, {0, 2}, {0, 3}});
  std::vector<AttributeSet> sets = ComputeAllAgreeSets(r);
  // All three pairs agree exactly on column 0.
  ASSERT_EQ(sets.size(), 1u);
  EXPECT_EQ(sets[0], AttributeSet{0});
}

TEST(AgreeSetsTest, MaximalFiltersSubsets) {
  std::vector<AttributeSet> sets = {AttributeSet{0}, AttributeSet{0, 1},
                                    AttributeSet{2}, AttributeSet{0, 1, 3}};
  std::vector<AttributeSet> maximal = MaximalAgreeSets(sets);
  std::sort(maximal.begin(), maximal.end());
  ASSERT_EQ(maximal.size(), 2u);
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), (AttributeSet{0, 1, 3})),
            maximal.end());
  EXPECT_NE(std::find(maximal.begin(), maximal.end(), AttributeSet{2}), maximal.end());
}

TEST(AgreeSetsTest, MaximalKeepsIncomparable) {
  std::vector<AttributeSet> sets = {AttributeSet{0, 1}, AttributeSet{1, 2}};
  EXPECT_EQ(MaximalAgreeSets(sets).size(), 2u);
}

TEST(AgreeSetsTest, SortBySizeDescending) {
  std::vector<AttributeSet> sets = {AttributeSet{0}, AttributeSet{0, 1, 2},
                                    AttributeSet{1, 3}};
  SortBySizeDescending(sets);
  EXPECT_EQ(sets[0].count(), 3);
  EXPECT_EQ(sets[1].count(), 2);
  EXPECT_EQ(sets[2].count(), 1);
}

TEST(AgreeSetsTest, SortIsDeterministicOnTies) {
  std::vector<AttributeSet> a = {AttributeSet{1}, AttributeSet{0}, AttributeSet{2}};
  std::vector<AttributeSet> b = {AttributeSet{2}, AttributeSet{1}, AttributeSet{0}};
  SortBySizeDescending(a);
  SortBySizeDescending(b);
  EXPECT_EQ(a, b);
}

TEST(NonRedundantNonFdsTest, TrimsPerAttribute) {
  // Z = {0} is subsumed by Z' = {0,1} only for RHS attributes outside
  // {0,1}; it must keep attribute 1 as RHS (the bug FDEP1 would otherwise
  // inherit from global maximality).
  std::vector<AttributeSet> sets = {AttributeSet{0}, AttributeSet{0, 1}};
  std::vector<NonFd> cover = NonRedundantNonFds(sets, 3);
  ASSERT_EQ(cover.size(), 2u);
  // Sorted descending: {0,1} first with RHS {2}; {0} keeps RHS {1} only.
  EXPECT_EQ(cover[0].lhs, (AttributeSet{0, 1}));
  EXPECT_EQ(cover[0].rhs, AttributeSet{2});
  EXPECT_EQ(cover[1].lhs, AttributeSet{0});
  EXPECT_EQ(cover[1].rhs, AttributeSet{1});
}

TEST(NonRedundantNonFdsTest, DropsFullySubsumed) {
  // {0} vs {0,1} over 2 attrs: {0}'s only RHS candidate 1 is inside {0,1},
  // so nothing of {0} survives... but {0,1} over 2 attrs has empty RHS too.
  std::vector<AttributeSet> sets = {AttributeSet{0}, AttributeSet{0, 1}};
  std::vector<NonFd> cover = NonRedundantNonFds(sets, 2);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].lhs, AttributeSet{0});
  EXPECT_EQ(cover[0].rhs, AttributeSet{1});
}

TEST(NonRedundantNonFdsTest, CompleteCoverProperty) {
  // Every original (Z, A) non-FD must be dominated by a retained (Z', A)
  // with Z subseteq Z'.
  std::vector<AttributeSet> sets = {AttributeSet{0}, AttributeSet{1},
                                    AttributeSet{0, 1}, AttributeSet{0, 2},
                                    AttributeSet{1, 2, 3}};
  const int m = 5;
  std::vector<NonFd> cover = NonRedundantNonFds(sets, m);
  for (const AttributeSet& z : sets) {
    AttributeSet rhs = z.complement(m);
    rhs.for_each([&](AttrId a) {
      bool dominated = false;
      for (const NonFd& nf : cover) {
        if (z.is_subset_of(nf.lhs) && nf.rhs.test(a)) dominated = true;
      }
      EXPECT_TRUE(dominated) << z.to_string() << " !-> " << a;
    });
  }
}

TEST(NonRedundantNonFdsTest, IncomparableSetsKeepFullRhs) {
  std::vector<AttributeSet> sets = {AttributeSet{0, 1}, AttributeSet{2, 3}};
  std::vector<NonFd> cover = NonRedundantNonFds(sets, 4);
  ASSERT_EQ(cover.size(), 2u);
  for (const NonFd& nf : cover) EXPECT_EQ(nf.rhs, nf.lhs.complement(4));
}

TEST(AgreeSetsTest, EmptyAndSingleRowRelations) {
  EXPECT_TRUE(ComputeAllAgreeSets(FromValues({})).empty());
  EXPECT_TRUE(ComputeAllAgreeSets(FromValues({{1, 2}})).empty());
}

}  // namespace
}  // namespace dhyfd
