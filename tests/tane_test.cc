#include "algo/tane.h"

#include <gtest/gtest.h>

#include "fd/cover.h"
#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::FromValues;
using testutil::HoldsBruteForce;
using testutil::RandomRelation;

TEST(TaneTest, ConstantColumn) {
  Relation r = FromValues({{7, 0}, {7, 1}, {7, 2}});
  DiscoveryResult res = Tane().discover(r);
  ASSERT_EQ(res.fds.size(), 1);
  EXPECT_EQ(res.fds.fds[0], Fd(AttributeSet{}, 0));
}

TEST(TaneTest, KeyColumn) {
  Relation r = FromValues({{0, 5}, {1, 5}, {2, 6}});
  DiscoveryResult res = Tane().discover(r);
  // 0 is a key: 0 -> 1. Column 1 determines nothing (5 maps to 0 and 1...).
  bool has_key_fd = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{0}, 1)) has_key_fd = true;
  }
  EXPECT_TRUE(has_key_fd);
}

TEST(TaneTest, PlantedCompositeFd) {
  // {0,1} -> 2, not reducible to either attribute alone.
  Relation r = FromValues({
      {0, 0, 10}, {0, 0, 10}, {0, 1, 11}, {1, 0, 12}, {1, 1, 13}, {1, 1, 13}});
  DiscoveryResult res = Tane().discover(r);
  bool found = false;
  for (const Fd& fd : res.fds.fds) {
    if (fd == Fd(AttributeSet{0, 1}, 2)) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TaneTest, MatchesBruteForceOnRandomData) {
  for (int seed = 1; seed <= 10; ++seed) {
    Relation r = RandomRelation(seed, 40, 5, 3);
    DiscoveryResult res = Tane().discover(r);
    FdSet expected = BruteForceDiscover(r);
    EXPECT_EQ(CoverDifference(expected, res.fds, 5), "") << "seed=" << seed;
    EXPECT_EQ(res.fds.size(), expected.size()) << "seed=" << seed;
  }
}

TEST(TaneTest, OutputIsLeftReducedAndValid) {
  Relation r = RandomRelation(77, 60, 6, 3);
  DiscoveryResult res = Tane().discover(r);
  EXPECT_TRUE(IsLeftReduced(res.fds, 6));
  for (const Fd& fd : res.fds.fds) {
    EXPECT_TRUE(HoldsBruteForce(r, fd)) << fd.to_string();
  }
}

TEST(TaneTest, EmptyRelation) {
  Relation r = FromValues({});
  DiscoveryResult res = Tane().discover(r);
  EXPECT_TRUE(res.fds.empty() || res.fds.size() >= 0);  // no crash
}

TEST(TaneTest, SingleRowAllConstants) {
  Relation r = FromValues({{1, 2, 3}});
  DiscoveryResult res = Tane().discover(r);
  // Every column is constant on a single row: {} -> A for all A.
  EXPECT_EQ(res.fds.size(), 3);
  for (const Fd& fd : res.fds.fds) EXPECT_TRUE(fd.lhs.empty());
}

TEST(TaneTest, DuplicateRowsOnly) {
  Relation r = FromValues({{1, 2}, {1, 2}, {1, 2}});
  DiscoveryResult res = Tane().discover(r);
  EXPECT_EQ(res.fds.size(), 2);  // both columns constant
}

TEST(TaneTest, MaxLevelCapStopsEarly) {
  Relation r = RandomRelation(5, 50, 6, 2);
  TaneOptions opt;
  opt.max_level = 1;
  DiscoveryResult res = Tane(opt).discover(r);
  for (const Fd& fd : res.fds.fds) EXPECT_LE(fd.lhs.count(), 1);
}

TEST(TaneTest, StatsPopulated) {
  Relation r = RandomRelation(9, 100, 5, 3);
  DiscoveryResult res = Tane().discover(r);
  EXPECT_GT(res.stats.validations, 0);
  EXPECT_GE(res.stats.seconds, 0);
  EXPECT_GE(res.stats.levels, 1);
}

}  // namespace
}  // namespace dhyfd
