// Cross-algorithm property tests: all six discovery algorithms must agree
// with the brute-force reference (and hence with each other) on randomized
// relations across rows/columns/domains/null-rate sweeps, under both null
// semantics. This is the repository's strongest end-to-end guarantee.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/discovery.h"
#include "fd/cover.h"
#include "query/engine.h"
#include "relation/encoder.h"
#include "test_util.h"
#include "util/random.h"

namespace dhyfd {
namespace {

using testutil::CoverDifference;
using testutil::RandomRelation;

struct SweepCase {
  int seed;
  int rows;
  int cols;
  int domain;
  double null_rate;
};

class AlgorithmSweep
    : public ::testing::TestWithParam<std::tuple<std::string, SweepCase>> {};

TEST_P(AlgorithmSweep, AgreesWithBruteForce) {
  const auto& [algo_name, c] = GetParam();
  Relation r = RandomRelation(c.seed, c.rows, c.cols, c.domain, c.null_rate);
  FdSet expected = BruteForceDiscover(r);
  DiscoveryResult res = MakeDiscovery(algo_name)->discover(r);
  EXPECT_EQ(CoverDifference(expected, res.fds, c.cols), "")
      << algo_name << " rows=" << c.rows << " cols=" << c.cols
      << " domain=" << c.domain;
  // Left-reduced covers of the same relation with singleton RHSs are
  // unique, so sizes must match exactly.
  EXPECT_EQ(res.fds.size(), expected.size()) << algo_name;
  EXPECT_TRUE(IsLeftReduced(res.fds, c.cols)) << algo_name;
}

// epsilon = 0, k = 0, unbounded arity must reduce the query engine exactly
// to today's exact-discovery path: the cover equals brute force (and hence
// every algorithm above) on every sweep case.
class QueryEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(QueryEquivalenceSweep, UnconstrainedQueryEqualsExactDiscovery) {
  const SweepCase& c = GetParam();
  Relation r = RandomRelation(c.seed, c.rows, c.cols, c.domain, c.null_rate);
  FdSet expected = BruteForceDiscover(r);
  QueryResult res = QueryEngine().execute(r, DiscoveryQuery{});
  EXPECT_EQ(CoverDifference(expected, res.cover(), c.cols), "")
      << "seed=" << c.seed;
  EXPECT_EQ(res.fds.size(), expected.size());
  // The top-k lattice with k >= |cover| must find the identical cover.
  DiscoveryQuery all_k;
  all_k.top_k = static_cast<std::uint32_t>(expected.size()) + 1;
  QueryResult topk = QueryEngine().execute(r, all_k);
  EXPECT_EQ(CoverDifference(expected, topk.cover(), c.cols), "")
      << "topk seed=" << c.seed;
}

std::vector<SweepCase> SweepCases() {
  return {
      {1, 10, 3, 2, 0.0},   {2, 30, 4, 3, 0.0},   {3, 50, 5, 2, 0.0},
      {4, 80, 4, 5, 0.0},   {5, 25, 6, 2, 0.0},   {6, 120, 3, 8, 0.0},
      {7, 40, 5, 3, 0.2},   {8, 60, 4, 4, 0.1},   {9, 35, 7, 2, 0.0},
      {10, 200, 4, 10, 0.0}, {11, 15, 5, 2, 0.5},  {12, 70, 5, 4, 0.05},
  };
}

std::string SweepName(
    const ::testing::TestParamInfo<std::tuple<std::string, SweepCase>>& info) {
  return std::get<0>(info.param) + "_s" +
         std::to_string(std::get<1>(info.param).seed);
}

std::vector<std::string> AllPlusExtraNames() {
  std::vector<std::string> names = AllDiscoveryNames();
  names.insert(names.end(), {"fastfds", "depminer", "dfd"});
  return names;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, AlgorithmSweep,
    ::testing::Combine(::testing::ValuesIn(AllPlusExtraNames()),
                       ::testing::ValuesIn(SweepCases())),
    SweepName);

INSTANTIATE_TEST_SUITE_P(
    AllCases, QueryEquivalenceSweep, ::testing::ValuesIn(SweepCases()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "s" + std::to_string(info.param.seed);
    });

TEST(DiscoveryFactoryTest, KnownNames) {
  for (const std::string& name : AllDiscoveryNames()) {
    auto algo = MakeDiscovery(name);
    EXPECT_EQ(algo->name(), name);
  }
  EXPECT_THROW(MakeDiscovery("nope"), std::invalid_argument);
}

TEST(NullSemanticsPropertyTest, NotEqualsYieldsSupersetOfFds) {
  // Under null != null every null is unique, so agree sets shrink and more
  // FDs hold: the null != null cover must imply... every FD that holds
  // under null = null also holds under null != null? Not in general — but
  // the count tends to grow. We assert the precise per-relation behaviour:
  // both covers are exact for their own encodings.
  RawTable t;
  t.header = {"a", "b", "c"};
  for (int i = 0; i < 40; ++i) {
    std::string a = (i % 7 == 0) ? "" : "a" + std::to_string(i % 5);
    std::string b = (i % 11 == 0) ? "" : "b" + std::to_string(i % 3);
    std::string c = "c" + std::to_string((i % 5 + i % 3) % 4);
    t.rows.push_back({a, b, c});
  }
  for (NullSemantics sem :
       {NullSemantics::kNullEqualsNull, NullSemantics::kNullNotEqualsNull}) {
    EncodedRelation e = EncodeRelation(t, sem);
    FdSet expected = BruteForceDiscover(e.relation);
    for (const std::string& name : AllDiscoveryNames()) {
      DiscoveryResult res = MakeDiscovery(name)->discover(e.relation);
      EXPECT_EQ(CoverDifference(expected, res.fds, 3), "")
          << name << " sem=" << static_cast<int>(sem);
    }
  }
}

}  // namespace
}  // namespace dhyfd
