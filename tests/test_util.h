#ifndef DHYFD_TESTS_TEST_UTIL_H_
#define DHYFD_TESTS_TEST_UTIL_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "fd/closure.h"
#include "fd/fd_set.h"
#include "partition/stripped_partition.h"
#include "relation/encoder.h"
#include "relation/relation.h"
#include "util/random.h"

namespace dhyfd {
namespace testutil {

/// Copies one CSR cluster out into a vector for gtest comparisons.
inline std::vector<RowId> ClusterRows(const StrippedPartition& p, size_t i) {
  ClusterView c = p.cluster(i);
  return std::vector<RowId>(c.begin(), c.end());
}

/// Builds a relation directly from integer cell values (row-major). Values
/// are re-encoded densely per column; negative values become null markers.
inline Relation FromValues(const std::vector<std::vector<int>>& rows) {
  int cols = rows.empty() ? 0 : static_cast<int>(rows[0].size());
  Relation r(Schema::numbered(cols), static_cast<RowId>(rows.size()));
  for (int c = 0; c < cols; ++c) {
    std::vector<int> remap;  // value -> dense code, linear scan (tiny data)
    std::vector<int> raw;
    for (size_t i = 0; i < rows.size(); ++i) {
      int v = rows[i][c];
      if (v < 0) {
        // Null under null = null semantics: all nulls share one value; the
        // caller controls matching by using the same negative number.
        r.set_null(static_cast<RowId>(i), c);
      }
      int code = -1;
      for (size_t k = 0; k < raw.size(); ++k) {
        if (raw[k] == v) {
          code = static_cast<int>(k);
          break;
        }
      }
      if (code < 0) {
        code = static_cast<int>(raw.size());
        raw.push_back(v);
      }
      r.set_value(static_cast<RowId>(i), c, code);
    }
    r.set_domain_size(c, static_cast<ValueId>(raw.size()));
  }
  return r;
}

/// A deterministic random relation for property tests.
inline Relation RandomRelation(uint64_t seed, int rows, int cols, int domain,
                               double null_rate = 0) {
  Random rng(seed);
  std::vector<std::vector<int>> data(rows, std::vector<int>(cols));
  for (int i = 0; i < rows; ++i) {
    for (int c = 0; c < cols; ++c) {
      if (null_rate > 0 && rng.next_bool(null_rate)) {
        data[i][c] = -1;
      } else {
        data[i][c] = static_cast<int>(rng.next_below(domain));
      }
    }
  }
  return FromValues(data);
}

/// True if fd holds on r by brute force (checks all row pairs).
inline bool HoldsBruteForce(const Relation& r, const Fd& fd) {
  for (RowId i = 0; i < r.num_rows(); ++i) {
    for (RowId j = i + 1; j < r.num_rows(); ++j) {
      if (!r.agree_on(i, j, fd.lhs)) continue;
      bool rhs_ok = true;
      fd.rhs.for_each([&](AttrId a) {
        if (r.value(i, a) != r.value(j, a)) rhs_ok = false;
      });
      if (!rhs_ok) return false;
    }
  }
  return true;
}

/// Gtest-friendly description of a cover difference, or "" if equivalent.
inline std::string CoverDifference(const FdSet& expected, const FdSet& actual,
                                   int num_attrs) {
  ClosureEngine ee(expected, num_attrs), ea(actual, num_attrs);
  for (const Fd& fd : expected.fds) {
    if (!ea.implies(fd.lhs, fd.rhs)) {
      return "missing (not implied by actual): " + fd.to_string();
    }
  }
  for (const Fd& fd : actual.fds) {
    if (!ee.implies(fd.lhs, fd.rhs)) {
      return "extra (not implied by expected): " + fd.to_string();
    }
  }
  return "";
}

}  // namespace testutil
}  // namespace dhyfd

#endif  // DHYFD_TESTS_TEST_UTIL_H_
