#include "relation/relation.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace dhyfd {
namespace {

using testutil::FromValues;

TEST(RelationTest, BasicAccess) {
  Relation r = FromValues({{1, 2, 3}, {1, 5, 3}});
  EXPECT_EQ(r.num_rows(), 2);
  EXPECT_EQ(r.num_cols(), 3);
  EXPECT_EQ(r.value(0, 0), r.value(1, 0));
  EXPECT_NE(r.value(0, 1), r.value(1, 1));
}

TEST(RelationTest, AgreeOnAndAgreeSet) {
  Relation r = FromValues({{1, 2, 3}, {1, 5, 3}});
  EXPECT_TRUE(r.agree_on(0, 1, AttributeSet{0, 2}));
  EXPECT_FALSE(r.agree_on(0, 1, AttributeSet{0, 1}));
  EXPECT_EQ(r.agree_set(0, 1), (AttributeSet{0, 2}));
}

TEST(RelationTest, SatisfiesBruteForce) {
  // a determines b, but b does not determine a.
  Relation r = FromValues({{0, 10}, {0, 10}, {1, 10}, {2, 20}});
  EXPECT_TRUE(r.satisfies(AttributeSet{0}, 1));
  EXPECT_FALSE(r.satisfies(AttributeSet{1}, 0));
  EXPECT_TRUE(r.satisfies(AttributeSet{0, 1}, 1));
}

TEST(RelationTest, EmptyLhsSatisfiedOnlyByConstants) {
  Relation r = FromValues({{7, 1}, {7, 2}});
  EXPECT_TRUE(r.satisfies(AttributeSet(), 0));
  EXPECT_FALSE(r.satisfies(AttributeSet(), 1));
}

TEST(RelationTest, MaxDomainSize) {
  Relation r = FromValues({{0, 0}, {1, 0}, {2, 1}});
  EXPECT_EQ(r.domain_size(0), 3);
  EXPECT_EQ(r.domain_size(1), 2);
  EXPECT_EQ(r.max_domain_size(), 3);
}

TEST(RelationTest, FragmentRows) {
  Relation r = FromValues({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  Relation f = r.fragment(2, 2);
  EXPECT_EQ(f.num_rows(), 2);
  EXPECT_EQ(f.num_cols(), 2);
  EXPECT_EQ(f.domain_size(0), 2);  // densified for the fragment
}

TEST(RelationTest, FragmentColumns) {
  Relation r = FromValues({{0, 1, 2}, {1, 2, 3}});
  Relation f = r.fragment(2, 1);
  EXPECT_EQ(f.num_cols(), 1);
  EXPECT_EQ(f.schema().size(), 1);
}

TEST(RelationTest, FragmentPreservesNulls) {
  Relation r = FromValues({{-1, 1}, {0, 2}, {1, 3}});
  Relation f = r.fragment(2, 2);
  EXPECT_TRUE(f.is_null(0, 0));
  EXPECT_FALSE(f.is_null(1, 0));
}

TEST(RelationTest, FragmentClampsBounds) {
  Relation r = FromValues({{0}, {1}});
  Relation f = r.fragment(100, 100);
  EXPECT_EQ(f.num_rows(), 2);
  EXPECT_EQ(f.num_cols(), 1);
}

TEST(RelationTest, NumValues) {
  Relation r = FromValues({{0, 0, 0}, {1, 1, 1}});
  EXPECT_EQ(r.num_values(), 6);
}

TEST(SchemaTest, NamesAndLookup) {
  Schema s({"x", "y", "z"});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.index_of("y"), 1);
  EXPECT_EQ(s.index_of("missing"), -1);
  EXPECT_EQ(s.format(AttributeSet{0, 2}), "x, z");
}

TEST(SchemaTest, Numbered) {
  Schema s = Schema::numbered(3, "col");
  EXPECT_EQ(s.name(0), "col0");
  EXPECT_EQ(s.name(2), "col2");
  EXPECT_EQ(s.all().count(), 3);
}

}  // namespace
}  // namespace dhyfd
