// CostLedgerScope: the thread-local delta scope that classifies algorithm
// counters into a per-request CostLedger while forwarding every add() to the
// previously installed sink. The forwarding contract is what keeps the
// MetricsRegistry/trace fan-out unchanged when the server wraps a request.
#include "obs/cost_ledger.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace dhyfd {
namespace {

/// Records every add() it sees, for asserting the forwarding contract.
class RecordingSink : public ObsSink {
 public:
  void add(const char* name, std::int64_t delta) override {
    seen.emplace_back(name, delta);
  }
  std::vector<std::pair<std::string, std::int64_t>> seen;
};

TEST(CostLedgerTest, AddAndZero) {
  CostLedger a;
  EXPECT_TRUE(a.zero());
  CostLedger b;
  b.validations = 3;
  b.bytes_streamed = 100;
  a.add(b);
  a.add(b);
  EXPECT_FALSE(a.zero());
  EXPECT_EQ(a.validations, 6);
  EXPECT_EQ(a.bytes_streamed, 200);
  EXPECT_EQ(a.partitions_built, 0);
}

TEST(CostLedgerScopeTest, ClassifiesKnownCountersIgnoresOthers) {
  CostLedger cost;
  {
    CostLedgerScope scope(&cost);
    ObsAdd("discover.validator.calls", 5);
    ObsAdd("query.validations", 2);
    ObsAdd("incr.validations", 1);
    ObsAdd("partition.intersections", 7);
    ObsAdd("partition.ddm_dynamic_builds", 3);
    ObsAdd("partition.cache_hits", 11);
    ObsAdd("partition.prefix_cache_hits", 4);
    ObsAdd("partition.cache_misses", 6);
    ObsAdd("discover.sampling.runs", 99);  // unlisted: forwarded, unclassified
  }
  EXPECT_EQ(cost.validations, 8);
  EXPECT_EQ(cost.partitions_built, 10);
  EXPECT_EQ(cost.cache_hits, 15);
  EXPECT_EQ(cost.cache_misses, 6);
  EXPECT_EQ(cost.bytes_streamed, 0);  // transport-owned, never from counters
}

TEST(CostLedgerScopeTest, ForwardsEveryAddToPreviousSinkUnchanged) {
  RecordingSink registry;
  ObsScope outer(&registry);
  CostLedger cost;
  {
    CostLedgerScope scope(&cost);
    ObsAdd("discover.validator.calls", 5);
    ObsAdd("some.other.counter", 9);
  }
  ASSERT_EQ(registry.seen.size(), 2u);
  EXPECT_EQ(registry.seen[0].first, "discover.validator.calls");
  EXPECT_EQ(registry.seen[0].second, 5);
  EXPECT_EQ(registry.seen[1].first, "some.other.counter");
  EXPECT_EQ(registry.seen[1].second, 9);
}

TEST(CostLedgerScopeTest, RestoresPreviousSinkOnDestruction) {
  RecordingSink registry;
  ObsScope outer(&registry);
  ASSERT_EQ(CurrentObsSink(), &registry);
  {
    CostLedger cost;
    CostLedgerScope scope(&cost);
    EXPECT_EQ(CurrentObsSink(), &scope);
  }
  EXPECT_EQ(CurrentObsSink(), &registry);
}

TEST(CostLedgerScopeTest, NestedScopesBothSeeClassifiedDeltas) {
  // The inner scope classifies first-hand; the outer sees the same deltas
  // through forwarding, so a connection-level ledger wrapping a per-request
  // one stays consistent without double bookkeeping in the callers.
  CostLedger outer_cost;
  CostLedger inner_cost;
  {
    CostLedgerScope outer(&outer_cost);
    {
      CostLedgerScope inner(&inner_cost);
      ObsAdd("partition.intersections", 4);
    }
    ObsAdd("partition.intersections", 1);  // after inner unwinds: outer only
  }
  EXPECT_EQ(inner_cost.partitions_built, 4);
  EXPECT_EQ(outer_cost.partitions_built, 5);
}

TEST(CostLedgerScopeTest, ChargesThreadCpuTime) {
  CostLedger cost;
  {
    CostLedgerScope scope(&cost);
    // Burn enough CPU that CLOCK_THREAD_CPUTIME_ID must move.
    std::uint64_t acc = 0;
    for (int i = 0; i < 2'000'000; ++i) acc += static_cast<std::uint64_t>(i);
    volatile std::uint64_t sink = acc;
    (void)sink;
  }
  EXPECT_GT(cost.cpu_ns, 0);
}

TEST(CostLedgerScopeTest, ChargeCpuFalseSkipsTheClockButStillClassifies) {
  CostLedger cost;
  {
    CostLedgerScope scope(&cost, /*charge_cpu=*/false);
    std::uint64_t acc = 0;
    for (int i = 0; i < 2'000'000; ++i) acc += static_cast<std::uint64_t>(i);
    volatile std::uint64_t sink = acc;
    (void)sink;
    ObsAdd("query.validations", 3);
  }
  EXPECT_EQ(cost.cpu_ns, 0);
  EXPECT_EQ(cost.validations, 3);
}

TEST(CostLedgerScopeTest, WorksWithNoPreviousSink) {
  ASSERT_EQ(CurrentObsSink(), nullptr);
  CostLedger cost;
  {
    CostLedgerScope scope(&cost);
    ObsAdd("incr.validations", 2);
  }
  EXPECT_EQ(cost.validations, 2);
  EXPECT_EQ(CurrentObsSink(), nullptr);
}

}  // namespace
}  // namespace dhyfd
