#include "service/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/prometheus.h"

namespace dhyfd {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0);
  // The quantile of nothing is 0 for every q, including the clamped ends.
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.quantile(1.0), 0);
  EXPECT_EQ(h.quantile(-3.0), 0);
  EXPECT_EQ(h.quantile(7.0), 0);
}

TEST(HistogramTest, SingleObservationEveryQuantileIsThatValue) {
  Histogram h;
  h.record(0.005);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.005);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.005);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.005);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.005);
}

TEST(HistogramTest, QuantileEndpointsAreMinAndMax) {
  Histogram h;
  h.record(0.002);
  h.record(0.04);
  h.record(3.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.002);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.5);
  // Out-of-range q clamps to the endpoints instead of reading junk.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), 0.002);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 3.5);
}

TEST(HistogramTest, QuantileIsClampedToObservedRange) {
  // All mass in one bucket whose upper bound (0.01) exceeds the observed
  // max: the bucket-walk estimate must clamp to max, never exceed it.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(0.002);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.002);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.002);
}

TEST(HistogramTest, QuantileIsMonotoneInQ) {
  Histogram h;
  std::vector<double> values = {1e-5, 3e-4, 2e-3, 0.04, 0.04, 0.9, 12.0, 500.0};
  for (double v : values) h.record(v);
  double prev = h.quantile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    double cur = h.quantile(q);
    EXPECT_GE(cur, prev) << "q=" << q;
    prev = cur;
  }
}

TEST(HistogramTest, BucketBoundsAreLogScaleWithInfiniteLast) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(3), 1e-3);
  EXPECT_DOUBLE_EQ(Histogram::bucket_bound(9), 1e3);
  EXPECT_TRUE(std::isinf(Histogram::bucket_bound(Histogram::kNumBuckets - 1)));
}

TEST(HistogramTest, BucketUpperBoundsAreInclusive) {
  // An observation exactly on a bound belongs to that bucket (`le`
  // semantics, matching the Prometheus exposition this feeds).
  Histogram h;
  h.record(1e-6);   // == bound of bucket 0
  h.record(1e-3);   // == bound of bucket 3
  h.record(2e-3);   // first bound above it is 1e-2 -> bucket 4
  h.record(5000.0); // beyond the largest finite bound -> overflow bucket
  Histogram::Snapshot snap = h.snapshot_state();
  EXPECT_EQ(snap.buckets[0], 1);
  EXPECT_EQ(snap.buckets[3], 1);
  EXPECT_EQ(snap.buckets[4], 1);
  EXPECT_EQ(snap.buckets[Histogram::kNumBuckets - 1], 1);
  EXPECT_EQ(snap.count, 4);
}

TEST(MetricsRegistryTest, ProcessGaugesRefreshFromProc) {
  MetricsRegistry metrics;
  metrics.refresh_process_gauges();
  EXPECT_GT(metrics.gauge("process.peak_rss_bytes").value(), 0);
  EXPECT_GT(metrics.gauge("process.rss_bytes").value(), 0);
  // Peak can never be below the current level.
  EXPECT_GE(metrics.gauge("process.peak_rss_bytes").value(),
            metrics.gauge("process.rss_bytes").value());
  // snapshot() refreshes them too, so every text export carries memory.
  EXPECT_NE(metrics.snapshot().find("process.peak_rss_bytes"),
            std::string::npos);
}

TEST(MetricsRegistryTest, SortedValueAccessorsAreDeterministic) {
  MetricsRegistry metrics;
  metrics.counter("b.second").inc(2);
  metrics.counter("a.first").inc(1);
  metrics.gauge("z.level").set(-4);
  auto counters = metrics.counter_values();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.begin()->first, "a.first");
  EXPECT_EQ(counters.begin()->second, 1);
  EXPECT_EQ(metrics.gauge_values().at("z.level"), -4);
}

TEST(PrometheusTest, NameMangling) {
  EXPECT_EQ(PrometheusName("jobs.run_seconds"), "dhyfd_jobs_run_seconds");
  EXPECT_EQ(PrometheusName("discover.sampler.rounds"),
            "dhyfd_discover_sampler_rounds");
}

// Golden test pinning the Prometheus text exposition format: sorted names,
// `# TYPE` headers, cumulative le-buckets with +Inf, _sum/_count tails.
// Process gauges carry machine-dependent values, so their lines are
// filtered out of the comparison and asserted separately above.
TEST(PrometheusTest, GoldenTextExposition) {
  MetricsRegistry metrics;
  metrics.counter("discover.fds").inc(42);
  metrics.gauge("jobs.running").set(3);
  metrics.histogram("jobs.run_seconds").record(0.5);
  metrics.histogram("jobs.run_seconds").record(2.0);

  std::string text = PrometheusText(metrics);
  std::string filtered;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("dhyfd_process_") != std::string::npos) continue;
    filtered += line + "\n";
  }

  const std::string golden =
      "# TYPE dhyfd_discover_fds counter\n"
      "dhyfd_discover_fds 42\n"
      "# TYPE dhyfd_jobs_running gauge\n"
      "dhyfd_jobs_running 3\n"
      "# TYPE dhyfd_jobs_run_seconds histogram\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"1e-06\"} 0\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"1e-05\"} 0\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"0.0001\"} 0\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"0.001\"} 0\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"0.01\"} 0\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"0.1\"} 0\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"1\"} 1\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"10\"} 2\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"100\"} 2\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"1000\"} 2\n"
      "dhyfd_jobs_run_seconds_bucket{le=\"+Inf\"} 2\n"
      "dhyfd_jobs_run_seconds_sum 2.5\n"
      "dhyfd_jobs_run_seconds_count 2\n";
  EXPECT_EQ(filtered, golden);
}

TEST(PrometheusTest, RepeatedExportsAreIdentical) {
  MetricsRegistry metrics;
  metrics.counter("x").inc(1);
  metrics.histogram("h").record(0.1);
  std::string a = PrometheusText(metrics);
  std::string b = PrometheusText(metrics);
  // Strip the process gauges (RSS can move between calls); the rest must
  // be byte-identical — the determinism the golden file depends on.
  auto strip = [](const std::string& text) {
    std::string out;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.find("dhyfd_process_") != std::string::npos) continue;
      out += line + "\n";
    }
    return out;
  };
  EXPECT_EQ(strip(a), strip(b));
}

}  // namespace
}  // namespace dhyfd
